// Ablation studies of the design choices DESIGN.md calls out.
//
// A. Direction assignment. The (r+c) mod 4 rule gives every line's
//    transmitters a single residue class per (dimension, sign), so
//    their 4-hop stride paths tile disjointly. Ablation: assign every
//    node the *same* direction per phase (naive "+dim" scatter) and
//    measure channel loads — contention appears immediately.
// B. 2D pattern convention. kPaper2D and kNested differ only in which
//    dimension key 0 pairs with; both must be contention-free with
//    identical cost components.
// C. Data-array layout. The §3.3 ordering keeps sends contiguous (2D:
//    all of them); ablation with destination-rank ordering fragments
//    the send sets badly.
// D. Whole-algorithm ablation: digit-correction combining *without*
//    the contention-free scheduling (the dimension-wise
//    recursive-doubling exchange) — fewer startups, but the unscheduled
//    overlap costs more than it saves.
#include <cmath>
#include <iostream>

#include "baselines/dimwise.hpp"
#include "core/data_array.hpp"
#include "core/exchange_engine.hpp"
#include "costmodel/models.hpp"
#include "sim/contention.hpp"
#include "sim/cost_simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace torex;
  bool ok = true;

  // --- A: direction assignment ------------------------------------------
  std::cout << "=== Ablation A: scheduled directions vs naive uniform directions ===\n\n";
  TextTable a({"torus", "scheduled max load", "naive max load"});
  a.set_align(0, TextTable::Align::kLeft);
  for (auto extents : {std::vector<std::int32_t>{8, 8}, {12, 12}, {16, 16}, {8, 8, 4}}) {
    const TorusShape shape(extents);
    const SuhShinAape algo(shape);
    ExchangeEngine engine(algo);
    const ExchangeTrace trace = engine.run_verified();
    const ContentionReport scheduled = check_trace_contention(algo.torus(), trace);

    // Naive: every node ships its phase-1 volume 4 hops along +dim0
    // simultaneously (what a schedule without the mod-4 direction
    // assignment would do in its first step).
    ContentionAnalyzer analyzer(algo.torus());
    std::vector<TransferRecord> naive_step;
    for (Rank p = 0; p < shape.num_nodes(); ++p) {
      naive_step.push_back(TransferRecord{
          p, algo.torus().neighbor_at(p, {0, Sign::kPositive}, 4),
          Direction{0, Sign::kPositive}, 4, 1});
    }
    const StepContention naive = analyzer.analyze_step(naive_step);

    ok = ok && scheduled.max_channel_load == 1 && naive.max_channel_load >= 4;
    a.start_row()
        .cell(shape.to_string())
        .cell(scheduled.max_channel_load)
        .cell(naive.max_channel_load);
  }
  a.print(std::cout);
  std::cout << "\nthe mod-4 assignment is what keeps every channel at load 1.\n";

  // --- B: 2D convention --------------------------------------------------
  std::cout << "\n=== Ablation B: kPaper2D vs kNested on 2D tori ===\n\n";
  TextTable b({"torus", "convention", "steps", "critical-path blocks", "contention-free"});
  b.set_align(0, TextTable::Align::kLeft);
  b.set_align(1, TextTable::Align::kLeft);
  for (auto extents : {std::vector<std::int32_t>{8, 8}, {12, 8}, {16, 16}}) {
    const TorusShape shape(extents);
    std::int64_t blocks[2] = {0, 0};
    int i = 0;
    for (auto conv : {PatternConvention::kPaper2D, PatternConvention::kNested}) {
      const SuhShinAape algo(shape, conv);
      ExchangeEngine engine(algo);
      const ExchangeTrace trace = engine.run_verified();
      const ContentionReport report = check_trace_contention(algo.torus(), trace);
      blocks[i++] = trace.total_max_blocks();
      ok = ok && report.contention_free;
      b.start_row()
          .cell(shape.to_string())
          .cell(conv == PatternConvention::kPaper2D ? "paper2d" : "nested")
          .cell(static_cast<std::int64_t>(trace.num_steps()))
          .cell(trace.total_max_blocks())
          .cell(report.contention_free ? "yes" : "NO");
    }
    ok = ok && blocks[0] == blocks[1];
  }
  b.print(std::cout);
  std::cout << "\nboth conventions are interchangeable: same costs, both contention-free.\n";

  // --- C: data-array layout ----------------------------------------------
  std::cout << "\n=== Ablation C: §3.3 layout vs naive destination-rank layout ===\n\n";
  TextTable c({"torus", "layout", "contiguous sends", "total sends", "gathered blocks",
               "worst runs/send"});
  c.set_align(0, TextTable::Align::kLeft);
  c.set_align(1, TextTable::Align::kLeft);
  for (auto extents : {std::vector<std::int32_t>{8, 8}, {12, 12}, {8, 8, 4}}) {
    const TorusShape shape(extents);
    const SuhShinAape algo(shape);
    const LayoutStats paper = run_layout_simulation(algo, LayoutPolicy::kPaper);
    const LayoutStats naive = run_layout_simulation(algo, LayoutPolicy::kNaiveDestinationOrder);
    ok = ok && paper.gathered_blocks <= naive.gathered_blocks;
    if (shape.num_dims() == 2) ok = ok && paper.fully_contiguous();
    for (const auto& [name, stats] :
         {std::pair<const char*, const LayoutStats&>{"paper (§3.3)", paper},
          std::pair<const char*, const LayoutStats&>{"naive dest-order", naive}}) {
      c.start_row()
          .cell(shape.to_string())
          .cell(name)
          .cell(stats.contiguous_sends)
          .cell(stats.total_sends)
          .cell(stats.gathered_blocks)
          .cell(stats.max_runs_per_send);
    }
  }
  c.print(std::cout);
  std::cout << "\nthe distance/Gray layout is what makes 3 (n+1) rearrangement passes "
               "sufficient.\n";

  // --- D: combining without scheduling ------------------------------------
  std::cout << "\n=== Ablation D: digit-correction combining without the mod-4 "
               "scheduling ===\n\n";
  TextTable d({"torus", "algo", "startups", "worst channel load", "priced total"});
  d.set_align(0, TextTable::Align::kLeft);
  d.set_align(1, TextTable::Align::kLeft);
  for (auto extents : {std::vector<std::int32_t>{8, 8}, {16, 16}}) {
    const TorusShape shape(extents);
    const CostParams params = CostParams::balanced();
    const CostBreakdown ours = proposed_cost_nd(shape, params);
    DimwiseExchange dimwise(shape);
    const auto steps = dimwise.run_verified();
    const CostBreakdown priced = price_routed_steps(dimwise.torus(), steps, params);
    ok = ok && priced.total() > ours.total();
    d.start_row()
        .cell(shape.to_string())
        .cell("proposed")
        .cell(static_cast<std::int64_t>(std::llround(ours.startup / params.t_s)))
        .cell(std::int64_t{1})
        .cell(ours.total(), 1);
    d.start_row()
        .cell(shape.to_string())
        .cell("dimwise recursive-doubling")
        .cell(static_cast<std::int64_t>(dimwise.num_steps()))
        .cell(dimwise.worst_channel_load())
        .cell(priced.total(), 1);
  }
  d.print(std::cout);
  std::cout << "\ndigit correction alone buys fewer startups but its unscheduled paths\n"
               "overlap (load >> 1); the mod-4 scheduling is the paper's contribution.\n";

  std::cout << "\nall ablation expectations hold: " << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
