// Experiment E1 (paper §5/§6 narrative): the startup/bandwidth
// trade-off between the proposed algorithm and Suh & Yalamanchili [9].
//
// [9] pays O(d) startups but more transmission/rearrangement; the
// proposed algorithm pays O(2^d) startups but the minimum combining
// traffic. The paper leaves the comparison "interesting future work";
// this bench maps it: for a sweep of t_s/(m*t_c) ratios we compute both
// totals across d and report who wins where and the crossover ratio at
// each network size.
#include <iostream>

#include "costmodel/models.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main() {
  using namespace torex;

  std::cout << "=== Crossover study: proposed vs [9] on 2^d x 2^d tori ===\n\n";
  const double ratios[] = {1, 10, 100, 1000, 10000, 100000};

  TextTable table({"t_s/(m t_c)", "d=3 (8x8)", "d=4", "d=5", "d=6", "d=7", "d=8"});
  table.set_align(0, TextTable::Align::kRight);
  for (double ratio : ratios) {
    CostParams p;
    p.m = 64;
    p.t_c = 0.01;
    p.t_s = ratio * static_cast<double>(p.m) * p.t_c;
    p.rho = p.t_c / 2;  // rearrangement cheaper than the wire, same order
    p.t_l = p.t_c;
    table.start_row().cell(compact_double(ratio, 0));
    for (int d = 3; d <= 8; ++d) {
      const double ours = proposed_cost_power_of_two(d, p).total();
      const double sy = suh_yalamanchili_cost(d, p).total();
      const double advantage = sy / ours;
      table.cell(std::string(ours <= sy ? "proposed" : "[9]") + " (" +
                 compact_double(advantage, 2) + "x)");
    }
  }
  table.print(std::cout);
  std::cout << "\n(cell = winner, with [9]-total / proposed-total in parentheses;\n"
               " > 1 means the proposed algorithm is faster)\n";

  // For each d, find the t_s/(m t_c) ratio where the two totals cross:
  // total difference is linear in t_s, so solve directly.
  std::cout << "\n=== Crossover ratio per network size ===\n\n";
  TextTable cross({"d", "torus", "startups proposed", "startups [9]",
                   "crossover t_s/(m t_c)"});
  for (int d = 3; d <= 9; ++d) {
    CostParams base;
    base.m = 64;
    base.t_c = 0.01;
    base.t_s = 0.0;
    base.rho = base.t_c / 2;
    base.t_l = base.t_c;
    const double ours0 = proposed_cost_power_of_two(d, base).total();
    const double sy0 = suh_yalamanchili_cost(d, base).total();
    const double ours_startups = static_cast<double>(ipow(2, d - 1) + 2);
    const double sy_startups = 3.0 * d - 3.0;
    // ours0 + u*x = sy0 + v*x  with x = t_s and u, v the startup counts.
    cross.start_row()
        .cell(static_cast<std::int64_t>(d))
        .cell(std::to_string(ipow(2, d)) + "^2")
        .cell(static_cast<std::int64_t>(ours_startups))
        .cell(static_cast<std::int64_t>(sy_startups));
    if (ours_startups == sy_startups) {
      // Equal startup counts (d = 3): the proposed algorithm wins at
      // every t_s because its traffic terms are no worse.
      cross.cell("none (proposed always wins)");
    } else {
      const double ts_star = (sy0 - ours0) / (ours_startups - sy_startups);
      cross.cell(ts_star / (static_cast<double>(base.m) * base.t_c), 1);
    }
  }
  cross.print(std::cout);
  std::cout << "\nbelow the crossover ratio the proposed algorithm wins (its lower\n"
               "traffic dominates); above it [9]'s O(d) startups win.\n";
  return 0;
}
