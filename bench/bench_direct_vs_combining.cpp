// Experiment E2 (paper §1 motivation): message combining vs the
// non-combining baselines.
//
// Three algorithms on the same tori and parameters:
//   * proposed (Suh-Shin) — measured trace, contention-free
//   * ring (Gray-code Hamiltonian pipeline) — contention-free but
//     O(N^2) blocks through every node and N-1 startups
//   * direct (one message per destination, dimension-ordered routing)
//     — N-1 startups and channel contention priced by wormhole
//     serialization on the bottleneck channel
//   * Bruck (log-phase, the modern MPI small-message algorithm) —
//     ceil(log2 N) startups, but rank-space partners are physically
//     distant on a torus, so congestion eats the startup advantage
// The shape to reproduce: combining wins by a growing factor as the
// torus grows, and the direct scheme additionally degrades through
// contention (worst channel load >> 1).
#include <iostream>

#include "baselines/bruck.hpp"
#include "baselines/direct_exchange.hpp"
#include "baselines/ring_exchange.hpp"
#include "core/exchange_engine.hpp"
#include "sim/cost_simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace torex;
  const std::vector<std::vector<std::int32_t>> shapes = {
      {4, 4}, {8, 8}, {12, 12}, {16, 16}, {8, 8, 4}, {8, 8, 8}};
  const CostParams params = CostParams::balanced();

  std::cout << "=== Message combining vs non-combining baselines ===\n"
            << "(t_s=100, t_c=0.02, t_l=0.05, rho=0.01, m=64B)\n\n";

  TextTable table({"torus", "N", "proposed total", "ring total", "direct total",
                   "bruck total", "ring/proposed", "direct/proposed", "bruck/proposed",
                   "direct worst load"});
  table.set_align(0, TextTable::Align::kLeft);
  bool combining_wins = true;
  for (const auto& extents : shapes) {
    const TorusShape shape(extents);

    const SuhShinAape algo(shape);
    EngineOptions opts;
    opts.record_transfers = false;
    ExchangeEngine engine(algo, opts);
    const double ours = price_trace(engine.run_verified(), params).total();

    RingExchange ring(shape);
    const double ring_total = price_trace(ring.analytic_trace(), params).total();

    DirectExchange direct(shape);
    const double direct_total =
        price_routed_steps(direct.torus(), direct.steps(), params).total();
    const std::int64_t worst = direct.worst_channel_load();

    BruckExchange bruck(shape);
    const double bruck_total =
        price_routed_steps(bruck.torus(), bruck.run_verified(), params).total();

    combining_wins = combining_wins && ours < ring_total && ours < direct_total;
    // Bruck's log-phase startup advantage can edge out combining on the
    // smallest torus (4x4: 0.98x); from N = 64 up congestion makes it
    // lose, which is the relationship we pin.
    if (shape.num_nodes() >= 64) combining_wins = combining_wins && ours < bruck_total;
    table.start_row()
        .cell(shape.to_string())
        .cell(static_cast<std::int64_t>(shape.num_nodes()))
        .cell(ours, 1)
        .cell(ring_total, 1)
        .cell(direct_total, 1)
        .cell(bruck_total, 1)
        .cell(ring_total / ours, 2)
        .cell(direct_total / ours, 2)
        .cell(bruck_total / ours, 2)
        .cell(worst);
  }
  table.print(std::cout);
  std::cout << "\ncombining beats ring and direct everywhere, and Bruck from N >= 64: "
            << (combining_wins ? "yes" : "NO") << '\n'
            << "(on a 4x4 torus Bruck's log-phase startups win by ~2% — combining's\n"
               " advantage needs enough nodes for contention to matter)\n";
  return combining_wins ? 0 : 1;
}
