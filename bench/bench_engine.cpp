// google-benchmark microbenchmarks for the library itself: schedule
// construction, full exchange execution, trace pricing, contention
// analysis. These measure the *simulator's* throughput (how fast we can
// study schedules), not modeled network time.
#include <benchmark/benchmark.h>

#include "baselines/direct_exchange.hpp"
#include "core/data_array.hpp"
#include "core/exchange_engine.hpp"
#include "runtime/parallel_engine.hpp"
#include "sim/contention.hpp"
#include "sim/cost_simulator.hpp"
#include "sim/wormhole.hpp"

namespace {

using namespace torex;

TorusShape shape_for(std::int64_t side, std::int64_t dims) {
  std::vector<std::int32_t> extents(static_cast<std::size_t>(dims),
                                    static_cast<std::int32_t>(side));
  return TorusShape(extents);
}

void BM_ScheduleBuild(benchmark::State& state) {
  const TorusShape shape = shape_for(state.range(0), state.range(1));
  for (auto _ : state) {
    SuhShinAape algo(shape);
    benchmark::DoNotOptimize(algo.total_steps());
  }
  state.SetLabel(shape.to_string());
}
BENCHMARK(BM_ScheduleBuild)->Args({8, 2})->Args({16, 2})->Args({32, 2})->Args({8, 3})->Args({12, 3});

void BM_FullExchange(benchmark::State& state) {
  const TorusShape shape = shape_for(state.range(0), state.range(1));
  const SuhShinAape algo(shape);
  EngineOptions opts;
  opts.check_phase_invariants = false;
  opts.record_transfers = false;
  for (auto _ : state) {
    ExchangeEngine engine(algo, opts);
    benchmark::DoNotOptimize(engine.run());
  }
  const std::int64_t blocks =
      static_cast<std::int64_t>(shape.num_nodes()) * shape.num_nodes();
  state.SetItemsProcessed(state.iterations() * blocks);
  state.SetLabel(shape.to_string());
}
BENCHMARK(BM_FullExchange)->Args({8, 2})->Args({16, 2})->Args({8, 3})->Args({12, 3});

void BM_ContentionCheck(benchmark::State& state) {
  const TorusShape shape = shape_for(state.range(0), 2);
  const SuhShinAape algo(shape);
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_trace_contention(algo.torus(), trace));
  }
  state.SetLabel(shape.to_string());
}
BENCHMARK(BM_ContentionCheck)->Arg(8)->Arg(16)->Arg(32);

void BM_TracePricing(benchmark::State& state) {
  const TorusShape shape = shape_for(state.range(0), 2);
  const SuhShinAape algo(shape);
  EngineOptions opts;
  opts.record_transfers = false;
  ExchangeEngine engine(algo, opts);
  const ExchangeTrace trace = engine.run();
  const CostParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(price_trace(trace, params));
  }
  state.SetLabel(shape.to_string());
}
BENCHMARK(BM_TracePricing)->Arg(16)->Arg(32);

void BM_DirectRoutedPricing(benchmark::State& state) {
  const TorusShape shape = shape_for(state.range(0), 2);
  DirectExchange direct(shape);
  const auto steps = direct.steps();
  const CostParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(price_routed_steps(direct.torus(), steps, params));
  }
  state.SetLabel(shape.to_string());
}
BENCHMARK(BM_DirectRoutedPricing)->Arg(8)->Arg(16);

void BM_LayoutSimulation(benchmark::State& state) {
  const TorusShape shape = shape_for(state.range(0), state.range(1));
  const SuhShinAape algo(shape);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_layout_simulation(algo));
  }
  state.SetLabel(shape.to_string());
}
BENCHMARK(BM_LayoutSimulation)->Args({8, 2})->Args({12, 2})->Args({8, 3});

void BM_ParallelExchange(benchmark::State& state) {
  const TorusShape shape = shape_for(state.range(0), 2);
  const SuhShinAape algo(shape);
  ParallelOptions opts;
  opts.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    ParallelExchange engine(algo, opts);
    benchmark::DoNotOptimize(engine.run_verified());
  }
  state.SetLabel(shape.to_string() + "/t" + std::to_string(state.range(1)));
}
BENCHMARK(BM_ParallelExchange)->Args({16, 1})->Args({16, 2})->Args({16, 4});

void BM_WormholeStep(benchmark::State& state) {
  // One contention-free schedule step at flit level.
  const TorusShape shape = shape_for(state.range(0), 2);
  const SuhShinAape algo(shape);
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run();
  ExchangeTrace first_step;
  first_step.steps.push_back(trace.steps.front());
  const Torus& torus = algo.torus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_trace_steps(torus, first_step, 8));
  }
  state.SetLabel(shape.to_string());
}
BENCHMARK(BM_WormholeStep)->Arg(8)->Arg(16);

void BM_WormholeDirectStep(benchmark::State& state) {
  // One contended direct-exchange step at flit level.
  const TorusShape shape = shape_for(state.range(0), 2);
  DirectExchange direct(shape);
  std::vector<RoutedStep> one_step{direct.steps().front()};
  const Torus& torus = direct.torus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_routed_steps(torus, one_step, 8));
  }
  state.SetLabel(shape.to_string());
}
BENCHMARK(BM_WormholeDirectStep)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
