// Degraded-mode evaluation: what injected faults cost the exchange.
//
// Three results:
//  1. Recovery-policy comparison: for growing numbers of seeded
//     permanent channel faults on a 12x8 torus, the modeled completion
//     time and recovery work (remapped nodes, rerouted messages, detour
//     hops) of each policy. Remap degrades gracefully — a handful of
//     detour hops — while the direct fallback abandons the combining
//     schedule entirely and pays an order of magnitude more.
//  2. Transient-fault retry: how long exponential backoff waits before
//     a healing fault clears, as a function of the heal tick.
//  3. Flit-level impact: total wormhole cycles of the schedule with a
//     transient channel fault stalling worms, vs the healthy run.
#include <iostream>

#include "core/exchange_engine.hpp"
#include "runtime/communicator.hpp"
#include "sim/fault_model.hpp"
#include "sim/wormhole.hpp"
#include "util/table.hpp"

int main() {
  using namespace torex;
  const TorusShape shape = TorusShape::make_2d(12, 8);
  const std::int64_t block_bytes = 64;
  const TorusCommunicator comm(shape, CostParams{});
  const double healthy_time = comm.estimate(AlltoallAlgorithm::kSuhShin, block_bytes).total();

  std::cout << "=== Recovery policies under permanent channel faults (" << shape.to_string()
            << ", " << block_bytes << "-byte blocks) ===\n\n";
  TextTable policies({"faults", "policy", "algorithm ran", "remapped", "rerouted",
                      "extra hops", "modeled time", "vs healthy"});
  policies.set_align(1, TextTable::Align::kLeft);
  policies.set_align(2, TextTable::Align::kLeft);
  for (int k : {1, 2, 4, 8}) {
    FaultModel faults;
    faults.inject_random_channel_faults(Torus(shape), 0x5eed + static_cast<std::uint64_t>(k), k);
    for (RecoveryPolicy policy :
         {RecoveryPolicy::kRemap, RecoveryPolicy::kFallbackDirect, RecoveryPolicy::kAuto}) {
      ResilienceOptions options;
      options.algorithm = AlltoallAlgorithm::kSuhShin;
      options.policy = policy;
      const ExchangeOutcome outcome = comm.plan_resilient(faults, options, block_bytes);
      policies.start_row()
          .cell(static_cast<std::int64_t>(k))
          .cell(to_string(policy))
          .cell(to_string(outcome.algorithm))
          .cell(outcome.remapped_nodes)
          .cell(outcome.rerouted_messages)
          .cell(outcome.extra_hops)
          .cell(outcome.modeled_time, 1)
          .cell(outcome.modeled_time / healthy_time, 3);
    }
  }
  policies.print(std::cout);

  std::cout << "\n=== Exponential backoff vs transient heal tick ===\n\n";
  TextTable retry({"heal tick", "retries", "waited ticks", "converged"});
  for (std::int64_t heal : {1, 4, 16, 64, 200}) {
    FaultModel faults;
    faults.fail_channel(0, Direction{0, Sign::kPositive}, 0, heal);
    ResilienceOptions options;
    options.algorithm = AlltoallAlgorithm::kSuhShin;
    options.policy = RecoveryPolicy::kRetryBackoff;
    const ExchangeOutcome outcome = comm.plan_resilient(faults, options, block_bytes);
    retry.start_row()
        .cell(heal)
        .cell(static_cast<std::int64_t>(outcome.retries))
        .cell(outcome.waited_ticks)
        .cell(outcome.policy == RecoveryPolicy::kRetryBackoff ? "yes" : "no (degraded)");
  }
  retry.print(std::cout);

  std::cout << "\n=== Flit-level cost of a transient channel fault (8x8, 4 flits/block) ===\n\n";
  const SuhShinAape algo(TorusShape::make_2d(8, 8));
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  const auto healthy = simulate_trace_steps(algo.torus(), trace, 4);
  TextTable flits({"fault window", "network cycles", "stall cycles", "vs healthy"});
  flits.set_align(0, TextTable::Align::kLeft);
  std::int64_t healthy_cycles = 0;
  for (const auto& step : healthy) healthy_cycles += step.makespan;
  flits.start_row().cell("none").cell(healthy_cycles).cell(std::int64_t{0}).cell(1.0, 3);
  for (std::int64_t until : {8, 32, 128}) {
    FaultModel faults;
    faults.fail_channel(0, Direction{0, Sign::kPositive}, 0, until);
    const auto run = simulate_trace_steps_faulted(algo.torus(), trace, 4, faults);
    std::int64_t cycles = 0, stalls = 0;
    for (const auto& step : run) {
      cycles += step.makespan;
      stalls += step.total_stalls;
    }
    flits.start_row()
        .cell("[0, " + std::to_string(until) + ")")
        .cell(cycles)
        .cell(stalls)
        .cell(static_cast<double>(cycles) / static_cast<double>(healthy_cycles), 3);
  }
  flits.print(std::cout);
  return 0;
}
