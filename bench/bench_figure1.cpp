// Reproduces Figure 1: the 2D algorithm walkthrough on a 12x12 torus.
//
// Figure 1(c)-(h) follows node group 00 (the 3x3 subtorus {0,4,8}^2):
// each member starts with nine 4x4 block groups (BGs), one per submesh
// (SM); phases 1-2 scatter the BGs along rows then columns so that after
// phase 2 every member holds nine identically-marked BGs (all blocks
// destined for its own SM). Figures 1(i)-(l) then show phases 3-4
// finishing the exchange inside one SM.
//
// We re-run the schedule with a step observer on node P(0,0) and print,
// per step, exactly the figure's quantities: blocks held / sent /
// received, and for phases 1-2 the count of whole BGs sent. Each
// narrative claim is checked programmatically; the binary exits
// non-zero if any deviates.
#include <iostream>
#include <map>

#include "core/exchange_engine.hpp"
#include "topology/group.hpp"
#include "util/table.hpp"

int main() {
  using namespace torex;
  const TorusShape shape = TorusShape::make_2d(12, 12);
  const SuhShinAape algo(shape);  // kPaper2D: matches the figure's directions
  const Rank watched = shape.rank_of({0, 0});

  bool ok = true;
  auto expect = [&](bool cond, const std::string& what) {
    std::cout << (cond ? "  [ok] " : "  [FAIL] ") << what << '\n';
    ok = ok && cond;
  };

  std::cout << "=== Figure 1 walkthrough: group 00 of a 12x12 torus, node P(0,0) ===\n\n";
  std::cout << "initial state (Figure 1(d)): 144 blocks = 9 BGs of 16 blocks, one per SM\n";

  TextTable table({"phase", "step", "held before", "sent", "received", "held after"});
  std::int64_t held = shape.num_nodes();

  // Figure narrative, phases 1-2 (steps of 12x12: 2 per phase):
  //   phase 1 step 1: send BGs in 2nd+3rd SM-columns = 6 BGs = 96 blocks
  //   phase 1 step 2: send BGs in 3rd SM-column      = 3 BGs = 48 blocks
  //   phase 2 mirrors along the other dimension.
  const std::map<std::pair<int, int>, std::int64_t> expected_sent = {
      {{1, 1}, 96}, {{1, 2}, 48}, {{2, 1}, 96}, {{2, 2}, 48},
      {{3, 1}, 72}, {{3, 2}, 72}, {{4, 1}, 72}, {{4, 2}, 72}};

  EngineOptions options;
  options.on_step_end = [&](int phase, int step, const StepRecord& record,
                            const std::vector<std::vector<Block>>& buffers) {
    std::int64_t sent = 0;
    std::int64_t received = 0;
    for (const auto& t : record.transfers) {
      if (t.src == watched) sent = t.blocks;
      if (t.dst == watched) received = t.blocks;
    }
    const std::int64_t now = static_cast<std::int64_t>(buffers[static_cast<std::size_t>(watched)].size());
    table.start_row()
        .cell(static_cast<std::int64_t>(phase))
        .cell(static_cast<std::int64_t>(step))
        .cell(held)
        .cell(sent)
        .cell(received)
        .cell(now);
    held = now;
    if (auto it = expected_sent.find({phase, step}); it != expected_sent.end()) {
      if (sent != it->second) ok = false;
    }
  };

  ExchangeEngine engine(algo, options);
  ExchangeTrace trace = engine.run_verified();
  table.print(std::cout);
  std::cout << '\n';

  expect(trace.num_steps() == 8, "8 steps total (C/2 + 2, Figure 1 has 2+2+2+2)");

  // Figure 1(f)/(h) claims, re-checked on a fresh run with boundary
  // observers: after phase 2 all of P(0,0)'s blocks are destined for
  // its own SM (identically marked BGs); the engine's built-in phase
  // invariants already verified proxy placement for every node.
  {
    bool after_phase2_same_sm = true;
    EngineOptions probe;
    probe.on_step_end = [&](int phase, int step, const StepRecord&,
                            const std::vector<std::vector<Block>>& buffers) {
      if (phase == 2 && step == 2) {
        for (const Block& b : buffers[static_cast<std::size_t>(watched)]) {
          after_phase2_same_sm &=
              same_submesh(shape.coord_of(b.dest), shape.coord_of(watched));
        }
      }
    };
    ExchangeEngine probe_engine(algo, probe);
    probe_engine.run_verified();
    expect(after_phase2_same_sm,
           "after phase 2, every block at P(0,0) is destined for its SM (Figure 1(h))");
  }

  expect(held == shape.num_nodes(), "P(0,0) ends with exactly 144 blocks");
  const auto& final_buf = engine.buffers()[static_cast<std::size_t>(watched)];
  bool all_mine = true;
  for (const Block& b : final_buf) all_mine &= (b.dest == watched);
  expect(all_mine, "every final block is addressed to P(0,0) (Figure 1(l))");

  // Directions in Figure 1(b): group 00 has (r+c) mod 4 = 0 -> +c in
  // phase 1, +r in phase 2.
  expect(algo.direction(watched, 1, 1) == Direction{1, Sign::kPositive},
         "P(0,0) transmits along +c in phase 1 (Figure 1(b))");
  expect(algo.direction(watched, 2, 1) == Direction{0, Sign::kPositive},
         "P(0,0) transmits along +r in phase 2");

  std::cout << "\nfigure narrative reproduced: " << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
