// Reproduces Figure 2: communication patterns in a 12x12x12 torus.
//
// Figure 2(a)-(c) shows, for phases 1-3, which X-Y planes follow the 2D
// patterns A/B and which perform inter-plane (Z) communication
// (pattern C):
//   phase 1: even-Z planes run pattern A, odd-Z planes run C
//   phase 2: every plane runs pattern B
//   phase 3: even-Z planes run C, odd-Z planes run A
// Figure 2(d)-(i) shows the 4x4x4 and 2x2x2 submesh exchanges; we print
// the per-step dimension census for those phases too.
#include <array>
#include <iostream>

#include "core/aape.hpp"
#include "util/table.hpp"

int main() {
  using namespace torex;
  const TorusShape shape = TorusShape::make_3d(12, 12, 12);
  const SuhShinAape algo(shape);
  bool ok = true;

  auto is_pattern_a = [&](const Coord& c, const Direction& d) {
    switch ((c[0] + c[1]) % 4) {
      case 0: return d == Direction{0, Sign::kPositive};
      case 1: return d == Direction{1, Sign::kPositive};
      case 2: return d == Direction{0, Sign::kNegative};
      default: return d == Direction{1, Sign::kNegative};
    }
  };
  auto is_pattern_b = [&](const Coord& c, const Direction& d) {
    switch ((c[0] + c[1]) % 4) {
      case 0: return d == Direction{1, Sign::kPositive};
      case 1: return d == Direction{0, Sign::kPositive};
      case 2: return d == Direction{1, Sign::kNegative};
      default: return d == Direction{0, Sign::kNegative};
    }
  };
  auto is_pattern_c = [&](const Coord& c, const Direction& d) {
    if (d.dim != 2) return false;
    return (c[2] % 2 == 1 && d.sign == (c[2] % 4 == 1 ? Sign::kPositive : Sign::kNegative)) ||
           (c[2] % 2 == 0 && d.sign == (c[2] % 4 == 0 ? Sign::kPositive : Sign::kNegative));
  };

  std::cout << "=== Figure 2(a)-(c): per-plane pattern census, 12x12x12 ===\n\n";
  TextTable census({"phase", "Z parity", "pattern A nodes", "pattern B nodes",
                    "pattern C nodes", "expected"});
  for (int phase = 1; phase <= 3; ++phase) {
    for (int parity = 0; parity < 2; ++parity) {
      std::int64_t a = 0, b = 0, c_count = 0, total = 0;
      for (Rank r = 0; r < shape.num_nodes(); ++r) {
        const Coord c = shape.coord_of(r);
        if (c[2] % 2 != parity) continue;
        ++total;
        const Direction d = algo.direction(r, phase, 1);
        if (is_pattern_a(c, d)) ++a;
        if (is_pattern_b(c, d)) ++b;
        if (is_pattern_c(c, d)) ++c_count;
      }
      const char* expected = phase == 2 ? "all B" : ((phase == 1) == (parity == 0)) ? "all A" : "all C";
      census.start_row()
          .cell(static_cast<std::int64_t>(phase))
          .cell(parity == 0 ? "even" : "odd")
          .cell(a)
          .cell(b)
          .cell(c_count)
          .cell(expected);
      if (phase == 2) {
        ok = ok && b == total;
      } else if ((phase == 1) == (parity == 0)) {
        ok = ok && a == total;
      } else {
        ok = ok && c_count == total;
      }
    }
  }
  census.print(std::cout);

  std::cout << "\n=== Figure 2(d)-(i): submesh-exchange dimension census ===\n\n";
  TextTable sub({"phase", "step", "along X", "along Y", "along Z"});
  for (int phase = 4; phase <= 5; ++phase) {
    for (int step = 1; step <= 3; ++step) {
      std::array<std::int64_t, 3> dims{0, 0, 0};
      for (Rank r = 0; r < shape.num_nodes(); ++r) {
        dims[static_cast<std::size_t>(algo.direction(r, phase, step).dim)]++;
      }
      sub.start_row()
          .cell(static_cast<std::int64_t>(phase))
          .cell(static_cast<std::int64_t>(step))
          .cell(dims[0])
          .cell(dims[1])
          .cell(dims[2]);
      if (phase == 5) {
        // Figure 2(g)-(i): phase 5 exchanges along X, then Y, then Z for
        // every node.
        ok = ok && dims[static_cast<std::size_t>(step - 1)] == shape.num_nodes();
      } else {
        // Figure 2(d)-(f): in each phase-4 step, half the nodes pair in
        // the Z dimension in steps 1 and 3, none in step 2.
        const std::int64_t expected_z = step == 2 ? 0 : shape.num_nodes() / 2;
        ok = ok && dims[2] == expected_z;
      }
    }
  }
  sub.print(std::cout);

  std::cout << "\nfigure 2 pattern placement reproduced: " << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
