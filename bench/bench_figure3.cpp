// Reproduces Figure 3: "Blocks transmitted in each step in phases 1, 2,
// and 3 for a 12x12x12 torus" — the data-array slices node P(0,0,0)
// ships in each scatter step:
//   phase 1, step s1: B[4*s1 .. 11, *, *]  -> (12 - 4 s1) * 144 blocks
//   phase 2, step s2: B[*, 4*s2 .. 11, *]  -> 12 * (12 - 4 s2) * 12
//   phase 3, step s3: B[*, *, 4*s3 .. 11]  -> 144 * (12 - 4 s3)
// We run the engine, capture P(0,0,0)'s actual sends, and compare.
#include <iostream>
#include <map>

#include "core/exchange_engine.hpp"
#include "util/table.hpp"

int main() {
  using namespace torex;
  const TorusShape shape = TorusShape::make_3d(12, 12, 12);
  const SuhShinAape algo(shape);
  const Rank watched = shape.rank_of({0, 0, 0});

  // P(0,0,0): (X+Y) mod 4 = 0, Z mod 4 = 0 -> +X in phase 1, +Y in
  // phase 2, +Z in phase 3, exactly the figure's walkthrough.
  bool ok = algo.direction(watched, 1, 1) == Direction{0, Sign::kPositive} &&
            algo.direction(watched, 2, 1) == Direction{1, Sign::kPositive} &&
            algo.direction(watched, 3, 1) == Direction{2, Sign::kPositive};

  std::map<std::pair<int, int>, std::int64_t> sent;
  EngineOptions options;
  options.on_step_end = [&](int phase, int step, const StepRecord& record,
                            const std::vector<std::vector<Block>>&) {
    for (const auto& t : record.transfers) {
      if (t.src == watched) sent[{phase, step}] = t.blocks;
    }
  };
  ExchangeEngine engine(algo, options);
  engine.run_verified();

  std::cout << "=== Figure 3: blocks transmitted by P(0,0,0) per scatter step ===\n\n";
  TextTable table({"phase", "step", "array slice (figure)", "blocks (figure)",
                   "blocks (measured)"});
  table.set_align(2, TextTable::Align::kLeft);
  for (int phase = 1; phase <= 3; ++phase) {
    for (int step = 1; step <= 2; ++step) {
      const std::int64_t expected = (12 - 4 * step) * 144;
      std::string slice;
      const std::string lo = std::to_string(4 * step);
      if (phase == 1) slice = "B[" + lo + "..11, *, *]";
      if (phase == 2) slice = "B[*, " + lo + "..11, *]";
      if (phase == 3) slice = "B[*, *, " + lo + "..11]";
      const auto it = sent.find({phase, step});
      const std::int64_t measured = it == sent.end() ? 0 : it->second;
      ok = ok && measured == expected;
      table.start_row()
          .cell(static_cast<std::int64_t>(phase))
          .cell(static_cast<std::int64_t>(step))
          .cell(slice)
          .cell(expected)
          .cell(measured);
    }
  }
  table.print(std::cout);
  std::cout << "\nfigure 3 per-step block counts reproduced: " << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
