// Experiment E7 (paper §1 claim (ii)): "destinations remain fixed over
// a larger number of steps ... thus making them amenable to
// optimizations, e.g., caching of message buffers".
//
// We quantify partner stability of the proposed schedule against the
// direct baseline (new partner every step) and report the numbers a
// runtime implementer cares about: distinct partners over the whole
// exchange, partner changes, and the longest fixed-destination run.
// For the proposed algorithm the distinct-partner count is Theta(n) —
// independent of torus size — while direct needs N-1.
#include <iostream>

#include "core/schedule_stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace torex;
  std::cout << "=== Partner stability (paper claim (ii)) ===\n\n";
  TextTable table({"torus", "N", "steps", "distinct partners (proposed)",
                   "partner changes", "longest fixed run", "distinct (direct)"});
  table.set_align(0, TextTable::Align::kLeft);

  bool ok = true;
  for (auto extents : {std::vector<std::int32_t>{8, 8}, {16, 16}, {32, 32}, {12, 8},
                       {8, 8, 4}, {12, 12, 12}, {8, 4, 4, 4}}) {
    const TorusShape shape(extents);
    const SuhShinAape algo(shape);
    const ScheduleStats stats = compute_schedule_stats(algo);
    const int n = shape.num_dims();
    // Scatter phases: one fixed partner each (n partners); exchange
    // phases: one partner per step (2n more). Size-independent.
    ok = ok && stats.max_distinct_partners <= 3 * n;
    // Scatter phases keep the destination fixed for a1/4 - 1 steps.
    ok = ok && stats.longest_fixed_run >= shape.extent(0) / 4 - 1;
    table.start_row()
        .cell(shape.to_string())
        .cell(static_cast<std::int64_t>(shape.num_nodes()))
        .cell(stats.total_steps)
        .cell(stats.max_distinct_partners)
        .cell(stats.max_partner_changes)
        .cell(stats.longest_fixed_run)
        .cell(static_cast<std::int64_t>(shape.num_nodes() - 1));
  }
  table.print(std::cout);
  std::cout << "\nproposed: Theta(n) distinct partners independent of torus size;\n"
               "direct: a new partner every one of its N-1 steps.\n";

  // The optimization the stability enables: message-buffer caching. A
  // warm step (all senders keep their partner) reuses buffers and route
  // state; price startups with warm steps at a fraction of t_s.
  std::cout << "\n=== Startup cost under message-buffer caching ===\n\n";
  TextTable cache({"torus", "cold steps", "warm steps", "t_s total (no cache)",
                   "t_s total (warm = 0.2 t_s)", "saving"});
  cache.set_align(0, TextTable::Align::kLeft);
  const double t_s = 100.0;
  for (auto extents : {std::vector<std::int32_t>{16, 16}, {32, 32}, {12, 12, 12}}) {
    const SuhShinAape algo{TorusShape{extents}};
    const CachedStartupCost c = classify_startup_steps(algo);
    const double cold_total = static_cast<double>(c.cold_steps + c.warm_steps) * t_s;
    const double cached_total = c.total(t_s, 0.2);
    ok = ok && c.warm_steps > 0 && cached_total < cold_total;
    cache.start_row()
        .cell(TorusShape(extents).to_string())
        .cell(c.cold_steps)
        .cell(c.warm_steps)
        .cell(cold_total, 0)
        .cell(cached_total, 0)
        .cell(compact_double(100.0 * (1.0 - cached_total / cold_total), 1) + "%");
  }
  cache.print(std::cout);
  std::cout << "\n(scatter phases are warm after their first step — the larger the\n"
               "torus, the bigger the share of warm steps; a per-step-partner\n"
               "schedule like [13]'s would have zero warm steps)\n";

  std::cout << "\npartner stability claims hold: " << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
