// Health-layer overhead report: what a correlated fault storm costs
// torexd sessions end to end, versus the same workload fault-free.
//
// For each shape, K equal-weight sessions (plus one mid-storm arrival)
// run to completion under the virtual clock in three configurations:
//   * fault-free, health layer enabled — the breaker bookkeeping is
//     live but never trips, so this row is the overhead floor;
//   * storm — a flapping quarter-phase channel, a transient pair-phase
//     channel fault, and a node crash+rejoin (the same storm shape
//     `torex_verify --storm` asserts invariants over) under a generous
//     retry budget: faults are paid in reroutes and resends, so the
//     virtual clock — and hence latency — is untouched by design;
//   * storm+tight — a single transient fault with the retry bucket
//     sized to exactly one retransmission burst, so mid-discovery the
//     budget denies, the phase defers, and p99 stretches by the
//     refill wait — the only path by which faults cost virtual time.
// Several seeds are swept so the p50/p99 session latencies are taken
// over a population, not a single run. Every run self-checks: all
// sessions must complete byte-identical to the transpose oracle and
// leak no arena frames, otherwise the benchmark exits non-zero —
// numbers from a corrupted run are worse than no numbers.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/exchange_engine.hpp"
#include "costmodel/params.hpp"
#include "runtime/communicator.hpp"
#include "sim/fault_model.hpp"
#include "svc/session_manager.hpp"
#include "util/table.hpp"

namespace {

using namespace torex;

/// The oracle payload node p sends node q in session `id` (matches the
/// torex_verify service sweeps).
std::int64_t payload(SessionId id, Rank N, Rank p, Rank q) {
  return (id + 1) * 1'000'003 + static_cast<std::int64_t>(p) * N + static_cast<std::int64_t>(q);
}

std::vector<std::vector<std::int64_t>> send_matrix(Rank N, SessionId id) {
  std::vector<std::vector<std::int64_t>> send(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    auto& row = send[static_cast<std::size_t>(p)];
    row.resize(static_cast<std::size_t>(N));
    for (Rank q = 0; q < N; ++q) row[static_cast<std::size_t>(q)] = payload(id, N, p, q);
  }
  return send;
}

bool matches_oracle(Rank N, SessionId id, const std::vector<std::vector<std::int64_t>>& recv) {
  if (static_cast<Rank>(recv.size()) != N) return false;
  for (Rank q = 0; q < N; ++q) {
    for (Rank p = 0; p < N; ++p) {
      if (recv[static_cast<std::size_t>(q)][static_cast<std::size_t>(p)] != payload(id, N, p, q))
        return false;
    }
  }
  return true;
}

/// Which failure pressure a run is under. kStorm's generous budget
/// converts every fault into reroutes/resends without stalling the
/// virtual clock; kTightBudget sizes the retry bucket to exactly one
/// retransmission burst, so discovery mid-fault is denied tokens and
/// the phase defers — the only path by which faults stretch latency.
enum class Mode { kFaultFree, kStorm, kTightBudget };

const char* to_label(Mode mode) {
  switch (mode) {
    case Mode::kFaultFree: return "fault-free";
    case Mode::kStorm: return "storm";
    case Mode::kTightBudget: return "storm+tight";
  }
  return "?";
}

struct RunResult {
  std::vector<double> latencies;  ///< per-session virtual latency
  HealthStats health;
  bool ok = false;
};

/// One seeded run of K arrival-zero sessions plus a mid-storm arrival.
/// In kFaultFree the fault model stays empty and the late session
/// simply lands in the same spot of the virtual timeline.
RunResult run_once(const TorusShape& shape, int K, std::uint64_t seed, Mode mode) {
  RunResult result;
  const Rank N = shape.num_nodes();
  const int n = shape.num_dims();
  const int quarter = n + 1;
  const int pair = n + 2;
  const std::int64_t sa = static_cast<std::int64_t>(quarter - 1) * K;
  const std::int64_t sb = static_cast<std::int64_t>(pair - 1) * K;
  const Rank crash = N - 1;

  SessionManagerOptions options;
  options.max_active = K + 1;
  options.max_queued = K + 1;
  options.health.enabled = true;
  options.health.breaker.error_threshold = 2;
  options.health.breaker.open_ticks = 4;
  options.health.breaker.probe_jitter = 2;
  options.health.breaker.seed = seed ^ 0x5102'7d9euLL;
  options.health.retries.capacity = 1'000'000;
  options.health.retries.refill_per_time = 1e-6;
  options.health.detector.phi_threshold = 1.5;
  if (mode != Mode::kFaultFree) {
    // Same storm shape as torex_verify --storm: victims read off a
    // recorded trace so the faults land on scheduled routes.
    const SuhShinAape algo(shape);
    const Torus torus(shape);
    ExchangeEngine engine(algo, EngineOptions{});
    const ExchangeTrace trace = engine.run_verified();
    TransferRecord xfer_a, xfer_b;
    bool have_a = false, have_b = false;
    for (const StepRecord& step : trace.steps) {
      if (step.step != 1) continue;
      for (const TransferRecord& t : step.transfers) {
        if (t.src == crash || t.dst == crash) continue;
        if (step.phase == quarter && !have_a) {
          xfer_a = t;
          have_a = true;
        }
        if (step.phase == pair && !have_b &&
            (!have_a ||
             torus.channel_id(t.src, t.dir) != torus.channel_id(xfer_a.src, xfer_a.dir))) {
          xfer_b = t;
          have_b = true;
        }
      }
    }
    if (!have_a || !have_b) return result;
    FaultModel faults;
    if (mode == Mode::kStorm) {
      faults.flap_channel(xfer_a.src, xfer_a.dir, sa + 1, 3, 1, 2);
      faults.fail_channel(xfer_b.src, xfer_b.dir, sb, sb + K + 8);
      faults.crash_node(crash, sa, sa + K);
    } else {
      // Tight budget: one transient fault, and a bucket holding exactly
      // one retransmission burst. The second discovery acquire is
      // denied, the phase defers, and latency pays for the refill wait.
      faults.fail_channel(xfer_a.src, xfer_a.dir, sa + 1, sa + 3);
      // A bucket holding exactly one burst, refilled at two bursts per
      // phase-cost of virtual time.
      options.health.retries.capacity = xfer_a.blocks;
      options.health.retries.refill_per_time =
          2.0 * static_cast<double>(xfer_a.blocks) /
          TorusCommunicator(shape, CostParams{}).phase_cost(options.block_bytes);
    }
    options.service_faults = faults;
  }
  SessionManager mgr(shape, CostParams{}, options);
  const double pc = mgr.phase_cost();
  for (SessionId id = 0; id < K; ++id) {
    SessionRequest req;
    req.send = send_matrix(N, id);
    mgr.submit(std::move(req));
  }
  SessionRequest late;
  late.arrival = static_cast<double>(sa + 2) * pc;
  late.send = send_matrix(N, K);
  mgr.submit(std::move(late));
  mgr.run_until_idle();

  for (SessionId id = 0; id < K + 1; ++id) {
    const SessionRecord rec = mgr.record(id);
    if (rec.state != SessionState::kCompleted) return result;
    if (!matches_oracle(N, id, mgr.take_result(id))) return result;
    result.latencies.push_back(rec.latency());
  }
  if (mgr.outstanding_frames() != 0) return result;
  result.health = mgr.health_stats();
  result.ok = true;
  return result;
}

}  // namespace

int main() {
  constexpr int kSessions = 8;
  const std::vector<std::uint64_t> kSeeds = {1, 7, 42, 12345};
  const std::vector<TorusShape> kShapes = {TorusShape({4, 4}), TorusShape({8, 4, 4})};

  std::cout << "=== torexd session latency: fault-free vs correlated storm ("
            << kSessions << "+1 sessions x " << kSeeds.size() << " seeds, virtual time) ===\n\n";
  TextTable table({"shape", "mode", "sessions", "p50 latency", "p99 latency", "vs fault-free",
                   "opens", "reroutes", "resent", "deferrals", "hosted"});
  table.set_align(0, TextTable::Align::kLeft);
  table.set_align(1, TextTable::Align::kLeft);
  bool all_ok = true;
  const Mode kModes[] = {Mode::kFaultFree, Mode::kStorm, Mode::kTightBudget};
  for (const TorusShape& shape : kShapes) {
    std::vector<double> latencies[3];
    HealthStats health[3];
    for (const std::uint64_t seed : kSeeds) {
      for (std::size_t m = 0; m < 3; ++m) {
        const RunResult run = run_once(shape, kSessions, seed, kModes[m]);
        if (!run.ok) {
          std::cerr << "SELF-CHECK FAILED: " << shape.to_string() << " seed " << seed << ' '
                    << to_label(kModes[m]) << " run did not complete byte-identical\n";
          all_ok = false;
          continue;
        }
        latencies[m].insert(latencies[m].end(), run.latencies.begin(), run.latencies.end());
        health[m].opens += run.health.opens;
        health[m].rerouted_messages += run.health.rerouted_messages;
        health[m].resent_parcels += run.health.resent_parcels;
        health[m].remap_hosted += run.health.remap_hosted;
        health[m].deferrals += run.health.deferrals;
      }
    }
    const double clean_p99 = percentile(latencies[0], 0.99);
    for (std::size_t m = 0; m < 3; ++m) {
      const double p99 = percentile(latencies[m], 0.99);
      table.start_row()
          .cell(shape.to_string())
          .cell(to_label(kModes[m]))
          .cell(static_cast<std::int64_t>(latencies[m].size()))
          .cell(percentile(latencies[m], 0.50), 1)
          .cell(p99, 1)
          .cell(clean_p99 > 0.0 ? p99 / clean_p99 : 0.0, 3)
          .cell(health[m].opens)
          .cell(health[m].rerouted_messages)
          .cell(health[m].resent_parcels)
          .cell(health[m].deferrals)
          .cell(health[m].remap_hosted);
    }
  }
  table.print(std::cout);
  std::cout << "\nEvery row self-checked: all sessions completed byte-identical to the\n"
               "transpose oracle with zero leaked arena frames; storm rows additionally\n"
               "paid their recovery work (opens/reroutes/resends/hosted) shown above.\n";
  return all_ok ? 0 : 1;
}
