// Integrity-layer evaluation: what end-to-end checking costs and what
// corruption does to the exchange.
//
// Three results:
//  1. Sealing overhead: wall-clock of the sealed exchange (CRC-32
//     seals, encode/decode per message) vs the plain payload exchange,
//     across torus sizes — the price of "no silent corruption".
//  2. Corruption response: for growing numbers of seeded corrupting
//     channels on an 8x8 torus, how many runs stay clean, heal by
//     retransmission, or escalate into the recovery chain, plus the
//     average retransmits and fault ticks spent.
//  3. Retransmit-budget sensitivity: detection stays perfect at any
//     budget; the budget only moves the correct/escalate split for
//     transient corruption windows.
#include <chrono>
#include <functional>
#include <iostream>
#include <vector>

#include "core/payload_exchange.hpp"
#include "runtime/communicator.hpp"
#include "sim/fault_model.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

namespace {

using namespace torex;

std::vector<std::vector<std::int64_t>> make_send(Rank n) {
  std::vector<std::vector<std::int64_t>> send(static_cast<std::size_t>(n));
  for (Rank p = 0; p < n; ++p) {
    for (Rank q = 0; q < n; ++q) {
      send[static_cast<std::size_t>(p)].push_back(static_cast<std::int64_t>(p) * n + q);
    }
  }
  return send;
}

ParcelBuffers<std::int64_t> canonical_parcels(Rank n) {
  ParcelBuffers<std::int64_t> buffers(static_cast<std::size_t>(n));
  for (Rank p = 0; p < n; ++p) {
    for (Rank q = 0; q < n; ++q) {
      buffers[static_cast<std::size_t>(p)].push_back(
          {Block{p, q}, static_cast<std::int64_t>(p) * n + q});
    }
  }
  return buffers;
}

double time_ms(const std::function<void()>& fn, int reps) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count() / reps;
}

}  // namespace

int main() {
  std::cout << "=== Sealing overhead: sealed vs plain payload exchange ===\n\n";
  TextTable overhead({"shape", "nodes", "plain ms", "sealed ms", "ratio"});
  overhead.set_align(0, TextTable::Align::kLeft);
  for (const auto& extents : std::vector<std::vector<std::int32_t>>{{4, 4}, {8, 4}, {8, 8},
                                                                    {8, 4, 4}, {12, 8}}) {
    const TorusShape shape(extents);
    const SuhShinAape algo(shape);
    const Rank N = shape.num_nodes();
    const int reps = N <= 64 ? 20 : 5;
    const double plain =
        time_ms([&] { exchange_payloads(algo, canonical_parcels(N)); }, reps);
    const double sealed =
        time_ms([&] { exchange_payloads_sealed(algo, canonical_parcels(N)); }, reps);
    overhead.start_row()
        .cell(shape.to_string())
        .cell(static_cast<std::int64_t>(N))
        .cell(plain, 3)
        .cell(sealed, 3)
        .cell(sealed / plain, 2);
  }
  overhead.print(std::cout);

  std::cout << "\n=== Corruption response (8x8, 40 seeded runs per row) ===\n\n";
  const TorusShape shape = TorusShape::make_2d(8, 8);
  const TorusCommunicator comm(shape, CostParams{});
  const Torus torus(shape);
  const auto send = make_send(shape.num_nodes());
  TextTable response({"corruptions", "clean", "corrected", "escalated", "refused",
                      "avg retransmits", "avg escalations"});
  for (int k : {1, 2, 4, 8}) {
    int clean = 0, corrected = 0, escalated = 0, refused = 0;
    std::int64_t retransmits = 0;
    std::int64_t escalations = 0;
    for (int run = 0; run < 40; ++run) {
      SplitMix64 rng(0xC0DE + static_cast<std::uint64_t>(k * 1000 + run));
      CorruptionModel corruption;
      const std::int64_t until = (rng.next() & 1u) != 0
                                     ? static_cast<std::int64_t>(1 + rng.next_below(3))
                                     : kFaultForever;
      corruption.inject_random_corruptions(torus, rng.next(), k, 0, until);
      ResilienceOptions options;
      options.algorithm = AlltoallAlgorithm::kSuhShin;
      ExchangeOutcome outcome;
      try {
        comm.alltoall_checked(send, FaultModel{}, corruption, outcome, options);
      } catch (const std::exception&) {
        ++refused;
        continue;
      }
      retransmits += outcome.retransmits;
      escalations += outcome.escalations;
      switch (outcome.integrity) {
        case IntegrityStatus::kClean: ++clean; break;
        case IntegrityStatus::kCorrected: ++corrected; break;
        case IntegrityStatus::kEscalated: ++escalated; break;
      }
    }
    response.start_row()
        .cell(static_cast<std::int64_t>(k))
        .cell(static_cast<std::int64_t>(clean))
        .cell(static_cast<std::int64_t>(corrected))
        .cell(static_cast<std::int64_t>(escalated))
        .cell(static_cast<std::int64_t>(refused))
        .cell(static_cast<double>(retransmits) / 40.0, 2)
        .cell(static_cast<double>(escalations) / 40.0, 2);
  }
  response.print(std::cout);

  std::cout << "\n=== Retransmit-budget sensitivity (8x8, transient windows) ===\n\n";
  TextTable budget({"max retransmits", "corrected", "escalated", "avg final tick"});
  for (int max_retransmits : {0, 1, 2, 3, 5}) {
    int corrected = 0, escalated = 0;
    std::int64_t ticks = 0;
    int measured = 0;
    for (int run = 0; run < 40; ++run) {
      SplitMix64 rng(0xBEEF + static_cast<std::uint64_t>(run));
      CorruptionModel corruption;
      corruption.inject_random_corruptions(torus, rng.next(), 2, 0,
                                           static_cast<std::int64_t>(1 + rng.next_below(4)));
      ResilienceOptions options;
      options.algorithm = AlltoallAlgorithm::kSuhShin;
      IntegrityOptions integrity;
      integrity.max_retransmits = max_retransmits;
      ExchangeOutcome outcome;
      try {
        comm.alltoall_checked(send, FaultModel{}, corruption, outcome, options, integrity);
      } catch (const std::exception&) {
        continue;
      }
      if (outcome.integrity == IntegrityStatus::kCorrected) ++corrected;
      if (outcome.integrity == IntegrityStatus::kEscalated) ++escalated;
      ticks += outcome.run_tick;
      ++measured;
    }
    budget.start_row()
        .cell(static_cast<std::int64_t>(max_retransmits))
        .cell(static_cast<std::int64_t>(corrected))
        .cell(static_cast<std::int64_t>(escalated))
        .cell(measured > 0 ? static_cast<double>(ticks) / measured : 0.0, 2);
  }
  budget.print(std::cout);
  std::cout << "\nEvery run above either delivered the exact AAPE permutation or refused "
               "loudly; silent corruption is structurally impossible at any budget.\n";
  return 0;
}
