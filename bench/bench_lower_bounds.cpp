// Optimality study: the proposed algorithm against fundamental lower
// bounds for one-port wormhole AAPE.
//
// The interesting ratios:
//   * transmission vs the bisection bound — the proposed schedule's
//     n/8 (a1+4) N is within a factor n(1 + 4/a1) of N*a1/8: it keeps
//     the bisection saturated except for the dimension-serialization
//     inherent to single-port nodes;
//   * startups vs ceil(log2 N) — the price the algorithm pays for its
//     simplicity and minimal traffic (this is exactly the gap [9]
//     narrows, at the cost of more traffic).
#include <iostream>

#include "costmodel/lower_bounds.hpp"
#include "costmodel/models.hpp"
#include "util/table.hpp"

int main() {
  using namespace torex;
  CostParams unit;
  unit.t_s = unit.t_c = unit.t_l = unit.rho = 1.0;
  unit.m = 1;

  std::cout << "=== Proposed algorithm vs lower bounds (model units, m=1) ===\n\n";
  TextTable table({"torus", "N", "startups / lb", "ratio", "transmission / lb", "ratio",
                   "ratio bound n(1+4/a1)"});
  table.set_align(0, TextTable::Align::kLeft);
  bool ok = true;
  for (auto extents : {std::vector<std::int32_t>{8, 8}, {16, 16}, {32, 32}, {64, 64},
                       {12, 8}, {8, 8, 8}, {16, 16, 16}, {8, 8, 4, 4}}) {
    const TorusShape shape(extents);
    const CostBreakdown ours = proposed_cost_nd(shape, unit);
    const AapeLowerBounds lb = aape_lower_bounds(shape, unit);
    const double n = shape.num_dims();
    const double a1 = shape.extent(0);
    const double tx_ratio = ours.transmission / lb.transmission();
    const double tx_bound = n * (1.0 + 4.0 / a1);
    ok = ok && tx_ratio <= tx_bound + 1e-9;
    ok = ok && ours.startup >= lb.startup;
    table.start_row()
        .cell(shape.to_string())
        .cell(static_cast<std::int64_t>(shape.num_nodes()))
        .cell(compact_double(ours.startup, 0) + " / " + compact_double(lb.startup, 0))
        .cell(ours.startup / lb.startup, 2)
        .cell(compact_double(ours.transmission, 0) + " / " +
              compact_double(lb.transmission(), 0))
        .cell(tx_ratio, 2)
        .cell(tx_bound, 2);
  }
  table.print(std::cout);
  std::cout << "\ntransmission stays within n(1+4/a1) of the bisection bound on every\n"
               "shape — the factor n is the per-dimension serialization a one-port\n"
               "node cannot avoid while combining.\n";
  std::cout << "\nall bound relationships hold: " << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
