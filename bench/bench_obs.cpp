// Telemetry overhead: what recording costs on the paths it instruments.
//
// Three configurations per path, wall-clock averaged over repetitions:
//   off       no recorder (obs = nullptr) — the baseline every bench
//             without telemetry runs;
//   disabled  a recorder constructed with enabled=false passed through
//             the hooks — prices the "one branch per event" claim;
//   recording a live recorder with default buffers.
// Paths: the sequential engine and the threaded BSP runtime on 8x8
// (the reference parallel shape), plus the payload exchange. Overhead
// is reported, not asserted — the target is < 5% on the 8x8 parallel
// path, but wall-clock on shared CI machines is advisory.
#include <chrono>
#include <functional>
#include <iostream>

#include "core/exchange_engine.hpp"
#include "core/payload_exchange.hpp"
#include "obs/recorder.hpp"
#include "runtime/parallel_engine.hpp"
#include "util/table.hpp"

namespace {

using namespace torex;

double time_ms(const std::function<void()>& fn, int reps) {
  fn();  // warm-up: page in code and buffers before timing
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count() / reps;
}

ParcelBuffers<std::int64_t> canonical_parcels(Rank n) {
  ParcelBuffers<std::int64_t> buffers(static_cast<std::size_t>(n));
  for (Rank p = 0; p < n; ++p) {
    for (Rank q = 0; q < n; ++q) {
      buffers[static_cast<std::size_t>(p)].push_back(
          {Block{p, q}, static_cast<std::int64_t>(p) * n + q});
    }
  }
  return buffers;
}

double pct(double with_obs, double base) {
  return base > 0.0 ? (with_obs / base - 1.0) * 100.0 : 0.0;
}

}  // namespace

int main() {
  const TorusShape shape = TorusShape::make_2d(8, 8);
  const SuhShinAape algo(shape);
  const Rank N = shape.num_nodes();
  constexpr int kReps = 20;

  ObsOptions disabled_options;
  disabled_options.enabled = false;

  std::cout << "=== Recorder overhead on 8x8 (" << N << " nodes, " << kReps
            << " reps/cell) ===\n\n";
  TextTable table({"path", "off ms", "disabled ms", "recording ms", "disabled %",
                   "recording %", "events"});
  table.set_align(0, TextTable::Align::kLeft);

  {  // Sequential engine: phase/step spans + latency histogram per step.
    EngineOptions base;
    base.record_transfers = false;
    const double off = time_ms([&] { ExchangeEngine(algo, base).run(); }, kReps);
    Recorder disabled(disabled_options);
    EngineOptions with_disabled = base;
    with_disabled.obs = &disabled;
    const double dis = time_ms([&] { ExchangeEngine(algo, with_disabled).run(); }, kReps);
    Recorder recording;
    EngineOptions with_obs = base;
    with_obs.obs = &recording;
    const double rec = time_ms([&] { ExchangeEngine(algo, with_obs).run(); }, kReps);
    table.start_row()
        .cell("engine")
        .cell(off, 3)
        .cell(dis, 3)
        .cell(rec, 3)
        .cell(pct(dis, off), 1)
        .cell(pct(rec, off), 1)
        .cell(static_cast<std::int64_t>(recording.snapshot().events.size()));
  }

  {  // Payload exchange: span per phase/step over real parcels.
    const double off = time_ms([&] { exchange_payloads(algo, canonical_parcels(N)); }, kReps);
    Recorder disabled(disabled_options);
    const double dis = time_ms(
        [&] { exchange_payloads(algo, canonical_parcels(N), &disabled); }, kReps);
    Recorder recording;
    const double rec = time_ms(
        [&] { exchange_payloads(algo, canonical_parcels(N), &recording); }, kReps);
    table.start_row()
        .cell("payload")
        .cell(off, 3)
        .cell(dis, 3)
        .cell(rec, 3)
        .cell(pct(dis, off), 1)
        .cell(pct(rec, off), 1)
        .cell(static_cast<std::int64_t>(recording.snapshot().events.size()));
  }

  {  // Threaded BSP runtime: superstep spans + barrier histogram from
     // every worker (the < 5% target path).
    ParallelOptions base;
    base.num_threads = 4;
    const double off = time_ms([&] { ParallelExchange(algo, base).run_verified(); }, kReps);
    Recorder disabled(disabled_options);
    ParallelOptions with_disabled = base;
    with_disabled.obs = &disabled;
    const double dis =
        time_ms([&] { ParallelExchange(algo, with_disabled).run_verified(); }, kReps);
    Recorder recording;
    ParallelOptions with_obs = base;
    with_obs.obs = &recording;
    const double rec =
        time_ms([&] { ParallelExchange(algo, with_obs).run_verified(); }, kReps);
    table.start_row()
        .cell("parallel x4")
        .cell(off, 3)
        .cell(dis, 3)
        .cell(rec, 3)
        .cell(pct(dis, off), 1)
        .cell(pct(rec, off), 1)
        .cell(static_cast<std::int64_t>(recording.snapshot().events.size()));
  }
  table.print(std::cout);
  std::cout << "\ntarget: recording < 5% on the parallel path (advisory — wall-clock "
               "noise on shared machines can exceed the effect being measured).\n";

  // Raw recording throughput: how fast one thread can emit span pairs
  // into its lock-free buffer, and what a drop-saturated buffer does.
  std::cout << "\n=== Raw event throughput (single thread) ===\n\n";
  constexpr std::int64_t kEvents = 1'000'000;
  Recorder sink;
  const double span_ms = time_ms(
      [&] {
        for (std::int64_t i = 0; i < kEvents / 2; ++i) {
          sink.begin("bench");
          sink.end("bench");
        }
      },
      1);
  const double ns_per_event = span_ms * 1e6 / static_cast<double>(kEvents);
  std::cout << "begin/end pair: " << ns_per_event << " ns/event ("
            << with_thousands(sink.dropped_events()) << " dropped once the "
            << (ObsOptions{}.events_per_thread) << "-event buffer filled — drops are "
            << "counted, recording never blocks)\n";
  return 0;
}
