// Telemetry overhead: what recording costs on the paths it instruments.
//
// Three configurations per engine path, wall-clock averaged over
// repetitions:
//   off       no recorder (obs = nullptr) — the baseline every bench
//             without telemetry runs;
//   disabled  a recorder constructed with enabled=false passed through
//             the hooks — prices the "one branch per event" claim;
//   recording a live recorder with default buffers.
// Paths: the sequential engine and the threaded BSP runtime on 8x8
// (the reference parallel shape), plus the payload exchange. Overhead
// is reported, not asserted — the target is < 5% on the 8x8 parallel
// path, but wall-clock on shared CI machines is advisory.
//
// The service path IS asserted: a seeded multi-session torexd run on
// 4x4 is timed with the observability plane off (flight rings
// disabled, no exposition) and on (always-on rings plus a rendered
// Prometheus snapshot every few dispatches). Min-of-reps absorbs
// scheduler noise; the cheapest observed run must stay within 5% (plus
// a small epsilon for timer granularity) of the cheapest blind run, or
// the bench exits non-zero. --out=FILE (default BENCH_obs.json)
// receives every measurement as validated JSON.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include "core/exchange_engine.hpp"
#include "core/payload_exchange.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/exposition.hpp"
#include "obs/recorder.hpp"
#include "runtime/parallel_engine.hpp"
#include "svc/session_manager.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace torex;

double time_ms(const std::function<void()>& fn, int reps) {
  fn();  // warm-up: page in code and buffers before timing
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count() / reps;
}

/// Best-of-reps wall clock: each rep is timed alone and the minimum
/// wins, so one preempted run cannot fail the overhead gate.
double min_ms(const std::function<void()>& fn, int reps) {
  fn();  // warm-up
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    best = std::min(best, std::chrono::duration<double, std::milli>(elapsed).count());
  }
  return best;
}

ParcelBuffers<std::int64_t> canonical_parcels(Rank n) {
  ParcelBuffers<std::int64_t> buffers(static_cast<std::size_t>(n));
  for (Rank p = 0; p < n; ++p) {
    for (Rank q = 0; q < n; ++q) {
      buffers[static_cast<std::size_t>(p)].push_back(
          {Block{p, q}, static_cast<std::int64_t>(p) * n + q});
    }
  }
  return buffers;
}

double pct(double with_obs, double base) {
  return base > 0.0 ? (with_obs / base - 1.0) * 100.0 : 0.0;
}

/// One observability-off / observability-on torexd run: `sessions`
/// all-at-once arrivals drained to idle. `observed` keeps the flight
/// rings recording and renders a Prometheus snapshot every 64
/// dispatches (the svc_loadgen --snapshot-every default that feeds a
/// polling torex_top).
void svc_run(const TorusShape& shape, int sessions, bool observed) {
  SessionManagerOptions options;
  options.max_active = 8;
  options.max_queued = sessions;
  options.flight.enabled = observed;
  SessionManager mgr(shape, CostParams{}, options);
  const Rank N = shape.num_nodes();
  for (int id = 0; id < sessions; ++id) {
    SessionRequest req;
    req.tenant = "t";
    req.tenant += std::to_string(id % 4);
    req.send.resize(static_cast<std::size_t>(N));
    for (Rank p = 0; p < N; ++p) {
      auto& row = req.send[static_cast<std::size_t>(p)];
      row.resize(static_cast<std::size_t>(N));
      for (Rank q = 0; q < N; ++q) {
        row[static_cast<std::size_t>(q)] = static_cast<std::int64_t>(id) * N + p + q;
      }
    }
    mgr.submit(std::move(req));
  }
  if (!observed) {
    mgr.run_until_idle();
    return;
  }
  std::int64_t dispatched = 0;
  std::string text;
  while (mgr.run_one()) {
    if (++dispatched % 64 == 0) text = prometheus_text(mgr.exposition_snapshot());
  }
  text = prometheus_text(mgr.exposition_snapshot());
  if (text.empty()) std::abort();  // keep the render from being optimized out
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags = CliFlags::parse(argc, argv, {"out", "reps", "svc-sessions"});
    const std::string out_path = flags.get_string("out", "BENCH_obs.json");
    const int kReps = static_cast<int>(flags.get_int("reps", 20, 1, 1000));
    const int svc_sessions = static_cast<int>(flags.get_int("svc-sessions", 96, 1, 100000));

    const TorusShape shape = TorusShape::make_2d(8, 8);
    const SuhShinAape algo(shape);
    const Rank N = shape.num_nodes();

    ObsOptions disabled_options;
    disabled_options.enabled = false;

    // Named cells so the JSON below can echo the table.
    struct PathRow {
      const char* path;
      double off = 0, disabled = 0, recording = 0;
      std::int64_t events = 0;
    };
    PathRow engine_row{"engine"}, payload_row{"payload"}, parallel_row{"parallel_x4"};

    std::cout << "=== Recorder overhead on 8x8 (" << N << " nodes, " << kReps
              << " reps/cell) ===\n\n";
    TextTable table({"path", "off ms", "disabled ms", "recording ms", "disabled %",
                     "recording %", "events"});
    table.set_align(0, TextTable::Align::kLeft);
    const auto add_row = [&](const PathRow& row) {
      table.start_row()
          .cell(row.path)
          .cell(row.off, 3)
          .cell(row.disabled, 3)
          .cell(row.recording, 3)
          .cell(pct(row.disabled, row.off), 1)
          .cell(pct(row.recording, row.off), 1)
          .cell(row.events);
    };

    {  // Sequential engine: phase/step spans + latency histogram per step.
      EngineOptions base;
      base.record_transfers = false;
      engine_row.off = time_ms([&] { ExchangeEngine(algo, base).run(); }, kReps);
      Recorder disabled(disabled_options);
      EngineOptions with_disabled = base;
      with_disabled.obs = &disabled;
      engine_row.disabled = time_ms([&] { ExchangeEngine(algo, with_disabled).run(); }, kReps);
      Recorder recording;
      EngineOptions with_obs = base;
      with_obs.obs = &recording;
      engine_row.recording = time_ms([&] { ExchangeEngine(algo, with_obs).run(); }, kReps);
      engine_row.events = static_cast<std::int64_t>(recording.snapshot().events.size());
      add_row(engine_row);
    }

    {  // Payload exchange: span per phase/step over real parcels.
      payload_row.off =
          time_ms([&] { exchange_payloads(algo, canonical_parcels(N)); }, kReps);
      Recorder disabled(disabled_options);
      payload_row.disabled = time_ms(
          [&] { exchange_payloads(algo, canonical_parcels(N), &disabled); }, kReps);
      Recorder recording;
      payload_row.recording = time_ms(
          [&] { exchange_payloads(algo, canonical_parcels(N), &recording); }, kReps);
      payload_row.events = static_cast<std::int64_t>(recording.snapshot().events.size());
      add_row(payload_row);
    }

    {  // Threaded BSP runtime: superstep spans + barrier histogram from
       // every worker (the < 5% target path).
      ParallelOptions base;
      base.num_threads = 4;
      parallel_row.off = time_ms([&] { ParallelExchange(algo, base).run_verified(); }, kReps);
      Recorder disabled(disabled_options);
      ParallelOptions with_disabled = base;
      with_disabled.obs = &disabled;
      parallel_row.disabled =
          time_ms([&] { ParallelExchange(algo, with_disabled).run_verified(); }, kReps);
      Recorder recording;
      ParallelOptions with_obs = base;
      with_obs.obs = &recording;
      parallel_row.recording =
          time_ms([&] { ParallelExchange(algo, with_obs).run_verified(); }, kReps);
      parallel_row.events = static_cast<std::int64_t>(recording.snapshot().events.size());
      add_row(parallel_row);
    }
    table.print(std::cout);
    std::cout << "\ntarget: recording < 5% on the parallel path (advisory — wall-clock "
                 "noise on shared machines can exceed the effect being measured).\n";

    // === Service observability A/B (asserted). ===
    const TorusShape svc_shape = TorusShape::make_2d(4, 4);
    const int svc_reps = std::max(kReps / 2, 5);
    const double svc_off =
        min_ms([&] { svc_run(svc_shape, svc_sessions, false); }, svc_reps);
    const double svc_on = min_ms([&] { svc_run(svc_shape, svc_sessions, true); }, svc_reps);
    const double svc_overhead_pct = pct(svc_on, svc_off);
    // 5% of a run this size is comparable to timer jitter; the epsilon
    // keeps a sub-millisecond wobble from failing an honest pass.
    constexpr double kEpsilonMs = 1.0;
    const bool svc_pass = svc_on <= svc_off * 1.05 + kEpsilonMs;
    std::cout << "\n=== Service observability overhead (4x4, " << svc_sessions
              << " sessions, min of " << svc_reps << " reps) ===\n\n"
              << "off (flight rings disabled, no exposition): " << compact_double(svc_off, 3)
              << " ms\non  (rings + prometheus snapshot every 64 dispatches): "
              << compact_double(svc_on, 3) << " ms\noverhead: "
              << compact_double(svc_overhead_pct, 2) << "% (gate: 5% + " << kEpsilonMs
              << " ms epsilon) — " << (svc_pass ? "PASS" : "FAIL") << "\n";

    // Raw recording throughput: how fast one thread can emit span pairs
    // into its lock-free buffer, and what a drop-saturated buffer does.
    std::cout << "\n=== Raw event throughput (single thread) ===\n\n";
    constexpr std::int64_t kEvents = 1'000'000;
    Recorder sink;
    const double span_ms = time_ms(
        [&] {
          for (std::int64_t i = 0; i < kEvents / 2; ++i) {
            sink.begin("bench");
            sink.end("bench");
          }
        },
        1);
    const double ns_per_event = span_ms * 1e6 / static_cast<double>(kEvents);
    std::cout << "begin/end pair: " << ns_per_event << " ns/event ("
              << with_thousands(sink.dropped_events()) << " dropped once the "
              << (ObsOptions{}.events_per_thread) << "-event buffer filled — drops are "
              << "counted, recording never blocks)\n";

    std::ostringstream json;
    json << "{\n  \"bench\": \"obs\",\n  \"reps\": " << kReps << ",\n  \"paths\": {\n";
    const auto path_json = [&](const PathRow& row, bool last) {
      json << "    \"" << row.path << "\": {\n"
           << "      \"off_ms\": " << row.off << ",\n"
           << "      \"disabled_ms\": " << row.disabled << ",\n"
           << "      \"recording_ms\": " << row.recording << ",\n"
           << "      \"disabled_pct\": " << pct(row.disabled, row.off) << ",\n"
           << "      \"recording_pct\": " << pct(row.recording, row.off) << ",\n"
           << "      \"events\": " << row.events << "\n    }" << (last ? "\n" : ",\n");
    };
    path_json(engine_row, false);
    path_json(payload_row, false);
    path_json(parallel_row, true);
    json << "  },\n  \"service\": {\n"
         << "    \"shape\": \"" << svc_shape.to_string() << "\",\n"
         << "    \"sessions\": " << svc_sessions << ",\n"
         << "    \"reps\": " << svc_reps << ",\n"
         << "    \"off_ms\": " << svc_off << ",\n"
         << "    \"on_ms\": " << svc_on << ",\n"
         << "    \"overhead_pct\": " << svc_overhead_pct << ",\n"
         << "    \"gate_pct\": 5.0,\n"
         << "    \"gate_epsilon_ms\": " << kEpsilonMs << ",\n"
         << "    \"pass\": " << (svc_pass ? "true" : "false") << "\n  },\n"
         << "  \"raw_ns_per_event\": " << ns_per_event << "\n}\n";
    std::string error;
    if (!json_well_formed(json.str(), &error)) {
      std::cerr << "internal error: " << out_path << " is not well-formed: " << error << "\n";
      return 1;
    }
    std::ofstream out(out_path);
    out << json.str();
    if (!out) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    if (!svc_pass) {
      std::cerr << "FAIL: service observability overhead "
                << compact_double(svc_overhead_pct, 2) << "% exceeds the 5% gate\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "bench_obs: " << error.what() << "\n";
    return 1;
  }
}
