// Figure-style scaling series: completion time vs network size.
//
// The paper's evaluation is presented as closed forms; a modern report
// would plot them. This bench prints the series a plot would use, under
// three parameter regimes, for:
//   * proposed 2D (squares 8x8 .. 32x32) vs ring vs direct-ideal vs
//     [13] and [9] where applicable,
//   * proposed 3D (cubes 4^3 .. 12^3),
// and checks the qualitative shape: the proposed total grows like
// Theta(C^3) in transmission-dominated regimes but with only Theta(C)
// startups, so it dominates both baselines at every size, with the
// margin growing with N.
#include <cmath>
#include <iostream>

#include "baselines/direct_exchange.hpp"
#include "baselines/ring_exchange.hpp"
#include "costmodel/models.hpp"
#include "sim/cost_simulator.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main() {
  using namespace torex;
  bool ok = true;

  struct Regime {
    const char* name;
    CostParams params;
  };
  const Regime regimes[] = {
      {"balanced", CostParams::balanced()},
      {"startup-dominated", CostParams::startup_dominated()},
      {"bandwidth-dominated", CostParams::bandwidth_dominated()},
  };

  for (const auto& regime : regimes) {
    std::cout << "=== 2D scaling, " << regime.name << " ===\n\n";
    TextTable table({"torus", "N", "proposed", "ring", "direct-ideal", "[13]", "[9]",
                     "ring/proposed"});
    table.set_align(0, TextTable::Align::kLeft);
    double prev_ratio = 0.0;
    for (std::int32_t side : {8, 12, 16, 20, 24, 28, 32}) {
      const TorusShape shape = TorusShape::make_2d(side, side);
      const CostParams& p = regime.params;
      const double ours = proposed_cost_nd(shape, p).total();

      CostParams ring_params = p;
      const double N = static_cast<double>(shape.num_nodes());
      const double ring_total = (N - 1) * p.t_s +
                                N * (N - 1) / 2 * static_cast<double>(p.m) * p.t_c +
                                (N - 1) * p.t_l;
      (void)ring_params;
      const double direct = direct_ideal_cost(shape, p).total();

      std::string tseng = "-";
      std::string sy = "-";
      if (is_power_of_two(side)) {
        const int d = static_cast<int>(std::lround(std::log2(side)));
        tseng = compact_double(tseng_cost(d, p).total(), 1);
        sy = compact_double(suh_yalamanchili_cost(d, p).total(), 1);
      }

      const double ratio = ring_total / ours;
      ok = ok && ours < ring_total;
      ok = ok && ratio >= prev_ratio * 0.8;  // margin does not collapse with size
      prev_ratio = ratio;

      table.start_row()
          .cell(shape.to_string())
          .cell(static_cast<std::int64_t>(shape.num_nodes()))
          .cell(ours, 1)
          .cell(ring_total, 1)
          .cell(direct, 1)
          .cell(tseng)
          .cell(sy)
          .cell(ratio, 2);
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "=== 3D scaling (balanced) ===\n\n";
  TextTable cube({"torus", "N", "proposed startups", "proposed total", "ring total",
                  "ring/proposed"});
  cube.set_align(0, TextTable::Align::kLeft);
  for (std::int32_t side : {4, 8, 12, 16, 20}) {
    const TorusShape shape = TorusShape::make_3d(side, side, side);
    const CostParams p = CostParams::balanced();
    const CostBreakdown ours = proposed_cost_nd(shape, p);
    const double N = static_cast<double>(shape.num_nodes());
    const double ring_total = (N - 1) * p.t_s +
                              N * (N - 1) / 2 * static_cast<double>(p.m) * p.t_c +
                              (N - 1) * p.t_l;
    ok = ok && ours.total() < ring_total;
    cube.start_row()
        .cell(shape.to_string())
        .cell(static_cast<std::int64_t>(shape.num_nodes()))
        .cell(ours.startup / p.t_s, 0)
        .cell(ours.total(), 1)
        .cell(ring_total, 1)
        .cell(ring_total / ours.total(), 2);
  }
  cube.print(std::cout);

  std::cout << "\nproposed dominates the baselines at every size with growing margin: "
            << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
