// Static contention proofs at scale.
//
// The engine-based checks execute O(N^2) blocks; the static prover
// replays each step with synthetic full-activity messages (a superset
// of any real traffic) in O(N*n) — enough to verify the paper's central
// claim on tori three orders of magnitude beyond engine reach. This
// bench proves contention-freedom for a ladder of large shapes and
// reports the proof times.
#include <chrono>
#include <iostream>

#include "sim/contention.hpp"
#include "util/table.hpp"

int main() {
  using namespace torex;
  std::cout << "=== Static contention proofs on large tori ===\n\n";
  TextTable table({"torus", "N", "steps", "channels", "max load", "proof time (ms)"});
  table.set_align(0, TextTable::Align::kLeft);
  bool ok = true;
  for (auto extents : {std::vector<std::int32_t>{64, 64}, {128, 128}, {256, 256},
                       {32, 32, 32}, {64, 64, 64}, {16, 16, 16, 16}}) {
    const auto t0 = std::chrono::steady_clock::now();
    const TorusShape shape(extents);
    const SuhShinAape algo(shape);
    const ContentionReport report = check_schedule_contention_static(algo);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    ok = ok && report.contention_free && report.max_channel_load == 1;
    table.start_row()
        .cell(shape.to_string())
        .cell(static_cast<std::int64_t>(shape.num_nodes()))
        .cell(static_cast<std::int64_t>(algo.total_steps()))
        .cell(algo.torus().num_channels())
        .cell(report.max_channel_load)
        .cell(static_cast<std::int64_t>(ms));
  }
  table.print(std::cout);
  std::cout << "\nevery step of every schedule keeps every directed channel at load 1,\n"
               "proved without moving a single block.\n";
  std::cout << "\nall large-shape proofs hold: " << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
