// Experiment: switching-discipline portability (paper §2 and §6: "the
// proposed algorithms apply equally well to networks using virtual
// cut-through or packet switching ... can be efficiently used in
// virtual cut-through or circuit-switched networks").
//
// We execute the proposed schedule and the direct baseline at flit
// level under all three switching disciplines. The shapes to reproduce:
//   * the proposed schedule is stall-free in every mode, so wormhole
//     and virtual cut-through give identical cycle counts (contention
//     freedom makes the buffering discipline irrelevant), and
//     store-and-forward only adds the per-hop serialization latency;
//   * the direct baseline improves substantially under cut-through
//     (blocked worms stop clogging channels) but still trails the
//     combining schedule.
#include <iostream>

#include "baselines/direct_exchange.hpp"
#include "core/exchange_engine.hpp"
#include "sim/wormhole.hpp"
#include "util/table.hpp"

namespace {

const char* mode_name(torex::SwitchingMode mode) {
  switch (mode) {
    case torex::SwitchingMode::kWormhole: return "wormhole";
    case torex::SwitchingMode::kVirtualCutThrough: return "cut-through";
    case torex::SwitchingMode::kStoreAndForward: return "store&forward";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace torex;
  const std::int64_t flits_per_block = 8;
  bool ok = true;

  std::cout << "=== Switching disciplines (" << flits_per_block
            << " flits per block) ===\n\n";
  TextTable table({"torus", "algo", "mode", "network cycles", "stall cycles"});
  table.set_align(0, TextTable::Align::kLeft);
  table.set_align(1, TextTable::Align::kLeft);
  table.set_align(2, TextTable::Align::kLeft);

  for (auto extents : {std::vector<std::int32_t>{8, 8}, {12, 12}}) {
    const TorusShape shape(extents);
    const SuhShinAape algo(shape);
    ExchangeEngine engine(algo);
    const ExchangeTrace trace = engine.run_verified();
    DirectExchange direct(shape);

    std::int64_t ours_cycles[3] = {0, 0, 0};
    int mode_index = 0;
    for (SwitchingMode mode : {SwitchingMode::kWormhole, SwitchingMode::kVirtualCutThrough,
                               SwitchingMode::kStoreAndForward}) {
      std::int64_t cycles = 0;
      std::int64_t stalls = 0;
      for (const auto& out : simulate_trace_steps(algo.torus(), trace, flits_per_block, mode)) {
        cycles += out.makespan;
        stalls += out.total_stalls;
      }
      ours_cycles[mode_index++] = cycles;
      ok = ok && stalls == 0;  // stall-free in every discipline
      table.start_row()
          .cell(shape.to_string())
          .cell("proposed")
          .cell(mode_name(mode))
          .cell(cycles)
          .cell(stalls);
    }
    // Contention freedom makes wormhole == cut-through exactly.
    ok = ok && ours_cycles[0] == ours_cycles[1];
    ok = ok && ours_cycles[2] > ours_cycles[0];  // SAF adds per-hop latency

    std::int64_t direct_cycles[3] = {0, 0, 0};
    mode_index = 0;
    for (SwitchingMode mode : {SwitchingMode::kWormhole, SwitchingMode::kVirtualCutThrough,
                               SwitchingMode::kStoreAndForward}) {
      std::int64_t cycles = 0;
      std::int64_t stalls = 0;
      for (const auto& out :
           simulate_routed_steps(direct.torus(), direct.steps(), flits_per_block, mode)) {
        cycles += out.makespan;
        stalls += out.total_stalls;
      }
      direct_cycles[mode_index++] = cycles;
      table.start_row()
          .cell(shape.to_string())
          .cell("direct")
          .cell(mode_name(mode))
          .cell(cycles)
          .cell(stalls);
    }
    // Cut-through rescues the direct baseline somewhat...
    ok = ok && direct_cycles[1] < direct_cycles[0];
    // ...but combining still wins wherever messages pipeline (wormhole
    // and cut-through). Store-and-forward penalizes long messages with
    // its per-hop serialization, and there the small-message direct
    // scheme overtakes combining — faithful to why message combining is
    // a wormhole/cut-through-era technique.
    ok = ok && ours_cycles[0] < direct_cycles[0] && ours_cycles[1] < direct_cycles[1];
    ok = ok && ours_cycles[2] > direct_cycles[2];  // the SAF reversal, pinned
  }
  table.print(std::cout);
  std::cout << "\nproposed schedule: zero stalls in every discipline; wormhole ==\n"
               "cut-through exactly (contention freedom makes buffering moot).\n"
               "store-and-forward reverses the comparison: its per-hop serialization\n"
               "punishes the long combined messages, which is precisely why message\n"
               "combining belongs to the wormhole/cut-through era the paper targets.\n";
  std::cout << "\nswitching-portability claims hold: " << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
