// Reproduces Table 1: "Performance summary of the proposed algorithms".
//
// For each torus in a 2D/3D/4D/5D sweep we print the four closed-form
// cost components next to the values *measured* by executing the
// schedule in the exchange engine and pricing the trace. The paper's
// claim is that the closed forms are exact; a MATCH column makes the
// comparison explicit. Counts are reported in model units (startups,
// blocks, hop-steps, rearranged blocks) with unit parameters so the
// table is parameter-independent, followed by priced totals under the
// default parameter set.
#include <iostream>

#include "core/exchange_engine.hpp"
#include "costmodel/models.hpp"
#include "sim/contention.hpp"
#include "sim/cost_simulator.hpp"
#include "util/table.hpp"

namespace {

torex::CostParams unit_params() {
  torex::CostParams p;
  p.t_s = 1.0;
  p.t_c = 1.0;
  p.t_l = 1.0;
  p.rho = 1.0;
  p.m = 1;
  return p;
}

}  // namespace

int main() {
  using namespace torex;
  const std::vector<std::vector<std::int32_t>> shapes = {
      {8, 8},     {12, 8},    {12, 12},  {16, 8},      {16, 16},    {20, 12},
      {8, 8, 4},  {8, 8, 8},  {12, 8, 4}, {12, 12, 12}, {8, 8, 4, 4}, {8, 4, 4, 4},
      {4, 4, 4, 4, 4}};

  std::cout << "=== Table 1: cost components of the proposed algorithm ===\n"
            << "analytic = closed form (Table 1 row), measured = engine trace\n\n";

  TextTable table({"torus", "startups A/M", "blocks A/M", "rearr-blocks A/M", "hops A/M",
                   "contention-free", "match"});
  table.set_align(0, TextTable::Align::kLeft);

  bool all_match = true;
  for (const auto& extents : shapes) {
    const TorusShape shape(extents);
    const SuhShinAape algo(shape);
    ExchangeEngine engine(algo);
    const ExchangeTrace trace = engine.run_verified();
    const ContentionReport contention = check_trace_contention(algo.torus(), trace);

    const CostParams unit = unit_params();
    const CostBreakdown analytic = proposed_cost_nd(shape, unit);
    const CostBreakdown measured = price_trace(trace, unit);

    auto pair_cell = [](double a, double m) {
      return compact_double(a, 0) + " / " + compact_double(m, 0);
    };
    const bool match = analytic.startup == measured.startup &&
                       analytic.transmission == measured.transmission &&
                       analytic.rearrangement == measured.rearrangement &&
                       analytic.propagation == measured.propagation;
    all_match = all_match && match && contention.contention_free;

    table.start_row()
        .cell(shape.to_string())
        .cell(pair_cell(analytic.startup, measured.startup))
        .cell(pair_cell(analytic.transmission, measured.transmission))
        .cell(pair_cell(analytic.rearrangement, measured.rearrangement))
        .cell(pair_cell(analytic.propagation, measured.propagation))
        .cell(contention.contention_free ? "yes" : "NO")
        .cell(match ? "yes" : "NO");
  }
  table.print(std::cout);

  std::cout << "\n=== Priced completion time (default parameters: t_s=100, t_c=0.02, "
               "t_l=0.05, rho=0.01, m=64B) ===\n\n";
  TextTable priced({"torus", "startup", "transmission", "rearrangement", "propagation",
                    "total"});
  priced.set_align(0, TextTable::Align::kLeft);
  for (const auto& extents : shapes) {
    const TorusShape shape(extents);
    const CostBreakdown c = proposed_cost_nd(shape, CostParams::balanced());
    priced.start_row()
        .cell(shape.to_string())
        .cell(c.startup, 1)
        .cell(c.transmission, 1)
        .cell(c.rearrangement, 1)
        .cell(c.propagation, 1)
        .cell(c.total(), 1);
  }
  priced.print(std::cout);

  std::cout << "\nall analytic/measured components match: " << (all_match ? "yes" : "NO")
            << '\n';
  return all_match ? 0 : 1;
}
