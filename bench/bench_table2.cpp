// Reproduces Table 2: "Comparison of completion time in two algorithms
// for a 2^d x 2^d torus" — cost components of Tseng et al. [13],
// Suh & Yalamanchili [9], and the proposed algorithm.
//
// First the components in model units for d = 2..7 (the closed forms as
// printed in the paper), then priced totals under three parameter
// regimes, showing the paper's qualitative conclusions:
//   * proposed == [13] on startup & transmission, strictly better on
//     rearrangement (3 passes vs 2^{d-1}+1) and propagation
//     (O(2^d) vs O(2^2d));
//   * [9] wins on startups (O(d)), proposed wins everywhere else.
#include <iostream>

#include "costmodel/models.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main() {
  using namespace torex;

  CostParams unit;
  unit.t_s = unit.t_c = unit.t_l = unit.rho = 1.0;
  unit.m = 1;

  std::cout << "=== Table 2: cost components on a 2^d x 2^d torus (model units) ===\n\n";
  for (const char* row : {"startup", "transmission", "rearrangement", "propagation"}) {
    TextTable table({"d", "torus", std::string("[13] ") + row, std::string("[9] ") + row,
                     std::string("proposed ") + row});
    for (int d = 2; d <= 7; ++d) {
      const std::int64_t side = ipow(2, d);
      const CostBreakdown t = tseng_cost(d, unit);
      const CostBreakdown sy = suh_yalamanchili_cost(d, unit);
      const CostBreakdown ours = proposed_cost_power_of_two(d, unit);
      auto pick = [&](const CostBreakdown& c) {
        if (std::string(row) == "startup") return c.startup;
        if (std::string(row) == "transmission") return c.transmission;
        if (std::string(row) == "rearrangement") return c.rearrangement;
        return c.propagation;
      };
      table.start_row()
          .cell(static_cast<std::int64_t>(d))
          .cell(std::to_string(side) + "x" + std::to_string(side))
          .cell(pick(t), 1)
          .cell(pick(sy), 1)
          .cell(pick(ours), 1);
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "=== Priced completion time under three regimes ===\n";
  struct Regime {
    const char* name;
    CostParams params;
  };
  const Regime regimes[] = {
      {"balanced (t_s=100, t_c=0.02, m=64)", CostParams::balanced()},
      {"startup-dominated (t_s=1000, t_c=0.01, m=16)", CostParams::startup_dominated()},
      {"bandwidth-dominated (t_s=10, t_c=0.1, m=1024)", CostParams::bandwidth_dominated()},
  };
  for (const auto& regime : regimes) {
    std::cout << "\n--- " << regime.name << " ---\n";
    TextTable table({"d", "torus", "[13] total", "[9] total", "proposed total", "winner"});
    for (int d = 2; d <= 7; ++d) {
      const std::int64_t side = ipow(2, d);
      const double t = tseng_cost(d, regime.params).total();
      const double sy = suh_yalamanchili_cost(d, regime.params).total();
      const double ours = proposed_cost_power_of_two(d, regime.params).total();
      const char* winner = ours <= t && ours <= sy ? "proposed" : (sy <= t ? "[9]" : "[13]");
      table.start_row()
          .cell(static_cast<std::int64_t>(d))
          .cell(std::to_string(side) + "x" + std::to_string(side))
          .cell(t, 1)
          .cell(sy, 1)
          .cell(ours, 1)
          .cell(winner);
    }
    table.print(std::cout);
  }

  std::cout << "\npaper qualitative checks:\n";
  bool ok = true;
  for (int d = 2; d <= 7; ++d) {
    const CostBreakdown t = tseng_cost(d, unit);
    const CostBreakdown sy = suh_yalamanchili_cost(d, unit);
    const CostBreakdown ours = proposed_cost_power_of_two(d, unit);
    ok = ok && t.startup == ours.startup && t.transmission == ours.transmission;
    ok = ok && ours.rearrangement <= t.rearrangement && ours.propagation <= t.propagation;
    // [9]'s 3d-3 startups tie the proposed 2^{d-1}+2 at d = 3 (6 each);
    // the asymptotic relations are strict from d = 4.
    if (d >= 4) ok = ok && sy.startup < ours.startup;
    if (d >= 4) {
      ok = ok && ours.transmission < sy.transmission &&
           ours.rearrangement < sy.rearrangement && ours.propagation < sy.propagation;
    }
  }
  std::cout << "  proposed == [13] on startup+transmission, <= on the rest: "
            << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
