// Experiment E3 (paper §6 extension): virtual-node padding for tori
// whose extents are not multiples of four.
//
// For a sweep of physical shapes we pad to the next multiple-of-four
// virtual torus, run the padded exchange, and report the overhead
// sources: role multiplicity (virtual nodes per physical host) and the
// realized per-step send serialization, plus the completion-time ratio
// against the ideal torus of the padded size. The shape to reproduce:
// padding costs at most the hosting multiplicity and typically much
// less, because virtual roles are idle in most steps.
#include <iostream>

#include "core/exchange_engine.hpp"
#include "core/virtual_torus.hpp"
#include "sim/cost_simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace torex;
  const std::vector<std::vector<std::int32_t>> shapes = {
      {10, 10}, {11, 9}, {9, 7}, {13, 13}, {6, 6}, {14, 10}, {7, 6, 5}, {6, 5, 4}};
  const CostParams params = CostParams::balanced();

  std::cout << "=== Virtual-node padding overhead (paper §6) ===\n\n";
  TextTable table({"physical", "virtual", "roles/host", "max serialization",
                   "padded total", "native(virtual) total", "overhead"});
  table.set_align(0, TextTable::Align::kLeft);
  table.set_align(1, TextTable::Align::kLeft);

  bool ok = true;
  for (const auto& extents : shapes) {
    const VirtualTorusAape padded{TorusShape{extents}};
    const VirtualExchangeResult result = padded.run_verified();

    // Padded completion time: per-step cost scaled by that step's
    // realized host serialization (a host sending k messages in a step
    // serializes them).
    const double m = static_cast<double>(params.m);
    double padded_total = 0.0;
    for (std::size_t i = 0; i < result.trace.steps.size(); ++i) {
      const auto& step = result.trace.steps[i];
      const double serial = static_cast<double>(result.per_step_host_sends[i]);
      padded_total += serial * (params.t_s +
                                static_cast<double>(step.max_blocks_per_node) * m * params.t_c +
                                static_cast<double>(step.hops) * params.t_l);
    }
    padded_total += static_cast<double>(result.trace.rearrangement_passes) *
                    static_cast<double>(padded.virtual_shape().num_nodes()) * m * params.rho;

    // Reference: a native run on the virtual shape.
    const SuhShinAape native(padded.virtual_shape());
    EngineOptions opts;
    opts.record_transfers = false;
    ExchangeEngine engine(native, opts);
    const double native_total = price_trace(engine.run_verified(), params).total();

    const double overhead = padded_total / native_total;
    ok = ok && overhead <= static_cast<double>(result.max_roles_per_host) + 1e-9;

    table.start_row()
        .cell(padded.physical_shape().to_string())
        .cell(padded.virtual_shape().to_string())
        .cell(result.max_roles_per_host)
        .cell(result.max_host_serialization)
        .cell(padded_total, 1)
        .cell(native_total, 1)
        .cell(overhead, 2);
  }
  table.print(std::cout);
  std::cout << "\noverhead bounded by role multiplicity on every shape: "
            << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
