// Wire-path evaluation: what the pooled zero-copy frame layer buys
// over the per-parcel sealed encoding, measured where it matters —
// heap allocations, bytes copied, and wall-clock per parcel.
//
// Every heap allocation in the process is counted by overriding the
// global operator new/delete, so the numbers are ground truth, not
// instrumentation estimates. For each shape (the paper's 8x8 and the
// 3D 8x4x4) five executors run over identical canonical payloads:
//
//   plain             exchange_payloads (struct moves, no wire)
//   sealed_per_parcel exchange_payloads_sealed, WirePath::kPerParcel
//   sealed_pooled     exchange_payloads_sealed, WirePath::kPooled
//   pooled_paper      exchange_payloads_pooled, §3.3 layout
//   pooled_naive      exchange_payloads_pooled, naive destination order
//
// The bench is self-checking and exits non-zero on regression:
//   * the sealed_pooled wire must allocate >= 2x less than the
//     sealed_per_parcel wire, measured above the plain baseline (the
//     pooled wire's steady-state cost is zero: frames recycle);
//   * sealed_pooled must copy fewer payload bytes than per-parcel;
//   * pooled_paper must stay under a fixed allocs-per-step budget
//     (kAllocBudgetPerStep) once the arena is warm — the CI bench
//     smoke job fails when the zero-copy invariant erodes;
//   * pooled_paper must be fully contiguous in 2D and within the
//     2^(n-2) run bound in 3D.
//
// --out=FILE (default BENCH_wire.json) receives the results as JSON.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "core/payload_exchange.hpp"
#include "core/wire_buffer.hpp"
#include "obs/chrome_trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

// --- Global allocation counting ----------------------------------------

namespace {
std::atomic<std::int64_t> g_allocs{0};
std::atomic<std::int64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(static_cast<std::int64_t>(size), std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace torex;

/// Allocations-per-step ceiling for the warm pooled paper path. The
/// steady-state wire itself allocates nothing (frames recycle through
/// the arena); what remains is buffer growth and the phase-boundary
/// stable_sort scratch, both O(N) per phase. The budget is deliberately
/// a hard constant: if a change re-introduces per-message allocation,
/// allocs-per-step jumps by ~the message count and this trips.
constexpr double kAllocBudgetPerStep = 512.0;

ParcelBuffers<std::int64_t> canonical_parcels(Rank n) {
  ParcelBuffers<std::int64_t> buffers(static_cast<std::size_t>(n));
  for (Rank p = 0; p < n; ++p) {
    for (Rank q = 0; q < n; ++q) {
      buffers[static_cast<std::size_t>(p)].push_back(
          {Block{p, q}, static_cast<std::int64_t>(p) * n + q});
    }
  }
  return buffers;
}

struct PathResult {
  std::string name;
  double ms = 0;                  ///< wall-clock per exchange
  double ns_per_parcel = 0;
  double allocs_per_step = 0;
  double alloc_kib_per_step = 0;
  WirePoolStats stats;            ///< wire traffic delta (zero for plain)
  bool has_stats = false;
};

/// Runs `fn` (one full exchange over fresh canonical payloads) reps
/// times, counting only the exchange itself — seed construction sits
/// outside the measured window. The caller warms the path (and
/// snapshots arena stats) before calling.
template <typename Fn>
PathResult measure(const std::string& name, const SuhShinAape& algo, int reps, Fn&& fn) {
  const Rank N = algo.shape().num_nodes();
  std::int64_t allocs = 0;
  std::int64_t alloc_bytes = 0;
  double total_ms = 0;
  for (int rep = 0; rep < reps; ++rep) {
    auto parcels = canonical_parcels(N);
    const std::int64_t a0 = g_allocs.load(std::memory_order_relaxed);
    const std::int64_t b0 = g_alloc_bytes.load(std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    fn(std::move(parcels));
    const auto elapsed = std::chrono::steady_clock::now() - start;
    allocs += g_allocs.load(std::memory_order_relaxed) - a0;
    alloc_bytes += g_alloc_bytes.load(std::memory_order_relaxed) - b0;
    total_ms += std::chrono::duration<double, std::milli>(elapsed).count();
  }
  const double steps = static_cast<double>(algo.total_steps()) * reps;
  const double parcels_moved =
      static_cast<double>(N) * static_cast<double>(N) * reps;  // lower bound: one hop each
  PathResult r;
  r.name = name;
  r.ms = total_ms / reps;
  r.ns_per_parcel = total_ms * 1e6 / parcels_moved;
  r.allocs_per_step = static_cast<double>(allocs) / steps;
  r.alloc_kib_per_step = static_cast<double>(alloc_bytes) / steps / 1024.0;
  return r;
}

void append_path_json(std::ostringstream& out, const PathResult& r, bool last) {
  out << "        \"" << r.name << "\": {\n"
      << "          \"ms_per_exchange\": " << r.ms << ",\n"
      << "          \"ns_per_parcel\": " << r.ns_per_parcel << ",\n"
      << "          \"allocs_per_step\": " << r.allocs_per_step << ",\n"
      << "          \"alloc_kib_per_step\": " << r.alloc_kib_per_step;
  if (r.has_stats) {
    out << ",\n"
        << "          \"messages\": " << r.stats.messages << ",\n"
        << "          \"parcels\": " << r.stats.parcels << ",\n"
        << "          \"bytes_encoded\": " << r.stats.bytes_encoded << ",\n"
        << "          \"bytes_copied\": " << r.stats.bytes_copied << ",\n"
        << "          \"pool_hits\": " << r.stats.pool_hits << ",\n"
        << "          \"pool_misses\": " << r.stats.pool_misses << ",\n"
        << "          \"contiguous_sends\": " << r.stats.contiguous_sends << ",\n"
        << "          \"total_sends\": " << r.stats.total_sends << ",\n"
        << "          \"gathered_parcels\": " << r.stats.gathered_parcels << ",\n"
        << "          \"max_runs_per_send\": " << r.stats.max_runs_per_send;
  }
  out << "\n        }" << (last ? "\n" : ",\n");
}

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) return;
  ++g_failures;
  std::cerr << "SELF-CHECK FAILED: " << what << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags = CliFlags::parse(argc, argv, {"out", "reps"});
  const std::string out_path = flags.get_string("out", "BENCH_wire.json");
  const int reps = static_cast<int>(flags.get_int("reps", 10, 1, 10000));

  std::ostringstream json;
  json << "{\n  \"bench\": \"wire\",\n  \"alloc_budget_per_step\": " << kAllocBudgetPerStep
       << ",\n  \"reps\": " << reps << ",\n  \"shapes\": [\n";

  const std::vector<std::vector<std::int32_t>> shapes{{8, 8}, {8, 4, 4}};
  for (std::size_t si = 0; si < shapes.size(); ++si) {
    const TorusShape shape(shapes[si]);
    const SuhShinAape algo(shape);
    const Rank N = shape.num_nodes();
    std::cout << "=== " << shape.to_string() << " (" << N << " nodes, "
              << algo.total_steps() << " steps, " << reps << " reps) ===\n\n";

    std::vector<PathResult> results;

    // Each path: one untimed warmup exchange (pool converges, caches
    // warm), then snapshot arena stats, then the measured reps — so
    // both the allocation counts and the traffic stats cover exactly
    // the steady-state reps.
    const auto run_path = [&](const std::string& name, WireArena* arena, auto&& exchange) {
      exchange(canonical_parcels(N));  // warmup
      const WirePoolStats before = arena != nullptr ? arena->stats() : WirePoolStats{};
      PathResult r = measure(name, algo, reps, exchange);
      if (arena != nullptr) {
        r.stats = wire_stats_delta(arena->stats(), before);
        r.has_stats = true;
      }
      results.push_back(r);
    };

    run_path("plain", nullptr, [&](ParcelBuffers<std::int64_t> parcels) {
      exchange_payloads(algo, std::move(parcels));
    });

    {
      WireArena arena;
      IntegrityOptions options;
      options.wire_path = WirePath::kPerParcel;
      options.arena = &arena;
      run_path("sealed_per_parcel", &arena, [&](ParcelBuffers<std::int64_t> parcels) {
        exchange_payloads_sealed(algo, std::move(parcels), {}, options);
      });
    }

    {
      WireArena arena;
      IntegrityOptions options;
      options.wire_path = WirePath::kPooled;
      options.arena = &arena;
      run_path("sealed_pooled", &arena, [&](ParcelBuffers<std::int64_t> parcels) {
        exchange_payloads_sealed(algo, std::move(parcels), {}, options);
      });
    }

    {
      WireArena arena;
      WireExchangeOptions options;
      options.layout = LayoutPolicy::kPaper;
      options.arena = &arena;
      run_path("pooled_paper", &arena, [&](ParcelBuffers<std::int64_t> parcels) {
        exchange_payloads_pooled(algo, std::move(parcels), options);
      });
    }

    {
      WireArena arena;
      WireExchangeOptions options;
      options.layout = LayoutPolicy::kNaiveDestinationOrder;
      options.arena = &arena;
      run_path("pooled_naive", &arena, [&](ParcelBuffers<std::int64_t> parcels) {
        exchange_payloads_pooled(algo, std::move(parcels), options);
      });
    }

    TextTable table({"path", "ms/exch", "ns/parcel", "allocs/step", "KiB alloc/step",
                     "bytes copied", "contig sends", "max runs"});
    table.set_align(0, TextTable::Align::kLeft);
    for (const PathResult& r : results) {
      auto& row = table.start_row()
                      .cell(r.name)
                      .cell(r.ms, 3)
                      .cell(r.ns_per_parcel, 1)
                      .cell(r.allocs_per_step, 1)
                      .cell(r.alloc_kib_per_step, 1);
      if (r.has_stats) {
        row.cell(r.stats.bytes_copied)
            .cell(std::to_string(r.stats.contiguous_sends) + "/" +
                  std::to_string(r.stats.total_sends))
            .cell(r.stats.max_runs_per_send);
      } else {
        row.cell("-").cell("-").cell("-");
      }
    }
    table.print(std::cout);
    std::cout << "\n";

    const PathResult& plain = results[0];
    const PathResult& per_parcel = results[1];
    const PathResult& sealed_pooled = results[2];
    const PathResult& pooled_paper = results[3];
    const PathResult& pooled_naive = results[4];
    const std::string tag = " (" + shape.to_string() + ")";

    // Wire-attributable allocations: the plain path (no wire at all)
    // is the baseline; what a sealed path allocates beyond it is what
    // the wire layer costs. The pooled wire must cost >= 2x less than
    // the per-parcel wire — in steady state it costs zero (every frame
    // is recycled), so this holds with a wide margin.
    const double per_parcel_wire = per_parcel.allocs_per_step - plain.allocs_per_step;
    const double pooled_wire = sealed_pooled.allocs_per_step - plain.allocs_per_step;
    check(per_parcel_wire > 0,
          "per-parcel wire must allocate above the plain baseline" + tag);
    check(pooled_wire * 2.0 <= per_parcel_wire,
          "pooled wire must allocate >= 2x less than per-parcel wire" + tag);
    check(sealed_pooled.stats.bytes_copied < per_parcel.stats.bytes_copied,
          "pooled sealed path must copy fewer bytes than per-parcel" + tag);
    check(pooled_paper.allocs_per_step <= kAllocBudgetPerStep,
          "pooled paper path exceeded the alloc budget" + tag);
    check(pooled_paper.stats.pool_misses <= pooled_paper.stats.pool_hits,
          "warm arena should serve most frames from the pool" + tag);
    if (shape.num_dims() == 2) {
      check(pooled_paper.stats.fully_contiguous(),
            "paper layout must be fully contiguous in 2D" + tag);
    } else {
      check(pooled_paper.stats.max_runs_per_send <= 2,
            "paper layout must stay within 2 runs per send in 3D" + tag);
      check(pooled_naive.stats.gathered_parcels >= pooled_paper.stats.gathered_parcels,
            "naive layout should gather at least as much as the paper layout" + tag);
    }

    json << "    {\n      \"shape\": \"" << shape.to_string() << "\",\n      \"nodes\": " << N
         << ",\n      \"steps\": " << algo.total_steps() << ",\n      \"paths\": {\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      append_path_json(json, results[i], i + 1 == results.size());
    }
    json << "      }\n    }" << (si + 1 == shapes.size() ? "\n" : ",\n");
  }

  json << "  ],\n  \"pass\": " << (g_failures == 0 ? "true" : "false") << "\n}\n";

  std::string error;
  if (!json_well_formed(json.str(), &error)) {
    std::cerr << "internal error: BENCH_wire.json is not well-formed: " << error << "\n";
    return 1;
  }
  {
    std::ofstream out(out_path);
    out << json.str();
    if (!out) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
  }
  std::cout << "wrote " << out_path << "\n";
  if (g_failures > 0) {
    std::cerr << g_failures << " self-check(s) failed\n";
    return 1;
  }
  std::cout << "all self-checks passed\n";
  return 0;
}
