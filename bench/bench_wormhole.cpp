// Flit-level evaluation on the wormhole simulator (paper §2 machine
// model, executed rather than modeled).
//
// Two results:
//  1. Validation: every step of the proposed schedule runs stall-free
//     at flit granularity, so the measured cycle count per step equals
//     hops + flits - 1 exactly — the simulator reproduces the closed
//     form with zero error.
//  2. Comparison: total network cycles (sum over steps of batch
//     makespan) of the proposed algorithm vs the direct baseline,
//     whose wormhole stalls grow with network size.
#include <iostream>

#include "baselines/direct_exchange.hpp"
#include "core/exchange_engine.hpp"
#include "sim/wormhole.hpp"
#include "util/table.hpp"

int main() {
  using namespace torex;
  const std::int64_t flits_per_block = 8;
  const std::vector<std::vector<std::int32_t>> shapes = {{4, 4}, {8, 8}, {12, 12}, {8, 8, 4}};

  std::cout << "=== Flit-level wormhole execution (" << flits_per_block
            << " flits per block) ===\n\n";
  TextTable table({"torus", "algo", "steps", "network cycles", "stall cycles",
                   "stall-free", "cycles vs proposed"});
  table.set_align(0, TextTable::Align::kLeft);
  table.set_align(1, TextTable::Align::kLeft);

  bool ok = true;
  for (const auto& extents : shapes) {
    const TorusShape shape(extents);

    // Proposed algorithm.
    const SuhShinAape algo(shape);
    ExchangeEngine engine(algo);
    const ExchangeTrace trace = engine.run_verified();
    const auto ours = simulate_trace_steps(algo.torus(), trace, flits_per_block);
    std::int64_t our_cycles = 0;
    std::int64_t our_stalls = 0;
    bool stall_free = true;
    for (std::size_t i = 0; i < ours.size(); ++i) {
      our_cycles += ours[i].makespan;
      our_stalls += ours[i].total_stalls;
      stall_free = stall_free && ours[i].stall_free();
      // Validation: per-step makespan must equal the closed form.
      if (trace.steps[i].max_blocks_per_node > 0) {
        const std::int64_t expected = WormholeSimulator::uncontended_time(
            trace.steps[i].hops, 1 + trace.steps[i].max_blocks_per_node * flits_per_block);
        ok = ok && ours[i].makespan == expected;
      }
    }
    ok = ok && stall_free;
    table.start_row()
        .cell(shape.to_string())
        .cell("proposed")
        .cell(static_cast<std::int64_t>(ours.size()))
        .cell(our_cycles)
        .cell(our_stalls)
        .cell(stall_free ? "yes" : "NO")
        .cell(1.0, 2);

    // Direct baseline.
    DirectExchange direct(shape);
    const auto base = simulate_routed_steps(direct.torus(), direct.steps(), flits_per_block);
    std::int64_t base_cycles = 0;
    std::int64_t base_stalls = 0;
    for (const auto& out : base) {
      base_cycles += out.makespan;
      base_stalls += out.total_stalls;
    }
    table.start_row()
        .cell(shape.to_string())
        .cell("direct")
        .cell(static_cast<std::int64_t>(base.size()))
        .cell(base_cycles)
        .cell(base_stalls)
        .cell(base_stalls == 0 ? "yes" : "no")
        .cell(static_cast<double>(base_cycles) / static_cast<double>(our_cycles), 2);
  }
  table.print(std::cout);
  std::cout << "\n(network cycles exclude per-step software startup; adding t_s per step\n"
               "widens the gap further because direct needs N-1 startups.)\n";
  std::cout << "\nproposed schedule stall-free with exact closed-form step times: "
            << (ok ? "yes" : "NO") << '\n';
  return ok ? 0 : 1;
}
