// torexd load generator: seeded open-loop arrivals against the
// multi-session SessionManager, with overload on purpose.
//
// The generator submits --sessions exchanges (default 1200) whose
// arrival gaps are exponential with mean --mean-gap phase-costs. The
// default gap (3) against a service demand of num_phases phase-costs
// per session (4 on a 4x4 torus) makes the offered load ~4/3 of
// capacity, so the bounded queue fills and admission control must shed
// — which is the point: the bench demonstrates *graceful* overload
// degradation and audits its accounting.
//
// Tenants t0..t7 arrive round-robin-by-seed with weights 1..4. Two
// tenants carry deliberate quota pressure: t7's per-session byte quota
// is one byte short of a full exchange (every t7 session rejects with
// kParcelBytesQuota), and t6 may run at most one session at a time
// (its queued sessions wait without being rejected). ~30% of sessions
// carry deadlines; under overload some of them expire in the queue.
//
// The run is self-checking and exits non-zero on violation:
//   * conservation: admitted + rejected + deadline_missed_queued (+
//     cancelled_queued when a canceller thread runs) == offered, and
//     every admitted session lands in exactly one terminal bucket;
//   * fidelity: every completed session's recv matrix is byte-identical
//     to the transpose oracle (recv[q][p] == f(id, p, q));
//   * telemetry: svc.* counters match SvcStats and the active-sessions
//     gauge reads zero at idle;
//   * hygiene: the shared arena reports zero outstanding frames.
//
// --threads=J switches to the concurrency soak (the CI TSan job): J
// submitter threads race a canceller (every 17th session) against the
// scheduler thread. Interleaving is nondeterministic there, so the
// deterministic bucket splits are not asserted — conservation,
// fidelity, telemetry, and hygiene still are.
//
// --out=FILE (default BENCH_svc.json) receives the results as JSON:
// parcels/sec, p50/p99 session latency (virtual time), and the shed
// rate, alongside the full disposition accounting.
#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "costmodel/params.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/exposition.hpp"
#include "obs/recorder.hpp"
#include "svc/session_manager.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace torex;

TorusShape parse_torus(const std::string& text) {
  std::vector<std::int32_t> extents;
  std::string token;
  std::istringstream in(text);
  while (std::getline(in, token, 'x')) {
    std::int32_t extent = 0;
    const char* last = token.data() + token.size();
    const auto [ptr, ec] = std::from_chars(token.data(), last, extent);
    if (token.empty() || ec != std::errc{} || ptr != last || extent <= 0) {
      throw std::invalid_argument("--shape has a bad extent \"" + token + "\" in \"" + text +
                                  "\" (want e.g. 4x4 or 8x4x4)");
    }
    extents.push_back(extent);
  }
  if (extents.size() < 2) {
    throw std::invalid_argument("--shape needs at least two extents, e.g. --shape=4x4");
  }
  return TorusShape(extents);
}

/// SplitMix64: tiny, seedable, and identical everywhere — the whole
/// arrival process replays from --seed.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in (0, 1].
  double uniform() {
    return (static_cast<double>(next() >> 11) + 1.0) / 9007199254740993.0;
  }
};

/// The oracle payload node p sends node q in session `id`.
std::int64_t payload(SessionId id, Rank p, Rank q) {
  return (id << 20) ^ (static_cast<std::int64_t>(p) << 10) ^ static_cast<std::int64_t>(q);
}

SessionRequest make_request(SessionId id, Rank N, double arrival, double phase_cost,
                            SplitMix64& rng) {
  SessionRequest req;
  req.tenant = "t";  // two-step concat dodges GCC 12's -Wrestrict false positive
  req.tenant += std::to_string(rng.next() % 8);
  req.weight = static_cast<int>(1 + rng.next() % 4);
  req.arrival = arrival;
  if (rng.next() % 10 < 3) {
    // A deadline between 4x and 20x one phase: generous against pure
    // service time, tight against overload queueing.
    req.deadline = phase_cost * (4.0 + 16.0 * rng.uniform());
  }
  req.send.resize(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    auto& row = req.send[static_cast<std::size_t>(p)];
    row.resize(static_cast<std::size_t>(N));
    for (Rank q = 0; q < N; ++q) {
      row[static_cast<std::size_t>(q)] = payload(id, p, q);
    }
  }
  return req;
}

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) return;
  ++g_failures;
  std::cerr << "SELF-CHECK FAILED: " << what << "\n";
}

/// Publishes the live exposition snapshot atomically: write to a
/// sibling .tmp, then rename over the target. Readers (torex_top)
/// therefore never observe a torn file.
void publish_snapshot(const SessionManager& mgr, const std::string& path) {
  const std::string text = prometheus_text(mgr.exposition_snapshot());
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << text;
    if (!out) {
      check(false, "cannot write snapshot file " + tmp);
      return;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    check(false, "cannot publish snapshot file " + path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliFlags flags = CliFlags::parse(
        argc, argv,
        {"shape", "sessions", "seed", "threads", "mean-gap", "max-active", "max-queued", "out",
         "snapshot", "snapshot-every"});
    const TorusShape shape = parse_torus(flags.get_string("shape", "4x4"));
    const auto num_sessions = flags.get_int("sessions", 1200, 1, 1000000);
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42, 0, 1LL << 62));
    const int threads = static_cast<int>(flags.get_int("threads", 0, 0, 64));
    const double mean_gap = flags.get_double("mean-gap", 3.0);
    const std::string out_path = flags.get_string("out", "BENCH_svc.json");
    const std::string snapshot_path = flags.get_string("snapshot", "");
    const auto snapshot_every = flags.get_int("snapshot-every", 64, 1, 1 << 20);
    const Rank N = shape.num_nodes();

    SessionManagerOptions options;
    options.max_active = static_cast<int>(flags.get_int("max-active", 8, 1, 1024));
    options.max_queued = static_cast<int>(flags.get_int("max-queued", 64, 1, 1 << 20));
    // t7: one byte short of a full exchange — every session rejects at
    // admission. t6: at most one session in flight at a time.
    options.quotas["t7"].max_parcel_bytes =
        static_cast<std::int64_t>(N) * N * static_cast<std::int64_t>(sizeof(std::int64_t)) - 1;
    options.quotas["t6"].max_sessions_in_flight = 1;
    Recorder recorder;
    options.obs = &recorder;
    // Flight dumps from this run carry the exact command to replay it.
    {
      std::ostringstream hint;
      hint << "svc_loadgen --shape=" << flags.get_string("shape", "4x4")
           << " --sessions=" << num_sessions << " --seed=" << seed << " --threads=" << threads
           << " --mean-gap=" << mean_gap << " --max-active=" << options.max_active
           << " --max-queued=" << options.max_queued;
      options.repro_hint = hint.str();
    }

    SessionManager mgr(shape, CostParams{}, options);
    const double phase_cost = mgr.phase_cost();

    // Precompute the seeded open-loop arrival plan so the threaded soak
    // offers the same load as the deterministic run.
    SplitMix64 rng{seed};
    std::vector<SessionRequest> plan;
    plan.reserve(static_cast<std::size_t>(num_sessions));
    double arrival = 0.0;
    for (SessionId id = 0; id < num_sessions; ++id) {
      arrival += -mean_gap * phase_cost * std::log(rng.uniform());
      plan.push_back(make_request(id, N, arrival, phase_cost, rng));
    }

    std::cout << "svc_loadgen: " << num_sessions << " sessions on " << shape.to_string() << " ("
              << N << " nodes), seed " << seed << ", mean gap " << mean_gap
              << " phase-costs, threads " << threads << "\n";

    // Racing submitters make the manager-assigned session id diverge
    // from the plan index that seeded the payloads, so the oracle must
    // be keyed through this map. Each submit writes one distinct slot
    // (assigned ids are unique), so concurrent writes never collide.
    std::vector<std::int64_t> plan_tag(static_cast<std::size_t>(num_sessions), -1);

    const auto wall_start = std::chrono::steady_clock::now();
    bool cancels_injected = false;
    if (threads == 0) {
      std::int64_t i = 0;
      for (auto& req : plan) plan_tag[static_cast<std::size_t>(mgr.submit(std::move(req)))] = i++;
      if (snapshot_path.empty()) {
        mgr.run_until_idle();
      } else {
        // Live-feed mode: publish the exposition snapshot every K
        // dispatched phases so torex_top can watch the run.
        std::int64_t dispatched = 0;
        while (mgr.run_one()) {
          if (++dispatched % snapshot_every == 0) publish_snapshot(mgr, snapshot_path);
        }
      }
    } else {
      // Concurrency soak: submitters and a canceller race the scheduler.
      cancels_injected = true;
      std::atomic<std::int64_t> next{0};
      std::atomic<bool> done_submitting{false};
      std::vector<std::thread> submitters;
      submitters.reserve(static_cast<std::size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        submitters.emplace_back([&] {
          for (;;) {
            const std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= num_sessions) return;
            const SessionId sid = mgr.submit(std::move(plan[static_cast<std::size_t>(i)]));
            plan_tag[static_cast<std::size_t>(sid)] = i;
          }
        });
      }
      std::thread canceller([&] {
        std::int64_t cancelled_upto = 0;
        while (!done_submitting.load(std::memory_order_acquire)) {
          const std::int64_t submitted = mgr.sessions();
          for (; cancelled_upto < submitted; ++cancelled_upto) {
            if (cancelled_upto % 17 == 0) mgr.cancel(cancelled_upto);
          }
          std::this_thread::yield();
        }
      });
      while (!done_submitting.load(std::memory_order_acquire)) {
        if (!mgr.run_one() && next.load(std::memory_order_relaxed) >= num_sessions) {
          done_submitting.store(true, std::memory_order_release);
        }
      }
      for (auto& t : submitters) t.join();
      canceller.join();
      mgr.run_until_idle();
    }
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - wall_start)
                               .count();

    const SvcStats stats = mgr.stats();

    // --- Conservation: nothing admitted, shed, or expired goes missing.
    check(stats.offered == num_sessions, "offered must equal submitted sessions");
    check(stats.disposed() == stats.offered,
          "admitted + rejected + deadline_missed_queued + cancelled_queued must equal offered");
    check(stats.admitted == stats.completed + stats.failed + stats.cancelled +
                                stats.deadline_missed_running,
          "every admitted session must land in exactly one terminal bucket");
    if (threads == 0) {
      check(stats.cancelled_queued == 0 && stats.cancelled == 0 && stats.failed == 0,
            "deterministic run has no cancels and no failures");
      check(stats.rejected > 0, "overload plan must shed (raise --sessions or lower --mean-gap)");
      check(stats.deadline_missed() > 0, "overload plan must miss some deadlines");
    }
    check(stats.completed > 0, "some sessions must complete");

    // --- Fidelity: every completed exchange matches the oracle.
    std::vector<double> latencies;
    std::int64_t verified = 0;
    for (SessionId id = 0; id < mgr.sessions(); ++id) {
      const SessionRecord rec = mgr.record(id);
      check(rec.terminal(), "all sessions must be terminal at idle");
      if (rec.state != SessionState::kCompleted) continue;
      latencies.push_back(rec.latency());
      const auto recv = mgr.take_result(id);
      const std::int64_t tag = plan_tag[static_cast<std::size_t>(id)];
      bool ok = tag >= 0 && static_cast<Rank>(recv.size()) == N;
      for (Rank q = 0; ok && q < N; ++q) {
        for (Rank p = 0; ok && p < N; ++p) {
          ok = recv[static_cast<std::size_t>(q)][static_cast<std::size_t>(p)] == payload(tag, p, q);
        }
      }
      check(ok, "completed session " + std::to_string(id) + " must match the transpose oracle");
      ++verified;
    }
    check(verified == stats.completed, "every completed session must be verified");

    // --- Telemetry: counters mirror SvcStats; gauges read idle.
    const Telemetry telemetry = recorder.snapshot();
    check(telemetry.metrics.counter_value("svc.admitted") == stats.admitted,
          "svc.admitted counter must match stats");
    check(telemetry.metrics.counter_value("svc.rejected") == stats.rejected,
          "svc.rejected counter must match stats");
    check(telemetry.metrics.counter_value("svc.deadline_missed") == stats.deadline_missed(),
          "svc.deadline_missed counter must match stats");
    check(telemetry.metrics.gauge_value("svc.active_sessions") == 0,
          "active-sessions gauge must read zero at idle");
    check(telemetry.metrics.gauge_value("svc.queued_sessions") == 0,
          "queued-sessions gauge must read zero at idle");

    // --- Hygiene: the shared arena leaked nothing.
    check(mgr.outstanding_frames() == 0, "arena must report zero outstanding frames at idle");

    // --- Exposition: the labeled snapshot agrees with SvcStats and
    // both wire formats lint clean.
    const MetricsSnapshot expo = mgr.exposition_snapshot();
    check(expo.counter_value("svc.offered") == stats.offered,
          "exposition svc.offered must match stats");
    check(expo.counter_value("svc.completed") == stats.completed,
          "exposition svc.completed must match stats");
    check(expo.counter_value("svc.parcels_delivered") == stats.parcels_delivered,
          "exposition svc.parcels_delivered must match stats");
    check(expo.gauge_value("svc.active_sessions") == 0,
          "exposition active-sessions gauge must read zero at idle");
    std::string lint_error;
    check(prometheus_text_well_formed(prometheus_text(expo), &lint_error),
          "prometheus exposition must lint: " + lint_error);
    check(json_well_formed(json_snapshot(expo), &lint_error),
          "json exposition must lint: " + lint_error);
    if (!snapshot_path.empty()) {
      publish_snapshot(mgr, snapshot_path);
      std::cout << "published final snapshot to " << snapshot_path << "\n";
    }

    std::sort(latencies.begin(), latencies.end());
    const double p50 = percentile(latencies, 0.50);
    const double p99 = percentile(latencies, 0.99);
    const double shed_rate =
        static_cast<double>(stats.rejected) / static_cast<double>(stats.offered);
    const double parcels_per_sec =
        wall_ms > 0 ? static_cast<double>(stats.parcels_delivered) / (wall_ms / 1e3) : 0.0;

    TextTable table({"metric", "value"});
    table.set_align(0, TextTable::Align::kLeft);
    table.start_row().cell("offered").cell(stats.offered);
    table.start_row().cell("admitted").cell(stats.admitted);
    table.start_row().cell("rejected (shed)").cell(stats.rejected);
    table.start_row().cell("deadline missed").cell(stats.deadline_missed());
    table.start_row().cell("cancelled").cell(stats.cancelled + stats.cancelled_queued);
    table.start_row().cell("completed").cell(stats.completed);
    table.start_row().cell("failed").cell(stats.failed);
    table.start_row().cell("phases executed").cell(stats.phases_executed);
    table.start_row().cell("parcels delivered").cell(stats.parcels_delivered);
    table.start_row().cell("shed rate").cell(shed_rate, 3);
    table.start_row().cell("p50 latency (vt)").cell(p50, 1);
    table.start_row().cell("p99 latency (vt)").cell(p99, 1);
    table.start_row().cell("parcels/sec").cell(parcels_per_sec, 0);
    table.start_row().cell("wall ms").cell(wall_ms, 1);
    table.print(std::cout);

    std::ostringstream json;
    json << "{\n  \"bench\": \"svc\",\n"
         << "  \"shape\": \"" << shape.to_string() << "\",\n"
         << "  \"nodes\": " << N << ",\n"
         << "  \"sessions\": " << num_sessions << ",\n"
         << "  \"seed\": " << seed << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"mean_gap_phase_costs\": " << mean_gap << ",\n"
         << "  \"phase_cost\": " << phase_cost << ",\n"
         << "  \"max_active\": " << options.max_active << ",\n"
         << "  \"max_queued\": " << options.max_queued << ",\n"
         << "  \"cancels_injected\": " << (cancels_injected ? "true" : "false") << ",\n"
         << "  \"stats\": {\n"
         << "    \"offered\": " << stats.offered << ",\n"
         << "    \"admitted\": " << stats.admitted << ",\n"
         << "    \"rejected\": " << stats.rejected << ",\n"
         << "    \"deadline_missed_queued\": " << stats.deadline_missed_queued << ",\n"
         << "    \"deadline_missed_running\": " << stats.deadline_missed_running << ",\n"
         << "    \"cancelled_queued\": " << stats.cancelled_queued << ",\n"
         << "    \"cancelled\": " << stats.cancelled << ",\n"
         << "    \"completed\": " << stats.completed << ",\n"
         << "    \"failed\": " << stats.failed << ",\n"
         << "    \"phases_executed\": " << stats.phases_executed << ",\n"
         << "    \"parcels_delivered\": " << stats.parcels_delivered << "\n"
         << "  },\n"
         << "  \"shed_rate\": " << shed_rate << ",\n"
         << "  \"p50_latency_vt\": " << p50 << ",\n"
         << "  \"p99_latency_vt\": " << p99 << ",\n"
         << "  \"p50_latency_phases\": " << (phase_cost > 0 ? p50 / phase_cost : 0) << ",\n"
         << "  \"p99_latency_phases\": " << (phase_cost > 0 ? p99 / phase_cost : 0) << ",\n"
         << "  \"parcels_per_sec\": " << parcels_per_sec << ",\n"
         << "  \"wall_ms\": " << wall_ms << ",\n"
         << "  \"pass\": " << (g_failures == 0 ? "true" : "false") << "\n}\n";

    std::string error;
    if (!json_well_formed(json.str(), &error)) {
      std::cerr << "internal error: " << out_path << " is not well-formed: " << error << "\n";
      return 1;
    }
    std::ofstream out(out_path);
    out << json.str();
    if (!out) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    if (g_failures > 0) {
      std::cerr << g_failures << " self-check(s) failed\n";
      return 1;
    }
    std::cout << "all self-checks passed\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "svc_loadgen: " << error.what() << "\n";
    return 1;
  }
}
