file(REMOVE_RECURSE
  "CMakeFiles/bench_direct_vs_combining.dir/bench_direct_vs_combining.cpp.o"
  "CMakeFiles/bench_direct_vs_combining.dir/bench_direct_vs_combining.cpp.o.d"
  "bench_direct_vs_combining"
  "bench_direct_vs_combining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_direct_vs_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
