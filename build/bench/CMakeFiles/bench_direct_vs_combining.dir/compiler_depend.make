# Empty compiler generated dependencies file for bench_direct_vs_combining.
# This may be replaced when dependencies are built.
