file(REMOVE_RECURSE
  "CMakeFiles/bench_fixed_destinations.dir/bench_fixed_destinations.cpp.o"
  "CMakeFiles/bench_fixed_destinations.dir/bench_fixed_destinations.cpp.o.d"
  "bench_fixed_destinations"
  "bench_fixed_destinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fixed_destinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
