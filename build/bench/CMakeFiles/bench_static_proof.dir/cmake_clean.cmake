file(REMOVE_RECURSE
  "CMakeFiles/bench_static_proof.dir/bench_static_proof.cpp.o"
  "CMakeFiles/bench_static_proof.dir/bench_static_proof.cpp.o.d"
  "bench_static_proof"
  "bench_static_proof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_static_proof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
