# Empty compiler generated dependencies file for bench_static_proof.
# This may be replaced when dependencies are built.
