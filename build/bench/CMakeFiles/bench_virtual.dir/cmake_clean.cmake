file(REMOVE_RECURSE
  "CMakeFiles/bench_virtual.dir/bench_virtual.cpp.o"
  "CMakeFiles/bench_virtual.dir/bench_virtual.cpp.o.d"
  "bench_virtual"
  "bench_virtual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_virtual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
