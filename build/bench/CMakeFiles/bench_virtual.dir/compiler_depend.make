# Empty compiler generated dependencies file for bench_virtual.
# This may be replaced when dependencies are built.
