file(REMOVE_RECURSE
  "CMakeFiles/render_schedule.dir/render_schedule.cpp.o"
  "CMakeFiles/render_schedule.dir/render_schedule.cpp.o.d"
  "render_schedule"
  "render_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
