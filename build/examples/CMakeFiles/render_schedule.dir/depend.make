# Empty dependencies file for render_schedule.
# This may be replaced when dependencies are built.
