# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--dims=8,8")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matrix_transpose "/root/repo/build/examples/matrix_transpose" "--dims=8,8" "--tile=2")
set_tests_properties(example_matrix_transpose PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fft_transpose "/root/repo/build/examples/fft_transpose" "--dims=8,8")
set_tests_properties(example_fft_transpose PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_schedule_explorer "/root/repo/build/examples/schedule_explorer" "--dims=8,8" "--node=3")
set_tests_properties(example_schedule_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cost_explorer "/root/repo/build/examples/cost_explorer" "--dims=8,8")
set_tests_properties(example_cost_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sample_sort "/root/repo/build/examples/sample_sort" "--dims=8,4" "--keys=64")
set_tests_properties(example_sample_sort PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_render_schedule "/root/repo/build/examples/render_schedule" "--dims=8,8")
set_tests_properties(example_render_schedule PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
