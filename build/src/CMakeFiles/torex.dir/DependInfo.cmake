
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bruck.cpp" "src/CMakeFiles/torex.dir/baselines/bruck.cpp.o" "gcc" "src/CMakeFiles/torex.dir/baselines/bruck.cpp.o.d"
  "/root/repo/src/baselines/dimwise.cpp" "src/CMakeFiles/torex.dir/baselines/dimwise.cpp.o" "gcc" "src/CMakeFiles/torex.dir/baselines/dimwise.cpp.o.d"
  "/root/repo/src/baselines/direct_exchange.cpp" "src/CMakeFiles/torex.dir/baselines/direct_exchange.cpp.o" "gcc" "src/CMakeFiles/torex.dir/baselines/direct_exchange.cpp.o.d"
  "/root/repo/src/baselines/ring_exchange.cpp" "src/CMakeFiles/torex.dir/baselines/ring_exchange.cpp.o" "gcc" "src/CMakeFiles/torex.dir/baselines/ring_exchange.cpp.o.d"
  "/root/repo/src/core/aape.cpp" "src/CMakeFiles/torex.dir/core/aape.cpp.o" "gcc" "src/CMakeFiles/torex.dir/core/aape.cpp.o.d"
  "/root/repo/src/core/data_array.cpp" "src/CMakeFiles/torex.dir/core/data_array.cpp.o" "gcc" "src/CMakeFiles/torex.dir/core/data_array.cpp.o.d"
  "/root/repo/src/core/exchange_engine.cpp" "src/CMakeFiles/torex.dir/core/exchange_engine.cpp.o" "gcc" "src/CMakeFiles/torex.dir/core/exchange_engine.cpp.o.d"
  "/root/repo/src/core/pattern.cpp" "src/CMakeFiles/torex.dir/core/pattern.cpp.o" "gcc" "src/CMakeFiles/torex.dir/core/pattern.cpp.o.d"
  "/root/repo/src/core/schedule_io.cpp" "src/CMakeFiles/torex.dir/core/schedule_io.cpp.o" "gcc" "src/CMakeFiles/torex.dir/core/schedule_io.cpp.o.d"
  "/root/repo/src/core/schedule_stats.cpp" "src/CMakeFiles/torex.dir/core/schedule_stats.cpp.o" "gcc" "src/CMakeFiles/torex.dir/core/schedule_stats.cpp.o.d"
  "/root/repo/src/core/virtual_torus.cpp" "src/CMakeFiles/torex.dir/core/virtual_torus.cpp.o" "gcc" "src/CMakeFiles/torex.dir/core/virtual_torus.cpp.o.d"
  "/root/repo/src/costmodel/lower_bounds.cpp" "src/CMakeFiles/torex.dir/costmodel/lower_bounds.cpp.o" "gcc" "src/CMakeFiles/torex.dir/costmodel/lower_bounds.cpp.o.d"
  "/root/repo/src/costmodel/models.cpp" "src/CMakeFiles/torex.dir/costmodel/models.cpp.o" "gcc" "src/CMakeFiles/torex.dir/costmodel/models.cpp.o.d"
  "/root/repo/src/runtime/communicator.cpp" "src/CMakeFiles/torex.dir/runtime/communicator.cpp.o" "gcc" "src/CMakeFiles/torex.dir/runtime/communicator.cpp.o.d"
  "/root/repo/src/runtime/node_program.cpp" "src/CMakeFiles/torex.dir/runtime/node_program.cpp.o" "gcc" "src/CMakeFiles/torex.dir/runtime/node_program.cpp.o.d"
  "/root/repo/src/runtime/parallel_engine.cpp" "src/CMakeFiles/torex.dir/runtime/parallel_engine.cpp.o" "gcc" "src/CMakeFiles/torex.dir/runtime/parallel_engine.cpp.o.d"
  "/root/repo/src/sim/contention.cpp" "src/CMakeFiles/torex.dir/sim/contention.cpp.o" "gcc" "src/CMakeFiles/torex.dir/sim/contention.cpp.o.d"
  "/root/repo/src/sim/cost_simulator.cpp" "src/CMakeFiles/torex.dir/sim/cost_simulator.cpp.o" "gcc" "src/CMakeFiles/torex.dir/sim/cost_simulator.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/CMakeFiles/torex.dir/sim/trace_export.cpp.o" "gcc" "src/CMakeFiles/torex.dir/sim/trace_export.cpp.o.d"
  "/root/repo/src/sim/wormhole.cpp" "src/CMakeFiles/torex.dir/sim/wormhole.cpp.o" "gcc" "src/CMakeFiles/torex.dir/sim/wormhole.cpp.o.d"
  "/root/repo/src/topology/group.cpp" "src/CMakeFiles/torex.dir/topology/group.cpp.o" "gcc" "src/CMakeFiles/torex.dir/topology/group.cpp.o.d"
  "/root/repo/src/topology/shape.cpp" "src/CMakeFiles/torex.dir/topology/shape.cpp.o" "gcc" "src/CMakeFiles/torex.dir/topology/shape.cpp.o.d"
  "/root/repo/src/topology/torus.cpp" "src/CMakeFiles/torex.dir/topology/torus.cpp.o" "gcc" "src/CMakeFiles/torex.dir/topology/torus.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/torex.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/torex.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/torex.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/torex.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
