file(REMOVE_RECURSE
  "libtorex.a"
)
