# Empty dependencies file for torex.
# This may be replaced when dependencies are built.
