file(REMOVE_RECURSE
  "CMakeFiles/aape_test.dir/aape_test.cpp.o"
  "CMakeFiles/aape_test.dir/aape_test.cpp.o.d"
  "aape_test"
  "aape_test.pdb"
  "aape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
