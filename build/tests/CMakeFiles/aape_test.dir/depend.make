# Empty dependencies file for aape_test.
# This may be replaced when dependencies are built.
