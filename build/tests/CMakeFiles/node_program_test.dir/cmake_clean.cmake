file(REMOVE_RECURSE
  "CMakeFiles/node_program_test.dir/node_program_test.cpp.o"
  "CMakeFiles/node_program_test.dir/node_program_test.cpp.o.d"
  "node_program_test"
  "node_program_test.pdb"
  "node_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
