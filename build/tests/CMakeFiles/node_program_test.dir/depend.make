# Empty dependencies file for node_program_test.
# This may be replaced when dependencies are built.
