# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_test[1]_include.cmake")
include("/root/repo/build/tests/aape_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/costmodel_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/data_array_test[1]_include.cmake")
include("/root/repo/build/tests/wormhole_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/verification_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/trace_export_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/node_program_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")
