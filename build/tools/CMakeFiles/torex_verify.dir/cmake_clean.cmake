file(REMOVE_RECURSE
  "CMakeFiles/torex_verify.dir/torex_verify.cpp.o"
  "CMakeFiles/torex_verify.dir/torex_verify.cpp.o.d"
  "torex_verify"
  "torex_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torex_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
