# Empty compiler generated dependencies file for torex_verify.
# This may be replaced when dependencies are built.
