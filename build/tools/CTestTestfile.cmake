# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_torex_verify "/root/repo/build/tools/torex_verify" "--max-nodes=300" "--max-dims=3")
set_tests_properties(tool_torex_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
