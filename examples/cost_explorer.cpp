// Cost explorer: completion-time what-if tool over the paper's model.
//
//   ./cost_explorer [--dims=16,16] [--ts=100] [--tc=0.02] [--tl=0.05]
//                   [--rho=0.01] [--m=64]
//
// For the given torus and parameters, prints the component breakdown of
// the proposed algorithm next to the ring and direct baselines and the
// two prior algorithms (when the torus is a 2^d x 2^d square), then a
// block-size sweep showing where each cost component dominates.
#include <cmath>
#include <iostream>

#include "baselines/direct_exchange.hpp"
#include "baselines/ring_exchange.hpp"
#include "core/exchange_engine.hpp"
#include "costmodel/models.hpp"
#include "sim/cost_simulator.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace torex;
  try {
    const CliFlags flags =
        CliFlags::parse(argc, argv, {"dims", "ts", "tc", "tl", "rho", "m"});
    const auto dims64 = flags.get_int_list("dims", {16, 16});
    std::vector<std::int32_t> dims(dims64.begin(), dims64.end());
    CostParams params;
    params.t_s = flags.get_double("ts", 100.0);
    params.t_c = flags.get_double("tc", 0.02);
    params.t_l = flags.get_double("tl", 0.05);
    params.rho = flags.get_double("rho", 0.01);
    params.m = flags.get_int("m", 64);

    const TorusShape shape(dims);
    std::cout << "completion-time breakdown for " << shape.to_string() << " (t_s="
              << params.t_s << ", t_c=" << params.t_c << ", t_l=" << params.t_l
              << ", rho=" << params.rho << ", m=" << params.m << "B)\n\n";

    TextTable table({"algorithm", "startup", "transmission", "rearrangement",
                     "propagation", "total"});
    table.set_align(0, TextTable::Align::kLeft);
    auto add_row = [&](const std::string& name, const CostBreakdown& c) {
      table.start_row()
          .cell(name)
          .cell(c.startup, 1)
          .cell(c.transmission, 1)
          .cell(c.rearrangement, 1)
          .cell(c.propagation, 1)
          .cell(c.total(), 1);
    };

    const SuhShinAape algo(shape);
    EngineOptions opts;
    opts.record_transfers = false;
    ExchangeEngine engine(algo, opts);
    const ExchangeTrace trace = engine.run_verified();
    add_row("proposed (measured)", price_trace(trace, params));
    add_row("proposed (Table 1)", proposed_cost_nd(shape, params));
    add_row("proposed (rearr. overlapped)", price_trace_overlapped(trace, params));

    RingExchange ring(shape);
    add_row("ring pipeline", price_trace(ring.analytic_trace(), params));

    DirectExchange direct(shape);
    add_row("direct (congestion-priced)",
            price_routed_steps(direct.torus(), direct.steps(), params));

    // Prior algorithms apply to power-of-two squares only.
    if (shape.num_dims() == 2 && shape.extent(0) == shape.extent(1) &&
        is_power_of_two(shape.extent(0)) && shape.extent(0) >= 4) {
      const int d = static_cast<int>(std::lround(std::log2(shape.extent(0))));
      add_row("Tseng et al. [13]", tseng_cost(d, params));
      add_row("Suh-Yalamanchili [9]", suh_yalamanchili_cost(d, params));
    }
    table.print(std::cout);

    std::cout << "\nblock-size sweep (proposed, Table 1 model):\n\n";
    TextTable sweep({"m (bytes)", "startup %", "transmission %", "rearrangement %",
                     "propagation %", "total"});
    for (std::int64_t m : {1, 4, 16, 64, 256, 1024, 4096}) {
      CostParams p = params;
      p.m = m;
      const CostBreakdown c = proposed_cost_nd(shape, p);
      const double total = c.total();
      sweep.start_row()
          .cell(m)
          .cell(100.0 * c.startup / total, 1)
          .cell(100.0 * c.transmission / total, 1)
          .cell(100.0 * c.rearrangement / total, 1)
          .cell(100.0 * c.propagation / total, 1)
          .cell(total, 1);
    }
    sweep.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
