// Distributed 2D FFT via the transpose (row-column) method — the other
// classic complete-exchange workload.
//
//   ./fft_transpose [--dims=8,8]
//
// A 2D FFT of an M x M array factors into 1-D FFTs over rows, a global
// transpose, 1-D FFTs over rows again, and a final transpose. With the
// array row-block distributed over N torus nodes, each transpose is one
// all-to-all personalized exchange — the paper's kernel. We run both
// exchanges through the Suh-Shin schedule with complex payloads and
// verify the result against a direct O(M^4) 2-D DFT.
#include <cmath>
#include <complex>
#include <iostream>
#include <numbers>
#include <vector>

#include "core/payload_exchange.hpp"
#include "util/cli.hpp"

namespace {

using Complex = std::complex<double>;

/// In-place radix-2 Cooley-Tukey FFT; `data.size()` must be a power of two.
void fft(std::vector<Complex>& data) {
  const std::size_t n = data.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
    const Complex w(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex cur(1.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * cur;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        cur *= w;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace torex;
  try {
    const CliFlags flags = CliFlags::parse(argc, argv, {"dims"});
    const auto dims64 = flags.get_int_list("dims", {8, 8});
    std::vector<std::int32_t> dims(dims64.begin(), dims64.end());
    const TorusShape shape(dims);
    const SuhShinAape algo(shape);
    const Rank N = shape.num_nodes();

    // One row per node keeps the verification DFT affordable; M = N.
    const std::int64_t M = N;
    if ((M & (M - 1)) != 0) {
      std::cerr << "node count must be a power of two for the radix-2 FFT (try --dims=8,8)\n";
      return 1;
    }
    std::cout << "2D FFT of a " << M << "x" << M << " array on a " << shape.to_string()
              << " torus (two complete exchanges)\n";

    // Input: a deterministic pseudo-random real array.
    auto input = [&](std::int64_t i, std::int64_t j) {
      return Complex(std::sin(0.37 * static_cast<double>(i) + 1.0) *
                         std::cos(0.91 * static_cast<double>(j) + 2.0),
                     0.0);
    };

    // Each node owns row p. Step 1: local row FFT.
    std::vector<std::vector<Complex>> rows(static_cast<std::size_t>(N));
    for (Rank p = 0; p < N; ++p) {
      auto& row = rows[static_cast<std::size_t>(p)];
      row.resize(static_cast<std::size_t>(M));
      for (std::int64_t j = 0; j < M; ++j) row[static_cast<std::size_t>(j)] = input(p, j);
      fft(row);
    }

    // Step 2: global transpose by complete exchange (element (p, q)
    // travels from node p to node q).
    auto transpose = [&](std::vector<std::vector<Complex>>& r) {
      ParcelBuffers<Complex> parcels(static_cast<std::size_t>(N));
      for (Rank p = 0; p < N; ++p) {
        auto& buf = parcels[static_cast<std::size_t>(p)];
        buf.reserve(static_cast<std::size_t>(N));
        for (Rank q = 0; q < N; ++q) {
          buf.push_back({Block{p, q}, r[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)]});
        }
      }
      const auto delivered = exchange_payloads(algo, std::move(parcels));
      for (Rank q = 0; q < N; ++q) {
        for (const auto& parcel : delivered[static_cast<std::size_t>(q)]) {
          r[static_cast<std::size_t>(q)][static_cast<std::size_t>(parcel.block.origin)] =
              parcel.payload;
        }
      }
    };
    transpose(rows);

    // Step 3: FFT over the (former) columns; step 4: transpose back.
    for (auto& row : rows) fft(row);
    transpose(rows);

    // Verify against the direct 2-D DFT at a handful of frequencies.
    std::int64_t checked = 0;
    std::int64_t errors = 0;
    for (std::int64_t u = 0; u < M; u += std::max<std::int64_t>(1, M / 4)) {
      for (std::int64_t v = 0; v < M; v += std::max<std::int64_t>(1, M / 4)) {
        Complex direct(0.0);
        for (std::int64_t i = 0; i < M; ++i) {
          for (std::int64_t j = 0; j < M; ++j) {
            const double angle = -2.0 * std::numbers::pi *
                                 (static_cast<double>(u * i) / static_cast<double>(M) +
                                  static_cast<double>(v * j) / static_cast<double>(M));
            direct += input(i, j) * Complex(std::cos(angle), std::sin(angle));
          }
        }
        const Complex ours = rows[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)];
        ++checked;
        if (std::abs(ours - direct) > 1e-6 * (1.0 + std::abs(direct))) ++errors;
      }
    }
    std::cout << (errors == 0 ? "FFT verified" : "FFT FAILED") << " against the direct DFT at "
              << checked << " frequencies\n";
    std::cout << "communication: 2 exchanges x " << algo.total_steps() << " steps\n";
    return errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
