// Distributed matrix transpose — the workload class the paper's
// introduction motivates (complete exchange is the communication
// kernel of array transposition).
//
//   ./matrix_transpose [--dims=12,12] [--tile=3]
//
// A global (N*tile) x (N*tile) matrix is row-block distributed over the
// N nodes of the torus: node p owns rows [p*tile, (p+1)*tile). The
// transpose is one all-to-all personalized exchange: the block node p
// must send node q is the tile*tile submatrix at (rows of p) x (cols
// of q). We run the Suh-Shin schedule over real double payloads via
// exchange_payloads, reassemble, and verify against a straightforward
// serial transpose.
#include <iostream>
#include <vector>

#include "core/payload_exchange.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace torex;
  try {
    const CliFlags flags = CliFlags::parse(argc, argv, {"dims", "tile"});
    const auto dims64 = flags.get_int_list("dims", {12, 12});
    const std::int64_t tile = flags.get_int("tile", 3);
    std::vector<std::int32_t> dims(dims64.begin(), dims64.end());

    const TorusShape shape(dims);
    const SuhShinAape algo(shape);
    const Rank N = shape.num_nodes();
    const std::int64_t M = N * tile;
    std::cout << "transposing a " << M << "x" << M << " matrix distributed over a "
              << shape.to_string() << " torus (" << tile << "x" << tile
              << " tiles, one exchange)\n";

    // Global matrix A[i][j] = i * M + j, row-block distributed.
    auto element = [&](std::int64_t i, std::int64_t j) {
      return static_cast<double>(i * M + j);
    };

    // Build parcels: node p's block for node q is the tile x tile
    // submatrix A[p*tile .. , q*tile ..], row-major.
    using Tile = std::vector<double>;
    ParcelBuffers<Tile> parcels(static_cast<std::size_t>(N));
    for (Rank p = 0; p < N; ++p) {
      auto& buf = parcels[static_cast<std::size_t>(p)];
      buf.reserve(static_cast<std::size_t>(N));
      for (Rank q = 0; q < N; ++q) {
        Tile t(static_cast<std::size_t>(tile * tile));
        for (std::int64_t i = 0; i < tile; ++i) {
          for (std::int64_t j = 0; j < tile; ++j) {
            t[static_cast<std::size_t>(i * tile + j)] = element(p * tile + i, q * tile + j);
          }
        }
        buf.push_back({Block{p, q}, std::move(t)});
      }
    }

    // One complete exchange.
    const auto delivered = exchange_payloads(algo, std::move(parcels));

    // Reassemble: after the exchange node q holds, from each p, the
    // tile A[p*tile.., q*tile..]. Its transposed row block is
    // B[q*tile + i][j] = A[j][q*tile + i].
    std::int64_t errors = 0;
    for (Rank q = 0; q < N; ++q) {
      std::vector<double> rows(static_cast<std::size_t>(tile * M));
      for (const auto& parcel : delivered[static_cast<std::size_t>(q)]) {
        const Rank p = parcel.block.origin;
        for (std::int64_t i = 0; i < tile; ++i) {
          for (std::int64_t j = 0; j < tile; ++j) {
            // Local tile transpose while scattering into the row block.
            rows[static_cast<std::size_t>(j * M + p * tile + i)] =
                parcel.payload[static_cast<std::size_t>(i * tile + j)];
          }
        }
      }
      for (std::int64_t i = 0; i < tile; ++i) {
        for (std::int64_t j = 0; j < M; ++j) {
          const double expected = element(j, q * tile + i);  // A^T[q*tile+i][j]
          if (rows[static_cast<std::size_t>(i * M + j)] != expected) ++errors;
        }
      }
    }

    std::cout << (errors == 0 ? "transpose verified: every element of A^T in place\n"
                              : "TRANSPOSE FAILED\n");
    std::cout << "schedule: " << algo.total_steps() << " communication steps for " << N
              << " nodes (direct exchange would need " << N - 1 << ")\n";
    return errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
