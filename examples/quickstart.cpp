// Quickstart: run a complete exchange on a 12x12 torus and print the
// per-phase traffic summary.
//
//   ./quickstart [--dims=12,12]
//
// This is the smallest end-to-end use of the public API:
//   1. describe the torus            (TorusShape)
//   2. build the schedule            (SuhShinAape)
//   3. execute and verify            (ExchangeEngine::run_verified)
//   4. inspect the traffic trace     (ExchangeTrace)
#include <iostream>

#include "core/exchange_engine.hpp"
#include "sim/contention.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace torex;
  try {
    const CliFlags flags = CliFlags::parse(argc, argv, {"dims"});
    const auto dims64 = flags.get_int_list("dims", {12, 12});
    std::vector<std::int32_t> dims(dims64.begin(), dims64.end());

    const TorusShape shape(dims);
    std::cout << "All-to-all personalized exchange on a " << shape.to_string() << " torus ("
              << shape.num_nodes() << " nodes, " << shape.num_nodes() << " blocks per node)\n\n";

    const SuhShinAape algo(shape);
    ExchangeEngine engine(algo);
    const ExchangeTrace trace = engine.run_verified();
    std::cout << "exchange complete; every node now holds exactly one block from every node\n";

    const ContentionReport contention = check_trace_contention(algo.torus(), trace);
    std::cout << "contention-free schedule: " << (contention.contention_free ? "yes" : "NO")
              << " (max channel load " << contention.max_channel_load << ")\n\n";

    TextTable table({"phase", "step", "kind", "hops", "max blocks/node", "total blocks"});
    for (const auto& rec : trace.steps) {
      const PhaseKind kind = algo.phase_kind(rec.phase);
      const char* kind_name = kind == PhaseKind::kScatter         ? "scatter"
                              : kind == PhaseKind::kQuarterExchange ? "quarter"
                                                                    : "pair";
      table.start_row()
          .cell(static_cast<std::int64_t>(rec.phase))
          .cell(static_cast<std::int64_t>(rec.step))
          .cell(kind_name)
          .cell(static_cast<std::int64_t>(rec.hops))
          .cell(rec.max_blocks_per_node)
          .cell(rec.total_blocks);
    }
    table.print(std::cout);

    std::cout << "\ntotals: " << trace.num_steps() << " startups, "
              << with_thousands(trace.total_max_blocks()) << " blocks on the critical path, "
              << trace.total_hops() << " hops, " << trace.rearrangement_passes
              << " rearrangement passes\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
