// ASCII rendering of a 2D schedule — Figure 1(b) regenerated as text.
//
//   ./render_schedule [--dims=12,12] [--phase=0]
//
// For each phase (or one selected phase) prints the torus grid with one
// glyph per node showing its transmit direction:
//   > < : +c / -c      v ^ : +r / -r
// Scatter phases also print each node's (r+c) mod 4 key underneath, so
// the mod-4 structure that makes the schedule contention-free is
// visible at a glance. Exchange phases print one grid per step.
#include <iostream>

#include "core/aape.hpp"
#include "util/cli.hpp"

namespace {

char glyph(const torex::Direction& d) {
  if (d.dim == 0) return d.sign == torex::Sign::kPositive ? 'v' : '^';
  return d.sign == torex::Sign::kPositive ? '>' : '<';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace torex;
  try {
    const CliFlags flags = CliFlags::parse(argc, argv, {"dims", "phase"});
    const auto dims64 = flags.get_int_list("dims", {12, 12});
    std::vector<std::int32_t> dims(dims64.begin(), dims64.end());
    TorusShape shape(dims);
    if (shape.num_dims() != 2) {
      std::cerr << "render_schedule draws 2D tori only (use schedule_explorer for n-D)\n";
      return 1;
    }
    const SuhShinAape algo(shape);
    const int only_phase = static_cast<int>(flags.get_int("phase", 0));

    std::cout << "schedule glyphs for " << shape.to_string()
              << "   (> < : +c/-c,  v ^ : +r/-r)\n";

    for (int phase = 1; phase <= algo.num_phases(); ++phase) {
      if (only_phase != 0 && phase != only_phase) continue;
      const int steps = algo.steps_in_phase(phase);
      if (steps == 0) {
        std::cout << "\nphase " << phase << ": no steps on this shape\n";
        continue;
      }
      const bool scatter = algo.phase_kind(phase) == PhaseKind::kScatter;
      const int grids = scatter ? 1 : steps;
      for (int step = 1; step <= grids; ++step) {
        std::cout << "\nphase " << phase;
        if (!scatter) std::cout << " step " << step;
        if (scatter) std::cout << " (all " << steps << " steps, fixed directions)";
        std::cout << ":\n";
        for (std::int32_t r = 0; r < shape.extent(0); ++r) {
          std::cout << "  ";
          for (std::int32_t c = 0; c < shape.extent(1); ++c) {
            std::cout << glyph(algo.direction(shape.rank_of({r, c}), phase, step)) << ' ';
          }
          if (scatter && phase == 1) {
            std::cout << "   ";
            for (std::int32_t c = 0; c < shape.extent(1); ++c) {
              std::cout << (r + c) % 4 << ' ';
            }
          }
          std::cout << '\n';
        }
      }
    }
    std::cout << "\nnote how, in every row and column of a scatter phase, nodes sharing a\n"
                 "direction sit exactly four apart: their 4-hop paths tile the ring.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
