// Distributed sample sort — the classic irregular (Alltoallv) complete
// exchange workload.
//
//   ./sample_sort [--dims=8,8] [--keys=256] [--seed=42]
//
// Each of the N torus nodes starts with `keys` random 64-bit keys.
// Classic sample sort: every node sorts locally, contributes samples,
// splitters are chosen from the gathered sample, every key is routed to
// the bucket (node) owning its splitter range — one irregular all-to-all
// personalized exchange, executed with the Suh-Shin schedule via
// exchange_parcels_custom — and buckets sort locally. We verify the
// global order and that no key was lost.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/payload_exchange.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"

int main(int argc, char** argv) {
  using namespace torex;
  try {
    const CliFlags flags = CliFlags::parse(argc, argv, {"dims", "keys", "seed"});
    const auto dims64 = flags.get_int_list("dims", {8, 8});
    const std::int64_t keys_per_node = flags.get_int("keys", 256);
    const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    std::vector<std::int32_t> dims(dims64.begin(), dims64.end());

    const TorusShape shape(dims);
    const SuhShinAape algo(shape);
    const Rank N = shape.num_nodes();
    std::cout << "sample sort of " << N * keys_per_node << " keys over a "
              << shape.to_string() << " torus\n";

    // 1. Generate and locally sort.
    SplitMix64 rng(seed);
    std::vector<std::vector<std::uint64_t>> local(static_cast<std::size_t>(N));
    for (auto& keys : local) {
      keys.reserve(static_cast<std::size_t>(keys_per_node));
      for (std::int64_t i = 0; i < keys_per_node; ++i) keys.push_back(rng.next());
      std::sort(keys.begin(), keys.end());
    }

    // 2. Regular sampling: each node contributes N evenly spaced samples;
    // splitter i is the (i+1)N-th element of the sorted sample.
    std::vector<std::uint64_t> sample;
    for (const auto& keys : local) {
      for (Rank s = 0; s < N; ++s) {
        sample.push_back(keys[static_cast<std::size_t>(
            static_cast<std::int64_t>(s) * keys_per_node / N)]);
      }
    }
    std::sort(sample.begin(), sample.end());
    std::vector<std::uint64_t> splitters;  // N-1 of them
    for (Rank i = 1; i < N; ++i) {
      splitters.push_back(sample[static_cast<std::size_t>(i) * static_cast<std::size_t>(N)]);
    }

    // 3. Route every key to its bucket with one irregular exchange.
    ParcelBuffers<std::uint64_t> parcels(static_cast<std::size_t>(N));
    for (Rank p = 0; p < N; ++p) {
      for (std::uint64_t key : local[static_cast<std::size_t>(p)]) {
        const auto it = std::upper_bound(splitters.begin(), splitters.end(), key);
        const Rank bucket = static_cast<Rank>(it - splitters.begin());
        parcels[static_cast<std::size_t>(p)].push_back({Block{p, bucket}, key});
      }
    }
    const auto delivered = exchange_parcels_custom(algo, std::move(parcels));

    // 4. Local sort per bucket, then verify the global order.
    std::int64_t total = 0;
    std::uint64_t previous_max = 0;
    bool sorted = true;
    std::int64_t largest_bucket = 0;
    for (Rank b = 0; b < N; ++b) {
      std::vector<std::uint64_t> bucket;
      for (const auto& parcel : delivered[static_cast<std::size_t>(b)]) {
        bucket.push_back(parcel.payload);
      }
      std::sort(bucket.begin(), bucket.end());
      total += static_cast<std::int64_t>(bucket.size());
      largest_bucket = std::max(largest_bucket, static_cast<std::int64_t>(bucket.size()));
      if (!bucket.empty()) {
        sorted = sorted && bucket.front() >= previous_max;
        previous_max = bucket.back();
      }
    }

    const bool complete = total == N * keys_per_node;
    std::cout << (sorted && complete ? "globally sorted" : "SORT FAILED") << ": " << total
              << " keys across " << N << " buckets (largest bucket " << largest_bucket
              << ", perfect balance " << keys_per_node << ")\n";
    std::cout << "communication: one irregular exchange over " << algo.total_steps()
              << " steps\n";
    return sorted && complete ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
