// Schedule explorer: inspect the Suh-Shin schedule for any torus.
//
//   ./schedule_explorer [--dims=12,8] [--node=0] [--markdown]
//                       [--csv-steps=steps.csv] [--csv-transfers=transfers.csv]
//
// Prints the phase structure, the watched node's per-phase directions
// and per-step traffic, the per-phase direction census, the contention
// report, and the completion-time breakdown; optionally exports the
// trace as CSV for plotting. A debugging/teaching tool over the same
// public API the benches use.
#include <fstream>
#include <iostream>
#include <map>

#include "core/exchange_engine.hpp"
#include "costmodel/models.hpp"
#include "sim/contention.hpp"
#include "sim/cost_simulator.hpp"
#include "sim/trace_export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

std::string dir_name(const torex::Direction& d) {
  return std::string(d.sign == torex::Sign::kPositive ? "+" : "-") + "dim" +
         std::to_string(d.dim);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace torex;
  try {
    const CliFlags flags = CliFlags::parse(
        argc, argv, {"dims", "node", "markdown", "csv-steps", "csv-transfers"});
    const auto dims64 = flags.get_int_list("dims", {12, 8});
    std::vector<std::int32_t> dims(dims64.begin(), dims64.end());
    const bool markdown = flags.get_bool("markdown", false);

    const TorusShape shape(dims);
    const SuhShinAape algo(shape);
    const Rank watched = static_cast<Rank>(flags.get_int("node", 0));

    std::cout << "schedule for " << shape.to_string() << ": " << algo.num_phases()
              << " phases, " << algo.total_steps() << " steps\n\n";

    // Phase structure + direction census.
    TextTable phases({"phase", "kind", "steps", "hops/step", "direction census"});
    phases.set_align(4, TextTable::Align::kLeft);
    for (int phase = 1; phase <= algo.num_phases(); ++phase) {
      std::map<std::string, std::int64_t> census;
      if (algo.steps_in_phase(phase) > 0) {
        for (Rank r = 0; r < shape.num_nodes(); ++r) {
          ++census[dir_name(algo.direction(r, phase, 1))];
        }
      }
      std::string summary;
      for (const auto& [name, count] : census) {
        if (!summary.empty()) summary += ", ";
        summary += name + ":" + std::to_string(count);
      }
      const PhaseKind kind = algo.phase_kind(phase);
      phases.start_row()
          .cell(static_cast<std::int64_t>(phase))
          .cell(kind == PhaseKind::kScatter         ? "scatter"
                : kind == PhaseKind::kQuarterExchange ? "quarter"
                                                      : "pair")
          .cell(static_cast<std::int64_t>(algo.steps_in_phase(phase)))
          .cell(static_cast<std::int64_t>(algo.hops_per_step(phase)))
          .cell(summary.empty() ? "(no steps)" : summary);
    }
    markdown ? phases.print_markdown(std::cout) : phases.print(std::cout);

    // Watched node detail.
    std::cout << "\nnode " << watched << " (coord ";
    const Coord wc = shape.coord_of(watched);
    for (std::size_t d = 0; d < wc.size(); ++d) std::cout << (d ? "," : "(") << wc[d];
    std::cout << ")):\n";

    ExchangeEngine engine(algo);
    const ExchangeTrace trace = engine.run_verified();
    TextTable detail({"phase", "step", "direction", "partner", "blocks sent"});
    for (const auto& rec : trace.steps) {
      std::int64_t sent = 0;
      for (const auto& t : rec.transfers) {
        if (t.src == watched) sent = t.blocks;
      }
      detail.start_row()
          .cell(static_cast<std::int64_t>(rec.phase))
          .cell(static_cast<std::int64_t>(rec.step))
          .cell(dir_name(algo.direction(watched, rec.phase, rec.step)))
          .cell(static_cast<std::int64_t>(algo.partner(watched, rec.phase, rec.step)))
          .cell(sent);
    }
    markdown ? detail.print_markdown(std::cout) : detail.print(std::cout);

    const ContentionReport contention = check_trace_contention(algo.torus(), trace);
    std::cout << "\ncontention-free: " << (contention.contention_free ? "yes" : "NO")
              << " (max channel load " << contention.max_channel_load << ")\n";

    const ChannelUsageStats usage = channel_usage(algo.torus(), trace);
    std::cout << "channel usage: " << usage.used_channels << '/' << usage.total_channels
              << " channels touched, per-channel uses " << usage.min_uses << ".."
              << usage.max_uses << ", occupancy "
              << compact_double(100.0 * usage.occupancy, 1) << "%\n";

    if (flags.has("csv-steps")) {
      std::ofstream out(flags.get_string("csv-steps", ""));
      write_steps_csv(out, trace);
      std::cout << "\nwrote per-step CSV to " << flags.get_string("csv-steps", "") << '\n';
    }
    if (flags.has("csv-transfers")) {
      std::ofstream out(flags.get_string("csv-transfers", ""));
      write_transfers_csv(out, trace);
      std::cout << "wrote per-transfer CSV to " << flags.get_string("csv-transfers", "")
                << '\n';
    }

    const CostBreakdown cost = price_trace(trace, CostParams::balanced());
    std::cout << "completion time (default params): startup " << cost.startup
              << ", transmission " << cost.transmission << ", rearrangement "
              << cost.rearrangement << ", propagation " << cost.propagation << " -> total "
              << cost.total() << '\n';
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
