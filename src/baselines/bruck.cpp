#include "baselines/bruck.hpp"

#include <algorithm>

#include "core/block.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace torex {

BruckExchange::BruckExchange(TorusShape shape) : torus_(std::move(shape)) {
  TOREX_REQUIRE(torus_.shape().num_nodes() >= 2, "need at least two nodes");
}

int BruckExchange::num_steps() const {
  const Rank N = torus_.shape().num_nodes();
  int k = 0;
  while ((std::int64_t{1} << k) < N) ++k;
  return k;
}

std::vector<RoutedStep> BruckExchange::run_verified() {
  const Rank N = torus_.shape().num_nodes();
  std::vector<std::vector<Block>> buffers(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    for (Rank d = 0; d < N; ++d) buffers[static_cast<std::size_t>(p)].push_back(Block{p, d});
  }

  std::vector<RoutedStep> steps;
  std::vector<std::vector<Block>> inbox(static_cast<std::size_t>(N));
  for (int k = 0; k < num_steps(); ++k) {
    const Rank hop = static_cast<Rank>(std::int64_t{1} << k);
    RoutedStep step;
    for (Rank q = 0; q < N; ++q) {
      auto& buf = buffers[static_cast<std::size_t>(q)];
      auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Block& b) {
        const Rank remaining = static_cast<Rank>(floor_mod<std::int64_t>(b.dest - q, N));
        return (remaining & hop) == 0;
      });
      const std::int64_t sent = std::distance(split, buf.end());
      if (sent == 0) continue;
      const Rank to = static_cast<Rank>((q + hop) % N);
      auto& in = inbox[static_cast<std::size_t>(to)];
      TOREX_CHECK(in.empty(), "one-port violation in Bruck exchange");
      in.assign(split, buf.end());
      buf.erase(split, buf.end());
      step.messages.emplace_back(q, to);
      step.message_blocks.push_back(sent);
    }
    for (Rank q = 0; q < N; ++q) {
      auto& in = inbox[static_cast<std::size_t>(q)];
      if (in.empty()) continue;
      auto& buf = buffers[static_cast<std::size_t>(q)];
      buf.insert(buf.end(), in.begin(), in.end());
      in.clear();
    }
    steps.push_back(std::move(step));
  }

  // Postcondition: node q holds exactly one block from every origin,
  // all addressed to q.
  for (Rank q = 0; q < N; ++q) {
    const auto& buf = buffers[static_cast<std::size_t>(q)];
    TOREX_CHECK(static_cast<Rank>(buf.size()) == N, "Bruck exchange lost blocks");
    std::vector<char> seen(static_cast<std::size_t>(N), 0);
    for (const Block& b : buf) {
      TOREX_CHECK(b.dest == q, "Bruck exchange misdelivered a block");
      TOREX_CHECK(!seen[static_cast<std::size_t>(b.origin)], "duplicate origin");
      seen[static_cast<std::size_t>(b.origin)] = 1;
    }
  }
  return steps;
}

std::int64_t BruckExchange::critical_path_blocks() {
  std::int64_t total = 0;
  for (const auto& step : run_verified()) {
    std::int64_t worst = 0;
    for (std::size_t i = 0; i < step.messages.size(); ++i) {
      worst = std::max(worst, step.blocks_of(i));
    }
    total += worst;
  }
  return total;
}

}  // namespace torex
