// Bruck's all-to-all algorithm — the log-phase baseline modern MPI
// libraries use for small messages (Bruck et al., IEEE TPDS 1997).
//
// Radix-2 formulation over node ranks: a block for destination d held
// by node q still has to travel r = (d - q) mod N positions; in step k
// (k = 0 .. ceil(log2 N) - 1) every node ships all held blocks whose
// remaining distance has bit k set to node (q + 2^k) mod N. Receiving
// clears exactly bit k, so after all steps every block has distance 0.
// ceil(log2 N) startups, up to ceil(N/2) blocks per message.
//
// The interesting comparison against the Suh-Shin schedule on a torus:
// Bruck needs asymptotically fewer startups (log N vs n*a1/4) but its
// rank-space partners are far apart in the torus, so its messages cross
// many channels and contend — which the congestion pricer and the
// wormhole simulator quantify.
#pragma once

#include <vector>

#include "sim/cost_simulator.hpp"
#include "topology/shape.hpp"
#include "topology/torus.hpp"

namespace torex {

/// Builder/executor for the Bruck exchange on a torus.
class BruckExchange {
 public:
  explicit BruckExchange(TorusShape shape);

  const Torus& torus() const { return torus_; }

  /// ceil(log2 N) phases.
  int num_steps() const;

  /// Runs the exchange over block identities and verifies that every
  /// node ends with one block from every origin. Returns the routed
  /// steps with per-message block counts (for pricing), in step order.
  std::vector<RoutedStep> run_verified();

  /// Total blocks the busiest node transmits over the whole run —
  /// Theta(N log N / 2), vs Theta(N a1 / 8) per dimension count for
  /// the combining schedule.
  std::int64_t critical_path_blocks();

 private:
  Torus torus_;
};

}  // namespace torex
