#include "baselines/dimwise.hpp"

#include <algorithm>

#include "core/block.hpp"
#include "sim/contention.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace torex {

DimwiseExchange::DimwiseExchange(TorusShape shape) : torus_(std::move(shape)) {
  for (int d = 0; d < torus_.shape().num_dims(); ++d) {
    TOREX_REQUIRE(is_power_of_two(torus_.shape().extent(d)) && torus_.shape().extent(d) >= 2,
                  "dimension-wise exchange needs power-of-two extents");
  }
}

int DimwiseExchange::num_steps() const {
  int total = 0;
  for (int d = 0; d < torus_.shape().num_dims(); ++d) {
    for (std::int32_t e = torus_.shape().extent(d); e > 1; e /= 2) ++total;
  }
  return total;
}

std::vector<RoutedStep> DimwiseExchange::run_verified() {
  const TorusShape& shape = torus_.shape();
  const Rank N = shape.num_nodes();
  std::vector<std::vector<Block>> buffers(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    for (Rank d = 0; d < N; ++d) buffers[static_cast<std::size_t>(p)].push_back(Block{p, d});
  }

  std::vector<RoutedStep> steps;
  std::vector<std::vector<Block>> inbox(static_cast<std::size_t>(N));
  for (int dim = 0; dim < shape.num_dims(); ++dim) {
    const std::int32_t extent = shape.extent(dim);
    for (std::int32_t hop = 1; hop < extent; hop *= 2) {
      RoutedStep step;
      for (Rank q = 0; q < N; ++q) {
        const Coord qc = shape.coord_of(q);
        auto& buf = buffers[static_cast<std::size_t>(q)];
        auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Block& b) {
          const Coord dc = shape.coord_of(b.dest);
          const std::int32_t remaining = static_cast<std::int32_t>(floor_mod<std::int64_t>(
              dc[static_cast<std::size_t>(dim)] - qc[static_cast<std::size_t>(dim)], extent));
          return (remaining & hop) == 0;
        });
        const std::int64_t sent = std::distance(split, buf.end());
        if (sent == 0) continue;
        const Rank to = torus_.neighbor_at(q, {dim, Sign::kPositive}, hop);
        auto& in = inbox[static_cast<std::size_t>(to)];
        TOREX_CHECK(in.empty(), "one-port violation in dimension-wise exchange");
        in.assign(split, buf.end());
        buf.erase(split, buf.end());
        step.messages.emplace_back(q, to);
        step.message_blocks.push_back(sent);
      }
      for (Rank q = 0; q < N; ++q) {
        auto& in = inbox[static_cast<std::size_t>(q)];
        if (in.empty()) continue;
        auto& buf = buffers[static_cast<std::size_t>(q)];
        buf.insert(buf.end(), in.begin(), in.end());
        in.clear();
      }
      steps.push_back(std::move(step));
    }
  }

  for (Rank q = 0; q < N; ++q) {
    const auto& buf = buffers[static_cast<std::size_t>(q)];
    TOREX_CHECK(static_cast<Rank>(buf.size()) == N, "dimension-wise exchange lost blocks");
    std::vector<char> seen(static_cast<std::size_t>(N), 0);
    for (const Block& b : buf) {
      TOREX_CHECK(b.dest == q, "dimension-wise exchange misdelivered a block");
      TOREX_CHECK(!seen[static_cast<std::size_t>(b.origin)], "duplicate origin");
      seen[static_cast<std::size_t>(b.origin)] = 1;
    }
  }
  return steps;
}

std::int64_t DimwiseExchange::worst_channel_load() {
  ContentionAnalyzer analyzer(torus_);
  std::int64_t worst = 0;
  for (const auto& step : run_verified()) {
    worst = std::max(worst, analyzer.analyze_routed_step(step.messages).max_channel_load);
  }
  return worst;
}

}  // namespace torex
