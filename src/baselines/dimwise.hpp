// Dimension-wise recursive-doubling exchange — the "cheap startups,
// unscheduled contention" point of the design space.
//
// Bruck's digit-correction applied per torus dimension: for dimension d
// with power-of-two extent, step k sends every held block whose
// destination is still 2^k-misaligned along d to the node +2^k away in
// that dimension. ceil(sum log2 ai) startups (fewer than the proposed
// n(a1/4+1) on large tori) and combining-sized messages, but the
// messages of neighboring nodes overlap heavily on the line — loads up
// to 2^(k-1) — because nothing schedules them apart. The gap between
// this baseline and the proposed algorithm isolates the value of the
// paper's mod-4 contention-free scheduling, which is exactly what the
// O(d)-startup algorithms of [9] had to add on top of digit correction.
#pragma once

#include <vector>

#include "sim/cost_simulator.hpp"
#include "topology/shape.hpp"
#include "topology/torus.hpp"

namespace torex {

/// Builder/executor for the dimension-wise exchange. Requires every
/// extent to be a power of two (>= 2).
class DimwiseExchange {
 public:
  explicit DimwiseExchange(TorusShape shape);

  const Torus& torus() const { return torus_; }

  /// sum over dimensions of log2(extent).
  int num_steps() const;

  /// Runs the exchange over block identities, verifies delivery, and
  /// returns the routed steps with per-message block counts.
  std::vector<RoutedStep> run_verified();

  /// Largest per-channel load over all steps — the contention this
  /// family suffers without the paper's direction scheduling.
  std::int64_t worst_channel_load();

 private:
  Torus torus_;
};

}  // namespace torex
