#include "baselines/direct_exchange.hpp"

#include <algorithm>

#include "sim/contention.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace torex {

DirectExchange::DirectExchange(TorusShape shape) : torus_(std::move(shape)) {
  TOREX_REQUIRE(torus_.shape().num_nodes() >= 2, "need at least two nodes");
}

std::vector<RoutedStep> DirectExchange::steps() const {
  const Rank N = torus_.shape().num_nodes();
  std::vector<RoutedStep> out;
  out.reserve(static_cast<std::size_t>(N) - 1);
  for (Rank i = 1; i < N; ++i) {
    RoutedStep step;
    step.blocks_per_message = 1;
    step.messages.reserve(static_cast<std::size_t>(N));
    for (Rank p = 0; p < N; ++p) {
      step.messages.emplace_back(p, static_cast<Rank>((p + i) % N));
    }
    out.push_back(std::move(step));
  }
  return out;
}

void DirectExchange::verify() const {
  const Rank N = torus_.shape().num_nodes();
  // delivered[o * N + d] counts deliveries of block (o, d).
  std::vector<std::int8_t> delivered(static_cast<std::size_t>(N) * static_cast<std::size_t>(N), 0);
  for (const auto& step : steps()) {
    std::vector<std::int8_t> sends(static_cast<std::size_t>(N), 0);
    std::vector<std::int8_t> recvs(static_cast<std::size_t>(N), 0);
    for (const auto& [src, dst] : step.messages) {
      TOREX_CHECK(!sends[static_cast<std::size_t>(src)]++, "one-port send violation");
      TOREX_CHECK(!recvs[static_cast<std::size_t>(dst)]++, "one-port receive violation");
      auto& count =
          delivered[static_cast<std::size_t>(src) * static_cast<std::size_t>(N) +
                    static_cast<std::size_t>(dst)];
      TOREX_CHECK(count == 0, "block delivered twice");
      count = 1;
    }
  }
  for (Rank o = 0; o < N; ++o) {
    for (Rank d = 0; d < N; ++d) {
      const bool expected = o != d;
      TOREX_CHECK(delivered[static_cast<std::size_t>(o) * static_cast<std::size_t>(N) +
                            static_cast<std::size_t>(d)] == (expected ? 1 : 0),
                  "direct exchange failed to deliver every block exactly once");
    }
  }
}

std::int64_t DirectExchange::worst_channel_load() const {
  ContentionAnalyzer analyzer(torus_);
  std::int64_t worst = 0;
  for (const auto& step : steps()) {
    worst = std::max(worst, analyzer.analyze_routed_step(step.messages).max_channel_load);
  }
  return worst;
}

}  // namespace torex
