// Direct (non-combining) all-to-all personalized exchange baseline.
//
// The strawman the paper's message-combining approach is measured
// against: every node sends each of its N-1 blocks straight to its
// destination, one per step, using minimal dimension-ordered routing.
// Step i pairs node p with node (p + i) mod N — the classic linear
// permutation schedule — so every node sends and receives exactly one
// message per step (one-port safe), but paths of different messages
// share channels and wormhole messages serialize on them.
#pragma once

#include <vector>

#include "core/trace.hpp"
#include "sim/cost_simulator.hpp"
#include "topology/shape.hpp"
#include "topology/torus.hpp"

namespace torex {

/// Builder for the direct exchange schedule.
class DirectExchange {
 public:
  explicit DirectExchange(TorusShape shape);

  const Torus& torus() const { return torus_; }

  /// The N-1 routed steps (step i: p -> (p + i) mod N, one block each).
  std::vector<RoutedStep> steps() const;

  /// Verifies by simulation that the schedule delivers every block
  /// (o, d), o != d, exactly once. Throws on violation.
  void verify() const;

  /// Largest per-channel load over all steps — how badly dimension-
  /// ordered direct traffic contends on this torus.
  std::int64_t worst_channel_load() const;

 private:
  Torus torus_;
};

}  // namespace torex
