#include "baselines/ring_exchange.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace torex {

Coord gray_coord(const TorusShape& shape, std::int64_t position) {
  TOREX_REQUIRE(position >= 0 && position < shape.num_nodes(), "position out of range");
  const int n = shape.num_dims();
  // Standard mixed-radix digits, most significant first (matches the
  // shape's rank layout).
  Coord digits = shape.coord_of(static_cast<Rank>(position));
  Coord gray(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const std::int32_t d = digits[static_cast<std::size_t>(j)];
    // With every base even, the parity of the more-significant prefix
    // value reduces to the parity of the previous digit, which decides
    // whether this digit's sweep is reflected.
    const bool reflected = j > 0 && digits[static_cast<std::size_t>(j - 1)] % 2 != 0;
    gray[static_cast<std::size_t>(j)] =
        reflected ? static_cast<std::int32_t>(shape.extent(j) - 1 - d) : d;
  }
  return gray;
}

std::int64_t gray_position(const TorusShape& shape, const Coord& coord) {
  const int n = shape.num_dims();
  TOREX_REQUIRE(coord.size() == static_cast<std::size_t>(n), "dimensionality mismatch");
  Coord digits(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const bool reflected = j > 0 && digits[static_cast<std::size_t>(j - 1)] % 2 != 0;
    const std::int32_t g = coord[static_cast<std::size_t>(j)];
    digits[static_cast<std::size_t>(j)] =
        reflected ? static_cast<std::int32_t>(shape.extent(j) - 1 - g) : g;
  }
  return shape.rank_of(digits);
}

RingExchange::RingExchange(TorusShape shape) : torus_(std::move(shape)) {
  const TorusShape& s = torus_.shape();
  for (int d = 0; d < s.num_dims(); ++d) {
    TOREX_REQUIRE(s.extent(d) % 2 == 0 && s.extent(d) >= 2,
                  "Gray-code ring embedding needs every extent even");
  }
  const Rank N = s.num_nodes();
  order_.resize(static_cast<std::size_t>(N));
  position_.resize(static_cast<std::size_t>(N));
  for (std::int64_t k = 0; k < N; ++k) {
    const Rank r = s.rank_of(gray_coord(s, k));
    order_[static_cast<std::size_t>(k)] = r;
    position_[static_cast<std::size_t>(r)] = static_cast<Rank>(k);
  }
  // The embedding must be a Hamiltonian cycle: consecutive ring nodes
  // (including the wrap) are physical neighbors.
  for (std::int64_t k = 0; k < N; ++k) {
    const Rank a = order_[static_cast<std::size_t>(k)];
    const Rank b = order_[static_cast<std::size_t>((k + 1) % N)];
    TOREX_CHECK(torus_.distance(a, b) == 1, "Gray embedding is not a Hamiltonian cycle");
  }
}

namespace {

/// Direction of the single-hop move from coordinate a to coordinate b.
Direction hop_direction(const TorusShape& shape, const Coord& a, const Coord& b) {
  for (int d = 0; d < shape.num_dims(); ++d) {
    const std::int64_t delta =
        ring_delta(a[static_cast<std::size_t>(d)], b[static_cast<std::size_t>(d)],
                   shape.extent(d));
    if (delta == 1) return Direction{d, Sign::kPositive};
    if (delta == -1) return Direction{d, Sign::kNegative};
  }
  TOREX_CHECK(false, "nodes are not physical neighbors");
  TOREX_UNREACHABLE();
}

}  // namespace

ExchangeTrace RingExchange::run_verified() {
  const TorusShape& s = torus_.shape();
  const Rank N = s.num_nodes();

  // buffers indexed by *ring position*; blocks tagged by destination
  // ring position (remaining directed distance = dest_pos - pos mod N).
  std::vector<std::vector<Rank>> held(static_cast<std::size_t>(N));
  for (Rank pos = 0; pos < N; ++pos) {
    for (Rank dpos = 0; dpos < N; ++dpos) {
      if (dpos != pos) held[static_cast<std::size_t>(pos)].push_back(dpos);
    }
  }

  ExchangeTrace trace;
  trace.rearrangement_passes = 0;
  trace.blocks_per_rearrangement = 0;
  std::vector<std::vector<Rank>> inbox(static_cast<std::size_t>(N));

  for (Rank step = 1; step < N; ++step) {
    StepRecord rec;
    rec.phase = 1;
    rec.step = step;
    rec.hops = 1;
    for (Rank pos = 0; pos < N; ++pos) {
      auto& buf = held[static_cast<std::size_t>(pos)];
      auto split = std::stable_partition(buf.begin(), buf.end(),
                                         [&](Rank dpos) { return dpos == pos; });
      const std::int64_t sent = std::distance(split, buf.end());
      if (sent == 0) continue;
      const Rank next = static_cast<Rank>((pos + 1) % N);
      auto& in = inbox[static_cast<std::size_t>(next)];
      in.insert(in.end(), split, buf.end());
      buf.erase(split, buf.end());
      rec.max_blocks_per_node = std::max(rec.max_blocks_per_node, sent);
      rec.total_blocks += sent;
      const Rank src = order_[static_cast<std::size_t>(pos)];
      const Rank dst = order_[static_cast<std::size_t>(next)];
      rec.transfers.push_back(TransferRecord{
          src, dst, hop_direction(s, s.coord_of(src), s.coord_of(dst)), 1, sent});
    }
    for (Rank pos = 0; pos < N; ++pos) {
      auto& in = inbox[static_cast<std::size_t>(pos)];
      auto& buf = held[static_cast<std::size_t>(pos)];
      buf.insert(buf.end(), in.begin(), in.end());
      in.clear();
    }
    trace.steps.push_back(std::move(rec));
  }

  // Postcondition: every position holds exactly N-1 copies of its own
  // label (one block from every other origin reached it).
  for (Rank pos = 0; pos < N; ++pos) {
    const auto& buf = held[static_cast<std::size_t>(pos)];
    TOREX_CHECK(static_cast<Rank>(buf.size()) == N - 1, "ring exchange lost or grew blocks");
    for (Rank dpos : buf) TOREX_CHECK(dpos == pos, "ring exchange misdelivered a block");
  }
  return trace;
}

ExchangeTrace RingExchange::analytic_trace() const {
  const Rank N = torus_.shape().num_nodes();
  ExchangeTrace trace;
  trace.rearrangement_passes = 0;
  trace.blocks_per_rearrangement = 0;
  trace.steps.reserve(static_cast<std::size_t>(N) - 1);
  for (Rank step = 1; step < N; ++step) {
    StepRecord rec;
    rec.phase = 1;
    rec.step = step;
    rec.hops = 1;
    rec.max_blocks_per_node = N - step;
    rec.total_blocks = static_cast<std::int64_t>(N) * (N - step);
    trace.steps.push_back(std::move(rec));
  }
  return trace;
}

}  // namespace torex
