// Ring (store-and-forward) complete-exchange baseline.
//
// Embeds a Hamiltonian cycle in the torus via a cyclic mixed-radix
// reflected Gray code (valid whenever every extent is even — adjacent
// codes differ by +-1 in exactly one digit, and the wrap edge too), then
// pipelines all blocks around the cycle: in step i every node forwards
// every held block whose destination lies further along the ring. N-1
// steps, one physical hop per step, contention-free (each ring edge is
// a distinct physical channel), but Theta(N^2) blocks through every
// node — the no-torus-structure strawman between "direct" and the
// paper's combining algorithm.
#pragma once

#include <vector>

#include "core/trace.hpp"
#include "topology/shape.hpp"
#include "topology/torus.hpp"

namespace torex {

/// Cyclic mixed-radix reflected Gray code: position k -> coordinate.
/// Every extent must be even (>= 2). Successive coordinates (including
/// the wrap from last to first) differ by one hop on the torus.
Coord gray_coord(const TorusShape& shape, std::int64_t position);

/// Inverse of gray_coord.
std::int64_t gray_position(const TorusShape& shape, const Coord& coord);

/// The ring exchange baseline.
class RingExchange {
 public:
  explicit RingExchange(TorusShape shape);

  const Torus& torus() const { return torus_; }

  /// Node visit order of the embedded Hamiltonian cycle.
  const std::vector<Rank>& ring_order() const { return order_; }

  /// Runs the pipelined exchange, verifies the AAPE postcondition, and
  /// returns the traffic trace (phase 1, steps 1..N-1, 1 hop each).
  /// O(N^3) blocks moved — use on small tori; benches use
  /// analytic_trace().
  ExchangeTrace run_verified();

  /// The same trace without simulating buffers: step i moves N-i blocks
  /// per node over 1 hop (the pipeline drains one origin per step).
  /// O(N) to build; per-transfer detail omitted.
  ExchangeTrace analytic_trace() const;

 private:
  Torus torus_;
  std::vector<Rank> order_;     // ring position -> rank
  std::vector<Rank> position_;  // rank -> ring position
};

}  // namespace torex
