#include "core/aape.hpp"

#include <algorithm>
#include <numeric>

#include "topology/group.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace torex {

SuhShinAape::SuhShinAape(TorusShape shape)
    : SuhShinAape(shape, default_convention(shape)) {}

SuhShinAape::SuhShinAape(TorusShape shape, PatternConvention convention)
    : torus_(std::move(shape)), convention_(convention) {
  const TorusShape& s = torus_.shape();
  TOREX_REQUIRE(s.num_dims() >= 2, "the algorithm needs at least two dimensions");
  TOREX_REQUIRE(s.all_extents_multiple_of_four(),
                "extents must be multiples of four (use VirtualTorus for other sizes)");
  TOREX_REQUIRE(s.extents_non_increasing(),
                "extents must be sorted non-increasing (a1 >= a2 >= ... >= an); "
                "relabel dimensions before constructing the schedule");
  precompute();
}

void SuhShinAape::precompute() {
  const TorusShape& s = torus_.shape();
  const int n = s.num_dims();
  const Rank N = s.num_nodes();
  const std::size_t per_dim = static_cast<std::size_t>(N) * static_cast<std::size_t>(n);

  sub_.resize(per_dim);
  half_.resize(per_dim);
  parity_.resize(per_dim);
  mod4_.resize(per_dim);
  scatter_dirs_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(N));
  quarter_dims_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(N));

  for (Rank r = 0; r < N; ++r) {
    const Coord c = s.coord_of(r);
    for (int d = 0; d < n; ++d) {
      const std::size_t i = static_cast<std::size_t>(per_dim_index(r, d));
      const std::int32_t v = c[static_cast<std::size_t>(d)];
      sub_[i] = static_cast<std::int16_t>(v / 4);
      half_[i] = static_cast<std::int8_t>((v % 4) / 2);
      parity_[i] = static_cast<std::int8_t>(v % 2);
      mod4_[i] = static_cast<std::int8_t>(v % 4);
    }
    for (int phase = 1; phase <= n; ++phase) {
      scatter_dirs_[static_cast<std::size_t>(scatter_dir_index(r, phase))] =
          scatter_direction(s, c, phase, convention_);
    }
    for (int step = 1; step <= n; ++step) {
      quarter_dims_[static_cast<std::size_t>((step - 1)) * static_cast<std::size_t>(N) +
                    static_cast<std::size_t>(r)] =
          static_cast<std::int8_t>(quarter_exchange_dim(s, c, step, convention_));
    }
  }

  pair_dims_.resize(static_cast<std::size_t>(n));
  for (int step = 1; step <= n; ++step) {
    pair_dims_[static_cast<std::size_t>(step - 1)] = pair_exchange_dim(s, step, convention_);
  }

  // Steps per scatter phase: the longest directed group-subtorus ring
  // any group travels in that phase. The direction assignment is a
  // function of coordinates mod 4, so enumerating the 4^n group labels
  // covers every node.
  scatter_steps_.assign(static_cast<std::size_t>(n), 0);
  Coord g(static_cast<std::size_t>(n), 0);
  const std::int64_t groups = num_groups(s);
  for (std::int64_t gi = 0; gi < groups; ++gi) {
    std::int64_t rest = gi;
    for (int d = 0; d < n; ++d) {
      g[static_cast<std::size_t>(d)] = static_cast<std::int32_t>(rest % 4);
      rest /= 4;
    }
    for (int phase = 1; phase <= n; ++phase) {
      const Direction dir = scatter_direction(s, g, phase, convention_);
      const int ring = s.extent(dir.dim) / 4;
      scatter_steps_[static_cast<std::size_t>(phase - 1)] =
          std::max(scatter_steps_[static_cast<std::size_t>(phase - 1)], ring - 1);
    }
  }
}

PhaseKind SuhShinAape::phase_kind(int phase) const {
  const int n = num_dims();
  TOREX_REQUIRE(phase >= 1 && phase <= n + 2, "phase out of range");
  if (phase <= n) return PhaseKind::kScatter;
  return phase == n + 1 ? PhaseKind::kQuarterExchange : PhaseKind::kPairExchange;
}

int SuhShinAape::steps_in_phase(int phase) const {
  if (phase_kind(phase) == PhaseKind::kScatter) {
    return scatter_steps_[static_cast<std::size_t>(phase - 1)];
  }
  return num_dims();
}

int SuhShinAape::total_steps() const {
  int total = 0;
  for (int phase = 1; phase <= num_phases(); ++phase) total += steps_in_phase(phase);
  return total;
}

int SuhShinAape::hops_per_step(int phase) const {
  switch (phase_kind(phase)) {
    case PhaseKind::kScatter: return 4;
    case PhaseKind::kQuarterExchange: return 2;
    case PhaseKind::kPairExchange: return 1;
  }
  TOREX_UNREACHABLE();
}

Direction SuhShinAape::direction(Rank node, int phase, int step) const {
  TOREX_REQUIRE(node >= 0 && node < shape().num_nodes(), "rank out of range");
  TOREX_REQUIRE(step >= 1 && step <= steps_in_phase(phase), "step out of range");
  switch (phase_kind(phase)) {
    case PhaseKind::kScatter:
      return scatter_dirs_[static_cast<std::size_t>(scatter_dir_index(node, phase))];
    case PhaseKind::kQuarterExchange: {
      const int dim = quarter_dims_[static_cast<std::size_t>((step - 1)) *
                                        static_cast<std::size_t>(shape().num_nodes()) +
                                    static_cast<std::size_t>(node)];
      const Sign sign =
          mod4_[static_cast<std::size_t>(per_dim_index(node, dim))] < 2 ? Sign::kPositive
                                                                        : Sign::kNegative;
      return Direction{dim, sign};
    }
    case PhaseKind::kPairExchange: {
      const int dim = pair_dims_[static_cast<std::size_t>(step - 1)];
      const Sign sign = parity_[static_cast<std::size_t>(per_dim_index(node, dim))] == 0
                            ? Sign::kPositive
                            : Sign::kNegative;
      return Direction{dim, sign};
    }
  }
  TOREX_UNREACHABLE();
}

Rank SuhShinAape::partner(Rank node, int phase, int step) const {
  const Direction dir = direction(node, phase, step);
  return torus_.neighbor_at(node, dir, hops_per_step(phase));
}

bool SuhShinAape::should_send(Rank node, int phase, int step, const Block& b) const {
  switch (phase_kind(phase)) {
    case PhaseKind::kScatter: {
      const Direction dir =
          scatter_dirs_[static_cast<std::size_t>(scatter_dir_index(node, phase))];
      return sub_[static_cast<std::size_t>(per_dim_index(b.dest, dir.dim))] !=
             sub_[static_cast<std::size_t>(per_dim_index(node, dir.dim))];
    }
    case PhaseKind::kQuarterExchange: {
      const int dim = quarter_dims_[static_cast<std::size_t>((step - 1)) *
                                        static_cast<std::size_t>(shape().num_nodes()) +
                                    static_cast<std::size_t>(node)];
      return half_[static_cast<std::size_t>(per_dim_index(b.dest, dim))] !=
             half_[static_cast<std::size_t>(per_dim_index(node, dim))];
    }
    case PhaseKind::kPairExchange: {
      const int dim = pair_dims_[static_cast<std::size_t>(step - 1)];
      return parity_[static_cast<std::size_t>(per_dim_index(b.dest, dim))] !=
             parity_[static_cast<std::size_t>(per_dim_index(node, dim))];
    }
  }
  TOREX_UNREACHABLE();
}

}  // namespace torex
