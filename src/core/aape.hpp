// The Suh-Shin all-to-all personalized exchange schedule.
//
// This class turns the paper's phase rules into three queryable maps —
// per-(node, phase, step) transmit direction, partner, and a
// block-forwarding predicate — from which the exchange engine, the
// contention checker and the cost simulator all derive their views.
//
// Phase layout for an n-dimensional torus (phases are 1-based):
//   phases 1..n     scatter within each mod-4 group subtorus; stride-4
//                   shifts toward a fixed neighbor; a1/4 - 1 steps each
//   phase n+1       quarter exchange: +-2 partners inside each 4^n
//                   submesh; n steps (one dimension per step)
//   phase n+2       pair exchange: +-1 partners inside each 2^n
//                   submesh; n steps
//
// The forwarding predicates are the local-rule equivalent of the
// paper's §3.3 array slices:
//   scatter   send (o,d) iff the node's subtorus coordinate differs
//             from d's submesh coordinate along the phase dimension
//   quarter   send (o,d) iff the node and d lie in different 2x..x2
//             half-submeshes along the step dimension
//   pair      send (o,d) iff node and d differ in parity along the
//             step dimension
#pragma once

#include <cstdint>
#include <vector>

#include "core/block.hpp"
#include "core/pattern.hpp"
#include "topology/shape.hpp"
#include "topology/torus.hpp"

namespace torex {

/// Role of a phase in the algorithm.
enum class PhaseKind {
  kScatter,          ///< phases 1..n: group-subtorus rings, 4-hop strides
  kQuarterExchange,  ///< phase n+1: +-2 exchanges in 4x..x4 submeshes
  kPairExchange,     ///< phase n+2: +-1 exchanges in 2x..x2 submeshes
};

/// Immutable, precomputed schedule for one torus shape.
class SuhShinAape {
 public:
  /// Builds the schedule. Requires: >= 2 dimensions, every extent a
  /// positive multiple of four, extents sorted non-increasing
  /// (a1 >= a2 >= ... >= an, the paper's convention).
  explicit SuhShinAape(TorusShape shape);
  SuhShinAape(TorusShape shape, PatternConvention convention);

  const TorusShape& shape() const { return torus_.shape(); }
  const Torus& torus() const { return torus_; }
  PatternConvention convention() const { return convention_; }
  int num_dims() const { return torus_.shape().num_dims(); }

  /// n + 2.
  int num_phases() const { return num_dims() + 2; }

  PhaseKind phase_kind(int phase) const;

  /// Steps in a phase: a1/4 - 1 for scatter phases, n for the last two.
  int steps_in_phase(int phase) const;

  /// Total startup count, the paper's n(a1/4 + 1).
  int total_steps() const;

  /// Physical hops every message of this phase travels (4, 2 or 1).
  int hops_per_step(int phase) const;

  /// Direction `node` transmits in (phase, step). Step is 1-based; for
  /// scatter phases the direction is step-independent.
  Direction direction(Rank node, int phase, int step) const;

  /// The fixed node `node`'s message is addressed to in (phase, step).
  Rank partner(Rank node, int phase, int step) const;

  /// Forwarding predicate: should `node` include block `b` in its
  /// (phase, step) message?
  bool should_send(Rank node, int phase, int step, const Block& b) const;

 private:
  void precompute();

  int scatter_dir_index(Rank node, int phase) const {
    return (phase - 1) * torus_.shape().num_nodes() + node;
  }
  int per_dim_index(Rank node, int dim) const { return node * num_dims() + dim; }

  Torus torus_;
  PatternConvention convention_;
  std::vector<int> scatter_steps_;  // per scatter phase; a1/4 - 1 on sorted shapes

  // Flat caches, indexed as noted above.
  std::vector<Direction> scatter_dirs_;    // [(phase-1) * N + node]
  std::vector<std::int8_t> quarter_dims_;  // [(step-1) * N + node]
  std::vector<int> pair_dims_;             // [step-1]
  std::vector<std::int16_t> sub_;          // [node * n + dim] = coord/4
  std::vector<std::int8_t> half_;          // [node * n + dim] = (coord%4)/2
  std::vector<std::int8_t> parity_;        // [node * n + dim] = coord%2
  std::vector<std::int8_t> mod4_;          // [node * n + dim] = coord%4
};

}  // namespace torex
