// Message-block identity.
//
// The paper's unit of data is the block B[i, j]: the m-byte message node
// i holds for node j. The exchange engine moves *identities* (origin,
// destination) and verifies the AAPE permutation; byte payloads are
// modeled separately by the data-array module so that correctness sweeps
// over thousands of nodes stay cheap.
#pragma once

#include <cstdint>

#include "topology/shape.hpp"

namespace torex {

/// One personalized message block: origin node i, destination node j.
/// Packed into 8 bytes; engine buffers are flat vectors of these.
struct Block {
  Rank origin = 0;
  Rank dest = 0;

  bool operator==(const Block&) const = default;

  /// Total order (origin-major) used to canonicalize buffers in tests.
  friend bool operator<(const Block& a, const Block& b) {
    return a.origin != b.origin ? a.origin < b.origin : a.dest < b.dest;
  }
};

static_assert(sizeof(Block) == 8, "Block should stay an 8-byte value type");

}  // namespace torex
