#include "core/data_array.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace torex {

namespace layout {

/// Directed ring distance (in subtorus hops) from `node`'s submesh to
/// the block target's submesh along `dim`, in direction `sign`.
std::int64_t scatter_key(const TorusShape& shape, const Coord& node_coord, const Block& b,
                         const Direction& dir) {
  const std::int64_t ring = shape.extent(dir.dim) / 4;
  const std::int64_t from = node_coord[static_cast<std::size_t>(dir.dim)] / 4;
  // coord_along avoids materializing the full destination coordinate;
  // this key runs inside sort comparators, O(N log N) times per pass.
  const std::int64_t to = shape.coord_along(b.dest, dir.dim) / 4;
  const std::int64_t ahead = floor_mod(to - from, ring);
  return dir.sign == Sign::kPositive ? ahead : floor_mod(-(to - from), ring);
}

/// Difference vector of a block at `node` for the quarter/pair phases:
/// the bit for step s is set iff the block still differs from the
/// holder in the dimension it will exchange in step s. Step 1 takes the
/// MOST significant bit: ordering buffers by the binary-reflected Gray
/// rank of this word then makes the step-1 send a contiguous tail, and
/// (because reflection reverses the sub-order of the sent half exactly
/// the way the receiver needs it) keeps step 2 contiguous as well — the
/// n-D generalization of the paper's B0, B1, B3, B2 layout. A parity
/// argument (DESIGN.md) shows later steps cannot all stay contiguous
/// for n >= 3: measured fragmentation doubles per extra dimension,
/// reaching at most 2^(n-2) runs per send (2 in 3D, 4 in 4D, ...).
std::uint32_t difference_vector(const SuhShinAape& algo, Rank node, int phase,
                                const Block& b) {
  const int n = algo.num_dims();
  std::uint32_t bits = 0;
  for (int step = 1; step <= n; ++step) {
    if (algo.should_send(node, phase, step, b)) bits |= 1u << (n - step);
  }
  return bits;
}

/// Rank of `word` in the binary-reflected Gray sequence (inverse Gray
/// code).
std::uint32_t gray_rank(std::uint32_t word) {
  std::uint32_t binary = 0;
  for (std::uint32_t w = word; w != 0; w >>= 1) binary ^= w;
  return binary;
}

}  // namespace layout

using layout::difference_vector;
using layout::gray_rank;
using layout::scatter_key;

LayoutStats run_layout_simulation(const SuhShinAape& algo, LayoutPolicy policy) {
  const TorusShape& shape = algo.shape();
  const Rank N = shape.num_nodes();

  std::vector<std::vector<Block>> buffers(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    auto& buf = buffers[static_cast<std::size_t>(p)];
    buf.reserve(static_cast<std::size_t>(N));
    for (Rank d = 0; d < N; ++d) buf.push_back(Block{p, d});
  }

  LayoutStats stats;

  // In-flight messages: per destination node, the spliced-out blocks in
  // wire order, plus the hole position they must fill.
  struct Incoming {
    std::vector<Block> blocks;
    std::size_t hole = 0;
    bool active = false;
  };
  std::vector<Incoming> inbox(static_cast<std::size_t>(N));

  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    // Phase-boundary rearrangement: sort every buffer by the phase key.
    // (The paper counts one pass per boundary; we sort at the start of
    // every phase, which is the same n+1 passes when phase 1's initial
    // layout is counted as given.)
    if (phase > 1) {
      ++stats.rearrangement_passes;
      stats.blocks_rearranged += N;  // per-node accounting: N blocks per pass
    }
    for (Rank p = 0; p < N; ++p) {
      auto& buf = buffers[static_cast<std::size_t>(p)];
      if (policy == LayoutPolicy::kNaiveDestinationOrder) {
        std::stable_sort(buf.begin(), buf.end(),
                         [](const Block& a, const Block& b) { return a.dest < b.dest; });
      } else if (algo.phase_kind(phase) == PhaseKind::kScatter) {
        if (algo.steps_in_phase(phase) == 0) continue;
        const Direction dir = algo.direction(p, phase, 1);
        const Coord pc = shape.coord_of(p);
        std::stable_sort(buf.begin(), buf.end(), [&](const Block& a, const Block& b) {
          return scatter_key(shape, pc, a, dir) < scatter_key(shape, pc, b, dir);
        });
      } else {
        std::stable_sort(buf.begin(), buf.end(), [&](const Block& a, const Block& b) {
          return gray_rank(difference_vector(algo, p, phase, a)) <
                 gray_rank(difference_vector(algo, p, phase, b));
        });
      }
    }

    for (int step = 1; step <= algo.steps_in_phase(phase); ++step) {
      // Send: splice out the predicate-matching blocks, recording run
      // structure.
      for (Rank p = 0; p < N; ++p) {
        auto& buf = buffers[static_cast<std::size_t>(p)];
        std::vector<Block> message;
        std::int64_t runs = 0;
        bool in_run = false;
        std::size_t hole = buf.size();
        std::size_t write = 0;
        for (std::size_t i = 0; i < buf.size(); ++i) {
          if (algo.should_send(p, phase, step, buf[i])) {
            if (!in_run) {
              ++runs;
              in_run = true;
              if (message.empty()) hole = write;
            }
            message.push_back(buf[i]);
          } else {
            in_run = false;
            buf[write++] = buf[i];
          }
        }
        if (message.empty()) continue;
        buf.resize(write);

        ++stats.total_sends;
        if (runs == 1) {
          ++stats.contiguous_sends;
        } else {
          stats.gathered_blocks += static_cast<std::int64_t>(message.size());
        }
        stats.max_runs_per_send = std::max(stats.max_runs_per_send, runs);

        const Rank q = algo.partner(p, phase, step);
        Incoming& in = inbox[static_cast<std::size_t>(q)];
        TOREX_CHECK(!in.active, "one-port receive violation in layout simulation");
        in.blocks = std::move(message);
        in.hole = hole;
        in.active = true;
      }
      // Deliver: splice each message, order preserved, into the hole
      // its own send left (or append when the node sent nothing).
      for (Rank p = 0; p < N; ++p) {
        Incoming& in = inbox[static_cast<std::size_t>(p)];
        if (!in.active) continue;
        auto& buf = buffers[static_cast<std::size_t>(p)];
        const std::size_t at = std::min(in.hole, buf.size());
        buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(at), in.blocks.begin(),
                   in.blocks.end());
        in.blocks.clear();
        in.active = false;
      }
    }
  }

  // Postcondition.
  for (Rank p = 0; p < N; ++p) {
    const auto& buf = buffers[static_cast<std::size_t>(p)];
    TOREX_CHECK(static_cast<Rank>(buf.size()) == N, "layout engine lost blocks");
    std::vector<char> seen(static_cast<std::size_t>(N), 0);
    for (const Block& b : buf) {
      TOREX_CHECK(b.dest == p, "layout engine misdelivered a block");
      TOREX_CHECK(!seen[static_cast<std::size_t>(b.origin)], "duplicate origin");
      seen[static_cast<std::size_t>(b.origin)] = 1;
    }
  }
  return stats;
}

}  // namespace torex
