// Physical data-array model (paper §3.3).
//
// The cost model charges one data-rearrangement pass between phases
// (n+1 passes total) and none inside a phase, on the claim that with
// the right array ordering every step's send set is *physically
// contiguous*: the message can be handed to the router without copying.
//
// This module executes the schedule over ordered per-node buffers and
// checks that claim mechanically:
//  * at each phase boundary every node re-sorts its buffer by the
//    phase's layout key (counted as one rearrangement pass);
//  * within a phase, each send extracts the predicate-matching blocks,
//    recording how many contiguous runs they occupied (1 = free send,
//    >1 = the router would need scatter-gather or an extra copy);
//  * the received message is spliced, order-preserved, into the hole
//    the send left (receives always copy from the consumption buffer,
//    so their placement is free).
//
// Layout keys:
//  * scatter phase k: ascending directed subtorus distance to the
//    block's target along the phase dimension — step sends are always
//    the tail of the buffer;
//  * quarter / pair phases: the binary-reflected Gray rank of the
//    "difference vector" (bit s = block still differs from the holder
//    in the dimension of step s), the n-D generalization of the
//    paper's B0, B1, B3, B2 ordering.
//
// Finding: in 2D this reproduces the paper exactly (every send is one
// run). For n >= 3 the final two phases cannot keep all n steps
// contiguous under any fixed ordering (a parity obstruction — see
// DESIGN.md); the simulator quantifies the extra gather traffic the
// paper's n-D cost model leaves out.
#pragma once

#include <cstdint>
#include <vector>

#include "core/aape.hpp"
#include "core/block.hpp"

namespace torex {

/// Contiguity statistics of one layout-faithful execution.
struct LayoutStats {
  /// Inter-phase rearrangement passes performed (paper: n+1).
  std::int64_t rearrangement_passes = 0;
  /// Blocks touched by those passes (passes * N per node, summed over
  /// the busiest node only, matching the paper's per-node accounting).
  std::int64_t blocks_rearranged = 0;
  /// Total send events across all nodes and steps.
  std::int64_t total_sends = 0;
  /// Send events whose blocks occupied a single contiguous run.
  std::int64_t contiguous_sends = 0;
  /// Worst number of runs any single send needed.
  std::int64_t max_runs_per_send = 1;
  /// Blocks that belonged to multi-run sends (would need gathering).
  std::int64_t gathered_blocks = 0;

  bool fully_contiguous() const { return contiguous_sends == total_sends; }
};

// --- §3.3 layout keys --------------------------------------------------
//
// Shared by the block-level layout simulator below and the pooled
// payload executor (core/payload_exchange.hpp), so both order their
// buffers identically and report comparable run statistics.
namespace layout {

/// Scatter-phase key: directed ring distance (in subtorus hops) from
/// `node_coord`'s submesh to the block target's submesh along the
/// phase dimension, in the node's transmit direction. Sorting
/// ascending makes every step's send set the tail of the buffer.
std::int64_t scatter_key(const TorusShape& shape, const Coord& node_coord, const Block& b,
                         const Direction& dir);

/// Difference vector of a block at `node` for the quarter/pair phases:
/// bit for step s set iff the block still differs from the holder in
/// the dimension exchanged at step s (step 1 = most significant bit).
std::uint32_t difference_vector(const SuhShinAape& algo, Rank node, int phase, const Block& b);

/// Rank of `word` in the binary-reflected Gray sequence (inverse Gray
/// code). Ordering by gray_rank(difference_vector(...)) is the n-D
/// generalization of the paper's B0, B1, B3, B2 layout.
std::uint32_t gray_rank(std::uint32_t word);

}  // namespace layout

/// Which layout key the per-phase rearrangement uses.
enum class LayoutPolicy {
  /// The paper's §3.3 ordering (distance-sorted scatter key, Gray-coded
  /// difference vector for the exchange phases).
  kPaper,
  /// Ablation: keep buffers ordered by destination rank — a natural but
  /// naive layout that fragments the send sets.
  kNaiveDestinationOrder,
};

/// Executes the schedule with full layout fidelity and verifies the
/// AAPE postcondition. Throws on any correctness violation.
LayoutStats run_layout_simulation(const SuhShinAape& algo,
                                  LayoutPolicy policy = LayoutPolicy::kPaper);

}  // namespace torex
