#include "core/exchange_engine.hpp"

#include <algorithm>

#include "topology/group.hpp"
#include "util/assert.hpp"

namespace torex {

namespace {

/// Hoisted telemetry handles so the step loop does no registry lookups.
struct EngineObs {
  Recorder* obs = nullptr;
  Counter* steps = nullptr;
  Counter* blocks = nullptr;
  Histogram* latency = nullptr;

  explicit EngineObs(Recorder* recorder) {
    if (recorder == nullptr || !recorder->enabled()) return;
    obs = recorder;
    steps = &recorder->metrics().counter("exchange.steps");
    blocks = &recorder->metrics().counter("exchange.blocks_moved");
    latency =
        &recorder->metrics().histogram("engine.step_latency_ns", default_latency_bounds_ns());
  }

  void step_done(std::int64_t started_ns, const StepRecord& record) const {
    if (obs == nullptr) return;
    steps->add();
    blocks->add(record.total_blocks);
    latency->observe(obs->now_ns() - started_ns);
  }
};

}  // namespace

ExchangeEngine::ExchangeEngine(const SuhShinAape& algorithm, EngineOptions options)
    : algo_(algorithm), options_(options) {}

void ExchangeEngine::reset() {
  const Rank N = algo_.shape().num_nodes();
  buffers_.assign(static_cast<std::size_t>(N), {});
  incoming_.assign(static_cast<std::size_t>(N), {});
  incoming_source_.assign(static_cast<std::size_t>(N), -1);
  for (Rank p = 0; p < N; ++p) {
    auto& buf = buffers_[static_cast<std::size_t>(p)];
    buf.reserve(static_cast<std::size_t>(N));
    for (Rank d = 0; d < N; ++d) buf.push_back(Block{p, d});
  }
}

ExchangeTrace ExchangeEngine::run_custom(std::vector<std::vector<Block>> initial) {
  const Rank N = algo_.shape().num_nodes();
  TOREX_REQUIRE(static_cast<Rank>(initial.size()) == N, "need one buffer per node");
  for (Rank p = 0; p < N; ++p) {
    for (const Block& b : initial[static_cast<std::size_t>(p)]) {
      TOREX_REQUIRE(b.origin == p, "custom block must start at its origin");
      TOREX_REQUIRE(b.dest >= 0 && b.dest < N, "block destination out of range");
    }
  }

  // Expected delivery: per destination, the sorted multiset of blocks.
  std::vector<std::vector<Block>> expected(static_cast<std::size_t>(N));
  for (const auto& buf : initial) {
    for (const Block& b : buf) expected[static_cast<std::size_t>(b.dest)].push_back(b);
  }
  for (auto& e : expected) std::sort(e.begin(), e.end());

  buffers_ = std::move(initial);
  incoming_.assign(static_cast<std::size_t>(N), {});
  incoming_source_.assign(static_cast<std::size_t>(N), -1);

  ExchangeTrace trace;
  trace.rearrangement_passes = algo_.num_dims() + 1;
  trace.blocks_per_rearrangement = N;
  const EngineObs obs(options_.obs);
  for (int phase = 1; phase <= algo_.num_phases(); ++phase) {
    SpanGuard phase_span(obs.obs, "phase", -1, phase);
    for (int step = 1; step <= algo_.steps_in_phase(phase); ++step) {
      const std::int64_t started_ns = obs.obs != nullptr ? obs.obs->now_ns() : 0;
      SpanGuard step_span(obs.obs, "step", -1, phase, step);
      StepRecord record;
      record.phase = phase;
      record.step = step;
      record.hops = algo_.hops_per_step(phase);
      execute_step(phase, step, record);
      if (options_.on_step_end) options_.on_step_end(phase, step, record, buffers_);
      obs.step_done(started_ns, record);
      trace.steps.push_back(std::move(record));
    }
    if (options_.check_phase_invariants) {
      const int n = algo_.num_dims();
      if (phase == n) check_after_scatter();
      if (phase == n + 1) check_after_quarter();
    }
  }

  for (Rank p = 0; p < N; ++p) {
    auto got = buffers_[static_cast<std::size_t>(p)];
    std::sort(got.begin(), got.end());
    TOREX_CHECK(got == expected[static_cast<std::size_t>(p)],
                "custom exchange did not deliver the expected multiset");
  }
  return trace;
}

ExchangeTrace ExchangeEngine::run() {
  reset();
  ExchangeTrace trace;
  const int n = algo_.num_dims();
  trace.rearrangement_passes = n + 1;
  trace.blocks_per_rearrangement = algo_.shape().num_nodes();
  trace.steps.reserve(static_cast<std::size_t>(algo_.total_steps()));

  const EngineObs obs(options_.obs);
  for (int phase = 1; phase <= algo_.num_phases(); ++phase) {
    SpanGuard phase_span(obs.obs, "phase", -1, phase);
    for (int step = 1; step <= algo_.steps_in_phase(phase); ++step) {
      const std::int64_t started_ns = obs.obs != nullptr ? obs.obs->now_ns() : 0;
      SpanGuard step_span(obs.obs, "step", -1, phase, step);
      StepRecord record;
      record.phase = phase;
      record.step = step;
      record.hops = algo_.hops_per_step(phase);
      execute_step(phase, step, record);
      if (options_.on_step_end) options_.on_step_end(phase, step, record, buffers_);
      obs.step_done(started_ns, record);
      trace.steps.push_back(std::move(record));
    }
    if (options_.check_phase_invariants) {
      if (phase == n) check_after_scatter();
      if (phase == n + 1) check_after_quarter();
    }
  }
  return trace;
}

ExchangeTrace ExchangeEngine::run_verified() {
  ExchangeTrace trace = run();
  verify_postcondition();
  return trace;
}

void ExchangeEngine::execute_step(int phase, int step, StepRecord& record) {
  const Rank N = algo_.shape().num_nodes();

  // Send: each node partitions its buffer, keeping non-forwarded blocks
  // in place and appending forwarded ones to the partner's inbox.
  for (Rank p = 0; p < N; ++p) {
    auto& buf = buffers_[static_cast<std::size_t>(p)];
    auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Block& b) {
      return !algo_.should_send(p, phase, step, b);
    });
    const std::int64_t sent = std::distance(split, buf.end());
    if (sent == 0) continue;  // idle node (short ring / nothing left): empty message

    const Rank q = algo_.partner(p, phase, step);
    TOREX_CHECK(q != p, "node addressed itself");
    auto& inbox = incoming_[static_cast<std::size_t>(q)];
    TOREX_CHECK(incoming_source_[static_cast<std::size_t>(q)] == -1,
                "one-port violation: node receives two messages in one step");
    incoming_source_[static_cast<std::size_t>(q)] = p;
    inbox.insert(inbox.end(), split, buf.end());
    buf.erase(split, buf.end());

    record.max_blocks_per_node = std::max(record.max_blocks_per_node, sent);
    record.total_blocks += sent;
    if (options_.record_transfers) {
      record.transfers.push_back(TransferRecord{
          p, q, algo_.direction(p, phase, step), algo_.hops_per_step(phase), sent});
    }
  }

  // Deliver: append inboxes to buffers.
  for (Rank p = 0; p < N; ++p) {
    auto& inbox = incoming_[static_cast<std::size_t>(p)];
    if (inbox.empty()) {
      incoming_source_[static_cast<std::size_t>(p)] = -1;
      continue;
    }
    auto& buf = buffers_[static_cast<std::size_t>(p)];
    buf.insert(buf.end(), inbox.begin(), inbox.end());
    inbox.clear();
    incoming_source_[static_cast<std::size_t>(p)] = -1;
  }
}

void ExchangeEngine::check_after_scatter() const {
  // Paper §3.2/§4.1: after phase n, every block (o, d) sits on the
  // member of o's group that shares d's 4x..x4 submesh (the proxy).
  const TorusShape& s = algo_.shape();
  for (Rank p = 0; p < s.num_nodes(); ++p) {
    const Coord pc = s.coord_of(p);
    for (const Block& b : buffers_[static_cast<std::size_t>(p)]) {
      const Coord oc = s.coord_of(b.origin);
      const Coord dc = s.coord_of(b.dest);
      TOREX_CHECK(same_group(pc, oc), "block left its origin's group during scatter");
      TOREX_CHECK(same_submesh(pc, dc), "block not in destination submesh after scatter");
    }
  }
}

void ExchangeEngine::check_after_quarter() const {
  // After phase n+1, every block is in its destination's 2x..x2
  // half-submesh.
  const TorusShape& s = algo_.shape();
  for (Rank p = 0; p < s.num_nodes(); ++p) {
    const Coord pc = s.coord_of(p);
    for (const Block& b : buffers_[static_cast<std::size_t>(p)]) {
      const Coord dc = s.coord_of(b.dest);
      TOREX_CHECK(same_half_submesh(pc, dc),
                  "block not in destination half-submesh after quarter exchange");
    }
  }
}

void verify_aape_postcondition(const TorusShape& shape,
                               const std::vector<std::vector<Block>>& buffers) {
  const Rank N = shape.num_nodes();
  TOREX_CHECK(static_cast<Rank>(buffers.size()) == N, "wrong node count in final state");
  std::vector<char> seen(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    const auto& buf = buffers[static_cast<std::size_t>(p)];
    TOREX_CHECK(static_cast<Rank>(buf.size()) == N,
                "node does not hold exactly N blocks after the exchange");
    std::fill(seen.begin(), seen.end(), 0);
    for (const Block& b : buf) {
      TOREX_CHECK(b.dest == p, "node holds a block destined elsewhere");
      TOREX_CHECK(!seen[static_cast<std::size_t>(b.origin)], "duplicate origin in final buffer");
      seen[static_cast<std::size_t>(b.origin)] = 1;
    }
  }
}

void ExchangeEngine::verify_postcondition() const {
  verify_aape_postcondition(algo_.shape(), buffers_);
}

}  // namespace torex
