// Functional executor for Suh-Shin AAPE schedules.
//
// Simulates every node's buffer as a multiset of (origin, dest) blocks
// and plays the schedule step by step: each node evaluates the
// forwarding predicate over its buffer, ships the matching blocks to
// its fixed partner, and keeps the rest. The engine enforces the
// one-port model (each node sends at most one message and receives from
// at most one source per step) and can verify both the final AAPE
// permutation and the paper's intermediate phase invariants.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/aape.hpp"
#include "core/block.hpp"
#include "core/trace.hpp"
#include "obs/recorder.hpp"

namespace torex {

/// Observer invoked after each step's messages are delivered. Receives
/// the 1-based (phase, step), the step's record, and all node buffers.
using StepObserver = std::function<void(int phase, int step, const StepRecord& record,
                                        const std::vector<std::vector<Block>>& buffers)>;

/// Options controlling how much the engine checks while running.
struct EngineOptions {
  /// Verify after phase n that every block sits on its proxy node, and
  /// after phase n+1 that every block reached its destination's 2x..x2
  /// half-submesh. O(total blocks) per phase boundary.
  bool check_phase_invariants = true;
  /// Record per-transfer detail in the trace (figure benches need it;
  /// large sweeps can turn it off to save memory).
  bool record_transfers = true;
  /// Optional per-step callback (figure benches, debugging).
  StepObserver on_step_end;
  /// Optional telemetry sink: phase/step spans, step-latency histogram,
  /// blocks-moved counters. Null (the default) costs nothing.
  Recorder* obs = nullptr;
};

/// Checks the AAPE postcondition on arbitrary buffers: node p must hold
/// exactly {(q, p) : q in nodes}. Throws std::logic_error with a
/// description of the first violation. Used by the engines and directly
/// by fault-injection tests.
void verify_aape_postcondition(const TorusShape& shape,
                               const std::vector<std::vector<Block>>& buffers);

/// Runs one complete exchange over an in-memory model of the torus.
class ExchangeEngine {
 public:
  explicit ExchangeEngine(const SuhShinAape& algorithm, EngineOptions options = {});

  /// Executes all phases from the canonical initial state (node p holds
  /// {(p, d) : d in nodes}) and returns the traffic trace. Throws if
  /// any invariant (one-port, phase placement) is violated.
  ExchangeTrace run();

  /// Executes and additionally verifies the AAPE postcondition: node p
  /// ends holding exactly {(q, p) : q in nodes}.
  ExchangeTrace run_verified();

  /// Executes from a custom workload — the Alltoallv generalization:
  /// initial[p] may hold any multiset of blocks with origin p (zero,
  /// one, or many per destination; empty nodes allowed). The schedule
  /// is oblivious to counts, so the same steps deliver everything.
  /// Verifies that the delivered multisets match the sent ones.
  ExchangeTrace run_custom(std::vector<std::vector<Block>> initial);

  /// Buffers after the last run (node -> blocks held).
  const std::vector<std::vector<Block>>& buffers() const { return buffers_; }

  /// Verifies the postcondition on the current buffers.
  void verify_postcondition() const;

 private:
  void reset();
  void execute_step(int phase, int step, StepRecord& record);
  void check_after_scatter() const;
  void check_after_quarter() const;

  const SuhShinAape& algo_;
  EngineOptions options_;
  std::vector<std::vector<Block>> buffers_;
  std::vector<std::vector<Block>> incoming_;
  std::vector<Rank> incoming_source_;  // -1 when none; enforces one-port receive
};

}  // namespace torex
