#include "core/integrity.hpp"

#include <sstream>
#include <utility>

namespace torex {

std::string IntegrityViolation::describe() const {
  std::ostringstream os;
  os << "phase " << phase << " step " << step << " (tick " << tick << ", attempt " << attempt
     << "): message " << src << " -> " << dst << " rejected — " << reason;
  return os.str();
}

IntegrityError::IntegrityError(const std::string& what, IntegrityReport report)
    : std::runtime_error(what), report_(std::move(report)) {}

}  // namespace torex
