// Data-integrity layer for payload exchanges: wire primitives, tamper
// hooks, and the detect-and-retransmit protocol's report types.
//
// The schedule proofs elsewhere in this library guarantee *where*
// blocks go; they say nothing about the bytes surviving the trip. This
// module gives payload exchanges an end-to-end check: every message is
// sealed (origin/dest/phase/step metadata + CRC-32 per parcel, see
// core/payload_exchange.hpp), a tamper hook lets the fault model
// corrupt the wire bytes in flight, and the receiver verifies seals at
// integrate time. A detected corruption triggers a bounded retransmit;
// an exhausted budget raises IntegrityError carrying the full report,
// which the communicator escalates into the PR-1 recovery chain.
//
// Tick semantics: transmission attempt `a` of the message for schedule
// step `s` (0-based, global) happens at tick `base_tick + ticks so
// far + a` — retransmits consume ticks, so a transient corruption
// window heals under retry exactly like a transient channel fault
// heals under backoff.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/wire_buffer.hpp"
#include "topology/torus.hpp"

namespace torex {

// --- Wire primitives ---------------------------------------------------

/// Little-endian append of a 32-bit word.
inline void wire_put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

/// Little-endian append of a 64-bit word.
inline void wire_put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

/// Little-endian read of a 32-bit word; false when the buffer is short.
inline bool wire_get_u32(const std::vector<std::byte>& in, std::size_t& offset,
                         std::uint32_t& v) {
  if (in.size() < offset + 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(in[offset + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  offset += 4;
  return true;
}

/// Little-endian read of a 64-bit word; false when the buffer is short.
inline bool wire_get_u64(const std::vector<std::byte>& in, std::size_t& offset,
                         std::uint64_t& v) {
  if (in.size() < offset + 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(in[offset + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  offset += 8;
  return true;
}

// --- Tamper hook -------------------------------------------------------

/// Everything a tamperer (or any wire observer) knows about one
/// transmission attempt: the schedule coordinates, the directed
/// straight-line route, the fault tick, and which attempt this is
/// (0 = first transmission, >= 1 = retransmit).
struct TransferContext {
  int phase = 0;  ///< 1-based schedule coordinates
  int step = 0;
  Rank src = -1;
  Rank dst = -1;
  Direction direction;  ///< transmit dimension/sign of this step
  int hops = 0;         ///< straight-line hop count of this phase
  std::int64_t tick = 0;
  int attempt = 0;
};

/// In-flight corruption hook: may mutate the wire bytes; returns true
/// when it tampered. An empty std::function means a clean wire.
using ParcelTamperer =
    std::function<bool(const TransferContext&, std::vector<std::byte>&)>;

// --- Protocol configuration and reporting ------------------------------

/// Knobs for the detect-and-retransmit protocol.
struct IntegrityOptions {
  /// Retransmission attempts per message per step after the first
  /// transmission; exhausting them raises IntegrityError.
  int max_retransmits = 3;
  /// Fault tick the first schedule step transmits at.
  std::int64_t base_tick = 0;
  /// Wire encoding: pooled batched frames (default) or the original
  /// per-parcel records. Both detect every corruption; they differ in
  /// allocation and copy behavior (see core/wire_buffer.hpp).
  WirePath wire_path = WirePath::kPooled;
  /// Optional external frame pool. When null the exchange uses a
  /// private arena; supplying one lets frames (and the arena's pool /
  /// traffic statistics) survive across exchanges.
  WireArena* arena = nullptr;
};

/// One detected integrity violation (a seal that failed verification).
struct IntegrityViolation {
  int phase = 0;
  int step = 0;
  Rank src = -1;
  Rank dst = -1;
  Direction direction;
  int hops = 0;
  std::int64_t tick = 0;
  int attempt = 0;      ///< attempt that failed (0 = first transmission)
  std::string reason;   ///< what the verifier rejected

  std::string describe() const;
};

/// Outcome of one sealed exchange: how much was verified, what was
/// caught, and what it cost to correct.
struct IntegrityReport {
  std::int64_t messages = 0;      ///< sealed messages delivered
  std::int64_t parcels = 0;       ///< sealed parcels verified
  std::int64_t corrupted = 0;     ///< deliveries rejected by the verifier
  std::int64_t retransmits = 0;   ///< retransmissions performed
  std::int64_t final_tick = 0;    ///< tick after the last step
  /// First kMaxRecordedViolations violations in schedule order;
  /// `corrupted` counts all of them.
  std::vector<IntegrityViolation> violations;
  /// The violation that exhausted its retransmit budget, when one did.
  std::optional<IntegrityViolation> fatal;

  static constexpr std::size_t kMaxRecordedViolations = 64;

  bool clean() const { return corrupted == 0; }
};

/// Raised when a message exhausts its retransmit budget: the corruption
/// is persistent and the exchange cannot self-correct. Carries the full
/// report so callers can attribute the failure (the communicator uses
/// it to escalate into the recovery chain).
class IntegrityError : public std::runtime_error {
 public:
  IntegrityError(const std::string& what, IntegrityReport report);

  const IntegrityReport& report() const { return report_; }

 private:
  IntegrityReport report_;
};

}  // namespace torex
