#include "core/pattern.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace torex {

namespace {

/// 2D base pattern over dimensions (d0, d1) of `coord`.
/// phase 1 = the paper's pattern A, phase 2 = pattern B.
Direction base_2d_scatter(const Coord& coord, int d0, int d1, int phase,
                          PatternConvention convention) {
  const int key = (coord[static_cast<std::size_t>(d0)] + coord[static_cast<std::size_t>(d1)]) % 4;
  // Which dimension key 0 uses: the paper's standalone 2D pattern A sends
  // key 0 along the second dimension (+c); the nested (3D-style) pattern A
  // sends key 0 along the first dimension (+X). Pattern B swaps the roles.
  const bool key0_uses_d0 = (convention == PatternConvention::kNested) == (phase == 1);
  const bool even_key = key % 2 == 0;
  const int dim = (even_key == key0_uses_d0) ? d0 : d1;
  const Sign sign = key < 2 ? Sign::kPositive : Sign::kNegative;
  return Direction{dim, sign};
}

/// Recursive n-D scatter assignment over the first `nd` dimensions
/// (paper §4.2): nodes even along the last dimension follow the
/// (nd-1)-D pattern in phases 1..nd-1 and do the last dimension in
/// phase nd; odd nodes do the last dimension first, then the (nd-1)-D
/// pattern with its phases reversed. The reversal is pinned by the
/// paper's explicit 3D rules (§4.1): odd-Z planes run pattern C, then
/// B, then A.
Direction scatter_rec(const Coord& coord, int nd, int phase, PatternConvention convention) {
  if (nd == 2) return base_2d_scatter(coord, 0, 1, phase, convention);
  const int last = nd - 1;
  const std::int32_t z = coord[static_cast<std::size_t>(last)];
  if (z % 2 == 0) {
    if (phase <= nd - 1) return scatter_rec(coord, nd - 1, phase, convention);
    return Direction{last, z % 4 == 0 ? Sign::kPositive : Sign::kNegative};
  }
  if (phase == 1) {
    return Direction{last, z % 4 == 1 ? Sign::kPositive : Sign::kNegative};
  }
  return scatter_rec(coord, nd - 1, nd + 1 - phase, convention);
}

/// Appends the quarter-exchange dimension order of the first `nd`
/// dimensions for this node. Mirrors the scatter recursion: even along
/// the last dimension -> (nd-1)-D order then the last dimension; odd ->
/// last dimension first, then the (nd-1)-D order reversed.
void quarter_order_rec(const Coord& coord, int nd, PatternConvention convention,
                       std::vector<int>& out) {
  if (nd == 2) {
    const int key2 =
        (coord[0] + coord[1]) % 2;
    // Paper 2D phase 3: even (r+c) exchanges along c first; the nested
    // (3D §4.1 phase 4) convention has even (X+Y) exchange along X first.
    const bool first_is_d0 = (convention == PatternConvention::kNested) == (key2 == 0);
    out.push_back(first_is_d0 ? 0 : 1);
    out.push_back(first_is_d0 ? 1 : 0);
    return;
  }
  const int last = nd - 1;
  const std::int32_t z = coord[static_cast<std::size_t>(last)];
  if (z % 2 == 0) {
    quarter_order_rec(coord, nd - 1, convention, out);
    out.push_back(last);
  } else {
    out.push_back(last);
    const std::size_t begin = out.size();
    quarter_order_rec(coord, nd - 1, convention, out);
    std::reverse(out.begin() + static_cast<std::ptrdiff_t>(begin), out.end());
  }
}

void require_scatter_preconditions(const TorusShape& shape, const Coord& coord, int phase) {
  TOREX_REQUIRE(shape.num_dims() >= 2, "the Suh-Shin patterns need at least two dimensions");
  TOREX_REQUIRE(shape.all_extents_multiple_of_four(),
                "extents must be multiples of four (use VirtualTorus for other sizes)");
  TOREX_REQUIRE(coord.size() == static_cast<std::size_t>(shape.num_dims()),
                "coordinate dimensionality mismatch");
  TOREX_REQUIRE(phase >= 1 && phase <= shape.num_dims(), "scatter phase out of range");
}

}  // namespace

Direction scatter_direction(const TorusShape& shape, const Coord& coord, int phase,
                            PatternConvention convention) {
  require_scatter_preconditions(shape, coord, phase);
  return scatter_rec(coord, shape.num_dims(), phase, convention);
}

int quarter_exchange_dim(const TorusShape& shape, const Coord& coord, int step,
                         PatternConvention convention) {
  TOREX_REQUIRE(shape.num_dims() >= 2, "the Suh-Shin patterns need at least two dimensions");
  TOREX_REQUIRE(step >= 1 && step <= shape.num_dims(), "quarter-exchange step out of range");
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(shape.num_dims()));
  quarter_order_rec(coord, shape.num_dims(), convention, order);
  return order[static_cast<std::size_t>(step - 1)];
}

Sign quarter_exchange_sign(const Coord& coord, int dim) {
  return coord[static_cast<std::size_t>(dim)] % 4 < 2 ? Sign::kPositive : Sign::kNegative;
}

int pair_exchange_dim(const TorusShape& shape, int step, PatternConvention convention) {
  TOREX_REQUIRE(step >= 1 && step <= shape.num_dims(), "pair-exchange step out of range");
  // Paper 2D phase 4 goes c then r; 3D phase 5 goes X, Y, Z. Both are
  // trivially contention-free (disjoint neighbor pairs, full duplex).
  if (shape.num_dims() == 2 && convention == PatternConvention::kPaper2D) {
    return step == 1 ? 1 : 0;
  }
  return step - 1;
}

Sign pair_exchange_sign(const Coord& coord, int dim) {
  return coord[static_cast<std::size_t>(dim)] % 2 == 0 ? Sign::kPositive : Sign::kNegative;
}

PatternConvention default_convention(const TorusShape& shape) {
  return shape.num_dims() == 2 ? PatternConvention::kPaper2D : PatternConvention::kNested;
}

}  // namespace torex
