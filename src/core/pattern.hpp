// Per-node direction assignment for every phase of the Suh–Shin AAPE
// algorithm. This file encodes the scheduling heart of the paper:
//
//  * Scatter phases 1..n (paper §3.2 patterns for 2D, §4.1 for 3D,
//    §4.2 recursion for n-D): each node gets a fixed (dimension, sign)
//    per phase, determined entirely by its coordinates mod 4, such that
//    within any 1-D line of the torus the nodes transmitting in a given
//    (dimension, sign) form a single residue class mod 4 — their 4-hop
//    stride paths tile the ring without sharing a channel.
//  * Quarter-exchange phase n+1 (±2 moves inside each 4x..x4 submesh):
//    each node visits all n dimensions once, in an order given by the
//    same even/odd recursion; sign is +2 when the node's coordinate
//    along the step dimension is 0 or 1 (mod 4), else -2.
//  * Pair-exchange phase n+2 (±1 moves inside each 2x..x2 submesh):
//    a uniform dimension order for all nodes; sign by coordinate parity.
//
// The assignment is a *group* invariant — all nodes with equal
// coordinates mod 4 get identical assignments — which is what lets a
// block be forwarded consistently along its origin's rings.
//
// Known paper erratum (documented in DESIGN.md): the 3D phase-4 step-1
// rule as printed conditions the X-move sign on `Y mod 4`, which would
// route messages out of their submesh; consistent with the 2D rules we
// condition the sign of a move along dimension d on the node's own
// coordinate along d.
#pragma once

#include <vector>

#include "topology/shape.hpp"
#include "topology/torus.hpp"

namespace torex {

/// Which dimension pairs with key 0 of the 2D base pattern. The paper's
/// standalone 2D algorithm (§3.2) sends key-0 nodes along +c (the
/// second dimension); its 3D algorithm (§4.1) sends key-0 nodes along
/// +X (the first dimension). Both are valid; kPaper2D reproduces
/// Figure 1 literally, kNested is the base case used inside the n >= 3
/// recursion so that 3D matches §4.1 literally.
enum class PatternConvention { kPaper2D, kNested };

/// Scatter-phase assignment: (dimension, sign) for node `coord` in phase
/// `phase` (1-based, 1 <= phase <= n). All extents must be multiples of
/// four; n >= 2.
Direction scatter_direction(const TorusShape& shape, const Coord& coord, int phase,
                            PatternConvention convention);

/// Dimension visited by node `coord` in step `step` (1-based, 1..n) of
/// the quarter-exchange phase (paper phase n+1). Over the n steps every
/// node visits every dimension exactly once, and partners at +-2 share
/// orders because orders depend only on coordinate parities, which +-2
/// moves preserve.
int quarter_exchange_dim(const TorusShape& shape, const Coord& coord, int step,
                         PatternConvention convention);

/// Sign of the +-2 move along `dim` for this node: +2 when
/// coord[dim] mod 4 in {0, 1}, else -2 (stays inside the 4x..x4 SM).
Sign quarter_exchange_sign(const Coord& coord, int dim);

/// Dimension visited in step `step` (1-based, 1..n) of the
/// pair-exchange phase (paper phase n+2). Uniform across nodes.
int pair_exchange_dim(const TorusShape& shape, int step, PatternConvention convention);

/// Sign of the +-1 move along `dim`: +1 when coord[dim] is even.
Sign pair_exchange_sign(const Coord& coord, int dim);

/// Default convention for a shape: kPaper2D for 2 dimensions (so the 2D
/// schedule matches §3.2 / Figure 1 literally), kNested otherwise.
PatternConvention default_convention(const TorusShape& shape);

}  // namespace torex
