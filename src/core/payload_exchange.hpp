// Payload-carrying exchange: the bridge from schedule to application.
//
// The exchange engine moves block *identities*; applications move data.
// This header runs the same schedule over user payloads attached to
// blocks — each node starts with one payload per destination and ends
// with one payload per origin — so examples (matrix transpose, FFT)
// and downstream users exercise exactly the communication pattern the
// paper schedules, with their own element types.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <iterator>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/aape.hpp"
#include "core/block.hpp"
#include "core/integrity.hpp"
#include "obs/recorder.hpp"
#include "util/assert.hpp"
#include "util/crc32.hpp"

namespace torex {

/// One payload in flight: its block identity plus user data.
template <typename T>
struct Parcel {
  Block block;
  T payload;
};

/// Per-node parcel buffers, indexed by rank.
template <typename T>
using ParcelBuffers = std::vector<std::vector<Parcel<T>>>;

/// Per-destination delivery state of one all-to-all: bit (dest, origin)
/// is set once `dest` durably holds the parcel `origin` addressed to
/// it. This is the unit of progress the exchange journal
/// (runtime/journal.hpp) persists and the delta-resume path consults to
/// re-send only what is missing and drop what is re-received.
class DeliveryBitmap {
 public:
  DeliveryBitmap() = default;
  explicit DeliveryBitmap(Rank num_nodes)
      : num_nodes_(num_nodes),
        words_(static_cast<std::size_t>(num_nodes) * words_per_row(num_nodes), 0) {
    TOREX_REQUIRE(num_nodes >= 1, "delivery bitmap needs at least one node");
  }

  Rank num_nodes() const { return num_nodes_; }

  bool test(Rank dest, Rank origin) const {
    check_pair(dest, origin);
    return (words_[word_index(dest, origin)] >> bit_index(origin)) & 1u;
  }

  /// Sets bit (dest, origin); returns true when it was newly set.
  bool mark(Rank dest, Rank origin) {
    check_pair(dest, origin);
    std::uint64_t& word = words_[word_index(dest, origin)];
    const std::uint64_t bit = std::uint64_t{1} << bit_index(origin);
    if ((word & bit) != 0) return false;
    word |= bit;
    ++delivered_;
    return true;
  }

  /// Parcels marked delivered so far (out of expected()).
  std::int64_t delivered() const { return delivered_; }

  /// Total parcels of the exchange: one per ordered (origin, dest)
  /// pair, self pairs included.
  std::int64_t expected() const {
    return static_cast<std::int64_t>(num_nodes_) * num_nodes_;
  }

  bool complete() const { return delivered_ == expected(); }

  /// Delivered count for one destination's row.
  std::int64_t delivered_to(Rank dest) const {
    TOREX_REQUIRE(dest >= 0 && dest < num_nodes_, "destination out of range");
    std::int64_t count = 0;
    for (Rank origin = 0; origin < num_nodes_; ++origin) {
      if (test(dest, origin)) ++count;
    }
    return count;
  }

 private:
  static std::size_t words_per_row(Rank num_nodes) {
    return (static_cast<std::size_t>(num_nodes) + 63) / 64;
  }
  std::size_t word_index(Rank dest, Rank origin) const {
    return static_cast<std::size_t>(dest) * words_per_row(num_nodes_) +
           static_cast<std::size_t>(origin) / 64;
  }
  static unsigned bit_index(Rank origin) { return static_cast<unsigned>(origin) % 64; }
  void check_pair(Rank dest, Rank origin) const {
    TOREX_REQUIRE(dest >= 0 && dest < num_nodes_ && origin >= 0 && origin < num_nodes_,
                  "delivery bitmap pair out of range");
  }

  Rank num_nodes_ = 0;
  std::int64_t delivered_ = 0;
  std::vector<std::uint64_t> words_;
};

namespace detail {

/// Validates the canonical all-to-all seed: one buffer per node, one
/// parcel per destination, every parcel originating at its node.
template <typename T>
void require_canonical_parcel_seed(Rank N, const ParcelBuffers<T>& buffers) {
  TOREX_REQUIRE(static_cast<Rank>(buffers.size()) == N, "need one buffer per node");
  std::vector<char> seen(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    TOREX_REQUIRE(static_cast<Rank>(buffers[static_cast<std::size_t>(p)].size()) == N,
                  "node must start with one parcel per destination");
    std::fill(seen.begin(), seen.end(), 0);
    for (const auto& parcel : buffers[static_cast<std::size_t>(p)]) {
      TOREX_REQUIRE(parcel.block.origin == p, "parcel origin must match its node");
      TOREX_REQUIRE(parcel.block.dest >= 0 && parcel.block.dest < N,
                    "parcel destination out of range");
      TOREX_REQUIRE(!seen[static_cast<std::size_t>(parcel.block.dest)],
                    "duplicate destination in a node's initial parcels");
      seen[static_cast<std::size_t>(parcel.block.dest)] = 1;
    }
  }
}

/// Verifies the AAPE postcondition on delivered parcels: node p holds
/// exactly one parcel from every origin, all addressed to p.
template <typename T>
void check_parcel_postcondition(Rank N, const ParcelBuffers<T>& buffers) {
  std::vector<char> seen(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    const auto& buf = buffers[static_cast<std::size_t>(p)];
    TOREX_CHECK(static_cast<Rank>(buf.size()) == N, "payload exchange lost parcels");
    std::fill(seen.begin(), seen.end(), 0);
    for (const auto& parcel : buf) {
      TOREX_CHECK(parcel.block.dest == p, "payload delivered to the wrong node");
      TOREX_CHECK(!seen[static_cast<std::size_t>(parcel.block.origin)], "duplicate origin");
      seen[static_cast<std::size_t>(parcel.block.origin)] = 1;
    }
  }
}

}  // namespace detail

/// Runs the full schedule over `initial` parcels. Requirements:
/// initial[p] holds exactly one parcel per destination, each with
/// block.origin == p. Returns the final buffers: node p ends with one
/// parcel from every origin, all with block.dest == p. Throws on any
/// violation.
template <typename T>
ParcelBuffers<T> exchange_payloads(const SuhShinAape& algo, ParcelBuffers<T> buffers,
                                   Recorder* obs = nullptr) {
  const Rank N = algo.shape().num_nodes();
  detail::require_canonical_parcel_seed(N, buffers);
  if (obs != nullptr && !obs->enabled()) obs = nullptr;
  SpanGuard exchange_span(obs, "exchange");

  ParcelBuffers<T> inbox(static_cast<std::size_t>(N));
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    SpanGuard phase_span(obs, "phase", -1, phase);
    for (int step = 1; step <= algo.steps_in_phase(phase); ++step) {
      SpanGuard step_span(obs, "step", -1, phase, step);
      for (Rank p = 0; p < N; ++p) {
        auto& buf = buffers[static_cast<std::size_t>(p)];
        auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Parcel<T>& x) {
          return !algo.should_send(p, phase, step, x.block);
        });
        if (split == buf.end()) continue;
        const Rank q = algo.partner(p, phase, step);
        auto& in = inbox[static_cast<std::size_t>(q)];
        in.insert(in.end(), std::make_move_iterator(split),
                  std::make_move_iterator(buf.end()));
        buf.erase(split, buf.end());
      }
      for (Rank p = 0; p < N; ++p) {
        auto& in = inbox[static_cast<std::size_t>(p)];
        if (in.empty()) continue;
        auto& buf = buffers[static_cast<std::size_t>(p)];
        buf.insert(buf.end(), std::make_move_iterator(in.begin()),
                   std::make_move_iterator(in.end()));
        in.clear();
      }
    }
  }

  detail::check_parcel_postcondition(N, buffers);
  return buffers;
}

// --- Sealed exchange ---------------------------------------------------
//
// The self-checking variant of exchange_payloads: every message is
// serialized to wire bytes with per-parcel seals (origin, dest, phase,
// step, CRC-32 over header + payload) plus a checksummed message
// header, optionally tampered with in flight (ParcelTamperer), and
// verified by the receiver before integration. Detection triggers a
// bounded retransmit; exhaustion raises IntegrityError. Restricted to
// trivially copyable payloads because sealing hashes the payload's
// object representation.

namespace detail {

inline constexpr std::uint32_t kSealedMagic = 0x544F5831u;  // "TOX1"

/// Seal digest of one parcel: binds payload bytes to the parcel's
/// identity and the schedule step it was transmitted in.
inline std::uint32_t parcel_seal(Rank origin, Rank dest, int phase, int step,
                                 const void* payload, std::size_t payload_len) {
  Crc32 crc;
  crc.update_value(static_cast<std::int64_t>(origin));
  crc.update_value(static_cast<std::int64_t>(dest));
  crc.update_value(static_cast<std::int32_t>(phase));
  crc.update_value(static_cast<std::int32_t>(step));
  crc.update(payload, payload_len);
  return crc.value();
}

}  // namespace detail

/// Serializes one step's message (all parcels `src` ships to `dst` in
/// (phase, step)) into sealed wire bytes.
template <typename T>
std::vector<std::byte> encode_sealed_message(const std::vector<Parcel<T>>& parcels, int phase,
                                             int step, Rank src, Rank dst) {
  static_assert(std::is_trivially_copyable_v<T>,
                "sealed exchange requires trivially copyable payloads");
  std::vector<std::byte> wire;
  wire.reserve(40 + parcels.size() * (28 + sizeof(T)));
  wire_put_u32(wire, detail::kSealedMagic);
  wire_put_u32(wire, static_cast<std::uint32_t>(phase));
  wire_put_u32(wire, static_cast<std::uint32_t>(step));
  wire_put_u64(wire, static_cast<std::uint64_t>(static_cast<std::int64_t>(src)));
  wire_put_u64(wire, static_cast<std::uint64_t>(static_cast<std::int64_t>(dst)));
  wire_put_u64(wire, static_cast<std::uint64_t>(parcels.size()));
  wire_put_u32(wire, crc32(wire.data(), wire.size()));
  for (const auto& parcel : parcels) {
    wire_put_u64(wire, static_cast<std::uint64_t>(static_cast<std::int64_t>(parcel.block.origin)));
    wire_put_u64(wire, static_cast<std::uint64_t>(static_cast<std::int64_t>(parcel.block.dest)));
    wire_put_u64(wire, static_cast<std::uint64_t>(sizeof(T)));
    const std::size_t at = wire.size();
    wire.resize(at + sizeof(T));
    std::memcpy(wire.data() + at, &parcel.payload, sizeof(T));
    wire_put_u32(wire, detail::parcel_seal(parcel.block.origin, parcel.block.dest, phase, step,
                                           wire.data() + at, sizeof(T)));
  }
  return wire;
}

/// Verifies and deserializes a sealed message. Returns false (with
/// `reason` filled when non-null) on any integrity violation: short or
/// oversized buffer, bad magic, header/seal checksum mismatch, metadata
/// that does not match the expected (phase, step, src, dst), or parcel
/// identities out of range. On success `out` holds the parcels.
template <typename T>
bool decode_sealed_message(const std::vector<std::byte>& wire, int phase, int step, Rank src,
                           Rank dst, Rank num_nodes, std::vector<Parcel<T>>& out,
                           std::string* reason = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>,
                "sealed exchange requires trivially copyable payloads");
  out.clear();
  auto fail = [&](const char* what) {
    if (reason != nullptr) *reason = what;
    out.clear();
    return false;
  };
  std::size_t offset = 0;
  std::uint32_t magic = 0, wire_phase = 0, wire_step = 0, header_crc = 0;
  std::uint64_t wire_src = 0, wire_dst = 0, count = 0;
  if (!wire_get_u32(wire, offset, magic) || !wire_get_u32(wire, offset, wire_phase) ||
      !wire_get_u32(wire, offset, wire_step) || !wire_get_u64(wire, offset, wire_src) ||
      !wire_get_u64(wire, offset, wire_dst) || !wire_get_u64(wire, offset, count)) {
    return fail("truncated message header");
  }
  const std::size_t header_len = offset;
  if (!wire_get_u32(wire, offset, header_crc)) return fail("truncated message header");
  if (header_crc != crc32(wire.data(), header_len)) return fail("header checksum mismatch");
  if (magic != detail::kSealedMagic) return fail("bad magic");
  if (wire_phase != static_cast<std::uint32_t>(phase) ||
      wire_step != static_cast<std::uint32_t>(step)) {
    return fail("message sealed for a different step");
  }
  if (wire_src != static_cast<std::uint64_t>(static_cast<std::int64_t>(src)) ||
      wire_dst != static_cast<std::uint64_t>(static_cast<std::int64_t>(dst))) {
    return fail("message sealed for a different channel");
  }
  const std::uint64_t N = static_cast<std::uint64_t>(num_nodes);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t origin = 0, dest = 0, payload_len = 0;
    if (!wire_get_u64(wire, offset, origin) || !wire_get_u64(wire, offset, dest) ||
        !wire_get_u64(wire, offset, payload_len)) {
      return fail("truncated parcel header");
    }
    if (origin >= N || dest >= N) return fail("parcel identity out of range");
    if (payload_len != sizeof(T)) return fail("parcel payload length mismatch");
    if (wire.size() < offset + sizeof(T)) return fail("truncated parcel payload");
    const std::byte* payload_at = wire.data() + offset;
    offset += sizeof(T);
    std::uint32_t seal = 0;
    if (!wire_get_u32(wire, offset, seal)) return fail("truncated parcel seal");
    const Rank parcel_origin = static_cast<Rank>(origin);
    const Rank parcel_dest = static_cast<Rank>(dest);
    if (seal != detail::parcel_seal(parcel_origin, parcel_dest, phase, step, payload_at,
                                    sizeof(T))) {
      return fail("parcel seal mismatch");
    }
    Parcel<T> parcel;
    parcel.block = Block{parcel_origin, parcel_dest};
    std::memcpy(&parcel.payload, payload_at, sizeof(T));
    out.push_back(std::move(parcel));
  }
  if (offset != wire.size()) return fail("trailing bytes after last parcel");
  return true;
}

/// exchange_payloads with end-to-end integrity: every message crosses
/// the (simulated) wire sealed, may be tampered with by `tamperer`, and
/// is verified at integrate time. A rejected delivery is retransmitted
/// up to options.max_retransmits times — each retransmission costs one
/// fault tick, so transient corruption windows heal under retry — and
/// an exhausted budget raises IntegrityError carrying the report.
/// `report_out`, when non-null, receives the report even on throw.
template <typename T>
ParcelBuffers<T> exchange_payloads_sealed(const SuhShinAape& algo, ParcelBuffers<T> buffers,
                                          const ParcelTamperer& tamperer = {},
                                          const IntegrityOptions& options = {},
                                          IntegrityReport* report_out = nullptr,
                                          Recorder* obs = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>,
                "sealed exchange requires trivially copyable payloads");
  const Rank N = algo.shape().num_nodes();
  detail::require_canonical_parcel_seed(N, buffers);
  TOREX_REQUIRE(options.max_retransmits >= 0, "retransmit budget must be non-negative");
  if (obs != nullptr && !obs->enabled()) obs = nullptr;
  SpanGuard exchange_span(obs, "exchange_sealed");
  const auto flush_metrics = [&](const IntegrityReport& r) {
    if (obs == nullptr) return;
    MetricsRegistry& m = obs->metrics();
    m.counter("integrity.messages").add(r.messages);
    m.counter("integrity.parcels").add(r.parcels);
    m.counter("integrity.retransmits").add(r.retransmits);
    m.counter("integrity.corrupted").add(r.corrupted);
  };

  IntegrityReport report;
  std::int64_t tick = options.base_tick;
  ParcelBuffers<T> inbox(static_cast<std::size_t>(N));
  std::vector<Parcel<T>> received;
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    SpanGuard phase_span(obs, "phase", -1, phase);
    const int hops = algo.hops_per_step(phase);
    for (int step = 1; step <= algo.steps_in_phase(phase); ++step) {
      SpanGuard step_span(obs, "step", -1, phase, step);
      // Retransmissions across node pairs overlap in time; the step
      // consumes 1 + (worst retransmit count) ticks.
      std::int64_t extra_ticks = 0;
      for (Rank p = 0; p < N; ++p) {
        auto& buf = buffers[static_cast<std::size_t>(p)];
        auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Parcel<T>& x) {
          return !algo.should_send(p, phase, step, x.block);
        });
        if (split == buf.end()) continue;
        std::vector<Parcel<T>> outgoing(std::make_move_iterator(split),
                                        std::make_move_iterator(buf.end()));
        buf.erase(split, buf.end());
        const Rank q = algo.partner(p, phase, step);
        const Direction dir = algo.direction(p, phase, step);
        for (int attempt = 0;; ++attempt) {
          auto wire = encode_sealed_message(outgoing, phase, step, p, q);
          TransferContext ctx;
          ctx.phase = phase;
          ctx.step = step;
          ctx.src = p;
          ctx.dst = q;
          ctx.direction = dir;
          ctx.hops = hops;
          ctx.tick = tick + attempt;
          ctx.attempt = attempt;
          if (tamperer) tamperer(ctx, wire);
          std::string reason;
          if (decode_sealed_message<T>(wire, phase, step, p, q, N, received, &reason)) {
            auto& in = inbox[static_cast<std::size_t>(q)];
            in.insert(in.end(), std::make_move_iterator(received.begin()),
                      std::make_move_iterator(received.end()));
            ++report.messages;
            report.parcels += static_cast<std::int64_t>(received.size());
            report.retransmits += attempt;
            if (obs != nullptr && attempt > 0) {
              obs->instant("retransmit_ok", q, phase, step, attempt);
            }
            extra_ticks = std::max<std::int64_t>(extra_ticks, attempt);
            break;
          }
          ++report.corrupted;
          if (obs != nullptr) obs->instant("corrupted", q, phase, step, attempt);
          IntegrityViolation violation;
          violation.phase = phase;
          violation.step = step;
          violation.src = p;
          violation.dst = q;
          violation.direction = dir;
          violation.hops = hops;
          violation.tick = ctx.tick;
          violation.attempt = attempt;
          violation.reason = std::move(reason);
          if (report.violations.size() < IntegrityReport::kMaxRecordedViolations) {
            report.violations.push_back(violation);
          }
          if (attempt == options.max_retransmits) {
            report.retransmits += attempt;
            report.fatal = violation;
            report.final_tick = ctx.tick;
            if (obs != nullptr) obs->instant("integrity_fatal", q, phase, step, attempt);
            flush_metrics(report);
            if (report_out != nullptr) *report_out = report;
            throw IntegrityError("integrity failure: " + violation.describe() +
                                     " (retransmit budget exhausted)",
                                 std::move(report));
          }
        }
      }
      for (Rank p = 0; p < N; ++p) {
        auto& in = inbox[static_cast<std::size_t>(p)];
        if (in.empty()) continue;
        auto& buf = buffers[static_cast<std::size_t>(p)];
        buf.insert(buf.end(), std::make_move_iterator(in.begin()),
                   std::make_move_iterator(in.end()));
        in.clear();
      }
      tick += 1 + extra_ticks;
    }
  }
  report.final_tick = tick;
  detail::check_parcel_postcondition(N, buffers);
  flush_metrics(report);
  if (report_out != nullptr) *report_out = report;
  return buffers;
}

/// Runs the schedule over an arbitrary parcel multiset (the Alltoallv
/// generalization): initial[p] may hold any parcels with origin p.
/// Returns the final buffers; every parcel ends on its destination
/// (checked), with no constraint on counts.
template <typename T>
ParcelBuffers<T> exchange_parcels_custom(const SuhShinAape& algo, ParcelBuffers<T> buffers) {
  const Rank N = algo.shape().num_nodes();
  TOREX_REQUIRE(static_cast<Rank>(buffers.size()) == N, "need one buffer per node");
  std::int64_t total = 0;
  for (Rank p = 0; p < N; ++p) {
    for (const auto& parcel : buffers[static_cast<std::size_t>(p)]) {
      TOREX_REQUIRE(parcel.block.origin == p, "parcel origin must match its node");
      TOREX_REQUIRE(parcel.block.dest >= 0 && parcel.block.dest < N,
                    "parcel destination out of range");
      ++total;
    }
  }

  ParcelBuffers<T> inbox(static_cast<std::size_t>(N));
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    for (int step = 1; step <= algo.steps_in_phase(phase); ++step) {
      for (Rank p = 0; p < N; ++p) {
        auto& buf = buffers[static_cast<std::size_t>(p)];
        auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Parcel<T>& x) {
          return !algo.should_send(p, phase, step, x.block);
        });
        if (split == buf.end()) continue;
        const Rank q = algo.partner(p, phase, step);
        auto& in = inbox[static_cast<std::size_t>(q)];
        in.insert(in.end(), std::make_move_iterator(split),
                  std::make_move_iterator(buf.end()));
        buf.erase(split, buf.end());
      }
      for (Rank p = 0; p < N; ++p) {
        auto& in = inbox[static_cast<std::size_t>(p)];
        if (in.empty()) continue;
        auto& buf = buffers[static_cast<std::size_t>(p)];
        buf.insert(buf.end(), std::make_move_iterator(in.begin()),
                   std::make_move_iterator(in.end()));
        in.clear();
      }
    }
  }

  std::int64_t delivered = 0;
  for (Rank p = 0; p < N; ++p) {
    for (const auto& parcel : buffers[static_cast<std::size_t>(p)]) {
      TOREX_CHECK(parcel.block.dest == p, "parcel delivered to the wrong node");
      ++delivered;
    }
  }
  TOREX_CHECK(delivered == total, "parcels lost or duplicated");
  return buffers;
}

/// One-to-all personalized scatter: the root holds one payload per
/// node; after running the (same) schedule, node d holds payloads[d].
/// Returns the received payload per node (root keeps its own).
template <typename T>
std::vector<T> scatter_payloads(const SuhShinAape& algo, Rank root, std::vector<T> payloads) {
  const Rank N = algo.shape().num_nodes();
  TOREX_REQUIRE(root >= 0 && root < N, "root out of range");
  TOREX_REQUIRE(static_cast<Rank>(payloads.size()) == N, "need one payload per node");
  ParcelBuffers<T> parcels(static_cast<std::size_t>(N));
  for (Rank d = 0; d < N; ++d) {
    parcels[static_cast<std::size_t>(root)].push_back(
        {Block{root, d}, std::move(payloads[static_cast<std::size_t>(d)])});
  }
  auto delivered = exchange_parcels_custom(algo, std::move(parcels));
  std::vector<T> out(static_cast<std::size_t>(N));
  for (Rank d = 0; d < N; ++d) {
    auto& buf = delivered[static_cast<std::size_t>(d)];
    TOREX_CHECK(buf.size() == 1, "scatter must deliver exactly one payload per node");
    out[static_cast<std::size_t>(d)] = std::move(buf.front().payload);
  }
  return out;
}

/// All-to-one personalized gather: every node contributes one payload;
/// the root ends with all of them, indexed by origin.
template <typename T>
std::vector<T> gather_payloads(const SuhShinAape& algo, Rank root, std::vector<T> payloads) {
  const Rank N = algo.shape().num_nodes();
  TOREX_REQUIRE(root >= 0 && root < N, "root out of range");
  TOREX_REQUIRE(static_cast<Rank>(payloads.size()) == N, "need one payload per node");
  ParcelBuffers<T> parcels(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    parcels[static_cast<std::size_t>(p)].push_back(
        {Block{p, root}, std::move(payloads[static_cast<std::size_t>(p)])});
  }
  auto delivered = exchange_parcels_custom(algo, std::move(parcels));
  auto& buf = delivered[static_cast<std::size_t>(root)];
  TOREX_CHECK(static_cast<Rank>(buf.size()) == N, "gather must collect N payloads");
  std::vector<T> out(static_cast<std::size_t>(N));
  for (auto& parcel : buf) {
    out[static_cast<std::size_t>(parcel.block.origin)] = std::move(parcel.payload);
  }
  return out;
}

}  // namespace torex
