// Payload-carrying exchange: the bridge from schedule to application.
//
// The exchange engine moves block *identities*; applications move data.
// This header runs the same schedule over user payloads attached to
// blocks — each node starts with one payload per destination and ends
// with one payload per origin — so examples (matrix transpose, FFT)
// and downstream users exercise exactly the communication pattern the
// paper schedules, with their own element types.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <iterator>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/aape.hpp"
#include "core/block.hpp"
#include "core/data_array.hpp"
#include "core/integrity.hpp"
#include "core/wire_buffer.hpp"
#include "obs/recorder.hpp"
#include "util/assert.hpp"
#include "util/crc32.hpp"

namespace torex {

/// One payload in flight: its block identity plus user data.
template <typename T>
struct Parcel {
  Block block;
  T payload;
};

/// Per-node parcel buffers, indexed by rank.
template <typename T>
using ParcelBuffers = std::vector<std::vector<Parcel<T>>>;

/// Per-destination delivery state of one all-to-all: bit (dest, origin)
/// is set once `dest` durably holds the parcel `origin` addressed to
/// it. This is the unit of progress the exchange journal
/// (runtime/journal.hpp) persists and the delta-resume path consults to
/// re-send only what is missing and drop what is re-received.
class DeliveryBitmap {
 public:
  DeliveryBitmap() = default;
  explicit DeliveryBitmap(Rank num_nodes)
      : num_nodes_(num_nodes),
        words_(static_cast<std::size_t>(num_nodes) * words_per_row(num_nodes), 0) {
    TOREX_REQUIRE(num_nodes >= 1, "delivery bitmap needs at least one node");
  }

  Rank num_nodes() const { return num_nodes_; }

  bool test(Rank dest, Rank origin) const {
    check_pair(dest, origin);
    return (words_[word_index(dest, origin)] >> bit_index(origin)) & 1u;
  }

  /// Sets bit (dest, origin); returns true when it was newly set.
  bool mark(Rank dest, Rank origin) {
    check_pair(dest, origin);
    std::uint64_t& word = words_[word_index(dest, origin)];
    const std::uint64_t bit = std::uint64_t{1} << bit_index(origin);
    if ((word & bit) != 0) return false;
    word |= bit;
    ++delivered_;
    return true;
  }

  /// Parcels marked delivered so far (out of expected()).
  std::int64_t delivered() const { return delivered_; }

  /// Total parcels of the exchange: one per ordered (origin, dest)
  /// pair, self pairs included.
  std::int64_t expected() const {
    return static_cast<std::int64_t>(num_nodes_) * num_nodes_;
  }

  bool complete() const { return delivered_ == expected(); }

  /// Delivered count for one destination's row.
  std::int64_t delivered_to(Rank dest) const {
    TOREX_REQUIRE(dest >= 0 && dest < num_nodes_, "destination out of range");
    std::int64_t count = 0;
    for (Rank origin = 0; origin < num_nodes_; ++origin) {
      if (test(dest, origin)) ++count;
    }
    return count;
  }

 private:
  static std::size_t words_per_row(Rank num_nodes) {
    return (static_cast<std::size_t>(num_nodes) + 63) / 64;
  }
  std::size_t word_index(Rank dest, Rank origin) const {
    return static_cast<std::size_t>(dest) * words_per_row(num_nodes_) +
           static_cast<std::size_t>(origin) / 64;
  }
  static unsigned bit_index(Rank origin) { return static_cast<unsigned>(origin) % 64; }
  void check_pair(Rank dest, Rank origin) const {
    TOREX_REQUIRE(dest >= 0 && dest < num_nodes_ && origin >= 0 && origin < num_nodes_,
                  "delivery bitmap pair out of range");
  }

  Rank num_nodes_ = 0;
  std::int64_t delivered_ = 0;
  std::vector<std::uint64_t> words_;
};

namespace detail {

/// Validates the canonical all-to-all seed: one buffer per node, one
/// parcel per destination, every parcel originating at its node.
template <typename T>
void require_canonical_parcel_seed(Rank N, const ParcelBuffers<T>& buffers) {
  TOREX_REQUIRE(static_cast<Rank>(buffers.size()) == N, "need one buffer per node");
  std::vector<char> seen(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    TOREX_REQUIRE(static_cast<Rank>(buffers[static_cast<std::size_t>(p)].size()) == N,
                  "node must start with one parcel per destination");
    std::fill(seen.begin(), seen.end(), 0);
    for (const auto& parcel : buffers[static_cast<std::size_t>(p)]) {
      TOREX_REQUIRE(parcel.block.origin == p, "parcel origin must match its node");
      TOREX_REQUIRE(parcel.block.dest >= 0 && parcel.block.dest < N,
                    "parcel destination out of range");
      TOREX_REQUIRE(!seen[static_cast<std::size_t>(parcel.block.dest)],
                    "duplicate destination in a node's initial parcels");
      seen[static_cast<std::size_t>(parcel.block.dest)] = 1;
    }
  }
}

/// Verifies the AAPE postcondition on delivered parcels: node p holds
/// exactly one parcel from every origin, all addressed to p.
template <typename T>
void check_parcel_postcondition(Rank N, const ParcelBuffers<T>& buffers) {
  std::vector<char> seen(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    const auto& buf = buffers[static_cast<std::size_t>(p)];
    TOREX_CHECK(static_cast<Rank>(buf.size()) == N, "payload exchange lost parcels");
    std::fill(seen.begin(), seen.end(), 0);
    for (const auto& parcel : buf) {
      TOREX_CHECK(parcel.block.dest == p, "payload delivered to the wrong node");
      TOREX_CHECK(!seen[static_cast<std::size_t>(parcel.block.origin)], "duplicate origin");
      seen[static_cast<std::size_t>(parcel.block.origin)] = 1;
    }
  }
}

}  // namespace detail

/// Runs the full schedule over `initial` parcels. Requirements:
/// initial[p] holds exactly one parcel per destination, each with
/// block.origin == p. Returns the final buffers: node p ends with one
/// parcel from every origin, all with block.dest == p. Throws on any
/// violation.
template <typename T>
ParcelBuffers<T> exchange_payloads(const SuhShinAape& algo, ParcelBuffers<T> buffers,
                                   Recorder* obs = nullptr) {
  const Rank N = algo.shape().num_nodes();
  detail::require_canonical_parcel_seed(N, buffers);
  if (obs != nullptr && !obs->enabled()) obs = nullptr;
  SpanGuard exchange_span(obs, "exchange");

  ParcelBuffers<T> inbox(static_cast<std::size_t>(N));
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    SpanGuard phase_span(obs, "phase", -1, phase);
    for (int step = 1; step <= algo.steps_in_phase(phase); ++step) {
      SpanGuard step_span(obs, "step", -1, phase, step);
      for (Rank p = 0; p < N; ++p) {
        auto& buf = buffers[static_cast<std::size_t>(p)];
        auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Parcel<T>& x) {
          return !algo.should_send(p, phase, step, x.block);
        });
        if (split == buf.end()) continue;
        const Rank q = algo.partner(p, phase, step);
        auto& in = inbox[static_cast<std::size_t>(q)];
        in.insert(in.end(), std::make_move_iterator(split),
                  std::make_move_iterator(buf.end()));
        buf.erase(split, buf.end());
      }
      for (Rank p = 0; p < N; ++p) {
        auto& in = inbox[static_cast<std::size_t>(p)];
        if (in.empty()) continue;
        auto& buf = buffers[static_cast<std::size_t>(p)];
        buf.insert(buf.end(), std::make_move_iterator(in.begin()),
                   std::make_move_iterator(in.end()));
        in.clear();
      }
    }
  }

  detail::check_parcel_postcondition(N, buffers);
  return buffers;
}

// --- Sealed exchange ---------------------------------------------------
//
// The self-checking variant of exchange_payloads: every message is
// serialized to wire bytes with per-parcel seals (origin, dest, phase,
// step, CRC-32 over header + payload) plus a checksummed message
// header, optionally tampered with in flight (ParcelTamperer), and
// verified by the receiver before integration. Detection triggers a
// bounded retransmit; exhaustion raises IntegrityError. Restricted to
// trivially copyable payloads because sealing hashes the payload's
// object representation.

namespace detail {

inline constexpr std::uint32_t kSealedMagic = 0x544F5831u;  // "TOX1"

/// Seal digest of one parcel: binds payload bytes to the parcel's
/// identity and the schedule step it was transmitted in.
inline std::uint32_t parcel_seal(Rank origin, Rank dest, int phase, int step,
                                 const void* payload, std::size_t payload_len) {
  Crc32 crc;
  crc.update_value(static_cast<std::int64_t>(origin));
  crc.update_value(static_cast<std::int64_t>(dest));
  crc.update_value(static_cast<std::int32_t>(phase));
  crc.update_value(static_cast<std::int32_t>(step));
  crc.update(payload, payload_len);
  return crc.value();
}

}  // namespace detail

/// Serializes one step's message (all parcels `src` ships to `dst` in
/// (phase, step)) into sealed wire bytes.
template <typename T>
std::vector<std::byte> encode_sealed_message(const std::vector<Parcel<T>>& parcels, int phase,
                                             int step, Rank src, Rank dst) {
  static_assert(std::is_trivially_copyable_v<T>,
                "sealed exchange requires trivially copyable payloads");
  TOREX_REQUIRE(phase >= 0 && step >= 0 && src >= 0 && dst >= 0,
                "sealed message metadata must be non-negative");
  std::vector<std::byte> wire;
  wire.reserve(40 + parcels.size() * (28 + sizeof(T)));
  wire_put_u32(wire, detail::kSealedMagic);
  wire_put_u32(wire, static_cast<std::uint32_t>(phase));
  wire_put_u32(wire, static_cast<std::uint32_t>(step));
  wire_put_u64(wire, static_cast<std::uint64_t>(static_cast<std::int64_t>(src)));
  wire_put_u64(wire, static_cast<std::uint64_t>(static_cast<std::int64_t>(dst)));
  wire_put_u64(wire, static_cast<std::uint64_t>(parcels.size()));
  wire_put_u32(wire, crc32(wire.data(), wire.size()));
  for (const auto& parcel : parcels) {
    wire_put_u64(wire, static_cast<std::uint64_t>(static_cast<std::int64_t>(parcel.block.origin)));
    wire_put_u64(wire, static_cast<std::uint64_t>(static_cast<std::int64_t>(parcel.block.dest)));
    wire_put_u64(wire, static_cast<std::uint64_t>(sizeof(T)));
    const std::size_t at = wire.size();
    wire.resize(at + sizeof(T));
    std::memcpy(wire.data() + at, &parcel.payload, sizeof(T));
    wire_put_u32(wire, detail::parcel_seal(parcel.block.origin, parcel.block.dest, phase, step,
                                           wire.data() + at, sizeof(T)));
  }
  return wire;
}

/// Verifies and deserializes a sealed message. Returns false (with
/// `reason` filled when non-null) on any integrity violation: short or
/// oversized buffer, bad magic, header/seal checksum mismatch, metadata
/// that does not match the expected (phase, step, src, dst), or parcel
/// identities out of range. On success `out` holds the parcels.
template <typename T>
bool decode_sealed_message(const std::vector<std::byte>& wire, int phase, int step, Rank src,
                           Rank dst, Rank num_nodes, std::vector<Parcel<T>>& out,
                           std::string* reason = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>,
                "sealed exchange requires trivially copyable payloads");
  out.clear();
  auto fail = [&](const char* what) {
    if (reason != nullptr) *reason = what;
    out.clear();
    return false;
  };
  if (phase < 0 || step < 0 || src < 0 || dst < 0) return fail("negative message metadata");
  std::size_t offset = 0;
  std::uint32_t magic = 0, wire_phase = 0, wire_step = 0, header_crc = 0;
  std::uint64_t wire_src = 0, wire_dst = 0, count = 0;
  if (!wire_get_u32(wire, offset, magic) || !wire_get_u32(wire, offset, wire_phase) ||
      !wire_get_u32(wire, offset, wire_step) || !wire_get_u64(wire, offset, wire_src) ||
      !wire_get_u64(wire, offset, wire_dst) || !wire_get_u64(wire, offset, count)) {
    return fail("truncated message header");
  }
  const std::size_t header_len = offset;
  if (!wire_get_u32(wire, offset, header_crc)) return fail("truncated message header");
  if (header_crc != crc32(wire.data(), header_len)) return fail("header checksum mismatch");
  if (magic != detail::kSealedMagic) return fail("bad magic");
  if (wire_phase != static_cast<std::uint32_t>(phase) ||
      wire_step != static_cast<std::uint32_t>(step)) {
    return fail("message sealed for a different step");
  }
  if (wire_src != static_cast<std::uint64_t>(static_cast<std::int64_t>(src)) ||
      wire_dst != static_cast<std::uint64_t>(static_cast<std::int64_t>(dst))) {
    return fail("message sealed for a different channel");
  }
  // Never trust the wire's count: bound it by the bytes actually
  // present (each parcel record is at least its 28-byte header plus
  // the payload) before the parse loop, and size `out` only after the
  // bound holds, so a forged count cannot drive the loop or the
  // allocator beyond the message.
  constexpr std::uint64_t kParcelWireBytes = 28 + sizeof(T);
  if (count > (wire.size() - offset) / kParcelWireBytes) {
    return fail("parcel count exceeds message size");
  }
  out.reserve(count);
  const std::uint64_t N = static_cast<std::uint64_t>(num_nodes);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t origin = 0, dest = 0, payload_len = 0;
    if (!wire_get_u64(wire, offset, origin) || !wire_get_u64(wire, offset, dest) ||
        !wire_get_u64(wire, offset, payload_len)) {
      return fail("truncated parcel header");
    }
    if (origin >= N || dest >= N) return fail("parcel identity out of range");
    if (payload_len != sizeof(T)) return fail("parcel payload length mismatch");
    if (wire.size() < offset + sizeof(T)) return fail("truncated parcel payload");
    const std::byte* payload_at = wire.data() + offset;
    offset += sizeof(T);
    std::uint32_t seal = 0;
    if (!wire_get_u32(wire, offset, seal)) return fail("truncated parcel seal");
    const Rank parcel_origin = static_cast<Rank>(origin);
    const Rank parcel_dest = static_cast<Rank>(dest);
    if (seal != detail::parcel_seal(parcel_origin, parcel_dest, phase, step, payload_at,
                                    sizeof(T))) {
      return fail("parcel seal mismatch");
    }
    Parcel<T> parcel;
    parcel.block = Block{parcel_origin, parcel_dest};
    std::memcpy(&parcel.payload, payload_at, sizeof(T));
    out.push_back(std::move(parcel));
  }
  if (offset != wire.size()) return fail("trailing bytes after last parcel");
  return true;
}

// --- Batched wire frames (the pooled zero-copy encoding) ---------------
//
// The per-parcel format above seals each parcel separately: flexible,
// but every message costs one allocation plus a resize+memcpy per
// parcel. The frame format instead ships one 48-byte header followed
// by the raw contiguous run of Parcel<T> object representations and a
// trailing CRC over the whole frame — so a §3.3-contiguous send is a
// single memcpy in, and verification + integration read the run in
// place through a non-owning view. Both CRCs (header, frame) must
// match and the byte count must be exact, so any bit flip or
// truncation anywhere in the frame is detected, same as the
// per-parcel seals.
//
// Frame layout (little-endian):
//   [ 0) magic u32  "TOX2"
//   [ 4) phase u32        [ 8) step u32
//   [12) src u64          [20) dst u64
//   [28) count u64        [36) parcel_size u64
//   [44) header crc u32 over bytes [0, 44)
//   [48) count * parcel_size raw parcel bytes
//   [..) frame crc u32 over bytes [0, 48 + run)

namespace detail {

inline constexpr std::uint32_t kFrameMagic = 0x544F5832u;  // "TOX2"
inline constexpr std::size_t kFrameHeaderBytes = 48;
inline constexpr std::size_t kFrameTrailerBytes = 4;

/// Starts a frame: clears `frame` and reserves the header slot (the
/// header is patched by frame_finish once the parcel count is known,
/// so gather loops can append runs without a counting pre-pass).
inline void frame_begin(std::vector<std::byte>& frame, std::size_t parcel_bytes_hint = 0) {
  frame.clear();
  frame.reserve(kFrameHeaderBytes + parcel_bytes_hint + kFrameTrailerBytes);
  frame.resize(kFrameHeaderBytes);
}

/// Appends one contiguous run of parcels to a begun frame (a single
/// memcpy of the run's object representation). Returns the run's size
/// in bytes.
template <typename T>
std::size_t frame_append_run(std::vector<std::byte>& frame, const Parcel<T>* run,
                             std::size_t count) {
  static_assert(std::is_trivially_copyable_v<Parcel<T>>,
                "framed exchange requires trivially copyable parcels");
  const std::size_t bytes = count * sizeof(Parcel<T>);
  if (bytes == 0) return 0;
  const std::size_t at = frame.size();
  frame.resize(at + bytes);
  std::memcpy(frame.data() + at, run, bytes);
  return bytes;
}

/// Patches the header and appends the trailing frame CRC. `count` must
/// equal the parcels appended since frame_begin.
template <typename T>
void frame_finish(std::vector<std::byte>& frame, std::size_t count, int phase, int step,
                  Rank src, Rank dst) {
  TOREX_REQUIRE(phase >= 0 && step >= 0 && src >= 0 && dst >= 0,
                "sealed message metadata must be non-negative");
  TOREX_CHECK(frame.size() == kFrameHeaderBytes + count * sizeof(Parcel<T>),
              "frame run bytes disagree with parcel count");
  std::byte* h = frame.data();
  wire_write_u32(h + 0, kFrameMagic);
  wire_write_u32(h + 4, static_cast<std::uint32_t>(phase));
  wire_write_u32(h + 8, static_cast<std::uint32_t>(step));
  wire_write_u64(h + 12, static_cast<std::uint64_t>(static_cast<std::int64_t>(src)));
  wire_write_u64(h + 20, static_cast<std::uint64_t>(static_cast<std::int64_t>(dst)));
  wire_write_u64(h + 28, static_cast<std::uint64_t>(count));
  wire_write_u64(h + 36, static_cast<std::uint64_t>(sizeof(Parcel<T>)));
  wire_write_u32(h + 44, crc32(frame.data(), 44));
  const std::uint32_t frame_crc = crc32(frame.data(), frame.size());
  const std::size_t at = frame.size();
  frame.resize(at + kFrameTrailerBytes);
  wire_write_u32(frame.data() + at, frame_crc);
}

/// Adds a wire-stats delta to the recorder's metric counters.
inline void publish_wire_metrics(Recorder* obs, const WirePoolStats& d) {
  if (obs == nullptr) return;
  MetricsRegistry& m = obs->metrics();
  m.counter("wire.messages").add(d.messages);
  m.counter("wire.parcels").add(d.parcels);
  m.counter("wire.pool_hits").add(d.pool_hits);
  m.counter("wire.pool_misses").add(d.pool_misses);
  m.counter("wire.bytes_encoded").add(d.bytes_encoded);
  m.counter("wire.bytes_copied").add(d.bytes_copied);
  m.counter("wire.contiguous_sends").add(d.contiguous_sends);
  m.counter("wire.gathered_parcels").add(d.gathered_parcels);
}

}  // namespace detail

/// Encodes one message (a single contiguous run) as a sealed frame.
template <typename T>
void encode_sealed_frame(const Parcel<T>* run, std::size_t count, int phase, int step, Rank src,
                         Rank dst, std::vector<std::byte>& frame) {
  detail::frame_begin(frame, count * sizeof(Parcel<T>));
  detail::frame_append_run(frame, run, count);
  detail::frame_finish<T>(frame, count, phase, step, src, dst);
}

/// Non-owning typed view over a verified frame's parcel run. Reads go
/// through memcpy so the run may live at any alignment inside the
/// frame bytes.
template <typename T>
class SealedFrameView {
 public:
  SealedFrameView() = default;
  SealedFrameView(const std::byte* run, std::size_t count) : run_(run), count_(count) {}

  std::size_t count() const { return count_; }
  const std::byte* run_bytes() const { return run_; }
  std::size_t run_size() const { return count_ * sizeof(Parcel<T>); }

  Block identity(std::size_t i) const {
    Block b;
    std::memcpy(&b, run_ + i * sizeof(Parcel<T>), sizeof(Block));
    return b;
  }

  Parcel<T> parcel(std::size_t i) const {
    Parcel<T> p;
    std::memcpy(&p, run_ + i * sizeof(Parcel<T>), sizeof(Parcel<T>));
    return p;
  }

  /// Appends the whole run to `out`: one grow plus one memcpy — the
  /// zero-copy integrate (no per-parcel materialization).
  void append_to(std::vector<Parcel<T>>& out) const {
    const std::size_t old = out.size();
    out.resize(old + count_);
    std::memcpy(out.data() + old, run_, run_size());
  }

 private:
  const std::byte* run_ = nullptr;
  std::size_t count_ = 0;
};

/// Verifies a sealed frame in place. On success `out` views the parcel
/// run inside `wire` (which must outlive the view); on failure returns
/// false with `reason` filled when non-null. Detects exactly the same
/// corruption classes as decode_sealed_message: truncation, bit flips
/// anywhere, wrong (phase, step) or channel, forged counts, and
/// identities out of range.
template <typename T>
bool decode_sealed_frame(WireView wire, int phase, int step, Rank src, Rank dst, Rank num_nodes,
                         SealedFrameView<T>& out, std::string* reason = nullptr) {
  static_assert(std::is_trivially_copyable_v<Parcel<T>>,
                "framed exchange requires trivially copyable parcels");
  out = SealedFrameView<T>();
  auto fail = [&](const char* what) {
    if (reason != nullptr) *reason = what;
    return false;
  };
  if (phase < 0 || step < 0 || src < 0 || dst < 0) return fail("negative message metadata");
  if (wire.size() < detail::kFrameHeaderBytes + detail::kFrameTrailerBytes) {
    return fail("truncated message header");
  }
  std::size_t offset = 0;
  std::uint32_t magic = 0, wire_phase = 0, wire_step = 0, header_crc = 0;
  std::uint64_t wire_src = 0, wire_dst = 0, count = 0, parcel_size = 0;
  wire_get_u32(wire, offset, magic);
  wire_get_u32(wire, offset, wire_phase);
  wire_get_u32(wire, offset, wire_step);
  wire_get_u64(wire, offset, wire_src);
  wire_get_u64(wire, offset, wire_dst);
  wire_get_u64(wire, offset, count);
  wire_get_u64(wire, offset, parcel_size);
  const std::size_t header_len = offset;
  wire_get_u32(wire, offset, header_crc);
  if (header_crc != crc32(wire.data(), header_len)) return fail("header checksum mismatch");
  if (magic != detail::kFrameMagic) return fail("bad magic");
  if (wire_phase != static_cast<std::uint32_t>(phase) ||
      wire_step != static_cast<std::uint32_t>(step)) {
    return fail("message sealed for a different step");
  }
  if (wire_src != static_cast<std::uint64_t>(static_cast<std::int64_t>(src)) ||
      wire_dst != static_cast<std::uint64_t>(static_cast<std::int64_t>(dst))) {
    return fail("message sealed for a different channel");
  }
  if (parcel_size != sizeof(Parcel<T>)) return fail("parcel record size mismatch");
  // Bound the wire's count by the bytes present before trusting it.
  const std::size_t avail =
      wire.size() - detail::kFrameHeaderBytes - detail::kFrameTrailerBytes;
  if (count > avail / sizeof(Parcel<T>)) return fail("parcel count exceeds message size");
  if (count * sizeof(Parcel<T>) != avail) return fail("frame size mismatch");
  const std::size_t run_end = detail::kFrameHeaderBytes + avail;
  std::uint32_t frame_crc = 0;
  std::size_t trailer_at = run_end;
  wire_get_u32(wire, trailer_at, frame_crc);
  if (frame_crc != crc32(wire.data(), run_end)) return fail("frame checksum mismatch");
  SealedFrameView<T> view(wire.data() + detail::kFrameHeaderBytes,
                          static_cast<std::size_t>(count));
  const Rank N = num_nodes;
  for (std::size_t i = 0; i < view.count(); ++i) {
    const Block b = view.identity(i);
    if (b.origin < 0 || b.origin >= N || b.dest < 0 || b.dest >= N) {
      return fail("parcel identity out of range");
    }
  }
  out = view;
  return true;
}

/// exchange_payloads with end-to-end integrity: every message crosses
/// the (simulated) wire sealed, may be tampered with by `tamperer`, and
/// is verified at integrate time. A rejected delivery is retransmitted
/// up to options.max_retransmits times — each retransmission costs one
/// fault tick, so transient corruption windows heal under retry — and
/// an exhausted budget raises IntegrityError carrying the report.
/// `report_out`, when non-null, receives the report even on throw.
template <typename T>
ParcelBuffers<T> exchange_payloads_sealed(const SuhShinAape& algo, ParcelBuffers<T> buffers,
                                          const ParcelTamperer& tamperer = {},
                                          const IntegrityOptions& options = {},
                                          IntegrityReport* report_out = nullptr,
                                          Recorder* obs = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>,
                "sealed exchange requires trivially copyable payloads");
  const Rank N = algo.shape().num_nodes();
  detail::require_canonical_parcel_seed(N, buffers);
  TOREX_REQUIRE(options.max_retransmits >= 0, "retransmit budget must be non-negative");
  if (obs != nullptr && !obs->enabled()) obs = nullptr;
  SpanGuard exchange_span(obs, "exchange_sealed");
  const auto flush_metrics = [&](const IntegrityReport& r) {
    if (obs == nullptr) return;
    MetricsRegistry& m = obs->metrics();
    m.counter("integrity.messages").add(r.messages);
    m.counter("integrity.parcels").add(r.parcels);
    m.counter("integrity.retransmits").add(r.retransmits);
    m.counter("integrity.corrupted").add(r.corrupted);
  };

  IntegrityReport report;
  std::int64_t tick = options.base_tick;
  WireArena local_arena;
  WireArena& arena = options.arena != nullptr ? *options.arena : local_arena;
  const WirePoolStats stats_before = arena.stats();
  const bool pooled = options.wire_path == WirePath::kPooled;
  const auto publish_wire = [&] {
    detail::publish_wire_metrics(obs, wire_stats_delta(arena.stats(), stats_before));
  };
  ParcelBuffers<T> inbox(static_cast<std::size_t>(N));
  std::vector<Parcel<T>> received;  // per-parcel path scratch
  PooledFrame frame;                // pooled path scratch, rebound per attempt
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    SpanGuard phase_span(obs, "phase", -1, phase);
    const int hops = algo.hops_per_step(phase);
    for (int step = 1; step <= algo.steps_in_phase(phase); ++step) {
      SpanGuard step_span(obs, "step", -1, phase, step);
      // Retransmissions across node pairs overlap in time; the step
      // consumes 1 + (worst retransmit count) ticks.
      std::int64_t extra_ticks = 0;
      for (Rank p = 0; p < N; ++p) {
        auto& buf = buffers[static_cast<std::size_t>(p)];
        auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Parcel<T>& x) {
          return !algo.should_send(p, phase, step, x.block);
        });
        if (split == buf.end()) continue;
        const std::size_t send_count = static_cast<std::size_t>(buf.end() - split);
        const std::size_t run_bytes = send_count * sizeof(Parcel<T>);
        const Rank q = algo.partner(p, phase, step);
        const Direction dir = algo.direction(p, phase, step);
        // The pooled path encodes straight from the buffer tail (the
        // partition made it one contiguous run) and erases it only
        // after delivery; the per-parcel path materializes the
        // outgoing message as before.
        std::vector<Parcel<T>> outgoing;
        if (!pooled) {
          outgoing.assign(std::make_move_iterator(split), std::make_move_iterator(buf.end()));
          buf.erase(split, buf.end());
        }
        for (int attempt = 0;; ++attempt) {
          TransferContext ctx;
          ctx.phase = phase;
          ctx.step = step;
          ctx.src = p;
          ctx.dst = q;
          ctx.direction = dir;
          ctx.hops = hops;
          ctx.tick = tick + attempt;
          ctx.attempt = attempt;
          std::string reason;
          bool delivered = false;
          std::int64_t delivered_parcels = 0;
          if (pooled) {
            frame.bind(arena, detail::kFrameHeaderBytes + run_bytes + detail::kFrameTrailerBytes);
            encode_sealed_frame(&*split, send_count, phase, step, p, q, frame.bytes());
            arena.stats().note_message(static_cast<std::int64_t>(send_count), 1);
            arena.stats().bytes_encoded += static_cast<std::int64_t>(frame.bytes().size());
            arena.stats().bytes_copied += static_cast<std::int64_t>(run_bytes);
            if (tamperer) tamperer(ctx, frame.bytes());
            SealedFrameView<T> view;
            if (decode_sealed_frame<T>(frame.view(), phase, step, p, q, N, view, &reason)) {
              view.append_to(inbox[static_cast<std::size_t>(q)]);
              arena.stats().bytes_copied += static_cast<std::int64_t>(view.run_size());
              delivered = true;
              delivered_parcels = static_cast<std::int64_t>(view.count());
            }
          } else {
            auto wire = encode_sealed_message(outgoing, phase, step, p, q);
            arena.stats().note_message(static_cast<std::int64_t>(outgoing.size()), 1);
            arena.stats().bytes_encoded += static_cast<std::int64_t>(wire.size());
            // Encode copies each payload; decode materializes every
            // parcel; the inbox insert copies them again.
            arena.stats().bytes_copied += static_cast<std::int64_t>(outgoing.size() * sizeof(T));
            if (tamperer) tamperer(ctx, wire);
            if (decode_sealed_message<T>(wire, phase, step, p, q, N, received, &reason)) {
              auto& in = inbox[static_cast<std::size_t>(q)];
              in.insert(in.end(), std::make_move_iterator(received.begin()),
                        std::make_move_iterator(received.end()));
              arena.stats().bytes_copied +=
                  static_cast<std::int64_t>(2 * received.size() * sizeof(Parcel<T>));
              delivered = true;
              delivered_parcels = static_cast<std::int64_t>(received.size());
            }
          }
          if (delivered) {
            if (pooled) buf.erase(split, buf.end());
            ++report.messages;
            report.parcels += delivered_parcels;
            report.retransmits += attempt;
            if (obs != nullptr && attempt > 0) {
              obs->instant("retransmit_ok", q, phase, step, attempt);
            }
            extra_ticks = std::max<std::int64_t>(extra_ticks, attempt);
            break;
          }
          ++report.corrupted;
          if (obs != nullptr) obs->instant("corrupted", q, phase, step, attempt);
          IntegrityViolation violation;
          violation.phase = phase;
          violation.step = step;
          violation.src = p;
          violation.dst = q;
          violation.direction = dir;
          violation.hops = hops;
          violation.tick = ctx.tick;
          violation.attempt = attempt;
          violation.reason = std::move(reason);
          if (report.violations.size() < IntegrityReport::kMaxRecordedViolations) {
            report.violations.push_back(violation);
          }
          if (attempt == options.max_retransmits) {
            report.retransmits += attempt;
            report.fatal = violation;
            report.final_tick = ctx.tick;
            if (obs != nullptr) obs->instant("integrity_fatal", q, phase, step, attempt);
            flush_metrics(report);
            publish_wire();
            if (report_out != nullptr) *report_out = report;
            throw IntegrityError("integrity failure: " + violation.describe() +
                                     " (retransmit budget exhausted)",
                                 std::move(report));
          }
        }
      }
      for (Rank p = 0; p < N; ++p) {
        auto& in = inbox[static_cast<std::size_t>(p)];
        if (in.empty()) continue;
        auto& buf = buffers[static_cast<std::size_t>(p)];
        buf.insert(buf.end(), std::make_move_iterator(in.begin()),
                   std::make_move_iterator(in.end()));
        in.clear();
      }
      tick += 1 + extra_ticks;
    }
  }
  report.final_tick = tick;
  detail::check_parcel_postcondition(N, buffers);
  flush_metrics(report);
  publish_wire();
  if (report_out != nullptr) *report_out = report;
  return buffers;
}

// --- Pooled layout-faithful exchange -----------------------------------

/// Options for exchange_payloads_pooled.
struct WireExchangeOptions {
  /// Buffer ordering at phase boundaries: the paper's §3.3 keys
  /// (contiguous sends, single-memcpy frames) or the naive
  /// destination order (fragments sends into gathered runs — the
  /// arena's run accounting quantifies the difference).
  LayoutPolicy layout = LayoutPolicy::kPaper;
  /// Optional external frame pool; a private arena is used when null.
  WireArena* arena = nullptr;
  Recorder* obs = nullptr;
};

/// exchange_payloads over the zero-copy wire: buffers are kept in the
/// paper's §3.3 physical order (re-sorted once per phase boundary,
/// exactly like data_array's layout simulator), each step's send set
/// is gathered run-by-run into a pooled frame — one memcpy per run,
/// and under the paper layout in 2D that is one memcpy per message —
/// and receives are verified in place and spliced into the hole the
/// node's own send left. The arena records LayoutStats-style run
/// accounting, so the payload path reports the same contiguity
/// evidence as the block-level simulator. Steady state performs no
/// heap allocation on the wire: frames recycle through the arena.
template <typename T>
ParcelBuffers<T> exchange_payloads_pooled(const SuhShinAape& algo, ParcelBuffers<T> buffers,
                                          const WireExchangeOptions& options = {}) {
  static_assert(std::is_trivially_copyable_v<Parcel<T>>,
                "pooled exchange requires trivially copyable parcels");
  const TorusShape& shape = algo.shape();
  const Rank N = shape.num_nodes();
  detail::require_canonical_parcel_seed(N, buffers);
  Recorder* obs = options.obs;
  if (obs != nullptr && !obs->enabled()) obs = nullptr;
  WireArena local_arena;
  WireArena& arena = options.arena != nullptr ? *options.arena : local_arena;
  const WirePoolStats stats_before = arena.stats();
  SpanGuard exchange_span(obs, "exchange");

  // In-flight frames: one slot per destination, bound for the span of
  // a step and released back to the arena at integrate time.
  struct Pending {
    PooledFrame frame;
    Rank src = -1;
    std::size_t hole = 0;
    bool active = false;
  };
  std::vector<Pending> inbox(static_cast<std::size_t>(N));

  // Decorate-sort-undecorate scratch, reused across nodes and phases:
  // each layout key is computed once per parcel instead of once per
  // comparison, and the scratch reaches steady-state capacity after
  // the first pass — phase boundaries then allocate nothing beyond
  // stable_sort's own temporary.
  std::vector<std::pair<std::uint64_t, Parcel<T>>> keyed;

  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    SpanGuard phase_span(obs, "phase", -1, phase);
    // Phase-boundary rearrangement: one pass, same accounting as the
    // layout simulator (phase 1's initial order is counted as given).
    if (phase > 1) {
      ++arena.stats().rearrangement_passes;
      arena.stats().parcels_rearranged += N;
    }
    for (Rank p = 0; p < N; ++p) {
      auto& buf = buffers[static_cast<std::size_t>(p)];
      auto sort_by = [&](auto&& key_of) {
        keyed.clear();
        keyed.reserve(buf.size());
        for (const Parcel<T>& a : buf) keyed.emplace_back(key_of(a), a);
        std::stable_sort(keyed.begin(), keyed.end(),
                         [](const auto& x, const auto& y) { return x.first < y.first; });
        for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = keyed[i].second;
      };
      if (options.layout == LayoutPolicy::kNaiveDestinationOrder) {
        std::stable_sort(buf.begin(), buf.end(), [](const Parcel<T>& a, const Parcel<T>& b) {
          return a.block.dest < b.block.dest;
        });
      } else if (algo.phase_kind(phase) == PhaseKind::kScatter) {
        if (algo.steps_in_phase(phase) == 0) continue;
        const Direction dir = algo.direction(p, phase, 1);
        const Coord pc = shape.coord_of(p);
        sort_by([&](const Parcel<T>& a) {
          return static_cast<std::uint64_t>(layout::scatter_key(shape, pc, a.block, dir));
        });
      } else {
        sort_by([&](const Parcel<T>& a) {
          return static_cast<std::uint64_t>(
              layout::gray_rank(layout::difference_vector(algo, p, phase, a.block)));
        });
      }
    }

    for (int step = 1; step <= algo.steps_in_phase(phase); ++step) {
      SpanGuard step_span(obs, "step", -1, phase, step);
      // Send half: gather each node's send set run-by-run into a
      // pooled frame while compacting the buffer in place. A run is
      // flushed (one memcpy) before compaction can overwrite it.
      for (Rank p = 0; p < N; ++p) {
        auto& buf = buffers[static_cast<std::size_t>(p)];
        const Rank q = algo.partner(p, phase, step);
        Pending& out = inbox[static_cast<std::size_t>(q)];
        std::int64_t runs = 0;
        std::size_t count = 0;
        std::size_t hole = buf.size();
        std::size_t write = 0;
        std::size_t run_start = 0;
        bool in_run = false;
        auto flush_run = [&](std::size_t end) {
          if (!in_run) return;
          detail::frame_append_run(out.frame.bytes(), buf.data() + run_start, end - run_start);
          in_run = false;
        };
        for (std::size_t i = 0; i < buf.size(); ++i) {
          if (algo.should_send(p, phase, step, buf[i].block)) {
            if (!in_run) {
              if (count == 0) {
                TOREX_CHECK(!out.active, "one-port receive violation in pooled exchange");
                out.frame.bind(arena, detail::kFrameHeaderBytes +
                                          (buf.size() - i) * sizeof(Parcel<T>) +
                                          detail::kFrameTrailerBytes);
                detail::frame_begin(out.frame.bytes(),
                                    (buf.size() - i) * sizeof(Parcel<T>));
                hole = write;
              }
              ++runs;
              in_run = true;
              run_start = i;
            }
            ++count;
          } else {
            flush_run(i);
            buf[write++] = buf[i];
          }
        }
        flush_run(buf.size());
        if (count == 0) continue;
        buf.resize(write);
        detail::frame_finish<T>(out.frame.bytes(), count, phase, step, p, q);
        arena.stats().note_message(static_cast<std::int64_t>(count), runs);
        arena.stats().bytes_encoded += static_cast<std::int64_t>(out.frame.bytes().size());
        arena.stats().bytes_copied += static_cast<std::int64_t>(count * sizeof(Parcel<T>));
        out.src = p;
        out.hole = hole;
        out.active = true;
      }
      // Integrate half: verify each frame in place and splice its run
      // into the hole the node's own send left (append when the node
      // sent nothing), then return the frame to the arena.
      for (Rank p = 0; p < N; ++p) {
        Pending& in = inbox[static_cast<std::size_t>(p)];
        if (!in.active) continue;
        auto& buf = buffers[static_cast<std::size_t>(p)];
        SealedFrameView<T> view;
        std::string why;
        TOREX_CHECK(decode_sealed_frame<T>(in.frame.view(), phase, step, in.src, p, N, view, &why),
                    "pooled wire frame failed verification: " + why);
        const std::size_t at = std::min(in.hole, buf.size());
        buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(at), view.count(), Parcel<T>{});
        std::memcpy(buf.data() + at, view.run_bytes(), view.run_size());
        arena.stats().bytes_copied += static_cast<std::int64_t>(view.run_size());
        in.frame.reset();
        in.active = false;
      }
    }
  }

  detail::check_parcel_postcondition(N, buffers);
  detail::publish_wire_metrics(obs, wire_stats_delta(arena.stats(), stats_before));
  return buffers;
}

/// Runs the schedule over an arbitrary parcel multiset (the Alltoallv
/// generalization): initial[p] may hold any parcels with origin p.
/// Returns the final buffers; every parcel ends on its destination
/// (checked), with no constraint on counts.
template <typename T>
ParcelBuffers<T> exchange_parcels_custom(const SuhShinAape& algo, ParcelBuffers<T> buffers) {
  const Rank N = algo.shape().num_nodes();
  TOREX_REQUIRE(static_cast<Rank>(buffers.size()) == N, "need one buffer per node");
  std::int64_t total = 0;
  for (Rank p = 0; p < N; ++p) {
    for (const auto& parcel : buffers[static_cast<std::size_t>(p)]) {
      TOREX_REQUIRE(parcel.block.origin == p, "parcel origin must match its node");
      TOREX_REQUIRE(parcel.block.dest >= 0 && parcel.block.dest < N,
                    "parcel destination out of range");
      ++total;
    }
  }

  ParcelBuffers<T> inbox(static_cast<std::size_t>(N));
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    for (int step = 1; step <= algo.steps_in_phase(phase); ++step) {
      for (Rank p = 0; p < N; ++p) {
        auto& buf = buffers[static_cast<std::size_t>(p)];
        auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Parcel<T>& x) {
          return !algo.should_send(p, phase, step, x.block);
        });
        if (split == buf.end()) continue;
        const Rank q = algo.partner(p, phase, step);
        auto& in = inbox[static_cast<std::size_t>(q)];
        in.insert(in.end(), std::make_move_iterator(split),
                  std::make_move_iterator(buf.end()));
        buf.erase(split, buf.end());
      }
      for (Rank p = 0; p < N; ++p) {
        auto& in = inbox[static_cast<std::size_t>(p)];
        if (in.empty()) continue;
        auto& buf = buffers[static_cast<std::size_t>(p)];
        buf.insert(buf.end(), std::make_move_iterator(in.begin()),
                   std::make_move_iterator(in.end()));
        in.clear();
      }
    }
  }

  std::int64_t delivered = 0;
  for (Rank p = 0; p < N; ++p) {
    for (const auto& parcel : buffers[static_cast<std::size_t>(p)]) {
      TOREX_CHECK(parcel.block.dest == p, "parcel delivered to the wrong node");
      ++delivered;
    }
  }
  TOREX_CHECK(delivered == total, "parcels lost or duplicated");
  return buffers;
}

/// One-to-all personalized scatter: the root holds one payload per
/// node; after running the (same) schedule, node d holds payloads[d].
/// Returns the received payload per node (root keeps its own).
template <typename T>
std::vector<T> scatter_payloads(const SuhShinAape& algo, Rank root, std::vector<T> payloads) {
  const Rank N = algo.shape().num_nodes();
  TOREX_REQUIRE(root >= 0 && root < N, "root out of range");
  TOREX_REQUIRE(static_cast<Rank>(payloads.size()) == N, "need one payload per node");
  ParcelBuffers<T> parcels(static_cast<std::size_t>(N));
  for (Rank d = 0; d < N; ++d) {
    parcels[static_cast<std::size_t>(root)].push_back(
        {Block{root, d}, std::move(payloads[static_cast<std::size_t>(d)])});
  }
  auto delivered = exchange_parcels_custom(algo, std::move(parcels));
  std::vector<T> out(static_cast<std::size_t>(N));
  for (Rank d = 0; d < N; ++d) {
    auto& buf = delivered[static_cast<std::size_t>(d)];
    TOREX_CHECK(buf.size() == 1, "scatter must deliver exactly one payload per node");
    out[static_cast<std::size_t>(d)] = std::move(buf.front().payload);
  }
  return out;
}

/// All-to-one personalized gather: every node contributes one payload;
/// the root ends with all of them, indexed by origin.
template <typename T>
std::vector<T> gather_payloads(const SuhShinAape& algo, Rank root, std::vector<T> payloads) {
  const Rank N = algo.shape().num_nodes();
  TOREX_REQUIRE(root >= 0 && root < N, "root out of range");
  TOREX_REQUIRE(static_cast<Rank>(payloads.size()) == N, "need one payload per node");
  ParcelBuffers<T> parcels(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    parcels[static_cast<std::size_t>(p)].push_back(
        {Block{p, root}, std::move(payloads[static_cast<std::size_t>(p)])});
  }
  auto delivered = exchange_parcels_custom(algo, std::move(parcels));
  auto& buf = delivered[static_cast<std::size_t>(root)];
  TOREX_CHECK(static_cast<Rank>(buf.size()) == N, "gather must collect N payloads");
  std::vector<T> out(static_cast<std::size_t>(N));
  for (auto& parcel : buf) {
    out[static_cast<std::size_t>(parcel.block.origin)] = std::move(parcel.payload);
  }
  return out;
}

}  // namespace torex
