// Payload-carrying exchange: the bridge from schedule to application.
//
// The exchange engine moves block *identities*; applications move data.
// This header runs the same schedule over user payloads attached to
// blocks — each node starts with one payload per destination and ends
// with one payload per origin — so examples (matrix transpose, FFT)
// and downstream users exercise exactly the communication pattern the
// paper schedules, with their own element types.
#pragma once

#include <algorithm>
#include <iterator>
#include <utility>
#include <vector>

#include "core/aape.hpp"
#include "core/block.hpp"
#include "util/assert.hpp"

namespace torex {

/// One payload in flight: its block identity plus user data.
template <typename T>
struct Parcel {
  Block block;
  T payload;
};

/// Per-node parcel buffers, indexed by rank.
template <typename T>
using ParcelBuffers = std::vector<std::vector<Parcel<T>>>;

/// Runs the full schedule over `initial` parcels. Requirements:
/// initial[p] holds exactly one parcel per destination, each with
/// block.origin == p. Returns the final buffers: node p ends with one
/// parcel from every origin, all with block.dest == p. Throws on any
/// violation.
template <typename T>
ParcelBuffers<T> exchange_payloads(const SuhShinAape& algo, ParcelBuffers<T> buffers) {
  const Rank N = algo.shape().num_nodes();
  TOREX_REQUIRE(static_cast<Rank>(buffers.size()) == N, "need one buffer per node");
  for (Rank p = 0; p < N; ++p) {
    TOREX_REQUIRE(static_cast<Rank>(buffers[static_cast<std::size_t>(p)].size()) == N,
                  "node must start with one parcel per destination");
    for (const auto& parcel : buffers[static_cast<std::size_t>(p)]) {
      TOREX_REQUIRE(parcel.block.origin == p, "parcel origin must match its node");
    }
  }

  ParcelBuffers<T> inbox(static_cast<std::size_t>(N));
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    for (int step = 1; step <= algo.steps_in_phase(phase); ++step) {
      for (Rank p = 0; p < N; ++p) {
        auto& buf = buffers[static_cast<std::size_t>(p)];
        auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Parcel<T>& x) {
          return !algo.should_send(p, phase, step, x.block);
        });
        if (split == buf.end()) continue;
        const Rank q = algo.partner(p, phase, step);
        auto& in = inbox[static_cast<std::size_t>(q)];
        in.insert(in.end(), std::make_move_iterator(split),
                  std::make_move_iterator(buf.end()));
        buf.erase(split, buf.end());
      }
      for (Rank p = 0; p < N; ++p) {
        auto& in = inbox[static_cast<std::size_t>(p)];
        if (in.empty()) continue;
        auto& buf = buffers[static_cast<std::size_t>(p)];
        buf.insert(buf.end(), std::make_move_iterator(in.begin()),
                   std::make_move_iterator(in.end()));
        in.clear();
      }
    }
  }

  for (Rank p = 0; p < N; ++p) {
    const auto& buf = buffers[static_cast<std::size_t>(p)];
    TOREX_CHECK(static_cast<Rank>(buf.size()) == N, "payload exchange lost parcels");
    std::vector<char> seen(static_cast<std::size_t>(N), 0);
    for (const auto& parcel : buf) {
      TOREX_CHECK(parcel.block.dest == p, "payload delivered to the wrong node");
      TOREX_CHECK(!seen[static_cast<std::size_t>(parcel.block.origin)], "duplicate origin");
      seen[static_cast<std::size_t>(parcel.block.origin)] = 1;
    }
  }
  return buffers;
}

/// Runs the schedule over an arbitrary parcel multiset (the Alltoallv
/// generalization): initial[p] may hold any parcels with origin p.
/// Returns the final buffers; every parcel ends on its destination
/// (checked), with no constraint on counts.
template <typename T>
ParcelBuffers<T> exchange_parcels_custom(const SuhShinAape& algo, ParcelBuffers<T> buffers) {
  const Rank N = algo.shape().num_nodes();
  TOREX_REQUIRE(static_cast<Rank>(buffers.size()) == N, "need one buffer per node");
  std::int64_t total = 0;
  for (Rank p = 0; p < N; ++p) {
    for (const auto& parcel : buffers[static_cast<std::size_t>(p)]) {
      TOREX_REQUIRE(parcel.block.origin == p, "parcel origin must match its node");
      TOREX_REQUIRE(parcel.block.dest >= 0 && parcel.block.dest < N,
                    "parcel destination out of range");
      ++total;
    }
  }

  ParcelBuffers<T> inbox(static_cast<std::size_t>(N));
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    for (int step = 1; step <= algo.steps_in_phase(phase); ++step) {
      for (Rank p = 0; p < N; ++p) {
        auto& buf = buffers[static_cast<std::size_t>(p)];
        auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Parcel<T>& x) {
          return !algo.should_send(p, phase, step, x.block);
        });
        if (split == buf.end()) continue;
        const Rank q = algo.partner(p, phase, step);
        auto& in = inbox[static_cast<std::size_t>(q)];
        in.insert(in.end(), std::make_move_iterator(split),
                  std::make_move_iterator(buf.end()));
        buf.erase(split, buf.end());
      }
      for (Rank p = 0; p < N; ++p) {
        auto& in = inbox[static_cast<std::size_t>(p)];
        if (in.empty()) continue;
        auto& buf = buffers[static_cast<std::size_t>(p)];
        buf.insert(buf.end(), std::make_move_iterator(in.begin()),
                   std::make_move_iterator(in.end()));
        in.clear();
      }
    }
  }

  std::int64_t delivered = 0;
  for (Rank p = 0; p < N; ++p) {
    for (const auto& parcel : buffers[static_cast<std::size_t>(p)]) {
      TOREX_CHECK(parcel.block.dest == p, "parcel delivered to the wrong node");
      ++delivered;
    }
  }
  TOREX_CHECK(delivered == total, "parcels lost or duplicated");
  return buffers;
}

/// One-to-all personalized scatter: the root holds one payload per
/// node; after running the (same) schedule, node d holds payloads[d].
/// Returns the received payload per node (root keeps its own).
template <typename T>
std::vector<T> scatter_payloads(const SuhShinAape& algo, Rank root, std::vector<T> payloads) {
  const Rank N = algo.shape().num_nodes();
  TOREX_REQUIRE(root >= 0 && root < N, "root out of range");
  TOREX_REQUIRE(static_cast<Rank>(payloads.size()) == N, "need one payload per node");
  ParcelBuffers<T> parcels(static_cast<std::size_t>(N));
  for (Rank d = 0; d < N; ++d) {
    parcels[static_cast<std::size_t>(root)].push_back(
        {Block{root, d}, std::move(payloads[static_cast<std::size_t>(d)])});
  }
  auto delivered = exchange_parcels_custom(algo, std::move(parcels));
  std::vector<T> out(static_cast<std::size_t>(N));
  for (Rank d = 0; d < N; ++d) {
    auto& buf = delivered[static_cast<std::size_t>(d)];
    TOREX_CHECK(buf.size() == 1, "scatter must deliver exactly one payload per node");
    out[static_cast<std::size_t>(d)] = std::move(buf.front().payload);
  }
  return out;
}

/// All-to-one personalized gather: every node contributes one payload;
/// the root ends with all of them, indexed by origin.
template <typename T>
std::vector<T> gather_payloads(const SuhShinAape& algo, Rank root, std::vector<T> payloads) {
  const Rank N = algo.shape().num_nodes();
  TOREX_REQUIRE(root >= 0 && root < N, "root out of range");
  TOREX_REQUIRE(static_cast<Rank>(payloads.size()) == N, "need one payload per node");
  ParcelBuffers<T> parcels(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    parcels[static_cast<std::size_t>(p)].push_back(
        {Block{p, root}, std::move(payloads[static_cast<std::size_t>(p)])});
  }
  auto delivered = exchange_parcels_custom(algo, std::move(parcels));
  auto& buf = delivered[static_cast<std::size_t>(root)];
  TOREX_CHECK(static_cast<Rank>(buf.size()) == N, "gather must collect N payloads");
  std::vector<T> out(static_cast<std::size_t>(N));
  for (auto& parcel : buf) {
    out[static_cast<std::size_t>(parcel.block.origin)] = std::move(parcel.payload);
  }
  return out;
}

}  // namespace torex
