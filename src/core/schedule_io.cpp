#include "core/schedule_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace torex {

namespace {

const char* kind_name(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::kScatter: return "scatter";
    case PhaseKind::kQuarterExchange: return "quarter";
    case PhaseKind::kPairExchange: return "pair";
  }
  TOREX_UNREACHABLE();
}

PhaseKind kind_from(const std::string& name) {
  if (name == "scatter") return PhaseKind::kScatter;
  if (name == "quarter") return PhaseKind::kQuarterExchange;
  if (name == "pair") return PhaseKind::kPairExchange;
  throw std::invalid_argument("unknown phase kind: " + name);
}

std::string dir_token(const Direction& d) {
  std::string out(1, d.sign == Sign::kPositive ? '+' : '-');
  out += std::to_string(d.dim);
  return out;
}

/// Strict integer parse: the whole token must be a number that fits an
/// int. Raises std::invalid_argument (never std::out_of_range, never a
/// silent truncation) so malformed input fails loudly and uniformly.
int parse_int(const std::string& token, const char* what) {
  std::size_t consumed = 0;
  int value = 0;
  try {
    value = std::stoi(token, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("malformed ") + what + ": '" + token + "'");
  }
  TOREX_REQUIRE(consumed == token.size(),
                std::string("trailing characters in ") + what + ": '" + token + "'");
  return value;
}

Direction dir_from(const std::string& token, int num_dims) {
  TOREX_REQUIRE(token.size() >= 2 && (token[0] == '+' || token[0] == '-'),
                "malformed direction token: " + token);
  Direction d;
  d.sign = token[0] == '+' ? Sign::kPositive : Sign::kNegative;
  d.dim = parse_int(token.substr(1), "direction dimension");
  TOREX_REQUIRE(d.dim >= 0 && d.dim < num_dims,
                "direction dimension out of range in token: " + token);
  return d;
}

/// Next non-comment, non-empty line.
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    if (line[start] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void write_schedule(std::ostream& os, const SuhShinAape& algo) {
  const TorusShape& shape = algo.shape();
  os << "torex-schedule v1\n";
  os << "shape " << shape.to_string() << '\n';
  os << "convention "
     << (algo.convention() == PatternConvention::kPaper2D ? "paper2d" : "nested") << '\n';
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    os << "phase " << phase << " kind " << kind_name(algo.phase_kind(phase)) << " steps "
       << algo.steps_in_phase(phase) << " hops " << algo.hops_per_step(phase) << '\n';
  }
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    if (algo.steps_in_phase(phase) == 0) continue;
    const bool scatter = algo.phase_kind(phase) == PhaseKind::kScatter;
    const int lines = scatter ? 1 : algo.steps_in_phase(phase);
    for (int s = 1; s <= lines; ++s) {
      os << "dirs " << phase << ' ' << (scatter ? 0 : s);
      for (Rank node = 0; node < shape.num_nodes(); ++node) {
        os << ' ' << dir_token(algo.direction(node, phase, s));
      }
      os << '\n';
    }
  }
}

ScheduleDescription read_schedule(std::istream& is) {
  ScheduleDescription out;
  std::string line;
  TOREX_REQUIRE(next_line(is, line) && line == "torex-schedule v1",
                "missing torex-schedule v1 header");

  TOREX_REQUIRE(next_line(is, line), "missing shape line");
  {
    std::istringstream ss(line);
    std::string keyword, shape_text;
    ss >> keyword >> shape_text;
    TOREX_REQUIRE(keyword == "shape", "expected shape line, got: " + line);
    std::stringstream dims(shape_text);
    std::string token;
    while (std::getline(dims, token, 'x')) {
      const int extent = parse_int(token, "shape extent");
      TOREX_REQUIRE(extent >= 1, "shape extent must be positive: " + token);
      out.extents.push_back(extent);
    }
    TOREX_REQUIRE(!out.extents.empty(), "empty shape");
  }

  TOREX_REQUIRE(next_line(is, line), "missing convention line");
  {
    std::istringstream ss(line);
    std::string keyword, value;
    ss >> keyword >> value;
    TOREX_REQUIRE(keyword == "convention", "expected convention line, got: " + line);
    if (value == "paper2d") {
      out.convention = PatternConvention::kPaper2D;
    } else if (value == "nested") {
      out.convention = PatternConvention::kNested;
    } else {
      throw std::invalid_argument("unknown convention: " + value);
    }
  }

  std::int64_t num_nodes = 1;
  for (auto e : out.extents) {
    num_nodes *= e;
    TOREX_REQUIRE(num_nodes <= std::numeric_limits<Rank>::max(),
                  "shape node count overflows the rank type");
  }
  const int num_dims = static_cast<int>(out.extents.size());

  while (next_line(is, line)) {
    std::istringstream ss(line);
    std::string keyword;
    ss >> keyword;
    if (keyword == "phase") {
      int index = 0;
      std::string kw_kind, kind_text, kw_steps, kw_hops;
      int steps = 0, hops = 0;
      ss >> index >> kw_kind >> kind_text >> kw_steps >> steps >> kw_hops >> hops;
      TOREX_REQUIRE(!ss.fail() && kw_kind == "kind" && kw_steps == "steps" && kw_hops == "hops",
                    "malformed phase line: " + line);
      TOREX_REQUIRE(index == static_cast<int>(out.phases.size()) + 1,
                    "phases must be listed in order");
      TOREX_REQUIRE(steps >= 0, "phase step count must be non-negative: " + line);
      TOREX_REQUIRE(hops >= 1, "phase hop count must be positive: " + line);
      ScheduleDescription::Phase phase;
      phase.kind = kind_from(kind_text);
      phase.steps = steps;
      phase.hops = hops;
      out.phases.push_back(std::move(phase));
    } else if (keyword == "dirs") {
      int phase = 0, step = 0;
      ss >> phase >> step;
      TOREX_REQUIRE(!ss.fail(), "malformed dirs line: " + line);
      TOREX_REQUIRE(phase >= 1 && phase <= static_cast<int>(out.phases.size()),
                    "dirs line references unknown phase");
      auto& ph = out.phases[static_cast<std::size_t>(phase - 1)];
      const bool scatter = ph.kind == PhaseKind::kScatter;
      // Scatter phases serialize step 0 (directions step-independent);
      // exchange phases one line per 1-based step.
      TOREX_REQUIRE(scatter ? step == 0 : (step >= 1 && step <= ph.steps),
                    "dirs step index out of range for its phase: " + line);
      std::vector<Direction> dirs;
      dirs.reserve(static_cast<std::size_t>(num_nodes));
      std::string token;
      while (ss >> token) dirs.push_back(dir_from(token, num_dims));
      TOREX_REQUIRE(static_cast<std::int64_t>(dirs.size()) == num_nodes,
                    "dirs line has wrong node count");
      const std::size_t slot = step == 0 ? 0 : static_cast<std::size_t>(step - 1);
      if (ph.directions.size() <= slot) ph.directions.resize(slot + 1);
      ph.directions[slot] = std::move(dirs);
    } else {
      throw std::invalid_argument("unknown line: " + line);
    }
  }
  return out;
}

bool matches(const ScheduleDescription& description, const SuhShinAape& algo) {
  const TorusShape& shape = algo.shape();
  if (description.extents != shape.extents()) return false;
  if (description.convention != algo.convention()) return false;
  if (static_cast<int>(description.phases.size()) != algo.num_phases()) return false;
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    const auto& ph = description.phases[static_cast<std::size_t>(phase - 1)];
    if (ph.kind != algo.phase_kind(phase)) return false;
    if (ph.steps != algo.steps_in_phase(phase)) return false;
    if (ph.hops != algo.hops_per_step(phase)) return false;
    if (algo.steps_in_phase(phase) == 0) continue;
    const bool scatter = algo.phase_kind(phase) == PhaseKind::kScatter;
    const int lines = scatter ? 1 : algo.steps_in_phase(phase);
    if (static_cast<int>(ph.directions.size()) != lines) return false;
    for (int s = 1; s <= lines; ++s) {
      const auto& dirs = ph.directions[static_cast<std::size_t>(s - 1)];
      if (static_cast<Rank>(dirs.size()) != shape.num_nodes()) return false;
      for (Rank node = 0; node < shape.num_nodes(); ++node) {
        if (!(dirs[static_cast<std::size_t>(node)] == algo.direction(node, phase, s))) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace torex
