// Schedule serialization: a stable text format for exporting the
// per-node direction tables, for offline inspection, diffing across
// library versions, or embedding into a runtime that executes the
// sends natively.
//
// Format (line-oriented, '#' comments allowed):
//   torex-schedule v1
//   shape 12x8
//   convention paper2d|nested
//   phase <k> kind scatter|quarter|pair steps <s> hops <h>
//   dirs <phase> <step> +0 -1 +0 ...        (one token per node rank)
// Scatter phases serialize one `dirs` line with step 0 (directions are
// step-independent); exchange phases serialize one line per step.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/aape.hpp"

namespace torex {

/// Parsed form of a serialized schedule.
struct ScheduleDescription {
  std::vector<std::int32_t> extents;
  PatternConvention convention = PatternConvention::kPaper2D;
  struct Phase {
    PhaseKind kind = PhaseKind::kScatter;
    int steps = 0;
    int hops = 0;
    /// directions[step_index][node]; scatter phases have one entry.
    std::vector<std::vector<Direction>> directions;
  };
  std::vector<Phase> phases;
};

/// Writes the schedule in the v1 text format.
void write_schedule(std::ostream& os, const SuhShinAape& algo);

/// Parses the v1 text format; throws std::invalid_argument on any
/// syntax or consistency error.
ScheduleDescription read_schedule(std::istream& is);

/// True when the description is exactly the schedule `algo` produces.
bool matches(const ScheduleDescription& description, const SuhShinAape& algo);

}  // namespace torex
