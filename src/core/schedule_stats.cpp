#include "core/schedule_stats.hpp"

#include <algorithm>
#include <set>

namespace torex {

ScheduleStats compute_schedule_stats(const SuhShinAape& algo) {
  ScheduleStats stats;
  stats.total_steps = algo.total_steps();
  const Rank N = algo.shape().num_nodes();
  for (Rank node = 0; node < N; ++node) {
    std::set<Rank> partners;
    std::int64_t changes = 0;
    std::int64_t run = 0;
    std::int64_t best_run = 0;
    Rank previous = -1;
    for (int phase = 1; phase <= algo.num_phases(); ++phase) {
      for (int step = 1; step <= algo.steps_in_phase(phase); ++step) {
        const Rank partner = algo.partner(node, phase, step);
        partners.insert(partner);
        if (partner == previous) {
          ++run;
        } else {
          if (previous != -1) ++changes;
          best_run = std::max(best_run, run);
          run = 1;
          previous = partner;
        }
      }
    }
    best_run = std::max(best_run, run);
    stats.max_distinct_partners =
        std::max(stats.max_distinct_partners, static_cast<std::int64_t>(partners.size()));
    stats.max_partner_changes = std::max(stats.max_partner_changes, changes);
    stats.longest_fixed_run = std::max(stats.longest_fixed_run, best_run);
  }
  return stats;
}

CachedStartupCost classify_startup_steps(const SuhShinAape& algo) {
  const Rank N = algo.shape().num_nodes();
  CachedStartupCost out;
  std::vector<Rank> previous(static_cast<std::size_t>(N), -1);
  bool have_previous = false;
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    for (int step = 1; step <= algo.steps_in_phase(phase); ++step) {
      bool warm = have_previous;
      for (Rank node = 0; node < N && warm; ++node) {
        warm = algo.partner(node, phase, step) == previous[static_cast<std::size_t>(node)];
      }
      if (warm) {
        ++out.warm_steps;
      } else {
        ++out.cold_steps;
      }
      for (Rank node = 0; node < N; ++node) {
        previous[static_cast<std::size_t>(node)] = algo.partner(node, phase, step);
      }
      have_previous = true;
    }
  }
  return out;
}

}  // namespace torex
