// Schedule statistics: quantifies the paper's qualitative selling
// points — "destinations remain fixed over a larger number of steps"
// (claim (ii), §1) — so they can be compared against other schedules
// instead of taken on faith.
#pragma once

#include <cstdint>

#include "core/aape.hpp"

namespace torex {

/// Partner-stability statistics of a schedule.
struct ScheduleStats {
  /// Steps in the whole schedule.
  std::int64_t total_steps = 0;
  /// Largest number of *distinct* partners any node addresses across
  /// the whole schedule (proposed: 3n — one per scatter phase, two per
  /// exchange phase dimension... measured, not assumed).
  std::int64_t max_distinct_partners = 0;
  /// Largest number of partner *changes* any node experiences between
  /// consecutive steps (a change forces re-setup of DMA/buffer state;
  /// fixed destinations are what enable the paper's "caching of message
  /// buffers" optimization).
  std::int64_t max_partner_changes = 0;
  /// Longest run of consecutive steps a node keeps the same partner.
  std::int64_t longest_fixed_run = 0;
};

/// Computes the statistics by walking the schedule for every node.
ScheduleStats compute_schedule_stats(const SuhShinAape& algo);

/// Startup accounting under the message-buffer-caching optimization the
/// paper's claim (ii) enables: a step whose every sender keeps the
/// partner it used in the previous step pays only `warm_fraction * t_s`
/// (buffers, DMA descriptors and route setup are reused); any step with
/// a fresh partner pays the full t_s.
struct CachedStartupCost {
  std::int64_t cold_steps = 0;  ///< steps paying full t_s
  std::int64_t warm_steps = 0;  ///< steps paying warm_fraction * t_s
  double total(double t_s, double warm_fraction) const {
    return static_cast<double>(cold_steps) * t_s +
           static_cast<double>(warm_steps) * warm_fraction * t_s;
  }
};

/// Classifies every step of the schedule as cold or warm.
CachedStartupCost classify_startup_steps(const SuhShinAape& algo);

}  // namespace torex
