// Execution trace of a complete exchange.
//
// The engine records, for every step, every non-empty message (source,
// destination, direction, hop count, block count). The contention
// checker replays traces against the physical torus; the cost simulator
// prices them with the paper's four-parameter model; the figure benches
// print per-step series from them.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/torus.hpp"

namespace torex {

/// One message in one step.
struct TransferRecord {
  Rank src = 0;
  Rank dst = 0;
  Direction dir;
  std::int32_t hops = 0;
  std::int64_t blocks = 0;
};

/// All traffic of one step.
struct StepRecord {
  int phase = 0;  // 1-based
  int step = 0;   // 1-based within phase
  std::int32_t hops = 0;
  /// Largest message (in blocks) any node sends this step — the
  /// quantity the paper's per-step transmission term counts. Filled by
  /// the engine even when per-transfer recording is off.
  std::int64_t max_blocks_per_node = 0;
  /// Total blocks moved across all nodes this step.
  std::int64_t total_blocks = 0;
  /// Per-message detail (present when EngineOptions::record_transfers).
  std::vector<TransferRecord> transfers;
};

/// Full run of an exchange algorithm.
struct ExchangeTrace {
  std::vector<StepRecord> steps;
  /// Number of inter-phase data-rearrangement passes (paper: n+1).
  std::int64_t rearrangement_passes = 0;
  /// Blocks rearranged per pass (paper: one full buffer, a1*...*an).
  std::int64_t blocks_per_rearrangement = 0;

  std::int64_t num_steps() const { return static_cast<std::int64_t>(steps.size()); }

  /// Sum over steps of the largest per-node message — the series the
  /// paper's "message-transmission cost" aggregates.
  std::int64_t total_max_blocks() const {
    std::int64_t sum = 0;
    for (const auto& s : steps) sum += s.max_blocks_per_node;
    return sum;
  }

  /// Sum over steps of per-step hop count — the paper's propagation
  /// term counts one h_step per step.
  std::int64_t total_hops() const {
    std::int64_t sum = 0;
    for (const auto& s : steps) sum += s.hops;
    return sum;
  }
};

}  // namespace torex
