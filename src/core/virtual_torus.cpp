#include "core/virtual_torus.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace torex {

TorusShape VirtualTorusAape::padded_shape(const TorusShape& physical) {
  std::vector<std::int32_t> extents(static_cast<std::size_t>(physical.num_dims()));
  for (int d = 0; d < physical.num_dims(); ++d) {
    extents[static_cast<std::size_t>(d)] = static_cast<std::int32_t>(
        round_up_to_multiple(std::max<std::int64_t>(physical.extent(d), 4), 4));
  }
  return TorusShape(std::move(extents));
}

VirtualTorusAape::VirtualTorusAape(TorusShape physical)
    : physical_(std::move(physical)), algo_(padded_shape(physical_)) {
  TOREX_REQUIRE(physical_.num_dims() >= 2, "need at least two dimensions");
  TOREX_REQUIRE(physical_.extents_non_increasing(),
                "physical extents must be sorted non-increasing");
}

bool VirtualTorusAape::is_primary(Rank virtual_rank) const {
  const Coord v = algo_.shape().coord_of(virtual_rank);
  for (int d = 0; d < physical_.num_dims(); ++d) {
    if (v[static_cast<std::size_t>(d)] >= physical_.extent(d)) return false;
  }
  return true;
}

Rank VirtualTorusAape::host_of(Rank virtual_rank) const {
  Coord v = algo_.shape().coord_of(virtual_rank);
  for (int d = 0; d < physical_.num_dims(); ++d) {
    v[static_cast<std::size_t>(d)] =
        static_cast<std::int32_t>(v[static_cast<std::size_t>(d)] % physical_.extent(d));
  }
  return physical_.rank_of(v);
}

VirtualExchangeResult VirtualTorusAape::run_verified() const {
  const TorusShape& vshape = algo_.shape();
  const Rank V = vshape.num_nodes();

  // Hosting multiplicity.
  std::vector<std::int64_t> roles(static_cast<std::size_t>(physical_.num_nodes()), 0);
  for (Rank v = 0; v < V; ++v) ++roles[static_cast<std::size_t>(host_of(v))];

  VirtualExchangeResult result;
  result.max_roles_per_host = *std::max_element(roles.begin(), roles.end());

  // Seed: primary virtual nodes hold blocks for every primary
  // destination, addressed by virtual rank.
  std::vector<std::vector<Block>> buffers(static_cast<std::size_t>(V));
  std::vector<Rank> primaries;
  for (Rank v = 0; v < V; ++v) {
    if (!is_primary(v)) continue;
    primaries.push_back(v);
  }
  for (Rank v : primaries) {
    auto& buf = buffers[static_cast<std::size_t>(v)];
    buf.reserve(primaries.size());
    for (Rank d : primaries) buf.push_back(Block{v, d});
  }

  std::vector<std::vector<Block>> inbox(static_cast<std::size_t>(V));
  std::vector<std::int64_t> host_sends(static_cast<std::size_t>(physical_.num_nodes()));

  for (int phase = 1; phase <= algo_.num_phases(); ++phase) {
    for (int step = 1; step <= algo_.steps_in_phase(phase); ++step) {
      StepRecord rec;
      rec.phase = phase;
      rec.step = step;
      rec.hops = algo_.hops_per_step(phase);
      std::fill(host_sends.begin(), host_sends.end(), 0);
      for (Rank v = 0; v < V; ++v) {
        auto& buf = buffers[static_cast<std::size_t>(v)];
        if (buf.empty()) continue;
        auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Block& b) {
          return !algo_.should_send(v, phase, step, b);
        });
        const std::int64_t sent = std::distance(split, buf.end());
        if (sent == 0) continue;
        const Rank q = algo_.partner(v, phase, step);
        auto& in = inbox[static_cast<std::size_t>(q)];
        in.insert(in.end(), split, buf.end());
        buf.erase(split, buf.end());
        rec.max_blocks_per_node = std::max(rec.max_blocks_per_node, sent);
        rec.total_blocks += sent;
        ++host_sends[static_cast<std::size_t>(host_of(v))];
        rec.transfers.push_back(TransferRecord{v, q, algo_.direction(v, phase, step),
                                               algo_.hops_per_step(phase), sent});
      }
      for (Rank v = 0; v < V; ++v) {
        auto& in = inbox[static_cast<std::size_t>(v)];
        if (in.empty()) continue;
        auto& buf = buffers[static_cast<std::size_t>(v)];
        buf.insert(buf.end(), in.begin(), in.end());
        in.clear();
      }
      const std::int64_t step_serialization =
          *std::max_element(host_sends.begin(), host_sends.end());
      result.per_step_host_sends.push_back(std::max<std::int64_t>(step_serialization, 1));
      result.max_host_serialization =
          std::max(result.max_host_serialization, step_serialization);
      result.trace.steps.push_back(std::move(rec));
    }
  }
  result.trace.rearrangement_passes = algo_.num_dims() + 1;
  result.trace.blocks_per_rearrangement = physical_.num_nodes();

  // Postcondition over primaries.
  const Rank P = static_cast<Rank>(primaries.size());
  TOREX_CHECK(P == physical_.num_nodes(), "primary count mismatch");
  for (Rank v : primaries) {
    const auto& buf = buffers[static_cast<std::size_t>(v)];
    TOREX_CHECK(static_cast<Rank>(buf.size()) == P,
                "padded exchange: wrong final block count");
    std::vector<char> seen(static_cast<std::size_t>(V), 0);
    for (const Block& b : buf) {
      TOREX_CHECK(b.dest == v, "padded exchange misdelivered a block");
      TOREX_CHECK(!seen[static_cast<std::size_t>(b.origin)], "duplicate origin");
      seen[static_cast<std::size_t>(b.origin)] = 1;
    }
  }
  // Non-primary roles must end empty.
  for (Rank v = 0; v < V; ++v) {
    if (is_primary(v)) continue;
    TOREX_CHECK(buffers[static_cast<std::size_t>(v)].empty(),
                "virtual role still holds blocks after the exchange");
  }
  return result;
}

}  // namespace torex
