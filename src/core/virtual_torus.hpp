// Virtual-node padding (paper §6).
//
// "If the number of nodes in each dimension is not a multiple of four,
//  the proposed algorithms can be used by adding virtual nodes, then
//  having every node perform communication steps as proposed."
//
// We realize the suggestion by folding: the physical a1 x ... x an
// torus is embedded in the virtual torus whose extents are rounded up
// to multiples of four; every virtual node v is *hosted* by the
// physical node with coordinates v mod physical-extent. Virtual nodes
// whose coordinates are already physical ("primary" nodes) carry the
// real blocks; the remaining virtual nodes exist only as forwarding
// roles their hosts play. A physical node hosting H virtual roles
// serializes their per-step messages, so the completion-time overhead
// of padding is bounded by the hosting multiplicity — which the
// executor measures and reports.
#pragma once

#include <cstdint>
#include <vector>

#include "core/aape.hpp"
#include "core/trace.hpp"
#include "topology/shape.hpp"

namespace torex {

/// Trace plus padding-overhead metrics.
struct VirtualExchangeResult {
  ExchangeTrace trace;  ///< virtual-network traffic (steps as scheduled)
  /// Per-step maximum number of (non-empty) messages any physical node
  /// had to send on behalf of its hosted virtual roles; 1 everywhere
  /// means padding added no serialization.
  std::vector<std::int64_t> per_step_host_sends;
  /// Largest value in per_step_host_sends.
  std::int64_t max_host_serialization = 1;
  /// Largest number of virtual roles hosted by one physical node.
  std::int64_t max_roles_per_host = 1;
};

/// AAPE on a torus of arbitrary extents (each >= 1, at least 2 dims)
/// via virtual-node padding over the Suh-Shin schedule.
class VirtualTorusAape {
 public:
  /// `physical` may have any positive extents; they must be sorted
  /// non-increasing (relabel dimensions first, as for SuhShinAape).
  explicit VirtualTorusAape(TorusShape physical);

  const TorusShape& physical_shape() const { return physical_; }
  const TorusShape& virtual_shape() const { return algo_.shape(); }
  const SuhShinAape& schedule() const { return algo_; }

  /// True when the virtual node (by virtual rank) is a primary node,
  /// i.e. corresponds one-to-one to a physical node.
  bool is_primary(Rank virtual_rank) const;

  /// Physical host rank of a virtual node (folding: coord mod extent).
  Rank host_of(Rank virtual_rank) const;

  /// Runs the padded exchange among the physical nodes and verifies
  /// that every physical node ends with exactly one block from every
  /// physical node. Throws on violation.
  VirtualExchangeResult run_verified() const;

 private:
  static TorusShape padded_shape(const TorusShape& physical);

  TorusShape physical_;
  SuhShinAape algo_;  // schedule over the padded (virtual) shape
};

}  // namespace torex
