#include "core/wire_buffer.hpp"

namespace torex {

WirePoolStats wire_stats_delta(const WirePoolStats& after, const WirePoolStats& before) {
  WirePoolStats d;
  d.acquires = after.acquires - before.acquires;
  d.releases = after.releases - before.releases;
  d.pool_hits = after.pool_hits - before.pool_hits;
  d.pool_misses = after.pool_misses - before.pool_misses;
  d.undersized_hits = after.undersized_hits - before.undersized_hits;
  d.peak_in_use = after.peak_in_use;
  d.messages = after.messages - before.messages;
  d.parcels = after.parcels - before.parcels;
  d.bytes_encoded = after.bytes_encoded - before.bytes_encoded;
  d.bytes_copied = after.bytes_copied - before.bytes_copied;
  d.total_sends = after.total_sends - before.total_sends;
  d.contiguous_sends = after.contiguous_sends - before.contiguous_sends;
  d.gathered_parcels = after.gathered_parcels - before.gathered_parcels;
  d.max_runs_per_send = after.max_runs_per_send;
  d.rearrangement_passes = after.rearrangement_passes - before.rearrangement_passes;
  d.parcels_rearranged = after.parcels_rearranged - before.parcels_rearranged;
  return d;
}

std::vector<std::byte> WireArena::acquire(std::size_t size_hint) {
  ++stats_.acquires;
  ++in_use_;
  stats_.peak_in_use = std::max(stats_.peak_in_use, in_use_);
  if (free_.empty()) {
    ++stats_.pool_misses;
    std::vector<std::byte> frame;
    frame.reserve(size_hint);
    return frame;
  }
  ++stats_.pool_hits;
  // Largest-capacity frame sits at the back (release keeps it there),
  // so repeated acquire/release converges on zero reallocation.
  std::vector<std::byte> frame = std::move(free_.back());
  free_.pop_back();
  if (frame.capacity() < size_hint) ++stats_.undersized_hits;
  frame.clear();
  return frame;
}

void WireArena::release(std::vector<std::byte>&& frame) {
  ++stats_.releases;
  --in_use_;
  free_.push_back(std::move(frame));
  // Keep the biggest frame last so acquire() hands it out first.
  if (free_.size() >= 2 &&
      free_[free_.size() - 2].capacity() > free_.back().capacity()) {
    std::swap(free_[free_.size() - 2], free_.back());
  }
}

void WireArena::trim() { free_.clear(); }

}  // namespace torex
