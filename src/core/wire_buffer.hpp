// Pooled wire frames and non-owning wire views (the zero-copy layer).
//
// Paper §3.3 argues that with the right buffer ordering every step's
// send set is physically contiguous, so a message can be handed to the
// router without copying. The payload executors honor that claim by
// encoding each message into a *frame* — one header plus the raw
// contiguous parcel run — and by recycling frame storage across steps
// and exchanges through a WireArena, so the steady-state hot path
// performs no heap allocation and exactly one memcpy per direction.
//
// Three pieces:
//  * WireView — a non-owning (pointer, length) view of wire bytes, so
//    verification and integration read frames in place instead of
//    materializing intermediate vectors;
//  * WireArena — a freelist of frame buffers with pool and traffic
//    statistics (hits/misses, bytes copied/encoded, and §3.3-style run
//    accounting mirroring data_array's LayoutStats);
//  * PooledFrame — RAII handle that returns its buffer to the arena.
//
// The arena is deliberately not thread-safe: each executor (or each
// worker thread) owns its own arena, matching the one-port model where
// a node drives one send at a time.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace torex {

/// Non-owning view of a contiguous span of wire bytes.
class WireView {
 public:
  WireView() = default;
  WireView(const std::byte* data, std::size_t size) : data_(data), size_(size) {}
  WireView(const std::vector<std::byte>& bytes) : data_(bytes.data()), size_(bytes.size()) {}

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Little-endian read of a 32-bit word from a view; false when short.
inline bool wire_get_u32(WireView in, std::size_t& offset, std::uint32_t& v) {
  if (in.size() < offset + 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             std::to_integer<std::uint8_t>(in.data()[offset + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  offset += 4;
  return true;
}

/// Little-endian read of a 64-bit word from a view; false when short.
inline bool wire_get_u64(WireView in, std::size_t& offset, std::uint64_t& v) {
  if (in.size() < offset + 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             std::to_integer<std::uint8_t>(in.data()[offset + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  offset += 8;
  return true;
}

/// Little-endian write of a 32-bit word at a raw position (the caller
/// guarantees 4 bytes of room) — used to patch frame headers in place.
inline void wire_write_u32(std::byte* at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    at[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFu);
  }
}

/// Little-endian write of a 64-bit word at a raw position.
inline void wire_write_u64(std::byte* at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    at[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFu);
  }
}

/// Which wire encoding a sealed exchange uses.
enum class WirePath {
  /// Batched frames from a WireArena: one header + one contiguous
  /// parcel run per message, verified and integrated in place.
  kPooled,
  /// The original per-parcel encoding: every parcel carries its own
  /// sealed record and every message allocates a fresh buffer.
  kPerParcel,
};

/// Pool and traffic statistics of a WireArena. Pool counters describe
/// buffer recycling; traffic counters describe what crossed the wire;
/// run counters mirror data_array's LayoutStats so the payload path
/// reports the same §3.3 contiguity evidence the block-level layout
/// simulator does.
struct WirePoolStats {
  // -- pool --
  std::int64_t acquires = 0;        ///< frames handed out
  std::int64_t releases = 0;        ///< frames returned to the pool
  std::int64_t pool_hits = 0;       ///< satisfied from the freelist
  std::int64_t pool_misses = 0;     ///< needed a fresh allocation
  std::int64_t undersized_hits = 0; ///< pooled frame will regrow for this use
  std::int64_t peak_in_use = 0;     ///< most frames outstanding at once

  /// Leased frames never returned: acquires - releases. Zero whenever
  /// no exchange is mid-step; a session that tears down with a nonzero
  /// balance has leaked a PooledFrame (or released one twice).
  std::int64_t outstanding_frames() const { return acquires - releases; }

  // -- traffic --
  std::int64_t messages = 0;        ///< frames encoded
  std::int64_t parcels = 0;         ///< parcels carried by those frames
  std::int64_t bytes_encoded = 0;   ///< total frame bytes produced
  std::int64_t bytes_copied = 0;    ///< payload bytes memcpy'd (gather + splice)

  // -- §3.3 run accounting --
  std::int64_t total_sends = 0;        ///< send events
  std::int64_t contiguous_sends = 0;   ///< sends that were a single run
  std::int64_t gathered_parcels = 0;   ///< parcels of multi-run (gathered) sends
  std::int64_t max_runs_per_send = 1;  ///< worst fragmentation seen
  std::int64_t rearrangement_passes = 0;  ///< phase-boundary re-sorts
  std::int64_t parcels_rearranged = 0;    ///< parcels touched by those passes

  /// Records one send of `count` parcels that occupied `runs` runs.
  void note_message(std::int64_t count, std::int64_t runs) {
    ++messages;
    ++total_sends;
    parcels += count;
    if (runs == 1) {
      ++contiguous_sends;
    } else {
      gathered_parcels += count;
    }
    max_runs_per_send = std::max(max_runs_per_send, runs);
  }

  bool fully_contiguous() const { return contiguous_sends == total_sends; }
};

/// Field-wise difference `after - before` (max_runs_per_send and
/// peak_in_use take `after`'s value — they are high-water marks).
WirePoolStats wire_stats_delta(const WirePoolStats& after, const WirePoolStats& before);

/// Recycling pool for wire frame buffers. acquire() prefers the largest
/// pooled buffer (so capacity converges to the biggest message and
/// stops reallocating); release() returns storage for the next step.
class WireArena {
 public:
  WireArena() = default;
  WireArena(const WireArena&) = delete;
  WireArena& operator=(const WireArena&) = delete;

  /// Hands out an empty frame with at least `size_hint` capacity when
  /// the pool can provide it (a smaller pooled frame is still reused —
  /// it regrows once and then sticks).
  std::vector<std::byte> acquire(std::size_t size_hint = 0);

  /// Returns a frame's storage to the pool.
  void release(std::vector<std::byte>&& frame);

  WirePoolStats& stats() { return stats_; }
  const WirePoolStats& stats() const { return stats_; }
  void reset_stats() { stats_ = WirePoolStats{}; }

  /// Frames currently sitting in the freelist.
  std::size_t pooled() const { return free_.size(); }
  /// Frames handed out and not yet released.
  std::int64_t in_use() const { return in_use_; }
  /// Drops all pooled storage (stats survive).
  void trim();

 private:
  std::vector<std::vector<std::byte>> free_;
  WirePoolStats stats_;
  std::int64_t in_use_ = 0;
};

/// RAII frame: acquired from an arena, released on destruction. Default
/// construction yields an unbound frame that can be rebound later —
/// executors keep one slot per receiver and bind it per step.
class PooledFrame {
 public:
  PooledFrame() = default;
  explicit PooledFrame(WireArena& arena, std::size_t size_hint = 0)
      : arena_(&arena), bytes_(arena.acquire(size_hint)), bound_(true) {}
  PooledFrame(PooledFrame&& other) noexcept
      : arena_(other.arena_), bytes_(std::move(other.bytes_)), bound_(other.bound_) {
    other.arena_ = nullptr;
    other.bound_ = false;
  }
  PooledFrame& operator=(PooledFrame&& other) noexcept {
    if (this != &other) {
      reset();
      arena_ = other.arena_;
      bytes_ = std::move(other.bytes_);
      bound_ = other.bound_;
      other.arena_ = nullptr;
      other.bound_ = false;
    }
    return *this;
  }
  PooledFrame(const PooledFrame&) = delete;
  PooledFrame& operator=(const PooledFrame&) = delete;
  ~PooledFrame() { reset(); }

  /// Binds (or rebinds) to an arena, acquiring a fresh empty frame.
  void bind(WireArena& arena, std::size_t size_hint = 0) {
    reset();
    arena_ = &arena;
    bytes_ = arena.acquire(size_hint);
    bound_ = true;
  }

  /// Returns the storage to the arena early.
  void reset() {
    if (bound_ && arena_ != nullptr) arena_->release(std::move(bytes_));
    bytes_ = {};
    bound_ = false;
  }

  bool bound() const { return bound_; }
  std::vector<std::byte>& bytes() { return bytes_; }
  const std::vector<std::byte>& bytes() const { return bytes_; }
  WireView view() const { return WireView(bytes_); }

 private:
  WireArena* arena_ = nullptr;
  std::vector<std::byte> bytes_;
  bool bound_ = false;
};

}  // namespace torex
