#include "costmodel/lower_bounds.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace torex {

AapeLowerBounds aape_lower_bounds(const TorusShape& shape, const CostParams& params) {
  TOREX_REQUIRE(shape.num_nodes() >= 2, "bounds need at least two nodes");
  const double N = static_cast<double>(shape.num_nodes());
  const double a1 = static_cast<double>(shape.max_extent());
  const double m = static_cast<double>(params.m);
  AapeLowerBounds out;
  out.startup = std::ceil(std::log2(N)) * params.t_s;
  out.injection = (N - 1) * m * params.t_c;
  // Bisection only applies when the longest ring can actually be cut in
  // half (even extent); every shape the algorithms accept satisfies it.
  out.bisection = shape.max_extent() % 2 == 0 ? N * a1 / 8.0 * m * params.t_c : 0.0;
  return out;
}

}  // namespace torex
