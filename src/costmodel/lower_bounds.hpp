// Fundamental lower bounds for all-to-all personalized exchange on a
// one-port wormhole torus — the yardstick that shows how close the
// Suh-Shin schedule is to optimal, independent of any particular
// algorithm.
//
// Three classical arguments:
//  * Startup / information dissemination: under the one-port model a
//    node can learn data from at most one new peer per step, so after s
//    steps it holds blocks originating from at most 2^s nodes; any
//    complete exchange needs at least ceil(log2 N) steps.
//  * Injection bandwidth: every node must push N-1 distinct blocks
//    through its single injection port, so transmission time is at
//    least (N-1) * m * t_c.
//  * Bisection bandwidth: cutting the torus across its longest
//    dimension splits it into halves of N/2 nodes; (N/2)^2 blocks must
//    cross from one half to the other, and only 2*N/a1 directed
//    channels leave the half in that direction (two cut planes of the
//    dim-0 ring, N/a1 links each), so transmission time is at least
//    (N^2/4) / (2N/a1) = (N * a1 / 8) * m * t_c.
#pragma once

#include "costmodel/params.hpp"
#include "topology/shape.hpp"

namespace torex {

/// The three lower bounds for a given torus and parameters.
struct AapeLowerBounds {
  double startup = 0.0;        ///< ceil(log2 N) * t_s
  double injection = 0.0;      ///< (N-1) * m * t_c
  double bisection = 0.0;      ///< N * a1 / 8 * m * t_c
  /// Largest of the transmission-type bounds.
  double transmission() const { return injection > bisection ? injection : bisection; }
  /// A valid (loose) combined bound: startup + max transmission bound.
  double combined() const { return startup + transmission(); }
};

/// Computes the bounds. Requires >= 2 nodes.
AapeLowerBounds aape_lower_bounds(const TorusShape& shape, const CostParams& params);

}  // namespace torex
