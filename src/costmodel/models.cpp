#include "costmodel/models.hpp"

#include "util/assert.hpp"
#include "util/math.hpp"

namespace torex {

CostBreakdown proposed_cost_2d(std::int64_t rows, std::int64_t cols, const CostParams& p) {
  TOREX_REQUIRE(rows >= 4 && cols >= 4 && rows % 4 == 0 && cols % 4 == 0,
                "R and C must be multiples of four");
  TOREX_REQUIRE(rows <= cols, "paper convention: R <= C");
  const double R = static_cast<double>(rows);
  const double C = static_cast<double>(cols);
  const double m = static_cast<double>(p.m);
  CostBreakdown out;
  out.startup = (C / 2 + 2) * p.t_s;                    // (C/2 + 2) t_s
  out.transmission = R * C / 4 * (C + 4) * m * p.t_c;   // RC(C+4)/4 m t_c
  out.rearrangement = 3 * R * C * m * p.rho;            // 3 RC m rho
  out.propagation = 2 * (C - 1) * p.t_l;                // 2(C-1) t_l
  return out;
}

CostBreakdown proposed_cost_nd(const TorusShape& shape, const CostParams& p) {
  TOREX_REQUIRE(shape.num_dims() >= 2, "n-D model needs n >= 2");
  TOREX_REQUIRE(shape.all_extents_multiple_of_four(), "extents must be multiples of four");
  TOREX_REQUIRE(shape.extents_non_increasing(), "extents must satisfy a1 >= ... >= an");
  const double n = static_cast<double>(shape.num_dims());
  const double a1 = static_cast<double>(shape.extent(0));
  const double N = static_cast<double>(shape.num_nodes());
  const double m = static_cast<double>(p.m);
  CostBreakdown out;
  out.startup = n * (a1 / 4 + 1) * p.t_s;               // n(a1/4 + 1) t_s
  out.transmission = n / 8 * (a1 + 4) * N * m * p.t_c;  // n/8 (a1+4)(a1...an) m t_c
  out.rearrangement = (n + 1) * N * m * p.rho;          // (n+1)(a1...an) m rho
  out.propagation = n * (a1 - 1) * p.t_l;               // n(a1 - 1) t_l
  return out;
}

CostBreakdown tseng_cost(int d, const CostParams& p) {
  TOREX_REQUIRE(d >= 2, "2^d x 2^d torus needs d >= 2");
  const double m = static_cast<double>(p.m);
  CostBreakdown out;
  out.startup = static_cast<double>(ipow(2, d - 1) + 2) * p.t_s;
  out.transmission =
      static_cast<double>(ipow(2, 3 * d - 2) + ipow(2, 2 * d)) * m * p.t_c;
  out.rearrangement =
      static_cast<double>((ipow(2, d - 1) + 1) * ipow(2, 2 * d)) * m * p.rho;
  out.propagation = (static_cast<double>(ipow(2, 2 * d - 1)) + 10.0) / 3.0 * p.t_l;
  return out;
}

CostBreakdown suh_yalamanchili_cost(int d, const CostParams& p) {
  TOREX_REQUIRE(d >= 2, "2^d x 2^d torus needs d >= 2");
  const double m = static_cast<double>(p.m);
  // {9 * 2^(3d-4) + (d^2 - 5d + 3) 2^(2d-1)}  appears as both the
  // transmission and rearrangement block count in Table 2.
  const double blocks = 9.0 * static_cast<double>(ipow(2, 3 * d - 4)) +
                        static_cast<double>((static_cast<std::int64_t>(d) * d - 5 * d + 3)) *
                            static_cast<double>(ipow(2, 2 * d - 1));
  CostBreakdown out;
  out.startup = (3.0 * d - 3.0) * p.t_s;
  out.transmission = blocks * m * p.t_c;
  out.rearrangement = blocks * m * p.rho;
  out.propagation = (13.0 * static_cast<double>(ipow(2, d - 2)) - 3.0 * d - 3.0) * p.t_l;
  return out;
}

CostBreakdown proposed_cost_power_of_two(int d, const CostParams& p) {
  TOREX_REQUIRE(d >= 2, "2^d x 2^d torus needs d >= 2");
  const double m = static_cast<double>(p.m);
  CostBreakdown out;
  out.startup = static_cast<double>(ipow(2, d - 1) + 2) * p.t_s;
  out.transmission =
      static_cast<double>(ipow(2, 3 * d - 2) + ipow(2, 2 * d)) * m * p.t_c;
  out.rearrangement = 3.0 * static_cast<double>(ipow(2, 2 * d)) * m * p.rho;
  out.propagation = static_cast<double>(ipow(2, d + 1) - 2) * p.t_l;
  return out;
}

CostBreakdown direct_ideal_cost(const TorusShape& shape, const CostParams& p) {
  const Rank N = shape.num_nodes();
  const double m = static_cast<double>(p.m);
  CostBreakdown out;
  out.startup = static_cast<double>(N - 1) * p.t_s;
  out.transmission = static_cast<double>(N - 1) * m * p.t_c;
  // Propagation modeled from node 0's viewpoint: its step-i message
  // travels distance(0, i) hops, so the total is the sum of distances
  // from node 0 (other nodes differ only via rank wraparound effects;
  // the measured baseline prices the true per-step maximum).
  std::int64_t hops = 0;
  const Coord origin(static_cast<std::size_t>(shape.num_dims()), 0);
  for (Rank i = 1; i < N; ++i) hops += shape.distance(origin, shape.coord_of(i));
  out.propagation = static_cast<double>(hops) * p.t_l;
  out.rearrangement = 0.0;  // blocks are sent straight from the initial array
  return out;
}

}  // namespace torex
