// Closed-form completion-time models (paper Tables 1 and 2).
//
// Table 1 gives the proposed algorithms' four cost components for
// general R x C and a1 x ... x an tori. Table 2 specializes to
// 2^d x 2^d tori and adds the two prior message-combining algorithms
// the paper compares against:
//   [13] Tseng, Gupta & Panda, IPPS'95  (power-of-two square 2D tori)
//   [9]  Suh & Yalamanchili, TPDS'98    (power-of-two 2D/3D tori,
//        O(d) startups)
// We implement the rows exactly as printed so the benches can reproduce
// the tables and the crossover study.
#pragma once

#include "costmodel/params.hpp"
#include "topology/shape.hpp"

namespace torex {

/// Table 1, left column: proposed algorithm on an R x C torus
/// (R <= C, both multiples of four).
CostBreakdown proposed_cost_2d(std::int64_t rows, std::int64_t cols, const CostParams& p);

/// Table 1, right column: proposed algorithm on an a1 x ... x an torus
/// (a1 >= ... >= an, all multiples of four).
CostBreakdown proposed_cost_nd(const TorusShape& shape, const CostParams& p);

/// Table 2, column "[13]": Tseng et al. on a 2^d x 2^d torus.
CostBreakdown tseng_cost(int d, const CostParams& p);

/// Table 2, column "[9]": Suh & Yalamanchili on a 2^d x 2^d torus.
CostBreakdown suh_yalamanchili_cost(int d, const CostParams& p);

/// Table 2, column "Proposed": the proposed algorithm on a 2^d x 2^d
/// torus. Algebraically identical to proposed_cost_2d(2^d, 2^d, p);
/// kept separate so tests can pin the printed power-of-two forms.
CostBreakdown proposed_cost_power_of_two(int d, const CostParams& p);

/// Lower bound reference: a direct (no-combining) exchange needs N-1
/// message startups per node; with minimal routing the busiest channel
/// makes transmission Theta(N * avg-distance / channels). Used as the
/// motivation baseline in the benches. This is the *idealized* direct
/// cost assuming perfect link scheduling (no combining, no conflicts
/// beyond bandwidth): N-1 startups, N-1 blocks, average-distance hops.
CostBreakdown direct_ideal_cost(const TorusShape& shape, const CostParams& p);

}  // namespace torex
