// The paper's four-parameter communication cost model (Section 2).
//
// One contention-free step that ships an m-byte-per-block message of B
// blocks over h hops costs  t_s + B*m*t_c + h*t_l ; a data
// rearrangement of B blocks costs  B*m*rho.  Times are unitless here —
// published studies of the era quote microseconds; only ratios matter
// for every comparison we reproduce.
#pragma once

#include <cstdint>

namespace torex {

/// Model parameters. Defaults follow the classic wormhole-era ratio of
/// a large fixed startup vs. cheap per-byte transfer (e.g. Cray T3D
/// class machines: ~10^2 us startup, ~10^-2 us/byte).
struct CostParams {
  double t_s = 100.0;        ///< startup time per message
  double t_c = 0.02;         ///< transmission time per flit (byte)
  double t_l = 0.05;         ///< propagation delay per hop
  double rho = 0.01;         ///< data-rearrangement time per byte
  std::int64_t m = 64;       ///< block size in bytes

  /// Convenience named presets for benches.
  static CostParams startup_dominated() { return CostParams{1000.0, 0.01, 0.05, 0.005, 16}; }
  static CostParams bandwidth_dominated() { return CostParams{10.0, 0.1, 0.05, 0.05, 1024}; }
  static CostParams balanced() { return CostParams{}; }
};

/// Completion-time decomposition used throughout the paper's tables.
struct CostBreakdown {
  double startup = 0.0;
  double transmission = 0.0;
  double rearrangement = 0.0;
  double propagation = 0.0;

  double total() const { return startup + transmission + rearrangement + propagation; }

  CostBreakdown& operator+=(const CostBreakdown& other) {
    startup += other.startup;
    transmission += other.transmission;
    rearrangement += other.rearrangement;
    propagation += other.propagation;
    return *this;
  }
};

}  // namespace torex
