#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

#include "util/table.hpp"

namespace torex {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string format_ts_us(std::int64_t ns) {
  // Microseconds with nanosecond resolution, without float rounding.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

int pid_of(std::int32_t node) { return node + 1; }  // pid 0 = run scope

void write_event_common(std::ostream& os, const TelemetryEvent& e, const char* ph) {
  os << "{\"name\":\"" << json_escape(e.name) << "\",\"ph\":\"" << ph
     << "\",\"pid\":" << pid_of(e.node) << ",\"tid\":" << e.tid
     << ",\"ts\":" << format_ts_us(e.ts_ns);
}

void write_args(std::ostream& os, const TelemetryEvent& e) {
  os << ",\"args\":{";
  bool first = true;
  const auto field = [&](const char* key, std::int64_t value) {
    if (!first) os << ',';
    first = false;
    os << '"' << key << "\":" << value;
  };
  if (e.phase != 0) field("phase", e.phase);
  if (e.step != 0) field("step", e.step);
  if (e.kind == EventKind::kCounter || e.value != 0) field("value", e.value);
  os << '}';
}

}  // namespace

std::vector<SpanInstance> pair_spans(const Telemetry& telemetry) {
  std::vector<SpanInstance> spans;
  // Open-span stacks keyed by the full identity; LIFO close handles
  // recursive same-name nesting.
  using Key = std::tuple<int, std::string, std::int32_t, std::int32_t, std::int32_t>;
  std::map<Key, std::vector<std::size_t>> open;
  for (const TelemetryEvent& e : telemetry.events) {
    if (e.kind == EventKind::kBegin) {
      SpanInstance span;
      span.name = e.name;
      span.begin_ns = e.ts_ns;
      span.end_ns = telemetry.wall_ns;  // provisional: closed below if matched
      span.tid = e.tid;
      span.node = e.node;
      span.phase = e.phase;
      span.step = e.step;
      open[Key{e.tid, e.name, e.node, e.phase, e.step}].push_back(spans.size());
      spans.push_back(std::move(span));
    } else if (e.kind == EventKind::kEnd) {
      auto it = open.find(Key{e.tid, e.name, e.node, e.phase, e.step});
      if (it == open.end() || it->second.empty()) continue;  // stray end
      spans[it->second.back()].end_ns = e.ts_ns;
      it->second.pop_back();
    }
  }
  return spans;
}

void write_chrome_trace(std::ostream& os, const Telemetry& telemetry) {
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Telemetry accounting metadata: a nonzero dropped_events means the
  // trace is incomplete (ring buffers wrapped) — tools treat it as a
  // hard failure rather than analyzing a partial timeline.
  sep();
  os << "{\"name\":\"telemetry\",\"ph\":\"M\",\"pid\":0,\"args\":{\"streams\":"
     << telemetry.streams << ",\"dropped_events\":" << telemetry.dropped_events << "}}";

  // Process-name metadata: one process per torus node plus the run scope.
  std::set<std::int32_t> nodes;
  for (const TelemetryEvent& e : telemetry.events) nodes.insert(e.node);
  for (const std::int32_t node : nodes) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid_of(node)
       << ",\"args\":{\"name\":\"";
    if (node < 0) {
      os << "run";
    } else {
      os << "node " << node;
    }
    os << "\"}}";
  }

  for (const TelemetryEvent& e : telemetry.events) {
    switch (e.kind) {
      case EventKind::kBegin:
        sep();
        write_event_common(os, e, "B");
        write_args(os, e);
        os << '}';
        break;
      case EventKind::kEnd:
        sep();
        write_event_common(os, e, "E");
        os << '}';
        break;
      case EventKind::kInstant:
        sep();
        write_event_common(os, e, "i");
        os << ",\"s\":\"t\"";
        write_args(os, e);
        os << '}';
        break;
      case EventKind::kCounter:
        sep();
        write_event_common(os, e, "C");
        write_args(os, e);
        os << '}';
        break;
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

std::string chrome_trace_json(const Telemetry& telemetry) {
  std::ostringstream os;
  write_chrome_trace(os, telemetry);
  return os.str();
}

namespace {

/// Recursive-descent RFC 8259 checker over a byte string.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!value()) return fail(error);
    skip_ws();
    if (pos_ != text_.size()) {
      reason_ = "trailing characters after top-level value";
      return fail(error);
    }
    return true;
  }

 private:
  bool fail(std::string* error) const {
    if (error != nullptr) {
      *error = "offset " + std::to_string(pos_) + ": " +
               (reason_.empty() ? "malformed JSON" : reason_);
    }
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) {
      reason_ = "bad literal";
      return false;
    }
    pos_ += len;
    return true;
  }

  bool value() {
    if (++depth_ > kMaxDepth) {
      reason_ = "nesting too deep";
      return false;
    }
    bool ok = false;
    if (eof()) {
      reason_ = "unexpected end of input";
    } else {
      switch (peek()) {
        case '{': ok = object(); break;
        case '[': ok = array(); break;
        case '"': ok = string(); break;
        case 't': ok = literal("true"); break;
        case 'f': ok = literal("false"); break;
        case 'n': ok = literal("null"); break;
        default: ok = number(); break;
      }
    }
    --depth_;
    return ok;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') {
        reason_ = "expected object key string";
        return false;
      }
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') {
        reason_ = "expected ':' after object key";
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == '}') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      if (!eof() && peek() == ']') {
        ++pos_;
        return true;
      }
      reason_ = "expected ',' or ']' in array";
      return false;
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (!eof()) {
      const unsigned char ch = static_cast<unsigned char>(text_[pos_]);
      if (ch == '"') {
        ++pos_;
        return true;
      }
      if (ch < 0x20) {
        reason_ = "unescaped control character in string";
        return false;
      }
      if (ch == '\\') {
        ++pos_;
        if (eof()) break;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              reason_ = "bad \\u escape";
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' &&
                   esc != 'n' && esc != 'r' && esc != 't') {
          reason_ = "bad escape character";
          return false;
        }
      }
      ++pos_;
    }
    reason_ = "unterminated string";
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      reason_ = "expected value";
      return false;
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        reason_ = "digit required after decimal point";
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        reason_ = "digit required in exponent";
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  static constexpr int kMaxDepth = 256;
  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string reason_;
};

}  // namespace

bool json_well_formed(const std::string& text, std::string* error) {
  return JsonChecker(text).run(error);
}

PhaseSummary summarize_vs_model(const Telemetry& telemetry, const ExchangeTrace& trace,
                                const CostParams& params) {
  PhaseSummary out;
  out.dropped_events = telemetry.dropped_events;
  out.streams = telemetry.streams;

  // Model: price each schedule step with the paper's per-step formula
  // and attribute it to its phase. Summing the column reproduces the
  // Table-1 totals because the trace's counts match the closed forms.
  std::map<int, PhaseSummaryRow> by_phase;
  for (const StepRecord& s : trace.steps) {
    PhaseSummaryRow& row = by_phase[s.phase];
    row.steps += 1;
    row.model_cost += params.t_s +
                      static_cast<double>(s.max_blocks_per_node) *
                          static_cast<double>(params.m) * params.t_c +
                      static_cast<double>(s.hops) * params.t_l;
  }

  // Measured: the wall extent of each phase's spans. max(end) -
  // min(begin) attributes parallel workers' overlapping spans once.
  std::map<int, std::pair<std::int64_t, std::int64_t>> extent;  // phase -> {min, max}
  std::int64_t rearrange_ns = 0;
  for (const SpanInstance& span : pair_spans(telemetry)) {
    if (span.name == "rearrange") {
      rearrange_ns += span.duration_ns();
      continue;
    }
    if (span.phase <= 0) continue;
    auto [it, fresh] = extent.try_emplace(span.phase, span.begin_ns, span.end_ns);
    if (!fresh) {
      it->second.first = std::min(it->second.first, span.begin_ns);
      it->second.second = std::max(it->second.second, span.end_ns);
    }
  }

  PhaseSummaryRow total;
  total.label = "total";
  for (auto& [phase, row] : by_phase) {
    row.label = "phase " + std::to_string(phase);
    const auto it = extent.find(phase);
    if (it != extent.end()) row.measured_ns = it->second.second - it->second.first;
    total.steps += row.steps;
    total.measured_ns += row.measured_ns;
    total.model_cost += row.model_cost;
    out.rows.push_back(row);
  }

  PhaseSummaryRow rearrange;
  rearrange.label = "rearrangement";
  rearrange.measured_ns = rearrange_ns;
  rearrange.model_cost = static_cast<double>(trace.rearrangement_passes) *
                         static_cast<double>(trace.blocks_per_rearrangement) *
                         static_cast<double>(params.m) * params.rho;
  total.measured_ns += rearrange.measured_ns;
  total.model_cost += rearrange.model_cost;
  out.rows.push_back(rearrange);
  out.rows.push_back(total);
  return out;
}

void print_phase_summary(std::ostream& os, const PhaseSummary& summary) {
  TextTable table({"phase", "steps", "measured (us)", "meas %", "model cost", "model %"});
  table.set_align(0, TextTable::Align::kLeft);
  std::int64_t total_ns = 0;
  double total_model = 0.0;
  for (const PhaseSummaryRow& row : summary.rows) {
    if (row.label == "total") {
      total_ns = row.measured_ns;
      total_model = row.model_cost;
    }
  }
  for (const PhaseSummaryRow& row : summary.rows) {
    table.start_row()
        .cell(row.label)
        .cell(row.steps)
        .cell(static_cast<double>(row.measured_ns) / 1000.0, 1)
        .cell(total_ns > 0 ? 100.0 * static_cast<double>(row.measured_ns) /
                                 static_cast<double>(total_ns)
                           : 0.0,
              1)
        .cell(row.model_cost, 1)
        .cell(total_model > 0.0 ? 100.0 * row.model_cost / total_model : 0.0, 1);
  }
  table.print(os);
  os << "telemetry: " << summary.streams << " stream(s), " << summary.dropped_events
     << " dropped event(s)\n";
  if (summary.dropped_events > 0) {
    os << "WARNING: the trace is incomplete (" << summary.dropped_events
       << " event(s) dropped) — phase extents above undercount; raise "
          "ObsOptions::events_per_thread\n";
  }
}

}  // namespace torex
