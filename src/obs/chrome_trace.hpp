// Chrome trace-event export and the measured-vs-model phase summary.
//
// A Telemetry snapshot becomes a `chrome://tracing` / Perfetto loadable
// JSON document: one process per torus node (pid 0 is the run scope),
// one thread per recording stream, duration events for spans, instant
// events for point occurrences, and counter tracks for sampled values.
//
// The same snapshot, joined with the schedule's ExchangeTrace, yields a
// per-phase summary: measured wall time next to the paper's
// four-parameter model prediction (each step priced as
// t_s + B*m*t_c + h*t_l, rearrangement as passes*blocks*m*rho), so
// measured-vs-predicted skew is visible side by side.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "costmodel/params.hpp"
#include "obs/recorder.hpp"

namespace torex {

/// A matched begin/end pair recovered from a snapshot's event stream.
struct SpanInstance {
  std::string name;
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  int tid = 0;
  std::int32_t node = -1;
  std::int32_t phase = 0;
  std::int32_t step = 0;

  std::int64_t duration_ns() const { return end_ns - begin_ns; }
};

/// Pairs kBegin/kEnd events into spans. Matching is per (tid, name,
/// node, phase, step) in LIFO order, which handles recursive same-name
/// nesting; unmatched begins are closed at the snapshot's wall_ns so a
/// crashed or stalled span still shows its extent.
std::vector<SpanInstance> pair_spans(const Telemetry& telemetry);

/// Writes the snapshot as a Chrome trace-event JSON object
/// (`{"traceEvents": [...]}`). pid = node + 1 (0 = run scope),
/// tid = recording stream, ts in microseconds.
void write_chrome_trace(std::ostream& os, const Telemetry& telemetry);

/// write_chrome_trace into a string.
std::string chrome_trace_json(const Telemetry& telemetry);

/// Minimal strict JSON well-formedness check (RFC 8259 grammar, no
/// semantics). Used by tests and tools to validate emitted traces
/// without an external parser. On failure returns false and, when
/// `error` is non-null, stores a byte offset + reason message.
bool json_well_formed(const std::string& text, std::string* error = nullptr);

/// One row of the measured-vs-model summary.
struct PhaseSummaryRow {
  std::string label;            ///< "phase 1", ..., "rearrangement", "total"
  std::int64_t steps = 0;       ///< schedule steps in this phase
  std::int64_t measured_ns = 0; ///< wall extent of this phase's spans
  double model_cost = 0.0;      ///< four-parameter model prediction (unitless)
};

/// Per-phase join of telemetry against the schedule trace and model.
struct PhaseSummary {
  std::vector<PhaseSummaryRow> rows;  ///< per phase, then rearrangement, then total
  std::int64_t dropped_events = 0;
  int streams = 0;
};

/// Builds the summary: measured time per phase (max end - min begin over
/// that phase's spans, so both sequential and parallel runs attribute
/// correctly) against the model cost of the same phase's trace steps.
/// The rearrangement row prices the trace's recorded passes; summing
/// the model column reproduces the paper's Table 1 totals.
PhaseSummary summarize_vs_model(const Telemetry& telemetry, const ExchangeTrace& trace,
                                const CostParams& params);

/// Prints the summary as an aligned text table with share-of-total
/// percentages for both the measured and model columns.
void print_phase_summary(std::ostream& os, const PhaseSummary& summary);

}  // namespace torex
