#include "obs/exposition.hpp"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace torex {

namespace {

bool valid_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool valid_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool valid_label_key_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool valid_label_key_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Prometheus label-value escaping: backslash, double quote, newline.
void append_escaped_label_value(std::string& out, const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_labels(std::string& out, const MetricLabels& labels) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += sanitize_metric_name(key);
    out += "=\"";
    append_escaped_label_value(out, value);
    out += '"';
  }
  out += '}';
}

/// Labels plus one extra pair (for the histogram `le` dimension).
void append_labels_plus(std::string& out, const MetricLabels& labels, const std::string& key,
                        const std::string& value) {
  MetricLabels extended = labels;
  extended.emplace_back(key, value);
  append_labels(out, extended);
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_json_labels(std::string& out, const MetricLabels& labels) {
  out += "\"labels\":{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, key);
    out += "\":\"";
    append_json_escaped(out, value);
    out += '"';
  }
  out += '}';
}

}  // namespace

std::string sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    out += valid_name_char(c) ? c : '_';
  }
  if (out.empty() || !valid_name_start(out[0])) out.insert(out.begin(), '_');
  return out;
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  out += "# torex-exposition-version " + std::to_string(kExpositionVersion) + "\n";

  const std::string* last_family = nullptr;
  for (const auto& c : snapshot.counters) {
    const std::string sname = sanitize_metric_name(c.name);
    if (last_family == nullptr || *last_family != c.name) {
      out += "# TYPE " + sname + " counter\n";
      last_family = &c.name;
    }
    out += sname;
    append_labels(out, c.labels);
    out += ' ';
    out += std::to_string(c.value);
    out += '\n';
  }
  last_family = nullptr;
  for (const auto& g : snapshot.gauges) {
    const std::string sname = sanitize_metric_name(g.name);
    if (last_family == nullptr || *last_family != g.name) {
      out += "# TYPE " + sname + " gauge\n";
      last_family = &g.name;
    }
    out += sname;
    append_labels(out, g.labels);
    out += ' ';
    out += std::to_string(g.value);
    out += '\n';
  }
  last_family = nullptr;
  for (const auto& h : snapshot.histograms) {
    const std::string sname = sanitize_metric_name(h.name);
    if (last_family == nullptr || *last_family != h.name) {
      out += "# TYPE " + sname + " histogram\n";
      last_family = &h.name;
    }
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      out += sname + "_bucket";
      append_labels_plus(out, h.labels, "le", std::to_string(h.bounds[i]));
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += sname + "_bucket";
    append_labels_plus(out, h.labels, "le", "+Inf");
    out += ' ';
    out += std::to_string(h.count);
    out += '\n';
    out += sname + "_sum";
    append_labels(out, h.labels);
    out += ' ';
    out += std::to_string(h.sum);
    out += '\n';
    out += sname + "_count";
    append_labels(out, h.labels);
    out += ' ';
    out += std::to_string(h.count);
    out += '\n';
  }
  return out;
}

std::string json_snapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  out += "{\"version\":" + std::to_string(kExpositionVersion);
  out += ",\"counters\":[";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    if (i) out += ',';
    out += "{\"name\":\"";
    append_json_escaped(out, c.name);
    out += "\",";
    append_json_labels(out, c.labels);
    out += ",\"value\":" + std::to_string(c.value) + "}";
  }
  out += "],\"gauges\":[";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    if (i) out += ',';
    out += "{\"name\":\"";
    append_json_escaped(out, g.name);
    out += "\",";
    append_json_labels(out, g.labels);
    out += ",\"value\":" + std::to_string(g.value) + "}";
  }
  out += "],\"histograms\":[";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i) out += ',';
    out += "{\"name\":\"";
    append_json_escaped(out, h.name);
    out += "\",";
    append_json_labels(out, h.labels);
    out += ",\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b) out += ',';
      out += std::to_string(h.bounds[b]);
    }
    out += "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b) out += ',';
      out += std::to_string(h.counts[b]);
    }
    out += "],\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"min\":" + std::to_string(h.min);
    out += ",\"max\":" + std::to_string(h.max) + "}";
  }
  out += "]}";
  return out;
}

namespace {

bool fail_at(std::string* error, std::size_t line_no, const std::string& why) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + why;
  }
  return false;
}

}  // namespace

bool parse_prometheus_text(const std::string& text, std::vector<PromSample>* out,
                           std::string* error, int* version_out) {
  if (version_out != nullptr) *version_out = 0;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  const std::string version_prefix = "# torex-exposition-version ";
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (version_out != nullptr && line.compare(0, version_prefix.size(), version_prefix) == 0) {
        *version_out = std::atoi(line.c_str() + version_prefix.size());
      }
      continue;
    }
    PromSample sample;
    std::size_t i = 0;
    // -- metric name --
    if (!valid_name_start(line[i])) return fail_at(error, line_no, "bad metric name start");
    while (i < line.size() && valid_name_char(line[i])) ++i;
    sample.name = line.substr(0, i);
    // -- optional label set --
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (true) {
        if (i >= line.size()) return fail_at(error, line_no, "unterminated label set");
        if (line[i] == '}') {
          ++i;
          break;
        }
        const std::size_t key_start = i;
        if (!valid_label_key_start(line[i])) return fail_at(error, line_no, "bad label key");
        while (i < line.size() && valid_label_key_char(line[i])) ++i;
        const std::string key = line.substr(key_start, i - key_start);
        if (i + 1 >= line.size() || line[i] != '=' || line[i + 1] != '"') {
          return fail_at(error, line_no, "label '" + key + "' missing =\"value\"");
        }
        i += 2;
        std::string value;
        while (true) {
          if (i >= line.size()) return fail_at(error, line_no, "unterminated label value");
          const char c = line[i];
          if (c == '"') {
            ++i;
            break;
          }
          if (c == '\\') {
            if (i + 1 >= line.size()) return fail_at(error, line_no, "dangling escape");
            const char esc = line[i + 1];
            if (esc == '\\') value += '\\';
            else if (esc == '"') value += '"';
            else if (esc == 'n') value += '\n';
            else return fail_at(error, line_no, "unknown escape in label value");
            i += 2;
            continue;
          }
          value += c;
          ++i;
        }
        sample.labels.emplace_back(key, std::move(value));
        if (i < line.size() && line[i] == ',') ++i;
      }
    }
    // -- value --
    if (i >= line.size() || line[i] != ' ') return fail_at(error, line_no, "missing value");
    ++i;
    const std::string value_str = line.substr(i);
    if (value_str.empty()) return fail_at(error, line_no, "missing value");
    if (value_str == "+Inf") {
      sample.value = std::numeric_limits<double>::infinity();
    } else if (value_str == "-Inf") {
      sample.value = -std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      sample.value = std::strtod(value_str.c_str(), &end);
      if (end == value_str.c_str() || *end != '\0') {
        return fail_at(error, line_no, "bad sample value '" + value_str + "'");
      }
    }
    if (out != nullptr) out->push_back(std::move(sample));
  }
  return true;
}

bool prometheus_text_well_formed(const std::string& text, std::string* error) {
  return parse_prometheus_text(text, nullptr, error, nullptr);
}

}  // namespace torex
