// Metrics exposition: serialize a MetricsSnapshot for consumption
// outside the process.
//
// Two wire formats, both versioned and both deterministic (the output
// is a pure function of the snapshot — no wall-clock timestamps — so
// golden tests can compare bytes):
//
//   * Prometheus text (prometheus_text): one sample per line,
//     `name{key="value"} value`. Metric names are sanitized to the
//     Prometheus charset (dots become underscores: `svc.offered` is
//     exposed as `svc_offered`); labels survive verbatim (escaped).
//     Histograms follow the Prometheus convention: cumulative
//     `_bucket{le="..."}` series ending at `le="+Inf"`, plus `_sum`
//     and `_count`. The first line is always the version comment
//     `# torex-exposition-version N`. This is the format the live
//     snapshot file uses (svc_loadgen --snapshot / torex_top): it is
//     line-oriented, so a partial read fails loudly in the parser
//     instead of silently truncating a nested structure.
//
//   * JSON (json_snapshot): `{"version":N,"counters":[...],...}` with
//     original (unsanitized) metric names, for programmatic consumers.
//     Validated by json_well_formed in tests.
//
// parse_prometheus_text is the inverse of prometheus_text for scalar
// samples (every line becomes a PromSample; histogram series appear
// under their exploded `_bucket`/`_sum`/`_count` names) and doubles as
// the format linter via prometheus_text_well_formed.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace torex {

/// Version stamped into both exposition formats. Bump when the
/// encoding of existing series changes (adding series is not a bump).
inline constexpr int kExpositionVersion = 1;

/// Maps a `subsystem.quantity` metric name into the Prometheus name
/// charset [a-zA-Z_:][a-zA-Z0-9_:]*: dots and other invalid characters
/// become underscores; a leading digit gains a '_' prefix.
std::string sanitize_metric_name(const std::string& name);

/// Renders the snapshot in Prometheus text format (see file comment).
std::string prometheus_text(const MetricsSnapshot& snapshot);

/// Renders the snapshot as a versioned JSON document.
std::string json_snapshot(const MetricsSnapshot& snapshot);

/// One parsed sample line of a Prometheus text exposition.
struct PromSample {
  std::string name;
  MetricLabels labels;
  double value = 0.0;
};

/// Parses Prometheus text into samples. Comment and blank lines are
/// skipped; `# torex-exposition-version N` sets `version_out` when
/// non-null (0 when the comment is absent). Returns false and sets
/// `error` (when non-null) on the first malformed line.
bool parse_prometheus_text(const std::string& text, std::vector<PromSample>* out,
                           std::string* error = nullptr, int* version_out = nullptr);

/// Format linter: true iff every line of `text` parses.
bool prometheus_text_well_formed(const std::string& text, std::string* error = nullptr);

}  // namespace torex
