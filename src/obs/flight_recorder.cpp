#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/assert.hpp"

namespace torex {

namespace {

constexpr int kDumpVersion = 1;

/// Reasons and repro lines are single lines in the dump; fold any
/// embedded newline so the line-oriented parser stays honest.
std::string one_line(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void FlightRecorderOptions::validate() const {
  TOREX_REQUIRE(ring_capacity >= 2, "flight recorder ring needs at least 2 slots");
  TOREX_REQUIRE(max_sessions >= 1, "flight recorder must track at least one session");
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options) : options_(options) {
  options_.validate();
}

FlightRecorder::Ring& FlightRecorder::ring_for(std::int64_t session) {
  auto it = rings_.find(session);
  if (it != rings_.end()) return it->second;
  if (rings_.size() >= options_.max_sessions) {
    // Evict the longest-tracked ring; live sessions re-create theirs
    // on the next note, so the cap bounds memory, not correctness.
    auto oldest = rings_.begin();
    for (auto r = rings_.begin(); r != rings_.end(); ++r) {
      if (r->second.created < oldest->second.created) oldest = r;
    }
    rings_.erase(oldest);
  }
  Ring& ring = rings_[session];
  ring.created = created_seq_++;
  return ring;
}

void FlightRecorder::note(std::int64_t session, const char* name, std::int64_t tick, int phase,
                          int step, std::int64_t value) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lk(mu_);
  Ring& ring = ring_for(session);
  Slot slot;
  slot.name = name;
  slot.tick = tick;
  slot.phase = phase;
  slot.step = step;
  slot.value = value;
  if (ring.slots.size() < options_.ring_capacity) {
    ring.slots.push_back(slot);
  } else {
    ring.slots[static_cast<std::size_t>(ring.total) % options_.ring_capacity] = slot;
  }
  ++ring.total;
}

std::int64_t FlightRecorder::recorded(std::int64_t session) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = rings_.find(session);
  return it == rings_.end() ? 0 : it->second.total;
}

std::int64_t FlightRecorder::dropped(std::int64_t session) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = rings_.find(session);
  if (it == rings_.end()) return 0;
  return it->second.total - static_cast<std::int64_t>(it->second.slots.size());
}

std::vector<FlightEvent> FlightRecorder::events(std::int64_t session) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<FlightEvent> out;
  const auto it = rings_.find(session);
  if (it == rings_.end()) return out;
  const Ring& ring = it->second;
  const std::int64_t kept = static_cast<std::int64_t>(ring.slots.size());
  out.reserve(static_cast<std::size_t>(kept));
  for (std::int64_t i = 0; i < kept; ++i) {
    const std::int64_t seq = ring.total - kept + i;
    const Slot& slot = ring.slots[static_cast<std::size_t>(seq) % options_.ring_capacity];
    FlightEvent event;
    event.seq = seq;
    event.tick = slot.tick;
    event.phase = slot.phase;
    event.step = slot.step;
    event.value = slot.value;
    event.name = slot.name;
    out.push_back(std::move(event));
  }
  return out;
}

std::string FlightRecorder::dump(std::int64_t session, const std::string& reason,
                                 const std::string& health_table,
                                 const std::string& repro) const {
  const std::vector<FlightEvent> tail = events(session);
  const std::int64_t total = recorded(session);
  std::string out;
  out += "flight-recorder v" + std::to_string(kDumpVersion) + "\n";
  out += "session " + std::to_string(session) + "\n";
  out += "reason " + one_line(reason) + "\n";
  out += "events " + std::to_string(tail.size()) + " recorded " + std::to_string(total) +
         " dropped " + std::to_string(total - static_cast<std::int64_t>(tail.size())) + "\n";
  for (const FlightEvent& e : tail) {
    out += "event seq=" + std::to_string(e.seq) + " tick=" + std::to_string(e.tick) +
           " phase=" + std::to_string(e.phase) + " step=" + std::to_string(e.step) +
           " value=" + std::to_string(e.value) + " name=" + e.name + "\n";
  }
  std::vector<std::string> health_lines;
  std::size_t pos = 0;
  while (pos < health_table.size()) {
    std::size_t eol = health_table.find('\n', pos);
    if (eol == std::string::npos) eol = health_table.size();
    health_lines.push_back(health_table.substr(pos, eol - pos));
    pos = eol + 1;
  }
  while (!health_lines.empty() && health_lines.back().empty()) health_lines.pop_back();
  out += "health " + std::to_string(health_lines.size()) + "\n";
  for (const std::string& line : health_lines) out += line + "\n";
  out += "repro " + one_line(repro) + "\n";
  out += "end flight-recorder\n";
  return out;
}

void FlightRecorder::forget(std::int64_t session) {
  std::lock_guard<std::mutex> lk(mu_);
  rings_.erase(session);
}

std::size_t FlightRecorder::tracked_sessions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rings_.size();
}

namespace {

struct LineReader {
  const std::string& text;
  std::size_t pos = 0;
  std::size_t line_no = 0;

  bool next(std::string& out) {
    if (pos >= text.size()) return false;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    out = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    return true;
  }
};

bool dump_fail(std::string* error, std::size_t line_no, const std::string& why) {
  if (error != nullptr) *error = "line " + std::to_string(line_no) + ": " + why;
  return false;
}

/// Consumes "<key> <int64>" out of `line` starting at `at`; advances
/// `at` past the parsed number.
bool take_kv_int(const std::string& line, std::size_t& at, const std::string& key,
                 std::int64_t& out) {
  const std::string want = key + " ";
  if (line.compare(at, want.size(), want) != 0) return false;
  at += want.size();
  char* end = nullptr;
  out = std::strtoll(line.c_str() + at, &end, 10);
  if (end == line.c_str() + at) return false;
  at = static_cast<std::size_t>(end - line.c_str());
  if (at < line.size() && line[at] == ' ') ++at;
  return true;
}

/// Parses "key=<int64>" fields of an event line.
bool take_field_int(const std::string& line, std::size_t& at, const std::string& key,
                    std::int64_t& out) {
  const std::string want = key + "=";
  if (line.compare(at, want.size(), want) != 0) return false;
  at += want.size();
  char* end = nullptr;
  out = std::strtoll(line.c_str() + at, &end, 10);
  if (end == line.c_str() + at) return false;
  at = static_cast<std::size_t>(end - line.c_str());
  if (at < line.size() && line[at] == ' ') ++at;
  return true;
}

}  // namespace

bool parse_flight_dump(const std::string& text, FlightDump* out, std::string* error) {
  FlightDump dump;
  LineReader reader{text};
  std::string line;

  if (!reader.next(line) || line.compare(0, 17, "flight-recorder v") != 0) {
    return dump_fail(error, reader.line_no, "missing 'flight-recorder v<N>' header");
  }
  dump.version = std::atoi(line.c_str() + 17);
  if (dump.version != kDumpVersion) {
    return dump_fail(error, reader.line_no, "unsupported dump version " + line.substr(17));
  }

  if (!reader.next(line)) return dump_fail(error, reader.line_no, "truncated before session");
  {
    std::size_t at = 0;
    if (!take_kv_int(line, at, "session", dump.session) || at != line.size()) {
      return dump_fail(error, reader.line_no, "expected 'session <id>'");
    }
  }

  if (!reader.next(line) || line.compare(0, 7, "reason ") != 0) {
    return dump_fail(error, reader.line_no, "expected 'reason <text>'");
  }
  dump.reason = line.substr(7);

  if (!reader.next(line)) return dump_fail(error, reader.line_no, "truncated before events");
  std::int64_t event_count = 0;
  {
    std::size_t at = 0;
    if (!take_kv_int(line, at, "events", event_count) ||
        !take_kv_int(line, at, "recorded", dump.recorded) ||
        !take_kv_int(line, at, "dropped", dump.dropped)) {
      return dump_fail(error, reader.line_no, "expected 'events N recorded N dropped N'");
    }
  }
  if (event_count < 0 || dump.dropped != dump.recorded - event_count) {
    return dump_fail(error, reader.line_no, "event accounting does not balance");
  }

  for (std::int64_t i = 0; i < event_count; ++i) {
    if (!reader.next(line) || line.compare(0, 6, "event ") != 0) {
      return dump_fail(error, reader.line_no, "expected event line");
    }
    FlightEvent event;
    std::size_t at = 6;
    std::int64_t phase = 0, step = 0;
    if (!take_field_int(line, at, "seq", event.seq) ||
        !take_field_int(line, at, "tick", event.tick) ||
        !take_field_int(line, at, "phase", phase) || !take_field_int(line, at, "step", step) ||
        !take_field_int(line, at, "value", event.value)) {
      return dump_fail(error, reader.line_no, "malformed event fields");
    }
    event.phase = static_cast<int>(phase);
    event.step = static_cast<int>(step);
    if (line.compare(at, 5, "name=") != 0) {
      return dump_fail(error, reader.line_no, "event missing name");
    }
    event.name = line.substr(at + 5);
    if (event.name.empty()) return dump_fail(error, reader.line_no, "empty event name");
    if (!dump.events.empty() && event.seq != dump.events.back().seq + 1) {
      return dump_fail(error, reader.line_no, "event seq not contiguous");
    }
    dump.events.push_back(std::move(event));
  }

  if (!reader.next(line)) return dump_fail(error, reader.line_no, "truncated before health");
  std::int64_t health_count = 0;
  {
    std::size_t at = 0;
    if (!take_kv_int(line, at, "health", health_count) || at != line.size() || health_count < 0) {
      return dump_fail(error, reader.line_no, "expected 'health <line-count>'");
    }
  }
  for (std::int64_t i = 0; i < health_count; ++i) {
    if (!reader.next(line)) return dump_fail(error, reader.line_no, "truncated health table");
    dump.health.push_back(line);
  }

  if (!reader.next(line) || line.compare(0, 6, "repro ") != 0) {
    return dump_fail(error, reader.line_no, "expected 'repro <command>'");
  }
  dump.repro = line.substr(6);

  if (!reader.next(line) || line != "end flight-recorder") {
    return dump_fail(error, reader.line_no, "missing 'end flight-recorder' trailer");
  }

  if (out != nullptr) *out = std::move(dump);
  return true;
}

}  // namespace torex
