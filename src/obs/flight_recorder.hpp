// Flight recorder: the service's "black box". A bounded ring of the
// most recent events per session, always on (the rings are a few
// hundred bytes each), consulted only when something goes wrong —
// session failure, deadline miss, breaker trip, or a chaos-harness
// FAIL — at which point the owning SessionManager renders a dump that
// correlates the session's last scheduler/wire/health events with the
// breaker table and a one-command repro line.
//
// Unlike the Recorder (per-thread lock-free streams sized for full
// traces), the flight recorder optimizes for bounded memory and a
// useful tail: each note overwrites the oldest slot once the ring is
// full, and the drop count says how much history was shed. Event
// names must be string literals (stored as pointers, the same
// contract as Recorder); ticks are the manager's fault ticks, so dump
// lines line up with the health registry's windows.
//
// The dump is line-oriented text, machine-parseable by
// parse_flight_dump — torex_verify uses that to assert every injected
// failure produced a dump whose final events match the failing
// phase/step. See docs/observability.md for the dump anatomy.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace torex {

struct FlightRecorderOptions {
  bool enabled = true;          ///< rings record; disabled = every note is a no-op
  std::size_t ring_capacity = 128;  ///< events retained per session
  std::size_t max_sessions = 4096;  ///< rings tracked at once; oldest ring evicted

  void validate() const;
};

/// One recorded (or parsed-back) flight event.
struct FlightEvent {
  std::int64_t seq = 0;   ///< 0-based index of the note within its session
  std::int64_t tick = 0;  ///< manager fault tick at note time
  int phase = 0;
  int step = 0;
  std::int64_t value = 0;
  std::string name;
};

/// Parsed form of one dump, produced by parse_flight_dump.
struct FlightDump {
  int version = 0;
  std::int64_t session = -1;
  std::string reason;
  std::int64_t recorded = 0;  ///< notes ever made for the session
  std::int64_t dropped = 0;   ///< notes overwritten before the dump
  std::vector<FlightEvent> events;   ///< surviving tail, oldest first
  std::vector<std::string> health;   ///< breaker table lines, verbatim
  std::string repro;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  bool enabled() const { return options_.enabled; }
  const FlightRecorderOptions& options() const { return options_; }

  /// Appends one event to the session's ring (overwriting the oldest
  /// once full). `name` must be a string literal or otherwise outlive
  /// the recorder.
  void note(std::int64_t session, const char* name, std::int64_t tick, int phase = 0,
            int step = 0, std::int64_t value = 0);

  /// Notes ever made / overwritten for the session (0 for unknown ids).
  std::int64_t recorded(std::int64_t session) const;
  std::int64_t dropped(std::int64_t session) const;

  /// The surviving tail, oldest first.
  std::vector<FlightEvent> events(std::int64_t session) const;

  /// Renders the session's black box: reason, event tail, the health
  /// breaker table (verbatim, may be empty), and the repro line.
  /// Parseable by parse_flight_dump.
  std::string dump(std::int64_t session, const std::string& reason,
                   const std::string& health_table, const std::string& repro) const;

  /// Releases the session's ring (retired sessions stop costing memory).
  void forget(std::int64_t session);

  /// Rings currently tracked.
  std::size_t tracked_sessions() const;

 private:
  struct Slot {
    const char* name = "";
    std::int64_t tick = 0;
    int phase = 0;
    int step = 0;
    std::int64_t value = 0;
  };
  struct Ring {
    std::vector<Slot> slots;
    std::int64_t total = 0;    ///< notes ever made
    std::int64_t created = 0;  ///< insertion order, for eviction
  };

  Ring& ring_for(std::int64_t session);  // mu_ held

  mutable std::mutex mu_;
  FlightRecorderOptions options_;
  std::map<std::int64_t, Ring> rings_;
  std::int64_t created_seq_ = 0;
};

/// Parses a FlightRecorder::dump back into structured form. Returns
/// false and sets `error` (when non-null) on malformed input.
bool parse_flight_dump(const std::string& text, FlightDump* out, std::string* error = nullptr);

}  // namespace torex
