#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace torex {

Histogram::Histogram(std::vector<std::int64_t> upper_bounds) : bounds_(std::move(upper_bounds)) {
  TOREX_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    TOREX_REQUIRE(bounds_[i - 1] < bounds_[i], "histogram bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(std::int64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // First observation seeds min/max; later ones CAS toward the extremes.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
    return;
  }
  std::int64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::int64_t Histogram::min() const { return min_.load(std::memory_order_relaxed); }
std::int64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

std::int64_t MetricsSnapshot::counter_value(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge_value(const std::string& name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0) {
    throw std::logic_error("metric '" + name + "' already registered with another kind");
  }
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    throw std::logic_error("metric '" + name + "' already registered with another kind");
  }
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::int64_t> upper_bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    throw std::logic_error("metric '" + name + "' already registered with another kind");
  }
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, metric] : counters_) {
    out.counters.push_back({name, metric->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, metric] : gauges_) {
    out.gauges.push_back({name, metric->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, metric] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = metric->bounds();
    h.counts = metric->bucket_counts();
    h.count = metric->count();
    h.sum = metric->sum();
    h.min = metric->min();
    h.max = metric->max();
    out.histograms.push_back(std::move(h));
  }
  return out;  // std::map iteration is already name-sorted
}

std::vector<std::int64_t> default_latency_bounds_ns() {
  // 1us, 2us, 4us, ... ~1s (21 octaves).
  std::vector<std::int64_t> bounds;
  for (std::int64_t b = 1000; b <= 1'048'576'000; b *= 2) bounds.push_back(b);
  return bounds;
}

}  // namespace torex
