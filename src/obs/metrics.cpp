#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace torex {

MetricLabels canonical_labels(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    TOREX_REQUIRE(!labels[i].first.empty(), "metric label keys must be non-empty");
    TOREX_REQUIRE(i == 0 || labels[i - 1].first != labels[i].first,
                  "metric label keys must be unique");
  }
  return labels;
}

Histogram::Histogram(std::vector<std::int64_t> upper_bounds) : bounds_(std::move(upper_bounds)) {
  TOREX_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    TOREX_REQUIRE(bounds_[i - 1] < bounds_[i], "histogram bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(std::int64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // First observation seeds min/max; later ones CAS toward the extremes.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
    return;
  }
  std::int64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::int64_t Histogram::min() const { return min_.load(std::memory_order_relaxed); }
std::int64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

namespace {

/// Shared estimator behind Histogram::percentile and
/// HistogramSnapshot::percentile: walk the cumulative buckets to the
/// one covering rank q*count, then interpolate linearly between its
/// edges (the first bucket starts at the observed min, the overflow
/// bucket ends at the observed max).
double percentile_from_buckets(const std::vector<std::int64_t>& bounds,
                               const std::vector<std::int64_t>& counts, std::int64_t count,
                               std::int64_t min, std::int64_t max, double q) {
  if (count <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  if (target <= 0.0) return static_cast<double>(min);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double c = static_cast<double>(counts[i]);
    if (c <= 0.0) continue;
    if (cum + c >= target) {
      double lo = i == 0 ? static_cast<double>(min) : static_cast<double>(bounds[i - 1]);
      double hi = i < bounds.size() ? static_cast<double>(bounds[i]) : static_cast<double>(max);
      lo = std::min(lo, hi);
      const double frac = (target - cum) / c;
      return lo + (hi - lo) * frac;
    }
    cum += c;
  }
  return static_cast<double>(max);
}

}  // namespace

double Histogram::percentile(double q) const {
  return percentile_from_buckets(bounds_, bucket_counts(), count(), min(), max(), q);
}

double HistogramSnapshot::percentile(double q) const {
  return percentile_from_buckets(bounds, counts, count, min, max, q);
}

std::int64_t MetricsSnapshot::counter_value(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name && c.labels.empty()) return c.value;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge_value(const std::string& name) const {
  for (const auto& g : gauges) {
    if (g.name == name && g.labels.empty()) return g.value;
  }
  return 0;
}

std::int64_t MetricsSnapshot::counter_value(const std::string& name, MetricLabels labels) const {
  const MetricLabels want = canonical_labels(std::move(labels));
  for (const auto& c : counters) {
    if (c.name == name && c.labels == want) return c.value;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge_value(const std::string& name, MetricLabels labels) const {
  const MetricLabels want = canonical_labels(std::move(labels));
  for (const auto& g : gauges) {
    if (g.name == name && g.labels == want) return g.value;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(const std::string& name,
                                                    MetricLabels labels) const {
  const MetricLabels want = canonical_labels(std::move(labels));
  for (const auto& h : histograms) {
    if (h.name == name && h.labels == want) return &h;
  }
  return nullptr;
}

void MetricsRegistry::check_kind(const std::string& name, char kind) const {
  const auto it = kinds_.find(name);
  if (it != kinds_.end() && it->second != kind) {
    throw std::logic_error("metric '" + name + "' already registered with another kind");
  }
}

Counter& MetricsRegistry::counter(const std::string& name, MetricLabels labels) {
  Key key{name, canonical_labels(std::move(labels))};
  std::lock_guard<std::mutex> lk(mu_);
  check_kind(name, 'c');
  auto& slot = counters_[std::move(key)];
  if (!slot) {
    kinds_[name] = 'c';
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, MetricLabels labels) {
  Key key{name, canonical_labels(std::move(labels))};
  std::lock_guard<std::mutex> lk(mu_);
  check_kind(name, 'g');
  auto& slot = gauges_[std::move(key)];
  if (!slot) {
    kinds_[name] = 'g';
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::int64_t> upper_bounds,
                                      MetricLabels labels) {
  Key key{name, canonical_labels(std::move(labels))};
  std::lock_guard<std::mutex> lk(mu_);
  check_kind(name, 'h');
  auto& slot = histograms_[std::move(key)];
  if (!slot) {
    kinds_[name] = 'h';
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [key, metric] : counters_) {
    out.counters.push_back({key.first, key.second, metric->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [key, metric] : gauges_) {
    out.gauges.push_back({key.first, key.second, metric->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [key, metric] : histograms_) {
    HistogramSnapshot h;
    h.name = key.first;
    h.labels = key.second;
    h.bounds = metric->bounds();
    h.counts = metric->bucket_counts();
    h.count = metric->count();
    h.sum = metric->sum();
    h.min = metric->min();
    h.max = metric->max();
    out.histograms.push_back(std::move(h));
  }
  return out;  // std::map iteration is already (name, labels)-sorted
}

std::vector<std::int64_t> default_latency_bounds_ns() {
  // 1us, 2us, 4us, ... ~1s (21 octaves).
  std::vector<std::int64_t> bounds;
  for (std::int64_t b = 1000; b <= 1'048'576'000; b *= 2) bounds.push_back(b);
  return bounds;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace torex
