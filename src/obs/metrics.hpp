// Metrics registry: named counters, gauges, and fixed-bucket latency
// histograms for the runtime telemetry layer.
//
// The registry hands out stable references — a metric, once created,
// lives as long as its registry, so instrumentation sites can look a
// metric up once and update it lock-free afterwards (all updates are
// relaxed atomics; registration takes the registry mutex). A snapshot
// copies every metric's current value into plain structs, sorted by
// name, for reports and the Chrome-trace summary.
//
// Metrics may carry labels: a sorted set of key=value dimensions
// (tenant, session, phase, resource) that split one logical series
// into a family. Two metrics with the same name but different labels
// are distinct instruments; a name owns exactly one kind across all of
// its label sets. The unlabeled metric `counter("x")` is the same
// instrument as `counter("x", {})`.
//
// Metric names follow a `subsystem.quantity` convention; the glossary
// lives in docs/observability.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace torex {

/// Label dimensions of one metric, canonically sorted by key.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Sorts labels by key and rejects empty or duplicate keys. Every
/// registry entry point canonicalizes, so call sites may pass labels
/// in any order.
MetricLabels canonical_labels(MetricLabels labels);

/// Monotonically increasing count (events, retransmits, blocks moved).
class Counter {
 public:
  void add(std::int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value (in-flight transfers, armed
/// watchdog deadline).
class Gauge {
 public:
  void set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: bucket i counts observations with
/// value <= bounds[i] (first matching bucket); anything above the last
/// bound lands in the implicit overflow bucket. Tracks count/sum/min/max
/// alongside the buckets so snapshots can report means and extremes.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<std::int64_t> upper_bounds);

  void observe(std::int64_t value);

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::int64_t> bucket_counts() const;
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Min/max over observations; 0 when empty.
  std::int64_t min() const;
  std::int64_t max() const;

  /// q-th quantile (q in [0,1]) estimated by linear interpolation
  /// inside the covering bucket; the overflow bucket interpolates up
  /// to the observed max. 0 when empty.
  double percentile(double q) const;

 private:
  std::vector<std::int64_t> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Point-in-time copy of one metric.
struct CounterSnapshot {
  std::string name;
  MetricLabels labels;
  std::int64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  MetricLabels labels;
  std::int64_t value = 0;
};
struct HistogramSnapshot {
  std::string name;
  MetricLabels labels;
  std::vector<std::int64_t> bounds;
  std::vector<std::int64_t> counts;  ///< bounds.size() + 1 (overflow last)
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;

  double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  /// Same estimator as Histogram::percentile, over the copied buckets.
  double percentile(double q) const;
};

/// Every metric of a registry at one instant, each family sorted by
/// (name, labels).
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Unlabeled counter value by name; 0 when absent (convenient in
  /// tests/tools). Labeled entries of the same name are not summed.
  std::int64_t counter_value(const std::string& name) const;
  /// Unlabeled gauge value by name; 0 when absent.
  std::int64_t gauge_value(const std::string& name) const;
  /// Labeled lookups; 0 when absent. Labels may be given in any order.
  std::int64_t counter_value(const std::string& name, MetricLabels labels) const;
  std::int64_t gauge_value(const std::string& name, MetricLabels labels) const;
  /// Histogram by (name, labels); nullptr when absent.
  const HistogramSnapshot* histogram(const std::string& name, MetricLabels labels = {}) const;
};

/// (name, labels) -> metric map with find-or-create semantics. A name
/// owns one kind across all label sets; creating two metrics of
/// different kinds under one name throws std::logic_error.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, MetricLabels labels = {});
  Gauge& gauge(const std::string& name, MetricLabels labels = {});
  /// `upper_bounds` is used on first creation; later lookups of the same
  /// (name, labels) ignore it (bounds are fixed for the histogram's
  /// lifetime).
  Histogram& histogram(const std::string& name, std::vector<std::int64_t> upper_bounds,
                       MetricLabels labels = {});

  MetricsSnapshot snapshot() const;

 private:
  using Key = std::pair<std::string, MetricLabels>;
  void check_kind(const std::string& name, char kind) const;  // mu_ held

  mutable std::mutex mu_;
  std::map<std::string, char> kinds_;  ///< 'c' / 'g' / 'h' per family name
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

/// Default bucket edges for nanosecond latencies: 1us .. ~1s in octaves.
std::vector<std::int64_t> default_latency_bounds_ns();

/// q-th quantile (q in [0,1]) of raw samples with linear interpolation
/// between order statistics — the one percentile definition shared by
/// the benches and tools. 0 when empty.
double percentile(std::vector<double> values, double q);

}  // namespace torex
