#include "obs/recorder.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <thread>

namespace torex {

namespace {

/// Bounded single-writer event buffer. The owning thread appends with a
/// release publish; the merge reads the published prefix with acquire.
/// Preallocated — the hot path never allocates, never locks.
class EventBuffer {
 public:
  EventBuffer(std::size_t capacity, int tid)
      : events_(std::make_unique<Event[]>(capacity)), capacity_(capacity), tid_(tid) {}

  void push(const Event& event) {
    const std::size_t at = size_.load(std::memory_order_relaxed);
    if (at >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events_[at] = event;
    size_.store(at + 1, std::memory_order_release);
  }

  std::size_t published() const { return size_.load(std::memory_order_acquire); }
  const Event& at(std::size_t i) const { return events_[i]; }
  std::int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  int tid() const { return tid_; }

 private:
  std::unique_ptr<Event[]> events_;
  const std::size_t capacity_;
  const int tid_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::int64_t> dropped_{0};
};

/// Thread-local fast path: the buffer this thread used last, keyed by
/// the owning recorder's unique id (ids are never reused, so a stale
/// entry can never alias a different live recorder). The shared_ptr pin
/// keeps the buffer alive even after the recorder state is gone.
struct TlsEntry {
  std::uint64_t recorder_id = 0;
  EventBuffer* buffer = nullptr;
  std::shared_ptr<EventBuffer> pin;
};

thread_local TlsEntry tls_entry;

std::atomic<std::uint64_t> next_recorder_id{1};

}  // namespace

struct Recorder::State {
  explicit State(ObsOptions opts)
      : options(opts),
        id(next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
        epoch(std::chrono::steady_clock::now()) {}

  EventBuffer& buffer_for_this_thread() {
    std::lock_guard<std::mutex> lk(mu);
    auto& slot = by_thread[std::this_thread::get_id()];
    if (!slot) {
      slot = std::make_shared<EventBuffer>(options.events_per_thread,
                                           static_cast<int>(buffers.size()));
      buffers.push_back(slot);
    }
    tls_entry.recorder_id = id;
    tls_entry.buffer = slot.get();
    tls_entry.pin = slot;
    return *slot;
  }

  const ObsOptions options;
  const std::uint64_t id;
  const std::chrono::steady_clock::time_point epoch;
  MetricsRegistry metrics;
  std::mutex mu;
  std::map<std::thread::id, std::shared_ptr<EventBuffer>> by_thread;
  std::vector<std::shared_ptr<EventBuffer>> buffers;  // merge order = tid order
};

Recorder::Recorder(ObsOptions options) : state_(std::make_shared<State>(options)) {}

bool Recorder::enabled() const { return state_->options.enabled; }

std::int64_t Recorder::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                              state_->epoch)
      .count();
}

void Recorder::record(EventKind kind, const char* name, std::int32_t node, std::int32_t phase,
                      std::int32_t step, std::int64_t value) {
  State& state = *state_;
  if (!state.options.enabled) return;
  EventBuffer* buffer = tls_entry.recorder_id == state.id ? tls_entry.buffer
                                                          : &state.buffer_for_this_thread();
  Event event;
  event.name = name;
  event.ts_ns = now_ns();
  event.value = value;
  event.node = node;
  event.phase = phase;
  event.step = step;
  event.kind = kind;
  buffer->push(event);
}

void Recorder::begin(const char* name, std::int32_t node, std::int32_t phase,
                     std::int32_t step) {
  record(EventKind::kBegin, name, node, phase, step, 0);
}

void Recorder::end(const char* name, std::int32_t node, std::int32_t phase, std::int32_t step) {
  record(EventKind::kEnd, name, node, phase, step, 0);
}

void Recorder::instant(const char* name, std::int32_t node, std::int32_t phase,
                       std::int32_t step, std::int64_t value) {
  record(EventKind::kInstant, name, node, phase, step, value);
}

void Recorder::counter(const char* name, std::int64_t value, std::int32_t node) {
  record(EventKind::kCounter, name, node, 0, 0, value);
}

MetricsRegistry& Recorder::metrics() { return state_->metrics; }

std::int64_t Recorder::dropped_events() const {
  State& state = *state_;
  std::lock_guard<std::mutex> lk(state.mu);
  std::int64_t dropped = 0;
  for (const auto& buffer : state.buffers) dropped += buffer->dropped();
  return dropped;
}

Telemetry Recorder::snapshot() const {
  State& state = *state_;
  Telemetry out;
  std::vector<std::shared_ptr<EventBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lk(state.mu);
    buffers = state.buffers;
  }
  out.streams = static_cast<int>(buffers.size());
  std::size_t total = 0;
  for (const auto& buffer : buffers) {
    out.dropped_events += buffer->dropped();
    total += buffer->published();
  }
  out.events.reserve(total);
  for (const auto& buffer : buffers) {
    const std::size_t n = buffer->published();
    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = buffer->at(i);
      TelemetryEvent te;
      te.kind = e.kind;
      te.name = e.name;
      te.ts_ns = e.ts_ns;
      te.value = e.value;
      te.tid = buffer->tid();
      te.node = e.node;
      te.phase = e.phase;
      te.step = e.step;
      out.events.push_back(std::move(te));
      out.wall_ns = std::max(out.wall_ns, e.ts_ns);
    }
  }
  // Stable so same-timestamp events keep their per-thread order (begin
  // before end for zero-length spans).
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const TelemetryEvent& a, const TelemetryEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  out.metrics = state.metrics.snapshot();
  return out;
}

}  // namespace torex
