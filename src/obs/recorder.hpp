// Runtime telemetry recorder: per-thread lock-free event buffers plus a
// metrics registry, merged into a Telemetry snapshot at exchange end.
//
// Design constraints, in order:
//   * the disabled path must cost one branch per event — every
//     instrumentation site takes a `Recorder*` that is null (or
//     disabled) by default, so benches without telemetry pay nothing;
//   * recording must be lock-free: each thread owns a bounded
//     single-writer buffer (preallocated, no reallocation) and appends
//     with a release store; the merge reads with acquire, so a snapshot
//     can be taken even while a detached (stalled) worker is still
//     writing. A full buffer drops events and counts the drops — the
//     recorder never blocks and never reallocates on the hot path;
//   * Recorder is a shared handle: copies observe the same buffers,
//     metrics, and clock epoch. Runtimes that may outlive their caller
//     (the parallel engine detaches wedged workers) hold a copy, so a
//     late event after the caller destroyed its handle is safe.
//
// Event names must be string literals (or otherwise outlive the
// snapshot); events carry the schedule coordinates (node, phase, step)
// and one integer value, which is all every exporter needs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"

namespace torex {

/// What one telemetry event is.
enum class EventKind : std::uint8_t {
  kBegin,    ///< span open (matched by name at export time)
  kEnd,      ///< span close
  kInstant,  ///< point event (retransmit, watchdog fire, escalation)
  kCounter,  ///< sampled counter track value
};

/// One recorded event. `name` must point at static-duration storage.
struct Event {
  const char* name = nullptr;
  std::int64_t ts_ns = 0;   ///< steady-clock ns since the recorder epoch
  std::int64_t value = 0;   ///< counter sample / instant payload
  std::int32_t node = -1;   ///< torus rank; -1 = run-scoped
  std::int32_t phase = 0;   ///< 1-based schedule phase; 0 = not step-scoped
  std::int32_t step = 0;    ///< 1-based step within phase
  EventKind kind = EventKind::kInstant;
};

/// Recorder configuration.
struct ObsOptions {
  /// Disabled recorders accept events but record nothing (and report an
  /// empty snapshot); instrumentation sites treat them like nullptr.
  bool enabled = true;
  /// Bounded per-thread buffer capacity in events; once full, further
  /// events from that thread are dropped (and counted).
  std::size_t events_per_thread = 1 << 16;
};

/// Merged view of one event for consumers (owns the name).
struct TelemetryEvent {
  EventKind kind = EventKind::kInstant;
  std::string name;
  std::int64_t ts_ns = 0;
  std::int64_t value = 0;
  int tid = 0;  ///< recording stream (one per thread per recorder)
  std::int32_t node = -1;
  std::int32_t phase = 0;
  std::int32_t step = 0;
};

/// Everything one run recorded: merged events (sorted by timestamp),
/// drop accounting, and the metrics registry's snapshot.
struct Telemetry {
  std::vector<TelemetryEvent> events;
  int streams = 0;                  ///< per-thread buffers merged
  std::int64_t dropped_events = 0;  ///< events lost to full buffers
  std::int64_t wall_ns = 0;         ///< latest event timestamp
  MetricsSnapshot metrics;
};

/// Shared-handle telemetry recorder. Copy it freely; all copies feed
/// the same snapshot. Thread-safe for concurrent recording.
class Recorder {
 public:
  explicit Recorder(ObsOptions options = {});

  bool enabled() const;

  /// Steady-clock nanoseconds since this recorder's construction.
  std::int64_t now_ns() const;

  void begin(const char* name, std::int32_t node = -1, std::int32_t phase = 0,
             std::int32_t step = 0);
  void end(const char* name, std::int32_t node = -1, std::int32_t phase = 0,
           std::int32_t step = 0);
  void instant(const char* name, std::int32_t node = -1, std::int32_t phase = 0,
               std::int32_t step = 0, std::int64_t value = 0);
  void counter(const char* name, std::int64_t value, std::int32_t node = -1);

  /// The recorder's metrics registry (usable even when disabled, so
  /// instrumentation can hold references unconditionally).
  MetricsRegistry& metrics();

  /// Events dropped so far across all buffers.
  std::int64_t dropped_events() const;

  /// Merges every thread buffer (timestamp-sorted) and the metrics
  /// registry into one snapshot. Safe to call while other threads are
  /// still recording: only events published before the call are seen.
  Telemetry snapshot() const;

 private:
  struct State;
  void record(EventKind kind, const char* name, std::int32_t node, std::int32_t phase,
              std::int32_t step, std::int64_t value);

  std::shared_ptr<State> state_;
};

/// RAII span: begin on construction, end on destruction. A null or
/// disabled recorder makes both ends a no-op (one branch each).
class SpanGuard {
 public:
  SpanGuard() = default;
  SpanGuard(Recorder* recorder, const char* name, std::int32_t node = -1,
            std::int32_t phase = 0, std::int32_t step = 0)
      : recorder_(recorder != nullptr && recorder->enabled() ? recorder : nullptr),
        name_(name),
        node_(node),
        phase_(phase),
        step_(step) {
    if (recorder_ != nullptr) recorder_->begin(name_, node_, phase_, step_);
  }
  ~SpanGuard() {
    if (recorder_ != nullptr) recorder_->end(name_, node_, phase_, step_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  SpanGuard(SpanGuard&& other) noexcept { *this = std::move(other); }
  SpanGuard& operator=(SpanGuard&& other) noexcept {
    if (this != &other) {
      recorder_ = other.recorder_;
      name_ = other.name_;
      node_ = other.node_;
      phase_ = other.phase_;
      step_ = other.step_;
      other.recorder_ = nullptr;
    }
    return *this;
  }

 private:
  Recorder* recorder_ = nullptr;
  const char* name_ = nullptr;
  std::int32_t node_ = -1;
  std::int32_t phase_ = 0;
  std::int32_t step_ = 0;
};

}  // namespace torex
