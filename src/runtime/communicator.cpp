#include "runtime/communicator.hpp"

#include <limits>
#include <sstream>

#include "topology/torus.hpp"

namespace torex {

std::string to_string(AlltoallAlgorithm algorithm) {
  switch (algorithm) {
    case AlltoallAlgorithm::kAuto: return "auto";
    case AlltoallAlgorithm::kSuhShin: return "suh-shin";
    case AlltoallAlgorithm::kSuhShinPadded: return "suh-shin-padded";
    case AlltoallAlgorithm::kRing: return "ring";
    case AlltoallAlgorithm::kDirect: return "direct";
    case AlltoallAlgorithm::kBruck: return "bruck";
  }
  TOREX_UNREACHABLE();
}

std::string to_string(IntegrityStatus status) {
  switch (status) {
    case IntegrityStatus::kClean: return "clean";
    case IntegrityStatus::kCorrected: return "corrected";
    case IntegrityStatus::kEscalated: return "escalated";
  }
  TOREX_UNREACHABLE();
}

std::string ExchangeOutcome::summary() const {
  std::ostringstream os;
  os << "algorithm=" << torex::to_string(algorithm) << " policy=" << torex::to_string(policy)
     << " attempts=" << attempts << " retries=" << retries << " waited=" << waited_ticks
     << " remapped=" << remapped_nodes << " rerouted=" << rerouted_messages
     << " extra_hops=" << extra_hops << (degraded ? " (degraded)" : "");
  if (integrity != IntegrityStatus::kClean || corrupted_messages > 0) {
    os << " integrity=" << torex::to_string(integrity) << " corrupted=" << corrupted_messages
       << " retransmits=" << retransmits << " escalations=" << escalations;
    if (integrity_failure.has_value()) {
      os << " [fatal: phase " << integrity_failure->phase << " step " << integrity_failure->step
         << ", " << integrity_failure->src << " -> " << integrity_failure->dst << ": "
         << integrity_failure->description << "]";
    }
  }
  if (suspected_nodes > 0) {
    os << " suspected=" << suspected_nodes << " suspicion_tick=" << suspicion_tick
       << (proactive_recovery ? " (proactive)" : " (late)");
  }
  if (resume.has_value()) {
    os << " [" << resume->summary() << "]";
  }
  return os.str();
}

void ResumeOptions::validate() const {
  resilience.backoff.validate();
  detector.validate();
  TOREX_REQUIRE(stall_deadline_ticks >= 1,
                "resume options: stall deadline must be at least one tick");
  TOREX_REQUIRE(resilience.start_tick >= 0,
                "resume options: start tick must be non-negative");
  if (crash.armed()) {
    TOREX_REQUIRE(crash.step >= 1, "resume options: crash step is 1-based");
  }
}

bool add_corruption_as_faults(const Torus& torus, const CorruptionModel& corruption,
                              const IntegrityViolation& fatal, FaultModel& faults) {
  // The fatal attempt crossed the straight-line route of its schedule
  // step; every corrupting channel on that route active at the failing
  // tick is implicated. The already-failed check keeps escalation
  // monotone: rounds that add nothing report false so the caller can
  // stop instead of spinning.
  std::vector<ChannelId> path;
  torus.straight_path(fatal.src, fatal.direction, fatal.hops, path);
  bool added = false;
  for (ChannelId id : path) {
    const auto spec = corruption.find(torus, id, fatal.tick);
    if (!spec.has_value()) continue;
    if (faults.channel_relevant_failed(torus, id, fatal.tick)) continue;
    const Channel ch = torus.channel_of(id);
    faults.fail_channel(ch.from, ch.direction, spec->active_from, spec->active_until);
    added = true;
  }
  return added;
}

TorusCommunicator::TorusCommunicator(TorusShape shape, CostParams params)
    : shape_(std::move(shape)), params_(params) {
  TOREX_REQUIRE(shape_.num_nodes() >= 2, "communicator needs at least two nodes");
  if (suh_shin_applicable()) schedule_.emplace(shape_);
}

bool TorusCommunicator::suh_shin_applicable() const {
  return shape_.num_dims() >= 2 && shape_.all_extents_multiple_of_four() &&
         shape_.extents_non_increasing();
}

CostBreakdown TorusCommunicator::estimate(AlltoallAlgorithm algorithm,
                                          std::int64_t block_bytes) const {
  TOREX_REQUIRE(block_bytes >= 1, "block size must be positive");
  CostParams p = params_;
  p.m = block_bytes;
  switch (algorithm) {
    case AlltoallAlgorithm::kAuto:
      return estimate(select(block_bytes), block_bytes);
    case AlltoallAlgorithm::kSuhShin: {
      TOREX_REQUIRE(suh_shin_applicable(), "Suh-Shin schedule not applicable to this shape");
      return proposed_cost_nd(shape_, p);
    }
    case AlltoallAlgorithm::kSuhShinPadded: {
      // Pad and price the virtual run, serializing each step by the
      // realized host multiplicity.
      const VirtualTorusAape padded(shape_);
      const VirtualExchangeResult run = padded.run_verified();
      CostBreakdown out;
      const double m = static_cast<double>(p.m);
      for (std::size_t i = 0; i < run.trace.steps.size(); ++i) {
        const auto& step = run.trace.steps[i];
        const double serial = static_cast<double>(run.per_step_host_sends[i]);
        out.startup += serial * p.t_s;
        out.transmission +=
            serial * static_cast<double>(step.max_blocks_per_node) * m * p.t_c;
        out.propagation += serial * static_cast<double>(step.hops) * p.t_l;
      }
      out.rearrangement = static_cast<double>(run.trace.rearrangement_passes) *
                          static_cast<double>(padded.virtual_shape().num_nodes()) * m * p.rho;
      return out;
    }
    case AlltoallAlgorithm::kRing: {
      // N-1 steps, step i moves N-i blocks over 1 hop; no rearrangement.
      const double N = static_cast<double>(shape_.num_nodes());
      CostBreakdown c;
      c.startup = (N - 1) * p.t_s;
      c.transmission = N * (N - 1) / 2 * static_cast<double>(p.m) * p.t_c;
      c.propagation = (N - 1) * p.t_l;
      return c;
    }
    case AlltoallAlgorithm::kDirect: {
      DirectExchange direct(shape_);
      return price_routed_steps(direct.torus(), direct.steps(), p);
    }
    case AlltoallAlgorithm::kBruck: {
      BruckExchange bruck(shape_);
      return price_routed_steps(bruck.torus(), bruck.run_verified(), p);
    }
  }
  TOREX_UNREACHABLE();
}

double TorusCommunicator::phase_cost(std::int64_t block_bytes) const {
  TOREX_REQUIRE(suh_shin_applicable(),
                "per-phase pricing requires the Suh-Shin schedule (qualifying shape)");
  const auto phases = static_cast<double>(schedule_->num_phases());
  return estimate(AlltoallAlgorithm::kSuhShin, block_bytes).total() / phases;
}

ExchangeOutcome TorusCommunicator::plan_resilient(const FaultModel& faults,
                                                  const ResilienceOptions& options,
                                                  std::int64_t block_bytes) const {
  TOREX_REQUIRE(block_bytes >= 1, "block size must be positive");
  ExchangeOutcome out;
  out.requested = options.algorithm;
  out.requested_policy = options.policy;
  out.run_tick = options.start_tick;
  const AlltoallAlgorithm chosen =
      options.algorithm == AlltoallAlgorithm::kAuto ? select(block_bytes) : options.algorithm;
  out.algorithm = chosen;
  if (faults.empty()) {
    out.modeled_time = estimate(chosen, block_bytes).total();
    out.note = "healthy network; no recovery needed";
    return out;
  }

  const Torus torus(shape_);
  const SuhShinAape* schedule =
      (chosen == AlltoallAlgorithm::kSuhShin && schedule_.has_value()) ? &*schedule_ : nullptr;
  const RecoveryDecision decision =
      decide_recovery(torus, schedule, faults, options.policy, options.backoff,
                      options.start_tick, options.obs);
  out.policy = decision.policy;
  out.attempts = decision.attempts;
  out.retries = decision.retries;
  out.waited_ticks = decision.waited_ticks;
  out.run_tick = decision.run_tick;
  out.remapped_nodes = decision.plan.remapped_nodes;
  out.rerouted_messages = decision.plan.rerouted_messages;
  out.extra_hops = decision.plan.extra_hops;
  out.note = decision.note.empty() ? "schedule clean under faults" : decision.note;
  if (decision.policy == RecoveryPolicy::kFallbackDirect) {
    out.algorithm = AlltoallAlgorithm::kDirect;
  }
  out.degraded = decision.policy == RecoveryPolicy::kRemap ||
                 decision.policy == RecoveryPolicy::kFallbackDirect;
  // Detours price as extra propagation on the paper's model; waiting
  // out transient faults is reported in ticks (waited_ticks), not here.
  out.modeled_time = estimate(out.algorithm, block_bytes).total() +
                     static_cast<double>(out.extra_hops) * params_.t_l;
  return out;
}

AlltoallAlgorithm TorusCommunicator::select(std::int64_t block_bytes) const {
  double best_time = std::numeric_limits<double>::infinity();
  AlltoallAlgorithm best = AlltoallAlgorithm::kRing;
  for (AlltoallAlgorithm algorithm :
       {AlltoallAlgorithm::kSuhShin, AlltoallAlgorithm::kSuhShinPadded,
        AlltoallAlgorithm::kRing, AlltoallAlgorithm::kDirect, AlltoallAlgorithm::kBruck}) {
    if (algorithm == AlltoallAlgorithm::kSuhShin && !suh_shin_applicable()) continue;
    // Padding only earns its keep when the plain schedule cannot run.
    if (algorithm == AlltoallAlgorithm::kSuhShinPadded && suh_shin_applicable()) continue;
    const double t = estimate(algorithm, block_bytes).total();
    if (t < best_time) {
      best_time = t;
      best = algorithm;
    }
  }
  return best;
}

}  // namespace torex
