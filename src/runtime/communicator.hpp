// MPI-flavored collective facade over the simulated torus.
//
// Downstream users do not want to assemble schedules by hand; they want
//   recv = comm.alltoall(send)
// with the library choosing the right algorithm the way tuned MPI
// collectives do. TorusCommunicator prices the implemented algorithms
// (Suh-Shin, ring, direct, Bruck) with the paper's model and picks the
// cheapest for the given block size (kAuto), or runs a caller-forced
// choice.
//
// The Suh-Shin path executes the real schedule over the payloads; the
// other paths apply the (identical) permutation result and are
// distinguished by their cost estimates — this is a simulator, so
// "time" always comes from the model, never from the wall clock.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "baselines/bruck.hpp"
#include "baselines/direct_exchange.hpp"
#include "baselines/ring_exchange.hpp"
#include "core/exchange_engine.hpp"
#include "core/payload_exchange.hpp"
#include "core/virtual_torus.hpp"
#include "costmodel/models.hpp"
#include "runtime/failure_detector.hpp"
#include "runtime/journal.hpp"
#include "runtime/recovery.hpp"
#include "sim/cost_simulator.hpp"
#include "sim/fault_model.hpp"

namespace torex {

/// Selectable all-to-all implementations.
enum class AlltoallAlgorithm {
  kAuto,
  kSuhShin,        ///< the paper's schedule (shape must qualify)
  kSuhShinPadded,  ///< the paper's schedule via §6 virtual-node padding
  kRing,
  kDirect,
  kBruck,
};

std::string to_string(AlltoallAlgorithm algorithm);

/// How the end-to-end integrity check of a checked exchange ended.
enum class IntegrityStatus {
  kClean,      ///< every seal verified on first delivery
  kCorrected,  ///< corruption detected and repaired by retransmission
  kEscalated,  ///< retransmit budget exhausted; escalated into recovery
};

std::string to_string(IntegrityStatus status);

/// The IntegrityFailure branch of an outcome: where a checked exchange
/// exhausted its retransmit budget before escalating into the recovery
/// chain.
struct IntegrityFailure {
  int phase = 0;  ///< 1-based schedule coordinates of the fatal step
  int step = 0;
  Rank src = -1;
  Rank dst = -1;
  std::int64_t tick = 0;        ///< fault tick of the last failed attempt
  int retransmits = 0;          ///< attempts spent on the fatal message
  std::string description;      ///< verifier's rejection, human-readable
};

/// What a (possibly fault-recovered) exchange actually did. Returned by
/// alltoall_resilient instead of a bare throw: the caller learns which
/// algorithm moved the data, which recovery policy ran, and what the
/// recovery cost (retries, waits, remaps, detours).
struct ExchangeOutcome {
  AlltoallAlgorithm requested = AlltoallAlgorithm::kAuto;
  AlltoallAlgorithm algorithm = AlltoallAlgorithm::kAuto;  ///< what actually ran
  RecoveryPolicy requested_policy = RecoveryPolicy::kAuto;
  RecoveryPolicy policy = RecoveryPolicy::kNone;  ///< recovery path that ran (kNone = healthy)
  int attempts = 1;             ///< fault audits performed, including the first
  int retries = 0;              ///< backoff waits taken
  std::int64_t waited_ticks = 0;
  std::int64_t run_tick = 0;    ///< fault tick the exchange executed at
  bool degraded = false;        ///< realized something other than the healthy plan
  std::int64_t remapped_nodes = 0;
  std::int64_t rerouted_messages = 0;
  std::int64_t extra_hops = 0;  ///< detour hops added over the healthy routes
  double modeled_time = 0.0;    ///< modeled completion time of what ran
  std::string note;             ///< human-readable recovery chain

  // Filled by alltoall_checked (the integrity-verified entry point).
  IntegrityStatus integrity = IntegrityStatus::kClean;
  std::int64_t corrupted_messages = 0;  ///< deliveries rejected by seal checks
  std::int64_t retransmits = 0;         ///< retransmissions performed
  int escalations = 0;                  ///< integrity failures escalated into recovery
  /// Present when integrity == kEscalated: the failure that triggered
  /// the (last) escalation.
  std::optional<IntegrityFailure> integrity_failure;

  // Filled by alltoall_resumable (the journaled entry point).
  /// Delta-resume accounting of the journaled run that moved the data.
  std::optional<ResumeReport> resume;
  /// Nodes the heartbeat failure detector suspected before planning.
  int suspected_nodes = 0;
  /// Latest suspicion transition tick (-1 when nothing was suspected).
  std::int64_t suspicion_tick = -1;
  /// Suspicion landed strictly before the tick-axis watchdog deadline,
  /// i.e. recovery started proactively instead of stall-then-cancel.
  bool proactive_recovery = false;

  std::string summary() const;
};

/// Escalation bridge from the integrity layer into the fault model:
/// walks the fatal violation's channel path through `corruption` and
/// adds every implicated corrupting channel to `faults` as a channel
/// fault (inheriting the corruption's active window), so the recovery
/// planner routes around it. Returns false when no new fault was added
/// (the corruption cannot be attributed to a modeled channel).
bool add_corruption_as_faults(const Torus& torus, const CorruptionModel& corruption,
                              const IntegrityViolation& fatal, FaultModel& faults);

/// Options for the fault-aware alltoall entry point.
struct ResilienceOptions {
  AlltoallAlgorithm algorithm = AlltoallAlgorithm::kAuto;
  RecoveryPolicy policy = RecoveryPolicy::kAuto;
  BackoffConfig backoff{};
  std::int64_t start_tick = 0;   ///< fault tick the first attempt starts at
  std::int64_t block_bytes = 0;  ///< 0: use sizeof(T)
  /// Optional telemetry sink: plan/execute/verify/escalate spans plus
  /// integrity and recovery counters.
  Recorder* obs = nullptr;
};

/// Options for the crash-durable (journaled) alltoall entry point.
struct ResumeOptions {
  ResilienceOptions resilience;
  /// Heartbeat failure detector tuning; the detector runs whenever the
  /// fault model contains node faults (crashes).
  FailureDetectorOptions detector;
  /// Tick-axis analogue of the runtimes' wall-clock stall deadline: the
  /// horizon the failure detector observes heartbeats over, and the
  /// bar its suspicion must beat for outcome.proactive_recovery.
  std::int64_t stall_deadline_ticks = 64;
  /// Simulated process death for tests/tools (see runtime/journal.hpp);
  /// only honored on the scheduled (non-degraded) path.
  CrashPoint crash;
  /// Cooperative cancel, polled between journal flush and step commit.
  const std::atomic<bool>* cancel = nullptr;
  /// Durability hook: persist journal.encode() here on every flush.
  std::function<void(const ExchangeJournal&)> flush;

  /// Rejects invalid backoff/detector/deadline settings with
  /// std::invalid_argument before any data moves.
  void validate() const;
};

/// Collective context bound to one torus and one parameter set.
class TorusCommunicator {
 public:
  TorusCommunicator(TorusShape shape, CostParams params);

  const TorusShape& shape() const { return shape_; }
  Rank size() const { return shape_.num_nodes(); }

  /// True when the Suh-Shin schedule applies directly (>= 2 dims,
  /// multiples of four, sorted non-increasing).
  bool suh_shin_applicable() const;

  /// Estimated completion time of one algorithm for m-byte blocks.
  CostBreakdown estimate(AlltoallAlgorithm algorithm, std::int64_t block_bytes) const;

  /// Modeled time of one Suh-Shin phase for m-byte blocks (the full
  /// estimate spread evenly over the schedule's phases). This is the
  /// price the service layer charges a session's virtual-time account
  /// per executed phase, and the unit its deadline arithmetic uses.
  /// Requires a qualifying shape.
  double phase_cost(std::int64_t block_bytes) const;

  /// The algorithm kAuto resolves to for this block size.
  AlltoallAlgorithm select(std::int64_t block_bytes) const;

  /// Cumulative wire statistics (frame pool hits/misses, bytes copied,
  /// §3.3 run accounting) of every exchange this communicator has run.
  const WirePoolStats& wire_stats() const { return wire_arena_.stats(); }

  /// All-to-all personalized exchange: send[p][q] is node p's payload
  /// for node q; returns recv with recv[q][p] == send[p][q]. The
  /// estimated time of the run is written to `modeled_time` when
  /// non-null.
  template <typename T>
  std::vector<std::vector<T>> alltoall(const std::vector<std::vector<T>>& send,
                                       AlltoallAlgorithm algorithm = AlltoallAlgorithm::kAuto,
                                       std::int64_t block_bytes = sizeof(T),
                                       double* modeled_time = nullptr,
                                       Recorder* obs = nullptr) const {
    const Rank N = size();
    TOREX_REQUIRE(static_cast<Rank>(send.size()) == N, "send buffer must have N rows");
    for (const auto& row : send) {
      TOREX_REQUIRE(static_cast<Rank>(row.size()) == N, "send rows must have N entries");
    }
    if (obs != nullptr && !obs->enabled()) obs = nullptr;
    SpanGuard alltoall_span(obs, "alltoall");
    AlltoallAlgorithm chosen =
        algorithm == AlltoallAlgorithm::kAuto ? select(block_bytes) : algorithm;
    if (modeled_time != nullptr) *modeled_time = estimate(chosen, block_bytes).total();

    if (chosen == AlltoallAlgorithm::kSuhShin) {
      TOREX_REQUIRE(schedule_.has_value(),
                    "Suh-Shin schedule not applicable to this shape (pad or pick another "
                    "algorithm)");
      const SuhShinAape& algo = *schedule_;
      ParcelBuffers<T> parcels(static_cast<std::size_t>(N));
      for (Rank p = 0; p < N; ++p) {
        auto& buf = parcels[static_cast<std::size_t>(p)];
        buf.reserve(static_cast<std::size_t>(N));
        for (Rank q = 0; q < N; ++q) {
          buf.push_back({Block{p, q}, send[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)]});
        }
      }
      // Trivially copyable payloads ride the pooled zero-copy wire
      // (frames recycle through the communicator's arena across
      // exchanges); other types fall back to the struct-move executor.
      ParcelBuffers<T> delivered;
      if constexpr (std::is_trivially_copyable_v<Parcel<T>>) {
        WireExchangeOptions wire_options;
        wire_options.arena = &wire_arena_;
        wire_options.obs = obs;
        delivered = exchange_payloads_pooled(algo, std::move(parcels), wire_options);
      } else {
        delivered = exchange_payloads(algo, std::move(parcels), obs);
      }
      SpanGuard permute_span(obs, "permute");
      std::vector<std::vector<T>> recv(static_cast<std::size_t>(N));
      for (Rank q = 0; q < N; ++q) {
        auto& row = recv[static_cast<std::size_t>(q)];
        row.resize(static_cast<std::size_t>(N));
        for (const auto& parcel : delivered[static_cast<std::size_t>(q)]) {
          row[static_cast<std::size_t>(parcel.block.origin)] = parcel.payload;
        }
      }
      return recv;
    }

    if (chosen == AlltoallAlgorithm::kSuhShinPadded) {
      // Run the padded (virtual-torus) schedule over the payloads:
      // parcels seeded at the primary virtual ranks, results read back
      // by physical rank.
      const VirtualTorusAape padded(shape_);
      const SuhShinAape& algo = padded.schedule();
      const TorusShape& vshape = padded.virtual_shape();
      // physical rank -> primary virtual rank.
      std::vector<Rank> to_virtual(static_cast<std::size_t>(N), -1);
      for (Rank v = 0; v < vshape.num_nodes(); ++v) {
        if (padded.is_primary(v)) to_virtual[static_cast<std::size_t>(padded.host_of(v))] = v;
      }
      ParcelBuffers<T> parcels(static_cast<std::size_t>(vshape.num_nodes()));
      for (Rank p = 0; p < N; ++p) {
        const Rank vp = to_virtual[static_cast<std::size_t>(p)];
        auto& buf = parcels[static_cast<std::size_t>(vp)];
        for (Rank q = 0; q < N; ++q) {
          buf.push_back({Block{vp, to_virtual[static_cast<std::size_t>(q)]},
                         send[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)]});
        }
      }
      const auto delivered = exchange_parcels_custom(algo, std::move(parcels));
      std::vector<std::vector<T>> recv(static_cast<std::size_t>(N));
      for (Rank q = 0; q < N; ++q) {
        auto& row = recv[static_cast<std::size_t>(q)];
        row.resize(static_cast<std::size_t>(N));
        const Rank vq = to_virtual[static_cast<std::size_t>(q)];
        for (const auto& parcel : delivered[static_cast<std::size_t>(vq)]) {
          row[static_cast<std::size_t>(padded.host_of(parcel.block.origin))] = parcel.payload;
        }
      }
      return recv;
    }

    // Ring / direct / Bruck: same permutation, different (already
    // reported) modeled time.
    std::vector<std::vector<T>> recv(static_cast<std::size_t>(N));
    for (Rank q = 0; q < N; ++q) {
      auto& row = recv[static_cast<std::size_t>(q)];
      row.reserve(static_cast<std::size_t>(N));
      for (Rank p = 0; p < N; ++p) {
        row.push_back(send[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)]);
      }
    }
    return recv;
  }

  /// Fault-aware all-to-all. Audits the chosen schedule against
  /// `faults` and, when impacted, recovers per `options.policy`
  /// (retry/backoff for transient faults, degraded remap of the
  /// Suh-Shin schedule, or the fault-tolerant direct fallback) instead
  /// of throwing. `outcome` reports what ran; the returned permutation
  /// is identical to the healthy alltoall. Throws FaultedExchangeError
  /// only when recovery is disabled (RecoveryPolicy::kNone) or the
  /// faults disconnect the live nodes.
  template <typename T>
  std::vector<std::vector<T>> alltoall_resilient(const std::vector<std::vector<T>>& send,
                                                 const FaultModel& faults,
                                                 ExchangeOutcome& outcome,
                                                 const ResilienceOptions& options = {}) const {
    const std::int64_t bytes =
        options.block_bytes > 0 ? options.block_bytes : static_cast<std::int64_t>(sizeof(T));
    Recorder* obs = options.obs != nullptr && options.obs->enabled() ? options.obs : nullptr;
    SpanGuard resilient_span(obs, "alltoall_resilient");
    {
      SpanGuard plan_span(obs, "plan");
      outcome = plan_resilient(faults, options, bytes);
    }
    return alltoall(send, outcome.algorithm, bytes, nullptr, obs);
  }

  /// Planning half of alltoall_resilient: audit + recovery decision +
  /// pricing, no data movement. Exposed for tools and benches that
  /// compare policies without running payloads.
  ExchangeOutcome plan_resilient(const FaultModel& faults, const ResilienceOptions& options,
                                 std::int64_t block_bytes) const;

  /// Self-checking all-to-all: alltoall_resilient plus end-to-end data
  /// integrity. When the Suh-Shin schedule runs, every message crosses
  /// the simulated wire sealed (per-parcel CRC-32 + metadata), may be
  /// damaged by `corruption`, and is verified before integration;
  /// detected corruption is repaired by bounded retransmission
  /// (kCorrected). A message that stays corrupt past its budget
  /// escalates: the corrupting channels are added to the fault model as
  /// channel faults and the exchange re-plans through the PR-1 recovery
  /// chain (kEscalated, outcome.integrity_failure attributes the step).
  /// The returned permutation is always exact; persistent corruption
  /// that cannot be attributed rethrows the IntegrityError, and
  /// RecoveryPolicy::kNone turns escalation into FaultedExchangeError.
  template <typename T>
  std::vector<std::vector<T>> alltoall_checked(const std::vector<std::vector<T>>& send,
                                               const FaultModel& faults,
                                               const CorruptionModel& corruption,
                                               ExchangeOutcome& outcome,
                                               const ResilienceOptions& options = {},
                                               const IntegrityOptions& integrity = {}) const {
    static_assert(std::is_trivially_copyable_v<T>,
                  "checked exchange requires trivially copyable payloads");
    const Rank N = size();
    TOREX_REQUIRE(static_cast<Rank>(send.size()) == N, "send buffer must have N rows");
    for (const auto& row : send) {
      TOREX_REQUIRE(static_cast<Rank>(row.size()) == N, "send rows must have N entries");
    }
    const std::int64_t bytes =
        options.block_bytes > 0 ? options.block_bytes : static_cast<std::int64_t>(sizeof(T));
    Recorder* obs = options.obs != nullptr && options.obs->enabled() ? options.obs : nullptr;
    SpanGuard checked_span(obs, "alltoall_checked");
    FaultModel effective = faults;
    std::int64_t corrupted = 0;
    std::int64_t retransmits = 0;
    int escalations = 0;
    // Recovery work spent by abandoned rounds; folded into each fresh
    // plan so the final outcome reports the whole exchange's history.
    int prior_attempts = 0;
    int prior_retries = 0;
    std::int64_t prior_waited = 0;
    std::optional<IntegrityFailure> failure;
    const Torus torus(shape_);
    // Each escalation converts at least one corrupting channel into a
    // channel fault, so the loop ends within |corruption| rounds.
    while (true) {
      {
        SpanGuard plan_span(obs, "plan");
        outcome = plan_resilient(effective, options, bytes);
      }
      outcome.attempts += prior_attempts;
      outcome.retries += prior_retries;
      outcome.waited_ticks += prior_waited;
      outcome.integrity = escalations > 0 ? IntegrityStatus::kEscalated : IntegrityStatus::kClean;
      outcome.corrupted_messages = corrupted;
      outcome.retransmits = retransmits;
      outcome.escalations = escalations;
      outcome.integrity_failure = failure;
      if (outcome.algorithm != AlltoallAlgorithm::kSuhShin || outcome.degraded ||
          !schedule_.has_value()) {
        // Degraded/baseline realizations are permutation-level
        // simulations (see alltoall) — a remapped plan does not run the
        // pristine schedule, so nothing crosses the sealed wire.
        return alltoall(send, outcome.algorithm, bytes, nullptr, obs);
      }
      IntegrityOptions iopts = integrity;
      iopts.base_tick = outcome.run_tick;
      try {
        IntegrityReport report;
        SpanGuard verify_span(obs, "verify");
        auto recv = run_sealed<T>(send, corruption, iopts, report, obs);
        outcome.corrupted_messages += report.corrupted;
        outcome.retransmits += report.retransmits;
        if (outcome.integrity == IntegrityStatus::kClean && !report.clean()) {
          outcome.integrity = IntegrityStatus::kCorrected;
          outcome.note += "; corruption detected and corrected by retransmission";
        }
        return recv;
      } catch (const IntegrityError& error) {
        const IntegrityReport& report = error.report();
        corrupted += report.corrupted;
        retransmits += report.retransmits;
        prior_attempts = outcome.attempts;
        prior_retries = outcome.retries;
        prior_waited = outcome.waited_ticks;
        TOREX_CHECK(report.fatal.has_value(), "integrity error without a fatal violation");
        if (!add_corruption_as_faults(torus, corruption, *report.fatal, effective)) {
          throw;  // unattributable persistent corruption: refuse loudly
        }
        ++escalations;
        if (obs != nullptr) {
          obs->instant("escalate", report.fatal->dst, report.fatal->phase, report.fatal->step,
                       escalations);
          obs->metrics().counter("integrity.escalations").add();
        }
        failure = IntegrityFailure{report.fatal->phase,   report.fatal->step,
                                   report.fatal->src,     report.fatal->dst,
                                   report.fatal->tick,    report.fatal->attempt,
                                   report.fatal->reason};
      }
    }
  }

  /// Crash-durable all-to-all: a journaled run whose progress survives
  /// process death. Every schedule step appends a CRC-sealed delivery
  /// record + commit marker to `journal` (persist it via options.flush);
  /// passing a journal with prior progress resumes the exchange,
  /// replaying the committed prefix locally and re-sending only parcels
  /// undelivered at the kill point, with re-received durable parcels
  /// deduplicated (exactly-once). When the fault model carries node
  /// faults, the heartbeat failure detector runs first — its fd.suspect
  /// spans precede the recovery.attempt spans of planning — and the
  /// outcome reports whether suspicion beat the tick watchdog deadline.
  /// Degraded plans (crashed nodes) deliver the delta directly, still
  /// journaled. Requires a qualifying (Suh-Shin) shape and copyable T.
  template <typename T>
  std::vector<std::vector<T>> alltoall_resumable(const std::vector<std::vector<T>>& send,
                                                 const FaultModel& faults,
                                                 ExchangeJournal& journal,
                                                 ExchangeOutcome& outcome,
                                                 const ResumeOptions& options = {}) const {
    options.validate();
    const Rank N = size();
    TOREX_REQUIRE(static_cast<Rank>(send.size()) == N, "send buffer must have N rows");
    for (const auto& row : send) {
      TOREX_REQUIRE(static_cast<Rank>(row.size()) == N, "send rows must have N entries");
    }
    TOREX_REQUIRE(schedule_.has_value(),
                  "resumable exchange requires the Suh-Shin schedule (qualifying shape)");
    const std::int64_t bytes = options.resilience.block_bytes > 0
                                   ? options.resilience.block_bytes
                                   : static_cast<std::int64_t>(sizeof(T));
    Recorder* obs = options.resilience.obs != nullptr && options.resilience.obs->enabled()
                        ? options.resilience.obs
                        : nullptr;
    SpanGuard resumable_span(obs, "alltoall_resumable");

    // Failure detection happens before planning so the fd.suspect spans
    // land ahead of the recovery.attempt spans they trigger.
    int suspected_nodes = 0;
    std::int64_t suspicion_tick = -1;
    bool ran_detector = false;
    bool node_faults = false;
    for (const auto& spec : faults.specs()) {
      node_faults = node_faults || spec.kind == FaultKind::kNode;
    }
    if (node_faults) {
      ran_detector = true;
      HeartbeatFailureDetector detector(N, options.detector, obs);
      const auto suspicions =
          detector.observe_heartbeats(faults, options.stall_deadline_ticks);
      suspected_nodes = static_cast<int>(suspicions.size());
      for (const auto& suspicion : suspicions) {
        suspicion_tick = std::max(suspicion_tick, suspicion.suspected_at);
      }
    }

    {
      SpanGuard plan_span(obs, "plan");
      outcome = plan_resilient(faults, options.resilience, bytes);
    }
    outcome.suspected_nodes = suspected_nodes;
    outcome.suspicion_tick = suspicion_tick;
    outcome.proactive_recovery = ran_detector && suspected_nodes > 0 &&
                                 suspicion_tick < options.stall_deadline_ticks;
    if (ran_detector) {
      outcome.note += "; failure detector suspected " + std::to_string(suspected_nodes) +
                      " node(s)" +
                      (suspected_nodes > 0
                           ? " by tick " + std::to_string(suspicion_tick) +
                                 (outcome.proactive_recovery ? " (before the watchdog deadline "
                                  : " (at/after the watchdog deadline ") +
                                 std::to_string(options.stall_deadline_ticks) + ")"
                           : "");
    }

    ParcelBuffers<T> parcels(static_cast<std::size_t>(N));
    for (Rank p = 0; p < N; ++p) {
      auto& buf = parcels[static_cast<std::size_t>(p)];
      buf.reserve(static_cast<std::size_t>(N));
      for (Rank q = 0; q < N; ++q) {
        buf.push_back(
            {Block{p, q}, send[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)]});
      }
    }
    JournalRunOptions run_options;
    run_options.crash = options.crash;
    run_options.cancel = options.cancel;
    run_options.flush = options.flush;
    run_options.obs = obs;
    run_options.wire = &wire_arena_;
    ResumeReport report;
    ParcelBuffers<T> delivered;
    if (outcome.algorithm == AlltoallAlgorithm::kSuhShin && !outcome.degraded) {
      delivered = exchange_payloads_journaled(*schedule_, std::move(parcels), journal,
                                              run_options, report);
    } else {
      // Degraded plan: the schedule is abandoned, but the journal stays
      // the source of truth — deliver the undelivered delta directly.
      run_options.crash = CrashPoint{};  // crash injection is schedule-granular
      delivered = exchange_payloads_direct_journaled(*schedule_, std::move(parcels), journal,
                                                     run_options, report);
    }
    outcome.resume = report;

    SpanGuard permute_span(obs, "permute");
    std::vector<std::vector<T>> recv(static_cast<std::size_t>(N));
    for (Rank q = 0; q < N; ++q) {
      auto& row = recv[static_cast<std::size_t>(q)];
      row.resize(static_cast<std::size_t>(N));
      for (const auto& parcel : delivered[static_cast<std::size_t>(q)]) {
        row[static_cast<std::size_t>(parcel.block.origin)] = parcel.payload;
      }
    }
    return recv;
  }

  /// Resumes an interrupted exchange from its journal: requires
  /// recorded progress (a fresh run belongs to alltoall_resumable).
  /// The send buffers must be the same ones the original run used.
  template <typename T>
  std::vector<std::vector<T>> resume(const std::vector<std::vector<T>>& send,
                                     const FaultModel& faults, ExchangeJournal& journal,
                                     ExchangeOutcome& outcome,
                                     const ResumeOptions& options = {}) const {
    TOREX_REQUIRE(journal.bound() && !journal.fresh(),
                  "resume requires a journal with recorded progress");
    return alltoall_resumable(send, faults, journal, outcome, options);
  }

 private:
  /// Runs the sealed Suh-Shin exchange over the payloads.
  template <typename T>
  std::vector<std::vector<T>> run_sealed(const std::vector<std::vector<T>>& send,
                                         const CorruptionModel& corruption,
                                         const IntegrityOptions& options,
                                         IntegrityReport& report,
                                         Recorder* obs = nullptr) const {
    const Rank N = size();
    const SuhShinAape& algo = *schedule_;
    ParcelBuffers<T> parcels(static_cast<std::size_t>(N));
    for (Rank p = 0; p < N; ++p) {
      auto& buf = parcels[static_cast<std::size_t>(p)];
      buf.reserve(static_cast<std::size_t>(N));
      for (Rank q = 0; q < N; ++q) {
        buf.push_back(
            {Block{p, q}, send[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)]});
      }
    }
    IntegrityOptions effective = options;
    if (effective.arena == nullptr) effective.arena = &wire_arena_;
    const auto delivered = exchange_payloads_sealed(
        algo, std::move(parcels), corruption.tamperer(algo.torus()), effective, &report, obs);
    std::vector<std::vector<T>> recv(static_cast<std::size_t>(N));
    for (Rank q = 0; q < N; ++q) {
      auto& row = recv[static_cast<std::size_t>(q)];
      row.resize(static_cast<std::size_t>(N));
      for (const auto& parcel : delivered[static_cast<std::size_t>(q)]) {
        row[static_cast<std::size_t>(parcel.block.origin)] = parcel.payload;
      }
    }
    return recv;
  }

  TorusShape shape_;
  CostParams params_;
  /// Built once in the constructor when the shape qualifies; reused by
  /// every alltoall/estimate call.
  std::optional<SuhShinAape> schedule_;
  /// Frame pool shared by every exchange this communicator runs, so
  /// wire buffers recycle across calls and the pool/traffic statistics
  /// accumulate per communicator. Mutable because the collectives are
  /// logically const; concurrent calls on one communicator were never
  /// supported (each thread should own its communicator or engine).
  mutable WireArena wire_arena_;
};

}  // namespace torex
