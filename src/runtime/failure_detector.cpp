#include "runtime/failure_detector.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace torex {
namespace {

constexpr double kLn10 = 2.302585092994046;

}  // namespace

void FailureDetectorOptions::validate() const {
  TOREX_REQUIRE(heartbeat_interval >= 1,
                "failure detector: heartbeat interval must be positive");
  TOREX_REQUIRE(phi_threshold > 0.0, "failure detector: phi threshold must be positive");
  TOREX_REQUIRE(window >= 1, "failure detector: sample window must hold at least one gap");
  TOREX_REQUIRE(warmup_samples >= 0, "failure detector: warm-up sample count must be non-negative");
}

HeartbeatFailureDetector::HeartbeatFailureDetector(Rank num_nodes,
                                                   FailureDetectorOptions options,
                                                   Recorder* obs)
    : num_nodes_(num_nodes), options_(options), obs_(obs) {
  TOREX_REQUIRE(num_nodes >= 1, "failure detector needs at least one node");
  options_.validate();
  if (obs_ != nullptr && !obs_->enabled()) obs_ = nullptr;
  nodes_.resize(static_cast<std::size_t>(num_nodes));
}

bool HeartbeatFailureDetector::heartbeat(Rank node, std::int64_t tick) {
  TOREX_REQUIRE(node >= 0 && node < num_nodes_, "heartbeat from unknown node");
  auto& state = nodes_[static_cast<std::size_t>(node)];
  if (state.last_arrival >= 0 && tick <= state.last_arrival) {
    // Out-of-order or duplicate sample: a zero/negative gap entering
    // the window would collapse the mean and fabricate suspicion (or,
    // replayed, mask real silence). Drop it, loudly.
    ++dropped_samples_;
    if (obs_ != nullptr) obs_->metrics().counter("fd.dropped_samples").add();
    return false;
  }
  if (state.last_arrival < 0) {
    // First heartbeat: seed the window with nominal-interval samples so
    // the early mean starts at the configured cadence instead of being
    // dominated by the first one or two (possibly tiny) real gaps.
    const int seeds = std::min(options_.warmup_samples, options_.window);
    state.intervals.assign(static_cast<std::size_t>(seeds), options_.heartbeat_interval);
    state.next_slot = 0;
  }
  if (state.last_arrival >= 0) {
    const std::int64_t gap = tick - state.last_arrival;
    if (static_cast<int>(state.intervals.size()) < options_.window) {
      state.intervals.push_back(gap);
    } else {
      state.intervals[static_cast<std::size_t>(state.next_slot)] = gap;
      state.next_slot = (state.next_slot + 1) % options_.window;
    }
  }
  state.last_arrival = tick;
  return true;
}

double HeartbeatFailureDetector::mean_interval(const NodeState& state) const {
  if (state.intervals.empty()) {
    return static_cast<double>(options_.heartbeat_interval);
  }
  std::int64_t sum = 0;
  for (std::int64_t gap : state.intervals) sum += gap;
  const double mean = static_cast<double>(sum) / static_cast<double>(state.intervals.size());
  return std::max(mean, 1e-9);
}

double HeartbeatFailureDetector::phi(Rank node, std::int64_t tick) const {
  TOREX_REQUIRE(node >= 0 && node < num_nodes_, "phi query for unknown node");
  const auto& state = nodes_[static_cast<std::size_t>(node)];
  if (state.last_arrival < 0) return 0.0;  // no history: trusted
  const std::int64_t silence = tick - state.last_arrival;
  if (silence <= 0) return 0.0;
  return static_cast<double>(silence) / mean_interval(state) / kLn10;
}

std::vector<Rank> HeartbeatFailureDetector::suspects(std::int64_t tick) const {
  std::vector<Rank> out;
  for (Rank node = 0; node < num_nodes_; ++node) {
    if (suspect(node, tick)) out.push_back(node);
  }
  return out;
}

std::int64_t HeartbeatFailureDetector::suspicion_tick(Rank node) const {
  TOREX_REQUIRE(node >= 0 && node < num_nodes_, "suspicion query for unknown node");
  const auto& state = nodes_[static_cast<std::size_t>(node)];
  const std::int64_t last = state.last_arrival < 0 ? 0 : state.last_arrival;
  const double silence_needed = options_.phi_threshold * mean_interval(state) * kLn10;
  return last + static_cast<std::int64_t>(std::ceil(silence_needed));
}

std::vector<Suspicion> HeartbeatFailureDetector::observe_heartbeats(const FaultModel& faults,
                                                                    std::int64_t up_to_tick) {
  return observe_heartbeats(faults, 0, up_to_tick);
}

std::vector<Suspicion> HeartbeatFailureDetector::observe_heartbeats(const FaultModel& faults,
                                                                    std::int64_t from_tick,
                                                                    std::int64_t up_to_tick) {
  TOREX_REQUIRE(from_tick >= 0, "failure detector window must start at a non-negative tick");
  TOREX_REQUIRE(up_to_tick >= from_tick, "failure detector window must not be inverted");
  std::vector<Suspicion> transitions;
  for (std::int64_t tick = from_tick; tick <= up_to_tick; ++tick) {
    if (tick % options_.heartbeat_interval == 0) {
      for (Rank node = 0; node < num_nodes_; ++node) {
        if (!faults.node_failed(node, tick)) heartbeat(node, tick);
      }
    }
    for (Rank node = 0; node < num_nodes_; ++node) {
      auto& state = nodes_[static_cast<std::size_t>(node)];
      const bool suspected_now = suspect(node, tick);
      if (suspected_now && !state.suspected) {
        transitions.push_back({node, tick, phi(node, tick)});
        if (obs_ != nullptr) {
          // Zero-length span so the suspicion shows up in Chrome traces
          // strictly before the recovery.attempt spans it triggers.
          obs_->begin("fd.suspect", node);
          obs_->end("fd.suspect", node);
          obs_->instant("fd.suspicion_tick", node, 0, 0, tick);
          obs_->metrics().counter("fd.suspects").add();
        }
      }
      state.suspected = suspected_now;
    }
  }
  return transitions;
}

std::string HeartbeatFailureDetector::summary(std::int64_t tick) const {
  const auto suspected = suspects(tick);
  std::ostringstream out;
  out << "failure detector @ tick " << tick << ": " << suspected.size() << "/" << num_nodes_
      << " suspected";
  if (!suspected.empty()) {
    out << " [";
    for (std::size_t i = 0; i < suspected.size(); ++i) {
      out << (i == 0 ? "" : ", ") << suspected[i];
    }
    out << "]";
  }
  return out.str();
}

}  // namespace torex
