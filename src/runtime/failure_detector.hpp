// Heartbeat failure detector: phi-accrual suspicion over the simulated
// clock.
//
// PR 2's watchdogs are reactive — a dead node is only noticed after a
// whole stall deadline of silence. This detector is predictive in the
// phi-accrual style (Hayashibara et al.): every node emits a heartbeat
// each `heartbeat_interval` ticks; the detector keeps a sliding window
// of observed inter-arrival gaps per node and converts "how long since
// the last heartbeat" into a suspicion level
//
//   phi(node, t) = (t - last_arrival) / mean_interval / ln(10)
//
// i.e. the number of decades of improbability under an exponential
// inter-arrival model. A node is *suspected* once phi >= phi_threshold.
// With the defaults (interval 1, threshold 8) a crashed node is
// suspected ~19 ticks after its last heartbeat — far inside any
// realistic watchdog deadline — and a rejoining node un-suspects on its
// first fresh heartbeat.
//
// Everything is deterministic: heartbeats are derived from the fault
// model's node windows (a crashed node is silent while its fault is
// active), so the same faults + options always produce the same
// suspicion ticks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "sim/fault_model.hpp"
#include "topology/shape.hpp"

namespace torex {

/// Tuning of the heartbeat failure detector. validate() rejects
/// non-positive intervals/thresholds and inverted windows.
struct FailureDetectorOptions {
  /// Ticks between heartbeats of a live node.
  std::int64_t heartbeat_interval = 1;
  /// Suspicion threshold in phi units (decades of improbability).
  double phi_threshold = 8.0;
  /// Sliding window of inter-arrival samples kept per node.
  int window = 32;
  /// Synthetic samples of `heartbeat_interval` pre-seeded into a node's
  /// window on its first heartbeat, so a couple of atypically quick
  /// early beats cannot collapse the mean and make a fresh node
  /// instantly suspicious. The seeds age out of the ring as real gaps
  /// arrive. 0 restores the unseeded (warm-up-sensitive) estimate.
  int warmup_samples = 8;

  void validate() const;
};

/// One node crossing the suspicion threshold.
struct Suspicion {
  Rank node = -1;
  std::int64_t suspected_at = 0;  ///< first tick with phi >= threshold
  double phi = 0.0;               ///< phi at that tick
};

/// Deterministic phi-accrual detector over the simulated tick axis.
class HeartbeatFailureDetector {
 public:
  HeartbeatFailureDetector(Rank num_nodes, FailureDetectorOptions options,
                           Recorder* obs = nullptr);

  Rank num_nodes() const { return num_nodes_; }
  const FailureDetectorOptions& options() const { return options_; }

  /// Records a heartbeat from `node` at `tick`. Returns true when the
  /// sample was accepted. Out-of-order or duplicate samples (tick <=
  /// the node's last arrival) are dropped and counted — a late
  /// heartbeat must not shrink the observed gaps and mask real
  /// silence, nor may a replayed one skew phi. dropped_samples() and
  /// the fd.dropped_samples counter expose the drop volume.
  bool heartbeat(Rank node, std::int64_t tick);

  /// Non-monotonic samples refused so far.
  std::int64_t dropped_samples() const { return dropped_samples_; }

  /// Suspicion level of `node` at `tick` (0 before any heartbeat
  /// history exists — an unseen node is trusted until its first
  /// expected arrival is missed).
  double phi(Rank node, std::int64_t tick) const;

  bool suspect(Rank node, std::int64_t tick) const {
    return phi(node, tick) >= options_.phi_threshold;
  }

  /// All nodes suspected at `tick`, ascending.
  std::vector<Rank> suspects(std::int64_t tick) const;

  /// First tick >= the node's last arrival at which phi reaches the
  /// threshold if no further heartbeat arrives (closed form).
  std::int64_t suspicion_tick(Rank node) const;

  /// Drives the detector from a fault model: every node emits a
  /// heartbeat each interval in [0, up_to_tick] unless its node fault
  /// is active at that tick (crashed nodes go silent; a healed fault —
  /// a rejoin — resumes the beat). Emits an `fd.suspect` span and
  /// bumps the `fd.suspects` counter at each new suspicion transition,
  /// and returns every transition in tick order.
  std::vector<Suspicion> observe_heartbeats(const FaultModel& faults, std::int64_t up_to_tick);

  /// Incremental variant: observes only ticks in [from_tick,
  /// up_to_tick], so a driver advancing its own tick axis (torexd's
  /// fault tick) can feed the detector without re-walking history.
  /// observe_heartbeats(faults, t) == observe_heartbeats(faults, 0, t).
  std::vector<Suspicion> observe_heartbeats(const FaultModel& faults, std::int64_t from_tick,
                                            std::int64_t up_to_tick);

  std::string summary(std::int64_t tick) const;

 private:
  struct NodeState {
    std::int64_t last_arrival = -1;
    std::vector<std::int64_t> intervals;  // ring buffer of recent gaps
    int next_slot = 0;
    bool suspected = false;  // transition tracking for observe_heartbeats
  };

  double mean_interval(const NodeState& state) const;

  Rank num_nodes_;
  FailureDetectorOptions options_;
  Recorder* obs_;
  std::vector<NodeState> nodes_;
  std::int64_t dropped_samples_ = 0;
};

}  // namespace torex
