#include "runtime/journal.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "core/integrity.hpp"
#include "runtime/watchdog.hpp"
#include "util/crc32.hpp"

namespace torex {
namespace {

std::uint32_t crc_of(const std::vector<std::byte>& bytes, std::size_t begin, std::size_t end) {
  Crc32 crc;
  crc.update(bytes.data() + begin, end - begin);
  return crc.value();
}

}  // namespace

ExchangeJournal::ExchangeJournal(const TorusShape& shape, int num_phases,
                                 std::int64_t total_steps)
    : extents_(shape.extents()),
      num_nodes_(shape.num_nodes()),
      num_phases_(num_phases),
      total_steps_(total_steps),
      bitmap_(shape.num_nodes()) {
  TOREX_REQUIRE(num_phases >= 1, "journal needs at least one phase");
  TOREX_REQUIRE(total_steps >= 0, "journal step count must be non-negative");
  for (Rank p = 0; p < num_nodes_; ++p) bitmap_.mark(p, p);  // self-deliveries are free

  wire_put_u32(bytes_, kMagic);
  wire_put_u32(bytes_, kVersion);
  wire_put_u32(bytes_, static_cast<std::uint32_t>(extents_.size()));
  for (std::int32_t extent : extents_) {
    wire_put_u32(bytes_, static_cast<std::uint32_t>(extent));
  }
  wire_put_u32(bytes_, static_cast<std::uint32_t>(num_phases_));
  wire_put_u32(bytes_, static_cast<std::uint32_t>(total_steps_));
  wire_put_u32(bytes_, crc_of(bytes_, 0, bytes_.size()));
}

std::vector<std::pair<Rank, Rank>> ExchangeJournal::uncommitted_deliveries() const {
  std::vector<std::pair<Rank, Rank>> out;
  for (const auto& entry : deliveries_) {
    if (entry.flat_step >= committed_steps_) out.emplace_back(entry.dest, entry.origin);
  }
  return out;
}

void ExchangeJournal::mark_pair(Rank dest, Rank origin, bool require_new) {
  const bool fresh_mark = bitmap_.mark(dest, origin);
  if (require_new) {
    TOREX_CHECK(fresh_mark, "journal recorded the same delivery twice");
  }
}

void ExchangeJournal::append_record(RecordKind kind, const std::vector<std::byte>& payload) {
  TOREX_REQUIRE(bound(), "journal is not bound to an exchange");
  const std::size_t record_begin = bytes_.size();
  wire_put_u32(bytes_, static_cast<std::uint32_t>(kind));
  wire_put_u32(bytes_, static_cast<std::uint32_t>(payload.size()));
  bytes_.insert(bytes_.end(), payload.begin(), payload.end());
  wire_put_u32(bytes_, crc_of(bytes_, record_begin, bytes_.size()));
  ++records_;
}

void ExchangeJournal::record_deliveries(std::int64_t flat_step,
                                        const std::vector<std::pair<Rank, Rank>>& pairs) {
  TOREX_REQUIRE(bound(), "journal is not bound to an exchange");
  TOREX_REQUIRE(flat_step >= 0 && flat_step <= total_steps_,
                "delivery record step out of range");
  TOREX_REQUIRE(!pairs.empty(), "delivery record needs at least one pair");
  scratch_.clear();
  wire_put_u32(scratch_, static_cast<std::uint32_t>(flat_step));
  wire_put_u32(scratch_, static_cast<std::uint32_t>(pairs.size()));
  for (const auto& [dest, origin] : pairs) {
    TOREX_REQUIRE(dest >= 0 && dest < num_nodes_ && origin >= 0 && origin < num_nodes_,
                  "delivery pair out of range");
    TOREX_REQUIRE(dest != origin, "self-deliveries are implicit, never recorded");
    wire_put_u32(scratch_, static_cast<std::uint32_t>(dest));
    wire_put_u32(scratch_, static_cast<std::uint32_t>(origin));
  }
  append_record(kDeliveries, scratch_);
  for (const auto& [dest, origin] : pairs) {
    mark_pair(dest, origin, /*require_new=*/true);
    deliveries_.push_back({flat_step, dest, origin});
  }
}

void ExchangeJournal::commit_step(std::int64_t flat_step) {
  TOREX_REQUIRE(bound(), "journal is not bound to an exchange");
  TOREX_REQUIRE(flat_step == committed_steps_, "steps must commit in order");
  TOREX_REQUIRE(flat_step < total_steps_, "step commit past the schedule");
  scratch_.clear();
  wire_put_u32(scratch_, static_cast<std::uint32_t>(flat_step));
  append_record(kStepCommit, scratch_);
  committed_steps_ = flat_step + 1;
}

void ExchangeJournal::commit_phase(int phase) {
  TOREX_REQUIRE(bound(), "journal is not bound to an exchange");
  TOREX_REQUIRE(phase == committed_phase_ + 1, "phases must commit in order");
  TOREX_REQUIRE(phase <= num_phases_, "phase commit past the schedule");
  scratch_.clear();
  wire_put_u32(scratch_, static_cast<std::uint32_t>(phase));
  append_record(kPhaseCommit, scratch_);
  committed_phase_ = phase;
}

ExchangeJournal ExchangeJournal::decode(const std::vector<std::byte>& bytes) {
  std::size_t offset = 0;
  std::uint32_t magic = 0, version = 0, num_dims = 0;
  if (!wire_get_u32(bytes, offset, magic) || magic != kMagic) {
    throw JournalError("journal: bad magic (not a TOXJ stream)");
  }
  if (!wire_get_u32(bytes, offset, version) || version != kVersion) {
    throw JournalError("journal: unsupported version " + std::to_string(version));
  }
  if (!wire_get_u32(bytes, offset, num_dims) || num_dims == 0 || num_dims > 16) {
    throw JournalError("journal: malformed dimension count");
  }
  std::vector<std::int32_t> extents;
  for (std::uint32_t d = 0; d < num_dims; ++d) {
    std::uint32_t extent = 0;
    if (!wire_get_u32(bytes, offset, extent) || extent == 0 ||
        extent > static_cast<std::uint32_t>(std::numeric_limits<std::int32_t>::max())) {
      throw JournalError("journal: malformed extent");
    }
    extents.push_back(static_cast<std::int32_t>(extent));
  }
  std::uint32_t num_phases = 0, total_steps = 0, header_crc = 0;
  if (!wire_get_u32(bytes, offset, num_phases) || num_phases == 0) {
    throw JournalError("journal: malformed phase count");
  }
  if (!wire_get_u32(bytes, offset, total_steps)) {
    throw JournalError("journal: malformed step count");
  }
  const std::size_t header_end = offset;
  if (!wire_get_u32(bytes, offset, header_crc) ||
      header_crc != crc_of(bytes, 0, header_end)) {
    throw JournalError("journal: header checksum mismatch");
  }

  ExchangeJournal journal(TorusShape(extents), static_cast<int>(num_phases),
                          static_cast<std::int64_t>(total_steps));

  while (offset < bytes.size()) {
    const std::size_t record_begin = offset;
    std::uint32_t kind = 0, payload_len = 0;
    const bool have_frame = wire_get_u32(bytes, offset, kind) &&
                            wire_get_u32(bytes, offset, payload_len) &&
                            bytes.size() - offset >= payload_len + 4;
    bool intact = have_frame;
    std::size_t payload_begin = offset;
    if (have_frame) {
      offset = payload_begin + payload_len;
      std::uint32_t stored_crc = 0;
      const std::size_t record_end = offset;
      intact = wire_get_u32(bytes, offset, stored_crc) &&
               stored_crc == crc_of(bytes, record_begin, record_end);
    }
    if (!intact) {
      // Damage that extends to the end of the stream is a torn final
      // write: drop it. Anything with intact bytes after it cannot be
      // a tail and the journal is corrupt.
      const bool reaches_end =
          !have_frame || record_begin + 8 + payload_len + 4 >= bytes.size();
      if (reaches_end) {
        journal.torn_tail_ = true;
        break;
      }
      throw JournalError("journal: record checksum mismatch before the final record");
    }

    std::size_t cursor = payload_begin;
    const std::size_t payload_end = payload_begin + payload_len;
    auto read_field = [&](std::uint32_t& v) {
      return cursor + 4 <= payload_end && wire_get_u32(bytes, cursor, v);
    };
    switch (kind) {
      case kDeliveries: {
        std::uint32_t flat_step = 0, count = 0;
        if (!read_field(flat_step) || !read_field(count) || count == 0 ||
            flat_step > static_cast<std::uint32_t>(journal.total_steps_)) {
          throw JournalError("journal: malformed deliveries record");
        }
        std::vector<std::pair<Rank, Rank>> pairs;
        for (std::uint32_t i = 0; i < count; ++i) {
          std::uint32_t dest = 0, origin = 0;
          if (!read_field(dest) || !read_field(origin) ||
              dest >= static_cast<std::uint32_t>(journal.num_nodes_) ||
              origin >= static_cast<std::uint32_t>(journal.num_nodes_) || dest == origin) {
            throw JournalError("journal: malformed delivery pair");
          }
          pairs.emplace_back(static_cast<Rank>(dest), static_cast<Rank>(origin));
        }
        for (const auto& [dest, origin] : pairs) {
          if (journal.bitmap_.test(dest, origin)) {
            throw JournalError("journal: duplicate delivery record");
          }
          journal.bitmap_.mark(dest, origin);
          journal.deliveries_.push_back(
              {static_cast<std::int64_t>(flat_step), dest, origin});
        }
        break;
      }
      case kStepCommit: {
        std::uint32_t flat_step = 0;
        if (!read_field(flat_step) ||
            static_cast<std::int64_t>(flat_step) != journal.committed_steps_ ||
            static_cast<std::int64_t>(flat_step) >= journal.total_steps_) {
          throw JournalError("journal: out-of-order step commit");
        }
        journal.committed_steps_ = static_cast<std::int64_t>(flat_step) + 1;
        break;
      }
      case kPhaseCommit: {
        std::uint32_t phase = 0;
        if (!read_field(phase) ||
            static_cast<int>(phase) != journal.committed_phase_ + 1 ||
            static_cast<int>(phase) > journal.num_phases_) {
          throw JournalError("journal: out-of-order phase commit");
        }
        journal.committed_phase_ = static_cast<int>(phase);
        break;
      }
      default:
        throw JournalError("journal: unknown record kind " + std::to_string(kind));
    }
    if (cursor != payload_end) {
      throw JournalError("journal: record payload length mismatch");
    }
    ++journal.records_;
    journal.bytes_.insert(journal.bytes_.end(), bytes.begin() + static_cast<std::ptrdiff_t>(record_begin),
                          bytes.begin() + static_cast<std::ptrdiff_t>(payload_end + 4));
  }
  return journal;
}

void ExchangeJournal::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("journal: cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(bytes_.data()),
            static_cast<std::streamsize>(bytes_.size()));
  if (!out) throw std::runtime_error("journal: short write to '" + path + "'");
}

ExchangeJournal ExchangeJournal::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("journal: cannot open '" + path + "' for reading");
  std::vector<std::byte> bytes;
  char chunk[4096];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    for (std::streamsize i = 0; i < in.gcount(); ++i) {
      bytes.push_back(static_cast<std::byte>(chunk[i]));
    }
  }
  return decode(bytes);
}

std::string ExchangeJournal::summary() const {
  if (!bound()) return "journal: unbound";
  std::ostringstream out;
  out << "journal: ";
  for (std::size_t d = 0; d < extents_.size(); ++d) {
    out << (d == 0 ? "" : "x") << extents_[d];
  }
  out << " torus, " << records_ << " records, " << committed_steps_ << "/" << total_steps_
      << " steps committed, phase " << committed_phase_ << "/" << num_phases_ << ", "
      << bitmap_.delivered() << "/" << bitmap_.expected() << " parcels delivered";
  if (torn_tail_) out << ", torn tail dropped";
  return out.str();
}

void JournalFileSink::sync(const ExchangeJournal& journal) {
  const std::vector<std::byte>& bytes = journal.encode();
  if (!wrote_ || bytes.size() < synced_) {
    // First sync (or a journal that restarted): rewrite from scratch,
    // truncating whatever the file held — including a torn tail a
    // resumed journal dropped on load.
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("journal: cannot open '" + path_ + "' for writing");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw std::runtime_error("journal: short write to '" + path_ + "'");
    ++rewrites_;
    bytes_written_ += static_cast<std::int64_t>(bytes.size());
    synced_ = bytes.size();
    wrote_ = true;
    return;
  }
  if (bytes.size() == synced_) return;  // nothing recorded since last sync
  // Append only the tail, straight from the journal's buffer.
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) throw std::runtime_error("journal: cannot open '" + path_ + "' for appending");
  out.write(reinterpret_cast<const char*>(bytes.data() + synced_),
            static_cast<std::streamsize>(bytes.size() - synced_));
  if (!out) throw std::runtime_error("journal: short append to '" + path_ + "'");
  ++appends_;
  bytes_written_ += static_cast<std::int64_t>(bytes.size() - synced_);
  synced_ = bytes.size();
}

namespace detail {

void throw_journal_cancelled(int phase, int step) {
  throw ExchangeCancelledError("journaled exchange cancelled between flush and commit (phase " +
                               std::to_string(phase) + ", step " + std::to_string(step) + ")");
}

void require_journal_matches(const SuhShinAape& algo, const ExchangeJournal& journal) {
  TOREX_REQUIRE(journal.bound(), "journal is not bound to an exchange");
  TOREX_REQUIRE(journal.extents() == algo.shape().extents(),
                "journal was recorded for a different torus shape");
  TOREX_REQUIRE(journal.num_phases() == algo.num_phases() &&
                    journal.total_steps() == algo.total_steps(),
                "journal was recorded for a different schedule");
}

}  // namespace detail

std::string ResumeReport::summary() const {
  std::ostringstream out;
  out << (resumed ? "resumed" : "fresh") << " run: ";
  if (resumed) {
    out << committed_steps_at_start << " steps committed at start, " << delivered_at_start
        << " parcels already durable, " << materialized << " materialized, "
        << replayed_parcels << " replayed locally, ";
  }
  out << sent_parcels << " parcels sent, " << duplicates_dropped << " duplicates dropped, "
      << journal_flushes << " journal flushes";
  return out.str();
}

}  // namespace torex
