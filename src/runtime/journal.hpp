// Write-ahead exchange journal and the delta-resume runner.
//
// The Suh-Shin schedule is phase-structured, which makes it naturally
// checkpointable: after every schedule step the set of parcels that
// already sit on their destination is exactly known. This module makes
// that progress durable. A run appends CRC-32-sealed records to an
// ExchangeJournal — per-step delivery bitmaps (core/payload_exchange.hpp
// DeliveryBitmap pairs) followed by step/phase commit markers — and a
// crash between flush and commit loses at most the in-memory state of
// one step. Resume replays the committed prefix locally (deterministic,
// no wire traffic), materializes flushed-but-uncommitted deliveries from
// the journal, then re-runs only the remaining steps; a re-received
// parcel whose delivery is already durable is detected via the bitmap
// and dropped, giving exactly-once integration.
//
// Wire format (little-endian, version 1):
//   header:  magic "TOXJ" | version | num_dims | extents... |
//            num_phases | total_steps | CRC-32(header bytes)
//   record:  kind | payload_len | payload | CRC-32(kind+len+payload)
//     kind 1 kDeliveries  payload: flat_step | count | count x (dest, origin)
//     kind 2 kStepCommit  payload: flat_step   (steps [0, flat_step] durable)
//     kind 3 kPhaseCommit payload: phase       (1-based)
// A torn tail (truncated or CRC-damaged *final* record) is dropped on
// load and reported via torn_tail(); damage anywhere earlier is
// unrecoverable corruption and raises JournalError.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/aape.hpp"
#include "core/payload_exchange.hpp"
#include "obs/recorder.hpp"
#include "topology/shape.hpp"
#include "util/assert.hpp"

namespace torex {

/// Raised when a journal's bytes are unusable: bad magic, unsupported
/// version, malformed header, or corruption before the final record.
class JournalError : public std::runtime_error {
 public:
  explicit JournalError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only durable progress of one all-to-all exchange. Value type;
/// encode() returns the exact byte stream flushed so far, decode()
/// rebuilds the in-memory state from a (possibly torn) stream.
class ExchangeJournal {
 public:
  static constexpr std::uint32_t kMagic = 0x4A584F54u;  // "TOXJ" little-endian
  static constexpr std::uint32_t kVersion = 1;
  enum RecordKind : std::uint32_t {
    kDeliveries = 1,
    kStepCommit = 2,
    kPhaseCommit = 3,
  };

  /// Unbound journal: bound() is false and every mutator refuses.
  ExchangeJournal() = default;

  /// Binds a fresh journal to one exchange's geometry. Self-parcels
  /// (p -> p) never cross the wire; they are durable by construction
  /// and pre-marked here (and again on decode).
  ExchangeJournal(const TorusShape& shape, int num_phases, std::int64_t total_steps);

  bool bound() const { return num_nodes_ > 0; }
  const std::vector<std::int32_t>& extents() const { return extents_; }
  Rank num_nodes() const { return num_nodes_; }
  int num_phases() const { return num_phases_; }
  std::int64_t total_steps() const { return total_steps_; }

  /// No progress recorded beyond the implicit self-deliveries.
  bool fresh() const { return records_ == 0; }
  std::int64_t records() const { return records_; }

  /// Number of flat schedule steps whose commit record is durable
  /// (commit of 0-based step s implies committed_steps() >= s + 1).
  std::int64_t committed_steps() const { return committed_steps_; }
  /// Highest phase-commit marker seen (0 = none).
  int committed_phase() const { return committed_phase_; }

  const DeliveryBitmap& delivered() const { return bitmap_; }
  std::int64_t delivered_parcels() const { return bitmap_.delivered(); }
  bool exchange_complete() const { return bitmap_.complete() && committed_phase_ == num_phases_; }

  /// Deliveries recorded for steps after the last committed one —
  /// durable parcels whose step died before its commit marker.
  std::vector<std::pair<Rank, Rank>> uncommitted_deliveries() const;

  /// Appends one kDeliveries record for `flat_step` (0-based) and marks
  /// the bitmap. Pairs are (dest, origin); re-marking an already
  /// delivered pair is an error (exactly-once is the writer's job).
  void record_deliveries(std::int64_t flat_step,
                         const std::vector<std::pair<Rank, Rank>>& pairs);
  /// Appends a kStepCommit marker; steps must commit in order.
  void commit_step(std::int64_t flat_step);
  /// Appends a kPhaseCommit marker; phases must commit in order.
  void commit_phase(int phase);

  /// The exact byte stream of everything recorded so far.
  const std::vector<std::byte>& encode() const { return bytes_; }

  /// Rebuilds a journal from bytes. A damaged *final* record is dropped
  /// (torn write) and flagged; any earlier damage raises JournalError.
  static ExchangeJournal decode(const std::vector<std::byte>& bytes);

  /// True when decode() dropped a torn tail record.
  bool torn_tail() const { return torn_tail_; }

  void save_file(const std::string& path) const;
  static ExchangeJournal load_file(const std::string& path);

  std::string summary() const;

 private:
  void append_record(RecordKind kind, const std::vector<std::byte>& payload);
  void mark_pair(Rank dest, Rank origin, bool require_new);

  /// Reused by every record builder so steady-state journaling does
  /// not allocate per record.
  std::vector<std::byte> scratch_;

  std::vector<std::int32_t> extents_;
  Rank num_nodes_ = 0;
  int num_phases_ = 0;
  std::int64_t total_steps_ = 0;

  DeliveryBitmap bitmap_;
  std::int64_t committed_steps_ = 0;
  int committed_phase_ = 0;
  std::int64_t records_ = 0;
  bool torn_tail_ = false;

  /// Every delivery with the flat step it was recorded in, journal
  /// order — the source for uncommitted_deliveries().
  struct DeliveryEntry {
    std::int64_t flat_step;
    Rank dest;
    Rank origin;
  };
  std::vector<DeliveryEntry> deliveries_;

  std::vector<std::byte> bytes_;
};

/// Incremental durability sink for one journal file. The first sync()
/// rewrites the file from scratch (truncating any stale or torn
/// on-disk content — important on resume, where the file may still
/// hold a torn tail the loaded journal dropped); every later sync()
/// appends only the bytes recorded since, writing straight out of the
/// journal's own buffer, so a flush costs O(new bytes) instead of
/// O(journal) and copies nothing. A journal whose byte stream shrank
/// (rebound to a new exchange) triggers a fresh rewrite. A sink
/// follows one journal at a time.
class JournalFileSink {
 public:
  explicit JournalFileSink(std::string path) : path_(std::move(path)) {}

  /// Persists everything the journal has recorded so far.
  void sync(const ExchangeJournal& journal);

  const std::string& path() const { return path_; }
  std::int64_t appends() const { return appends_; }
  std::int64_t rewrites() const { return rewrites_; }
  std::int64_t bytes_written() const { return bytes_written_; }

 private:
  std::string path_;
  std::size_t synced_ = 0;
  bool wrote_ = false;
  std::int64_t appends_ = 0;
  std::int64_t rewrites_ = 0;
  std::int64_t bytes_written_ = 0;
};

/// Simulated process death injected into a journaled run: the step's
/// deliveries may or may not have been flushed (after_flush), its
/// commit marker never is. phase == 0 disables.
struct CrashPoint {
  int phase = 0;  ///< 1-based phase to die in; 0 = never
  int step = 1;   ///< 1-based step within the phase
  bool after_flush = true;

  bool armed() const { return phase > 0; }
};

/// Raised by a journaled run when its CrashPoint fires. The journal the
/// caller passed in retains everything flushed before the "death".
class ExchangeCrashError : public std::runtime_error {
 public:
  ExchangeCrashError(int phase, int step, const std::string& what)
      : std::runtime_error(what), phase_(phase), step_(step) {}
  int phase() const { return phase_; }
  int step() const { return step_; }

 private:
  int phase_;
  int step_;
};

/// Accounting of one journaled run, fresh or resumed.
struct ResumeReport {
  bool resumed = false;                     ///< journal had prior progress
  std::int64_t committed_steps_at_start = 0;
  int committed_phase_at_start = 0;
  std::int64_t delivered_at_start = 0;      ///< durable parcels on entry (self included)
  std::int64_t materialized = 0;            ///< flushed-uncommitted parcels restored at dests
  std::int64_t replayed_parcels = 0;        ///< parcel moves recomputed locally (no wire)
  std::int64_t sent_parcels = 0;            ///< parcel transmissions on the wire this run
  std::int64_t duplicates_dropped = 0;      ///< re-received already-durable parcels discarded
  std::int64_t journal_flushes = 0;         ///< flush callback invocations

  std::string summary() const;
};

/// Hooks and injections for a journaled run.
struct JournalRunOptions {
  CrashPoint crash;
  /// Cooperative cancel, polled between a step's journal flush and its
  /// commit marker (the worst-case race for the resume path). Throws
  /// ExchangeCancelledError (runtime/watchdog.hpp) via the runner.
  const std::atomic<bool>* cancel = nullptr;
  /// Durability hook: called after every appended record batch with the
  /// journal in its current (flushed) state. Persist encode() here
  /// (JournalFileSink::sync appends incrementally).
  std::function<void(const ExchangeJournal&)> flush;
  Recorder* obs = nullptr;
  /// Optional frame pool: when set (and the payload is trivially
  /// copyable) live sends cross the wire as pooled sealed frames —
  /// encoded with one memcpy, verified, and integrated in place —
  /// instead of per-parcel struct moves. Replayed steps stay local
  /// and never touch the wire either way.
  WireArena* wire = nullptr;
};

namespace detail {

void throw_journal_cancelled(int phase, int step);

/// Resuming a journal that already covers the whole exchange: nothing
/// crosses the wire; rebuild the delivered buffers from the seed.
template <typename T>
ParcelBuffers<T> rebuild_complete(Rank N, ParcelBuffers<T> buffers, ResumeReport& report) {
  ParcelBuffers<T> out(static_cast<std::size_t>(N));
  for (Rank origin = 0; origin < N; ++origin) {
    auto& src = buffers[static_cast<std::size_t>(origin)];
    for (auto& parcel : src) {
      if (parcel.block.dest != origin) ++report.materialized;
      out[static_cast<std::size_t>(parcel.block.dest)].push_back(std::move(parcel));
    }
    src.clear();
  }
  check_parcel_postcondition(N, out);
  return out;
}

inline void journal_flush(ExchangeJournal& journal, const JournalRunOptions& options,
                          ResumeReport& report) {
  if (options.flush) options.flush(journal);
  ++report.journal_flushes;
}

/// Requires `journal` bound and matching the schedule's geometry.
void require_journal_matches(const SuhShinAape& algo, const ExchangeJournal& journal);

}  // namespace detail

/// Runs the schedule over `buffers` (canonical all-to-all seed) with
/// write-ahead journaling into `journal`. A bound journal with prior
/// progress triggers delta resume: the committed prefix is replayed
/// locally, flushed-but-uncommitted deliveries are materialized from the
/// seed, and only the remaining steps touch the wire; re-received
/// durable parcels are dropped (report.duplicates_dropped). An unbound
/// journal is bound to the schedule's geometry first. Requires T
/// copyable (materialization duplicates payloads on purpose).
template <typename T>
ParcelBuffers<T> exchange_payloads_journaled(const SuhShinAape& algo, ParcelBuffers<T> buffers,
                                             ExchangeJournal& journal,
                                             const JournalRunOptions& options,
                                             ResumeReport& report) {
  const Rank N = algo.shape().num_nodes();
  detail::require_canonical_parcel_seed(N, buffers);
  if (!journal.bound()) {
    journal = ExchangeJournal(algo.shape(), algo.num_phases(), algo.total_steps());
  }
  detail::require_journal_matches(algo, journal);

  Recorder* obs = options.obs;
  if (obs != nullptr && !obs->enabled()) obs = nullptr;
  SpanGuard run_span(obs, "journaled_exchange");

  report = ResumeReport{};
  report.resumed = !journal.fresh();
  report.committed_steps_at_start = journal.committed_steps();
  report.committed_phase_at_start = journal.committed_phase();
  report.delivered_at_start = journal.delivered_parcels();
  const WirePoolStats wire_stats_before =
      options.wire != nullptr ? options.wire->stats() : WirePoolStats{};

  if (journal.exchange_complete()) {
    return detail::rebuild_complete(N, std::move(buffers), report);
  }

  // Materialize flushed-but-uncommitted deliveries from the canonical
  // seed: the payload of (origin -> dest) sits in origin's buffer. The
  // seed copy stays put — it re-travels the re-run steps exactly as a
  // real sender that never saw the ack would re-send it, and arrives as
  // a duplicate the bitmap catches.
  const auto uncommitted = journal.uncommitted_deliveries();
  for (const auto& [dest, origin] : uncommitted) {
    if (origin == dest) continue;
    auto& src = buffers[static_cast<std::size_t>(origin)];
    bool found = false;
    for (const auto& parcel : src) {
      if (parcel.block.origin == origin && parcel.block.dest == dest) {
        buffers[static_cast<std::size_t>(dest)].push_back(parcel);
        ++report.materialized;
        found = true;
        break;
      }
    }
    TOREX_CHECK(found, "journaled delivery missing from the canonical seed");
  }

  ParcelBuffers<T> inbox(static_cast<std::size_t>(N));
  std::vector<std::pair<Rank, Rank>> arrivals;
  PooledFrame frame;  // wire-path scratch, rebound per message
  std::int64_t flat_step = 0;  // 0-based global step index

  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    SpanGuard phase_span(obs, "journal_phase", -1, phase);
    for (int step = 1; step <= algo.steps_in_phase(phase); ++step, ++flat_step) {
      const bool replay = flat_step < report.committed_steps_at_start;
      SpanGuard step_span(obs, replay ? "journal_replay_step" : "journal_step", -1, phase, step);

      arrivals.clear();
      for (Rank p = 0; p < N; ++p) {
        auto& buf = buffers[static_cast<std::size_t>(p)];
        // A materialized duplicate already sitting on its destination
        // never matches should_send (the predicates compare node vs
        // dest coordinates), so only genuine in-flight parcels move.
        auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Parcel<T>& x) {
          return !algo.should_send(p, phase, step, x.block);
        });
        if (split == buf.end()) continue;
        const auto moved = static_cast<std::int64_t>(std::distance(split, buf.end()));
        if (replay) {
          report.replayed_parcels += moved;
        } else {
          report.sent_parcels += moved;
        }
        const Rank q = algo.partner(p, phase, step);
        auto& in = inbox[static_cast<std::size_t>(q)];
        bool framed = false;
        if constexpr (std::is_trivially_copyable_v<Parcel<T>>) {
          if (!replay && options.wire != nullptr) {
            // Live send over the pooled wire: one frame per message,
            // encoded with a single memcpy of the partitioned tail,
            // CRC-verified, and appended to the inbox in place. The
            // internal wire is never tampered with, so a failed
            // verification is a logic error, not a retransmit case.
            WireArena& arena = *options.wire;
            const std::size_t send_count = static_cast<std::size_t>(moved);
            const std::size_t run_bytes = send_count * sizeof(Parcel<T>);
            frame.bind(arena, detail::kFrameHeaderBytes + run_bytes + detail::kFrameTrailerBytes);
            encode_sealed_frame(&*split, send_count, phase, step, p, q, frame.bytes());
            arena.stats().note_message(moved, 1);
            arena.stats().bytes_encoded += static_cast<std::int64_t>(frame.bytes().size());
            arena.stats().bytes_copied += static_cast<std::int64_t>(run_bytes);
            SealedFrameView<T> view;
            std::string why;
            TOREX_CHECK(
                decode_sealed_frame<T>(frame.view(), phase, step, p, q, N, view, &why),
                "journaled wire frame failed verification: " + why);
            view.append_to(in);
            arena.stats().bytes_copied += static_cast<std::int64_t>(view.run_size());
            framed = true;
          }
        }
        if (!framed) {
          in.insert(in.end(), std::make_move_iterator(split),
                    std::make_move_iterator(buf.end()));
        }
        buf.erase(split, buf.end());
      }
      for (Rank p = 0; p < N; ++p) {
        auto& in = inbox[static_cast<std::size_t>(p)];
        if (in.empty()) continue;
        auto& buf = buffers[static_cast<std::size_t>(p)];
        for (auto& parcel : in) {
          if (parcel.block.dest == p) {
            if (!replay && journal.delivered().test(p, parcel.block.origin)) {
              // Durable copy already materialized; this is the seed
              // copy arriving again. Exactly-once: drop it.
              ++report.duplicates_dropped;
              if (obs != nullptr) {
                obs->instant("duplicate_dropped", p, phase, step,
                             static_cast<std::int64_t>(parcel.block.origin));
              }
              continue;
            }
            arrivals.emplace_back(p, parcel.block.origin);
          }
          buf.push_back(std::move(parcel));
        }
        in.clear();
      }

      if (replay) continue;  // progress already durable; nothing to journal

      // Write-ahead order: deliveries flush before the commit marker,
      // and the cooperative cancel window sits exactly between them.
      // Self pairs are pre-marked at bind; filter them out.
      std::vector<std::pair<Rank, Rank>> new_deliveries;
      for (const auto& [dest, origin] : arrivals) {
        if (dest != origin) new_deliveries.emplace_back(dest, origin);
      }
      const bool crash_here = options.crash.armed() && options.crash.phase == phase &&
                              options.crash.step == step;
      if (crash_here && !options.crash.after_flush) {
        throw ExchangeCrashError(phase, step,
                                 "injected crash before journal flush (phase " +
                                     std::to_string(phase) + ", step " + std::to_string(step) +
                                     ")");
      }
      if (!new_deliveries.empty()) {
        journal.record_deliveries(flat_step, new_deliveries);
        detail::journal_flush(journal, options, report);
        if (obs != nullptr) {
          obs->instant("journal_flush", -1, phase, step,
                       static_cast<std::int64_t>(new_deliveries.size()));
        }
      }
      if (crash_here) {
        throw ExchangeCrashError(phase, step,
                                 "injected crash after journal flush (phase " +
                                     std::to_string(phase) + ", step " + std::to_string(step) +
                                     ")");
      }
      if (options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed)) {
        detail::throw_journal_cancelled(phase, step);
      }
      journal.commit_step(flat_step);
      detail::journal_flush(journal, options, report);
    }
    if (phase > journal.committed_phase()) {
      journal.commit_phase(phase);
      detail::journal_flush(journal, options, report);
    }
  }

  detail::check_parcel_postcondition(N, buffers);
  TOREX_CHECK(journal.exchange_complete(), "journal incomplete after a finished exchange");
  if (obs != nullptr) {
    obs->metrics().counter("journal.records").add(journal.records());
    obs->metrics().counter("resume.sent_parcels").add(report.sent_parcels);
    obs->metrics().counter("resume.replayed_parcels").add(report.replayed_parcels);
    obs->metrics().counter("resume.duplicates_dropped").add(report.duplicates_dropped);
    if (options.wire != nullptr) {
      detail::publish_wire_metrics(
          obs, wire_stats_delta(options.wire->stats(), wire_stats_before));
    }
  }
  return buffers;
}

/// Degraded-mode journaled delta: delivers every still-undelivered
/// parcel straight to its destination (no schedule), journaling one
/// deliveries record per origin. Used when the recovery chain has
/// abandoned the Suh-Shin schedule (remap/direct plans) but the journal
/// must stay the source of truth so a later resume — scheduled or
/// direct — sends strictly less. Already-durable parcels are
/// materialized, not re-sent.
template <typename T>
ParcelBuffers<T> exchange_payloads_direct_journaled(const SuhShinAape& algo,
                                                    ParcelBuffers<T> buffers,
                                                    ExchangeJournal& journal,
                                                    const JournalRunOptions& options,
                                                    ResumeReport& report) {
  const Rank N = algo.shape().num_nodes();
  detail::require_canonical_parcel_seed(N, buffers);
  if (!journal.bound()) {
    journal = ExchangeJournal(algo.shape(), algo.num_phases(), algo.total_steps());
  }
  detail::require_journal_matches(algo, journal);

  Recorder* obs = options.obs;
  if (obs != nullptr && !obs->enabled()) obs = nullptr;
  SpanGuard run_span(obs, "journaled_direct_delta");

  report = ResumeReport{};
  report.resumed = !journal.fresh();
  report.committed_steps_at_start = journal.committed_steps();
  report.committed_phase_at_start = journal.committed_phase();
  report.delivered_at_start = journal.delivered_parcels();

  if (journal.exchange_complete()) {
    return detail::rebuild_complete(N, std::move(buffers), report);
  }

  // The direct path ignores step structure entirely: all delivery
  // records land on the sentinel flat step total_steps(), and only the
  // final phase is committed. A scheduled resume of such a journal sees
  // zero committed steps and treats every durable pair as
  // flushed-but-uncommitted — materialize + dedup — which is correct.
  ParcelBuffers<T> out(static_cast<std::size_t>(N));
  std::vector<std::pair<Rank, Rank>> new_deliveries;
  for (Rank origin = 0; origin < N; ++origin) {
    new_deliveries.clear();
    auto& src = buffers[static_cast<std::size_t>(origin)];
    for (auto& parcel : src) {
      const Rank dest = parcel.block.dest;
      if (journal.delivered().test(dest, origin)) {
        ++report.materialized;
      } else if (dest != origin) {
        ++report.sent_parcels;
        new_deliveries.emplace_back(dest, origin);
      }
      out[static_cast<std::size_t>(dest)].push_back(std::move(parcel));
    }
    src.clear();
    if (!new_deliveries.empty()) {
      journal.record_deliveries(journal.total_steps(), new_deliveries);
      detail::journal_flush(journal, options, report);
    }
    if (options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed)) {
      detail::throw_journal_cancelled(0, static_cast<int>(origin));
    }
  }
  while (journal.committed_steps() < journal.total_steps()) {
    journal.commit_step(journal.committed_steps());
  }
  for (int phase = journal.committed_phase() + 1; phase <= journal.num_phases(); ++phase) {
    journal.commit_phase(phase);
  }
  detail::journal_flush(journal, options, report);

  detail::check_parcel_postcondition(N, out);
  TOREX_CHECK(journal.exchange_complete(), "journal incomplete after a finished direct delta");
  if (obs != nullptr) {
    obs->metrics().counter("resume.sent_parcels").add(report.sent_parcels);
    obs->metrics().counter("resume.duplicates_dropped").add(report.duplicates_dropped);
  }
  return out;
}

}  // namespace torex
