#include "runtime/node_program.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/exchange_engine.hpp"
#include "util/assert.hpp"

namespace torex {

LocalSchedule extract_local_schedule(const SuhShinAape& algo, Rank node) {
  LocalSchedule out;
  out.shape = algo.shape();
  out.self = node;
  out.self_coord = algo.shape().coord_of(node);
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    LocalSchedule::PhaseInfo info;
    info.kind = algo.phase_kind(phase);
    info.steps = algo.steps_in_phase(phase);
    info.hops = algo.hops_per_step(phase);
    out.phases.push_back(info);
    for (int step = 1; step <= info.steps; ++step) {
      LocalSchedule::StepPlan plan;
      plan.partner = algo.partner(node, phase, step);
      plan.dim = algo.direction(node, phase, step).dim;
      out.plan.push_back(plan);
    }
  }
  return out;
}

NodeProgram::NodeProgram(LocalSchedule schedule) : schedule_(std::move(schedule)) {}

void NodeProgram::seed_canonical() {
  const Rank N = schedule_.shape.num_nodes();
  buffer_.clear();
  buffer_.reserve(static_cast<std::size_t>(N));
  for (Rank d = 0; d < N; ++d) buffer_.push_back(Block{schedule_.self, d});
}

void NodeProgram::seed(std::vector<Block> blocks) {
  for (const Block& b : blocks) {
    TOREX_REQUIRE(b.origin == schedule_.self, "block must originate at this node");
  }
  buffer_ = std::move(blocks);
}

bool NodeProgram::should_send(std::size_t flat_step, const Block& b) const {
  // Locate the phase of this flat step (the per-node phase table is a
  // handful of entries; linear scan is fine and keeps the node logic
  // obviously local).
  std::size_t remaining = flat_step;
  const LocalSchedule::PhaseInfo* phase = nullptr;
  for (const auto& info : schedule_.phases) {
    if (remaining < static_cast<std::size_t>(info.steps)) {
      phase = &info;
      break;
    }
    remaining -= static_cast<std::size_t>(info.steps);
  }
  TOREX_CHECK(phase != nullptr, "flat step out of range");

  const int dim = schedule_.plan[flat_step].dim;
  const std::size_t d = static_cast<std::size_t>(dim);
  // Everything below is local arithmetic on the destination's
  // coordinates — no global state.
  const Coord dest = schedule_.shape.coord_of(b.dest);
  switch (phase->kind) {
    case PhaseKind::kScatter:
      return dest[d] / 4 != schedule_.self_coord[d] / 4;
    case PhaseKind::kQuarterExchange:
      return (dest[d] % 4) / 2 != (schedule_.self_coord[d] % 4) / 2;
    case PhaseKind::kPairExchange:
      return dest[d] % 2 != schedule_.self_coord[d] % 2;
  }
  TOREX_UNREACHABLE();
}

std::vector<Block> NodeProgram::collect_outgoing(std::size_t flat_step, Rank& partner_out) {
  TOREX_REQUIRE(flat_step < schedule_.plan.size(), "step out of range");
  partner_out = schedule_.plan[flat_step].partner;
  auto split = std::stable_partition(buffer_.begin(), buffer_.end(), [&](const Block& b) {
    return !should_send(flat_step, b);
  });
  std::vector<Block> outgoing(split, buffer_.end());
  buffer_.erase(split, buffer_.end());
  return outgoing;
}

void NodeProgram::integrate(std::vector<Block> message) {
  buffer_.insert(buffer_.end(), message.begin(), message.end());
}

StepSynchronousRuntime::StepSynchronousRuntime(const SuhShinAape& algo, StepSyncOptions options)
    : shape_(algo.shape()),
      options_(std::move(options)),
      total_steps_(static_cast<std::size_t>(algo.total_steps())) {
  programs_.reserve(static_cast<std::size_t>(shape_.num_nodes()));
  for (Rank node = 0; node < shape_.num_nodes(); ++node) {
    programs_.emplace_back(extract_local_schedule(algo, node));
  }
}

ExchangeTrace StepSynchronousRuntime::run_verified() {
  const Rank N = shape_.num_nodes();
  for (auto& program : programs_) program.seed_canonical();

  // Single-writer mailboxes: the one-port property guarantees at most
  // one message per destination per step.
  std::vector<std::vector<Block>> mailbox(static_cast<std::size_t>(N));
  std::vector<Rank> mailbox_writer(static_cast<std::size_t>(N), -1);

  ExchangeTrace trace;
  trace.rearrangement_passes = shape_.num_dims() + 1;
  trace.blocks_per_rearrangement = N;

  // Reconstruct the (phase, step) labels from any one program's local
  // phase table (it is identical across nodes).
  const auto& phases = programs_.front().schedule().phases;
  Recorder* obs =
      options_.obs != nullptr && options_.obs->enabled() ? options_.obs : nullptr;
  std::size_t flat = 0;
  for (std::size_t phase_index = 0; phase_index < phases.size(); ++phase_index) {
    SpanGuard phase_span(obs, "phase", -1, static_cast<std::int32_t>(phase_index) + 1);
    for (int step = 1; step <= phases[phase_index].steps; ++step, ++flat) {
      StepRecord record;
      record.phase = static_cast<int>(phase_index) + 1;
      record.step = step;
      record.hops = phases[phase_index].hops;
      SpanGuard step_span(obs, "step", -1, record.phase, record.step);
      const auto superstep_start = std::chrono::steady_clock::now();
      for (Rank p = 0; p < N; ++p) {
        if (options_.cancel != nullptr && options_.cancel->load()) {
          throw ExchangeCancelledError("step-synchronous runtime cancelled by caller");
        }
        if (options_.suspect_probe) {
          if (const auto suspect = options_.suspect_probe()) {
            if (obs != nullptr) {
              obs->begin("fd.suspect", *suspect);
              obs->end("fd.suspect", *suspect);
              obs->metrics().counter("fd.suspects").add();
            }
            throw CrashSuspectedError(record.phase, record.step, *suspect);
          }
        }
        if (options_.before_send_hook) options_.before_send_hook(record.phase, record.step, p);
        if (options_.stall_deadline.count() > 0 &&
            std::chrono::steady_clock::now() - superstep_start >= options_.stall_deadline) {
          if (obs != nullptr) obs->instant("stall_deadline", p, record.phase, record.step);
          throw RuntimeStallError(record.phase, record.step, p, options_.stall_deadline,
                                  "superstep overran its deadline");
        }
        SpanGuard node_span(obs, "node_step", p, record.phase, record.step);
        Rank partner = -1;
        std::vector<Block> message =
            programs_[static_cast<std::size_t>(p)].collect_outgoing(flat, partner);
        if (message.empty()) continue;
        TOREX_CHECK(mailbox_writer[static_cast<std::size_t>(partner)] == -1,
                    "one-port violation in node-local runtime");
        mailbox_writer[static_cast<std::size_t>(partner)] = p;
        record.max_blocks_per_node =
            std::max(record.max_blocks_per_node, static_cast<std::int64_t>(message.size()));
        record.total_blocks += static_cast<std::int64_t>(message.size());
        mailbox[static_cast<std::size_t>(partner)] = std::move(message);
      }
      for (Rank p = 0; p < N; ++p) {
        if (mailbox_writer[static_cast<std::size_t>(p)] == -1) continue;
        programs_[static_cast<std::size_t>(p)].integrate(
            std::move(mailbox[static_cast<std::size_t>(p)]));
        mailbox[static_cast<std::size_t>(p)].clear();
        mailbox_writer[static_cast<std::size_t>(p)] = -1;
      }
      trace.steps.push_back(std::move(record));
    }
  }
  TOREX_CHECK(flat == total_steps_, "step count mismatch");

  std::vector<std::vector<Block>> final_state;
  final_state.reserve(static_cast<std::size_t>(N));
  for (const auto& program : programs_) final_state.push_back(program.buffer());
  verify_aape_postcondition(shape_, final_state);
  return trace;
}

}  // namespace torex
