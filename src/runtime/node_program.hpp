// Node-local execution: the schedule as a real multicomputer would run
// it.
//
// The engines elsewhere in this library are omniscient — one object
// owns every buffer. A real torus machine cannot do that: each node
// must decide what to send using only (a) a constant amount of local
// configuration and (b) the blocks it currently holds. This module
// demonstrates that the Suh-Shin schedule has exactly that property:
//
//   * `LocalSchedule` is the per-node configuration a port would ship
//     to each processor: the torus shape (a few integers), the node's
//     own rank/coordinates, and its per-(phase, step) partner and
//     dimension — O(n * steps) integers, independent of N beyond the
//     shape itself.
//   * `NodeProgram` evaluates the forwarding predicate for a block
//     using nothing but the LocalSchedule and mod-4 arithmetic on the
//     block's destination coordinates.
//   * `StepSynchronousRuntime` runs N such programs in lockstep with
//     single-writer mailboxes (sound because of the one-port property)
//     and never consults the global schedule object.
//
// Tests pin the runtime's results against the omniscient engine.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/aape.hpp"
#include "core/block.hpp"
#include "core/trace.hpp"
#include "obs/recorder.hpp"
#include "runtime/watchdog.hpp"

namespace torex {

/// The constant-size configuration one node needs.
struct LocalSchedule {
  TorusShape shape;      ///< global geometry (a few integers)
  Rank self = 0;         ///< this node's rank
  Coord self_coord;      ///< cached coordinates of `self`

  /// Phase structure (same for every node).
  struct PhaseInfo {
    PhaseKind kind = PhaseKind::kScatter;
    int steps = 0;
    int hops = 0;
  };
  std::vector<PhaseInfo> phases;

  /// Per (phase, step): this node's partner and transmit dimension.
  /// Indexed by the flat step number (0-based across the schedule).
  struct StepPlan {
    Rank partner = 0;
    int dim = 0;
  };
  std::vector<StepPlan> plan;

  LocalSchedule() : shape({1, 1}) {}
};

/// Extracts one node's configuration from the schedule. This is the
/// only place the global object is consulted; afterwards the node is
/// self-sufficient.
LocalSchedule extract_local_schedule(const SuhShinAape& algo, Rank node);

/// One node's program: holds its buffer and answers, per step, which
/// held blocks to send, using only local data.
class NodeProgram {
 public:
  explicit NodeProgram(LocalSchedule schedule);

  /// Seeds the canonical initial workload: one block per destination.
  void seed_canonical();
  /// Seeds an arbitrary workload (blocks must originate here).
  void seed(std::vector<Block> blocks);

  /// Partitions the buffer for flat step `s`; returns the blocks to
  /// ship (removed from the buffer) and the partner to ship them to.
  /// An empty vector means the node idles this step.
  std::vector<Block> collect_outgoing(std::size_t flat_step, Rank& partner_out);

  /// Accepts a delivered message.
  void integrate(std::vector<Block> message);

  const std::vector<Block>& buffer() const { return buffer_; }
  const LocalSchedule& schedule() const { return schedule_; }

 private:
  bool should_send(std::size_t flat_step, const Block& b) const;

  LocalSchedule schedule_;
  std::vector<Block> buffer_;
};

/// Liveness/cancellation options for the lockstep executor.
struct StepSyncOptions {
  /// Maximum wall time one superstep may take before the run aborts
  /// with RuntimeStallError naming the node being processed when the
  /// deadline passed. Checked cooperatively between nodes (a node that
  /// never returns is the ctest TIMEOUT backstop's job). 0 disables.
  std::chrono::milliseconds stall_deadline{30000};

  /// Cooperative cancellation: when non-null and set, the run aborts
  /// with ExchangeCancelledError at the next node boundary.
  const std::atomic<bool>* cancel = nullptr;

  /// Fault-injection seam for tests: invoked before each node's
  /// collect_outgoing.
  std::function<void(int phase, int step, Rank node)> before_send_hook;

  /// Failure-detector probe, polled at node boundaries alongside the
  /// cancel flag: returning a rank aborts the run with
  /// CrashSuspectedError before the stall deadline fires. Null
  /// disables.
  std::function<std::optional<Rank>()> suspect_probe;

  /// Optional telemetry sink: per-node step spans (pid = node in the
  /// exported trace) plus step/blocks counters.
  Recorder* obs = nullptr;
};

/// Lockstep executor over N node programs with single-writer mailboxes.
class StepSynchronousRuntime {
 public:
  /// Builds one program per node by extracting local schedules.
  explicit StepSynchronousRuntime(const SuhShinAape& algo, StepSyncOptions options = {});

  /// Runs the whole schedule from the canonical workload, verifies the
  /// AAPE postcondition, and returns the traffic trace. Throws
  /// RuntimeStallError when a superstep overruns the stall deadline and
  /// ExchangeCancelledError on external cancellation.
  ExchangeTrace run_verified();

  const std::vector<NodeProgram>& programs() const { return programs_; }

 private:
  TorusShape shape_;
  StepSyncOptions options_;
  std::vector<NodeProgram> programs_;
  std::size_t total_steps_ = 0;
};

}  // namespace torex
