#include "runtime/parallel_engine.hpp"

#include <algorithm>
#include <barrier>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "topology/group.hpp"
#include "util/assert.hpp"

namespace torex {

namespace {

struct StepId {
  int phase;
  int step;
};

/// Everything the workers touch, heap-allocated and shared so that a
/// stalled run can detach its threads and unwind safely: the leaked
/// workers keep the state alive through their shared_ptr and never
/// touch the (possibly destroyed) ParallelExchange again.
struct WorkerState {
  WorkerState(Rank num_nodes, int num_threads, std::size_t num_steps,
              std::vector<StepId> step_ids,
              std::function<void(int, int, Rank, const std::atomic<bool>&)> hook_fn)
      : N(num_nodes),
        T(num_threads),
        steps(std::move(step_ids)),
        hook(std::move(hook_fn)),
        buffers(static_cast<std::size_t>(num_nodes)),
        inbox(static_cast<std::size_t>(num_nodes)),
        step_total(num_steps),
        step_max(num_steps),
        thread_step(static_cast<std::size_t>(num_threads)),
        thread_node(static_cast<std::size_t>(num_threads)),
        sync(num_threads) {
    for (auto& a : step_total) a.store(0, std::memory_order_relaxed);
    for (auto& a : step_max) a.store(0, std::memory_order_relaxed);
    for (auto& a : thread_step) a.store(0, std::memory_order_relaxed);
    for (auto& a : thread_node) a.store(-1, std::memory_order_relaxed);
  }

  void record_error(std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (!first_error) first_error = std::move(error);
    }
    cancel.store(true, std::memory_order_relaxed);
  }

  const Rank N;
  const int T;
  const std::vector<StepId> steps;
  const std::function<void(int, int, Rank, const std::atomic<bool>&)> hook;
  /// Workers' own copy of the caller's recorder handle: shared state,
  /// independent lifetime — safe for detached workers.
  std::optional<Recorder> obs;
  /// Caller's cancellation flag (may be null); checked by workers at
  /// superstep boundaries, not just by the watchdog poll, so a fast
  /// exchange still observes a cancellation raised mid-run.
  const std::atomic<bool>* external = nullptr;
  std::atomic<bool> external_tripped{false};

  std::vector<std::vector<Block>> buffers;
  std::vector<std::vector<Block>> inbox;
  /// Wire accounting (obs-gated; workers flush local tallies once on
  /// exit). Every send is a single contiguous tail run by construction
  /// — stable_partition gathers the send set before it is published —
  /// so sends == contiguous sends; inbox reuse/grow counters report
  /// whether the steady state reached zero-allocation publishes.
  std::atomic<std::int64_t> wire_sends{0};
  std::atomic<std::int64_t> wire_parcels{0};
  std::atomic<std::int64_t> wire_bytes_copied{0};
  std::atomic<std::int64_t> wire_inbox_reuses{0};
  std::atomic<std::int64_t> wire_inbox_grows{0};
  std::vector<std::atomic<std::int64_t>> step_total;
  std::vector<std::atomic<std::int64_t>> step_max;
  std::atomic<bool> one_port_broken{false};
  std::atomic<bool> cancel{false};
  /// Barrier passages across all workers; the watchdog's liveness
  /// signal.
  std::atomic<std::int64_t> progress{0};
  std::atomic<int> finished{0};
  /// Supersteps each worker has completed / node it is processing.
  std::vector<std::atomic<std::int64_t>> thread_step;
  std::vector<std::atomic<Rank>> thread_node;

  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr first_error;  // guarded by mu
  std::barrier<> sync;
};

void worker_main(const std::shared_ptr<WorkerState>& st, const SuhShinAape* algo, int tid) {
  const Rank lo = static_cast<Rank>(static_cast<std::int64_t>(st->N) * tid / st->T);
  const Rank hi = static_cast<Rank>(static_cast<std::int64_t>(st->N) * (tid + 1) / st->T);
  Recorder* obs = st->obs.has_value() && st->obs->enabled() ? &*st->obs : nullptr;
  Histogram* barrier_hist =
      obs != nullptr
          ? &obs->metrics().histogram("parallel.barrier_wait_ns", default_latency_bounds_ns())
          : nullptr;
  const auto timed_barrier = [&] {
    const std::int64_t t0 = obs != nullptr ? obs->now_ns() : 0;
    st->sync.arrive_and_wait();
    if (obs != nullptr) barrier_hist->observe(obs->now_ns() - t0);
  };
  bool early_exit = false;
  std::int64_t wire_sends = 0;
  std::int64_t wire_parcels = 0;
  std::int64_t wire_bytes = 0;
  std::int64_t inbox_reuses = 0;
  std::int64_t inbox_grows = 0;
  for (std::size_t s = 0; s < st->steps.size(); ++s) {
    if (st->external != nullptr && st->external->load(std::memory_order_relaxed)) {
      st->external_tripped.store(true, std::memory_order_relaxed);
      st->cancel.store(true, std::memory_order_relaxed);
    }
    if (st->cancel.load(std::memory_order_relaxed)) {
      early_exit = true;
      break;
    }
    const auto [phase, step] = st->steps[s];
    SpanGuard superstep_span(obs, "superstep", -1, phase, step);
    // Superstep half 1: partition own nodes' buffers and publish the
    // send sets into partner inboxes. One-port: each inbox has exactly
    // one writer, so no synchronization is needed beyond the barrier
    // that separates the halves.
    try {
      std::int64_t local_max = 0;
      std::int64_t local_total = 0;
      for (Rank p = lo; p < hi; ++p) {
        if (st->cancel.load(std::memory_order_relaxed)) break;
        st->thread_node[static_cast<std::size_t>(tid)].store(p, std::memory_order_relaxed);
        if (st->hook) st->hook(phase, step, p, st->cancel);
        if (st->cancel.load(std::memory_order_relaxed)) break;
        auto& buf = st->buffers[static_cast<std::size_t>(p)];
        auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Block& b) {
          return !algo->should_send(p, phase, step, b);
        });
        const std::int64_t sent = std::distance(split, buf.end());
        if (sent == 0) continue;
        const Rank q = algo->partner(p, phase, step);
        auto& in = st->inbox[static_cast<std::size_t>(q)];
        if (!in.empty()) st->one_port_broken.store(true, std::memory_order_relaxed);
        if (obs != nullptr) {
          ++wire_sends;
          wire_parcels += sent;
          wire_bytes += sent * static_cast<std::int64_t>(sizeof(Block));
          if (static_cast<std::size_t>(sent) <= in.capacity()) {
            ++inbox_reuses;
          } else {
            ++inbox_grows;
          }
        }
        in.assign(split, buf.end());
        buf.erase(split, buf.end());
        local_max = std::max(local_max, sent);
        local_total += sent;
      }
      st->step_total[s].fetch_add(local_total, std::memory_order_relaxed);
      std::int64_t seen = st->step_max[s].load(std::memory_order_relaxed);
      while (local_max > seen && !st->step_max[s].compare_exchange_weak(
                                     seen, local_max, std::memory_order_relaxed)) {
      }
    } catch (...) {
      if (obs != nullptr) obs->instant("worker_exception", -1, phase, step, tid);
      st->record_error(std::current_exception());
      early_exit = true;
      break;
    }
    if (st->cancel.load(std::memory_order_relaxed)) {
      early_exit = true;
      break;
    }
    timed_barrier();
    st->progress.fetch_add(1, std::memory_order_relaxed);
    if (st->cancel.load(std::memory_order_relaxed)) {
      early_exit = true;
      break;
    }
    // Superstep half 2: integrate own inboxes.
    try {
      for (Rank p = lo; p < hi; ++p) {
        auto& in = st->inbox[static_cast<std::size_t>(p)];
        if (in.empty()) continue;
        auto& buf = st->buffers[static_cast<std::size_t>(p)];
        if (obs != nullptr) {
          wire_bytes += static_cast<std::int64_t>(in.size() * sizeof(Block));
        }
        buf.insert(buf.end(), in.begin(), in.end());
        in.clear();
      }
    } catch (...) {
      if (obs != nullptr) obs->instant("worker_exception", -1, phase, step, tid);
      st->record_error(std::current_exception());
      early_exit = true;
      break;
    }
    timed_barrier();
    st->progress.fetch_add(1, std::memory_order_relaxed);
    st->thread_step[static_cast<std::size_t>(tid)].store(static_cast<std::int64_t>(s) + 1,
                                                         std::memory_order_relaxed);
  }
  // A worker that stops early owes the barrier exactly one arrival;
  // arrive_and_drop provides it and removes the worker from every
  // later phase, so the survivors never deadlock waiting for it.
  if (early_exit) st->sync.arrive_and_drop();
  if (obs != nullptr) {
    st->wire_sends.fetch_add(wire_sends, std::memory_order_relaxed);
    st->wire_parcels.fetch_add(wire_parcels, std::memory_order_relaxed);
    st->wire_bytes_copied.fetch_add(wire_bytes, std::memory_order_relaxed);
    st->wire_inbox_reuses.fetch_add(inbox_reuses, std::memory_order_relaxed);
    st->wire_inbox_grows.fetch_add(inbox_grows, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lk(st->mu);
    st->finished.fetch_add(1, std::memory_order_relaxed);
  }
  st->cv.notify_all();
}

}  // namespace

ParallelExchange::ParallelExchange(const SuhShinAape& algorithm, ParallelOptions options)
    : algo_(algorithm), options_(std::move(options)) {
  if (options_.num_threads <= 0) {
    options_.num_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
}

ExchangeTrace ParallelExchange::run_verified() {
  const TorusShape& shape = algo_.shape();
  const Rank N = shape.num_nodes();
  const int T = std::min<int>(options_.num_threads, N);
  const int n = algo_.num_dims();

  // Build the flat step list up front so workers iterate it in lockstep.
  std::vector<StepId> steps;
  for (int phase = 1; phase <= algo_.num_phases(); ++phase) {
    for (int step = 1; step <= algo_.steps_in_phase(phase); ++step) {
      steps.push_back({phase, step});
    }
  }

  auto st = std::make_shared<WorkerState>(N, T, steps.size(), steps, options_.before_send_hook);
  st->external = options_.cancel;
  Recorder* obs = options_.obs != nullptr && options_.obs->enabled() ? options_.obs : nullptr;
  if (obs != nullptr) st->obs = *obs;
  SpanGuard run_span(obs, "parallel_run");
  for (Rank p = 0; p < N; ++p) {
    auto& buf = st->buffers[static_cast<std::size_t>(p)];
    buf.reserve(static_cast<std::size_t>(N));
    for (Rank d = 0; d < N; ++d) buf.push_back(Block{p, d});
  }

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(T));
  const SuhShinAape* algo = &algo_;
  for (int tid = 0; tid < T; ++tid) {
    pool.emplace_back([st, algo, tid] { worker_main(st, algo, tid); });
  }

  // Watchdog loop on the calling thread: workers bump `progress` at
  // every barrier passage; a whole stall deadline with no passage means
  // some worker is wedged mid-superstep.
  const std::chrono::milliseconds deadline = options_.stall_deadline;
  const bool watchdog = deadline.count() > 0;
  if (obs != nullptr && watchdog) obs->metrics().counter("watchdog.armed").add();
  const std::chrono::milliseconds poll(
      watchdog ? std::max<std::int64_t>(1, std::min<std::int64_t>(deadline.count() / 4, 100))
               : 100);
  const std::chrono::milliseconds run_budget = options_.run_deadline;
  const bool has_run_deadline = run_budget.count() > 0;
  bool stalled = false;
  bool deadlined = false;
  std::optional<Rank> suspected;
  {
    std::unique_lock<std::mutex> lk(st->mu);
    std::int64_t last_progress = st->progress.load(std::memory_order_relaxed);
    auto last_change = std::chrono::steady_clock::now();
    const auto run_end = last_change + run_budget;
    while (st->finished.load(std::memory_order_relaxed) < T) {
      st->cv.wait_for(lk, poll);
      if (options_.cancel != nullptr && options_.cancel->load() &&
          !st->cancel.load(std::memory_order_relaxed)) {
        // Unblock wedged workers; whether the run counts as cancelled
        // is decided below by whether it actually completed.
        st->external_tripped.store(true, std::memory_order_relaxed);
        st->cancel.store(true, std::memory_order_relaxed);
      }
      if (options_.suspect_probe && !suspected &&
          !st->cancel.load(std::memory_order_relaxed)) {
        suspected = options_.suspect_probe();
        if (suspected) {
          // Proactive abort: the failure detector named a dead node, so
          // stop cooperatively now instead of burning the whole stall
          // deadline waiting for the watchdog.
          if (obs != nullptr) {
            obs->begin("fd.suspect", *suspected);
            obs->end("fd.suspect", *suspected);
            obs->metrics().counter("fd.suspects").add();
          }
          st->cancel.store(true, std::memory_order_relaxed);
        }
      }
      const std::int64_t now_progress = st->progress.load(std::memory_order_relaxed);
      const auto now = std::chrono::steady_clock::now();
      if (has_run_deadline && !deadlined && now >= run_end) {
        // Absolute budget spent: cancel cooperatively and give workers
        // one poll-sized grace window to unwind at a boundary.
        deadlined = true;
        if (obs != nullptr) {
          obs->instant("deadline_fired", -1, 0, 0, run_budget.count());
          obs->metrics().counter("watchdog.deadline_fired").add();
        }
        st->cancel.store(true, std::memory_order_relaxed);
        const auto grace_end = now + std::max(deadline, std::chrono::milliseconds(100));
        while (st->finished.load(std::memory_order_relaxed) < T &&
               std::chrono::steady_clock::now() < grace_end) {
          st->cv.wait_for(lk, poll);
        }
        break;
      }
      if (now_progress != last_progress) {
        last_progress = now_progress;
        last_change = now;
        continue;
      }
      if (watchdog && now - last_change >= deadline) {
        stalled = true;
        if (obs != nullptr) {
          obs->instant("watchdog_fired", -1, 0, 0, deadline.count());
          obs->metrics().counter("watchdog.fired").add();
        }
        st->cancel.store(true, std::memory_order_relaxed);
        // Grace window: cooperative workers unwind at the next cancel
        // check; a truly wedged one forces a detach below.
        const auto grace_end = now + deadline;
        while (st->finished.load(std::memory_order_relaxed) < T &&
               std::chrono::steady_clock::now() < grace_end) {
          st->cv.wait_for(lk, poll);
        }
        break;
      }
    }
  }
  if (st->finished.load() == T) {
    for (auto& th : pool) th.join();
  } else {
    // A wedged worker cannot be joined; the shared state outlives it
    // via the shared_ptr it captured, and it exits at its next cancel
    // check without touching this object again.
    for (auto& th : pool) th.detach();
  }

  {
    std::lock_guard<std::mutex> lk(st->mu);
    if (st->first_error) std::rethrow_exception(st->first_error);
  }
  // A cancellation (or stall) that lost the race to completion is a
  // no-op: the buffers are whole, so the run stands.
  bool completed = st->finished.load(std::memory_order_relaxed) == T;
  for (int tid = 0; completed && tid < T; ++tid) {
    completed = st->thread_step[static_cast<std::size_t>(tid)].load(std::memory_order_relaxed) ==
                static_cast<std::int64_t>(steps.size());
  }
  if (!completed && st->external_tripped.load(std::memory_order_relaxed)) {
    throw ExchangeCancelledError("parallel exchange cancelled by caller");
  }
  if (!completed && suspected) {
    // Attribute the abort to the slowest worker's superstep, same as a
    // stall would be.
    std::int64_t slow_step = st->thread_step[0].load(std::memory_order_relaxed);
    for (std::size_t tid = 1; tid < static_cast<std::size_t>(T); ++tid) {
      slow_step = std::min(slow_step, st->thread_step[tid].load(std::memory_order_relaxed));
    }
    const std::size_t stuck = std::min(static_cast<std::size_t>(slow_step), steps.size() - 1);
    throw CrashSuspectedError(steps[stuck].phase, steps[stuck].step, *suspected);
  }
  if (!completed && deadlined) {
    // Attribute the abort to the slowest worker's superstep, same as a
    // stall would be.
    std::int64_t slow_step = st->thread_step[0].load(std::memory_order_relaxed);
    for (std::size_t tid = 1; tid < static_cast<std::size_t>(T); ++tid) {
      slow_step = std::min(slow_step, st->thread_step[tid].load(std::memory_order_relaxed));
    }
    const std::size_t stuck = std::min(static_cast<std::size_t>(slow_step), steps.size() - 1);
    const int unfinished = T - st->finished.load(std::memory_order_relaxed);
    std::ostringstream detail;
    detail << "run budget spent before completion";
    if (unfinished > 0) detail << ", " << unfinished << " worker(s) detached";
    throw DeadlineExceededError(steps[stuck].phase, steps[stuck].step, run_budget, detail.str());
  }
  if (!completed && stalled) {
    // Attribute the stall: the slowest worker's superstep and the node
    // it was processing when progress stopped.
    std::size_t slow_tid = 0;
    std::int64_t slow_step = st->thread_step[0].load(std::memory_order_relaxed);
    for (std::size_t tid = 1; tid < static_cast<std::size_t>(T); ++tid) {
      const std::int64_t done = st->thread_step[tid].load(std::memory_order_relaxed);
      if (done < slow_step) {
        slow_step = done;
        slow_tid = tid;
      }
    }
    const std::size_t stuck =
        std::min(static_cast<std::size_t>(slow_step), steps.size() - 1);
    const Rank node = st->thread_node[slow_tid].load(std::memory_order_relaxed);
    const int unfinished = T - st->finished.load(std::memory_order_relaxed);
    std::ostringstream detail;
    detail << "worker " << slow_tid << " of " << T;
    if (unfinished > 0) detail << ", " << unfinished << " worker(s) detached";
    throw RuntimeStallError(steps[stuck].phase, steps[stuck].step, node, deadline,
                            detail.str());
  }

  TOREX_CHECK(!st->one_port_broken.load(), "one-port violation detected by the parallel runtime");

  if (obs != nullptr) {
    MetricsRegistry& m = obs->metrics();
    m.counter("wire.parallel.sends").add(st->wire_sends.load(std::memory_order_relaxed));
    m.counter("wire.parallel.parcels").add(st->wire_parcels.load(std::memory_order_relaxed));
    m.counter("wire.parallel.bytes_copied")
        .add(st->wire_bytes_copied.load(std::memory_order_relaxed));
    m.counter("wire.parallel.inbox_reuses")
        .add(st->wire_inbox_reuses.load(std::memory_order_relaxed));
    m.counter("wire.parallel.inbox_grows")
        .add(st->wire_inbox_grows.load(std::memory_order_relaxed));
    // stable_partition gathers every send set into one tail run before
    // it is published, so every send is contiguous by construction.
    m.counter("wire.parallel.contiguous_sends")
        .add(st->wire_sends.load(std::memory_order_relaxed));
  }

  ExchangeTrace trace;
  trace.rearrangement_passes = n + 1;
  trace.blocks_per_rearrangement = N;
  trace.steps.resize(steps.size());
  for (std::size_t s = 0; s < steps.size(); ++s) {
    trace.steps[s].phase = steps[s].phase;
    trace.steps[s].step = steps[s].step;
    trace.steps[s].hops = algo_.hops_per_step(steps[s].phase);
    trace.steps[s].total_blocks = st->step_total[s].load();
    trace.steps[s].max_blocks_per_node = st->step_max[s].load();
  }

  buffers_ = std::move(st->buffers);

  // Postcondition: the AAPE permutation.
  std::vector<char> seen(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    const auto& buf = buffers_[static_cast<std::size_t>(p)];
    TOREX_CHECK(static_cast<Rank>(buf.size()) == N, "wrong final block count");
    std::fill(seen.begin(), seen.end(), 0);
    for (const Block& b : buf) {
      TOREX_CHECK(b.dest == p, "misdelivered block");
      TOREX_CHECK(!seen[static_cast<std::size_t>(b.origin)], "duplicate origin");
      seen[static_cast<std::size_t>(b.origin)] = 1;
    }
  }
  return trace;
}

}  // namespace torex
