#include "runtime/parallel_engine.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <thread>

#include "topology/group.hpp"
#include "util/assert.hpp"

namespace torex {

ParallelExchange::ParallelExchange(const SuhShinAape& algorithm, ParallelOptions options)
    : algo_(algorithm), options_(options) {
  if (options_.num_threads <= 0) {
    options_.num_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
}

ExchangeTrace ParallelExchange::run_verified() {
  const TorusShape& shape = algo_.shape();
  const Rank N = shape.num_nodes();
  const int T = std::min<int>(options_.num_threads, N);
  const int n = algo_.num_dims();

  buffers_.assign(static_cast<std::size_t>(N), {});
  std::vector<std::vector<Block>> inbox(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    auto& buf = buffers_[static_cast<std::size_t>(p)];
    buf.reserve(static_cast<std::size_t>(N));
    for (Rank d = 0; d < N; ++d) buf.push_back(Block{p, d});
  }

  ExchangeTrace trace;
  trace.rearrangement_passes = n + 1;
  trace.blocks_per_rearrangement = N;

  // Build the flat step list up front so workers iterate it in lockstep.
  struct StepId {
    int phase;
    int step;
  };
  std::vector<StepId> steps;
  for (int phase = 1; phase <= algo_.num_phases(); ++phase) {
    for (int step = 1; step <= algo_.steps_in_phase(phase); ++step) {
      steps.push_back({phase, step});
    }
  }
  trace.steps.resize(steps.size());

  // Per-step shared accumulators (relaxed atomics; totals only).
  std::vector<std::atomic<std::int64_t>> step_total(steps.size());
  std::vector<std::atomic<std::int64_t>> step_max(steps.size());
  for (auto& a : step_total) a.store(0, std::memory_order_relaxed);
  for (auto& a : step_max) a.store(0, std::memory_order_relaxed);
  std::atomic<bool> failed{false};

  std::barrier sync(T);

  auto worker = [&](int tid) {
    const Rank lo = static_cast<Rank>(static_cast<std::int64_t>(N) * tid / T);
    const Rank hi = static_cast<Rank>(static_cast<std::int64_t>(N) * (tid + 1) / T);
    for (std::size_t s = 0; s < steps.size(); ++s) {
      const auto [phase, step] = steps[s];
      // Superstep half 1: partition own nodes' buffers and publish the
      // send sets into partner inboxes. One-port: each inbox has
      // exactly one writer, so no synchronization is needed beyond the
      // barrier that separates the halves.
      std::int64_t local_max = 0;
      std::int64_t local_total = 0;
      for (Rank p = lo; p < hi; ++p) {
        auto& buf = buffers_[static_cast<std::size_t>(p)];
        auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Block& b) {
          return !algo_.should_send(p, phase, step, b);
        });
        const std::int64_t sent = std::distance(split, buf.end());
        if (sent == 0) continue;
        const Rank q = algo_.partner(p, phase, step);
        auto& in = inbox[static_cast<std::size_t>(q)];
        if (!in.empty()) failed.store(true, std::memory_order_relaxed);  // one-port broken
        in.assign(split, buf.end());
        buf.erase(split, buf.end());
        local_max = std::max(local_max, sent);
        local_total += sent;
      }
      step_total[s].fetch_add(local_total, std::memory_order_relaxed);
      std::int64_t seen = step_max[s].load(std::memory_order_relaxed);
      while (local_max > seen &&
             !step_max[s].compare_exchange_weak(seen, local_max, std::memory_order_relaxed)) {
      }
      sync.arrive_and_wait();
      // Superstep half 2: integrate own inboxes.
      for (Rank p = lo; p < hi; ++p) {
        auto& in = inbox[static_cast<std::size_t>(p)];
        if (in.empty()) continue;
        auto& buf = buffers_[static_cast<std::size_t>(p)];
        buf.insert(buf.end(), in.begin(), in.end());
        in.clear();
      }
      sync.arrive_and_wait();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(T));
  for (int tid = 0; tid < T; ++tid) pool.emplace_back(worker, tid);
  for (auto& th : pool) th.join();

  TOREX_CHECK(!failed.load(), "one-port violation detected by the parallel runtime");

  for (std::size_t s = 0; s < steps.size(); ++s) {
    trace.steps[s].phase = steps[s].phase;
    trace.steps[s].step = steps[s].step;
    trace.steps[s].hops = algo_.hops_per_step(steps[s].phase);
    trace.steps[s].total_blocks = step_total[s].load();
    trace.steps[s].max_blocks_per_node = step_max[s].load();
  }

  // Postcondition: the AAPE permutation.
  std::vector<char> seen(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    const auto& buf = buffers_[static_cast<std::size_t>(p)];
    TOREX_CHECK(static_cast<Rank>(buf.size()) == N, "wrong final block count");
    std::fill(seen.begin(), seen.end(), 0);
    for (const Block& b : buf) {
      TOREX_CHECK(b.dest == p, "misdelivered block");
      TOREX_CHECK(!seen[static_cast<std::size_t>(b.origin)], "duplicate origin");
      seen[static_cast<std::size_t>(b.origin)] = 1;
    }
  }
  return trace;
}

}  // namespace torex
