// Threaded BSP executor for the exchange.
//
// The sequential ExchangeEngine is the reference; this runtime executes
// the same schedule with a pool of worker threads in bulk-synchronous
// steps, exploiting a structural property of the algorithm: the
// one-port model means every node receives from exactly one source per
// step, so each inbox has a single writer and the send phase needs no
// locks at all. Two std::barrier rendezvous per step (send, then
// integrate) keep the supersteps aligned.
//
// On a many-core host this parallelizes the simulation of large tori;
// on any host it is a machine-checked witness that the schedule's
// communication pattern is data-race-free.
#pragma once

#include <cstdint>

#include "core/aape.hpp"
#include "core/exchange_engine.hpp"
#include "core/trace.hpp"

namespace torex {

/// Options for the threaded executor.
struct ParallelOptions {
  /// Worker threads; 0 = hardware concurrency.
  int num_threads = 0;
};

/// Runs the exchange with a BSP thread pool. Produces the same final
/// state and per-step block counts as the sequential ExchangeEngine.
class ParallelExchange {
 public:
  ParallelExchange(const SuhShinAape& algorithm, ParallelOptions options = {});

  /// Executes all phases and verifies the AAPE postcondition.
  /// Returns the traffic trace (per-step counts; transfer detail is
  /// aggregated without a deterministic order guarantee across
  /// threads, so only counts are recorded).
  ExchangeTrace run_verified();

  /// Buffers after the last run.
  const std::vector<std::vector<Block>>& buffers() const { return buffers_; }

 private:
  const SuhShinAape& algo_;
  ParallelOptions options_;
  std::vector<std::vector<Block>> buffers_;
};

}  // namespace torex
