// Threaded BSP executor for the exchange.
//
// The sequential ExchangeEngine is the reference; this runtime executes
// the same schedule with a pool of worker threads in bulk-synchronous
// steps, exploiting a structural property of the algorithm: the
// one-port model means every node receives from exactly one source per
// step, so each inbox has a single writer and the send phase needs no
// locks at all. Two std::barrier rendezvous per step (send, then
// integrate) keep the supersteps aligned.
//
// The runtime is self-checking about its own liveness and error
// propagation, not just the schedule's postcondition:
//   * a throw inside a worker is captured (first exception wins) and
//     rethrown from run_verified on the calling thread — never
//     std::terminate;
//   * a watchdog on the calling thread enforces a no-progress deadline
//     per superstep: a wedged worker surfaces as RuntimeStallError
//     naming the stuck (phase, step, node) instead of a silent hang;
//   * cooperative cancellation: workers observe a cancel flag at every
//     superstep boundary and unwind, and an external flag can request
//     cancellation mid-run (ExchangeCancelledError).
//
// On a many-core host this parallelizes the simulation of large tori;
// on any host it is a machine-checked witness that the schedule's
// communication pattern is data-race-free.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>

#include "core/aape.hpp"
#include "core/exchange_engine.hpp"
#include "core/trace.hpp"
#include "runtime/watchdog.hpp"

namespace torex {

/// Options for the threaded executor.
struct ParallelOptions {
  /// Worker threads; 0 = hardware concurrency.
  int num_threads = 0;

  /// Watchdog: maximum wall time a superstep may go without any worker
  /// passing a barrier before the run is declared stalled and aborted
  /// with RuntimeStallError. 0 disables the watchdog.
  std::chrono::milliseconds stall_deadline{30000};

  /// Absolute whole-run budget: a run still incomplete this long after
  /// it started is cancelled and aborted with DeadlineExceededError —
  /// even while workers keep making (too slow) progress, which the
  /// relative stall deadline above would never catch. 0 disables. The
  /// service layer uses this to bound a session's engine time.
  std::chrono::milliseconds run_deadline{0};

  /// Cooperative cancellation: when non-null and set to true, workers
  /// unwind at the next superstep boundary and run_verified throws
  /// ExchangeCancelledError.
  const std::atomic<bool>* cancel = nullptr;

  /// Fault-injection seam for tests: invoked in the send half before
  /// each node is partitioned. Receives the internal cancel flag so a
  /// deliberately wedged hook can unblock once the watchdog fires. A
  /// throw from the hook is captured and rethrown like any worker
  /// exception.
  std::function<void(int phase, int step, Rank node, const std::atomic<bool>& cancel)>
      before_send_hook;

  /// Failure-detector probe, polled by the monitor thread alongside the
  /// watchdog: returning a rank names a node suspected dead and aborts
  /// the run as CrashSuspectedError at the next superstep boundary —
  /// *before* the stall deadline would have fired. Null disables.
  std::function<std::optional<Rank>()> suspect_probe;

  /// Optional telemetry sink: superstep spans, barrier-wait histogram,
  /// watchdog arm/fire events. The workers keep their own copy of the
  /// recorder handle, so a detached (stalled) worker records safely even
  /// after the caller's recorder is gone.
  Recorder* obs = nullptr;
};

/// Runs the exchange with a BSP thread pool. Produces the same final
/// state and per-step block counts as the sequential ExchangeEngine.
class ParallelExchange {
 public:
  ParallelExchange(const SuhShinAape& algorithm, ParallelOptions options = {});

  /// Executes all phases and verifies the AAPE postcondition.
  /// Returns the traffic trace (per-step counts; transfer detail is
  /// aggregated without a deterministic order guarantee across
  /// threads, so only counts are recorded). Throws the first worker
  /// exception, RuntimeStallError on a watchdog-detected stall, or
  /// ExchangeCancelledError on external cancellation.
  ExchangeTrace run_verified();

  /// Buffers after the last run.
  const std::vector<std::vector<Block>>& buffers() const { return buffers_; }

 private:
  const SuhShinAape& algo_;
  ParallelOptions options_;
  std::vector<std::vector<Block>> buffers_;
};

}  // namespace torex
