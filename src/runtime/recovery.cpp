#include "runtime/recovery.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>

#include "util/assert.hpp"

namespace torex {

std::string to_string(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kNone: return "none";
    case RecoveryPolicy::kRetryBackoff: return "retry-backoff";
    case RecoveryPolicy::kRemap: return "remap";
    case RecoveryPolicy::kFallbackDirect: return "fallback-direct";
    case RecoveryPolicy::kAuto: return "auto";
  }
  TOREX_UNREACHABLE();
}

void BackoffConfig::validate() const {
  TOREX_REQUIRE(max_attempts >= 1,
                "recovery options: max_attempts must be at least 1 (a zero budget would "
                "silently skip the retry stage)");
  TOREX_REQUIRE(base_ticks >= 1,
                "recovery options: backoff multiplier (base_ticks) must be positive");
  TOREX_REQUIRE(max_ticks >= base_ticks,
                "recovery options: inverted tick window (max_ticks < base_ticks)");
}

std::int64_t backoff_wait(const BackoffConfig& config, int attempt) {
  TOREX_REQUIRE(attempt >= 1, "backoff attempts are 1-based");
  TOREX_REQUIRE(config.base_ticks >= 1 && config.max_ticks >= config.base_ticks,
                "backoff ticks must satisfy 1 <= base <= max");
  // Doubling overflows past 62 shifts; the cap applies long before.
  const int shift = std::min(attempt - 1, 62);
  const std::int64_t uncapped = config.base_ticks <= (config.max_ticks >> shift)
                                    ? config.base_ticks << shift
                                    : config.max_ticks;
  return std::min(uncapped, config.max_ticks);
}

FaultedExchangeError::FaultedExchangeError(const std::string& what, FaultImpactReport report)
    : std::runtime_error(report.first_impact
                             ? what + " — first impact: " + report.first_impact->description
                             : what),
      report_(std::move(report)) {}

FaultImpactReport audit_direct_exchange_faults(const Torus& torus, const FaultModel& faults,
                                               std::int64_t tick) {
  const TorusShape& shape = torus.shape();
  FaultImpactReport report;
  report.audited_steps = 1;
  if (faults.empty()) return report;
  std::vector<ChannelId> path;
  bool impacted = false;
  for (Rank p = 0; p < shape.num_nodes(); ++p) {
    for (Rank q = 0; q < shape.num_nodes(); ++q) {
      if (p == q) continue;
      std::optional<FaultSpec> hit;
      if (faults.node_failed(p, tick) || faults.node_failed(q, tick)) {
        const Rank dead = faults.node_failed(p, tick) ? p : q;
        for (const auto& spec : faults.specs()) {
          if (spec.kind == FaultKind::kNode && spec.node == dead && spec.active_at(tick)) {
            hit = spec;
            break;
          }
        }
      }
      if (!hit) {
        path.clear();
        torus.dimension_ordered_path(p, q, path);
        for (ChannelId id : path) {
          hit = faults.find_channel_fault(torus, id, tick);
          if (hit) break;
        }
      }
      if (!hit) continue;
      ++report.impacted_messages;
      impacted = true;
      if (report.impacts.size() < FaultImpactReport::kMaxRecordedImpacts) {
        FaultImpact impact;
        impact.phase = 0;
        impact.step = 0;
        impact.tick = tick;
        impact.src = p;
        impact.dst = q;
        impact.fault = *hit;
        std::ostringstream os;
        os << "direct message " << p << " -> " << q << " (tick " << tick << ") broken by "
           << hit->describe(torus);
        impact.description = os.str();
        if (!report.first_impact) report.first_impact = impact;
        report.impacts.push_back(std::move(impact));
      }
    }
  }
  if (impacted) report.impacted_steps = 1;
  return report;
}

namespace {

/// Host map: identity for live nodes; failed nodes are hosted by their
/// nearest live node (immediate neighbors first, direction scan order,
/// then global nearest-by-distance as a last resort). Returns nullopt
/// when no node is live.
std::optional<std::vector<Rank>> build_hosts(const Torus& torus, const FaultModel& faults,
                                             std::int64_t tick, std::int64_t& remapped,
                                             std::int64_t& live_count) {
  const TorusShape& shape = torus.shape();
  const Rank N = shape.num_nodes();
  std::vector<char> dead(static_cast<std::size_t>(N), 0);
  live_count = 0;
  for (Rank r = 0; r < N; ++r) {
    dead[static_cast<std::size_t>(r)] = faults.node_relevant_failed(r, tick) ? 1 : 0;
    if (!dead[static_cast<std::size_t>(r)]) ++live_count;
  }
  if (live_count == 0) return std::nullopt;

  std::vector<Rank> host(static_cast<std::size_t>(N));
  remapped = 0;
  for (Rank r = 0; r < N; ++r) {
    if (!dead[static_cast<std::size_t>(r)]) {
      host[static_cast<std::size_t>(r)] = r;
      continue;
    }
    Rank chosen = -1;
    for (int d = 0; d < shape.num_dims() && chosen < 0; ++d) {
      for (Sign sign : {Sign::kPositive, Sign::kNegative}) {
        const Rank n = torus.neighbor(r, Direction{d, sign});
        if (!dead[static_cast<std::size_t>(n)]) {
          chosen = n;
          break;
        }
      }
    }
    if (chosen < 0) {
      std::int64_t best = std::numeric_limits<std::int64_t>::max();
      for (Rank n = 0; n < N; ++n) {
        if (dead[static_cast<std::size_t>(n)]) continue;
        const std::int64_t dist = torus.distance(r, n);
        if (dist < best) {
          best = dist;
          chosen = n;
        }
      }
    }
    host[static_cast<std::size_t>(r)] = chosen;
    ++remapped;
  }
  return host;
}

/// True when every channel of the straight path is free of relevant
/// faults at `tick`.
bool straight_path_healthy(const Torus& torus, const FaultModel& faults, Rank src,
                           Direction dir, std::int64_t hops, std::int64_t tick,
                           std::vector<ChannelId>& scratch) {
  scratch.clear();
  torus.straight_path(src, dir, hops, scratch);
  for (ChannelId id : scratch) {
    if (faults.channel_relevant_failed(torus, id, tick)) return false;
  }
  return true;
}

/// Memoized fault-avoiding route length between realization endpoints.
class RerouteCache {
 public:
  RerouteCache(const Torus& torus, const FaultModel& faults, std::int64_t tick)
      : torus_(torus), faults_(faults), tick_(tick) {}

  /// Hop count of the detour, or nullopt when disconnected.
  std::optional<std::int64_t> hops(Rank a, Rank b) {
    const auto key = std::make_pair(a, b);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const auto path = route_around_faults(torus_, faults_, a, b, tick_);
    const std::optional<std::int64_t> len =
        path ? std::optional<std::int64_t>(static_cast<std::int64_t>(path->size()))
             : std::nullopt;
    cache_.emplace(key, len);
    return len;
  }

 private:
  const Torus& torus_;
  const FaultModel& faults_;
  std::int64_t tick_;
  std::map<std::pair<Rank, Rank>, std::optional<std::int64_t>> cache_;
};

}  // namespace

std::optional<DegradedPlan> plan_degraded_schedule(const Torus& torus, const SuhShinAape& algo,
                                                   const FaultModel& faults,
                                                   std::int64_t tick) {
  const TorusShape& shape = torus.shape();
  DegradedPlan plan;
  auto hosts = build_hosts(torus, faults, tick, plan.remapped_nodes, plan.live_nodes);
  if (!hosts) return std::nullopt;
  plan.host = std::move(*hosts);

  RerouteCache reroutes(torus, faults, tick);
  std::vector<ChannelId> scratch;
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    const int hops = algo.hops_per_step(phase);
    for (int step = 1; step <= algo.steps_in_phase(phase); ++step) {
      for (Rank node = 0; node < shape.num_nodes(); ++node) {
        const Direction dir = algo.direction(node, phase, step);
        if (algo.phase_kind(phase) == PhaseKind::kScatter && shape.extent(dir.dim) == 4) {
          continue;
        }
        const Rank partner = algo.partner(node, phase, step);
        const Rank a = plan.host[static_cast<std::size_t>(node)];
        const Rank b = plan.host[static_cast<std::size_t>(partner)];
        if (a == b) {
          ++plan.local_messages;
          continue;
        }
        if (a == node && b == partner &&
            straight_path_healthy(torus, faults, node, dir, hops, tick, scratch)) {
          continue;  // scheduled route survives as-is
        }
        const auto detour = reroutes.hops(a, b);
        if (!detour) return std::nullopt;
        ++plan.rerouted_messages;
        plan.extra_hops += std::max<std::int64_t>(0, *detour - hops);
      }
    }
  }
  return plan;
}

DegradedPlan plan_direct_fallback(const Torus& torus, const FaultModel& faults,
                                  std::int64_t tick) {
  const TorusShape& shape = torus.shape();
  DegradedPlan plan;
  auto hosts = build_hosts(torus, faults, tick, plan.remapped_nodes, plan.live_nodes);
  if (!hosts) {
    throw FaultedExchangeError("all nodes failed; no fallback exists",
                               audit_direct_exchange_faults(torus, faults, tick));
  }
  plan.host = std::move(*hosts);

  RerouteCache reroutes(torus, faults, tick);
  std::vector<ChannelId> path;
  for (Rank p = 0; p < shape.num_nodes(); ++p) {
    for (Rank q = 0; q < shape.num_nodes(); ++q) {
      if (p == q) continue;
      const Rank a = plan.host[static_cast<std::size_t>(p)];
      const Rank b = plan.host[static_cast<std::size_t>(q)];
      if (a == b) {
        ++plan.local_messages;
        continue;
      }
      path.clear();
      const std::int64_t hops = torus.dimension_ordered_path(a, b, path);
      bool healthy = true;
      for (ChannelId id : path) {
        if (faults.channel_relevant_failed(torus, id, tick)) {
          healthy = false;
          break;
        }
      }
      if (healthy) continue;
      const auto detour = reroutes.hops(a, b);
      if (!detour) {
        throw FaultedExchangeError("faults disconnect the live nodes; no fallback route",
                                   audit_direct_exchange_faults(torus, faults, tick));
      }
      ++plan.rerouted_messages;
      plan.extra_hops += std::max<std::int64_t>(0, *detour - hops);
    }
  }
  return plan;
}

RecoveryDecision decide_recovery(const Torus& torus, const SuhShinAape* schedule,
                                 const FaultModel& faults, RecoveryPolicy requested,
                                 const BackoffConfig& backoff, std::int64_t start_tick,
                                 Recorder* obs) {
  TOREX_REQUIRE(start_tick >= 0, "start tick must be non-negative");
  backoff.validate();
  if (obs != nullptr && !obs->enabled()) obs = nullptr;
  SpanGuard decide_span(obs, "recovery_decide");

  const auto audit = [&](std::int64_t tick) {
    return schedule != nullptr ? audit_schedule_faults(*schedule, faults, tick)
                               : audit_direct_exchange_faults(torus, faults, tick);
  };
  const auto count = [&](const char* name, std::int64_t delta) {
    if (obs != nullptr) obs->metrics().counter(name).add(delta);
  };

  RecoveryDecision decision;
  decision.run_tick = start_tick;
  count("recovery.attempts", 1);
  FaultImpactReport report;
  {
    // Attempt 0 is the initial audit: it gets a recovery.attempt span
    // too, so crash-fault decisions that go straight to remap/fallback
    // are still visible after any fd.suspect spans that triggered them.
    SpanGuard first_attempt_span(obs, "recovery.attempt", -1, 0, 0);
    report = audit(start_tick);
  }
  if (report.clean()) return decision;  // policy kNone: nothing to recover from

  decision.blocking = report.first_impact;
  std::ostringstream note;
  note << "audit at tick " << start_tick << ": " << report.impacted_messages
       << " impacted messages over " << report.impacted_steps << " steps";

  if (requested == RecoveryPolicy::kNone) {
    throw FaultedExchangeError("exchange impacted by faults and recovery is disabled",
                               std::move(report));
  }

  // Stage 1: retry while the faults may heal. kAuto skips the stage
  // when a permanent fault makes waiting pointless.
  const bool try_retry = requested == RecoveryPolicy::kRetryBackoff ||
                         (requested == RecoveryPolicy::kAuto && !faults.any_permanent());
  if (try_retry) {
    std::int64_t tick = start_tick;
    for (int attempt = 1; attempt <= backoff.max_attempts; ++attempt) {
      // The span's value annotates how long this attempt backed off.
      SpanGuard attempt_span(obs, "recovery.attempt", -1, 0, attempt);
      const std::int64_t wait = backoff_wait(backoff, attempt);
      if (obs != nullptr) obs->instant("backoff_wait", -1, 0, attempt, wait);
      tick += wait;
      decision.waited_ticks += wait;
      decision.retries = attempt;
      ++decision.attempts;
      count("recovery.attempts", 1);
      count("recovery.backoff_waits", 1);
      count("recovery.waited_ticks", wait);
      report = audit(tick);
      if (report.clean()) {
        decision.policy = RecoveryPolicy::kRetryBackoff;
        decision.run_tick = tick;
        note << "; healed after " << attempt << " retries (waited " << decision.waited_ticks
             << " ticks)";
        decision.note = note.str();
        return decision;
      }
    }
    decision.run_tick = tick;  // the waits happened; degrade from here
    note << "; retry budget exhausted after " << decision.retries << " retries (waited "
         << decision.waited_ticks << " ticks)";
  }

  // Stage 2: degraded realization of the same schedule.
  const bool try_remap = schedule != nullptr && requested != RecoveryPolicy::kFallbackDirect;
  if (try_remap) {
    auto plan = plan_degraded_schedule(torus, *schedule, faults, decision.run_tick);
    if (plan) {
      if (obs != nullptr) obs->instant("recovery_remap", -1, 0, 0, plan->rerouted_messages);
      decision.policy = RecoveryPolicy::kRemap;
      decision.plan = std::move(*plan);
      note << "; remapped realization: " << decision.plan.remapped_nodes
           << " nodes hosted elsewhere, " << decision.plan.rerouted_messages
           << " messages rerouted (+" << decision.plan.extra_hops << " hops)";
      decision.note = note.str();
      return decision;
    }
    note << "; remap unroutable";
  }

  // Stage 3: fault-tolerant direct fallback (throws when disconnected).
  decision.plan = plan_direct_fallback(torus, faults, decision.run_tick);
  decision.policy = RecoveryPolicy::kFallbackDirect;
  if (obs != nullptr) {
    obs->instant("recovery_fallback_direct", -1, 0, 0, decision.plan.rerouted_messages);
  }
  note << "; direct fallback: " << decision.plan.remapped_nodes << " nodes hosted elsewhere, "
       << decision.plan.rerouted_messages << " pairs rerouted (+" << decision.plan.extra_hops
       << " hops)";
  decision.note = note.str();
  return decision;
}

}  // namespace torex
