// Degraded-mode recovery planning for faulted exchanges.
//
// When a fault audit (sim/fault_model.hpp) reports that a schedule
// would break, the communicator does not throw — it recovers, and this
// module decides how:
//
//   kRetryBackoff   wait with bounded exponential backoff while
//                   transient faults heal, re-auditing after each wait;
//   kRemap          keep the Suh-Shin schedule but realize it
//                   degraded: failed nodes are hosted on a live
//                   neighbor (the §6 virtual-node idea applied to
//                   faults) and any message whose scheduled straight
//                   path crosses a fault is rerouted around it (BFS on
//                   the healthy channel graph);
//   kFallbackDirect gracefully degrade to a fault-tolerant direct
//                   exchange: every pair routed independently around
//                   the faults.
//
// Policies degrade along a chain instead of throwing: retry exhausts
// its budget and falls through to remap, remap falls through to the
// direct fallback, and only a physically disconnected network raises
// FaultedExchangeError. kNone requests the old strict behaviour
// (throw on any impact). The communicator surfaces what happened in an
// ExchangeOutcome (runtime/communicator.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/aape.hpp"
#include "obs/recorder.hpp"
#include "sim/fault_model.hpp"
#include "topology/torus.hpp"

namespace torex {

/// How the communicator should react to an impacted schedule.
enum class RecoveryPolicy {
  kNone,            ///< no recovery: throw FaultedExchangeError on impact
  kRetryBackoff,    ///< retry with exponential backoff, then degrade
  kRemap,           ///< degraded realization of the same schedule
  kFallbackDirect,  ///< fault-tolerant direct exchange
  kAuto,            ///< retry when all faults are transient, else remap
};

std::string to_string(RecoveryPolicy policy);

/// Bounded exponential backoff: attempt a waits
/// min(base_ticks * 2^(a-1), max_ticks) ticks before re-auditing.
struct BackoffConfig {
  int max_attempts = 8;
  std::int64_t base_ticks = 1;
  std::int64_t max_ticks = 1 << 16;

  /// Rejects configurations that would loop forever or underflow:
  /// zero/negative max-attempts, a non-positive backoff multiplier
  /// (base_ticks), or an inverted tick window (max_ticks < base_ticks).
  /// Throws std::invalid_argument. Every recovery entry point calls
  /// this before its first audit.
  void validate() const;
};

/// Ticks attempt `attempt` (1-based) waits under `config`.
std::int64_t backoff_wait(const BackoffConfig& config, int attempt);

/// Degraded realization of an exchange on a faulted torus.
struct DegradedPlan {
  /// Physical realization rank per logical rank; host[r] == r for live
  /// nodes, a live neighbor for failed ones.
  std::vector<Rank> host;
  std::int64_t remapped_nodes = 0;
  /// Messages whose realized route differs from the scheduled one.
  std::int64_t rerouted_messages = 0;
  /// Messages that became host-local (both endpoints on one host).
  std::int64_t local_messages = 0;
  /// Extra hops the detours add over the scheduled routes.
  std::int64_t extra_hops = 0;
  std::int64_t live_nodes = 0;
};

/// The decision decide_recovery reached.
struct RecoveryDecision {
  RecoveryPolicy policy = RecoveryPolicy::kNone;  ///< what actually ran
  int attempts = 1;   ///< audits performed, including the first
  int retries = 0;    ///< backoff waits taken
  std::int64_t waited_ticks = 0;
  std::int64_t run_tick = 0;  ///< tick the exchange executes at
  DegradedPlan plan;          ///< filled for kRemap / kFallbackDirect
  /// First impact of the original audit (empty when the schedule was
  /// clean from the start).
  std::optional<FaultImpact> blocking;
  std::string note;  ///< human-readable recovery chain
};

/// Raised when recovery is impossible (network disconnected) or
/// disabled (RecoveryPolicy::kNone) while the audit reports impacts.
class FaultedExchangeError : public std::runtime_error {
 public:
  FaultedExchangeError(const std::string& what, FaultImpactReport report);

  const FaultImpactReport& report() const { return report_; }

 private:
  FaultImpactReport report_;
};

/// Audits the direct (all ordered pairs, dimension-ordered routes)
/// traffic pattern against the fault model at one tick. Used when no
/// Suh-Shin schedule is available to audit.
FaultImpactReport audit_direct_exchange_faults(const Torus& torus, const FaultModel& faults,
                                               std::int64_t tick);

/// Builds the degraded realization of `algo` under `faults` at `tick`:
/// hosts failed nodes on live neighbors and reroutes scheduled messages
/// whose straight path crosses a fault. Returns std::nullopt when some
/// message cannot be rerouted (healthy subgraph disconnected).
std::optional<DegradedPlan> plan_degraded_schedule(const Torus& torus, const SuhShinAape& algo,
                                                   const FaultModel& faults, std::int64_t tick);

/// Builds the fault-tolerant direct-exchange plan: hosts failed nodes
/// and verifies every live ordered pair stays routable around the
/// faults. Throws FaultedExchangeError when the faults disconnect the
/// live nodes.
DegradedPlan plan_direct_fallback(const Torus& torus, const FaultModel& faults,
                                  std::int64_t tick);

/// Full recovery decision. `schedule` may be null (non-qualifying shape
/// or a baseline algorithm); the audit then covers direct traffic and
/// the remap stage is skipped. Throws FaultedExchangeError when
/// `requested` is kNone and the audit is dirty, or when the network is
/// disconnected. `obs`, when non-null, records attempt spans (with the
/// backoff wait annotated) and recovery counters.
RecoveryDecision decide_recovery(const Torus& torus, const SuhShinAape* schedule,
                                 const FaultModel& faults, RecoveryPolicy requested,
                                 const BackoffConfig& backoff, std::int64_t start_tick,
                                 Recorder* obs = nullptr);

}  // namespace torex
