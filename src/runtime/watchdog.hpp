// Liveness errors for the step-synchronous runtimes.
//
// A wedged worker used to hang the process forever: std::barrier waits
// are uninterruptible and gtest has no per-test deadline of its own.
// The runtimes now watch their own progress — a superstep that makes no
// progress within the stall deadline surfaces as a structured
// RuntimeStallError naming the stuck (phase, step, node) instead of a
// silent hang, and cooperative cancellation (an external atomic flag)
// aborts a run as ExchangeCancelledError at the next superstep
// boundary. ctest TIMEOUT properties remain the backstop for truly
// uncooperative code.
#pragma once

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>

#include "topology/shape.hpp"

namespace torex {

/// Raised when a runtime's watchdog sees no progress for a whole stall
/// deadline. Carries the schedule coordinates of the stuck superstep
/// and the node being processed when progress stopped.
class RuntimeStallError : public std::runtime_error {
 public:
  RuntimeStallError(int phase, int step, Rank node, std::chrono::milliseconds deadline,
                    const std::string& detail)
      : std::runtime_error(format(phase, step, node, deadline, detail)),
        phase_(phase),
        step_(step),
        node_(node) {}

  int phase() const { return phase_; }
  int step() const { return step_; }
  Rank node() const { return node_; }

 private:
  static std::string format(int phase, int step, Rank node, std::chrono::milliseconds deadline,
                            const std::string& detail) {
    std::ostringstream os;
    os << "runtime stalled: no progress for " << deadline.count() << " ms at phase " << phase
       << " step " << step << ", node " << node;
    if (!detail.empty()) os << " (" << detail << ')';
    return os.str();
  }

  int phase_;
  int step_;
  Rank node_;
};

/// Raised when a run is abandoned because its cooperative cancellation
/// flag was set.
class ExchangeCancelledError : public std::runtime_error {
 public:
  explicit ExchangeCancelledError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a run exceeds an absolute deadline (as opposed to the
/// relative no-progress stall deadline): the whole-run budget of the
/// parallel engine's run_deadline, or a session's admission deadline in
/// the service layer. The run may have been making progress — it was
/// just not going to finish in time. Carries where the run stopped.
class DeadlineExceededError : public std::runtime_error {
 public:
  DeadlineExceededError(int phase, int step, std::chrono::milliseconds budget,
                        const std::string& detail)
      : std::runtime_error(format(phase, step, budget, detail)), phase_(phase), step_(step) {}

  int phase() const { return phase_; }
  int step() const { return step_; }

 private:
  static std::string format(int phase, int step, std::chrono::milliseconds budget,
                            const std::string& detail) {
    std::ostringstream os;
    os << "run deadline exceeded: budget of " << budget.count() << " ms spent at phase " << phase
       << " step " << step;
    if (!detail.empty()) os << " (" << detail << ')';
    return os.str();
  }

  int phase_;
  int step_;
};

/// Raised when a runtime's failure-detector probe (the suspect_probe
/// hook) names a node suspected dead: the run is abandoned at the next
/// superstep boundary so recovery can start *before* the stall deadline
/// would have fired. Carries the suspect and where the run stopped.
class CrashSuspectedError : public std::runtime_error {
 public:
  CrashSuspectedError(int phase, int step, Rank suspect)
      : std::runtime_error(format(phase, step, suspect)),
        phase_(phase),
        step_(step),
        suspect_(suspect) {}

  int phase() const { return phase_; }
  int step() const { return step_; }
  Rank suspect() const { return suspect_; }

 private:
  static std::string format(int phase, int step, Rank suspect) {
    std::ostringstream os;
    os << "node " << suspect << " suspected dead by the failure detector; aborting at phase "
       << phase << " step " << step << " for proactive recovery";
    return os.str();
  }

  int phase_;
  int step_;
  Rank suspect_;
};

}  // namespace torex
