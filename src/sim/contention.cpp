#include "sim/contention.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace torex {

ContentionAnalyzer::ContentionAnalyzer(const Torus& torus)
    : torus_(torus), load_(static_cast<std::size_t>(torus.num_channels()), 0) {}

void ContentionAnalyzer::clear_loads(const std::vector<ChannelId>& touched) {
  for (ChannelId id : touched) load_[static_cast<std::size_t>(id)] = 0;
}

StepContention ContentionAnalyzer::summarize(const std::vector<ChannelId>& touched) {
  StepContention out;
  for (ChannelId id : touched) {
    const std::int64_t l = load_[static_cast<std::size_t>(id)];
    out.max_channel_load = std::max(out.max_channel_load, l);
    if (l >= 2) {
      ++out.contended_channels;
      if (!out.first_conflict) {
        const Channel ch = torus_.channel_of(id);
        std::ostringstream os;
        os << "channel from node " << ch.from << " along dim " << ch.direction.dim
           << (ch.direction.sign == Sign::kPositive ? " (+)" : " (-)") << " carries " << l
           << " messages";
        out.first_conflict = os.str();
      }
    }
  }
  // `touched` may list a channel several times; dedupe the count.
  if (out.contended_channels > 0) {
    std::vector<ChannelId> unique = touched;
    std::sort(unique.begin(), unique.end());
    unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
    out.contended_channels = 0;
    for (ChannelId id : unique) {
      if (load_[static_cast<std::size_t>(id)] >= 2) ++out.contended_channels;
    }
  }
  return out;
}

StepContention ContentionAnalyzer::analyze_step(const std::vector<TransferRecord>& transfers) {
  std::vector<ChannelId> touched;
  for (const auto& t : transfers) {
    if (t.blocks <= 0) continue;  // empty messages occupy no channel
    const std::size_t before = touched.size();
    torus_.straight_path(t.src, t.dir, t.hops, touched);
    for (std::size_t i = before; i < touched.size(); ++i) {
      ++load_[static_cast<std::size_t>(touched[i])];
    }
  }
  StepContention out = summarize(touched);
  clear_loads(touched);
  return out;
}

StepContention ContentionAnalyzer::analyze_routed_step(
    const std::vector<std::pair<Rank, Rank>>& messages) {
  std::vector<ChannelId> touched;
  for (const auto& [src, dst] : messages) {
    TOREX_REQUIRE(src != dst, "message addressed to itself");
    const std::size_t before = touched.size();
    torus_.dimension_ordered_path(src, dst, touched);
    for (std::size_t i = before; i < touched.size(); ++i) {
      ++load_[static_cast<std::size_t>(touched[i])];
    }
  }
  StepContention out = summarize(touched);
  clear_loads(touched);
  return out;
}

std::vector<std::int64_t> ContentionAnalyzer::per_message_bottleneck(
    const std::vector<std::pair<Rank, Rank>>& messages) {
  std::vector<ChannelId> touched;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;  // per-message span in `touched`
  ranges.reserve(messages.size());
  for (const auto& [src, dst] : messages) {
    TOREX_REQUIRE(src != dst, "message addressed to itself");
    const std::size_t before = touched.size();
    torus_.dimension_ordered_path(src, dst, touched);
    ranges.emplace_back(before, touched.size());
    for (std::size_t i = before; i < touched.size(); ++i) {
      ++load_[static_cast<std::size_t>(touched[i])];
    }
  }
  std::vector<std::int64_t> bottleneck(messages.size(), 0);
  for (std::size_t m = 0; m < messages.size(); ++m) {
    for (std::size_t i = ranges[m].first; i < ranges[m].second; ++i) {
      bottleneck[m] =
          std::max(bottleneck[m], load_[static_cast<std::size_t>(touched[i])]);
    }
  }
  clear_loads(touched);
  return bottleneck;
}

ChannelUsageStats channel_usage(const Torus& torus, const ExchangeTrace& trace) {
  std::vector<std::int64_t> uses(static_cast<std::size_t>(torus.num_channels()), 0);
  std::vector<ChannelId> path;
  std::int64_t channel_steps = 0;
  for (const auto& step : trace.steps) {
    for (const auto& t : step.transfers) {
      if (t.blocks <= 0) continue;
      path.clear();
      torus.straight_path(t.src, t.dir, t.hops, path);
      for (ChannelId id : path) ++uses[static_cast<std::size_t>(id)];
      channel_steps += static_cast<std::int64_t>(path.size());
    }
  }
  ChannelUsageStats stats;
  stats.total_channels = torus.num_channels();
  std::int64_t total_uses = 0;
  stats.min_uses = std::numeric_limits<std::int64_t>::max();
  for (std::int64_t u : uses) {
    total_uses += u;
    if (u > 0) {
      ++stats.used_channels;
      stats.min_uses = std::min(stats.min_uses, u);
      stats.max_uses = std::max(stats.max_uses, u);
    }
  }
  if (stats.used_channels == 0) stats.min_uses = 0;
  stats.mean_uses =
      static_cast<double>(total_uses) / static_cast<double>(stats.total_channels);
  const std::int64_t steps = static_cast<std::int64_t>(trace.steps.size());
  stats.occupancy = steps == 0 ? 0.0
                               : static_cast<double>(channel_steps) /
                                     (static_cast<double>(stats.total_channels) *
                                      static_cast<double>(steps));
  return stats;
}

ContentionReport check_trace_contention(const Torus& torus, const ExchangeTrace& trace) {
  ContentionAnalyzer analyzer(torus);
  ContentionReport report;
  for (std::size_t s = 0; s < trace.steps.size(); ++s) {
    const StepContention step = analyzer.analyze_step(trace.steps[s].transfers);
    report.max_channel_load = std::max(report.max_channel_load, step.max_channel_load);
    if (!step.contention_free() && report.contention_free) {
      report.contention_free = false;
      report.first_conflict_step = s;
      report.first_conflict = step.first_conflict;
    }
  }
  return report;
}

ContentionReport check_schedule_contention_static(const SuhShinAape& algo) {
  const Torus& torus = algo.torus();
  const TorusShape& shape = torus.shape();
  ContentionAnalyzer analyzer(torus);
  ContentionReport report;
  std::vector<TransferRecord> transfers;
  std::size_t step_index = 0;
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    const int hops = algo.hops_per_step(phase);
    for (int step = 1; step <= algo.steps_in_phase(phase); ++step, ++step_index) {
      transfers.clear();
      for (Rank node = 0; node < shape.num_nodes(); ++node) {
        const Direction dir = algo.direction(node, phase, step);
        // Scatter assignments along extent-4 dimensions are degenerate
        // rings of length one: those nodes never transmit.
        if (algo.phase_kind(phase) == PhaseKind::kScatter && shape.extent(dir.dim) == 4) {
          continue;
        }
        transfers.push_back(TransferRecord{node, algo.partner(node, phase, step), dir,
                                           hops, /*blocks=*/1});
      }
      const StepContention result = analyzer.analyze_step(transfers);
      report.max_channel_load = std::max(report.max_channel_load, result.max_channel_load);
      if (!result.contention_free() && report.contention_free) {
        report.contention_free = false;
        report.first_conflict_step = step_index;
        report.first_conflict = result.first_conflict;
      }
    }
  }
  return report;
}

}  // namespace torex
