// Channel-contention analysis.
//
// The central scheduling claim of the paper is that every step of the
// proposed schedules is contention-free: no directed physical channel
// carries two messages at once. This checker replays a trace (or any
// list of straight-line / dimension-ordered messages) against the torus
// and counts per-channel load. It doubles as the congestion model for
// the non-combining baselines, where the per-step transmission time is
// scaled by the most heavily shared channel on each message's path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/aape.hpp"
#include "core/trace.hpp"
#include "topology/torus.hpp"

namespace torex {

/// Result of analyzing one step's messages.
struct StepContention {
  /// Heaviest per-channel load (1 == contention-free traffic).
  std::int64_t max_channel_load = 0;
  /// Number of channels carrying >= 2 messages.
  std::int64_t contended_channels = 0;
  /// A human-readable description of one conflict, when any exists.
  std::optional<std::string> first_conflict;

  bool contention_free() const { return max_channel_load <= 1; }
};

/// Aggregated over a whole trace.
struct ContentionReport {
  bool contention_free = true;
  std::int64_t max_channel_load = 0;
  /// Step index (into the trace) of the first conflicting step, if any.
  std::optional<std::size_t> first_conflict_step;
  std::optional<std::string> first_conflict;
};

/// Tracks per-channel message counts for one step at a time.
class ContentionAnalyzer {
 public:
  explicit ContentionAnalyzer(const Torus& torus);

  /// Analyzes one step of straight-line messages (trace transfers).
  StepContention analyze_step(const std::vector<TransferRecord>& transfers);

  /// Analyzes one step of arbitrary point-to-point messages routed with
  /// minimal dimension-ordered routing (baseline algorithms). Pairs are
  /// (src, dst) with src != dst.
  StepContention analyze_routed_step(const std::vector<std::pair<Rank, Rank>>& messages);

  /// For a routed step, also reports each message's bottleneck: the
  /// maximum load over the channels on its own path. Used by the
  /// congestion cost model. Order matches the input.
  std::vector<std::int64_t> per_message_bottleneck(
      const std::vector<std::pair<Rank, Rank>>& messages);

 private:
  void clear_loads(const std::vector<ChannelId>& touched);
  StepContention summarize(const std::vector<ChannelId>& touched);

  const Torus& torus_;
  std::vector<std::int64_t> load_;  // indexed by ChannelId
};

/// Replays an engine trace and verifies the paper's contention-freedom
/// claim for every step.
ContentionReport check_trace_contention(const Torus& torus, const ExchangeTrace& trace);

/// Aggregate channel utilization over a whole trace: how evenly the
/// schedule spreads traffic across the physical network.
struct ChannelUsageStats {
  std::int64_t used_channels = 0;    ///< channels carrying >= 1 message overall
  std::int64_t total_channels = 0;   ///< all directed channels in the torus
  std::int64_t min_uses = 0;         ///< over used channels
  std::int64_t max_uses = 0;
  double mean_uses = 0.0;            ///< over all channels
  /// Channel-step occupancy: sum over steps of channels in use, divided
  /// by total channels * steps — the schedule's link utilization.
  double occupancy = 0.0;
};

/// Computes utilization by replaying every recorded transfer.
ChannelUsageStats channel_usage(const Torus& torus, const ExchangeTrace& trace);

/// Static contention proof: checks every step of the schedule with
/// synthetic full-activity transfers (every node that could ever send
/// in that step ships one message along its assigned direction),
/// without executing the exchange. Conservative: full activity is a
/// superset of any real step's traffic, so "contention-free" here
/// implies contention-freedom for every workload. O(N * n) per step
/// instead of the engine's O(N^2) blocks — use it to verify tori far
/// beyond what the engine can execute (e.g. 256x256, 64^3).
ContentionReport check_schedule_contention_static(const SuhShinAape& algo);

}  // namespace torex
