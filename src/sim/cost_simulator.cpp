#include "sim/cost_simulator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace torex {

CostBreakdown price_trace(const ExchangeTrace& trace, const CostParams& params) {
  CostBreakdown out;
  const double m = static_cast<double>(params.m);
  for (const auto& step : trace.steps) {
    out.startup += params.t_s;
    out.transmission += static_cast<double>(step.max_blocks_per_node) * m * params.t_c;
    out.propagation += static_cast<double>(step.hops) * params.t_l;
  }
  out.rearrangement += static_cast<double>(trace.rearrangement_passes) *
                       static_cast<double>(trace.blocks_per_rearrangement) * m * params.rho;
  return out;
}

CostBreakdown price_routed_steps(const Torus& torus, const std::vector<RoutedStep>& steps,
                                 const CostParams& params) {
  CostBreakdown out;
  ContentionAnalyzer analyzer(torus);
  const double m = static_cast<double>(params.m);
  for (const auto& step : steps) {
    if (step.messages.empty()) continue;
    out.startup += params.t_s;
    const std::vector<std::int64_t> bottleneck = analyzer.per_message_bottleneck(step.messages);
    std::int64_t worst_serialized = 0;
    std::int64_t longest_path = 0;
    for (std::size_t i = 0; i < step.messages.size(); ++i) {
      worst_serialized = std::max(worst_serialized, bottleneck[i] * step.blocks_of(i));
      longest_path =
          std::max(longest_path, torus.distance(step.messages[i].first, step.messages[i].second));
    }
    out.transmission += static_cast<double>(worst_serialized) * m * params.t_c;
    out.propagation += static_cast<double>(longest_path) * params.t_l;
  }
  return out;
}

CostBreakdown price_trace_overlapped(const ExchangeTrace& trace, const CostParams& params) {
  CostBreakdown out = price_trace(trace, params);
  if (trace.rearrangement_passes == 0 || trace.steps.empty()) return out;
  const double m = static_cast<double>(params.m);
  const double pass_cost =
      static_cast<double>(trace.blocks_per_rearrangement) * m * params.rho;

  // Communication time of each phase (by phase label in the trace).
  std::vector<double> phase_comm;
  int current_phase = trace.steps.front().phase;
  double acc = 0.0;
  for (const auto& step : trace.steps) {
    if (step.phase != current_phase) {
      phase_comm.push_back(acc);
      acc = 0.0;
      current_phase = step.phase;
    }
    acc += params.t_s + static_cast<double>(step.max_blocks_per_node) * m * params.t_c +
           static_cast<double>(step.hops) * params.t_l;
  }
  phase_comm.push_back(acc);

  // One rearrangement hides behind each phase that has a successor;
  // passes beyond the available boundaries (phases with zero steps)
  // stay fully visible.
  double visible = 0.0;
  std::int64_t passes = trace.rearrangement_passes;
  for (std::size_t i = 0; i + 1 < phase_comm.size() && passes > 0; ++i, --passes) {
    visible += std::max(0.0, pass_cost - phase_comm[i]);
  }
  visible += static_cast<double>(passes) * pass_cost;
  out.rearrangement = visible;
  return out;
}

std::vector<double> cumulative_step_times(const ExchangeTrace& trace, const CostParams& params) {
  std::vector<double> out;
  out.reserve(trace.steps.size());
  const double m = static_cast<double>(params.m);
  double t = 0.0;
  int last_phase = trace.steps.empty() ? 0 : trace.steps.front().phase;
  const double rearrangement_time = trace.rearrangement_passes == 0
                                        ? 0.0
                                        : static_cast<double>(trace.blocks_per_rearrangement) *
                                              m * params.rho;
  for (const auto& step : trace.steps) {
    if (step.phase != last_phase) {
      // One rearrangement pass between phases (paper §3.3).
      t += rearrangement_time;
      last_phase = step.phase;
    }
    t += params.t_s + static_cast<double>(step.max_blocks_per_node) * m * params.t_c +
         static_cast<double>(step.hops) * params.t_l;
    out.push_back(t);
  }
  return out;
}

}  // namespace torex
