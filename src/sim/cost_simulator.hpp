// Prices execution traces with the paper's cost model.
//
// For contention-free schedules (the proposed algorithm and the ring
// baseline) a step costs  t_s + B_max*m*t_c + h*t_l  where B_max is the
// largest message of the step. For contending traffic (the direct
// baseline) the transmission term of each step is scaled by the
// congestion of the most-shared channel on the critical message's path:
// with wormhole switching, messages sharing a channel serialize, so a
// bottleneck load of k multiplies the effective transmission time by k.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/trace.hpp"
#include "costmodel/params.hpp"
#include "sim/contention.hpp"
#include "topology/torus.hpp"

namespace torex {

/// Prices a contention-free combining trace (engine output): startup
/// per step, the largest message per step on the transmission term, the
/// per-step hop count on the propagation term, plus the recorded
/// rearrangement passes.
CostBreakdown price_trace(const ExchangeTrace& trace, const CostParams& params);

/// One step of a routed (non-combining) algorithm: point-to-point
/// messages routed dimension-ordered. Message i carries
/// `message_blocks[i]` blocks when that vector is non-empty, else
/// `blocks_per_message` uniformly.
struct RoutedStep {
  std::vector<std::pair<Rank, Rank>> messages;
  std::int64_t blocks_per_message = 1;
  std::vector<std::int64_t> message_blocks;  ///< optional per-message sizes

  std::int64_t blocks_of(std::size_t i) const {
    return message_blocks.empty() ? blocks_per_message : message_blocks[i];
  }
};

/// Prices a routed-step sequence with congestion-aware serialization.
/// Each step costs t_s + max_i(k_i * B_i) * m * t_c + h_max * t_l,
/// where k_i is message i's bottleneck channel load and h_max the
/// longest path.
CostBreakdown price_routed_steps(const Torus& torus, const std::vector<RoutedStep>& steps,
                                 const CostParams& params);

/// Per-step cost series (for figure-style benches): entry i is the
/// cumulative completion time after step i of the trace.
std::vector<double> cumulative_step_times(const ExchangeTrace& trace, const CostParams& params);

/// Optimistic-overlap pricing: assumes each inter-phase rearrangement
/// is performed by the processor while the router streams the
/// preceding phase's (fixed-destination) messages, so only the excess
/// of the rearrangement pass over that phase's communication time
/// remains visible. This is the upper bound of the "amenable to
/// optimizations" claim (§1(ii)); price_trace is the no-overlap lower
/// bound. Both bounds coincide on the startup/transmission/propagation
/// components.
CostBreakdown price_trace_overlapped(const ExchangeTrace& trace, const CostParams& params);

}  // namespace torex
