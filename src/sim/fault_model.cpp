#include "sim/fault_model.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "util/assert.hpp"
#include "util/prng.hpp"

namespace torex {

namespace {

std::string dir_text(const Direction& d) {
  std::string out(1, d.sign == Sign::kPositive ? '+' : '-');
  out += std::to_string(d.dim);
  return out;
}

std::string window_text(const FaultSpec& spec) {
  std::ostringstream os;
  if (spec.permanent()) {
    os << "permanent from tick " << spec.active_from;
  } else {
    os << "transient [" << spec.active_from << ", " << spec.active_until << ")";
  }
  return os.str();
}

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kChannel: return "channel";
    case FaultKind::kNode: return "node";
  }
  TOREX_UNREACHABLE();
}

std::string FaultSpec::describe(const Torus& torus) const {
  std::ostringstream os;
  if (kind == FaultKind::kChannel) {
    os << "channel " << channel.from << " -> " << torus.neighbor(channel.from, channel.direction)
       << " (" << dir_text(channel.direction) << ")";
  } else {
    os << "node " << node;
  }
  os << ", " << window_text(*this);
  return os.str();
}

FaultModel& FaultModel::fail_channel(Rank from, Direction direction, std::int64_t active_from,
                                     std::int64_t active_until) {
  TOREX_REQUIRE(from >= 0, "channel source must be a valid rank");
  TOREX_REQUIRE(active_from >= 0 && active_until > active_from,
                "fault activation window must be non-empty and start at tick >= 0");
  FaultSpec spec;
  spec.kind = FaultKind::kChannel;
  spec.channel = Channel{from, direction};
  spec.active_from = active_from;
  spec.active_until = active_until;
  specs_.push_back(spec);
  return *this;
}

FaultModel& FaultModel::flap_channel(Rank from, Direction direction, std::int64_t first_from,
                                     std::int64_t up_ticks, std::int64_t down_ticks,
                                     int cycles) {
  TOREX_REQUIRE(up_ticks >= 1 && down_ticks >= 1,
                "flapping channel needs non-empty up and down windows");
  TOREX_REQUIRE(cycles >= 1, "flapping channel needs at least one cycle");
  std::int64_t start = first_from;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    fail_channel(from, direction, start, start + up_ticks);
    start += up_ticks + down_ticks;
  }
  return *this;
}

FaultModel& FaultModel::fail_node(Rank node, std::int64_t active_from,
                                  std::int64_t active_until) {
  TOREX_REQUIRE(node >= 0, "failed node must be a valid rank");
  TOREX_REQUIRE(active_from >= 0 && active_until > active_from,
                "fault activation window must be non-empty and start at tick >= 0");
  FaultSpec spec;
  spec.kind = FaultKind::kNode;
  spec.node = node;
  spec.active_from = active_from;
  spec.active_until = active_until;
  specs_.push_back(spec);
  return *this;
}

FaultModel& FaultModel::crash_node(Rank node, std::int64_t crash_tick,
                                   std::int64_t rejoin_tick) {
  fail_node(node, crash_tick, rejoin_tick);  // validates node and window
  CrashFault crash;
  crash.node = node;
  crash.crash_tick = crash_tick;
  crash.rejoin_tick = rejoin_tick;
  crashes_.push_back(crash);
  return *this;
}

FaultModel& FaultModel::inject_random_crashes(const Torus& torus, std::uint64_t seed, int count,
                                              std::int64_t crash_tick) {
  TOREX_REQUIRE(count >= 0, "crash count must be non-negative");
  TOREX_REQUIRE(count <= torus.shape().num_nodes(), "more crashes than nodes");
  SplitMix64 rng(seed);
  std::vector<Rank> chosen;
  while (static_cast<int>(chosen.size()) < count) {
    const Rank node = static_cast<Rank>(
        rng.next_below(static_cast<std::uint64_t>(torus.shape().num_nodes())));
    if (std::find(chosen.begin(), chosen.end(), node) != chosen.end()) continue;
    chosen.push_back(node);
    crash_node(node, crash_tick);
  }
  return *this;
}

std::string CrashFault::describe() const {
  std::string out = "node " + std::to_string(node) + " crashes at tick " +
                    std::to_string(crash_tick);
  out += rejoins() ? (", rejoins at tick " + std::to_string(rejoin_tick)) : ", never rejoins";
  return out;
}

FaultModel& FaultModel::inject_random_channel_faults(const Torus& torus, std::uint64_t seed,
                                                     int count, std::int64_t active_from,
                                                     std::int64_t active_until) {
  TOREX_REQUIRE(count >= 0, "fault count must be non-negative");
  TOREX_REQUIRE(count <= torus.num_channels(), "more channel faults than channels");
  SplitMix64 rng(seed);
  std::vector<ChannelId> chosen;
  while (static_cast<int>(chosen.size()) < count) {
    const ChannelId id =
        static_cast<ChannelId>(rng.next_below(static_cast<std::uint64_t>(torus.num_channels())));
    if (std::find(chosen.begin(), chosen.end(), id) != chosen.end()) continue;
    chosen.push_back(id);
    const Channel ch = torus.channel_of(id);
    fail_channel(ch.from, ch.direction, active_from, active_until);
  }
  return *this;
}

FaultModel& FaultModel::inject_random_node_faults(const Torus& torus, std::uint64_t seed,
                                                  int count, std::int64_t active_from,
                                                  std::int64_t active_until) {
  TOREX_REQUIRE(count >= 0, "fault count must be non-negative");
  TOREX_REQUIRE(count <= torus.shape().num_nodes(), "more node faults than nodes");
  SplitMix64 rng(seed);
  std::vector<Rank> chosen;
  while (static_cast<int>(chosen.size()) < count) {
    const Rank node = static_cast<Rank>(
        rng.next_below(static_cast<std::uint64_t>(torus.shape().num_nodes())));
    if (std::find(chosen.begin(), chosen.end(), node) != chosen.end()) continue;
    chosen.push_back(node);
    fail_node(node, active_from, active_until);
  }
  return *this;
}

std::string to_string(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kBitFlip: return "bit-flip";
    case CorruptionKind::kTruncate: return "truncate";
  }
  TOREX_UNREACHABLE();
}

std::string CorruptionSpec::describe(const Torus& torus) const {
  std::ostringstream os;
  os << to_string(kind) << " corruption on channel " << channel.from << " -> "
     << torus.neighbor(channel.from, channel.direction) << " (" << dir_text(channel.direction)
     << "), ";
  if (permanent()) {
    os << "permanent from tick " << active_from;
  } else {
    os << "transient [" << active_from << ", " << active_until << ")";
  }
  return os.str();
}

CorruptionModel& CorruptionModel::corrupt_channel(Rank from, Direction direction,
                                                  CorruptionKind kind, std::int64_t active_from,
                                                  std::int64_t active_until, std::uint64_t seed) {
  TOREX_REQUIRE(from >= 0, "corrupting channel source must be a valid rank");
  TOREX_REQUIRE(active_from >= 0 && active_until > active_from,
                "corruption activation window must be non-empty and start at tick >= 0");
  CorruptionSpec spec;
  spec.kind = kind;
  spec.channel = Channel{from, direction};
  spec.active_from = active_from;
  spec.active_until = active_until;
  spec.seed = seed;
  specs_.push_back(spec);
  return *this;
}

CorruptionModel& CorruptionModel::inject_random_corruptions(const Torus& torus,
                                                            std::uint64_t seed, int count,
                                                            std::int64_t active_from,
                                                            std::int64_t active_until) {
  TOREX_REQUIRE(count >= 0, "corruption count must be non-negative");
  TOREX_REQUIRE(count <= torus.num_channels(), "more corrupting channels than channels");
  SplitMix64 rng(seed);
  std::vector<ChannelId> chosen;
  while (static_cast<int>(chosen.size()) < count) {
    const ChannelId id =
        static_cast<ChannelId>(rng.next_below(static_cast<std::uint64_t>(torus.num_channels())));
    if (std::find(chosen.begin(), chosen.end(), id) != chosen.end()) continue;
    chosen.push_back(id);
    const Channel ch = torus.channel_of(id);
    const CorruptionKind kind =
        rng.next_below(2) == 0 ? CorruptionKind::kBitFlip : CorruptionKind::kTruncate;
    corrupt_channel(ch.from, ch.direction, kind, active_from, active_until, rng.next());
  }
  return *this;
}

bool CorruptionModel::any_permanent() const {
  for (const auto& spec : specs_) {
    if (spec.permanent()) return true;
  }
  return false;
}

std::optional<CorruptionSpec> CorruptionModel::find(const Torus& torus, ChannelId id,
                                                    std::int64_t tick) const {
  for (const auto& spec : specs_) {
    if (!spec.active_at(tick)) continue;
    if (torus.channel_id(spec.channel.from, spec.channel.direction) == id) return spec;
  }
  return std::nullopt;
}

void CorruptionModel::apply(const CorruptionSpec& spec, const TransferContext& ctx,
                            std::vector<std::byte>& wire) {
  if (wire.empty()) return;
  // Mix the transfer context into the spec seed so repeated hits on the
  // same channel damage different bits, deterministically.
  constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15u;
  std::uint64_t mix = spec.seed;
  mix ^= static_cast<std::uint64_t>(ctx.tick) * kGolden;
  mix ^= static_cast<std::uint64_t>(static_cast<std::int64_t>(ctx.src)) << 32;
  mix ^= static_cast<std::uint64_t>(static_cast<std::int64_t>(ctx.dst));
  SplitMix64 rng(mix);
  switch (spec.kind) {
    case CorruptionKind::kBitFlip: {
      const std::uint64_t bit = rng.next_below(static_cast<std::uint64_t>(wire.size()) * 8);
      wire[static_cast<std::size_t>(bit / 8)] ^=
          static_cast<std::byte>(1u << static_cast<unsigned>(bit % 8));
      return;
    }
    case CorruptionKind::kTruncate: {
      // Drop at least one trailing byte, at most half the message (so
      // small headers and large payloads both exercise short reads).
      const std::uint64_t max_drop =
          std::max<std::uint64_t>(1, static_cast<std::uint64_t>(wire.size()) / 2);
      const std::size_t drop = static_cast<std::size_t>(1 + rng.next_below(max_drop));
      wire.resize(wire.size() - std::min(drop, wire.size()));
      return;
    }
  }
  TOREX_UNREACHABLE();
}

ParcelTamperer CorruptionModel::tamperer(const Torus& torus) const {
  if (specs_.empty()) return {};
  return [model = *this, torus](const TransferContext& ctx,
                                std::vector<std::byte>& wire) -> bool {
    std::vector<ChannelId> path;
    torus.straight_path(ctx.src, ctx.direction, ctx.hops, path);
    for (ChannelId id : path) {
      const auto spec = model.find(torus, id, ctx.tick);
      if (!spec) continue;
      apply(*spec, ctx, wire);
      return true;
    }
    return false;
  };
}

bool FaultModel::any_permanent() const {
  for (const auto& spec : specs_) {
    if (spec.permanent()) return true;
  }
  return false;
}

std::int64_t FaultModel::all_clear_after() const {
  std::int64_t clear = 0;
  for (const auto& spec : specs_) {
    if (spec.permanent()) return kFaultForever;
    clear = std::max(clear, spec.active_until);
  }
  return clear;
}

std::optional<FaultSpec> FaultModel::find_channel_fault(const Torus& torus, ChannelId id,
                                                        std::int64_t tick) const {
  for (const auto& spec : specs_) {
    if (!spec.active_at(tick)) continue;
    if (spec.kind == FaultKind::kChannel) {
      if (torus.channel_id(spec.channel.from, spec.channel.direction) == id) return spec;
    } else {
      const Channel ch = torus.channel_of(id);
      if (ch.from == spec.node || torus.neighbor(ch.from, ch.direction) == spec.node) {
        return spec;
      }
    }
  }
  return std::nullopt;
}

bool FaultModel::node_failed(Rank node, std::int64_t tick) const {
  for (const auto& spec : specs_) {
    if (spec.kind == FaultKind::kNode && spec.node == node && spec.active_at(tick)) return true;
  }
  return false;
}

bool FaultModel::node_relevant_failed(Rank node, std::int64_t tick) const {
  for (const auto& spec : specs_) {
    if (spec.kind == FaultKind::kNode && spec.node == node && spec.relevant_at(tick)) {
      return true;
    }
  }
  return false;
}

bool FaultModel::channel_relevant_failed(const Torus& torus, ChannelId id,
                                         std::int64_t tick) const {
  for (const auto& spec : specs_) {
    if (!spec.relevant_at(tick)) continue;
    if (spec.kind == FaultKind::kChannel) {
      if (torus.channel_id(spec.channel.from, spec.channel.direction) == id) return true;
    } else {
      const Channel ch = torus.channel_of(id);
      if (ch.from == spec.node || torus.neighbor(ch.from, ch.direction) == spec.node) {
        return true;
      }
    }
  }
  return false;
}

namespace {

/// Shared audit core: checks one straight-line message against the
/// model and appends an impact when broken.
void audit_message(const Torus& torus, const FaultModel& faults, int phase, int step,
                   std::int64_t tick, Rank src, Rank dst, Direction dir, std::int64_t hops,
                   FaultImpactReport& report, bool& step_impacted,
                   std::vector<ChannelId>& scratch) {
  std::optional<FaultSpec> hit;
  // A node fault on src or dst is also visible through its adjacent
  // channels, but report it as the node fault it is.
  if (faults.node_failed(src, tick)) {
    for (const auto& spec : faults.specs()) {
      if (spec.kind == FaultKind::kNode && spec.node == src && spec.active_at(tick)) {
        hit = spec;
        break;
      }
    }
  }
  if (!hit && faults.node_failed(dst, tick)) {
    for (const auto& spec : faults.specs()) {
      if (spec.kind == FaultKind::kNode && spec.node == dst && spec.active_at(tick)) {
        hit = spec;
        break;
      }
    }
  }
  if (!hit) {
    scratch.clear();
    torus.straight_path(src, dir, hops, scratch);
    for (ChannelId id : scratch) {
      hit = faults.find_channel_fault(torus, id, tick);
      if (hit) break;
    }
  }
  if (!hit) return;

  ++report.impacted_messages;
  step_impacted = true;
  if (report.impacts.size() < FaultImpactReport::kMaxRecordedImpacts) {
    FaultImpact impact;
    impact.phase = phase;
    impact.step = step;
    impact.tick = tick;
    impact.src = src;
    impact.dst = dst;
    impact.fault = *hit;
    std::ostringstream os;
    os << "phase " << phase << " step " << step << " (tick " << tick << "): message " << src
       << " -> " << dst << " broken by " << hit->describe(torus);
    impact.description = os.str();
    if (!report.first_impact) report.first_impact = impact;
    report.impacts.push_back(std::move(impact));
  }
}

}  // namespace

FaultImpactReport audit_schedule_faults(const SuhShinAape& algo, const FaultModel& faults,
                                        std::int64_t base_tick) {
  const Torus& torus = algo.torus();
  const TorusShape& shape = torus.shape();
  FaultImpactReport report;
  if (faults.empty()) {
    report.audited_steps = algo.total_steps();
    return report;
  }
  std::vector<ChannelId> scratch;
  std::int64_t global_step = 0;
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    const int hops = algo.hops_per_step(phase);
    for (int step = 1; step <= algo.steps_in_phase(phase); ++step, ++global_step) {
      const std::int64_t tick = base_tick + global_step;
      bool step_impacted = false;
      for (Rank node = 0; node < shape.num_nodes(); ++node) {
        const Direction dir = algo.direction(node, phase, step);
        // Extent-4 scatter assignments are degenerate length-one rings:
        // those nodes never transmit (same skip as the static
        // contention proof).
        if (algo.phase_kind(phase) == PhaseKind::kScatter && shape.extent(dir.dim) == 4) {
          continue;
        }
        audit_message(torus, faults, phase, step, tick, node, algo.partner(node, phase, step),
                      dir, hops, report, step_impacted, scratch);
      }
      ++report.audited_steps;
      if (step_impacted) ++report.impacted_steps;
    }
  }
  return report;
}

FaultImpactReport audit_trace_faults(const Torus& torus, const ExchangeTrace& trace,
                                     const FaultModel& faults, std::int64_t base_tick) {
  FaultImpactReport report;
  std::vector<ChannelId> scratch;
  for (std::size_t s = 0; s < trace.steps.size(); ++s) {
    const StepRecord& rec = trace.steps[s];
    const std::int64_t tick = base_tick + static_cast<std::int64_t>(s);
    bool step_impacted = false;
    for (const auto& t : rec.transfers) {
      if (t.blocks <= 0) continue;
      audit_message(torus, faults, rec.phase, rec.step, tick, t.src, t.dst, t.dir, t.hops,
                    report, step_impacted, scratch);
    }
    ++report.audited_steps;
    if (step_impacted) ++report.impacted_steps;
  }
  return report;
}

std::optional<std::vector<ChannelId>> route_around_faults(const Torus& torus,
                                                          const FaultModel& faults, Rank src,
                                                          Rank dst, std::int64_t tick) {
  const TorusShape& shape = torus.shape();
  TOREX_REQUIRE(src >= 0 && src < shape.num_nodes(), "route source out of range");
  TOREX_REQUIRE(dst >= 0 && dst < shape.num_nodes(), "route destination out of range");
  if (src == dst) return std::vector<ChannelId>{};

  // BFS over nodes; parent_channel remembers the channel used to reach
  // each node so the path can be reconstructed.
  std::vector<ChannelId> parent_channel(static_cast<std::size_t>(shape.num_nodes()), -1);
  std::vector<char> visited(static_cast<std::size_t>(shape.num_nodes()), 0);
  std::deque<Rank> queue;
  visited[static_cast<std::size_t>(src)] = 1;
  queue.push_back(src);
  while (!queue.empty()) {
    const Rank at = queue.front();
    queue.pop_front();
    if (at == dst) break;
    for (int d = 0; d < shape.num_dims(); ++d) {
      for (Sign sign : {Sign::kPositive, Sign::kNegative}) {
        const Direction dir{d, sign};
        const Rank next = torus.neighbor(at, dir);
        if (visited[static_cast<std::size_t>(next)]) continue;
        const ChannelId id = torus.channel_id(at, dir);
        if (faults.channel_relevant_failed(torus, id, tick)) continue;
        visited[static_cast<std::size_t>(next)] = 1;
        parent_channel[static_cast<std::size_t>(next)] = id;
        queue.push_back(next);
      }
    }
  }
  if (!visited[static_cast<std::size_t>(dst)]) return std::nullopt;

  std::vector<ChannelId> path;
  Rank at = dst;
  while (at != src) {
    const ChannelId id = parent_channel[static_cast<std::size_t>(at)];
    TOREX_CHECK(id >= 0, "BFS parent chain broken");
    path.push_back(id);
    at = torus.channel_of(id).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace torex
