// Fault model: failed directed channels and failed nodes over time.
//
// The paper's schedules are contention-free only on a fully healthy
// torus; a dead channel would silently break the exchange. This module
// describes injected faults deterministically so every other layer can
// reason about them:
//   * the schedule audit walks a SuhShinAape step by step and reports
//     exactly which (phase, step, channel) a fault would break
//     (FaultImpactReport, the fault analogue of ContentionReport);
//   * the wormhole simulator stalls worms on faulted channels;
//   * the communicator's recovery policies (runtime/recovery.hpp) plan
//     retries, remaps and fallbacks from the same reports.
//
// Time is an abstract monotone `tick` axis. Consumers choose the
// granularity: the schedule audit advances one tick per schedule step
// (so `active_from = k` means "fails at step k"), the wormhole
// simulator one tick per cycle, and the communicator's retry loop
// advances ticks by its backoff waits. A fault is *transient* when its
// activation window closes (it heals at `active_until`) and *permanent*
// when the window never closes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/aape.hpp"
#include "core/integrity.hpp"
#include "core/trace.hpp"
#include "topology/torus.hpp"

namespace torex {

/// Activation bound meaning "never heals".
inline constexpr std::int64_t kFaultForever = std::numeric_limits<std::int64_t>::max();

/// What failed.
enum class FaultKind {
  kChannel,  ///< one directed physical channel is dead
  kNode,     ///< a whole node is dead (implies all its channels)
};

std::string to_string(FaultKind kind);

/// One injected fault with its activation window [active_from,
/// active_until): inactive before `active_from`, healed from
/// `active_until` on.
struct FaultSpec {
  FaultKind kind = FaultKind::kChannel;
  Channel channel;  ///< meaningful when kind == kChannel
  Rank node = -1;   ///< meaningful when kind == kNode
  std::int64_t active_from = 0;
  std::int64_t active_until = kFaultForever;

  bool permanent() const { return active_until == kFaultForever; }
  bool active_at(std::int64_t tick) const {
    return tick >= active_from && tick < active_until;
  }
  /// Still capable of being active at or after `tick` (active now or in
  /// the future) — the planning-time notion of "must route around it".
  bool relevant_at(std::int64_t tick) const { return active_until > tick; }

  std::string describe(const Torus& torus) const;
};

/// A whole-node death at a point in time, the failure detector's unit
/// of input: the node falls silent at `crash_tick` and (optionally)
/// rejoins at `rejoin_tick`. Sugar over a kNode FaultSpec — recording
/// one through FaultModel::crash_node also adds the equivalent node
/// fault, so routing, audits, and recovery all see the dead node — but
/// kept as its own record so detectors and tools can enumerate crashes
/// without pattern-matching spec windows.
struct CrashFault {
  Rank node = -1;
  std::int64_t crash_tick = 0;
  std::int64_t rejoin_tick = kFaultForever;

  bool rejoins() const { return rejoin_tick != kFaultForever; }
  std::string describe() const;
};

/// A deterministic set of faults. Value type; cheap to copy. Queries
/// scan the spec list linearly — fault sets are small by construction
/// (a handful of failures, not half the machine).
class FaultModel {
 public:
  FaultModel() = default;

  /// Builders (chainable).
  FaultModel& fail_channel(Rank from, Direction direction, std::int64_t active_from = 0,
                           std::int64_t active_until = kFaultForever);
  FaultModel& fail_node(Rank node, std::int64_t active_from = 0,
                        std::int64_t active_until = kFaultForever);

  /// A flapping channel: `cycles` transient windows of `up_ticks` dead
  /// followed by `down_ticks` healthy, the first window opening at
  /// `first_from`. The breaker-lattice stress pattern: each window is
  /// one independent transient fault on the same channel.
  FaultModel& flap_channel(Rank from, Direction direction, std::int64_t first_from,
                           std::int64_t up_ticks, std::int64_t down_ticks, int cycles);

  /// Records a CrashFault and its equivalent node fault: dead in
  /// [crash_tick, rejoin_tick).
  FaultModel& crash_node(Rank node, std::int64_t crash_tick,
                         std::int64_t rejoin_tick = kFaultForever);

  /// Seeded injection of `count` distinct crashing nodes, all dying at
  /// `crash_tick` and never rejoining.
  FaultModel& inject_random_crashes(const Torus& torus, std::uint64_t seed, int count,
                                    std::int64_t crash_tick = 0);

  const std::vector<CrashFault>& crashes() const { return crashes_; }

  /// Seeded injection: appends `count` distinct random channel faults
  /// drawn with SplitMix64(seed). Deterministic across platforms.
  FaultModel& inject_random_channel_faults(const Torus& torus, std::uint64_t seed, int count,
                                           std::int64_t active_from = 0,
                                           std::int64_t active_until = kFaultForever);

  /// Seeded injection of `count` distinct random node faults.
  FaultModel& inject_random_node_faults(const Torus& torus, std::uint64_t seed, int count,
                                        std::int64_t active_from = 0,
                                        std::int64_t active_until = kFaultForever);

  bool empty() const { return specs_.empty(); }
  std::size_t size() const { return specs_.size(); }
  const std::vector<FaultSpec>& specs() const { return specs_; }

  /// True when any spec never heals.
  bool any_permanent() const;

  /// First tick from which no fault is ever active again (0 for an
  /// empty model, kFaultForever when a permanent fault exists).
  std::int64_t all_clear_after() const;

  /// The first spec that kills channel `id` at `tick`, if any. A node
  /// fault kills every channel entering or leaving that node.
  std::optional<FaultSpec> find_channel_fault(const Torus& torus, ChannelId id,
                                              std::int64_t tick) const;

  bool channel_failed(const Torus& torus, ChannelId id, std::int64_t tick) const {
    return find_channel_fault(torus, id, tick).has_value();
  }

  bool node_failed(Rank node, std::int64_t tick) const;

  /// Node dead now or at any future tick (planning-time query).
  bool node_relevant_failed(Rank node, std::int64_t tick) const;

  /// Channel unusable now or at any future tick (planning-time query).
  bool channel_relevant_failed(const Torus& torus, ChannelId id, std::int64_t tick) const;

 private:
  std::vector<FaultSpec> specs_;
  std::vector<CrashFault> crashes_;
};

// --- Corruption faults -------------------------------------------------
//
// A corruption fault does not kill a channel — it silently damages the
// bytes crossing it, which is strictly nastier: routing and the
// schedule audit see a healthy network. Only the sealed payload
// exchange (core/payload_exchange.hpp) can observe these, through the
// ParcelTamperer a CorruptionModel builds. Same deterministic design
// as FaultModel: directed channels, [active_from, active_until) tick
// windows, seeded injection.

/// How a corrupting channel damages a message.
enum class CorruptionKind {
  kBitFlip,   ///< flips one seeded bit of the wire bytes
  kTruncate,  ///< drops a seeded number of trailing bytes
};

std::string to_string(CorruptionKind kind);

/// One corrupting channel with its activation window.
struct CorruptionSpec {
  CorruptionKind kind = CorruptionKind::kBitFlip;
  Channel channel;
  std::int64_t active_from = 0;
  std::int64_t active_until = kFaultForever;
  /// Seeds which bit flips / how many bytes drop; mixed with the
  /// transfer context so repeated hits corrupt differently but
  /// deterministically.
  std::uint64_t seed = 0;

  bool permanent() const { return active_until == kFaultForever; }
  bool active_at(std::int64_t tick) const {
    return tick >= active_from && tick < active_until;
  }

  std::string describe(const Torus& torus) const;
};

/// A deterministic set of corruption faults. Value type; queries scan
/// linearly like FaultModel.
class CorruptionModel {
 public:
  CorruptionModel() = default;

  /// Builder (chainable).
  CorruptionModel& corrupt_channel(Rank from, Direction direction, CorruptionKind kind,
                                   std::int64_t active_from = 0,
                                   std::int64_t active_until = kFaultForever,
                                   std::uint64_t seed = 0);

  /// Seeded injection: appends `count` distinct random corrupting
  /// channels with random kinds, drawn with SplitMix64(seed).
  CorruptionModel& inject_random_corruptions(const Torus& torus, std::uint64_t seed, int count,
                                             std::int64_t active_from = 0,
                                             std::int64_t active_until = kFaultForever);

  bool empty() const { return specs_.empty(); }
  std::size_t size() const { return specs_.size(); }
  const std::vector<CorruptionSpec>& specs() const { return specs_; }
  bool any_permanent() const;

  /// The first spec corrupting channel `id` at `tick`, if any.
  std::optional<CorruptionSpec> find(const Torus& torus, ChannelId id,
                                     std::int64_t tick) const;

  /// Damages `wire` per `spec` (deterministic in spec.seed and the
  /// transfer context). Exposed for tests.
  static void apply(const CorruptionSpec& spec, const TransferContext& ctx,
                    std::vector<std::byte>& wire);

  /// Builds the tamper hook for the sealed payload exchange: a
  /// transmission whose straight-line route crosses a corrupting
  /// channel active at its tick gets damaged by the first such spec.
  /// Captures copies of this model and the torus (safe to outlive
  /// both).
  ParcelTamperer tamperer(const Torus& torus) const;

 private:
  std::vector<CorruptionSpec> specs_;
};

// --- Schedule audit ----------------------------------------------------

/// One message a fault would break.
struct FaultImpact {
  int phase = 0;  ///< 1-based schedule coordinates
  int step = 0;
  std::int64_t tick = 0;  ///< tick the step was audited at
  Rank src = -1;
  Rank dst = -1;
  FaultSpec fault;           ///< the spec that broke the message
  std::string description;   ///< human-readable summary
};

/// The fault analogue of ContentionReport: which phases/steps/channels
/// of a schedule a fault set would break.
struct FaultImpactReport {
  std::int64_t audited_steps = 0;
  std::int64_t impacted_steps = 0;
  std::int64_t impacted_messages = 0;
  /// First `kMaxRecordedImpacts` impacts in schedule order;
  /// `impacted_messages` counts all of them.
  std::vector<FaultImpact> impacts;
  std::optional<FaultImpact> first_impact;

  static constexpr std::size_t kMaxRecordedImpacts = 64;

  bool clean() const { return impacted_messages == 0; }
};

/// Walks every (phase, step) of the schedule with full-activity traffic
/// (the conservative superset the static contention proof uses) and
/// reports every message whose source, path channel, or destination a
/// fault breaks. Step s (0-based, global) is audited at tick
/// `base_tick + s`, so a fault with active_from = k models
/// "fail at step k" of a run starting at base_tick = 0.
FaultImpactReport audit_schedule_faults(const SuhShinAape& algo, const FaultModel& faults,
                                        std::int64_t base_tick = 0);

/// Same audit over a recorded trace (realized traffic only, straight
/// routes as scheduled).
FaultImpactReport audit_trace_faults(const Torus& torus, const ExchangeTrace& trace,
                                     const FaultModel& faults, std::int64_t base_tick = 0);

// --- Fault-aware routing -----------------------------------------------

/// Shortest path from `src` to `dst` using only channels with no
/// relevant fault at `tick` (BFS, deterministic tie-break by scan
/// order: dimension ascending, + before -). Returns std::nullopt when
/// the faults disconnect the pair. `src == dst` yields an empty path.
std::optional<std::vector<ChannelId>> route_around_faults(const Torus& torus,
                                                          const FaultModel& faults, Rank src,
                                                          Rank dst, std::int64_t tick);

}  // namespace torex
