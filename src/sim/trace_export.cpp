#include "sim/trace_export.hpp"

#include <ostream>
#include <stdexcept>

namespace torex {

void write_steps_csv(std::ostream& os, const ExchangeTrace& trace) {
  os << "phase,step,hops,max_blocks,total_blocks,transfers\n";
  for (const auto& step : trace.steps) {
    os << step.phase << ',' << step.step << ',' << step.hops << ','
       << step.max_blocks_per_node << ',' << step.total_blocks << ','
       << step.transfers.size() << '\n';
  }
}

void write_transfers_csv(std::ostream& os, const ExchangeTrace& trace) {
  for (const auto& step : trace.steps) {
    if (step.total_blocks > 0 && step.transfers.empty()) {
      throw std::invalid_argument(
          "write_transfers_csv: trace has no per-transfer detail (phase " +
          std::to_string(step.phase) + " step " + std::to_string(step.step) +
          " moved blocks but recorded no transfers) — run the engine with "
          "EngineOptions::record_transfers");
    }
  }
  os << "phase,step,src,dst,dim,sign,hops,blocks\n";
  for (const auto& step : trace.steps) {
    for (const auto& t : step.transfers) {
      os << step.phase << ',' << step.step << ',' << t.src << ',' << t.dst << ','
         << t.dir.dim << ',' << (t.dir.sign == Sign::kPositive ? 1 : -1) << ',' << t.hops
         << ',' << t.blocks << '\n';
    }
  }
}

void write_series_csv(std::ostream& os, const std::string& label,
                      const std::vector<double>& values) {
  os << "index,label,value\n";
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << i << ',' << label << ',' << values[i] << '\n';
  }
}

void write_wormhole_csv(std::ostream& os, const WormholeOutcome& outcome) {
  os << "message,start,header_arrival,delivered,stall_cycles,hops\n";
  for (std::size_t i = 0; i < outcome.messages.size(); ++i) {
    const auto& m = outcome.messages[i];
    os << i << ',' << m.start << ',' << m.header_arrival << ',' << m.delivered << ','
       << m.stall_cycles << ',' << m.hops << '\n';
  }
}

void write_cost_csv(std::ostream& os, const std::string& label, const CostBreakdown& cost) {
  os << "label,startup,transmission,rearrangement,propagation,total\n";
  os << label << ',' << cost.startup << ',' << cost.transmission << ','
     << cost.rearrangement << ',' << cost.propagation << ',' << cost.total() << '\n';
}

}  // namespace torex
