// Trace export: CSV writers for traces, cost breakdowns, and wormhole
// outcomes, so bench results feed straight into plotting pipelines.
//
// Formats (one header row, comma separated, no quoting needed — all
// fields are numeric or simple identifiers):
//   steps:      phase,step,hops,max_blocks,total_blocks,transfers
//   transfers:  phase,step,src,dst,dim,sign,hops,blocks
//   series:     index,label,value   (generic labeled series)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "costmodel/params.hpp"
#include "sim/wormhole.hpp"

namespace torex {

/// One step per row.
void write_steps_csv(std::ostream& os, const ExchangeTrace& trace);

/// One transfer per row. Throws std::invalid_argument when the trace
/// moved blocks but recorded no per-transfer detail (the engine ran
/// without EngineOptions::record_transfers) — an empty body would
/// silently poison downstream plots.
void write_transfers_csv(std::ostream& os, const ExchangeTrace& trace);

/// Generic labeled series, e.g. cumulative completion times.
void write_series_csv(std::ostream& os, const std::string& label,
                      const std::vector<double>& values);

/// Per-message wormhole timings.
void write_wormhole_csv(std::ostream& os, const WormholeOutcome& outcome);

/// Cost breakdown as a single CSV row (with header).
void write_cost_csv(std::ostream& os, const std::string& label, const CostBreakdown& cost);

}  // namespace torex
