#include "sim/wormhole.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace torex {

namespace {

/// A claimable resource: virtual channel (2 per physical channel) or a
/// destination consumption port.
struct Resource {
  std::int64_t free_at = 0;  ///< cycle from which the resource is available
  std::int32_t owner = -1;   ///< message currently holding it (-1 = free, subject to free_at)
};

/// Routing: dimension-ordered minimal path as (channel, vc) resource
/// indices. VC 0 until the ring's wrap edge is crossed, VC 1 after —
/// the dateline scheme, applied per dimension.
void build_vc_path(const Torus& torus, Rank src, Rank dst,
                   std::vector<std::int64_t>& resources) {
  const TorusShape& shape = torus.shape();
  const Coord a = shape.coord_of(src);
  const Coord b = shape.coord_of(dst);
  Rank at = src;
  for (int d = 0; d < shape.num_dims(); ++d) {
    const std::int64_t delta = ring_delta(a[static_cast<std::size_t>(d)],
                                          b[static_cast<std::size_t>(d)], shape.extent(d));
    if (delta == 0) continue;
    const Direction dir{d, delta > 0 ? Sign::kPositive : Sign::kNegative};
    const std::int64_t steps = delta > 0 ? delta : -delta;
    int vc = 0;
    for (std::int64_t s = 0; s < steps; ++s) {
      const Coord here = shape.coord_of(at);
      const std::int32_t coord = here[static_cast<std::size_t>(d)];
      // Dateline: the wrap edge is (extent-1 -> 0) going +, (0 -> extent-1)
      // going -. A worm crossing it continues on VC 1.
      const bool crossing_wrap = (dir.sign == Sign::kPositive && coord == shape.extent(d) - 1) ||
                                 (dir.sign == Sign::kNegative && coord == 0);
      resources.push_back(torus.channel_id(at, dir) * 2 + vc);
      if (crossing_wrap) vc = 1;
      at = torus.neighbor(at, dir);
    }
  }
  TOREX_CHECK(at == dst, "VC route did not reach the destination");
}

/// Straight-line route with the same dateline VC discipline.
void build_straight_vc_path(const Torus& torus, Rank src, const StraightRoute& route,
                            std::vector<std::int64_t>& resources) {
  const TorusShape& shape = torus.shape();
  Rank at = src;
  int vc = 0;
  for (std::int64_t s = 0; s < route.hops; ++s) {
    const Coord here = shape.coord_of(at);
    const std::int32_t coord = here[static_cast<std::size_t>(route.dir.dim)];
    const bool crossing_wrap =
        (route.dir.sign == Sign::kPositive && coord == shape.extent(route.dir.dim) - 1) ||
        (route.dir.sign == Sign::kNegative && coord == 0);
    resources.push_back(torus.channel_id(at, route.dir) * 2 + vc);
    if (crossing_wrap) vc = 1;
    at = torus.neighbor(at, route.dir);
  }
}

}  // namespace

WormholeSimulator::WormholeSimulator(const Torus& torus) : torus_(torus) {}

WormholeOutcome WormholeSimulator::simulate(const std::vector<WormSpec>& specs,
                                            SwitchingMode mode, Recorder* obs) const {
  return simulate_faulted(specs, FaultModel{}, /*base_tick=*/0, mode, obs);
}

WormholeOutcome WormholeSimulator::simulate_faulted(const std::vector<WormSpec>& specs,
                                                    const FaultModel& faults,
                                                    std::int64_t base_tick,
                                                    SwitchingMode mode, Recorder* obs) const {
  TOREX_REQUIRE(base_tick >= 0, "base tick must be non-negative");
  if (obs != nullptr && !obs->enabled()) obs = nullptr;
  SpanGuard sim_span(obs, "wormhole_sim");
  const std::int64_t vc_count = torus_.num_channels() * 2;
  const Rank N = torus_.shape().num_nodes();
  // Resource layout: [0, vc_count) virtual channels, then one
  // consumption port per node.
  std::vector<Resource> resources(static_cast<std::size_t>(vc_count + N));
  auto consumption_port = [&](Rank node) { return vc_count + node; };

  struct Worm {
    std::vector<std::int64_t> path;  // VC resources then consumption port
    std::int64_t flits = 1;
    std::int64_t inject_time = 0;
    Rank src = 0;
    std::size_t acquired = 0;                  // resources acquired so far
    std::vector<std::int64_t> acquire_time;    // per resource, cycle acquired
    bool done = false;
    WormResult result;
  };

  std::vector<Worm> worms(specs.size());
  // One-port injection: a source port is held from a worm's start until
  // its tail leaves the source. `source_owner` latches the in-flight
  // worm (its release time is only known once its header completes);
  // `source_free` holds the computed release time afterwards.
  std::vector<std::int64_t> source_free(static_cast<std::size_t>(N), 0);
  std::vector<std::int32_t> source_owner(static_cast<std::size_t>(N), -1);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const WormSpec& spec = specs[i];
    TOREX_REQUIRE(spec.src != spec.dst, "message addressed to itself");
    TOREX_REQUIRE(spec.flits >= 1, "message needs at least the header flit");
    Worm& w = worms[i];
    w.src = spec.src;
    w.flits = spec.flits;
    w.inject_time = spec.inject_time;
    if (spec.route) {
      build_straight_vc_path(torus_, spec.src, *spec.route, w.path);
      TOREX_REQUIRE(torus_.neighbor_at(spec.src, spec.route->dir, spec.route->hops) == spec.dst,
                    "straight route does not end at the destination");
    } else {
      build_vc_path(torus_, spec.src, spec.dst, w.path);
    }
    w.result.hops = static_cast<std::int64_t>(w.path.size());
    w.path.push_back(consumption_port(spec.dst));
    w.acquire_time.resize(w.path.size(), -1);

    // A permanent fault on the route would stall the worm forever;
    // reject it up front instead of tripping the deadlock watchdog.
    if (!faults.empty()) {
      for (const auto& fault : faults.specs()) {
        if (!fault.permanent()) continue;
        if (fault.kind == FaultKind::kNode &&
            (fault.node == spec.src || fault.node == spec.dst)) {
          throw std::invalid_argument("worm endpoint is a permanently failed node " +
                                      std::to_string(fault.node) +
                                      "; remap it before simulating");
        }
      }
      for (std::size_t r = 0; r + 1 < w.path.size(); ++r) {
        const ChannelId id = w.path[r] / 2;
        const auto hit = faults.find_channel_fault(torus_, id, kFaultForever - 1);
        if (hit && hit->permanent()) {
          throw std::invalid_argument(
              "worm route crosses a permanently failed resource (" + hit->describe(torus_) +
              "); reroute around permanent faults before simulating");
        }
      }
    }
  }

  std::size_t remaining = worms.size();
  std::int64_t t = 0;
  std::int64_t idle_cycles = 0;
  // Channel-occupancy counter track: worms that have entered the
  // network and are not yet delivered. Emitted only on change so an
  // uncontended batch costs a handful of events.
  std::int64_t in_flight = 0;
  std::int64_t last_emitted_in_flight = -1;
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t i = 0; i < worms.size(); ++i) {
      Worm& w = worms[i];
      if (w.done) continue;
      // Gate injection on the spec time, the source's one-port, and the
      // source node being alive.
      if (w.acquired == 0) {
        if (t < w.inject_time || t < source_free[static_cast<std::size_t>(w.src)] ||
            source_owner[static_cast<std::size_t>(w.src)] != -1 ||
            faults.node_failed(w.src, base_tick + t)) {
          continue;
        }
      }
      // Store-and-forward: the header may not leave a node before the
      // tail has fully arrived there. Waiting for one's own tail is
      // latency, not a contention stall.
      if (mode == SwitchingMode::kStoreAndForward && w.acquired > 0 &&
          t < w.acquire_time[w.acquired - 1] + w.flits) {
        continue;
      }
      // A faulted resource admits no new flits: the header stalls in
      // place (holding everything behind it) until the fault heals.
      const std::int64_t next_index = w.path[w.acquired];
      bool fault_blocked = false;
      if (!faults.empty()) {
        fault_blocked =
            next_index < vc_count
                ? faults.channel_failed(torus_, next_index / 2, base_tick + t)
                : faults.node_failed(static_cast<Rank>(next_index - vc_count), base_tick + t);
      }
      Resource& next = resources[static_cast<std::size_t>(next_index)];
      const bool free = !fault_blocked && next.owner == -1 && next.free_at <= t;
      if (!free) {
        if (w.acquired > 0) ++w.result.stall_cycles;
        continue;
      }
      // Acquire and advance one hop this cycle.
      if (mode == SwitchingMode::kWormhole) {
        // Rigid worm: held until the completion branch computes the
        // tail-passing times.
        next.owner = static_cast<std::int32_t>(i);
      } else {
        // Cut-through / store-and-forward: the channel is busy for
        // exactly the flits streaming across it, then frees itself —
        // a blocked message drains into the downstream node's buffer.
        next.free_at = t + w.flits;
      }
      w.acquire_time[w.acquired] = t;
      if (w.acquired == 0) {
        w.result.start = t;
        source_owner[static_cast<std::size_t>(w.src)] = static_cast<std::int32_t>(i);
        ++in_flight;
      }
      ++w.acquired;
      progressed = true;

      if (w.acquired == w.path.size()) {
        // Header has the consumption port.
        // acquire_time[hops] is the consumption acquisition == header
        // arrival cycle (the port is the (hops+1)-th resource).
        const std::int64_t hops = w.result.hops;
        const std::int64_t header_arrival = w.acquire_time[static_cast<std::size_t>(hops)];
        w.result.header_arrival = header_arrival;
        w.result.delivered = header_arrival + (w.flits - 1);
        if (mode == SwitchingMode::kWormhole) {
          // Rigid worm: tail crosses resource j when the "virtual
          // header position" reaches j + flits: position x was reached
          // at acquire_time[x] for x < path-size, and advances one per
          // cycle afterwards.
          const auto position_time = [&](std::int64_t x) {
            if (x < static_cast<std::int64_t>(w.path.size())) {
              return w.acquire_time[static_cast<std::size_t>(x)];
            }
            return header_arrival + (x - static_cast<std::int64_t>(w.path.size()) + 1);
          };
          for (std::size_t j = 0; j < w.path.size(); ++j) {
            Resource& r = resources[static_cast<std::size_t>(w.path[j])];
            r.owner = -1;
            r.free_at = position_time(static_cast<std::int64_t>(j) + w.flits) + 1;
          }
          // The tail leaves the source when it crosses the first
          // resource (virtual position flits-1 .. flits).
          source_free[static_cast<std::size_t>(w.src)] = position_time(w.flits) + 1;
        } else {
          // Cut-through / store-and-forward: channels already freed
          // themselves; the source port clears once the tail left it.
          source_free[static_cast<std::size_t>(w.src)] = w.acquire_time[0] + w.flits;
        }
        source_owner[static_cast<std::size_t>(w.src)] = -1;
        w.done = true;
        --remaining;
        --in_flight;
      }
    }
    if (obs != nullptr && in_flight != last_emitted_in_flight) {
      obs->counter("worms_in_flight", in_flight);
      last_emitted_in_flight = in_flight;
    }
    ++t;
    if (!progressed) {
      ++idle_cycles;
      // All pending worms may legitimately be waiting for timed releases
      // or injection gates; jump is unnecessary (cycle loop is cheap) but
      // a long barren stretch with no future release means deadlock.
      TOREX_CHECK(idle_cycles < 1'000'000,
                  "wormhole simulation made no progress for 10^6 cycles (deadlock?)");
    } else {
      idle_cycles = 0;
    }
  }

  WormholeOutcome outcome;
  outcome.messages.reserve(worms.size());
  for (auto& w : worms) {
    outcome.makespan = std::max(outcome.makespan, w.result.delivered);
    outcome.total_stalls += w.result.stall_cycles;
    outcome.messages.push_back(w.result);
  }
  return outcome;
}

std::vector<WormholeOutcome> simulate_trace_steps(const Torus& torus,
                                                  const ExchangeTrace& trace,
                                                  std::int64_t flits_per_block,
                                                  SwitchingMode mode) {
  TOREX_REQUIRE(flits_per_block >= 1, "blocks need at least one flit");
  WormholeSimulator sim(torus);
  std::vector<WormholeOutcome> outcomes;
  outcomes.reserve(trace.steps.size());
  for (const auto& step : trace.steps) {
    std::vector<WormSpec> specs;
    specs.reserve(step.transfers.size());
    for (const auto& t : step.transfers) {
      if (t.blocks <= 0) continue;
      WormSpec spec;
      spec.src = t.src;
      spec.dst = t.dst;
      spec.flits = 1 + t.blocks * flits_per_block;  // header + payload
      spec.route = StraightRoute{t.dir, t.hops};
      specs.push_back(spec);
    }
    outcomes.push_back(sim.simulate(specs, mode));
  }
  return outcomes;
}

std::vector<WormholeOutcome> simulate_trace_steps_faulted(const Torus& torus,
                                                          const ExchangeTrace& trace,
                                                          std::int64_t flits_per_block,
                                                          const FaultModel& faults,
                                                          std::int64_t base_tick,
                                                          SwitchingMode mode) {
  TOREX_REQUIRE(flits_per_block >= 1, "blocks need at least one flit");
  WormholeSimulator sim(torus);
  std::vector<WormholeOutcome> outcomes;
  outcomes.reserve(trace.steps.size());
  for (const auto& step : trace.steps) {
    std::vector<WormSpec> specs;
    specs.reserve(step.transfers.size());
    for (const auto& t : step.transfers) {
      if (t.blocks <= 0) continue;
      WormSpec spec;
      spec.src = t.src;
      spec.dst = t.dst;
      spec.flits = 1 + t.blocks * flits_per_block;  // header + payload
      spec.route = StraightRoute{t.dir, t.hops};
      specs.push_back(spec);
    }
    outcomes.push_back(sim.simulate_faulted(specs, faults, base_tick, mode));
  }
  return outcomes;
}

std::vector<WormholeOutcome> simulate_routed_steps(const Torus& torus,
                                                   const std::vector<RoutedStep>& steps,
                                                   std::int64_t flits_per_block,
                                                   SwitchingMode mode) {
  TOREX_REQUIRE(flits_per_block >= 1, "blocks need at least one flit");
  WormholeSimulator sim(torus);
  std::vector<WormholeOutcome> outcomes;
  outcomes.reserve(steps.size());
  for (const auto& step : steps) {
    std::vector<WormSpec> specs;
    specs.reserve(step.messages.size());
    for (const auto& [src, dst] : step.messages) {
      WormSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.flits = 1 + step.blocks_of(specs.size()) * flits_per_block;
      specs.push_back(spec);
    }
    outcomes.push_back(sim.simulate(specs, mode));
  }
  return outcomes;
}

}  // namespace torex
