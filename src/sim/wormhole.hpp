// Flit-level wormhole-switching simulator (paper §2's machine model).
//
// Models the network the paper targets: k-ary n-cube (torus), full
// duplex physical channels, one-port nodes, wormhole switching with
// single-flit channel buffers and *no* flit compression: a worm is
// rigid, so when its header stalls every flit behind it stalls, and the
// channels it occupies stay held — exactly the behaviour that makes
// contention catastrophic and message combining worthwhile.
//
// Routing is minimal dimension-ordered with two virtual channels per
// physical channel under the standard dateline scheme (messages start
// on VC0 and switch to VC1 after crossing a ring's wrap edge), which
// makes the torus deadlock-free (Dally & Seitz). Arbitration is
// deterministic: pending headers are served in message-id order each
// cycle.
//
// Timing model (cycles):
//   * a header advances one hop per cycle when the next virtual channel
//     is free, else the whole worm stalls in place;
//   * delivery begins when the header reaches the destination and
//     acquires its consumption port; the remaining flits then drain at
//     one per cycle (flit f of L arrives at T + f);
//   * a resource (VC or port) is released when the tail flit passes it;
//   * a source injects one message at a time (one-port): a message may
//     not start before its predecessor's tail has left the source.
//
// The simulator is used two ways:
//   * to price the direct (non-combining) baseline honestly, stalls
//     included;
//   * to validate at flit level that every step of the proposed
//     schedule runs stall-free (the paper's contention-freedom claim).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/trace.hpp"
#include "obs/recorder.hpp"
#include "sim/cost_simulator.hpp"
#include "sim/fault_model.hpp"
#include "topology/torus.hpp"

namespace torex {

/// Switching discipline (paper §2: "the proposed algorithms apply
/// equally well to networks using virtual cut-through or packet
/// switching").
enum class SwitchingMode {
  /// Rigid worms, single-flit channel buffers: a blocked header stalls
  /// every flit behind it and all held channels stay held.
  kWormhole,
  /// Virtual cut-through: nodes buffer whole messages, so a channel is
  /// busy for exactly `flits` cycles after the header crosses it and a
  /// blocked message drains out of the channels behind it.
  kVirtualCutThrough,
  /// Store-and-forward packet switching: the header may leave a node
  /// only after the complete message has arrived there (per-hop latency
  /// is `flits` cycles even without contention).
  kStoreAndForward,
};

/// Straight-line route override: `hops` moves along one direction.
/// Used to replay schedule transfers exactly as scheduled (minimal
/// routing would tie-break +4 vs -4 on an extent-8 ring and could
/// diverge from the algorithm's chosen side).
struct StraightRoute {
  Direction dir;
  std::int64_t hops = 0;
};

/// One message to simulate.
struct WormSpec {
  Rank src = 0;
  Rank dst = 0;
  std::int64_t flits = 1;        ///< total length including the header flit
  std::int64_t inject_time = 0;  ///< earliest cycle the header may enter the network
  std::optional<StraightRoute> route;  ///< default: minimal dimension-ordered
};

/// Per-message outcome.
struct WormResult {
  std::int64_t start = 0;           ///< cycle the header entered the network
  std::int64_t header_arrival = 0;  ///< cycle the header reached the destination
  std::int64_t delivered = 0;       ///< cycle the tail flit was consumed
  std::int64_t stall_cycles = 0;    ///< cycles the header spent blocked
  std::int64_t hops = 0;
};

/// Batch outcome.
struct WormholeOutcome {
  std::vector<WormResult> messages;  ///< order matches the input specs
  std::int64_t makespan = 0;         ///< cycle the last tail was consumed
  std::int64_t total_stalls = 0;     ///< summed header stall cycles

  bool stall_free() const { return total_stalls == 0; }
};

/// Simulates one batch of messages to completion.
class WormholeSimulator {
 public:
  explicit WormholeSimulator(const Torus& torus);

  /// Runs all messages and returns their timing. Throws std::logic_error
  /// if the network stops making progress (should be impossible with the
  /// dateline VCs; kept as a safety net). `mode` selects the switching
  /// discipline; the default reproduces the paper's wormhole model.
  /// `obs`, when non-null, records a "worms_in_flight" counter track
  /// sampled from the tick loop whenever the in-flight count changes.
  WormholeOutcome simulate(const std::vector<WormSpec>& specs,
                           SwitchingMode mode = SwitchingMode::kWormhole,
                           Recorder* obs = nullptr) const;

  /// Same, on a faulted network. A channel with an active fault admits
  /// no new flits, so a worm whose header reaches it stalls in place
  /// (holding every channel behind it, wormhole-style) until the fault
  /// heals; an injection from (or a delivery port of) a failed node is
  /// likewise gated. Simulator cycle t maps to fault tick
  /// `base_tick + t`. Routes crossing a *permanently* failed channel or
  /// node are rejected up front with std::invalid_argument (they would
  /// deadlock) — reroute around permanent faults before simulating
  /// (see route_around_faults / the communicator's recovery policies).
  WormholeOutcome simulate_faulted(const std::vector<WormSpec>& specs,
                                   const FaultModel& faults, std::int64_t base_tick = 0,
                                   SwitchingMode mode = SwitchingMode::kWormhole,
                                   Recorder* obs = nullptr) const;

  /// Convenience: the stall-free delivery time of one message of
  /// `flits` flits over `hops` hops (header pipeline + drain).
  static std::int64_t uncontended_time(std::int64_t hops, std::int64_t flits) {
    return hops + flits - 1;
  }

 private:
  const Torus& torus_;
};

// --- Convenience drivers -----------------------------------------------

/// Simulates every step of a combining trace as one wormhole batch
/// (messages injected at cycle 0, routed exactly as scheduled). Each
/// block is `flits_per_block` flits; every message carries one extra
/// header flit. Returns one outcome per step.
std::vector<WormholeOutcome> simulate_trace_steps(
    const Torus& torus, const ExchangeTrace& trace, std::int64_t flits_per_block,
    SwitchingMode mode = SwitchingMode::kWormhole);

/// Simulates each routed step of a non-combining baseline.
std::vector<WormholeOutcome> simulate_routed_steps(
    const Torus& torus, const std::vector<RoutedStep>& steps, std::int64_t flits_per_block,
    SwitchingMode mode = SwitchingMode::kWormhole);

/// Simulates every step of a combining trace on a faulted network.
/// Each step is an independent batch (as in simulate_trace_steps)
/// starting at fault tick `base_tick`, so a transient fault active at
/// the start of a step stalls that step's worms until it heals.
std::vector<WormholeOutcome> simulate_trace_steps_faulted(
    const Torus& torus, const ExchangeTrace& trace, std::int64_t flits_per_block,
    const FaultModel& faults, std::int64_t base_tick = 0,
    SwitchingMode mode = SwitchingMode::kWormhole);

}  // namespace torex
