#include "svc/health_registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/assert.hpp"
#include "util/prng.hpp"

namespace torex {

std::string to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  TOREX_UNREACHABLE();
}

void BreakerOptions::validate() const {
  TOREX_REQUIRE(error_threshold >= 1, "breaker: error threshold must be positive");
  TOREX_REQUIRE(open_ticks >= 1, "breaker: cool-off must be at least one tick");
  TOREX_REQUIRE(probe_jitter >= 0, "breaker: probe jitter must be non-negative");
  TOREX_REQUIRE(flap_limit >= 1, "breaker: flap limit must be positive");
}

void RetryBudgetOptions::validate() const {
  TOREX_REQUIRE(capacity >= 0, "retry budget: capacity must be non-negative");
  TOREX_REQUIRE(std::isfinite(refill_per_time) && refill_per_time >= 0.0,
                "retry budget: refill rate must be finite and non-negative");
}

RetryBudget::RetryBudget(RetryBudgetOptions options) : options_(options) {
  options_.validate();
  tokens_ = options_.capacity;
}

void RetryBudget::advance(double now) {
  std::lock_guard<std::mutex> lk(mu_);
  if (now <= last_now_) return;  // virtual time never refunds tokens
  if (options_.capacity > 0 && options_.refill_per_time > 0.0) {
    fractional_ += (now - last_now_) * options_.refill_per_time;
    const auto whole = static_cast<std::int64_t>(fractional_);
    if (whole > 0) {
      fractional_ -= static_cast<double>(whole);
      const std::int64_t grant = std::min(whole, options_.capacity - tokens_);
      tokens_ += grant;
      refilled_ += grant;
    }
  }
  last_now_ = now;
}

bool RetryBudget::try_acquire(std::int64_t tokens) {
  TOREX_REQUIRE(tokens >= 0, "retry budget: token request must be non-negative");
  std::lock_guard<std::mutex> lk(mu_);
  if (options_.capacity == 0) {  // unlimited
    granted_ += tokens;
    return true;
  }
  if (tokens > tokens_) {
    denied_ += tokens;
    return false;
  }
  tokens_ -= tokens;
  granted_ += tokens;
  return true;
}

std::int64_t RetryBudget::available() const {
  std::lock_guard<std::mutex> lk(mu_);
  return options_.capacity == 0 ? std::numeric_limits<std::int64_t>::max() : tokens_;
}

std::int64_t RetryBudget::granted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return granted_;
}

std::int64_t RetryBudget::denied() const {
  std::lock_guard<std::mutex> lk(mu_);
  return denied_;
}

std::int64_t RetryBudget::refilled() const {
  std::lock_guard<std::mutex> lk(mu_);
  return refilled_;
}

std::string ResourceHealth::describe(const Torus& torus) const {
  std::ostringstream out;
  if (kind == FaultKind::kChannel) {
    const Channel c = torus.channel_of(id);
    out << "channel " << id << " (node " << c.from << " dim " << c.direction.dim
        << (c.direction.sign == Sign::kPositive ? " +" : " -") << ")";
  } else {
    out << "node " << id;
  }
  out << ": " << to_string(state) << (permanent ? " (permanent)" : "") << ", errors=" << errors
      << ", flaps=" << flaps << ", chain_walks=" << chain_walks;
  if (!verdict.empty()) out << ", verdict=\"" << verdict << "\"";
  return out.str();
}

HealthRegistry::HealthRegistry(TorusShape shape, BreakerOptions options, Recorder* obs)
    : torus_(shape), options_(options), obs_(obs) {
  options_.validate();
  if (obs_ != nullptr && !obs_->enabled()) obs_ = nullptr;
}

std::int64_t HealthRegistry::cool_off_for(const Key& key, int flaps) const {
  if (options_.probe_jitter == 0) return options_.open_ticks;
  // Seeded per resource and per flap: correlated breakers spread their
  // probes over [open_ticks, open_ticks + probe_jitter], reproducibly.
  SplitMix64 rng(options_.seed ^ (static_cast<std::uint64_t>(key.id) << 8) ^
                 (static_cast<std::uint64_t>(key.kind) << 4) ^
                 static_cast<std::uint64_t>(flaps));
  return options_.open_ticks +
         static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(
             options_.probe_jitter + 1)));
}

BreakerState HealthRegistry::effective_state(const Breaker& b, std::int64_t tick) const {
  if (b.state == BreakerState::kOpen && !b.permanent && tick >= b.opened_at + b.cool_off) {
    return BreakerState::kHalfOpen;
  }
  return b.state;
}

BreakerState HealthRegistry::channel_state(ChannelId id, std::int64_t tick) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = breakers_.find({FaultKind::kChannel, id});
  return it == breakers_.end() ? BreakerState::kClosed : effective_state(it->second, tick);
}

BreakerState HealthRegistry::node_state(Rank node, std::int64_t tick) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = breakers_.find({FaultKind::kNode, node});
  return it == breakers_.end() ? BreakerState::kClosed : effective_state(it->second, tick);
}

bool HealthRegistry::channel_quarantined(ChannelId id, std::int64_t tick) const {
  return channel_state(id, tick) != BreakerState::kClosed;
}

bool HealthRegistry::node_quarantined(Rank node, std::int64_t tick) const {
  return node_state(node, tick) != BreakerState::kClosed;
}

bool HealthRegistry::any_quarantined(std::int64_t tick) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, b] : breakers_) {
    if (effective_state(b, tick) != BreakerState::kClosed) return true;
  }
  return false;
}

std::string HealthRegistry::describe_key(const Key& key) const {
  if (key.kind == FaultKind::kChannel) {
    const Channel c = torus_.channel_of(key.id);
    return "channel " + std::to_string(key.id) + " (node " + std::to_string(c.from) + " dim " +
           std::to_string(c.direction.dim) +
           (c.direction.sign == Sign::kPositive ? "+" : "-") + ")";
  }
  return "node " + std::to_string(key.id);
}

void HealthRegistry::open_locked(const Key& key, Breaker& b, std::int64_t tick,
                                 const std::string& why) {
  b.state = BreakerState::kOpen;
  b.opened_at = tick;
  b.errors = 0;
  if (b.ever_opened) {
    ++b.flaps;
    ++totals_.flaps;
    if (obs_ != nullptr) obs_->metrics().counter("svc.health.flaps").add();
    if (b.flaps >= options_.flap_limit) {
      b.permanent = true;
      ++totals_.permanent_quarantines;
      if (obs_ != nullptr) obs_->metrics().counter("svc.health.permanent").add();
    }
  }
  b.ever_opened = true;
  b.cool_off = cool_off_for(key, b.flaps);
  if (b.verdict.empty()) b.verdict = why;
  ++totals_.opens;
  if (obs_ != nullptr) {
    // Zero-length span so the quarantine decision is visible in traces
    // strictly before the reroutes it causes.
    const auto node = static_cast<std::int32_t>(key.id);
    obs_->begin("svc.health.breaker_open", node);
    obs_->end("svc.health.breaker_open", node);
    obs_->instant("svc.health.quarantine", node, 0, 0, tick);
    obs_->metrics().counter("svc.health.opens").add();
  }
}

bool HealthRegistry::record_error_locked(const Key& key, std::int64_t tick,
                                         const std::string& why) {
  Breaker& b = breakers_[key];
  ++totals_.errors;
  if (obs_ != nullptr) obs_->metrics().counter("svc.health.errors").add();
  switch (effective_state(b, tick)) {
    case BreakerState::kClosed:
      if (++b.errors >= options_.error_threshold) {
        open_locked(key, b, tick, why);
        return true;  // this caller is the first discoverer
      }
      return false;
    case BreakerState::kHalfOpen:
      // An error during the probe window is a failed probe by another
      // name: re-open and count the flap.
      open_locked(key, b, tick, why);
      return false;
    case BreakerState::kOpen:
      return false;  // already quarantined; nothing new to discover
  }
  TOREX_UNREACHABLE();
}

bool HealthRegistry::record_channel_error(ChannelId id, std::int64_t tick,
                                          const std::string& why) {
  TOREX_REQUIRE(id >= 0 && id < torus_.num_channels(), "health: unknown channel id");
  std::lock_guard<std::mutex> lk(mu_);
  return record_error_locked({FaultKind::kChannel, id}, tick, why);
}

bool HealthRegistry::record_node_error(Rank node, std::int64_t tick, const std::string& why) {
  TOREX_REQUIRE(node >= 0 && node < torus_.shape().num_nodes(), "health: unknown node");
  std::lock_guard<std::mutex> lk(mu_);
  return record_error_locked({FaultKind::kNode, node}, tick, why);
}

void HealthRegistry::report_suspicion(Rank node, std::int64_t tick, double phi) {
  TOREX_REQUIRE(node >= 0 && node < torus_.shape().num_nodes(), "health: unknown node");
  std::lock_guard<std::mutex> lk(mu_);
  ++totals_.suspicions;
  if (obs_ != nullptr) obs_->metrics().counter("svc.health.suspicions").add();
  const Key key{FaultKind::kNode, node};
  Breaker& b = breakers_[key];
  if (effective_state(b, tick) != BreakerState::kClosed) return;
  std::ostringstream why;
  why << "phi-accrual suspicion (phi=" << phi << ")";
  open_locked(key, b, tick, why.str());
}

void HealthRegistry::observe_integrity(const IntegrityReport& report, std::int64_t tick) {
  std::lock_guard<std::mutex> lk(mu_);
  ++totals_.integrity_reports;
  if (obs_ != nullptr) obs_->metrics().counter("svc.health.integrity_reports").add();
  std::vector<ChannelId> route;
  for (const IntegrityViolation& v : report.violations) {
    // The violation names the scheduled straight route: every channel
    // on it absorbs one error (the receiver cannot tell which hop
    // damaged the frame, so the whole route is suspect).
    route.clear();
    torus_.straight_path(v.src, v.direction, v.hops, route);
    for (const ChannelId id : route) {
      record_error_locked({FaultKind::kChannel, id}, tick,
                          "integrity retransmission: " + v.reason);
    }
  }
}

void HealthRegistry::run_probes(const FaultModel& ground_truth, std::int64_t tick) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [key, b] : breakers_) {
    if (effective_state(b, tick) != BreakerState::kHalfOpen) continue;
    ++totals_.probes;
    if (obs_ != nullptr) {
      const auto node = static_cast<std::int32_t>(key.id);
      obs_->begin("svc.health.probe", node);
      obs_->end("svc.health.probe", node);
      obs_->metrics().counter("svc.health.probes").add();
    }
    const bool still_bad =
        key.kind == FaultKind::kChannel
            ? ground_truth.channel_failed(torus_, key.id, tick)
            : ground_truth.node_failed(static_cast<Rank>(key.id), tick);
    if (still_bad) {
      ++totals_.probe_failures;
      open_locked(key, b, tick, b.verdict);
    } else {
      b.state = BreakerState::kClosed;
      b.errors = 0;
      ++totals_.closes;
      if (obs_ != nullptr) {
        obs_->instant("svc.health.readmit", static_cast<std::int32_t>(key.id), 0, 0, tick);
        obs_->metrics().counter("svc.health.closes").add();
      }
    }
  }
}

void HealthRegistry::add_quarantine(FaultModel& out, std::int64_t tick) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, b] : breakers_) {
    if (effective_state(b, tick) == BreakerState::kClosed) continue;
    if (key.kind == FaultKind::kChannel) {
      const Channel c = torus_.channel_of(key.id);
      out.fail_channel(c.from, c.direction);
    } else {
      out.fail_node(static_cast<Rank>(key.id));
    }
  }
}

std::string HealthRegistry::channel_verdict(ChannelId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = breakers_.find({FaultKind::kChannel, id});
  return it == breakers_.end() ? std::string() : it->second.verdict;
}

void HealthRegistry::note_chain_walk(ChannelId id) {
  std::lock_guard<std::mutex> lk(mu_);
  ++totals_.chain_walks;
  auto it = breakers_.find({FaultKind::kChannel, id});
  if (it != breakers_.end()) ++it->second.chain_walks;
  if (obs_ != nullptr) obs_->metrics().counter("svc.health.chain_walks").add();
}

void HealthRegistry::note_quarantine_hit() {
  std::lock_guard<std::mutex> lk(mu_);
  ++totals_.quarantine_hits;
  if (obs_ != nullptr) obs_->metrics().counter("svc.health.quarantine_hits").add();
}

void HealthRegistry::note_reroute(std::int64_t extra_hops) {
  std::lock_guard<std::mutex> lk(mu_);
  ++totals_.rerouted_messages;
  totals_.reroute_extra_hops += extra_hops;
  if (obs_ != nullptr) obs_->metrics().counter("svc.health.rerouted").add();
}

void HealthRegistry::note_remap_hosted() {
  std::lock_guard<std::mutex> lk(mu_);
  ++totals_.remap_hosted;
  if (obs_ != nullptr) obs_->metrics().counter("svc.health.remap_hosted").add();
}

void HealthRegistry::note_resent(std::int64_t parcels) {
  std::lock_guard<std::mutex> lk(mu_);
  totals_.resent_parcels += parcels;
  if (obs_ != nullptr) obs_->metrics().counter("svc.health.resent_parcels").add(parcels);
}

void HealthRegistry::note_deferral() {
  std::lock_guard<std::mutex> lk(mu_);
  ++totals_.deferrals;
  if (obs_ != nullptr) obs_->metrics().counter("svc.health.deferred").add();
}

void HealthRegistry::note_planned_around() {
  std::lock_guard<std::mutex> lk(mu_);
  ++totals_.planned_around;
  if (obs_ != nullptr) obs_->metrics().counter("svc.health.planned_around").add();
}

std::int64_t HealthRegistry::opens() const {
  std::lock_guard<std::mutex> lk(mu_);
  return totals_.opens;
}

HealthStats HealthRegistry::stats(std::int64_t tick) const {
  std::lock_guard<std::mutex> lk(mu_);
  HealthStats out = totals_;
  out.resources.clear();
  for (const auto& [key, b] : breakers_) {
    ResourceHealth r;
    r.kind = key.kind;
    r.id = key.id;
    r.state = effective_state(b, tick);
    r.permanent = b.permanent;
    r.errors = b.errors;
    r.flaps = b.flaps;
    r.chain_walks = b.chain_walks;
    r.opened_at = b.opened_at;
    r.verdict = b.verdict;
    if (r.state == BreakerState::kOpen) ++out.open_breakers;
    if (r.state == BreakerState::kHalfOpen) ++out.half_open_breakers;
    out.resources.push_back(std::move(r));
  }
  if (obs_ != nullptr) {
    obs_->metrics().gauge("svc.health.open_breakers").set(out.open_breakers);
  }
  return out;
}

std::string HealthRegistry::dump(std::int64_t tick) const {
  const HealthStats snap = stats(tick);
  std::ostringstream out;
  out << "health registry @ tick " << tick << ": " << snap.resources.size()
      << " tracked resource(s), " << snap.open_breakers << " open, " << snap.half_open_breakers
      << " half-open\n";
  out << "  errors=" << snap.errors << " opens=" << snap.opens << " closes=" << snap.closes
      << " flaps=" << snap.flaps << " probes=" << snap.probes << "/" << snap.probe_failures
      << " failed chain_walks=" << snap.chain_walks << " resent=" << snap.resent_parcels
      << " deferrals=" << snap.deferrals << " rerouted=" << snap.rerouted_messages
      << " hosted=" << snap.remap_hosted << "\n";
  for (const ResourceHealth& r : snap.resources) {
    out << "  " << r.describe(torus_) << "\n";
  }
  return out.str();
}

}  // namespace torex
