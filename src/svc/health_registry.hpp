// Service-wide health registry: circuit breakers over torus resources.
//
// torexd (session_manager.hpp) runs many concurrent sessions over one
// physical torus. Without shared health state every session that hits
// the same dead channel rediscovers it independently: each one pays
// retries, each one walks the full degradation chain, and together they
// amplify a single fault into a retry storm. This module is the shared
// substrate that prevents that:
//
//  * HealthRegistry — deterministic per-resource state for directed
//    channels and nodes, fed by the signals the runtime already
//    produces: per-session IntegrityReport retransmissions
//    (observe_integrity), fault attributions from the data path
//    (record_error), and phi-accrual suspicion from
//    HeartbeatFailureDetector (report_suspicion). Each resource carries
//    a circuit breaker:
//
//        closed --error_threshold consecutive errors--> open
//        open   --cool-off (open_ticks + seeded jitter)--> half-open
//        half-open --probe success--> closed
//        half-open --probe failure--> open again (one flap)
//        any reopen after the first counts a flap; flap_limit flaps
//        quarantine the resource permanently (no more probes).
//
//    The seeded jitter staggers probe re-admission so correlated
//    breakers do not re-probe in lockstep, while staying reproducible
//    from the seed.
//
//  * RetryBudget — one global, cross-tenant token bucket denominated in
//    parcels. Every retransmission any session wants to fire first
//    acquires that many tokens; a denied acquire defers the phase (it
//    re-queues under the fair scheduler) instead of firing, which
//    bounds total retransmission amplification under correlated
//    faults: parcels-resent <= capacity + refilled, by construction.
//
// First-discoverer-heals-all: the first session whose errors push a
// breaker from closed to open is the only one that pays the discovery
// (retries, then the degradation-chain walk); record_error returns true
// exactly at that transition and the registry publishes the verdict.
// Every later session sees the resource quarantined via quarantined() /
// quarantine_faults() and reroutes immediately, paying zero retries.
//
// Determinism: all state advances on the service's fault tick axis (one
// tick per dispatched phase) and the virtual clock; nothing reads wall
// time. The registry is internally locked so tests may hammer it from
// threads, but torexd drives it from the single scheduler thread.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/integrity.hpp"
#include "obs/recorder.hpp"
#include "sim/fault_model.hpp"
#include "topology/torus.hpp"

namespace torex {

/// Breaker lattice. kOpen with HealthResourceState::permanent set never
/// leaves kOpen (flap limit exceeded: the resource is quarantined for
/// good).
enum class BreakerState {
  kClosed,    ///< healthy: traffic flows, errors accumulate
  kOpen,      ///< quarantined: planned around, no retries spent
  kHalfOpen,  ///< cool-off elapsed: next probe decides
};

std::string to_string(BreakerState state);

/// Breaker tuning. validate() rejects non-positive thresholds.
struct BreakerOptions {
  /// Consecutive errors on a closed breaker that trip it open. The
  /// first discoverer pays exactly this many retries per resource.
  int error_threshold = 2;
  /// Base cool-off: an open breaker becomes probe-eligible (half-open)
  /// once this many fault ticks have passed since it opened.
  std::int64_t open_ticks = 4;
  /// Seeded extra cool-off in [0, probe_jitter], mixed per resource and
  /// per flap so correlated breakers de-synchronize their probes.
  std::int64_t probe_jitter = 2;
  /// Reopens (from half-open probe failure or fresh rediscovery) after
  /// which the resource is quarantined permanently.
  int flap_limit = 16;
  /// Jitter seed.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;

  void validate() const;
};

/// Global retry token bucket tuning. capacity 0 = unlimited (every
/// acquire grants). validate() rejects negative values.
struct RetryBudgetOptions {
  /// Bucket size, in parcels.
  std::int64_t capacity = 0;
  /// Tokens replenished per unit of virtual time, up to capacity.
  double refill_per_time = 0.0;

  void validate() const;
};

/// Cross-tenant retransmission token bucket on the virtual clock.
/// Thread-safe; deterministic given the sequence of advance/acquire
/// calls (and, for uniform token sizes, the total granted is
/// independent of acquire interleaving).
class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetOptions options = {});

  const RetryBudgetOptions& options() const { return options_; }

  /// Refills tokens for virtual time advanced since the last call.
  /// Non-monotonic `now` is clamped (time never refunds tokens).
  void advance(double now);

  /// Takes `tokens` parcels from the bucket; all-or-nothing. Unlimited
  /// buckets always grant.
  bool try_acquire(std::int64_t tokens);

  std::int64_t available() const;
  std::int64_t granted() const;   ///< total tokens granted
  std::int64_t denied() const;    ///< total tokens refused
  std::int64_t refilled() const;  ///< whole tokens replenished so far

 private:
  RetryBudgetOptions options_;
  mutable std::mutex mu_;
  std::int64_t tokens_ = 0;
  double fractional_ = 0.0;  // sub-token refill carry
  double last_now_ = 0.0;
  std::int64_t granted_ = 0;
  std::int64_t denied_ = 0;
  std::int64_t refilled_ = 0;
};

/// One resource's breaker, as observed at a snapshot tick.
struct ResourceHealth {
  FaultKind kind = FaultKind::kChannel;
  std::int64_t id = -1;  ///< ChannelId (kChannel) or Rank (kNode)
  BreakerState state = BreakerState::kClosed;
  bool permanent = false;
  int errors = 0;  ///< consecutive errors while closed
  int flaps = 0;
  int chain_walks = 0;  ///< degradation-chain walks charged to this resource
  std::int64_t opened_at = 0;
  std::string verdict;  ///< first discoverer's published diagnosis
  std::string describe(const Torus& torus) const;
};

/// Aggregate registry counters plus the per-resource detail, snapshot
/// under the registry lock. The retry_* fields are filled by
/// SessionManager::health_stats() from its RetryBudget.
struct HealthStats {
  std::int64_t errors = 0;             ///< error signals recorded
  std::int64_t opens = 0;              ///< closed -> open transitions
  std::int64_t closes = 0;             ///< half-open -> closed transitions
  std::int64_t flaps = 0;              ///< reopens after the first open
  std::int64_t probes = 0;             ///< half-open probes fired
  std::int64_t probe_failures = 0;     ///< probes that re-opened the breaker
  std::int64_t chain_walks = 0;        ///< full degradation-chain walks paid
  std::int64_t suspicions = 0;         ///< phi-accrual node suspicions absorbed
  std::int64_t integrity_reports = 0;  ///< IntegrityReports absorbed
  std::int64_t quarantine_hits = 0;    ///< messages that met an open breaker
  std::int64_t rerouted_messages = 0;  ///< messages sent around bad resources
  std::int64_t reroute_extra_hops = 0; ///< detour hops minus scheduled hops
  std::int64_t remap_hosted = 0;       ///< endpoint-dead messages hosted (§6 remap)
  std::int64_t resent_parcels = 0;     ///< parcels retransmitted during discovery
  std::int64_t deferrals = 0;          ///< phases re-queued by a denied budget
  std::int64_t planned_around = 0;     ///< sessions admitted with active quarantine
  std::int64_t permanent_quarantines = 0;
  std::int64_t open_breakers = 0;      ///< at the snapshot tick
  std::int64_t half_open_breakers = 0;
  std::vector<ResourceHealth> resources;

  /// True when every breaker has converged back to closed (the storm
  /// sweep's final invariant; permanent quarantines never converge).
  bool all_closed() const { return open_breakers == 0 && half_open_breakers == 0; }

  std::int64_t retry_granted = 0;
  std::int64_t retry_denied = 0;
  std::int64_t retry_refilled = 0;
  std::int64_t retry_capacity = 0;
};

/// The service-wide breaker table. See the file comment for semantics.
class HealthRegistry {
 public:
  HealthRegistry(TorusShape shape, BreakerOptions options, Recorder* obs = nullptr);

  const Torus& torus() const { return torus_; }
  const BreakerOptions& options() const { return options_; }

  /// Effective breaker state of a channel/node at `tick` (open breakers
  /// past their cool-off read as half-open). Unknown resources are
  /// closed.
  BreakerState channel_state(ChannelId id, std::int64_t tick) const;
  BreakerState node_state(Rank node, std::int64_t tick) const;

  /// True when the resource is quarantined for planning at `tick`
  /// (open or half-open: probes re-admit traffic, sessions do not).
  bool channel_quarantined(ChannelId id, std::int64_t tick) const;
  bool node_quarantined(Rank node, std::int64_t tick) const;
  /// Any resource quarantined at `tick`?
  bool any_quarantined(std::int64_t tick) const;

  /// Records one error signal against a channel/node. Returns true
  /// exactly when this signal tripped the breaker from closed to open —
  /// the caller is the first discoverer and owes the (single)
  /// degradation-chain walk. `why` becomes the published verdict.
  bool record_channel_error(ChannelId id, std::int64_t tick, const std::string& why);
  bool record_node_error(Rank node, std::int64_t tick, const std::string& why);

  /// Absorbs a phi-accrual suspicion: the node's breaker opens
  /// immediately (suspicion is already an integrated signal, not one
  /// raw error).
  void report_suspicion(Rank node, std::int64_t tick, double phi);

  /// Absorbs a per-session IntegrityReport: every recorded violation
  /// charges one error to each channel of its scheduled straight route.
  void observe_integrity(const IntegrityReport& report, std::int64_t tick);

  /// Fires probes for every half-open breaker against ground truth:
  /// a still-faulty resource re-opens (one flap), a healed one closes.
  /// Call once per fault tick; cheap when nothing is half-open.
  void run_probes(const FaultModel& ground_truth, std::int64_t tick);

  /// The quarantine as a FaultModel (permanent windows), merged into
  /// `out` — feed to route_around_faults so planning avoids quarantined
  /// resources exactly like faulted ones.
  void add_quarantine(FaultModel& out, std::int64_t tick) const;

  /// Published verdict of a resource's first discoverer ("" if none).
  std::string channel_verdict(ChannelId id) const;

  // Accounting hooks for the data path (all thread-safe).
  void note_chain_walk(ChannelId id);    ///< first discoverer walked the chain
  void note_quarantine_hit();            ///< a message met an open breaker
  void note_reroute(std::int64_t extra_hops);
  void note_remap_hosted();
  void note_resent(std::int64_t parcels);
  void note_deferral();
  void note_planned_around();

  /// Snapshot (aggregates + per-resource detail) at `tick`.
  HealthStats stats(std::int64_t tick) const;

  /// Total closed -> open transitions so far. Cheap (no resource walk):
  /// the manager polls it after every dispatch to edge-detect breaker
  /// trips for the flight recorder.
  std::int64_t opens() const;

  /// Human-readable breaker table for post-mortem artifacts.
  std::string dump(std::int64_t tick) const;

 private:
  struct Key {
    FaultKind kind;
    std::int64_t id;
    bool operator<(const Key& other) const {
      return kind != other.kind ? kind < other.kind : id < other.id;
    }
  };
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    bool permanent = false;
    int errors = 0;
    int flaps = 0;
    int chain_walks = 0;
    std::int64_t opened_at = 0;
    std::int64_t cool_off = 0;  // open_ticks + jitter for this open
    std::string verdict;
    bool ever_opened = false;
  };

  // All of the below require mu_ held.
  BreakerState effective_state(const Breaker& b, std::int64_t tick) const;
  bool record_error_locked(const Key& key, std::int64_t tick, const std::string& why);
  void open_locked(const Key& key, Breaker& b, std::int64_t tick, const std::string& why);
  std::int64_t cool_off_for(const Key& key, int flaps) const;
  std::string describe_key(const Key& key) const;

  Torus torus_;
  BreakerOptions options_;
  Recorder* obs_;

  mutable std::mutex mu_;
  std::map<Key, Breaker> breakers_;
  HealthStats totals_;  // aggregate counters only; resources built on demand
};

}  // namespace torex
