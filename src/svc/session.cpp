#include "svc/session.hpp"

#include "util/assert.hpp"

namespace torex {

std::string to_string(SessionState state) {
  switch (state) {
    case SessionState::kQueued: return "queued";
    case SessionState::kRunning: return "running";
    case SessionState::kCompleted: return "completed";
    case SessionState::kRejected: return "rejected";
    case SessionState::kDeadlineMissed: return "deadline_missed";
    case SessionState::kFailed: return "failed";
    case SessionState::kCancelled: return "cancelled";
  }
  TOREX_UNREACHABLE();
}

std::string to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kParcelBytesQuota: return "parcel_bytes_quota";
    case RejectReason::kMalformedRequest: return "malformed_request";
  }
  TOREX_UNREACHABLE();
}

}  // namespace torex
