#include "svc/session.hpp"

#include "util/assert.hpp"

namespace torex {

std::string to_string(SessionState state) {
  switch (state) {
    case SessionState::kQueued: return "queued";
    case SessionState::kRunning: return "running";
    case SessionState::kCompleted: return "completed";
    case SessionState::kRejected: return "rejected";
    case SessionState::kDeadlineMissed: return "deadline_missed";
    case SessionState::kFailed: return "failed";
    case SessionState::kCancelled: return "cancelled";
  }
  TOREX_UNREACHABLE();
}

void TenantQuota::validate(const std::string& tenant) const {
  if (max_parcel_bytes < 0) {
    throw TenantQuotaError(tenant, "max_parcel_bytes must be positive or kQuotaUnlimited (got " +
                                       std::to_string(max_parcel_bytes) + ")");
  }
  if (max_arena_frames < 0) {
    throw TenantQuotaError(tenant, "max_arena_frames must be positive or kQuotaUnlimited (got " +
                                       std::to_string(max_arena_frames) + ")");
  }
  if (max_sessions_in_flight < 0) {
    throw TenantQuotaError(tenant,
                           "max_sessions_in_flight must be positive or kQuotaUnlimited (got " +
                               std::to_string(max_sessions_in_flight) + ")");
  }
  if (max_parcel_bytes == kQuotaUnlimited && max_arena_frames == kQuotaUnlimited &&
      max_sessions_in_flight == kQuotaUnlimited) {
    throw TenantQuotaError(tenant,
                           "quota entry limits nothing; remove the entry or set a field");
  }
}

std::string to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kParcelBytesQuota: return "parcel_bytes_quota";
    case RejectReason::kMalformedRequest: return "malformed_request";
  }
  TOREX_UNREACHABLE();
}

}  // namespace torex
