// torexd session types: the vocabulary of the multi-session service.
//
// A Session is one tenant's all-to-all exchange riding a shared engine:
// it arrives (open-loop, with a modeled arrival time), waits in a
// bounded queue, is admitted or shed by the SessionManager's admission
// control, executes phase-by-phase under the weighted-fair scheduler,
// and retires with a terminal state the caller can always read back —
// completed, rejected-with-reason, deadline-missed, failed, or
// cancelled. Nothing is ever dropped silently: the manager's
// disposition buckets are mutually exclusive and sum to the offered
// load (admitted + rejected + deadline_missed == offered), which the
// loadgen and the chaos harness both assert.
//
// The service fixes the payload element to one machine word
// (std::int64_t). Sessions move N x N word matrices — enough to carry
// any application framing while keeping the service layer non-template
// compiled code.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace torex {

/// Dense per-manager session handle, assigned at submit() in arrival
/// order starting from 0.
using SessionId = std::int64_t;

/// Where a session is in its lifecycle. kQueued and kRunning are
/// transient; everything else is terminal.
enum class SessionState {
  kQueued,          ///< accepted into the waiting room, not yet admitted
  kRunning,         ///< admitted; phases execute under the fair scheduler
  kCompleted,       ///< all phases done, result available
  kRejected,        ///< shed by admission control (reject_reason says why)
  kDeadlineMissed,  ///< deadline expired (in queue or mid-run) before completion
  kFailed,          ///< isolated failure: crash, corruption, quota breach
  kCancelled,       ///< cooperative cancel honored at a step boundary
};

std::string to_string(SessionState state);

/// Why admission control refused a session. Every rejection carries a
/// reason — AdmissionRejected outcomes are reportable, never silent.
enum class RejectReason {
  kNone,
  kQueueFull,         ///< shed oldest-queued-first under queue overflow
  kParcelBytesQuota,  ///< send matrix exceeds the tenant's per-session byte quota
  kMalformedRequest,  ///< send matrix is not N x N
};

std::string to_string(RejectReason reason);

/// Unlimited marker for TenantQuota fields.
inline constexpr std::int64_t kQuotaUnlimited = 0;

/// Per-tenant resource limits, enforced at admission (bytes), at
/// promotion (sessions in flight), and during execution (arena frames).
/// kQuotaUnlimited (0) means that field is unenforced.
struct TenantQuota {
  /// Largest send matrix one session may carry, in payload bytes
  /// (N * N * sizeof(std::int64_t) for a full exchange). Checked at
  /// admission; breach rejects with kParcelBytesQuota.
  std::int64_t max_parcel_bytes = kQuotaUnlimited;
  /// WireArena frames one session may hold leased at once (its
  /// phases-in-flight bound: each in-flight step leases one frame per
  /// sending node). Breach mid-run fails the session, isolated.
  std::int64_t max_arena_frames = kQuotaUnlimited;
  /// Concurrently running sessions of this tenant; further queued
  /// sessions wait (they are not rejected) until a slot frees.
  int max_sessions_in_flight = kQuotaUnlimited;

  /// Admission-time validation: every field must be positive or
  /// kQuotaUnlimited, and at least one field must actually limit
  /// something (an all-unlimited entry is a configuration mistake, not
  /// a quota). Throws TenantQuotaError naming the tenant and field —
  /// a typed error instead of undefined scheduler behavior.
  void validate(const std::string& tenant) const;
};

/// Deterministic failure/chaos injection seams, per session. All
/// 1-based phase indices; 0 disables.
struct SessionInjection {
  /// Throw ExchangeCrashError after this phase's first step flushed its
  /// deliveries but before the commit marker — the worst-case crash
  /// window for the journal.
  int crash_phase = 0;
  /// Flip one byte of this phase's first encoded wire frame; the
  /// receiver's CRC verification refuses it loudly and the session
  /// fails, isolated.
  int corrupt_phase = 0;
  /// Set the session's cancel flag once this many of its phases have
  /// executed (a deterministic mid-run cooperative cancel). Negative
  /// disables; 0 cancels before the first phase.
  int cancel_after_phases = -1;
};

/// One tenant's exchange request.
struct SessionRequest {
  std::string tenant = "default";
  /// Weighted-fair share: a weight-3 session is charged a third of the
  /// virtual time per phase and so runs three phases for every one a
  /// weight-1 competitor runs.
  int weight = 1;
  /// Modeled (open-loop) arrival time, in cost-model time units.
  double arrival = 0.0;
  /// Completion budget from arrival, same units; 0 = none. A session
  /// still queued or running when arrival + deadline passes on the
  /// virtual clock is a deadline miss.
  double deadline = 0.0;
  /// send[p][q] is node p's word for node q; must be N x N.
  std::vector<std::vector<std::int64_t>> send;
  SessionInjection inject;
};

/// Everything observable about one session, copyable under the
/// manager's lock for callers.
struct SessionRecord {
  SessionId id = -1;
  std::string tenant;
  SessionState state = SessionState::kQueued;
  RejectReason reject_reason = RejectReason::kNone;
  int weight = 1;
  double arrival = 0.0;
  double deadline_at = 0.0;   ///< absolute virtual deadline; 0 = none
  double admitted_at = 0.0;   ///< virtual time execution began
  double finished_at = 0.0;   ///< virtual time of the terminal transition
  int phases_done = 0;
  std::int64_t sent_parcels = 0;  ///< parcels this session pushed onto the wire
  std::int64_t deferrals = 0;     ///< dispatches deferred by the retry budget, total
  std::int64_t retry_parcels = 0; ///< retry-budget tokens this session spent
  std::string error;          ///< terminal diagnostic for failed/missed/cancelled
  /// Flight-recorder black box, rendered at the terminal transition for
  /// failed and deadline-missed sessions (parseable: parse_flight_dump).
  std::string flight_dump;

  bool terminal() const {
    return state != SessionState::kQueued && state != SessionState::kRunning;
  }
  /// Queue + service latency in virtual time; meaningful when terminal.
  double latency() const { return finished_at - arrival; }
};

/// Manager-wide disposition accounting. The buckets are mutually
/// exclusive per session: admitted counts sessions that began
/// executing (whatever happened to them afterwards), rejected counts
/// sheds, deadline_missed_queued counts sessions that expired before
/// ever running. offered == admitted + rejected + deadline_missed_queued
/// + still pending, exactly.
struct SvcStats {
  std::int64_t offered = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t deadline_missed_queued = 0;   ///< expired while waiting
  std::int64_t deadline_missed_running = 0;  ///< admitted, expired mid-run
  std::int64_t cancelled_queued = 0;         ///< cancelled before ever running
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;                ///< admitted, cancelled mid-run
  std::int64_t phases_executed = 0;
  std::int64_t parcels_delivered = 0;

  /// Total deadline misses, queued + mid-run.
  std::int64_t deadline_missed() const {
    return deadline_missed_queued + deadline_missed_running;
  }
  /// Sessions with a decided admission outcome. Equals offered once
  /// the manager is idle (nothing pending, queued, or running).
  std::int64_t disposed() const {
    return admitted + rejected + deadline_missed_queued + cancelled_queued;
  }
};

/// A tenant's quota table entry is malformed (negative field, or an
/// entry that limits nothing). Raised by TenantQuota::validate at
/// manager construction — before any scheduler state depends on it.
/// Subclasses std::invalid_argument: quota shape is an argument
/// contract, like every other option validation.
class TenantQuotaError : public std::invalid_argument {
 public:
  TenantQuotaError(const std::string& tenant, const std::string& why)
      : std::invalid_argument("tenant \"" + tenant + "\" quota invalid: " + why),
        tenant_(tenant) {}
  const std::string& tenant() const { return tenant_; }

 private:
  std::string tenant_;
};

/// A session request carries a malformed scheduling parameter (weight
/// outside [1, kMaxSessionWeight], non-finite or negative arrival /
/// deadline). Raised by submit() before the request enters any queue.
class SessionConfigError : public std::invalid_argument {
 public:
  explicit SessionConfigError(const std::string& why)
      : std::invalid_argument("session request invalid: " + why) {}
};

/// Largest admissible WFQ weight; beyond this the virtual-time
/// arithmetic loses the resolution the tie-break relies on.
inline constexpr int kMaxSessionWeight = 1'000'000;

/// A session's scheduled route crossed a faulted or quarantined
/// resource and no detour exists (the surviving topology disconnects
/// the pair). The session fails, isolated, with the resource named.
class SessionFaultError : public std::runtime_error {
 public:
  SessionFaultError(SessionId id, int phase, int step, const std::string& why)
      : std::runtime_error("session " + std::to_string(id) + " unroutable at phase " +
                           std::to_string(phase) + " step " + std::to_string(step) + ": " + why),
        id_(id) {}
  SessionId id() const { return id_; }

 private:
  SessionId id_;
};

/// A session exceeded its tenant's arena-frame quota mid-step. The
/// session fails, isolated; the frames it held are released by RAII.
class SessionQuotaError : public std::runtime_error {
 public:
  SessionQuotaError(SessionId id, std::int64_t held, std::int64_t quota)
      : std::runtime_error("session " + std::to_string(id) + " exceeded its arena frame quota (" +
                           std::to_string(held + 1) + " leases, quota " + std::to_string(quota) +
                           ")"),
        id_(id) {}
  SessionId id() const { return id_; }

 private:
  SessionId id_;
};

/// A session's wire frame failed CRC verification (corruption storm).
/// The internal wire is only ever damaged by injection, so this is
/// always attributable to the injecting tenant — and stays inside it.
class SessionIntegrityError : public std::runtime_error {
 public:
  SessionIntegrityError(SessionId id, int phase, int step, const std::string& why)
      : std::runtime_error("session " + std::to_string(id) + " wire frame refused at phase " +
                           std::to_string(phase) + " step " + std::to_string(step) + ": " + why),
        id_(id) {}
  SessionId id() const { return id_; }

 private:
  SessionId id_;
};

}  // namespace torex
