#include "svc/session_exchange.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "util/assert.hpp"

namespace torex {

namespace {

using Word = std::int64_t;

/// A step's in-flight message: the sealed frame stays leased (RAII)
/// until the integrate half has verified and spliced it.
struct PendingFrame {
  PooledFrame frame;
  Rank src = -1;
  Rank dst = -1;
  std::int64_t count = 0;
};

}  // namespace

SessionExchange::SessionExchange(SessionId id, const SuhShinAape& algo,
                                 const std::vector<std::vector<Word>>& send, WireArena& arena,
                                 std::int64_t max_leased_frames, FlightRecorder* flight)
    : id_(id), algo_(&algo), arena_(&arena), flight_(flight),
      frame_quota_(max_leased_frames) {
  const Rank N = algo.shape().num_nodes();
  TOREX_REQUIRE(static_cast<Rank>(send.size()) == N, "session send buffer must have N rows");
  buffers_.resize(static_cast<std::size_t>(N));
  inbox_.resize(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    const auto& row = send[static_cast<std::size_t>(p)];
    TOREX_REQUIRE(static_cast<Rank>(row.size()) == N, "session send rows must have N entries");
    auto& buf = buffers_[static_cast<std::size_t>(p)];
    buf.reserve(static_cast<std::size_t>(N));
    for (Rank q = 0; q < N; ++q) {
      buf.push_back({Block{p, q}, row[static_cast<std::size_t>(q)]});
    }
  }
  journal_ = ExchangeJournal(algo.shape(), algo.num_phases(), algo.total_steps());
}

void SessionExchange::flight_note(const char* name, const HealthContext& health, int phase,
                                  int step, std::int64_t value) {
  if (flight_ != nullptr) flight_->note(id_, name, health.tick, phase, step, value);
}

bool SessionExchange::health_gate(int phase, int step, const HealthContext& health) {
  const Rank N = algo_->shape().num_nodes();
  const Torus& torus = algo_->torus();
  HealthRegistry& registry = *health.registry;
  const std::int64_t tick = health.tick;

  // Planning view: ground-truth service faults plus everything the
  // registry has quarantined. Detours route against this model, so a
  // reroute never lands on another known-bad resource.
  FaultModel avoid = health.faults != nullptr ? *health.faults : FaultModel{};
  registry.add_quarantine(avoid, tick);

  const int hops = algo_->hops_per_step(phase);
  std::vector<ChannelId> route;
  for (Rank p = 0; p < N; ++p) {
    const auto& buf = buffers_[static_cast<std::size_t>(p)];
    std::int64_t parcels = 0;
    for (const Parcel<Word>& x : buf) {
      if (algo_->should_send(p, phase, step, x.block)) ++parcels;
    }
    if (parcels == 0) continue;
    const Rank q = algo_->partner(p, phase, step);

    // §6 remap hosting: a message whose endpoint is dead or
    // quarantined is hosted by the surviving neighbor the remap
    // assigns — the exchange proceeds, the registry accounts it.
    if (avoid.node_relevant_failed(p, tick) || avoid.node_relevant_failed(q, tick)) {
      registry.note_remap_hosted();
      flight_note("health.remap_hosted", health, phase, step, q);
      continue;
    }

    route.clear();
    torus.straight_path(p, algo_->direction(p, phase, step), hops, route);
    bool needs_detour = false;
    for (const ChannelId id : route) {
      if (registry.channel_quarantined(id, tick)) {
        // Someone already paid the discovery: reroute immediately, no
        // retries, no chain walk — first-discoverer-heals-all.
        registry.note_quarantine_hit();
        flight_note("health.quarantine_hit", health, phase, step, id);
        needs_detour = true;
        continue;
      }
      if (health.faults == nullptr || !health.faults->channel_failed(torus, id, tick)) {
        continue;
      }
      // A live, undiscovered fault: this session is the discoverer.
      // Each retransmission attempt draws the message's parcel count
      // from the global budget; denial defers the whole step (nothing
      // mutated yet) so the retries queue instead of firing.
      while (!registry.channel_quarantined(id, tick)) {
        if (health.budget != nullptr && !health.budget->try_acquire(parcels)) {
          registry.note_deferral();
          flight_note("health.deferred", health, phase, step, parcels);
          return false;
        }
        registry.note_resent(parcels);
        resent_parcels_ += parcels;
        flight_note("health.resent", health, phase, step, parcels);
        const auto fault = health.faults->find_channel_fault(torus, id, tick);
        const std::string why =
            fault.has_value() ? fault->describe(torus) : "unattributed send failure";
        if (registry.record_channel_error(id, tick, why)) {
          // The breaker tripped on our error: we are the first
          // discoverer and walk the degradation chain (retry ->
          // reroute/remap) exactly once, publishing the verdict.
          registry.note_chain_walk(id);
          flight_note("health.breaker_trip", health, phase, step, id);
        }
      }
      needs_detour = true;
    }
    if (!needs_detour) continue;

    // The quarantined channels are already failed in `avoid` (either a
    // service fault or add_quarantine above), so BFS plans past them.
    auto path = route_around_faults(torus, avoid, p, q, tick);
    if (!path.has_value()) {
      flight_note("health.unroutable", health, phase, step, q);
      throw SessionFaultError(id_, phase, step,
                              "no detour from node " + std::to_string(p) + " to node " +
                                  std::to_string(q) + " around quarantined resources");
    }
    registry.note_reroute(static_cast<std::int64_t>(path->size()) - hops);
    flight_note("health.reroute", health, phase, step,
                static_cast<std::int64_t>(path->size()) - hops);
  }
  return true;
}

PhaseOutcome SessionExchange::run_phase(const std::atomic<bool>* cancel,
                                        const SessionInjection& inject,
                                        const HealthContext& health) {
  TOREX_REQUIRE(!complete(), "session exchange already complete");
  const Rank N = algo_->shape().num_nodes();
  const int phase = phases_done_ + 1;
  bool corrupted_this_phase = false;

  std::vector<PendingFrame> pending;
  std::vector<std::pair<Rank, Rank>> arrivals;
  for (int step = next_step_; step <= algo_->steps_in_phase(phase); ++step) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      flight_note("svc.cancelled", health, phase, step);
      detail::throw_journal_cancelled(phase, step);
    }
    if (health.active() && !health_gate(phase, step, health)) {
      next_step_ = step;  // resume exactly here; nothing was mutated
      return PhaseOutcome::kDeferred;
    }

    // Send half: partition each node's buffer, seal the contiguous
    // tail into a leased frame, and count the lease against the
    // tenant's quota before the arena is touched.
    const std::int64_t sent_before = sent_parcels_;
    pending.clear();
    arrivals.clear();
    for (Rank p = 0; p < N; ++p) {
      auto& buf = buffers_[static_cast<std::size_t>(p)];
      auto split = std::stable_partition(buf.begin(), buf.end(), [&](const Parcel<Word>& x) {
        return !algo_->should_send(p, phase, step, x.block);
      });
      if (split == buf.end()) continue;
      const auto moved = static_cast<std::int64_t>(std::distance(split, buf.end()));
      if (frame_quota_ > 0 && static_cast<std::int64_t>(pending.size()) >= frame_quota_) {
        flight_note("svc.quota_breach", health, phase, step,
                    static_cast<std::int64_t>(pending.size()) + 1);
        throw SessionQuotaError(id_, static_cast<std::int64_t>(pending.size()), frame_quota_);
      }
      const Rank q = algo_->partner(p, phase, step);
      const std::size_t send_count = static_cast<std::size_t>(moved);
      const std::size_t run_bytes = send_count * sizeof(Parcel<Word>);
      PendingFrame out;
      out.frame.bind(*arena_,
                     detail::kFrameHeaderBytes + run_bytes + detail::kFrameTrailerBytes);
      encode_sealed_frame(&*split, send_count, phase, step, p, q, out.frame.bytes());
      arena_->stats().note_message(moved, 1);
      arena_->stats().bytes_encoded += static_cast<std::int64_t>(out.frame.bytes().size());
      arena_->stats().bytes_copied += static_cast<std::int64_t>(run_bytes);
      if (inject.corrupt_phase == phase && !corrupted_this_phase) {
        // One flipped payload bit: the frame CRC refuses it below.
        out.frame.bytes()[detail::kFrameHeaderBytes] ^= std::byte{0x01};
        corrupted_this_phase = true;
      }
      out.src = p;
      out.dst = q;
      out.count = moved;
      pending.push_back(std::move(out));
      sent_parcels_ += moved;
      buf.erase(split, buf.end());
    }
    peak_leased_ = std::max(peak_leased_, static_cast<std::int64_t>(pending.size()));

    // Integrate half: verify each frame in place and append its run to
    // the receiver's inbox. A refused frame kills this session only —
    // the pending frames release via RAII on the throw.
    for (const PendingFrame& in : pending) {
      SealedFrameView<Word> view;
      std::string why;
      if (!decode_sealed_frame<Word>(in.frame.view(), phase, step, in.src, in.dst, N, view,
                                     &why)) {
        flight_note("svc.integrity_refused", health, phase, step, in.src);
        throw SessionIntegrityError(id_, phase, step, why);
      }
      view.append_to(inbox_[static_cast<std::size_t>(in.dst)]);
      arena_->stats().bytes_copied += static_cast<std::int64_t>(view.run_size());
    }
    pending.clear();  // return the step's frames to the arena
    for (Rank p = 0; p < N; ++p) {
      auto& in = inbox_[static_cast<std::size_t>(p)];
      if (in.empty()) continue;
      auto& buf = buffers_[static_cast<std::size_t>(p)];
      for (auto& parcel : in) {
        if (parcel.block.dest == p && parcel.block.origin != p) {
          arrivals.emplace_back(p, parcel.block.origin);
        }
        buf.push_back(std::move(parcel));
      }
      in.clear();
    }

    // Write-ahead order, exactly as the journaled executor: deliveries
    // flush before the commit marker; the crash injection and the
    // cancel window both sit between them.
    if (!arrivals.empty()) journal_.record_deliveries(flat_step_, arrivals);
    if (inject.crash_phase == phase && step == 1) {
      flight_note("svc.crash", health, phase, step);
      throw ExchangeCrashError(phase, step,
                               "injected session crash after journal flush (phase " +
                                   std::to_string(phase) + ", step " + std::to_string(step) +
                                   ")");
    }
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      flight_note("svc.cancelled", health, phase, step);
      detail::throw_journal_cancelled(phase, step);
    }
    journal_.commit_step(flat_step_);
    flight_note("wire.step", health, phase, step, sent_parcels_ - sent_before);
    ++flat_step_;
  }
  next_step_ = 1;
  journal_.commit_phase(phase);
  ++phases_done_;
  return PhaseOutcome::kComplete;
}

std::vector<std::vector<Word>> SessionExchange::take_result() {
  TOREX_REQUIRE(complete(), "session result requested before the exchange finished");
  const Rank N = algo_->shape().num_nodes();
  detail::check_parcel_postcondition(N, buffers_);
  TOREX_CHECK(journal_.exchange_complete(), "session journal incomplete after a finished exchange");
  std::vector<std::vector<Word>> recv(static_cast<std::size_t>(N));
  for (Rank q = 0; q < N; ++q) {
    auto& row = recv[static_cast<std::size_t>(q)];
    row.resize(static_cast<std::size_t>(N));
    for (const auto& parcel : buffers_[static_cast<std::size_t>(q)]) {
      row[static_cast<std::size_t>(parcel.block.origin)] = parcel.payload;
    }
    buffers_[static_cast<std::size_t>(q)].clear();
  }
  return recv;
}

}  // namespace torex
