// Incremental per-phase execution of one session's exchange.
//
// The journaled executor (runtime/journal.hpp) runs a whole exchange in
// one call; the weighted-fair scheduler needs to interleave *phases*
// from different sessions. SessionExchange is the journaled data path
// re-cut at phase granularity: each run_phase() call executes exactly
// one Suh-Shin phase's steps over the session's parcels — pooled sealed
// frames on the wire, write-ahead journal flush before every step
// commit, cooperative cancel polled at the step boundary and inside the
// flush/commit window — then returns control to the scheduler. State
// between calls lives in the object, so a session can sit unscheduled
// for arbitrarily long between phases while other tenants use the
// engine.
//
// Isolation properties the manager relies on:
//  * every frame leased from the shared arena during a step is held by
//    an RAII PooledFrame inside run_phase's scope — any throw (crash,
//    corruption, quota, cancel) releases them all before unwinding, so
//    a failing session cannot leak frames into other tenants' budget
//    (WirePoolStats::outstanding_frames() stays balanced);
//  * the journal is per-session: a victim's partial journal decodes and
//    resumes independently of every other session's;
//  * tenant frame quotas are enforced at lease time, before the arena
//    is touched, so a quota breach costs the breaching session only.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/aape.hpp"
#include "core/payload_exchange.hpp"
#include "core/wire_buffer.hpp"
#include "obs/flight_recorder.hpp"
#include "runtime/journal.hpp"
#include "sim/fault_model.hpp"
#include "svc/health_registry.hpp"
#include "svc/session.hpp"

namespace torex {

/// The service-level health view one phase executes under: ground-truth
/// service faults on the manager's fault tick axis, the shared breaker
/// registry, and the global retry token bucket. Default-constructed
/// (inactive) when the manager runs without a health layer — the data
/// path is then byte-for-byte the PR 6 behavior.
struct HealthContext {
  const FaultModel* faults = nullptr;  ///< service ground truth (may be empty)
  HealthRegistry* registry = nullptr;
  RetryBudget* budget = nullptr;
  std::int64_t tick = 0;  ///< the manager's fault tick for this dispatch

  bool active() const { return registry != nullptr; }
};

/// What a run_phase dispatch did. kDeferred means the retry budget
/// refused the retransmissions a faulted step needs: nothing was
/// mutated for that step, and the next dispatch resumes exactly there
/// (retries queue rather than fire).
enum class PhaseOutcome {
  kComplete,  ///< the phase ran to its commit marker
  kDeferred,  ///< re-queue: budget denied, state untouched at the step
};

/// One session's exchange, executable one phase at a time. The service
/// payload is fixed to one machine word.
class SessionExchange {
 public:
  /// Seeds the canonical parcel buffers from `send` (must be N x N for
  /// the schedule's node count) and binds a fresh per-session journal.
  /// `algo` and `arena` must outlive the exchange; `max_leased_frames`
  /// is the tenant's arena-frame quota (0 = unlimited). `flight`, when
  /// non-null, receives per-step black-box notes (including one at the
  /// exact phase/step of any throw) under this session's id.
  SessionExchange(SessionId id, const SuhShinAape& algo,
                  const std::vector<std::vector<std::int64_t>>& send, WireArena& arena,
                  std::int64_t max_leased_frames, FlightRecorder* flight = nullptr);

  int num_phases() const { return algo_->num_phases(); }
  int phases_done() const { return phases_done_; }
  bool complete() const { return phases_done_ == num_phases(); }
  std::int64_t sent_parcels() const { return sent_parcels_; }
  /// Retry-budget tokens this session's discoveries drew (per-tenant
  /// spend attribution for the SLO ledger).
  std::int64_t resent_parcels() const { return resent_parcels_; }
  /// Most arena frames this session held leased at once.
  std::int64_t peak_leased_frames() const { return peak_leased_; }
  const ExchangeJournal& journal() const { return journal_; }

  /// Executes the next phase's steps. Throws ExchangeCancelledError
  /// when `cancel` is observed at a step boundary or in the
  /// flush/commit window, ExchangeCrashError / SessionIntegrityError /
  /// SessionQuotaError per `inject` and the frame quota, and
  /// SessionFaultError when a faulted/quarantined route has no detour.
  /// After a throw the exchange is dead (the journal keeps everything
  /// flushed so far); the manager retires the session.
  ///
  /// With an active `health` context every step runs a pre-flight gate
  /// before any buffer is touched: scheduled routes are checked against
  /// the breaker registry and the service fault model; discovery
  /// retries draw from the global budget (denial returns kDeferred —
  /// the step is untouched and a later dispatch resumes it); messages
  /// over bad resources are rerouted (or remap-hosted when an endpoint
  /// is quarantined), with the detours accounted in the registry.
  PhaseOutcome run_phase(const std::atomic<bool>* cancel, const SessionInjection& inject,
                         const HealthContext& health = {});

  /// recv[q][p] = send[p][q]; requires complete(). Consumes the
  /// buffers.
  std::vector<std::vector<std::int64_t>> take_result();

 private:
  /// Pre-mutation health check for one step. Returns false to defer
  /// (budget denied); throws SessionFaultError when no detour exists.
  bool health_gate(int phase, int step, const HealthContext& health);

  /// Black-box note at (phase, step); no-op without a recorder.
  void flight_note(const char* name, const HealthContext& health, int phase, int step,
                   std::int64_t value = 0);

  SessionId id_;
  const SuhShinAape* algo_;
  WireArena* arena_;
  FlightRecorder* flight_ = nullptr;
  std::int64_t frame_quota_;
  ParcelBuffers<std::int64_t> buffers_;
  ParcelBuffers<std::int64_t> inbox_;
  ExchangeJournal journal_;
  std::int64_t flat_step_ = 0;  // 0-based global step index
  int phases_done_ = 0;
  int next_step_ = 1;  ///< deferred-phase resume point (1-based in-phase)
  std::int64_t sent_parcels_ = 0;
  std::int64_t resent_parcels_ = 0;
  std::int64_t peak_leased_ = 0;
};

}  // namespace torex
