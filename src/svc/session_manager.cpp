#include "svc/session_manager.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "runtime/watchdog.hpp"
#include "util/assert.hpp"

namespace torex {

namespace {

/// Consecutive budget deferrals after which a session fails instead of
/// spinning: with a refilling bucket a phase always un-defers long
/// before this, so hitting the cap means the budget is misconfigured
/// relative to the fault load (a starvation diagnosis, not a hang).
constexpr int kMaxDeferralsPerSession = 256;

/// SLO histogram bucket edges, in milli-phase-cost units (1000 = one
/// phase cost of virtual time). Octaves from a quarter phase to ~512
/// phases cover queue waits and end-to-end latencies of any plausible
/// schedule depth; beyond that the overflow bucket plus min/max carry
/// the tail.
std::vector<std::int64_t> slo_bounds_milliphase() {
  std::vector<std::int64_t> bounds;
  for (std::int64_t b = 250; b <= 512'000; b *= 2) bounds.push_back(b);
  return bounds;
}

/// Short resource label for breaker gauges: "channel:12" / "node:3".
std::string resource_label(const ResourceHealth& r) {
  return (r.kind == FaultKind::kChannel ? "channel:" : "node:") + std::to_string(r.id);
}

}  // namespace

void HealthOptions::validate() const {
  breaker.validate();
  retries.validate();
  detector.validate();
}

void SessionManagerOptions::validate() const {
  TOREX_REQUIRE(max_active >= 1, "session manager needs at least one active slot");
  TOREX_REQUIRE(max_queued >= 1, "session manager needs at least one queue slot");
  TOREX_REQUIRE(block_bytes >= 1, "block size must be positive");
  for (const auto& [tenant, quota] : quotas) {
    quota.validate(tenant);  // typed TenantQuotaError on malformed entries
  }
  health.validate();
  flight.validate();
}

SessionManager::SessionManager(TorusShape shape, CostParams params, SessionManagerOptions options)
    : shape_(shape),
      schedule_(shape),
      comm_(shape, params),
      options_(std::move(options)),
      flight_(options_.flight) {
  options_.validate();
  obs_ = options_.obs != nullptr && options_.obs->enabled() ? options_.obs : nullptr;
  phase_cost_ = comm_.phase_cost(options_.block_bytes);
  if (options_.health.enabled || !options_.service_faults.empty()) {
    health_ = std::make_unique<HealthRegistry>(shape_, options_.health.breaker, obs_);
    retry_budget_ = std::make_unique<RetryBudget>(options_.health.retries);
    if (!options_.service_faults.crashes().empty()) {
      detector_ = std::make_unique<HeartbeatFailureDetector>(schedule_.shape().num_nodes(),
                                                             options_.health.detector, obs_);
    }
  }
}

double SessionManager::now() const {
  std::lock_guard<std::mutex> lk(mu_);
  return vclock_;
}

std::int64_t SessionManager::sessions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<std::int64_t>(slots_.size());
}

SessionId SessionManager::submit(SessionRequest request) {
  // Typed rejection of malformed scheduling parameters before the
  // request touches any queue: a non-finite arrival would wedge the
  // virtual clock, an absurd weight would defeat the WFQ tie-break.
  if (request.weight < 1 || request.weight > kMaxSessionWeight) {
    throw SessionConfigError("weight must be in [1, " + std::to_string(kMaxSessionWeight) +
                             "] (got " + std::to_string(request.weight) + ")");
  }
  if (!std::isfinite(request.arrival) || request.arrival < 0.0) {
    throw SessionConfigError("arrival must be finite and non-negative");
  }
  if (!std::isfinite(request.deadline) || request.deadline < 0.0) {
    throw SessionConfigError("deadline must be finite and non-negative");
  }
  std::lock_guard<std::mutex> lk(mu_);
  const SessionId id = static_cast<SessionId>(slots_.size());
  auto s = std::make_unique<Slot>();
  s->record.id = id;
  s->record.tenant = request.tenant;
  s->record.weight = request.weight;
  s->record.arrival = request.arrival;
  s->record.deadline_at = request.deadline > 0.0 ? request.arrival + request.deadline : 0.0;
  s->record.state = SessionState::kQueued;
  s->cancel_flag = std::make_shared<std::atomic<bool>>(false);
  s->request = std::move(request);
  slots_.push_back(std::move(s));
  pending_arrivals_.push_back(id);
  ++stats_.offered;
  const Slot& added = *slots_.back();
  slo_counter("svc.slo.offered", added.record.tenant).add();
  flight_.note(id, "svc.submit", fault_tick_, 0, 0, added.record.weight);
  if (obs_ != nullptr) {
    obs_->metrics().counter("svc.offered").add();
    obs_tenant_counter("svc.offered", added.record.tenant);
  }
  return id;
}

Counter& SessionManager::slo_counter(const char* name, const std::string& tenant) {
  return slo_.counter(name, {{"tenant", tenant}});
}

std::int64_t SessionManager::to_milliphase(double vt) const {
  return std::llround(1000.0 * vt / phase_cost_);
}

void SessionManager::obs_tenant_counter(const char* name, const std::string& tenant) {
  if (obs_ == nullptr) return;
  obs_->metrics().counter(name, {{"tenant", tenant}}).add();
}

void SessionManager::emit_flight_dump(Slot& s, const char* trigger, const std::string& reason,
                                      bool terminal) {
  if (!flight_.enabled()) return;
  const std::string health_table = health_ != nullptr ? health_->dump(fault_tick_) : "";
  std::string text = flight_.dump(s.record.id, reason, health_table, options_.repro_hint);
  if (terminal) {
    s.record.flight_dump = text;
    flight_.forget(s.record.id);
  }
  flight_dumps_.push_back({s.record.id, trigger, std::move(text)});
}

void SessionManager::maybe_breaker_trip_dump(Slot& s, int phase) {
  if (health_ == nullptr) return;
  const std::int64_t opens = health_->opens();
  if (opens <= last_opens_) return;
  // This dispatch tripped one or more breakers: snapshot the session
  // that discovered them while its ring still holds the discovery.
  emit_flight_dump(s, "breaker_trip",
                   "breaker trip during phase " + std::to_string(phase) + " (opens " +
                       std::to_string(last_opens_) + " -> " + std::to_string(opens) + ")",
                   /*terminal=*/false);
  last_opens_ = opens;
}

SessionManager::Slot& SessionManager::slot(SessionId id) {
  TOREX_REQUIRE(id >= 0 && id < static_cast<SessionId>(slots_.size()), "unknown session id");
  return *slots_[static_cast<std::size_t>(id)];
}

const SessionManager::Slot& SessionManager::slot(SessionId id) const {
  TOREX_REQUIRE(id >= 0 && id < static_cast<SessionId>(slots_.size()), "unknown session id");
  return *slots_[static_cast<std::size_t>(id)];
}

std::shared_ptr<std::atomic<bool>> SessionManager::cancel_handle(SessionId id) {
  std::lock_guard<std::mutex> lk(mu_);
  return slot(id).cancel_flag;
}

void SessionManager::cancel(SessionId id) {
  cancel_handle(id)->store(true, std::memory_order_relaxed);
}

void SessionManager::set_queue_gauges() {
  if (obs_ == nullptr) return;
  MetricsRegistry& m = obs_->metrics();
  m.gauge("svc.active_sessions").set(static_cast<std::int64_t>(running_.size()));
  m.gauge("svc.queued_sessions").set(static_cast<std::int64_t>(queue_.size()));
  for (const auto& [tenant, depth] : tenant_queued_) {
    m.gauge("svc.queue_depth", {{"tenant", tenant}}).set(depth);
  }
}

void SessionManager::retire_queued(Slot& s, SessionState state, RejectReason reason,
                                   const std::string& error) {
  s.record.state = state;
  s.record.reject_reason = reason;
  s.record.finished_at = vclock_;
  s.record.error = error;
  s.request.send.clear();
  s.request.send.shrink_to_fit();
  const std::string& tenant = s.record.tenant;
  switch (state) {
    case SessionState::kRejected:
      ++stats_.rejected;
      slo_counter("svc.slo.rejected", tenant).add();
      flight_.note(s.record.id, "svc.reject", fault_tick_);
      flight_.forget(s.record.id);
      if (obs_ != nullptr) {
        obs_->instant("svc.reject", static_cast<std::int32_t>(s.record.id));
        obs_->metrics().counter("svc.rejected").add();
        obs_tenant_counter("svc.rejected", tenant);
      }
      break;
    case SessionState::kDeadlineMissed:
      ++stats_.deadline_missed_queued;
      // A shed miss: the session expired before ever running.
      slo_.counter("svc.slo.deadline_missed", {{"tenant", tenant}, {"cause", "shed"}}).add();
      flight_.note(s.record.id, "svc.deadline_miss", fault_tick_);
      emit_flight_dump(s, "deadline_miss", error, /*terminal=*/true);
      if (obs_ != nullptr) {
        obs_->instant("svc.deadline_miss", static_cast<std::int32_t>(s.record.id));
        obs_->metrics().counter("svc.deadline_missed").add();
        obs_tenant_counter("svc.deadline_missed", tenant);
      }
      break;
    case SessionState::kCancelled:
      ++stats_.cancelled_queued;
      slo_counter("svc.slo.cancelled", tenant).add();
      flight_.forget(s.record.id);
      if (obs_ != nullptr) {
        obs_->metrics().counter("svc.cancelled").add();
        obs_tenant_counter("svc.cancelled", tenant);
      }
      break;
    default:
      TOREX_UNREACHABLE();
  }
}

void SessionManager::retire_running(Slot& s, SessionState state, const std::string& error) {
  const auto it = std::find(running_.begin(), running_.end(), s.record.id);
  TOREX_CHECK(it != running_.end(), "retiring a session that is not running");
  running_.erase(it);
  --tenant_running_[s.record.tenant];
  s.record.state = state;
  s.record.finished_at = vclock_;
  s.record.error = error;
  const std::string& tenant = s.record.tenant;
  if (s.exchange) {
    const std::int64_t sent_now = s.exchange->sent_parcels();
    if (sent_now > s.record.sent_parcels) {
      slo_counter("svc.slo.parcels", tenant).add(sent_now - s.record.sent_parcels);
    }
    s.record.sent_parcels = sent_now;
  }
  // SLO decomposition: every admitted session settles its service-time
  // observation at retirement (queue wait was observed at promotion);
  // only completions count toward the end-to-end latency objective.
  slo_.histogram("svc.slo.service_time", slo_bounds_milliphase(), {{"tenant", tenant}})
      .observe(to_milliphase(s.record.finished_at - s.record.admitted_at));
  switch (state) {
    case SessionState::kCompleted: {
      s.result = s.exchange->take_result();
      s.has_result = true;
      ++stats_.completed;
      const auto n = static_cast<std::int64_t>(size());
      stats_.parcels_delivered += n * n;
      slo_counter("svc.slo.completed", tenant).add();
      slo_.histogram("svc.slo.latency", slo_bounds_milliphase(), {{"tenant", tenant}})
          .observe(to_milliphase(s.record.finished_at - s.record.arrival));
      flight_.forget(s.record.id);
      if (obs_ != nullptr) {
        obs_->metrics().counter("svc.completed").add();
        obs_tenant_counter("svc.completed", tenant);
      }
      break;
    }
    case SessionState::kDeadlineMissed: {
      ++stats_.deadline_missed_running;
      // Mid-run miss attribution: a session the retry budget stalled
      // missed because it deferred; one that paid discovery retries
      // missed because of faults; anything else is plain overload.
      const char* cause = s.record.deferrals > 0      ? "deferred"
                          : s.record.retry_parcels > 0 ? "faulted"
                                                       : "overload";
      slo_.counter("svc.slo.deadline_missed", {{"tenant", tenant}, {"cause", cause}}).add();
      flight_.note(s.record.id, "svc.deadline_miss", fault_tick_,
                   s.exchange != nullptr ? s.exchange->phases_done() + 1 : 0);
      emit_flight_dump(s, "deadline_miss", error, /*terminal=*/true);
      if (obs_ != nullptr) {
        obs_->instant("svc.deadline_miss", static_cast<std::int32_t>(s.record.id));
        obs_->metrics().counter("svc.deadline_missed").add();
        obs_tenant_counter("svc.deadline_missed", tenant);
      }
      break;
    }
    case SessionState::kFailed:
      ++stats_.failed;
      slo_counter("svc.slo.failed", tenant).add();
      emit_flight_dump(s, "session_failed", error, /*terminal=*/true);
      if (obs_ != nullptr) {
        obs_->instant("svc.session_failed", static_cast<std::int32_t>(s.record.id));
        obs_->metrics().counter("svc.failed").add();
        obs_tenant_counter("svc.failed", tenant);
      }
      break;
    case SessionState::kCancelled:
      ++stats_.cancelled;
      slo_counter("svc.slo.cancelled", tenant).add();
      flight_.forget(s.record.id);
      if (obs_ != nullptr) {
        obs_->metrics().counter("svc.cancelled").add();
        obs_tenant_counter("svc.cancelled", tenant);
      }
      break;
    default:
      TOREX_UNREACHABLE();
  }
  set_queue_gauges();
}

void SessionManager::process_arrivals() {
  while (!pending_arrivals_.empty()) {
    const SessionId id = pending_arrivals_.front();
    Slot& s = slot(id);
    if (s.record.arrival > vclock_) break;
    pending_arrivals_.pop_front();

    const Rank N = size();
    bool well_formed = static_cast<Rank>(s.request.send.size()) == N;
    for (const auto& row : s.request.send) {
      well_formed = well_formed && static_cast<Rank>(row.size()) == N;
    }
    if (!well_formed) {
      retire_queued(s, SessionState::kRejected, RejectReason::kMalformedRequest,
                    "send matrix is not N x N");
      continue;
    }
    const auto quota_it = options_.quotas.find(s.record.tenant);
    if (quota_it != options_.quotas.end() && quota_it->second.max_parcel_bytes > 0) {
      const std::int64_t bytes = static_cast<std::int64_t>(N) * N *
                                 static_cast<std::int64_t>(sizeof(std::int64_t));
      if (bytes > quota_it->second.max_parcel_bytes) {
        retire_queued(s, SessionState::kRejected, RejectReason::kParcelBytesQuota,
                      "session payload of " + std::to_string(bytes) +
                          " bytes exceeds the tenant quota of " +
                          std::to_string(quota_it->second.max_parcel_bytes));
        continue;
      }
    }
    if (static_cast<int>(queue_.size()) >= options_.max_queued) {
      // Overload: shed the oldest queued session, loudly, and keep the
      // newcomer — deterministic oldest-queued-first degradation.
      Slot& oldest = slot(queue_.front());
      queue_.pop_front();
      --tenant_queued_[oldest.record.tenant];
      retire_queued(oldest, SessionState::kRejected, RejectReason::kQueueFull,
                    "shed oldest-queued under overload");
      if (obs_ != nullptr) obs_->instant("svc.shed", static_cast<std::int32_t>(oldest.record.id));
    }
    queue_.push_back(id);
    ++tenant_queued_[s.record.tenant];
  }
  set_queue_gauges();
}

void SessionManager::promote() {
  while (static_cast<int>(running_.size()) < options_.max_active && !queue_.empty()) {
    // First queued session whose tenant is under its in-flight cap;
    // expired or cancelled ones retire on the way.
    bool promoted = false;
    for (auto it = queue_.begin(); it != queue_.end();) {
      Slot& s = slot(*it);
      if (s.cancel_flag->load(std::memory_order_relaxed)) {
        --tenant_queued_[s.record.tenant];
        it = queue_.erase(it);
        retire_queued(s, SessionState::kCancelled, RejectReason::kNone,
                      "cancelled while queued");
        continue;
      }
      if (s.record.deadline_at > 0.0 && s.record.deadline_at <= vclock_) {
        --tenant_queued_[s.record.tenant];
        it = queue_.erase(it);
        retire_queued(s, SessionState::kDeadlineMissed, RejectReason::kNone,
                      "deadline expired in queue at t=" + std::to_string(vclock_));
        continue;
      }
      const auto quota_it = options_.quotas.find(s.record.tenant);
      const int cap =
          quota_it != options_.quotas.end() ? quota_it->second.max_sessions_in_flight : 0;
      if (cap > 0 && tenant_running_[s.record.tenant] >= cap) {
        ++it;  // this tenant waits; later tenants may still promote
        continue;
      }
      const std::int64_t frame_quota =
          quota_it != options_.quotas.end() ? quota_it->second.max_arena_frames : 0;
      s.exchange = std::make_unique<SessionExchange>(s.record.id, schedule_, s.request.send,
                                                     arena_, frame_quota,
                                                     flight_.enabled() ? &flight_ : nullptr);
      s.request.send.clear();
      s.request.send.shrink_to_fit();
      s.record.state = SessionState::kRunning;
      s.record.admitted_at = vclock_;
      s.vfinish = vclock_ + phase_cost_ / static_cast<double>(s.record.weight);
      --tenant_queued_[s.record.tenant];
      it = queue_.erase(it);
      running_.push_back(s.record.id);
      ++tenant_running_[s.record.tenant];
      ++stats_.admitted;
      slo_counter("svc.slo.admitted", s.record.tenant).add();
      slo_.histogram("svc.slo.queue_wait", slo_bounds_milliphase(),
                     {{"tenant", s.record.tenant}})
          .observe(to_milliphase(s.record.admitted_at - s.record.arrival));
      flight_.note(s.record.id, "svc.admit", fault_tick_, 0, 0,
                   static_cast<std::int64_t>(queue_.size()));
      if (health_ != nullptr && health_->any_quarantined(fault_tick_)) {
        // Newly admitted with quarantine in force: this session is
        // planned around the bad resources from its first phase (the
        // per-step gate reroutes on sight, spending zero retries).
        health_->note_planned_around();
      }
      if (obs_ != nullptr) {
        obs_->instant("svc.admit", static_cast<std::int32_t>(s.record.id));
        obs_->metrics().counter("svc.admitted").add();
        obs_tenant_counter("svc.admitted", s.record.tenant);
      }
      promoted = true;
      break;
    }
    if (!promoted) break;
  }
  set_queue_gauges();
}

SessionManager::Slot* SessionManager::pick_fairest() {
  Slot* best = nullptr;
  for (const SessionId id : running_) {
    Slot& s = slot(id);
    if (best == nullptr || s.vfinish < best->vfinish ||
        (s.vfinish == best->vfinish && s.record.id < best->record.id)) {
      best = &s;
    }
  }
  return best;
}

bool SessionManager::run_one() {
  std::lock_guard<std::mutex> lk(mu_);
  process_arrivals();
  promote();

  if (running_.empty()) {
    if (pending_arrivals_.empty()) {
      TOREX_CHECK(queue_.empty(), "scheduler wedged: queued sessions with an idle engine");
      return false;
    }
    // Idle until the next arrival: jump the virtual clock to it.
    vclock_ = std::max(vclock_, slot(pending_arrivals_.front()).record.arrival);
    return true;
  }

  Slot* s = pick_fairest();
  TOREX_CHECK(s != nullptr, "runnable set empty after promote");

  if (s->record.deadline_at > 0.0 && s->record.deadline_at <= vclock_) {
    // Mid-run expiry: enforce through the cancel machinery and retire.
    s->cancel_flag->store(true, std::memory_order_relaxed);
    retire_running(*s, SessionState::kDeadlineMissed,
                   "deadline expired mid-run after " +
                       std::to_string(s->exchange->phases_done()) + " phase(s)");
    return true;
  }
  if (s->request.inject.cancel_after_phases >= 0 &&
      s->exchange->phases_done() >= s->request.inject.cancel_after_phases) {
    s->cancel_flag->store(true, std::memory_order_relaxed);
  }

  health_maintenance();
  HealthContext health;
  // The tick rides along even without the health layer: flight-recorder
  // notes stamp it so dump lines align with the dispatch axis.
  health.tick = fault_tick_;
  if (health_ != nullptr) {
    health.faults = &options_.service_faults;
    health.registry = health_.get();
    health.budget = retry_budget_.get();
  }

  const int phase = s->exchange->phases_done() + 1;
  flight_.note(s->record.id, "svc.dispatch", fault_tick_, phase, 0,
               static_cast<std::int64_t>(running_.size()));
  // Post-dispatch bookkeeping shared by every outcome: per-tenant
  // retry-budget spend attribution, then breaker-trip edge detection
  // (the discoverer's ring still holds the discovery events).
  const auto settle = [&](Slot& sess) {
    const std::int64_t resent = sess.exchange->resent_parcels();
    if (resent > sess.record.retry_parcels) {
      slo_counter("svc.slo.retry_parcels", sess.record.tenant)
          .add(resent - sess.record.retry_parcels);
      sess.record.retry_parcels = resent;
    }
    maybe_breaker_trip_dump(sess, phase);
  };
  try {
    SpanGuard phase_span(obs_, "svc.phase", static_cast<std::int32_t>(s->record.id), phase);
    const PhaseOutcome outcome =
        s->exchange->run_phase(s->cancel_flag.get(), s->request.inject, health);
    // Time always advances by one phase cost per dispatch — a deferred
    // phase burned its turn too, and the budget refills on this clock.
    vclock_ += phase_cost_;
    s->vfinish += phase_cost_ / static_cast<double>(s->record.weight);
    ++fault_tick_;
    settle(*s);
    if (outcome == PhaseOutcome::kDeferred) {
      // Retries beyond the global budget queue rather than fire: the
      // session keeps its slot and the fair scheduler will re-dispatch
      // it once cheaper sessions have run (and the bucket refilled).
      ++s->deferrals;
      ++s->record.deferrals;
      slo_counter("svc.slo.deferrals", s->record.tenant).add();
      // Deferred-budget time: each deferral burns one phase cost of
      // virtual time on the clock without advancing the session.
      slo_counter("svc.slo.deferred_milliphase", s->record.tenant).add(1000);
      const bool can_refill = options_.health.retries.capacity == 0 ||
                              options_.health.retries.refill_per_time > 0.0;
      if (!can_refill || s->deferrals >= kMaxDeferralsPerSession) {
        retire_running(*s, SessionState::kFailed,
                       "retry budget starved after " + std::to_string(s->deferrals) +
                           " deferral(s) at phase " + std::to_string(phase));
      }
      return true;
    }
    s->deferrals = 0;
    ++stats_.phases_executed;
    if (obs_ != nullptr) obs_->metrics().counter("svc.phases").add();
    const std::int64_t sent_now = s->exchange->sent_parcels();
    if (sent_now > s->record.sent_parcels) {
      slo_counter("svc.slo.parcels", s->record.tenant).add(sent_now - s->record.sent_parcels);
    }
    s->record.phases_done = s->exchange->phases_done();
    s->record.sent_parcels = sent_now;
    if (s->exchange->complete()) {
      retire_running(*s, SessionState::kCompleted, "");
    }
  } catch (const ExchangeCancelledError& error) {
    // Charge the attempted phase either way: the engine burned time on
    // it, and determinism wants the clock independent of how far the
    // phase got before the flag was seen.
    vclock_ += phase_cost_;
    ++fault_tick_;
    settle(*s);
    retire_running(*s, SessionState::kCancelled, error.what());
  } catch (const std::exception& error) {
    // Crash injection, corruption refusal, quota breach, unroutable
    // fault, or any other session-local defect: the session dies, the
    // engine moves on.
    vclock_ += phase_cost_;
    ++fault_tick_;
    settle(*s);
    retire_running(*s, SessionState::kFailed, error.what());
  }
  return true;
}

void SessionManager::run_until_idle() {
  while (run_one()) {
  }
}

SessionRecord SessionManager::record(SessionId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return slot(id).record;
}

SvcStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::vector<std::vector<std::int64_t>> SessionManager::take_result(SessionId id) {
  std::lock_guard<std::mutex> lk(mu_);
  Slot& s = slot(id);
  TOREX_REQUIRE(s.record.state == SessionState::kCompleted, "session has no result to take");
  TOREX_REQUIRE(s.has_result, "session result already taken");
  s.has_result = false;
  return std::move(s.result);
}

ExchangeJournal SessionManager::journal(SessionId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Slot& s = slot(id);
  TOREX_REQUIRE(s.exchange != nullptr, "session was never admitted; no journal exists");
  return s.exchange->journal();
}

WirePoolStats SessionManager::wire_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return arena_.stats();
}

std::int64_t SessionManager::outstanding_frames() const {
  std::lock_guard<std::mutex> lk(mu_);
  return arena_.stats().outstanding_frames();
}

void SessionManager::health_maintenance() {
  if (health_ == nullptr) return;
  retry_budget_->advance(vclock_);
  if (detector_ != nullptr && fault_tick_ > observed_tick_) {
    // Feed the detector only the ticks that elapsed since the last
    // dispatch; crashed nodes (service crash faults) go silent and the
    // resulting phi transitions open their node breakers.
    const auto suspicions =
        detector_->observe_heartbeats(options_.service_faults, observed_tick_ + 1, fault_tick_);
    observed_tick_ = fault_tick_;
    for (const Suspicion& suspicion : suspicions) {
      health_->report_suspicion(suspicion.node, fault_tick_, suspicion.phi);
    }
  }
  health_->run_probes(options_.service_faults, fault_tick_);
}

std::int64_t SessionManager::fault_tick() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fault_tick_;
}

void SessionManager::advance_health(std::int64_t ticks) {
  TOREX_REQUIRE(ticks >= 1, "advance_health needs a positive tick count");
  std::lock_guard<std::mutex> lk(mu_);
  if (health_ == nullptr) return;
  for (std::int64_t i = 0; i < ticks; ++i) {
    ++fault_tick_;
    health_maintenance();
  }
}

HealthStats SessionManager::health_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  TOREX_REQUIRE(health_ != nullptr, "health stats requested from a manager without the layer");
  HealthStats out = health_->stats(fault_tick_);
  out.retry_granted = retry_budget_->granted();
  out.retry_denied = retry_budget_->denied();
  out.retry_refilled = retry_budget_->refilled();
  out.retry_capacity = options_.health.retries.capacity;
  return out;
}

std::string SessionManager::health_dump() const {
  std::lock_guard<std::mutex> lk(mu_);
  TOREX_REQUIRE(health_ != nullptr, "health dump requested from a manager without the layer");
  return health_->dump(fault_tick_);
}

std::vector<SessionManager::FlightDumpEntry> SessionManager::flight_dumps() const {
  std::lock_guard<std::mutex> lk(mu_);
  return flight_dumps_;
}

MetricsSnapshot SessionManager::slo_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return slo_.snapshot();
}

MetricsSnapshot SessionManager::exposition_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot out = slo_.snapshot();
  const auto counter = [&out](const char* name, std::int64_t value, MetricLabels labels = {}) {
    out.counters.push_back({name, canonical_labels(std::move(labels)), value});
  };
  const auto gauge = [&out](const char* name, std::int64_t value, MetricLabels labels = {}) {
    out.gauges.push_back({name, canonical_labels(std::move(labels)), value});
  };

  // Service disposition totals (the same numbers stats() reports).
  counter("svc.offered", stats_.offered);
  counter("svc.admitted", stats_.admitted);
  counter("svc.rejected", stats_.rejected);
  counter("svc.completed", stats_.completed);
  counter("svc.failed", stats_.failed);
  counter("svc.cancelled", stats_.cancelled + stats_.cancelled_queued);
  counter("svc.deadline_missed", stats_.deadline_missed());
  counter("svc.phases", stats_.phases_executed);
  counter("svc.parcels_delivered", stats_.parcels_delivered);

  // Scheduler occupancy and the virtual clock.
  gauge("svc.active_sessions", static_cast<std::int64_t>(running_.size()));
  gauge("svc.queued_sessions", static_cast<std::int64_t>(queue_.size()));
  gauge("svc.pending_arrivals", static_cast<std::int64_t>(pending_arrivals_.size()));
  for (const auto& [tenant, depth] : tenant_queued_) {
    gauge("svc.queue_depth", depth, {{"tenant", tenant}});
  }
  gauge("svc.virtual_time_milliphase", to_milliphase(vclock_));
  gauge("svc.fault_tick", fault_tick_);

  // Flight recorder occupancy.
  gauge("svc.flight.tracked_sessions", static_cast<std::int64_t>(flight_.tracked_sessions()));
  counter("svc.flight.dumps", static_cast<std::int64_t>(flight_dumps_.size()));

  // Shared arena / wire path.
  const WirePoolStats& w = arena_.stats();
  counter("wire.messages", w.messages);
  counter("wire.parcels", w.parcels);
  counter("wire.bytes_encoded", w.bytes_encoded);
  counter("wire.bytes_copied", w.bytes_copied);
  counter("wire.acquires", w.acquires);
  counter("wire.pool_hits", w.pool_hits);
  counter("wire.pool_misses", w.pool_misses);
  gauge("wire.outstanding_frames", w.outstanding_frames());
  gauge("wire.peak_in_use", w.peak_in_use);

  // Health layer: aggregate counters, retry budget, and a per-resource
  // breaker gauge (0 = closed, 1 = open, 2 = half-open).
  if (health_ != nullptr) {
    const HealthStats h = health_->stats(fault_tick_);
    counter("svc.health.errors", h.errors);
    counter("svc.health.opens", h.opens);
    counter("svc.health.closes", h.closes);
    counter("svc.health.flaps", h.flaps);
    counter("svc.health.probes", h.probes);
    counter("svc.health.probe_failures", h.probe_failures);
    counter("svc.health.chain_walks", h.chain_walks);
    counter("svc.health.suspicions", h.suspicions);
    counter("svc.health.integrity_reports", h.integrity_reports);
    counter("svc.health.quarantine_hits", h.quarantine_hits);
    counter("svc.health.rerouted_messages", h.rerouted_messages);
    counter("svc.health.reroute_extra_hops", h.reroute_extra_hops);
    counter("svc.health.remap_hosted", h.remap_hosted);
    counter("svc.health.resent_parcels", h.resent_parcels);
    counter("svc.health.deferrals", h.deferrals);
    counter("svc.health.planned_around", h.planned_around);
    counter("svc.health.permanent_quarantines", h.permanent_quarantines);
    gauge("svc.health.open_breakers", h.open_breakers);
    gauge("svc.health.half_open_breakers", h.half_open_breakers);
    for (const ResourceHealth& r : h.resources) {
      gauge("svc.health.breaker", static_cast<std::int64_t>(r.state),
            {{"resource", resource_label(r)}, {"permanent", r.permanent ? "yes" : "no"}});
    }
    gauge("svc.retry.capacity", options_.health.retries.capacity);
    gauge("svc.retry.available", retry_budget_->available());
    counter("svc.retry.granted", retry_budget_->granted());
    counter("svc.retry.denied", retry_budget_->denied());
    counter("svc.retry.refilled", retry_budget_->refilled());
  }

  const auto by_key = [](const auto& a, const auto& b) {
    return a.name != b.name ? a.name < b.name : a.labels < b.labels;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_key);
  std::sort(out.gauges.begin(), out.gauges.end(), by_key);
  std::sort(out.histograms.begin(), out.histograms.end(), by_key);
  return out;
}

}  // namespace torex
