// torexd: the session-multiplexing service over one shared engine.
//
// One SessionManager owns one torus, one cost model, one Suh-Shin
// schedule, and one WireArena, and multiplexes many tenants' exchanges
// over them:
//
//  * Admission control — at most `max_active` sessions execute
//    concurrently and at most `max_queued` wait; overload sheds
//    deterministically, oldest-queued-first, each shed session retiring
//    as kRejected with a reason (never a silent drop). Tenant byte
//    quotas reject oversized sessions at the door.
//  * Weighted-fair phase scheduling — admitted sessions take turns one
//    *phase* at a time: each session carries a virtual finish time,
//    advanced by phase_cost / weight per executed phase (the classic
//    WFQ virtual clock, priced by the paper's cost model), and the
//    runnable session with the smallest finish time goes next. Links
//    and arena frames never idle waiting for one session to finish
//    end-to-end.
//  * Deadline scheduling — a session's deadline is an absolute point on
//    the manager's virtual clock. Expiry in the queue retires it
//    unadmitted; expiry mid-run fires its cooperative cancel flag at
//    the next dispatch, reusing the watchdog/cancel machinery.
//  * Isolation — each session has its own journal, parcels, and cancel
//    flag; a crash, corruption storm, or quota breach unwinds through
//    RAII (frames back to the arena, exception recorded on the session)
//    and the scheduler simply moves to the next tenant. Blast radius of
//    a failing session is exactly that session.
//
// Concurrency contract: submit / cancel / cancel_handle / record /
// stats are thread-safe (one manager mutex). run_one / run_until_idle
// execute sessions under the same mutex — call them from one driver
// thread; submitters and cancellers may run concurrently against it.
// Cancel flags obtained via cancel_handle() may be flipped at any time
// without the lock; running sessions poll them at step boundaries.
//
// Time is virtual throughout (cost-model units): arrivals, deadlines,
// and latencies are all modeled, so every schedule decision is
// reproducible from the seed — wall clock never influences ordering.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/aape.hpp"
#include "core/wire_buffer.hpp"
#include "costmodel/params.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "runtime/communicator.hpp"
#include "runtime/failure_detector.hpp"
#include "sim/fault_model.hpp"
#include "svc/health_registry.hpp"
#include "svc/session.hpp"
#include "svc/session_exchange.hpp"

namespace torex {

/// The manager's health layer tuning: breaker lattice, global retry
/// bucket, and the phi-accrual detector that feeds node suspicion from
/// service crash faults. validate() delegates to each part.
struct HealthOptions {
  /// Turns the health layer on. It also activates implicitly when
  /// SessionManagerOptions::service_faults is non-empty — a fault
  /// model without the health substrate would fault sessions silently.
  bool enabled = false;
  BreakerOptions breaker;
  RetryBudgetOptions retries;
  FailureDetectorOptions detector;

  void validate() const;
};

/// Manager-wide tuning. validate() rejects non-positive bounds,
/// malformed quota entries (TenantQuotaError), and malformed health
/// tuning.
struct SessionManagerOptions {
  /// Concurrently executing sessions (the admission bound).
  int max_active = 8;
  /// Bounded waiting room; an arrival beyond it sheds the oldest
  /// queued session (kRejected / kQueueFull).
  int max_queued = 64;
  /// Block size the cost model prices phases with.
  std::int64_t block_bytes = static_cast<std::int64_t>(sizeof(std::int64_t));
  /// Per-tenant quotas; tenants absent from the map are unlimited.
  std::map<std::string, TenantQuota> quotas;
  /// Ground-truth service faults on the manager's fault tick axis (one
  /// tick per dispatched phase; see fault_tick()). Sessions never see
  /// this model directly — they discover it through the health layer.
  FaultModel service_faults;
  /// Health layer tuning; see HealthOptions.
  HealthOptions health;
  /// Optional telemetry: svc.* counters/gauges and per-phase spans.
  Recorder* obs = nullptr;
  /// Always-on per-session black box (obs/flight_recorder.hpp). The
  /// manager dumps a session's ring on failure, deadline miss, and
  /// breaker trips; `flight.enabled = false` turns the rings off (the
  /// bench_obs overhead A/B — production keeps them on).
  FlightRecorderOptions flight;
  /// One-command repro line embedded in every flight dump ("" emits
  /// an empty repro field). Harnesses set this to their own seeded
  /// invocation so a dump is actionable on its own.
  std::string repro_hint;

  void validate() const;
};

/// The torexd service core. See the file comment for semantics.
class SessionManager {
 public:
  SessionManager(TorusShape shape, CostParams params, SessionManagerOptions options = {});

  Rank size() const { return schedule_.shape().num_nodes(); }
  /// Modeled cost of one phase — the WFQ price and deadline unit.
  double phase_cost() const { return phase_cost_; }
  /// Current virtual time.
  double now() const;

  /// Registers a session (thread-safe). The request is validated and
  /// admitted (or shed) when the virtual clock reaches its arrival.
  /// Arrivals are processed in submission order.
  SessionId submit(SessionRequest request);

  /// The session's cooperative cancel flag; safe to set from any
  /// thread at any time. The session observes it at its next step
  /// boundary (running) or dispatch (queued).
  std::shared_ptr<std::atomic<bool>> cancel_handle(SessionId id);
  /// Sets the flag (thread-safe convenience).
  void cancel(SessionId id);

  /// One scheduling decision: process due arrivals, promote from the
  /// queue, then run one phase of the fairest runnable session (or
  /// advance the clock to the next arrival). Returns false when fully
  /// idle — no pending arrivals, nothing queued, nothing running.
  bool run_one();
  /// Drives run_one() until idle.
  void run_until_idle();

  /// Copy of a session's observable state (thread-safe).
  SessionRecord record(SessionId id) const;
  /// Disposition accounting (thread-safe).
  SvcStats stats() const;
  /// Number of sessions submitted so far.
  std::int64_t sessions() const;

  /// Moves a completed session's recv matrix out (recv[q][p] ==
  /// send[p][q]). Requires state kCompleted; a second take throws.
  std::vector<std::vector<std::int64_t>> take_result(SessionId id);

  /// A completed/failed session's journal (for resume and post-mortem;
  /// copies under the lock).
  ExchangeJournal journal(SessionId id) const;

  /// Shared arena statistics; outstanding_frames() must be zero
  /// whenever no phase is mid-flight (asserted by tests at teardown).
  WirePoolStats wire_stats() const;
  std::int64_t outstanding_frames() const;

  /// True when the health layer (breakers, retry budget, detector
  /// feed) is active for this manager.
  bool health_enabled() const { return health_ != nullptr; }
  /// The service fault/health tick: one per dispatched phase.
  std::int64_t fault_tick() const;
  /// Advances the fault tick without dispatching work: detector feed
  /// and probe maintenance still run, so breakers converge back to
  /// closed after fault windows pass even on an idle service. No-op
  /// without the health layer.
  void advance_health(std::int64_t ticks = 1);
  /// Registry + retry-budget snapshot at the current fault tick.
  /// Requires the health layer.
  HealthStats health_stats() const;
  /// Human-readable breaker table (the CI failure artifact).
  std::string health_dump() const;

  /// One emitted flight-recorder dump and what triggered it.
  struct FlightDumpEntry {
    SessionId session = -1;
    std::string trigger;  ///< "session_failed" | "deadline_miss" | "breaker_trip"
    std::string text;     ///< parseable via parse_flight_dump
  };
  /// Every dump emitted so far, in emission order (thread-safe copy).
  /// Failing sessions also carry their final dump on
  /// SessionRecord::flight_dump.
  std::vector<FlightDumpEntry> flight_dumps() const;
  /// The black box itself (for tests and external note sources).
  FlightRecorder& flight_recorder() { return flight_; }

  /// The manager's full observable surface as one labeled metrics
  /// snapshot: per-tenant SLO ledger (svc.slo.*), service disposition
  /// totals, wire/arena occupancy, breaker states and retry budget
  /// (when the health layer is on), and the virtual clock. Pure
  /// function of manager state — serialize with prometheus_text() /
  /// json_snapshot() from obs/exposition.hpp.
  MetricsSnapshot exposition_snapshot() const;

  /// The per-tenant SLO ledger alone (labeled subset of the above):
  /// queue-wait / service-time / end-to-end latency histograms in
  /// milli-phase-cost units, deadline-miss attribution
  /// (cause=shed|deferred|faulted|overload), retry-budget spend and
  /// deferral time per tenant.
  MetricsSnapshot slo_snapshot() const;

 private:
  struct Slot {
    SessionRecord record;
    SessionRequest request;  ///< send released once the exchange is built
    std::unique_ptr<SessionExchange> exchange;
    std::shared_ptr<std::atomic<bool>> cancel_flag;
    double vfinish = 0.0;  ///< WFQ virtual finish time of the next phase
    int deferrals = 0;     ///< consecutive budget deferrals (starvation guard)
    std::vector<std::vector<std::int64_t>> result;
    bool has_result = false;
  };

  // All of the below require mu_ held.
  Slot& slot(SessionId id);
  const Slot& slot(SessionId id) const;
  void process_arrivals();
  void promote();
  void retire_queued(Slot& s, SessionState state, RejectReason reason, const std::string& error);
  void retire_running(Slot& s, SessionState state, const std::string& error);
  void set_queue_gauges();
  Slot* pick_fairest();
  void health_maintenance();  ///< detector feed + probes at fault_tick_

  /// SLO ledger counter for one tenant (slo_ registry, {tenant} label).
  Counter& slo_counter(const char* name, const std::string& tenant);
  /// Virtual-time interval in milli-phase-cost units (the SLO
  /// histogram domain).
  std::int64_t to_milliphase(double vt) const;
  /// Renders + records one dump for the session (and, for terminal
  /// triggers, stores it on the record and releases the ring).
  void emit_flight_dump(Slot& s, const char* trigger, const std::string& reason, bool terminal);
  /// Post-dispatch breaker-trip edge detection -> "breaker_trip" dump.
  void maybe_breaker_trip_dump(Slot& s, int phase);
  /// Per-tenant disposition split mirrored into the obs registry.
  void obs_tenant_counter(const char* name, const std::string& tenant);

  TorusShape shape_;
  SuhShinAape schedule_;
  TorusCommunicator comm_;
  SessionManagerOptions options_;
  Recorder* obs_ = nullptr;
  double phase_cost_ = 0.0;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::deque<SessionId> pending_arrivals_;  ///< submitted, awaiting admission
  std::deque<SessionId> queue_;             ///< the bounded waiting room
  std::vector<SessionId> running_;
  std::map<std::string, int> tenant_running_;
  std::map<std::string, int> tenant_queued_;
  double vclock_ = 0.0;
  SvcStats stats_;
  WireArena arena_;  ///< shared frame pool, one per service

  // Observability plane.
  FlightRecorder flight_;                      ///< always-on black box
  std::vector<FlightDumpEntry> flight_dumps_;  ///< emitted dumps, in order
  MetricsRegistry slo_;                        ///< per-tenant SLO ledger (labeled)
  std::int64_t last_opens_ = 0;                ///< breaker-trip edge detector

  // Health layer (all null/unused when disabled).
  std::unique_ptr<HealthRegistry> health_;
  std::unique_ptr<RetryBudget> retry_budget_;
  std::unique_ptr<HeartbeatFailureDetector> detector_;
  std::int64_t fault_tick_ = 0;     ///< advances once per dispatched phase
  std::int64_t observed_tick_ = -1; ///< detector heartbeat feed high-water mark
};

}  // namespace torex
