#include "topology/group.hpp"

#include "util/assert.hpp"
#include "util/math.hpp"

namespace torex {

Coord subtorus_coord(const Coord& coord) {
  Coord out(coord.size());
  for (std::size_t d = 0; d < coord.size(); ++d) out[d] = coord[d] / 4;
  return out;
}

Coord group_coord(const Coord& coord) {
  Coord out(coord.size());
  for (std::size_t d = 0; d < coord.size(); ++d) out[d] = coord[d] % 4;
  return out;
}

Coord submesh_coord(const Coord& coord) { return subtorus_coord(coord); }

Coord within_submesh_coord(const Coord& coord) { return group_coord(coord); }

Coord half_submesh_coord(const Coord& coord) {
  Coord out(coord.size());
  for (std::size_t d = 0; d < coord.size(); ++d) out[d] = (coord[d] % 4) / 2;
  return out;
}

Coord proxy_coord(const Coord& origin, const Coord& dest) {
  TOREX_REQUIRE(origin.size() == dest.size(), "coordinate dimensionality mismatch");
  Coord out(origin.size());
  for (std::size_t d = 0; d < origin.size(); ++d) {
    out[d] = static_cast<std::int32_t>((dest[d] / 4) * 4 + origin[d] % 4);
  }
  return out;
}

TorusShape group_subtorus_shape(const TorusShape& shape) {
  TOREX_REQUIRE(shape.all_extents_multiple_of_four(),
                "group decomposition requires multiple-of-four extents");
  std::vector<std::int32_t> extents(static_cast<std::size_t>(shape.num_dims()));
  for (int d = 0; d < shape.num_dims(); ++d) {
    extents[static_cast<std::size_t>(d)] = shape.extent(d) / 4;
  }
  return TorusShape(std::move(extents));
}

std::int64_t num_groups(const TorusShape& shape) { return ipow(4, shape.num_dims()); }

bool same_group(const Coord& a, const Coord& b) { return group_coord(a) == group_coord(b); }

bool same_submesh(const Coord& a, const Coord& b) {
  return submesh_coord(a) == submesh_coord(b);
}

bool same_half_submesh(const Coord& a, const Coord& b) {
  return same_submesh(a, b) && half_submesh_coord(a) == half_submesh_coord(b);
}

}  // namespace torex
