// Mod-4 node-group / submesh decomposition (paper Section 3, Figure 1).
//
// For a torus whose extents are multiples of four:
//  * the *group* of a node is its coordinate vector mod 4 (16 groups in
//    2D, 64 in 3D, 4^n in general); each group forms an
//    (a1/4) x ... x (an/4) subtorus with stride-4 links;
//  * the *submesh* (SM) of a node is its coordinate vector div 4 — the
//    aligned 4 x ... x 4 box it lives in;
//  * within an SM, the 2 x ... x 2 sub-submesh coordinate is
//    (coord mod 4) div 2.
//
// Phases 1..n of the algorithm route each block from its origin to the
// origin-group member that lives in the destination's SM (the block's
// *proxy*); phases n+1 and n+2 finish the job inside the SM.
#pragma once

#include <cstdint>

#include "topology/shape.hpp"

namespace torex {

/// Coordinate of a node within its group's subtorus (coord div 4).
Coord subtorus_coord(const Coord& coord);

/// Group label of a node (coord mod 4 per dimension).
Coord group_coord(const Coord& coord);

/// Coordinate of the aligned 4x...x4 submesh containing the node.
/// Identical to subtorus_coord; both names exist because the paper uses
/// the two views interchangeably (group-subtorus vs SM grid).
Coord submesh_coord(const Coord& coord);

/// Position of the node inside its 4x...x4 submesh (coord mod 4).
Coord within_submesh_coord(const Coord& coord);

/// Coordinate of the 2x...x2 sub-submesh inside the SM ((coord mod 4) div 2).
Coord half_submesh_coord(const Coord& coord);

/// The member of `origin`'s group located in `dest`'s submesh: the node
/// every block (origin -> dest) must reach by the end of phase n.
Coord proxy_coord(const Coord& origin, const Coord& dest);

/// Shape of the subtorus formed by each group (extents divided by 4).
TorusShape group_subtorus_shape(const TorusShape& shape);

/// Number of distinct groups (4^n).
std::int64_t num_groups(const TorusShape& shape);

/// True when two nodes belong to the same group.
bool same_group(const Coord& a, const Coord& b);

/// True when two nodes belong to the same 4x...x4 submesh.
bool same_submesh(const Coord& a, const Coord& b);

/// True when two nodes belong to the same 2x...x2 sub-submesh.
bool same_half_submesh(const Coord& a, const Coord& b);

}  // namespace torex
