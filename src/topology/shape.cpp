#include "topology/shape.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace torex {

TorusShape::TorusShape(std::vector<std::int32_t> extents) : extents_(std::move(extents)) {
  TOREX_REQUIRE(!extents_.empty(), "torus needs at least one dimension");
  std::int64_t total = 1;
  for (auto e : extents_) {
    TOREX_REQUIRE(e >= 1, "every extent must be positive");
    total *= e;
    TOREX_REQUIRE(total <= std::numeric_limits<Rank>::max(), "node count overflows Rank");
  }
  num_nodes_ = static_cast<Rank>(total);
  strides_.assign(extents_.size(), 1);
  for (int d = static_cast<int>(extents_.size()) - 2; d >= 0; --d) {
    strides_[static_cast<std::size_t>(d)] =
        strides_[static_cast<std::size_t>(d) + 1] * extents_[static_cast<std::size_t>(d) + 1];
  }
}

TorusShape TorusShape::make_2d(std::int32_t rows, std::int32_t cols) {
  return TorusShape({rows, cols});
}

TorusShape TorusShape::make_3d(std::int32_t a1, std::int32_t a2, std::int32_t a3) {
  return TorusShape({a1, a2, a3});
}

std::int32_t TorusShape::extent(int dim) const {
  TOREX_REQUIRE(dim >= 0 && dim < num_dims(), "dimension out of range");
  return extents_[static_cast<std::size_t>(dim)];
}

std::int32_t TorusShape::max_extent() const {
  return *std::max_element(extents_.begin(), extents_.end());
}

Rank TorusShape::rank_of(const Coord& coord) const {
  TOREX_REQUIRE(coord.size() == extents_.size(), "coordinate dimensionality mismatch");
  std::int64_t rank = 0;
  for (std::size_t d = 0; d < extents_.size(); ++d) {
    TOREX_REQUIRE(coord[d] >= 0 && coord[d] < extents_[d], "coordinate out of range");
    rank += coord[d] * strides_[d];
  }
  return static_cast<Rank>(rank);
}

Coord TorusShape::coord_of(Rank rank) const {
  TOREX_REQUIRE(rank >= 0 && rank < num_nodes_, "rank out of range");
  Coord coord(extents_.size());
  std::int64_t rest = rank;
  for (std::size_t d = 0; d < extents_.size(); ++d) {
    coord[d] = static_cast<std::int32_t>(rest / strides_[d]);
    rest %= strides_[d];
  }
  return coord;
}

std::int32_t TorusShape::coord_along(Rank rank, int dim) const {
  TOREX_REQUIRE(rank >= 0 && rank < num_nodes_, "rank out of range");
  TOREX_REQUIRE(dim >= 0 && dim < num_dims(), "dimension out of range");
  const std::size_t d = static_cast<std::size_t>(dim);
  return static_cast<std::int32_t>((rank / strides_[d]) % extents_[d]);
}

bool TorusShape::all_extents_multiple_of_four() const {
  return std::all_of(extents_.begin(), extents_.end(),
                     [](std::int32_t e) { return is_positive_multiple_of(e, 4); });
}

bool TorusShape::extents_non_increasing() const {
  return std::is_sorted(extents_.begin(), extents_.end(), std::greater<std::int32_t>());
}

std::int32_t TorusShape::wrap(int dim, std::int64_t value) const {
  return static_cast<std::int32_t>(floor_mod<std::int64_t>(value, extent(dim)));
}

Coord TorusShape::moved(const Coord& coord, int dim, std::int64_t hops) const {
  TOREX_REQUIRE(coord.size() == extents_.size(), "coordinate dimensionality mismatch");
  Coord out = coord;
  out[static_cast<std::size_t>(dim)] =
      wrap(dim, static_cast<std::int64_t>(coord[static_cast<std::size_t>(dim)]) + hops);
  return out;
}

std::int64_t TorusShape::distance(const Coord& a, const Coord& b) const {
  TOREX_REQUIRE(a.size() == extents_.size() && b.size() == extents_.size(),
                "coordinate dimensionality mismatch");
  std::int64_t total = 0;
  for (std::size_t d = 0; d < extents_.size(); ++d) {
    total += ring_distance(a[d], b[d], extents_[d]);
  }
  return total;
}

std::string TorusShape::to_string() const {
  std::ostringstream os;
  for (std::size_t d = 0; d < extents_.size(); ++d) {
    if (d) os << 'x';
    os << extents_[d];
  }
  return os.str();
}

}  // namespace torex
