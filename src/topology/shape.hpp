// Torus shape: dimension sizes plus rank <-> coordinate conversion.
//
// Terminology follows the paper: an `a1 x a2 x ... x an` torus where the
// proposed algorithms require each `ai` to be a multiple of four and the
// sizes to be sorted non-increasing (a1 >= a2 >= ... >= an). The shape
// type itself accepts any positive sizes; algorithm entry points enforce
// their own stricter preconditions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace torex {

/// Node index in [0, num_nodes).
using Rank = std::int32_t;

/// One coordinate per dimension, coord[d] in [0, extent(d)).
using Coord = std::vector<std::int32_t>;

/// Immutable torus shape with mixed-radix rank/coordinate conversion.
/// Ranks are assigned with the *last* dimension varying fastest, so for
/// a 2D `R x C` torus `rank = r * C + c`, matching the paper's P(r, c).
class TorusShape {
 public:
  /// Constructs from per-dimension extents; each must be >= 1 and the
  /// total node count must fit in Rank.
  explicit TorusShape(std::vector<std::int32_t> extents);

  /// Convenience factories.
  static TorusShape make_2d(std::int32_t rows, std::int32_t cols);
  static TorusShape make_3d(std::int32_t a1, std::int32_t a2, std::int32_t a3);

  int num_dims() const { return static_cast<int>(extents_.size()); }
  std::int32_t extent(int dim) const;
  const std::vector<std::int32_t>& extents() const { return extents_; }
  Rank num_nodes() const { return num_nodes_; }

  /// Largest per-dimension extent (the paper's a1).
  std::int32_t max_extent() const;

  Rank rank_of(const Coord& coord) const;
  Coord coord_of(Rank rank) const;

  /// Single component of coord_of(rank) without materializing the full
  /// coordinate vector — allocation-free, for use in sort keys and
  /// other per-block hot paths.
  std::int32_t coord_along(Rank rank, int dim) const;

  /// True when every extent is a (positive) multiple of four — the
  /// precondition of the Suh–Shin algorithms.
  bool all_extents_multiple_of_four() const;

  /// True when extents are sorted non-increasing (a1 >= ... >= an).
  bool extents_non_increasing() const;

  /// Wraps a (possibly out-of-range) coordinate value into the torus.
  std::int32_t wrap(int dim, std::int64_t value) const;

  /// Returns the coordinate obtained by moving `hops` steps (signed)
  /// along `dim`, with wraparound.
  Coord moved(const Coord& coord, int dim, std::int64_t hops) const;

  /// Minimal hop distance between two nodes (sum of per-dimension ring
  /// distances).
  std::int64_t distance(const Coord& a, const Coord& b) const;

  /// "12x12x4"-style rendering for logs and bench tables.
  std::string to_string() const;

  bool operator==(const TorusShape& other) const { return extents_ == other.extents_; }

 private:
  std::vector<std::int32_t> extents_;
  std::vector<std::int64_t> strides_;  // strides_[d] = product of extents after d
  Rank num_nodes_ = 0;
};

}  // namespace torex
