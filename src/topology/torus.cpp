#include "topology/torus.hpp"

#include "util/assert.hpp"
#include "util/math.hpp"

namespace torex {

Torus::Torus(TorusShape shape) : shape_(std::move(shape)) {}

std::int64_t Torus::num_channels() const {
  return static_cast<std::int64_t>(shape_.num_nodes()) * 2 * shape_.num_dims();
}

ChannelId Torus::channel_id(Rank from, Direction direction) const {
  TOREX_REQUIRE(from >= 0 && from < shape_.num_nodes(), "rank out of range");
  TOREX_REQUIRE(direction.dim >= 0 && direction.dim < shape_.num_dims(),
                "dimension out of range");
  const std::int64_t dir_slot =
      static_cast<std::int64_t>(direction.dim) * 2 + (direction.sign == Sign::kPositive ? 0 : 1);
  return static_cast<std::int64_t>(from) * (2 * shape_.num_dims()) + dir_slot;
}

Channel Torus::channel_of(ChannelId id) const {
  TOREX_REQUIRE(id >= 0 && id < num_channels(), "channel id out of range");
  const std::int64_t per_node = 2 * shape_.num_dims();
  Channel ch;
  ch.from = static_cast<Rank>(id / per_node);
  const std::int64_t slot = id % per_node;
  ch.direction.dim = static_cast<int>(slot / 2);
  ch.direction.sign = (slot % 2 == 0) ? Sign::kPositive : Sign::kNegative;
  return ch;
}

Rank Torus::neighbor(Rank node, Direction direction) const {
  return neighbor_at(node, direction, 1);
}

Rank Torus::neighbor_at(Rank node, Direction direction, std::int64_t hops) const {
  Coord c = shape_.coord_of(node);
  c = shape_.moved(c, direction.dim, static_cast<std::int64_t>(sign_value(direction.sign)) * hops);
  return shape_.rank_of(c);
}

void Torus::straight_path(Rank from, Direction direction, std::int64_t hops,
                          std::vector<ChannelId>& out) const {
  TOREX_REQUIRE(hops >= 0, "negative hop count");
  Rank at = from;
  for (std::int64_t h = 0; h < hops; ++h) {
    out.push_back(channel_id(at, direction));
    at = neighbor(at, direction);
  }
}

std::int64_t Torus::dimension_ordered_path(Rank from, Rank to,
                                           std::vector<ChannelId>& out) const {
  const Coord a = shape_.coord_of(from);
  const Coord b = shape_.coord_of(to);
  std::int64_t hops = 0;
  Rank at = from;
  for (int d = 0; d < shape_.num_dims(); ++d) {
    const std::int64_t delta =
        ring_delta(a[static_cast<std::size_t>(d)], b[static_cast<std::size_t>(d)],
                                 shape_.extent(d));
    const Direction dir{d, delta >= 0 ? Sign::kPositive : Sign::kNegative};
    const std::int64_t steps = delta >= 0 ? delta : -delta;
    straight_path(at, dir, steps, out);
    at = neighbor_at(at, dir, steps);
    hops += steps;
  }
  TOREX_CHECK(at == to, "dimension-ordered route did not reach destination");
  return hops;
}

std::int64_t Torus::distance(Rank a, Rank b) const {
  return shape_.distance(shape_.coord_of(a), shape_.coord_of(b));
}

}  // namespace torex
