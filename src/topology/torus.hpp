// Physical torus network: directed channels, neighbors, minimal routing.
//
// The paper's model: full-duplex links (so the two directions of a link
// are independent channels), one-port nodes, wormhole switching. A
// *directed channel* is identified by its source node, dimension and
// direction; this is the unit of contention checking.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/shape.hpp"

namespace torex {

/// Direction along one torus dimension.
enum class Sign : std::int8_t { kNegative = -1, kPositive = +1 };

inline Sign flip(Sign s) { return s == Sign::kPositive ? Sign::kNegative : Sign::kPositive; }
inline std::int32_t sign_value(Sign s) { return s == Sign::kPositive ? 1 : -1; }

/// (dimension, direction) pair — the paper's "+r", "-c", etc.
struct Direction {
  int dim = 0;
  Sign sign = Sign::kPositive;

  bool operator==(const Direction&) const = default;
};

/// Dense identifier of a directed channel; see Torus::channel_id.
using ChannelId = std::int64_t;

/// Directed physical channel from a node to its immediate neighbor
/// along `direction`.
struct Channel {
  Rank from = 0;
  Direction direction;
};

/// Torus graph view over a TorusShape: channel identifiers, neighbor
/// queries and minimal dimension-ordered routes.
class Torus {
 public:
  explicit Torus(TorusShape shape);

  const TorusShape& shape() const { return shape_; }

  /// Total number of directed channels (num_nodes * 2 * num_dims).
  std::int64_t num_channels() const;

  /// Dense id in [0, num_channels) for the channel leaving `from` along
  /// `direction`.
  ChannelId channel_id(Rank from, Direction direction) const;

  /// Inverse of channel_id.
  Channel channel_of(ChannelId id) const;

  /// Immediate neighbor along a direction.
  Rank neighbor(Rank node, Direction direction) const;

  /// Node reached after `hops` (>= 0) moves along `direction`.
  Rank neighbor_at(Rank node, Direction direction, std::int64_t hops) const;

  /// Channels traversed by a message moving `hops` steps in a straight
  /// line along `direction` from `from` (the only paths the proposed
  /// schedules ever use). Appends to `out`.
  void straight_path(Rank from, Direction direction, std::int64_t hops,
                     std::vector<ChannelId>& out) const;

  /// Minimal dimension-ordered route (correct dimension 0 first, then
  /// 1, ...), each dimension taking the shorter ring direction (ties
  /// broken toward positive). Used by the non-combining baselines.
  /// Appends the traversed channels to `out` and returns the hop count.
  std::int64_t dimension_ordered_path(Rank from, Rank to, std::vector<ChannelId>& out) const;

  /// Minimal hop distance (sum of per-dimension ring distances).
  std::int64_t distance(Rank a, Rank b) const;

 private:
  TorusShape shape_;
};

}  // namespace torex
