// Umbrella header: the whole public API of the torex library.
//
// Fine-grained headers remain available (and are what the library's own
// code uses); this is the convenience include for applications.
#pragma once

#include "baselines/bruck.hpp"
#include "baselines/direct_exchange.hpp"
#include "baselines/ring_exchange.hpp"
#include "core/aape.hpp"
#include "core/block.hpp"
#include "core/data_array.hpp"
#include "core/exchange_engine.hpp"
#include "core/pattern.hpp"
#include "core/payload_exchange.hpp"
#include "core/schedule_io.hpp"
#include "core/schedule_stats.hpp"
#include "core/trace.hpp"
#include "core/virtual_torus.hpp"
#include "core/wire_buffer.hpp"
#include "costmodel/lower_bounds.hpp"
#include "costmodel/models.hpp"
#include "costmodel/params.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "runtime/communicator.hpp"
#include "runtime/failure_detector.hpp"
#include "runtime/journal.hpp"
#include "runtime/node_program.hpp"
#include "runtime/parallel_engine.hpp"
#include "runtime/recovery.hpp"
#include "runtime/watchdog.hpp"
#include "sim/contention.hpp"
#include "sim/cost_simulator.hpp"
#include "sim/fault_model.hpp"
#include "sim/trace_export.hpp"
#include "sim/wormhole.hpp"
#include "svc/health_registry.hpp"
#include "svc/session.hpp"
#include "svc/session_exchange.hpp"
#include "svc/session_manager.hpp"
#include "topology/group.hpp"
#include "topology/shape.hpp"
#include "topology/torus.hpp"

namespace torex {

/// Library version, kept in sync with the CMake project version.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

}  // namespace torex
