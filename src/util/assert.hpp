// Lightweight checked-precondition macros for the torex library.
//
// TOREX_REQUIRE is for public-API argument validation (throws
// std::invalid_argument); TOREX_CHECK is for internal invariants (throws
// std::logic_error). Both are always on: this library is a correctness
// study of a communication schedule, and the cost of a branch per check
// is irrelevant next to the cost of a wrong schedule silently accepted.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace torex::detail {

[[noreturn]] inline void throw_require_failure(const char* expr, const char* file, int line,
                                               const std::string& message) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file, int line,
                                             const std::string& message) {
  std::ostringstream os;
  os << "internal invariant violated: " << expr << " at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw std::logic_error(os.str());
}

[[noreturn]] inline void throw_unreachable(const char* file, int line) {
  std::ostringstream os;
  os << "unreachable code executed at " << file << ':' << line;
  throw std::logic_error(os.str());
}

}  // namespace torex::detail

#define TOREX_UNREACHABLE() ::torex::detail::throw_unreachable(__FILE__, __LINE__)

#define TOREX_REQUIRE(expr, message)                                                      \
  do {                                                                                    \
    if (!(expr)) {                                                                        \
      ::torex::detail::throw_require_failure(#expr, __FILE__, __LINE__, (message));       \
    }                                                                                     \
  } while (false)

#define TOREX_CHECK(expr, message)                                                        \
  do {                                                                                    \
    if (!(expr)) {                                                                        \
      ::torex::detail::throw_check_failure(#expr, __FILE__, __LINE__, (message));         \
    }                                                                                     \
  } while (false)
