#include "util/cli.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace torex {

namespace {

bool is_known(const std::vector<std::string>& known, const std::string& name) {
  return std::find(known.begin(), known.end(), name) != known.end();
}

}  // namespace

CliFlags CliFlags::parse(int argc, const char* const* argv,
                         const std::vector<std::string>& known) {
  CliFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    TOREX_REQUIRE(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg.erase(0, 2);
    std::string name;
    std::string value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // `--key value` form: consume the next token unless it is a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    TOREX_REQUIRE(is_known(known, name), "unknown flag: --" + name);
    flags.values_[name] = value;
  }
  return flags;
}

bool CliFlags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string CliFlags::get_string(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> CliFlags::get_int_list(const std::string& name,
                                                 std::vector<std::int64_t> fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(std::stoll(token));
  }
  TOREX_REQUIRE(!out.empty(), "empty list for flag --" + name);
  return out;
}

}  // namespace torex
