#include "util/cli.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "util/assert.hpp"

namespace torex {

namespace {

bool is_known(const std::vector<std::string>& known, const std::string& name) {
  return std::find(known.begin(), known.end(), name) != known.end();
}

/// Whole-token integer parse: every character must be consumed and the
/// value must fit, so "8x8", "3 ", "0x10", and "99999999999999999999"
/// are all rejected with a message naming the flag and the value.
std::int64_t parse_int_strict(const std::string& name, const std::string& text) {
  std::int64_t v = 0;
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), last, v);
  TOREX_REQUIRE(ec != std::errc::result_out_of_range,
                "flag --" + name + " is out of range: \"" + text + "\"");
  TOREX_REQUIRE(ec == std::errc{} && ptr == last,
                "flag --" + name + " expects an integer, got: \"" + text + "\"");
  return v;
}

}  // namespace

CliFlags CliFlags::parse(int argc, const char* const* argv,
                         const std::vector<std::string>& known) {
  CliFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    TOREX_REQUIRE(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg.erase(0, 2);
    std::string name;
    std::string value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // `--key value` form: consume the next token unless it is a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    TOREX_REQUIRE(is_known(known, name), "unknown flag: --" + name);
    flags.values_[name] = value;
  }
  return flags;
}

bool CliFlags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string CliFlags::get_string(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return parse_int_strict(name, it->second);
}

std::int64_t CliFlags::get_int(const std::string& name, std::int64_t fallback,
                               std::int64_t min, std::int64_t max) const {
  const std::int64_t v = get_int(name, fallback);
  TOREX_REQUIRE(v >= min && v <= max, "flag --" + name + " must be in [" +
                                          std::to_string(min) + ", " + std::to_string(max) +
                                          "], got " + std::to_string(v));
  return v;
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  double v = 0.0;
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), last, v);
  TOREX_REQUIRE(ec != std::errc::result_out_of_range,
                "flag --" + name + " is out of range: \"" + text + "\"");
  TOREX_REQUIRE(ec == std::errc{} && ptr == last,
                "flag --" + name + " expects a number, got: \"" + text + "\"");
  TOREX_REQUIRE(std::isfinite(v), "flag --" + name + " must be finite, got: \"" + text + "\"");
  return v;
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> CliFlags::get_int_list(const std::string& name,
                                                 std::vector<std::int64_t> fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string token;
  while (std::getline(ss, token, ',')) {
    TOREX_REQUIRE(!token.empty(),
                  "flag --" + name + " has an empty list element: \"" + it->second + "\"");
    out.push_back(parse_int_strict(name, token));
  }
  TOREX_REQUIRE(!out.empty(), "empty list for flag --" + name);
  return out;
}

}  // namespace torex
