// Minimal command-line flag parsing for bench and example binaries.
//
// Supports `--key=value`, `--key value`, and boolean `--flag` forms.
// Unknown flags are an error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace torex {

/// Parsed command-line flags with typed accessors and defaults.
class CliFlags {
 public:
  /// Parses argv. `known` lists every accepted flag name (without the
  /// leading dashes); anything else throws std::invalid_argument.
  static CliFlags parse(int argc, const char* const* argv,
                        const std::vector<std::string>& known);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name, const std::string& fallback) const;

  /// Strict integer: the whole value must parse (no trailing garbage,
  /// no whitespace) and fit in int64, else std::invalid_argument naming
  /// the flag and the offending value.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Strict integer constrained to [min, max] (the fallback is checked
  /// too, so an out-of-range default is a programming error that fails
  /// loudly).
  std::int64_t get_int(const std::string& name, std::int64_t fallback, std::int64_t min,
                       std::int64_t max) const;

  /// Strict double: same whole-token rule as get_int; rejects nan/inf
  /// spellings as well as trailing garbage.
  double get_double(const std::string& name, double fallback) const;

  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. --dims=12,8,4.
  std::vector<std::int64_t> get_int_list(const std::string& name,
                                         std::vector<std::int64_t> fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace torex
