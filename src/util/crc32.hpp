// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for parcel sealing.
//
// The integrity layer checksums every parcel that crosses a simulated
// channel, so the implementation must be deterministic across
// platforms, cheap (one table lookup per byte), and incremental (a
// sealed parcel hashes a header and a payload that live in separate
// buffers). No hardware CRC instructions: portability beats the last
// factor of ten here, and the bench (bench_integrity) keeps us honest
// about the overhead.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace torex {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

/// Incremental CRC-32 accumulator. Feed bytes with update(), read the
/// finalized digest with value(); value() does not consume the state,
/// so it can be sampled mid-stream.
class Crc32 {
 public:
  Crc32() = default;

  void update(const void* data, std::size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < len; ++i) {
      c = detail::kCrc32Table[static_cast<std::size_t>((c ^ bytes[i]) & 0xFFu)] ^ (c >> 8);
    }
    state_ = c;
  }

  /// Hashes the object representation of a trivially copyable value.
  template <typename T>
  void update_value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>, "can only hash trivially copyable values");
    update(&v, sizeof(T));
  }

  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a byte range.
inline std::uint32_t crc32(const void* data, std::size_t len) {
  Crc32 crc;
  crc.update(data, len);
  return crc.value();
}

}  // namespace torex
