// Small integer helpers shared across the library.
//
// Torus arithmetic needs a *mathematical* modulus (always non-negative)
// rather than C++'s truncated `%`, and schedule construction does a lot
// of exact divisions that we want to fail loudly when misused.
#pragma once

#include <cstdint>
#include <type_traits>

#include "util/assert.hpp"

namespace torex {

/// Floor modulus: result is in [0, m) for any integer value and m > 0.
template <typename T>
constexpr T floor_mod(T value, T m) {
  static_assert(std::is_integral_v<T>);
  T r = static_cast<T>(value % m);
  return static_cast<T>(r < 0 ? r + m : r);
}

/// Ceiling division for non-negative integers.
template <typename T>
constexpr T ceil_div(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return static_cast<T>((a + b - 1) / b);
}

/// Exact division: checked to have zero remainder.
template <typename T>
constexpr T exact_div(T a, T b) {
  TOREX_CHECK(b != 0 && a % b == 0, "exact_div with non-divisible operands");
  return static_cast<T>(a / b);
}

/// Integer power with small exponents (used by cost-model closed forms).
constexpr std::int64_t ipow(std::int64_t base, int exp) {
  std::int64_t r = 1;
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}

/// True when `value` is a positive multiple of `factor`.
constexpr bool is_positive_multiple_of(std::int64_t value, std::int64_t factor) {
  return value > 0 && value % factor == 0;
}

/// Smallest multiple of `factor` that is >= value (value >= 0).
constexpr std::int64_t round_up_to_multiple(std::int64_t value, std::int64_t factor) {
  return ceil_div(value, factor) * factor;
}

/// True when `value` is an integer power of two (and positive).
constexpr bool is_power_of_two(std::int64_t value) {
  return value > 0 && (value & (value - 1)) == 0;
}

/// Signed distance from `a` to `b` on a ring of size `n`, choosing the
/// representative in (-n/2, n/2]. Used by minimal torus routing.
constexpr std::int64_t ring_delta(std::int64_t a, std::int64_t b, std::int64_t n) {
  std::int64_t d = floor_mod(b - a, n);
  return d > n / 2 ? d - n : d;
}

/// Hop count from `a` to `b` on a ring of size `n` under minimal routing.
constexpr std::int64_t ring_distance(std::int64_t a, std::int64_t b, std::int64_t n) {
  std::int64_t d = ring_delta(a, b, n);
  return d < 0 ? -d : d;
}

}  // namespace torex
