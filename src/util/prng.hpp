// Deterministic PRNG for tests and workload generation.
//
// SplitMix64: tiny, fast, and reproducible across platforms — we never
// want a test sweep to depend on libstdc++'s distribution internals.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace torex {

/// SplitMix64 generator. Deterministic given the seed; suitable for
/// shuffles and workload synthesis, not cryptography.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). Modulo bias is below 2^-32 for the
  /// bounds used here (node counts), irrelevant for tests/workloads.
  std::uint64_t next_below(std::uint64_t bound) {
    TOREX_REQUIRE(bound > 0, "bound must be positive");
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// Fisher–Yates shuffle with a SplitMix64 source.
template <typename Container>
void deterministic_shuffle(Container& items, SplitMix64& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

}  // namespace torex
