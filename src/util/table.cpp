#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace torex {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)), align_(header_.size(), Align::kRight) {
  TOREX_REQUIRE(!header_.empty(), "table needs at least one column");
}

TextTable& TextTable::start_row() {
  if (!rows_.empty()) {
    TOREX_CHECK(rows_.back().size() == header_.size(), "previous row incomplete");
  }
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(std::string text) {
  TOREX_CHECK(!rows_.empty(), "cell() before start_row()");
  TOREX_CHECK(rows_.back().size() < header_.size(), "too many cells in row");
  rows_.back().push_back(std::move(text));
  return *this;
}

TextTable& TextTable::cell(std::int64_t value) { return cell(with_thousands(value)); }

TextTable& TextTable::cell(double value, int precision) {
  return cell(compact_double(value, precision));
}

void TextTable::set_align(std::size_t column, Align align) {
  TOREX_REQUIRE(column < align_.size(), "column out of range");
  align_[column] = align;
}

std::vector<std::size_t> TextTable::column_widths() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

namespace {

void print_cell(std::ostream& os, const std::string& text, std::size_t width,
                TextTable::Align align) {
  if (align == TextTable::Align::kLeft) {
    os << std::left << std::setw(static_cast<int>(width)) << text;
  } else {
    os << std::right << std::setw(static_cast<int>(width)) << text;
  }
}

}  // namespace

void TextTable::print(std::ostream& os) const {
  const auto widths = column_widths();
  auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  rule();
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << ' ';
    print_cell(os, header_[c], widths[c], Align::kLeft);
    os << " |";
  }
  os << '\n';
  rule();
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << ' ';
      print_cell(os, c < row.size() ? row[c] : std::string{}, widths[c], align_[c]);
      os << " |";
    }
    os << '\n';
  }
  rule();
}

void TextTable::print_markdown(std::ostream& os) const {
  const auto widths = column_widths();
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << ' ';
    print_cell(os, header_[c], widths[c], Align::kLeft);
    os << " |";
  }
  os << "\n|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (align_[c] == Align::kRight ? std::string(widths[c] + 1, '-') + ":"
                                      : std::string(widths[c] + 2, '-'))
       << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << ' ';
      print_cell(os, c < row.size() ? row[c] : std::string{}, widths[c], align_[c]);
      os << " |";
    }
    os << '\n';
  }
}

std::string with_thousands(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  out.append(digits, 0, lead);
  for (std::size_t i = lead; i < digits.size(); i += 3) {
    out.push_back(',');
    out.append(digits, i, 3);
  }
  return negative ? "-" + out : out;
}

std::string compact_double(double value, int max_precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(max_precision) << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace torex
