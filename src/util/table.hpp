// Plain-text / markdown table rendering for bench output.
//
// The benches reproduce the paper's tables; this gives them a single,
// consistent way to print aligned columns to stdout.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace torex {

/// Column-aligned text table. Cells are strings; numeric convenience
/// overloads format with a fixed precision.
class TextTable {
 public:
  enum class Align { kLeft, kRight };

  /// Starts a table with the given header row.
  explicit TextTable(std::vector<std::string> header);

  /// Begins a new (empty) body row.
  TextTable& start_row();

  /// Appends one cell to the current row.
  TextTable& cell(std::string text);
  TextTable& cell(std::int64_t value);
  TextTable& cell(double value, int precision = 3);

  /// Sets the alignment of a column (default: right for all).
  void set_align(std::size_t column, Align align);

  /// Renders with box-drawing separators.
  void print(std::ostream& os) const;

  /// Renders as a GitHub-flavored markdown table.
  void print_markdown(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::size_t> column_widths() const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> align_;
};

/// Formats a time expressed in abstract "cycles"/unit costs with
/// thousands separators, e.g. 1234567 -> "1,234,567".
std::string with_thousands(std::int64_t value);

/// Formats a double compactly (trailing zeros trimmed).
std::string compact_double(double value, int max_precision = 4);

}  // namespace torex
