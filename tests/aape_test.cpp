// Tests for the schedule object: phase structure, step counts, partner
// geometry, and the forwarding predicates (paper §3.2-§3.4, §4).
#include <gtest/gtest.h>

#include "core/aape.hpp"
#include "core/schedule_stats.hpp"
#include "topology/group.hpp"

namespace torex {
namespace {

TEST(AapeTest, RejectsInvalidShapes) {
  EXPECT_THROW(SuhShinAape(TorusShape({16})), std::invalid_argument);       // 1D
  EXPECT_THROW(SuhShinAape(TorusShape({12, 10})), std::invalid_argument);   // not mult of 4
  EXPECT_THROW(SuhShinAape(TorusShape({8, 12})), std::invalid_argument);    // unsorted
  EXPECT_NO_THROW(SuhShinAape(TorusShape({12, 8})));
  EXPECT_NO_THROW(SuhShinAape(TorusShape({4, 4})));
}

TEST(AapeTest, PhaseStructure2D) {
  const SuhShinAape algo(TorusShape::make_2d(12, 12));
  EXPECT_EQ(algo.num_phases(), 4);
  EXPECT_EQ(algo.phase_kind(1), PhaseKind::kScatter);
  EXPECT_EQ(algo.phase_kind(2), PhaseKind::kScatter);
  EXPECT_EQ(algo.phase_kind(3), PhaseKind::kQuarterExchange);
  EXPECT_EQ(algo.phase_kind(4), PhaseKind::kPairExchange);
  // C/4 - 1 = 2 steps in each scatter phase; 2 steps in phases 3-4.
  EXPECT_EQ(algo.steps_in_phase(1), 2);
  EXPECT_EQ(algo.steps_in_phase(2), 2);
  EXPECT_EQ(algo.steps_in_phase(3), 2);
  EXPECT_EQ(algo.steps_in_phase(4), 2);
  // Total = C/2 + 2 (Table 1 startup count).
  EXPECT_EQ(algo.total_steps(), 12 / 2 + 2);
  EXPECT_EQ(algo.hops_per_step(1), 4);
  EXPECT_EQ(algo.hops_per_step(3), 2);
  EXPECT_EQ(algo.hops_per_step(4), 1);
}

TEST(AapeTest, StartupCountMatchesTable1AcrossShapes) {
  // Table 1: n(a1/4 + 1) steps for an a1 x ... x an torus (a1 largest).
  struct Case { std::vector<std::int32_t> extents; };
  for (const auto& c : {Case{{8, 8}}, Case{{16, 8}}, Case{{12, 12}},
                        Case{{12, 8, 4}}, Case{{8, 8, 8}}, Case{{8, 8, 4, 4}}}) {
    const TorusShape s(c.extents);
    const SuhShinAape algo(s);
    const int n = s.num_dims();
    const int a1 = s.extent(0);
    EXPECT_EQ(algo.total_steps(), n * (a1 / 4 + 1)) << s.to_string();
    for (int phase = 1; phase <= n; ++phase) {
      EXPECT_EQ(algo.steps_in_phase(phase), a1 / 4 - 1)
          << s.to_string() << " phase " << phase;
    }
  }
}

TEST(AapeTest, NonSquare2DStepCountUsesLargerDimension) {
  // 12x8: phases 1-2 must run C/4 - 1 = 2 steps with C = max(R, C) = 12;
  // the short rings finish after 1 step and idle (paper end of §3.2).
  const SuhShinAape algo(TorusShape::make_2d(12, 8));
  EXPECT_EQ(algo.steps_in_phase(1), 2);
  EXPECT_EQ(algo.steps_in_phase(2), 2);
}

TEST(AapeTest, ScatterPartnersAreStrideFourGroupMates) {
  const SuhShinAape algo(TorusShape::make_3d(12, 8, 4));
  const TorusShape& s = algo.shape();
  for (Rank p = 0; p < s.num_nodes(); ++p) {
    for (int phase = 1; phase <= algo.num_dims(); ++phase) {
      if (algo.steps_in_phase(phase) == 0) continue;
      // Nodes whose phase dimension has extent 4 form rings of length
      // one: they never send and their +-4 "partner" wraps to
      // themselves, so there is no geometry to check.
      if (s.extent(algo.direction(p, phase, 1).dim) == 4) continue;
      const Rank q = algo.partner(p, phase, 1);
      const Coord pc = s.coord_of(p);
      const Coord qc = s.coord_of(q);
      EXPECT_TRUE(same_group(pc, qc)) << "scatter partner must be in the same group";
      EXPECT_EQ(s.distance(pc, qc), 4);
    }
  }
}

TEST(AapeTest, QuarterPartnersStayInSubmeshAndPairUp) {
  const SuhShinAape algo(TorusShape::make_3d(8, 8, 4));
  const TorusShape& s = algo.shape();
  const int n = algo.num_dims();
  for (Rank p = 0; p < s.num_nodes(); ++p) {
    for (int step = 1; step <= n; ++step) {
      const Rank q = algo.partner(p, n + 1, step);
      EXPECT_TRUE(same_submesh(s.coord_of(p), s.coord_of(q)));
      EXPECT_EQ(s.distance(s.coord_of(p), s.coord_of(q)), 2);
      EXPECT_EQ(algo.partner(q, n + 1, step), p) << "quarter exchange must be pairwise";
    }
  }
}

TEST(AapeTest, PairPartnersStayInHalfSubmeshAndPairUp) {
  const SuhShinAape algo(TorusShape::make_3d(8, 8, 4));
  const TorusShape& s = algo.shape();
  const int n = algo.num_dims();
  for (Rank p = 0; p < s.num_nodes(); ++p) {
    for (int step = 1; step <= n; ++step) {
      const Rank q = algo.partner(p, n + 2, step);
      EXPECT_TRUE(same_half_submesh(s.coord_of(p), s.coord_of(q)));
      EXPECT_EQ(s.distance(s.coord_of(p), s.coord_of(q)), 1);
      EXPECT_EQ(algo.partner(q, n + 2, step), p) << "pair exchange must be pairwise";
    }
  }
}

TEST(AapeTest, ShouldSendNeverForwardsOwnBlocks) {
  // A block already at its destination must never be forwarded again in
  // the quarter / pair phases, and never along a dimension where it is
  // already aligned in scatter phases.
  const SuhShinAape algo(TorusShape::make_2d(8, 8));
  const TorusShape& s = algo.shape();
  for (Rank p = 0; p < s.num_nodes(); ++p) {
    const Block own{p, p};
    for (int phase = 1; phase <= algo.num_phases(); ++phase) {
      for (int step = 1; step <= algo.steps_in_phase(phase); ++step) {
        EXPECT_FALSE(algo.should_send(p, phase, step, own));
      }
    }
  }
}

TEST(AapeTest, ScatterPredicateComparesSubmeshAlongPhaseDimension) {
  const SuhShinAape algo(TorusShape::make_2d(12, 12), PatternConvention::kPaper2D);
  const TorusShape& s = algo.shape();
  // Node (0,0) has key 0 and scatters along +c in phase 1: blocks for
  // destinations in SM columns != 0 must be forwarded, others not.
  const Rank p = s.rank_of({0, 0});
  EXPECT_TRUE(algo.should_send(p, 1, 1, Block{p, s.rank_of({0, 4})}));
  EXPECT_TRUE(algo.should_send(p, 1, 1, Block{p, s.rank_of({5, 11})}));
  EXPECT_FALSE(algo.should_send(p, 1, 1, Block{p, s.rank_of({8, 3})}));  // same SM column
  // Phase 2 for key 0 goes +r: SM rows != 0 forwarded.
  EXPECT_TRUE(algo.should_send(p, 2, 1, Block{p, s.rank_of({4, 0})}));
  EXPECT_FALSE(algo.should_send(p, 2, 1, Block{p, s.rank_of({2, 0})}));
}

TEST(AapeTest, FourByFourTorusHasOnlyExchangePhases) {
  const SuhShinAape algo(TorusShape::make_2d(4, 4));
  EXPECT_EQ(algo.steps_in_phase(1), 0);
  EXPECT_EQ(algo.steps_in_phase(2), 0);
  EXPECT_EQ(algo.steps_in_phase(3), 2);
  EXPECT_EQ(algo.steps_in_phase(4), 2);
  EXPECT_EQ(algo.total_steps(), 4);
}

TEST(AapeTest, ScheduleStatsQuantifyPartnerStability) {
  // Paper claim (ii): destinations stay fixed for whole scatter phases,
  // and the number of distinct partners is Theta(n), not Theta(N).
  const ScheduleStats small = compute_schedule_stats(SuhShinAape(TorusShape({16, 16})));
  EXPECT_EQ(small.total_steps, 10);
  EXPECT_LE(small.max_distinct_partners, 6);  // 3n for n = 2
  EXPECT_GE(small.longest_fixed_run, 3);      // a1/4 - 1 scatter steps

  const ScheduleStats cube = compute_schedule_stats(SuhShinAape(TorusShape({12, 12, 12})));
  EXPECT_LE(cube.max_distinct_partners, 9);  // 3n for n = 3
  EXPECT_GE(cube.longest_fixed_run, 2);

  // Distinct partners are independent of torus size: 32x32 matches 8x8.
  const ScheduleStats big = compute_schedule_stats(SuhShinAape(TorusShape({32, 32})));
  const ScheduleStats tiny = compute_schedule_stats(SuhShinAape(TorusShape({8, 8})));
  EXPECT_EQ(big.max_distinct_partners, tiny.max_distinct_partners);
}

TEST(AapeTest, StartupStepsClassifyColdAndWarm) {
  // 16x16: each scatter phase has 3 steps (first cold, rest warm); all
  // 4 exchange steps are cold. Cold = 2 + 4, warm = 2 * 2.
  const CachedStartupCost c = classify_startup_steps(SuhShinAape(TorusShape({16, 16})));
  EXPECT_EQ(c.cold_steps, 6);
  EXPECT_EQ(c.warm_steps, 4);
  EXPECT_NEAR(c.total(100.0, 0.2), 6 * 100.0 + 4 * 20.0, 1e-9);
  // On a 4x4 torus every step is an exchange step: all cold.
  const CachedStartupCost tiny = classify_startup_steps(SuhShinAape(TorusShape({4, 4})));
  EXPECT_EQ(tiny.warm_steps, 0);
  EXPECT_EQ(tiny.cold_steps, 4);
}

TEST(AapeTest, ConventionDefaults) {
  EXPECT_EQ(SuhShinAape(TorusShape::make_2d(8, 8)).convention(),
            PatternConvention::kPaper2D);
  EXPECT_EQ(SuhShinAape(TorusShape::make_3d(8, 8, 4)).convention(),
            PatternConvention::kNested);
}

}  // namespace
}  // namespace torex
