// Tests for the application-facing API layers: payload exchange, the
// Alltoallv-style custom workloads, the communicator facade, and
// schedule serialization.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/exchange_engine.hpp"
#include "core/payload_exchange.hpp"
#include "core/schedule_io.hpp"
#include "runtime/communicator.hpp"
#include "util/prng.hpp"

namespace torex {
namespace {

// ---------------------------------------------------------------------------
// Payload exchange.
// ---------------------------------------------------------------------------

TEST(PayloadExchangeTest, DeliversEveryPayload) {
  const SuhShinAape algo(TorusShape::make_2d(8, 8));
  const Rank N = algo.shape().num_nodes();
  ParcelBuffers<std::int64_t> parcels(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    for (Rank q = 0; q < N; ++q) {
      parcels[static_cast<std::size_t>(p)].push_back(
          {Block{p, q}, static_cast<std::int64_t>(p) * 1000 + q});
    }
  }
  const auto delivered = exchange_payloads(algo, std::move(parcels));
  for (Rank q = 0; q < N; ++q) {
    for (const auto& parcel : delivered[static_cast<std::size_t>(q)]) {
      EXPECT_EQ(parcel.payload, static_cast<std::int64_t>(parcel.block.origin) * 1000 + q);
    }
  }
}

TEST(PayloadExchangeTest, MoveOnlyPayloadsWork) {
  const SuhShinAape algo(TorusShape::make_2d(4, 4));
  const Rank N = algo.shape().num_nodes();
  ParcelBuffers<std::unique_ptr<int>> parcels(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    for (Rank q = 0; q < N; ++q) {
      parcels[static_cast<std::size_t>(p)].push_back(
          {Block{p, q}, std::make_unique<int>(p * 100 + q)});
    }
  }
  const auto delivered = exchange_payloads(algo, std::move(parcels));
  for (Rank q = 0; q < N; ++q) {
    for (const auto& parcel : delivered[static_cast<std::size_t>(q)]) {
      ASSERT_NE(parcel.payload, nullptr);
      EXPECT_EQ(*parcel.payload, parcel.block.origin * 100 + q);
    }
  }
}

TEST(PayloadExchangeTest, RejectsMalformedInput) {
  const SuhShinAape algo(TorusShape::make_2d(4, 4));
  ParcelBuffers<int> too_few(3);
  EXPECT_THROW(exchange_payloads(algo, std::move(too_few)), std::invalid_argument);

  ParcelBuffers<int> wrong_origin(16);
  for (Rank p = 0; p < 16; ++p) {
    for (Rank q = 0; q < 16; ++q) {
      wrong_origin[static_cast<std::size_t>(p)].push_back({Block{0, q}, 0});
    }
  }
  EXPECT_THROW(exchange_payloads(algo, std::move(wrong_origin)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Alltoallv-style custom workloads.
// ---------------------------------------------------------------------------

TEST(CustomWorkloadTest, SparseExchangeDelivers) {
  // Only a random 20% of (origin, dest) pairs carry a block.
  const SuhShinAape algo(TorusShape::make_2d(12, 8));
  const Rank N = algo.shape().num_nodes();
  SplitMix64 rng(2024);
  std::vector<std::vector<Block>> initial(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    for (Rank d = 0; d < N; ++d) {
      if (rng.next_double() < 0.2) initial[static_cast<std::size_t>(p)].push_back(Block{p, d});
    }
  }
  ExchangeEngine engine(algo);
  EXPECT_NO_THROW(engine.run_custom(std::move(initial)));
}

TEST(CustomWorkloadTest, DuplicateBlocksPerPairDeliver) {
  // Alltoallv with counts > 1: several blocks per (origin, dest).
  const SuhShinAape algo(TorusShape::make_2d(8, 8));
  const Rank N = algo.shape().num_nodes();
  std::vector<std::vector<Block>> initial(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    for (Rank d = 0; d < N; d += 3) {
      for (int copy = 0; copy < 1 + (p + d) % 3; ++copy) {
        initial[static_cast<std::size_t>(p)].push_back(Block{p, d});
      }
    }
  }
  ExchangeEngine engine(algo);
  EXPECT_NO_THROW(engine.run_custom(std::move(initial)));
}

TEST(CustomWorkloadTest, EmptyWorkloadIsANoOp) {
  const SuhShinAape algo(TorusShape::make_2d(8, 8));
  ExchangeEngine engine(algo);
  const ExchangeTrace trace =
      engine.run_custom(std::vector<std::vector<Block>>(64));
  for (const auto& step : trace.steps) {
    EXPECT_EQ(step.total_blocks, 0);
  }
}

TEST(CustomWorkloadTest, SingleSourceScatterUsesOnlyItsRings) {
  // One node scatters to everyone (personalized one-to-all): works and
  // moves exactly N-1 blocks... plus nothing from anyone else.
  const SuhShinAape algo(TorusShape::make_2d(8, 8));
  const Rank N = algo.shape().num_nodes();
  std::vector<std::vector<Block>> initial(static_cast<std::size_t>(N));
  for (Rank d = 0; d < N; ++d) initial[0].push_back(Block{0, d});
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_custom(std::move(initial));
  std::int64_t moved = 0;
  for (const auto& step : trace.steps) moved += step.total_blocks;
  EXPECT_GT(moved, 0);
}

TEST(CustomWorkloadTest, RejectsForeignOrigins) {
  const SuhShinAape algo(TorusShape::make_2d(4, 4));
  std::vector<std::vector<Block>> initial(16);
  initial[3].push_back(Block{4, 7});  // block claims origin 4 but sits at 3
  ExchangeEngine engine(algo);
  EXPECT_THROW(engine.run_custom(std::move(initial)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Communicator facade.
// ---------------------------------------------------------------------------

TEST(CommunicatorTest, AlltoallPermutesCorrectly) {
  TorusCommunicator comm(TorusShape::make_2d(8, 8), CostParams::balanced());
  const Rank N = comm.size();
  std::vector<std::vector<int>> send(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    for (Rank q = 0; q < N; ++q) {
      send[static_cast<std::size_t>(p)].push_back(p * 1000 + q);
    }
  }
  for (auto algorithm : {AlltoallAlgorithm::kSuhShin, AlltoallAlgorithm::kRing,
                         AlltoallAlgorithm::kDirect, AlltoallAlgorithm::kBruck,
                         AlltoallAlgorithm::kAuto}) {
    double modeled = 0.0;
    const auto recv = comm.alltoall(send, algorithm, 64, &modeled);
    EXPECT_GT(modeled, 0.0);
    for (Rank q = 0; q < N; ++q) {
      for (Rank p = 0; p < N; ++p) {
        EXPECT_EQ(recv[static_cast<std::size_t>(q)][static_cast<std::size_t>(p)],
                  p * 1000 + q);
      }
    }
  }
}

TEST(CommunicatorTest, AutoPrefersSuhShinOnValidShapes) {
  // With the balanced parameters the combining schedule dominates both
  // baselines on any reasonable torus.
  TorusCommunicator comm(TorusShape::make_2d(16, 16), CostParams::balanced());
  EXPECT_EQ(comm.select(64), AlltoallAlgorithm::kSuhShin);
  EXPECT_TRUE(comm.suh_shin_applicable());
}

TEST(CommunicatorTest, FallsBackWhenShapeNotApplicable) {
  TorusCommunicator comm(TorusShape({10, 6}), CostParams::balanced());
  EXPECT_FALSE(comm.suh_shin_applicable());
  const AlltoallAlgorithm chosen = comm.select(64);
  EXPECT_NE(chosen, AlltoallAlgorithm::kSuhShin);
  EXPECT_THROW(comm.estimate(AlltoallAlgorithm::kSuhShin, 64), std::invalid_argument);
}

TEST(CommunicatorTest, EstimatesOrderSensibly) {
  TorusCommunicator comm(TorusShape::make_2d(12, 12), CostParams::balanced());
  const double ours = comm.estimate(AlltoallAlgorithm::kSuhShin, 64).total();
  const double ring = comm.estimate(AlltoallAlgorithm::kRing, 64).total();
  EXPECT_LT(ours, ring);
}

TEST(CommunicatorTest, PaddedSuhShinRunsOnAwkwardShapes) {
  // A 10x6 torus cannot run the plain schedule; the padded variant
  // must both price and execute correctly.
  TorusCommunicator comm(TorusShape({10, 6}), CostParams::balanced());
  const Rank N = comm.size();
  std::vector<std::vector<int>> send(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    for (Rank q = 0; q < N; ++q) send[static_cast<std::size_t>(p)].push_back(p * 100 + q);
  }
  double modeled = 0.0;
  const auto recv = comm.alltoall(send, AlltoallAlgorithm::kSuhShinPadded, 64, &modeled);
  EXPECT_GT(modeled, 0.0);
  for (Rank q = 0; q < N; ++q) {
    for (Rank p = 0; p < N; ++p) {
      EXPECT_EQ(recv[static_cast<std::size_t>(q)][static_cast<std::size_t>(p)], p * 100 + q);
    }
  }
  // On a qualifying shape, auto never picks the padded variant.
  TorusCommunicator square(TorusShape({8, 8}), CostParams::balanced());
  EXPECT_NE(square.select(64), AlltoallAlgorithm::kSuhShinPadded);
}

TEST(CommunicatorTest, BruckEstimateAvailableOnAnyShape) {
  // Bruck has no multiple-of-four requirement: it must price (and be
  // selectable) on shapes the Suh-Shin schedule rejects.
  TorusCommunicator comm(TorusShape({10, 6}), CostParams::balanced());
  const double bruck = comm.estimate(AlltoallAlgorithm::kBruck, 64).total();
  EXPECT_GT(bruck, 0.0);
  const AlltoallAlgorithm chosen = comm.select(64);
  EXPECT_TRUE(chosen == AlltoallAlgorithm::kBruck || chosen == AlltoallAlgorithm::kRing ||
              chosen == AlltoallAlgorithm::kDirect);
}

TEST(CommunicatorTest, ToStringNames) {
  EXPECT_EQ(to_string(AlltoallAlgorithm::kSuhShin), "suh-shin");
  EXPECT_EQ(to_string(AlltoallAlgorithm::kAuto), "auto");
  EXPECT_EQ(to_string(AlltoallAlgorithm::kBruck), "bruck");
  EXPECT_EQ(to_string(AlltoallAlgorithm::kRing), "ring");
  EXPECT_EQ(to_string(AlltoallAlgorithm::kDirect), "direct");
}

// ---------------------------------------------------------------------------
// Schedule serialization.
// ---------------------------------------------------------------------------

TEST(ScheduleIoTest, RoundTripsAcrossShapes) {
  for (auto extents : {std::vector<std::int32_t>{8, 8}, {12, 8}, {8, 8, 4}}) {
    const SuhShinAape algo{TorusShape{extents}};
    std::stringstream stream;
    write_schedule(stream, algo);
    const ScheduleDescription parsed = read_schedule(stream);
    EXPECT_TRUE(matches(parsed, algo)) << TorusShape(extents).to_string();
  }
}

TEST(ScheduleIoTest, DetectsTampering) {
  const SuhShinAape algo(TorusShape::make_2d(8, 8));
  std::stringstream stream;
  write_schedule(stream, algo);
  std::string text = stream.str();
  // Flip one direction token.
  const auto pos = text.find(" +1");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 1] = '-';
  std::stringstream tampered(text);
  const ScheduleDescription parsed = read_schedule(tampered);
  EXPECT_FALSE(matches(parsed, algo));
}

TEST(ScheduleIoTest, RejectsGarbage) {
  std::stringstream empty("");
  EXPECT_THROW(read_schedule(empty), std::invalid_argument);
  std::stringstream bad_header("hello world");
  EXPECT_THROW(read_schedule(bad_header), std::invalid_argument);
  std::stringstream bad_body("torex-schedule v1\nshape 8x8\nconvention paper2d\nnonsense 1");
  EXPECT_THROW(read_schedule(bad_body), std::invalid_argument);
}

TEST(ScheduleIoTest, SurvivesRandomGarbage) {
  // Fuzz-ish robustness: arbitrary byte soup must either parse or throw
  // std::invalid_argument / std::exception — never crash or hang.
  SplitMix64 rng(0xF00D);
  const std::string alphabet = "torex-schedule v1\nshape 8x\n dirs phase +- 0123456789 kind";
  for (int round = 0; round < 200; ++round) {
    std::string soup;
    const std::size_t len = rng.next_below(200);
    for (std::size_t i = 0; i < len; ++i) {
      soup.push_back(alphabet[static_cast<std::size_t>(rng.next_below(alphabet.size()))]);
    }
    std::stringstream stream(soup);
    try {
      (void)read_schedule(stream);
    } catch (const std::exception&) {
      // expected for malformed input
    }
  }
}

TEST(ScheduleIoTest, CommentsAndBlankLinesIgnored) {
  const SuhShinAape algo(TorusShape::make_2d(4, 4));
  std::stringstream stream;
  write_schedule(stream, algo);
  const std::string text = "# exported schedule\n\n" + stream.str();
  std::stringstream annotated(text);
  EXPECT_TRUE(matches(read_schedule(annotated), algo));
}

}  // namespace
}  // namespace torex
