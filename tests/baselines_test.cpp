// Tests for the non-combining baselines: direct exchange and the
// Gray-code ring exchange.
#include <gtest/gtest.h>

#include <set>

#include "baselines/bruck.hpp"
#include "baselines/dimwise.hpp"
#include "baselines/direct_exchange.hpp"
#include "baselines/ring_exchange.hpp"
#include "core/exchange_engine.hpp"
#include "costmodel/models.hpp"
#include "sim/contention.hpp"
#include "sim/cost_simulator.hpp"

namespace torex {
namespace {

// ---------------------------------------------------------------------------
// Gray-code Hamiltonian ring embedding.
// ---------------------------------------------------------------------------

struct GrayCase {
  std::vector<std::int32_t> extents;
};

class GrayCodeTest : public ::testing::TestWithParam<GrayCase> {};

TEST_P(GrayCodeTest, VisitsEveryNodeOnce) {
  const TorusShape s(GetParam().extents);
  std::set<Rank> seen;
  for (std::int64_t k = 0; k < s.num_nodes(); ++k) {
    seen.insert(s.rank_of(gray_coord(s, k)));
  }
  EXPECT_EQ(static_cast<Rank>(seen.size()), s.num_nodes());
}

TEST_P(GrayCodeTest, ConsecutiveCodesAreTorusNeighbors) {
  const TorusShape s(GetParam().extents);
  for (std::int64_t k = 0; k < s.num_nodes(); ++k) {
    const Coord a = gray_coord(s, k);
    const Coord b = gray_coord(s, (k + 1) % s.num_nodes());
    EXPECT_EQ(s.distance(a, b), 1) << "positions " << k << " -> " << (k + 1) % s.num_nodes();
  }
}

TEST_P(GrayCodeTest, PositionIsInverseOfCoord) {
  const TorusShape s(GetParam().extents);
  for (std::int64_t k = 0; k < s.num_nodes(); ++k) {
    EXPECT_EQ(gray_position(s, gray_coord(s, k)), k);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GrayCodeTest,
                         ::testing::Values(GrayCase{{4, 4}}, GrayCase{{8, 6}},
                                           GrayCase{{2, 2}}, GrayCase{{6, 4, 2}},
                                           GrayCase{{4, 4, 4}}, GrayCase{{2, 2, 2, 2}},
                                           GrayCase{{12, 8}}));

TEST(GrayCodeTest, RejectsOddExtents) {
  EXPECT_THROW(RingExchange(TorusShape({5, 4})), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Ring exchange.
// ---------------------------------------------------------------------------

TEST(RingExchangeTest, CompletesOnSmallTori) {
  for (auto extents : {std::vector<std::int32_t>{4, 4}, {8, 4}, {4, 4, 4}}) {
    RingExchange ring((TorusShape(extents)));
    EXPECT_NO_THROW(ring.run_verified());
  }
}

TEST(RingExchangeTest, TraceIsContentionFree) {
  RingExchange ring(TorusShape::make_2d(8, 4));
  const ExchangeTrace trace = ring.run_verified();
  const ContentionReport report = check_trace_contention(ring.torus(), trace);
  EXPECT_TRUE(report.contention_free) << report.first_conflict.value_or("");
}

TEST(RingExchangeTest, AnalyticTraceMatchesSimulated) {
  RingExchange ring(TorusShape::make_2d(8, 4));
  const ExchangeTrace simulated = ring.run_verified();
  const ExchangeTrace analytic = ring.analytic_trace();
  ASSERT_EQ(simulated.steps.size(), analytic.steps.size());
  for (std::size_t i = 0; i < simulated.steps.size(); ++i) {
    EXPECT_EQ(simulated.steps[i].max_blocks_per_node, analytic.steps[i].max_blocks_per_node)
        << "step " << i;
    EXPECT_EQ(simulated.steps[i].total_blocks, analytic.steps[i].total_blocks) << "step " << i;
    EXPECT_EQ(simulated.steps[i].hops, analytic.steps[i].hops);
  }
}

TEST(RingExchangeTest, NeedsQuadraticallyMoreTransmissionThanCombining) {
  // The motivating comparison: on a 12x12 torus the ring pipeline moves
  // N(N-1)/2 blocks through the busiest node vs RC(C+4)/4 for the
  // proposed algorithm.
  const TorusShape s = TorusShape::make_2d(12, 12);
  RingExchange ring(s);
  const ExchangeTrace ring_trace = ring.analytic_trace();
  const SuhShinAape algo(s);
  ExchangeEngine engine(algo);
  const ExchangeTrace ours = engine.run_verified();
  EXPECT_EQ(ring_trace.total_max_blocks(), 144 * 143 / 2);
  EXPECT_EQ(ours.total_max_blocks(), 576);
  EXPECT_GT(ring_trace.total_max_blocks(), 10 * ours.total_max_blocks());
}

// ---------------------------------------------------------------------------
// Direct exchange.
// ---------------------------------------------------------------------------

TEST(DirectExchangeTest, DeliversEveryBlockExactlyOnce) {
  for (auto extents : {std::vector<std::int32_t>{4, 4}, {8, 8}, {4, 4, 4}}) {
    DirectExchange direct((TorusShape(extents)));
    EXPECT_NO_THROW(direct.verify());
  }
}

TEST(DirectExchangeTest, HasNMinusOneSteps) {
  DirectExchange direct(TorusShape::make_2d(8, 8));
  EXPECT_EQ(direct.steps().size(), 63u);
  for (const auto& step : direct.steps()) {
    EXPECT_EQ(step.messages.size(), 64u);
    EXPECT_EQ(step.blocks_per_message, 1);
  }
}

TEST(DirectExchangeTest, SuffersChannelContention) {
  // Dimension-ordered direct traffic is *not* contention-free on a
  // torus of this size — the very problem message combining removes.
  DirectExchange direct(TorusShape::make_2d(8, 8));
  EXPECT_GT(direct.worst_channel_load(), 1);
}

TEST(DirectExchangeTest, CongestionPricingExceedsIdealModel) {
  const TorusShape s = TorusShape::make_2d(8, 8);
  DirectExchange direct(s);
  const CostParams p = CostParams::balanced();
  const CostBreakdown priced = price_routed_steps(direct.torus(), direct.steps(), p);
  const CostBreakdown ideal = direct_ideal_cost(s, p);
  EXPECT_NEAR(priced.startup, ideal.startup, 1e-9);
  EXPECT_GE(priced.transmission, ideal.transmission);
}

// ---------------------------------------------------------------------------
// Bruck exchange.
// ---------------------------------------------------------------------------

TEST(BruckExchangeTest, DeliversOnPowerOfTwoAndOtherSizes) {
  for (auto extents : {std::vector<std::int32_t>{4, 4}, {8, 8}, {12, 12}, {6, 4},
                       {4, 4, 4}}) {
    BruckExchange bruck{TorusShape{extents}};
    EXPECT_NO_THROW(bruck.run_verified()) << TorusShape(extents).to_string();
  }
}

TEST(BruckExchangeTest, HasLogarithmicStepCount) {
  EXPECT_EQ(BruckExchange(TorusShape({8, 8})).num_steps(), 6);     // log2(64)
  EXPECT_EQ(BruckExchange(TorusShape({16, 16})).num_steps(), 8);   // log2(256)
  EXPECT_EQ(BruckExchange(TorusShape({12, 12})).num_steps(), 8);   // ceil(log2 144)
  EXPECT_EQ(BruckExchange(TorusShape({4, 4})).num_steps(), 4);
}

TEST(BruckExchangeTest, MessageSizesAreAtMostHalfTheBlocks) {
  BruckExchange bruck(TorusShape({8, 8}));
  const auto steps = bruck.run_verified();
  for (const auto& step : steps) {
    ASSERT_EQ(step.messages.size(), step.message_blocks.size());
    for (std::size_t i = 0; i < step.messages.size(); ++i) {
      EXPECT_LE(step.blocks_of(i), 32);  // N/2 for N = 64
      EXPECT_GT(step.blocks_of(i), 0);
    }
  }
}

TEST(BruckExchangeTest, FewerStartupsButCongestionLosesToCombiningOnTorus) {
  // Bruck needs only ceil(log2 N) startups and even *fewer* nominal
  // critical-path blocks than the combining schedule (N/2 * log2 N =
  // 1024 vs 1280 on 16x16) — its weakness on a torus is that rank-space
  // partners are physically distant, so messages contend: the
  // congestion-priced transmission is several times the proposed
  // algorithm's, and the priced total loses despite the startup edge.
  const TorusShape shape = TorusShape::make_2d(16, 16);
  BruckExchange bruck(shape);
  EXPECT_LT(bruck.num_steps(), 10);  // proposed needs C/2 + 2 = 10
  EXPECT_EQ(bruck.critical_path_blocks(), 1024);
  const CostParams p = CostParams::balanced();
  const CostBreakdown priced = price_routed_steps(bruck.torus(), bruck.run_verified(), p);
  const CostBreakdown ours = proposed_cost_nd(shape, p);
  EXPECT_GT(priced.transmission, 2.0 * ours.transmission);
  EXPECT_GT(priced.total(), ours.total());
}

TEST(BruckExchangeTest, CongestionPricingReflectsTorusMismatch) {
  // Bruck's rank-space partners are far away in the torus, so its
  // congestion-priced transmission exceeds its ideal (contention-free)
  // value.
  const TorusShape shape = TorusShape::make_2d(8, 8);
  BruckExchange bruck(shape);
  const CostParams p = CostParams::balanced();
  const auto steps = bruck.run_verified();
  const CostBreakdown priced = price_routed_steps(bruck.torus(), steps, p);
  // Ideal: sum over steps of max blocks * m * t_c.
  double ideal = 0.0;
  for (const auto& step : steps) {
    std::int64_t worst = 0;
    for (std::size_t i = 0; i < step.messages.size(); ++i) {
      worst = std::max(worst, step.blocks_of(i));
    }
    ideal += static_cast<double>(worst) * static_cast<double>(p.m) * p.t_c;
  }
  EXPECT_GT(priced.transmission, ideal);
}

// ---------------------------------------------------------------------------
// Dimension-wise recursive-doubling exchange.
// ---------------------------------------------------------------------------

TEST(DimwiseExchangeTest, DeliversOnPowerOfTwoShapes) {
  for (auto extents : {std::vector<std::int32_t>{4, 4}, {8, 8}, {16, 4}, {4, 4, 4},
                       {8, 8, 2}}) {
    DimwiseExchange dimwise{TorusShape{extents}};
    EXPECT_NO_THROW(dimwise.run_verified()) << TorusShape(extents).to_string();
  }
}

TEST(DimwiseExchangeTest, RejectsNonPowerOfTwoExtents) {
  EXPECT_THROW(DimwiseExchange(TorusShape({12, 8})), std::invalid_argument);
  EXPECT_THROW(DimwiseExchange(TorusShape({8, 1})), std::invalid_argument);
}

TEST(DimwiseExchangeTest, StepCountIsSumOfLogs) {
  EXPECT_EQ(DimwiseExchange(TorusShape({8, 8})).num_steps(), 6);
  EXPECT_EQ(DimwiseExchange(TorusShape({16, 4})).num_steps(), 6);
  EXPECT_EQ(DimwiseExchange(TorusShape({4, 4, 4})).num_steps(), 6);
}

TEST(DimwiseExchangeTest, SuffersContentionWithoutScheduling) {
  // The point of the baseline: digit correction alone, without the
  // paper's mod-4 direction scheduling, overlaps neighbors' paths.
  // Step at hop 2^k has loads up to 2^k on an 8-ring (the +4 step's
  // messages tile since 2^k == extent/2 pairs them; the +2 step loads 2).
  DimwiseExchange dimwise(TorusShape({8, 8}));
  EXPECT_GT(dimwise.worst_channel_load(), 1);
}

TEST(DimwiseExchangeTest, FewStartupsButLosesPricedComparison) {
  // 16x16: 8 startups (vs the proposed 10) — but the unscheduled
  // contention makes its congestion-priced total worse.
  const TorusShape shape = TorusShape::make_2d(16, 16);
  DimwiseExchange dimwise(shape);
  EXPECT_EQ(dimwise.num_steps(), 8);
  const CostParams p = CostParams::balanced();
  const CostBreakdown priced = price_routed_steps(dimwise.torus(), dimwise.run_verified(), p);
  const CostBreakdown ours = proposed_cost_nd(shape, p);
  EXPECT_GT(priced.transmission, ours.transmission);
  EXPECT_GT(priced.total(), ours.total());
}

}  // namespace
}  // namespace torex
