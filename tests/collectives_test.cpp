// Tests for the derived collectives (scatter, gather, custom parcel
// workloads) built on the same schedule.
#include <gtest/gtest.h>

#include <string>

#include "core/payload_exchange.hpp"
#include "util/prng.hpp"

namespace torex {
namespace {

struct CollectiveCase {
  std::vector<std::int32_t> extents;
  Rank root;
};

class ScatterGatherTest : public ::testing::TestWithParam<CollectiveCase> {};

TEST_P(ScatterGatherTest, ScatterDeliversPerNodePayloads) {
  const SuhShinAape algo{TorusShape{GetParam().extents}};
  const Rank N = algo.shape().num_nodes();
  const Rank root = GetParam().root;
  std::vector<std::string> payloads;
  for (Rank d = 0; d < N; ++d) payloads.push_back("to-" + std::to_string(d));
  const auto received = scatter_payloads(algo, root, std::move(payloads));
  for (Rank d = 0; d < N; ++d) {
    EXPECT_EQ(received[static_cast<std::size_t>(d)], "to-" + std::to_string(d));
  }
}

TEST_P(ScatterGatherTest, GatherCollectsEveryPayloadAtRoot) {
  const SuhShinAape algo{TorusShape{GetParam().extents}};
  const Rank N = algo.shape().num_nodes();
  const Rank root = GetParam().root;
  std::vector<std::int64_t> payloads;
  for (Rank p = 0; p < N; ++p) payloads.push_back(p * 31 + 7);
  const auto gathered = gather_payloads(algo, root, std::move(payloads));
  ASSERT_EQ(static_cast<Rank>(gathered.size()), N);
  for (Rank p = 0; p < N; ++p) {
    EXPECT_EQ(gathered[static_cast<std::size_t>(p)], p * 31 + 7);
  }
}

TEST_P(ScatterGatherTest, GatherInvertsScatter) {
  const SuhShinAape algo{TorusShape{GetParam().extents}};
  const Rank N = algo.shape().num_nodes();
  const Rank root = GetParam().root;
  std::vector<std::int64_t> original;
  for (Rank d = 0; d < N; ++d) original.push_back(d * d + 3);
  auto scattered = scatter_payloads(algo, root, original);
  const auto regathered = gather_payloads(algo, root, std::move(scattered));
  EXPECT_EQ(regathered, original);
}

INSTANTIATE_TEST_SUITE_P(Cases, ScatterGatherTest,
                         ::testing::Values(CollectiveCase{{4, 4}, 0},
                                           CollectiveCase{{8, 8}, 0},
                                           CollectiveCase{{8, 8}, 37},
                                           CollectiveCase{{12, 8}, 95},
                                           CollectiveCase{{8, 4, 4}, 64}));

TEST(CustomParcelsTest, RandomSparseWorkloadWithPayloads) {
  const SuhShinAape algo(TorusShape::make_2d(8, 8));
  const Rank N = algo.shape().num_nodes();
  SplitMix64 rng(99);
  ParcelBuffers<std::uint64_t> parcels(static_cast<std::size_t>(N));
  std::int64_t created = 0;
  for (Rank p = 0; p < N; ++p) {
    const int count = static_cast<int>(rng.next_below(5));
    for (int i = 0; i < count; ++i) {
      const Rank d = static_cast<Rank>(rng.next_below(static_cast<std::uint64_t>(N)));
      parcels[static_cast<std::size_t>(p)].push_back(
          {Block{p, d}, (static_cast<std::uint64_t>(p) << 32) | static_cast<std::uint64_t>(d)});
      ++created;
    }
  }
  const auto delivered = exchange_parcels_custom(algo, std::move(parcels));
  std::int64_t received = 0;
  for (Rank q = 0; q < N; ++q) {
    for (const auto& parcel : delivered[static_cast<std::size_t>(q)]) {
      EXPECT_EQ(parcel.block.dest, q);
      EXPECT_EQ(parcel.payload,
                (static_cast<std::uint64_t>(parcel.block.origin) << 32) |
                    static_cast<std::uint64_t>(q));
      ++received;
    }
  }
  EXPECT_EQ(received, created);
}

TEST(CustomParcelsTest, SelfAddressedParcelsStayPut) {
  const SuhShinAape algo(TorusShape::make_2d(4, 4));
  ParcelBuffers<int> parcels(16);
  parcels[5].push_back({Block{5, 5}, 42});
  const auto delivered = exchange_parcels_custom(algo, std::move(parcels));
  ASSERT_EQ(delivered[5].size(), 1u);
  EXPECT_EQ(delivered[5][0].payload, 42);
}

TEST(CustomParcelsTest, RejectsRootAndSizeErrors) {
  const SuhShinAape algo(TorusShape::make_2d(4, 4));
  EXPECT_THROW(scatter_payloads(algo, -1, std::vector<int>(16)), std::invalid_argument);
  EXPECT_THROW(scatter_payloads(algo, 16, std::vector<int>(16)), std::invalid_argument);
  EXPECT_THROW(scatter_payloads(algo, 0, std::vector<int>(15)), std::invalid_argument);
  EXPECT_THROW(gather_payloads(algo, 0, std::vector<int>(17)), std::invalid_argument);
}

}  // namespace
}  // namespace torex
