// Tests for the closed-form cost models (Tables 1 and 2) and the trace
// pricer: the analytic forms must agree with each other where they
// overlap, and with measured traces everywhere.
#include <gtest/gtest.h>

#include "core/exchange_engine.hpp"
#include "costmodel/lower_bounds.hpp"
#include "costmodel/models.hpp"
#include "sim/cost_simulator.hpp"
#include "util/math.hpp"

namespace torex {
namespace {

constexpr double kTol = 1e-9;

CostParams unit_params() {
  CostParams p;
  p.t_s = 1.0;
  p.t_c = 1.0;
  p.t_l = 1.0;
  p.rho = 1.0;
  p.m = 1;
  return p;
}

TEST(CostModelTest, Table1TwoDimensionalRow) {
  const CostParams p = unit_params();
  const CostBreakdown c = proposed_cost_2d(12, 12, p);
  EXPECT_NEAR(c.startup, 12.0 / 2 + 2, kTol);                  // 8 startups
  EXPECT_NEAR(c.transmission, 144.0 / 4 * 16, kTol);           // RC(C+4)/4 = 576
  EXPECT_NEAR(c.rearrangement, 3.0 * 144, kTol);               // 432
  EXPECT_NEAR(c.propagation, 2.0 * 11, kTol);                  // 22
}

TEST(CostModelTest, Table1NdRowReducesTo2dRow) {
  const CostParams p = CostParams::balanced();
  for (auto [r, c] : {std::pair{8, 8}, std::pair{8, 12}, std::pair{12, 16}}) {
    // Paper 2D form takes R <= C; the n-D form takes a1 >= a2, so feed
    // it the transposed shape.
    const CostBreakdown two = proposed_cost_2d(r, c, p);
    const CostBreakdown nd = proposed_cost_nd(TorusShape({c, r}), p);
    EXPECT_NEAR(two.startup, nd.startup, kTol);
    EXPECT_NEAR(two.transmission, nd.transmission, kTol);
    EXPECT_NEAR(two.rearrangement, nd.rearrangement, kTol);
    EXPECT_NEAR(two.propagation, nd.propagation, kTol);
  }
}

TEST(CostModelTest, Table2ProposedColumnEqualsGeneralForm) {
  const CostParams p = CostParams::balanced();
  for (int d = 2; d <= 7; ++d) {
    const std::int64_t side = ipow(2, d);
    const CostBreakdown pow2 = proposed_cost_power_of_two(d, p);
    const CostBreakdown general = proposed_cost_2d(side, side, p);
    EXPECT_NEAR(pow2.startup, general.startup, kTol) << "d=" << d;
    EXPECT_NEAR(pow2.transmission, general.transmission, kTol) << "d=" << d;
    EXPECT_NEAR(pow2.rearrangement, general.rearrangement, kTol) << "d=" << d;
    EXPECT_NEAR(pow2.propagation, general.propagation, kTol) << "d=" << d;
  }
}

TEST(CostModelTest, Table2TsengSharesStartupAndTransmissionWithProposed) {
  // §5: "the startup time and message-transmission time are equivalent
  // to those in [13]".
  const CostParams p = CostParams::balanced();
  for (int d = 2; d <= 7; ++d) {
    const CostBreakdown tseng = tseng_cost(d, p);
    const CostBreakdown ours = proposed_cost_power_of_two(d, p);
    EXPECT_NEAR(tseng.startup, ours.startup, kTol);
    EXPECT_NEAR(tseng.transmission, ours.transmission, kTol);
    // ...but the proposed algorithm wins on rearrangement from d = 3
    // and on propagation from d = 4 (the forms tie at 14 t_l for d = 3).
    if (d >= 3) {
      EXPECT_LT(ours.rearrangement, tseng.rearrangement);
    }
    if (d >= 4) {
      EXPECT_LT(ours.propagation, tseng.propagation);
    }
  }
}

TEST(CostModelTest, Table2SuhYalamanchiliHasLowerStartupHigherElsewhere) {
  // §5 narrative: [9] wins on startups (O(d) vs O(2^d)); the proposed
  // algorithm wins on the other three components.
  const CostParams p = CostParams::balanced();
  for (int d = 4; d <= 8; ++d) {
    const CostBreakdown sy = suh_yalamanchili_cost(d, p);
    const CostBreakdown ours = proposed_cost_power_of_two(d, p);
    EXPECT_LT(sy.startup, ours.startup) << "d=" << d;
    EXPECT_GT(sy.transmission, ours.transmission) << "d=" << d;
    EXPECT_GT(sy.rearrangement, ours.rearrangement) << "d=" << d;
    EXPECT_GT(sy.propagation, ours.propagation) << "d=" << d;
  }
}

TEST(CostModelTest, RejectsInvalidArguments) {
  const CostParams p = CostParams::balanced();
  EXPECT_THROW(proposed_cost_2d(10, 12, p), std::invalid_argument);
  EXPECT_THROW(proposed_cost_2d(16, 12, p), std::invalid_argument);  // R > C
  EXPECT_THROW(proposed_cost_nd(TorusShape({8, 12}), p), std::invalid_argument);
  EXPECT_THROW(tseng_cost(1, p), std::invalid_argument);
  EXPECT_THROW(suh_yalamanchili_cost(0, p), std::invalid_argument);
}

struct PriceCase {
  std::vector<std::int32_t> extents;
};

class TracePricingTest : public ::testing::TestWithParam<PriceCase> {};

TEST_P(TracePricingTest, MeasuredTraceMatchesClosedForm) {
  // The central calibration check: pricing the engine's measured trace
  // with the model parameters reproduces Table 1's closed form exactly,
  // component by component.
  const TorusShape shape(GetParam().extents);
  const CostParams p = CostParams::balanced();
  const SuhShinAape algo(shape);
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  const CostBreakdown measured = price_trace(trace, p);
  const CostBreakdown analytic = proposed_cost_nd(shape, p);
  EXPECT_NEAR(measured.startup, analytic.startup, 1e-6);
  EXPECT_NEAR(measured.transmission, analytic.transmission, 1e-6);
  EXPECT_NEAR(measured.rearrangement, analytic.rearrangement, 1e-6);
  EXPECT_NEAR(measured.propagation, analytic.propagation, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TracePricingTest,
                         ::testing::Values(PriceCase{{8, 8}}, PriceCase{{12, 8}},
                                           PriceCase{{12, 12}}, PriceCase{{16, 16}},
                                           PriceCase{{8, 8, 4}}, PriceCase{{12, 8, 4}},
                                           PriceCase{{8, 8, 8}}, PriceCase{{8, 4, 4, 4}}));

TEST(CostModelTest, BreakdownTotalsAndAccumulate) {
  CostBreakdown a{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(a.total(), 10.0, kTol);
  CostBreakdown b{0.5, 0.5, 0.5, 0.5};
  a += b;
  EXPECT_NEAR(a.total(), 12.0, kTol);
}

TEST(CostModelTest, CumulativeStepTimesAreMonotone) {
  const SuhShinAape algo(TorusShape::make_2d(12, 12));
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  const auto series = cumulative_step_times(trace, CostParams::balanced());
  ASSERT_EQ(series.size(), trace.steps.size());
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i], series[i - 1]);
  }
  // Final cumulative time equals the priced total (both include all
  // n+1 = 3 rearrangement passes because every phase has steps here).
  const CostBreakdown priced = price_trace(trace, CostParams::balanced());
  EXPECT_NEAR(series.back(), priced.total(), 1e-6);
}

TEST(CostModelTest, OverlappedPricingBoundsPlainPricing) {
  const SuhShinAape algo(TorusShape::make_2d(16, 16));
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  for (const CostParams& p : {CostParams::balanced(), CostParams::bandwidth_dominated(),
                              CostParams::startup_dominated()}) {
    const CostBreakdown plain = price_trace(trace, p);
    const CostBreakdown overlapped = price_trace_overlapped(trace, p);
    // Overlap only ever reduces the rearrangement component.
    EXPECT_NEAR(overlapped.startup, plain.startup, 1e-9);
    EXPECT_NEAR(overlapped.transmission, plain.transmission, 1e-9);
    EXPECT_NEAR(overlapped.propagation, plain.propagation, 1e-9);
    EXPECT_LE(overlapped.rearrangement, plain.rearrangement + 1e-9);
    EXPECT_GE(overlapped.rearrangement, 0.0);
  }
  // With the balanced parameters a 16x16 phase's communication dwarfs
  // one rearrangement pass, so overlap hides it completely.
  const CostBreakdown hidden = price_trace_overlapped(trace, CostParams::balanced());
  EXPECT_NEAR(hidden.rearrangement, 0.0, 1e-9);
}

TEST(CostModelTest, OverlappedPricingDegeneratesGracefully) {
  // A 4x4 torus has only two phases with steps: at most one boundary
  // can hide a pass; the remaining passes stay visible.
  const SuhShinAape algo(TorusShape::make_2d(4, 4));
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  const CostParams p = CostParams::balanced();
  const CostBreakdown overlapped = price_trace_overlapped(trace, p);
  const double pass =
      static_cast<double>(trace.blocks_per_rearrangement) * static_cast<double>(p.m) * p.rho;
  EXPECT_GE(overlapped.rearrangement,
            static_cast<double>(trace.rearrangement_passes - 2) * pass);
}

TEST(CostModelTest, LowerBoundsComputeClassicValues) {
  const CostParams p = unit_params();
  const AapeLowerBounds lb = aape_lower_bounds(TorusShape::make_2d(8, 8), p);
  EXPECT_NEAR(lb.startup, 6.0, kTol);       // ceil(log2 64)
  EXPECT_NEAR(lb.injection, 63.0, kTol);    // N - 1
  EXPECT_NEAR(lb.bisection, 64.0, kTol);    // N*a1/8 = 64*8/8
  EXPECT_NEAR(lb.transmission(), 64.0, kTol);
  EXPECT_NEAR(lb.combined(), 70.0, kTol);
}

TEST(CostModelTest, ProposedRespectsAllLowerBounds) {
  const CostParams p = unit_params();
  for (auto extents : {std::vector<std::int32_t>{8, 8}, {16, 16}, {32, 32}, {12, 8},
                       {8, 8, 8}, {8, 8, 4, 4}}) {
    const TorusShape shape(extents);
    const CostBreakdown ours = proposed_cost_nd(shape, p);
    const AapeLowerBounds lb = aape_lower_bounds(shape, p);
    EXPECT_GE(ours.startup, lb.startup - kTol) << shape.to_string();
    EXPECT_GE(ours.transmission, lb.transmission() - kTol) << shape.to_string();
    // The optimality characterization: the transmission ratio equals
    // exactly n * (1 + 4/a1) against the bisection bound.
    const double ratio = ours.transmission / lb.bisection;
    const double expected =
        shape.num_dims() * (1.0 + 4.0 / static_cast<double>(shape.extent(0)));
    EXPECT_NEAR(ratio, expected, 1e-9) << shape.to_string();
  }
}

TEST(CostModelTest, LowerBoundsRejectDegenerateShape) {
  EXPECT_THROW(aape_lower_bounds(TorusShape({1, 1}), CostParams::balanced()),
               std::invalid_argument);
}

TEST(CostModelTest, DirectIdealCostScalesWithN) {
  const CostParams p = unit_params();
  const CostBreakdown c = direct_ideal_cost(TorusShape::make_2d(8, 8), p);
  EXPECT_NEAR(c.startup, 63.0, kTol);
  EXPECT_NEAR(c.transmission, 63.0, kTol);
  // Sum of distances from node 0 in an 8x8 torus: per dimension the
  // ring distances sum to 2*(1+2+3)+4 = 16, and each of the 64 nodes
  // contributes dist_r + dist_c -> total 16*8 + 16*8 = 256.
  EXPECT_NEAR(c.propagation, 256.0, kTol);
}

}  // namespace
}  // namespace torex
