// Tests for the physical data-array model (§3.3) and the virtual-node
// padding extension (§6).
#include <gtest/gtest.h>

#include "core/data_array.hpp"
#include "core/virtual_torus.hpp"
#include "sim/cost_simulator.hpp"

namespace torex {
namespace {

// ---------------------------------------------------------------------------
// Layout simulation (§3.3).
// ---------------------------------------------------------------------------

TEST(DataArrayTest, TwoDimensionalLayoutIsFullyContiguous) {
  // The paper's central §3.3 claim: with the B[u,v] ordering, every
  // send in every step of the 2D algorithm is physically contiguous —
  // only the 3 inter-phase rearrangement passes are needed.
  for (auto extents : {std::vector<std::int32_t>{8, 8}, {12, 8}, {12, 12}, {16, 16},
                       {16, 4}, {4, 4}}) {
    const SuhShinAape algo{TorusShape{extents}};
    const LayoutStats stats = run_layout_simulation(algo);
    EXPECT_TRUE(stats.fully_contiguous()) << TorusShape(extents).to_string() << ": "
                                          << stats.total_sends - stats.contiguous_sends
                                          << " non-contiguous sends";
    EXPECT_EQ(stats.max_runs_per_send, 1) << TorusShape(extents).to_string();
    EXPECT_EQ(stats.rearrangement_passes, 3);
  }
}

TEST(DataArrayTest, RearrangementPassCountIsNPlusOne) {
  EXPECT_EQ(run_layout_simulation(SuhShinAape(TorusShape({8, 8}))).rearrangement_passes, 3);
  EXPECT_EQ(run_layout_simulation(SuhShinAape(TorusShape({8, 4, 4}))).rearrangement_passes, 4);
  EXPECT_EQ(run_layout_simulation(SuhShinAape(TorusShape({4, 4, 4, 4}))).rearrangement_passes,
            5);
}

TEST(DataArrayTest, ScatterPhasesAreContiguousInAnyDimension) {
  // The distance-sorted layout keeps every scatter send a contiguous
  // tail in 3D too; only the final two phases hit the parity
  // obstruction (see DESIGN.md).
  const SuhShinAape algo(TorusShape({8, 8, 4}));
  const LayoutStats stats = run_layout_simulation(algo);
  // Some sends in phases n+1 / n+2 need gathering in 3D...
  EXPECT_GT(stats.total_sends, 0);
  // ...but the gathered volume is bounded by the exchange-phase traffic
  // (2n steps of N/2 blocks per node), a small fraction of the total.
  const std::int64_t exchange_blocks =
      2 * 3 * static_cast<std::int64_t>(algo.shape().num_nodes()) *
      (algo.shape().num_nodes() / 2);
  EXPECT_LE(stats.gathered_blocks, exchange_blocks);
}

TEST(DataArrayTest, ThreeDimensionalExchangePhasesNeedGathering) {
  // Documented deviation from the paper's idealized n-D claim: for
  // n >= 3 no fixed ordering keeps all n quarter-exchange steps
  // contiguous, so the simulator must report gathered blocks.
  const LayoutStats stats = run_layout_simulation(SuhShinAape(TorusShape({4, 4, 4})));
  EXPECT_FALSE(stats.fully_contiguous());
  EXPECT_GT(stats.gathered_blocks, 0);
  EXPECT_EQ(stats.max_runs_per_send, 2);
}

TEST(DataArrayTest, FragmentationDoublesPerDimension) {
  // The empirical law behind DESIGN.md §7.2: with the reflected-Gray
  // layout the worst send fragments into exactly 2^(n-2) runs.
  EXPECT_EQ(run_layout_simulation(SuhShinAape(TorusShape({8, 8}))).max_runs_per_send, 1);
  EXPECT_EQ(run_layout_simulation(SuhShinAape(TorusShape({4, 4, 4}))).max_runs_per_send, 2);
  EXPECT_EQ(run_layout_simulation(SuhShinAape(TorusShape({4, 4, 4, 4}))).max_runs_per_send,
            4);
  EXPECT_EQ(
      run_layout_simulation(SuhShinAape(TorusShape({4, 4, 4, 4, 4}))).max_runs_per_send, 8);
}

// ---------------------------------------------------------------------------
// Virtual-node padding (§6).
// ---------------------------------------------------------------------------

TEST(VirtualTorusTest, PadsToMultiplesOfFour) {
  const VirtualTorusAape padded(TorusShape({10, 7}));
  EXPECT_EQ(padded.virtual_shape().extents(), (std::vector<std::int32_t>{12, 8}));
  const VirtualTorusAape tiny(TorusShape({3, 2}));
  EXPECT_EQ(tiny.virtual_shape().extents(), (std::vector<std::int32_t>{4, 4}));
  const VirtualTorusAape exact(TorusShape({8, 8}));
  EXPECT_EQ(exact.virtual_shape().extents(), (std::vector<std::int32_t>{8, 8}));
}

TEST(VirtualTorusTest, PrimaryAndHostMapping) {
  const VirtualTorusAape padded(TorusShape({10, 8}));
  const TorusShape& v = padded.virtual_shape();  // 12x8
  EXPECT_TRUE(padded.is_primary(v.rank_of({9, 7})));
  EXPECT_FALSE(padded.is_primary(v.rank_of({10, 0})));
  EXPECT_FALSE(padded.is_primary(v.rank_of({11, 3})));
  // Folding: virtual (10, 3) is hosted by physical (0, 3).
  EXPECT_EQ(padded.host_of(v.rank_of({10, 3})), padded.physical_shape().rank_of({0, 3}));
  EXPECT_EQ(padded.host_of(v.rank_of({3, 5})), padded.physical_shape().rank_of({3, 5}));
}

struct VirtualCase {
  std::vector<std::int32_t> extents;
};

class VirtualSweepTest : public ::testing::TestWithParam<VirtualCase> {};

TEST_P(VirtualSweepTest, PaddedExchangeCompletes) {
  const VirtualTorusAape padded{TorusShape{GetParam().extents}};
  VirtualExchangeResult result;
  ASSERT_NO_THROW(result = padded.run_verified());
  EXPECT_GE(result.max_roles_per_host, 1);
  EXPECT_GE(result.max_host_serialization, 1);
  EXPECT_EQ(result.per_step_host_sends.size(), result.trace.steps.size());
}

INSTANTIATE_TEST_SUITE_P(Shapes, VirtualSweepTest,
                         ::testing::Values(VirtualCase{{10, 10}}, VirtualCase{{9, 7}},
                                           VirtualCase{{11, 5}}, VirtualCase{{6, 6}},
                                           VirtualCase{{13, 4}}, VirtualCase{{7, 6, 5}},
                                           VirtualCase{{5, 4, 3}}, VirtualCase{{8, 8}}));

TEST(VirtualTorusTest, ExactMultipleOfFourHasNoSerializationOverhead) {
  // When no padding is needed every virtual node is primary and hosts
  // exactly one role: the padded run degenerates to the plain schedule.
  const VirtualTorusAape exact(TorusShape({8, 8}));
  const VirtualExchangeResult result = exact.run_verified();
  EXPECT_EQ(result.max_roles_per_host, 1);
  EXPECT_EQ(result.max_host_serialization, 1);
}

TEST(VirtualTorusTest, PaddingOverheadIsBoundedByRoleMultiplicity) {
  const VirtualTorusAape padded(TorusShape({10, 10}));  // virtual 12x12
  const VirtualExchangeResult result = padded.run_verified();
  // ceil(12/10)^2 = 4 roles max; serialization can never exceed it.
  EXPECT_LE(result.max_roles_per_host, 4);
  EXPECT_LE(result.max_host_serialization, result.max_roles_per_host);
}

TEST(VirtualTorusTest, RejectsUnsortedPhysicalShape) {
  EXPECT_THROW(VirtualTorusAape(TorusShape({5, 9})), std::invalid_argument);
}

}  // namespace
}  // namespace torex
