// Cross-executor differential tests: the four independent executors
// (sequential engine, layout engine, parallel engine, parcel runner)
// replay the same schedule oracle; on random workloads and shapes their
// observable results must agree. A bug in any one of them — or in the
// oracle — shows up as a divergence here even if each executor's own
// checks pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/data_array.hpp"
#include "core/exchange_engine.hpp"
#include "core/payload_exchange.hpp"
#include "runtime/parallel_engine.hpp"
#include "util/prng.hpp"

namespace torex {
namespace {

struct DiffCase {
  std::vector<std::int32_t> extents;
  std::uint64_t seed;
};

class DifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(DifferentialTest, CustomWorkloadMatchesParcelRunner) {
  // Same random sparse workload through ExchangeEngine::run_custom and
  // exchange_parcels_custom: identical delivered multisets.
  const SuhShinAape algo{TorusShape{GetParam().extents}};
  const Rank N = algo.shape().num_nodes();
  SplitMix64 rng(GetParam().seed);

  std::vector<std::vector<Block>> blocks(static_cast<std::size_t>(N));
  ParcelBuffers<std::uint64_t> parcels(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    const int count = static_cast<int>(rng.next_below(7));
    for (int i = 0; i < count; ++i) {
      const Rank d = static_cast<Rank>(rng.next_below(static_cast<std::uint64_t>(N)));
      blocks[static_cast<std::size_t>(p)].push_back(Block{p, d});
      parcels[static_cast<std::size_t>(p)].push_back(
          {Block{p, d}, rng.next()});
    }
  }

  ExchangeEngine engine(algo);
  engine.run_custom(blocks);
  const auto& engine_buffers = engine.buffers();
  const auto delivered = exchange_parcels_custom(algo, std::move(parcels));

  for (Rank q = 0; q < N; ++q) {
    std::vector<Block> a = engine_buffers[static_cast<std::size_t>(q)];
    std::vector<Block> b;
    for (const auto& parcel : delivered[static_cast<std::size_t>(q)]) {
      b.push_back(parcel.block);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "node " << q;
  }
}

TEST_P(DifferentialTest, LayoutEngineAgreesWithTraceCounts) {
  // The layout engine's send events must number the same as the plain
  // engine's transfers, step for step in aggregate.
  const SuhShinAape algo{TorusShape{GetParam().extents}};
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  std::int64_t engine_sends = 0;
  for (const auto& step : trace.steps) {
    engine_sends += static_cast<std::int64_t>(step.transfers.size());
  }
  const LayoutStats layout = run_layout_simulation(algo);
  EXPECT_EQ(layout.total_sends, engine_sends);
  EXPECT_EQ(layout.rearrangement_passes, algo.num_dims() + 1);
}

TEST_P(DifferentialTest, ParallelEngineAgreesOnRandomThreadCounts) {
  const SuhShinAape algo{TorusShape{GetParam().extents}};
  SplitMix64 rng(GetParam().seed ^ 0xABCDEF);
  const int threads = 1 + static_cast<int>(rng.next_below(8));

  EngineOptions opts;
  opts.record_transfers = false;
  ExchangeEngine sequential(algo, opts);
  const ExchangeTrace seq = sequential.run_verified();

  ParallelOptions popts;
  popts.num_threads = threads;
  ParallelExchange parallel(algo, popts);
  const ExchangeTrace par = parallel.run_verified();

  ASSERT_EQ(seq.steps.size(), par.steps.size()) << "threads=" << threads;
  for (std::size_t i = 0; i < seq.steps.size(); ++i) {
    EXPECT_EQ(seq.steps[i].total_blocks, par.steps[i].total_blocks);
    EXPECT_EQ(seq.steps[i].max_blocks_per_node, par.steps[i].max_blocks_per_node);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, DifferentialTest,
                         ::testing::Values(DiffCase{{8, 8}, 1}, DiffCase{{8, 8}, 2},
                                           DiffCase{{12, 8}, 3}, DiffCase{{12, 12}, 4},
                                           DiffCase{{8, 8, 4}, 5}, DiffCase{{8, 4, 4}, 6},
                                           DiffCase{{16, 4}, 7},
                                           DiffCase{{4, 4, 4, 4}, 8}));

TEST(DifferentialTest, CanonicalWorkloadAcrossAllExecutors) {
  // The full N^2 workload through every executor on one shape.
  const SuhShinAape algo(TorusShape::make_2d(12, 8));
  const Rank N = algo.shape().num_nodes();

  ExchangeEngine engine(algo);
  engine.run_verified();

  ParallelOptions popts;
  popts.num_threads = 3;
  ParallelExchange parallel(algo, popts);
  parallel.run_verified();

  ParcelBuffers<Rank> parcels(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    for (Rank q = 0; q < N; ++q) {
      parcels[static_cast<std::size_t>(p)].push_back({Block{p, q}, p});
    }
  }
  const auto delivered = exchange_payloads(algo, std::move(parcels));

  const LayoutStats layout = run_layout_simulation(algo);
  EXPECT_TRUE(layout.fully_contiguous());  // 2D: §3.3 exact

  for (Rank q = 0; q < N; ++q) {
    auto a = engine.buffers()[static_cast<std::size_t>(q)];
    auto b = parallel.buffers()[static_cast<std::size_t>(q)];
    std::vector<Block> c;
    for (const auto& parcel : delivered[static_cast<std::size_t>(q)]) {
      EXPECT_EQ(parcel.payload, parcel.block.origin);  // payload integrity
      c.push_back(parcel.block);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::sort(c.begin(), c.end());
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
  }
}

}  // namespace
}  // namespace torex
