// Integration tests: run the full exchange and verify the paper's
// correctness and cost invariants on a sweep of torus shapes.
#include <gtest/gtest.h>

#include <numeric>

#include "core/exchange_engine.hpp"
#include "sim/contention.hpp"

namespace torex {
namespace {

struct EngineCase {
  std::vector<std::int32_t> extents;
  PatternConvention convention;
};

std::string case_name(const ::testing::TestParamInfo<EngineCase>& info) {
  std::string name;
  for (auto e : info.param.extents) name += std::to_string(e) + "x";
  name.pop_back();
  name += info.param.convention == PatternConvention::kPaper2D ? "_paper2d" : "_nested";
  return name;
}

class EngineSweepTest : public ::testing::TestWithParam<EngineCase> {
 protected:
  TorusShape shape() const { return TorusShape(GetParam().extents); }
};

TEST_P(EngineSweepTest, CompletesAndVerifiesPostcondition) {
  const SuhShinAape algo(shape(), GetParam().convention);
  ExchangeEngine engine(algo);
  EXPECT_NO_THROW(engine.run_verified());
}

TEST_P(EngineSweepTest, EveryStepIsContentionFree) {
  const SuhShinAape algo(shape(), GetParam().convention);
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  const ContentionReport report = check_trace_contention(algo.torus(), trace);
  EXPECT_TRUE(report.contention_free)
      << "conflict at trace step "
      << (report.first_conflict_step ? static_cast<std::int64_t>(*report.first_conflict_step)
                                     : -1)
      << ": " << report.first_conflict.value_or("");
  EXPECT_LE(report.max_channel_load, 1);
}

TEST_P(EngineSweepTest, StepAndHopTotalsMatchTable1) {
  const TorusShape s = shape();
  const SuhShinAape algo(s, GetParam().convention);
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  const int n = s.num_dims();
  const std::int64_t a1 = s.extent(0);
  // Startup count: n(a1/4 + 1).
  EXPECT_EQ(trace.num_steps(), n * (a1 / 4 + 1));
  // Propagation hops: n(a1 - 1)  [= 4 hops x n(a1/4-1) steps + n*2 + n*1].
  EXPECT_EQ(trace.total_hops(), n * (a1 - 1));
}

TEST_P(EngineSweepTest, TransmittedBlocksMatchTable1) {
  const TorusShape s = shape();
  const SuhShinAape algo(s, GetParam().convention);
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  const int n = s.num_dims();
  const std::int64_t a1 = s.extent(0);
  const std::int64_t N = s.num_nodes();
  // Per-step largest message, summed: (n/8)(a1 + 4) * (a1 a2 ... an).
  // (Table 1, message-transmission row; the 2D row RC(C+4)/4 is the
  // n = 2 instance.)
  EXPECT_EQ(trace.total_max_blocks() * 8, n * (a1 + 4) * N);
}

TEST_P(EngineSweepTest, PerStepBlockCountsMatchPaperFormula) {
  const TorusShape s = shape();
  const SuhShinAape algo(s, GetParam().convention);
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  const int n = s.num_dims();
  const std::int64_t a1 = s.extent(0);
  const std::int64_t N = s.num_nodes();
  for (const auto& rec : trace.steps) {
    if (rec.phase <= n) {
      // Step s of a scatter phase: (a1 - 4s) * (N / a1) blocks from the
      // busiest node (§4.3(b); §3.4(b) is the 2D case R(C - 4p)).
      EXPECT_EQ(rec.max_blocks_per_node, (a1 - 4 * rec.step) * (N / a1))
          << "phase " << rec.phase << " step " << rec.step;
    } else {
      // Each step of phases n+1 and n+2 moves half of each node's N
      // blocks (§4.3(b)).
      EXPECT_EQ(rec.max_blocks_per_node, N / 2)
          << "phase " << rec.phase << " step " << rec.step;
    }
  }
}

TEST_P(EngineSweepTest, OnePortSendSideHolds) {
  // The engine already enforces one-port receive; check the send side:
  // per step, every source appears at most once in the transfer list.
  const SuhShinAape algo(shape(), GetParam().convention);
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  for (const auto& rec : trace.steps) {
    std::vector<Rank> sources;
    for (const auto& t : rec.transfers) sources.push_back(t.src);
    std::sort(sources.begin(), sources.end());
    EXPECT_TRUE(std::adjacent_find(sources.begin(), sources.end()) == sources.end());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineSweepTest,
    ::testing::Values(
        EngineCase{{4, 4}, PatternConvention::kPaper2D},
        EngineCase{{8, 8}, PatternConvention::kPaper2D},
        EngineCase{{8, 8}, PatternConvention::kNested},
        EngineCase{{8, 4}, PatternConvention::kPaper2D},
        EngineCase{{12, 8}, PatternConvention::kPaper2D},
        EngineCase{{12, 12}, PatternConvention::kPaper2D},
        EngineCase{{16, 16}, PatternConvention::kPaper2D},
        EngineCase{{16, 4}, PatternConvention::kPaper2D},
        EngineCase{{4, 4, 4}, PatternConvention::kNested},
        EngineCase{{8, 4, 4}, PatternConvention::kNested},
        EngineCase{{8, 8, 4}, PatternConvention::kNested},
        EngineCase{{8, 8, 4}, PatternConvention::kPaper2D},  // base-2D orientation swap
        EngineCase{{8, 4, 4, 4}, PatternConvention::kPaper2D},
        EngineCase{{8, 8, 8}, PatternConvention::kNested},
        EngineCase{{12, 8, 4}, PatternConvention::kNested},
        EngineCase{{16, 12}, PatternConvention::kPaper2D},
        EngineCase{{20, 8}, PatternConvention::kPaper2D},
        EngineCase{{24, 24}, PatternConvention::kPaper2D},
        EngineCase{{12, 12, 4}, PatternConvention::kNested},
        EngineCase{{4, 4, 4, 4}, PatternConvention::kNested},
        EngineCase{{8, 4, 4, 4}, PatternConvention::kNested},
        EngineCase{{8, 8, 4, 4}, PatternConvention::kNested},
        EngineCase{{4, 4, 4, 4, 4}, PatternConvention::kNested}),
    case_name);

TEST(EngineTest, TraceRecordsRearrangementModel) {
  const SuhShinAape algo(TorusShape::make_2d(12, 12));
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  // n + 1 = 3 rearrangement passes of RC blocks each (§3.4(c)).
  EXPECT_EQ(trace.rearrangement_passes, 3);
  EXPECT_EQ(trace.blocks_per_rearrangement, 144);
}

TEST(EngineTest, BuffersExposeFinalState) {
  const SuhShinAape algo(TorusShape::make_2d(4, 4));
  ExchangeEngine engine(algo);
  engine.run_verified();
  const auto& buffers = engine.buffers();
  ASSERT_EQ(buffers.size(), 16u);
  for (Rank p = 0; p < 16; ++p) {
    for (const Block& b : buffers[static_cast<std::size_t>(p)]) {
      EXPECT_EQ(b.dest, p);
    }
  }
}

TEST(EngineTest, RecordTransfersOffStillCountsBlocks) {
  const SuhShinAape algo(TorusShape::make_2d(8, 8));
  EngineOptions opts;
  opts.record_transfers = false;
  ExchangeEngine engine(algo, opts);
  const ExchangeTrace trace = engine.run_verified();
  std::int64_t total = 0;
  for (const auto& rec : trace.steps) {
    EXPECT_TRUE(rec.transfers.empty());
    total += rec.max_blocks_per_node;
  }
  EXPECT_GT(total, 0);
}

TEST(EngineTest, IdleNodesInNonSquareTorusSendNothingLate) {
  // In a 12x8 torus the phase-1 rings along the short dimension have
  // R/4 = 2 nodes, so their members are done after step 1 and must not
  // appear as senders in step 2.
  const TorusShape s = TorusShape::make_2d(12, 8);
  const SuhShinAape algo(s);
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  const auto& step2 = trace.steps[1];
  ASSERT_EQ(step2.phase, 1);
  ASSERT_EQ(step2.step, 2);
  for (const auto& t : step2.transfers) {
    const Coord c = s.coord_of(t.src);
    // Only nodes scattering along the 12-long dimension (rows of the
    // rank-0 dim) still have traffic: their direction dim must be 0.
    EXPECT_EQ(t.dir.dim, 0) << "short-ring node still sending in step 2";
  }
}

}  // namespace
}  // namespace torex
