// Tests for the observability plane: Prometheus/JSON exposition of
// labeled metrics, the exposition linter/parser, the per-session
// flight recorder, and the SessionManager integration that glues both
// to torexd (SLO ledger, flight dumps on failure).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/exchange_engine.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "svc/session_manager.hpp"

namespace torex {
namespace {

// --- Exposition formats --------------------------------------------------

/// The fixed registry the golden file freezes: every exposition
/// feature in one snapshot (unlabeled + labeled counters, a gauge
/// family, a labeled histogram, a name needing sanitization).
void fill_golden(MetricsRegistry& registry) {
  registry.counter("svc.offered").add(3);
  registry.counter("svc.offered", {{"tenant", "a"}}).add(2);
  registry.counter("wire.bytes").add(1024);
  registry.gauge("svc.queue_depth", {{"tenant", "a"}}).set(1);
  registry.gauge("svc.queue_depth", {{"tenant", "b"}}).set(2);
  Histogram& lat = registry.histogram("svc.slo.latency", {250, 500}, {{"tenant", "a"}});
  lat.observe(100);
  lat.observe(300);
  lat.observe(9000);
}

TEST(ExpositionTest, PrometheusTextMatchesGolden) {
  MetricsRegistry registry;
  fill_golden(registry);
  const std::string text = prometheus_text(registry.snapshot());

  std::ifstream in(std::string(TOREX_GOLDEN_DIR) + "/exposition_golden.prom");
  ASSERT_TRUE(in.good()) << "golden file missing: " << TOREX_GOLDEN_DIR
                         << "/exposition_golden.prom";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(text, golden.str()) << "regenerate tests/golden/exposition_golden.prom; actual:\n"
                                << text;
}

TEST(ExpositionTest, PrometheusTextIsVersionedAndLints) {
  MetricsRegistry registry;
  fill_golden(registry);
  const std::string text = prometheus_text(registry.snapshot());
  std::string error;
  std::vector<PromSample> samples;
  int version = 0;
  ASSERT_TRUE(parse_prometheus_text(text, &samples, &error, &version)) << error;
  EXPECT_EQ(version, kExpositionVersion);
  EXPECT_TRUE(prometheus_text_well_formed(text, &error)) << error;
}

TEST(ExpositionTest, ParseRoundTripsSamplesAndEscapes) {
  MetricsRegistry registry;
  registry.counter("svc.offered", {{"tenant", "a\"b\\c\nd"}}).add(7);
  registry.gauge("depth").set(-3);
  const std::string text = prometheus_text(registry.snapshot());

  std::vector<PromSample> samples;
  std::string error;
  ASSERT_TRUE(parse_prometheus_text(text, &samples, &error)) << error;
  ASSERT_EQ(samples.size(), 2u);
  bool saw_counter = false;
  for (const PromSample& s : samples) {
    if (s.name != "svc_offered") continue;
    saw_counter = true;
    ASSERT_EQ(s.labels.size(), 1u);
    EXPECT_EQ(s.labels[0].first, "tenant");
    EXPECT_EQ(s.labels[0].second, "a\"b\\c\nd");  // escaping round-trips
    EXPECT_DOUBLE_EQ(s.value, 7.0);
  }
  EXPECT_TRUE(saw_counter);
}

TEST(ExpositionTest, LinterRejectsMalformedText) {
  const auto rejects = [](const std::string& text) {
    std::string error;
    const bool ok = prometheus_text_well_formed(text, &error);
    EXPECT_FALSE(ok) << "accepted: " << text;
    if (!ok) {
      EXPECT_FALSE(error.empty());
    }
    return !ok;
  };
  EXPECT_TRUE(rejects("1bad_name 3\n"));
  EXPECT_TRUE(rejects("name\n"));                       // missing value
  EXPECT_TRUE(rejects("name 1x\n"));                    // trailing junk in value
  EXPECT_TRUE(rejects("name{k=v} 1\n"));                // unquoted label value
  EXPECT_TRUE(rejects("name{k=\"v\" 1\n"));             // unterminated label set
  EXPECT_TRUE(rejects("name{k=\"v\\q\"} 1\n"));         // unknown escape
  EXPECT_TRUE(rejects("name{=\"v\"} 1\n"));             // empty label key

  // And the things it must accept.
  std::string error;
  EXPECT_TRUE(prometheus_text_well_formed("# a comment\n\nx_total{le=\"+Inf\"} 4\n", &error))
      << error;
  EXPECT_TRUE(prometheus_text_well_formed("x 2.5e-3\nx_neg -4\n", &error)) << error;
}

TEST(ExpositionTest, JsonSnapshotIsWellFormedAndVersioned) {
  MetricsRegistry registry;
  fill_golden(registry);
  const std::string json = json_snapshot(registry.snapshot());
  std::string error;
  EXPECT_TRUE(json_well_formed(json, &error)) << error;
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"svc.slo.latency\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[250,500]"), std::string::npos);
}

TEST(ExpositionTest, SanitizeMetricName) {
  EXPECT_EQ(sanitize_metric_name("svc.slo.latency"), "svc_slo_latency");
  EXPECT_EQ(sanitize_metric_name("ok_name:x"), "ok_name:x");
  EXPECT_EQ(sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(sanitize_metric_name(""), "_");
}

// --- Flight recorder -----------------------------------------------------

TEST(FlightRecorderTest, RingWrapsWithDropAccounting) {
  FlightRecorderOptions options;
  options.ring_capacity = 4;
  FlightRecorder flight(options);
  for (int i = 0; i < 6; ++i) flight.note(7, "tick", i, i + 1, 1, i * 10);
  EXPECT_EQ(flight.recorded(7), 6);
  EXPECT_EQ(flight.dropped(7), 2);
  const auto events = flight.events(7);
  ASSERT_EQ(events.size(), 4u);
  // The surviving tail is the newest four, oldest first, with global
  // sequence numbers (so the drop is visible as a seq gap from 0).
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, static_cast<std::int64_t>(i) + 2);
    EXPECT_EQ(events[i].tick, static_cast<std::int64_t>(i) + 2);
    EXPECT_EQ(events[i].name, "tick");
  }
  EXPECT_EQ(flight.recorded(99), 0);
  flight.forget(7);
  EXPECT_EQ(flight.recorded(7), 0);
  EXPECT_EQ(flight.tracked_sessions(), 0u);
}

TEST(FlightRecorderTest, DisabledRecorderIsANoOp) {
  FlightRecorderOptions options;
  options.enabled = false;
  FlightRecorder flight(options);
  flight.note(1, "tick", 0);
  EXPECT_EQ(flight.recorded(1), 0);
  EXPECT_EQ(flight.tracked_sessions(), 0u);
}

TEST(FlightRecorderTest, OldestRingEvictsAtMaxSessions) {
  FlightRecorderOptions options;
  options.max_sessions = 2;
  FlightRecorder flight(options);
  flight.note(1, "a", 0);
  flight.note(2, "b", 1);
  flight.note(3, "c", 2);  // evicts session 1's ring
  EXPECT_EQ(flight.tracked_sessions(), 2u);
  EXPECT_EQ(flight.recorded(1), 0);
  EXPECT_EQ(flight.recorded(2), 1);
  EXPECT_EQ(flight.recorded(3), 1);
}

TEST(FlightRecorderTest, DumpParsesBackExactly) {
  FlightRecorderOptions options;
  options.ring_capacity = 3;
  FlightRecorder flight(options);
  for (int i = 0; i < 5; ++i) flight.note(11, i % 2 == 0 ? "wire.step" : "svc.dispatch", i, 1, i);
  const std::string health = "breaker channel:4 open\nbreaker node:1 closed";
  const std::string text =
      flight.dump(11, "injected crash (phase 2)\nsecond line", health, "torex_verify --storm=4");

  FlightDump dump;
  std::string error;
  ASSERT_TRUE(parse_flight_dump(text, &dump, &error)) << error << "\n" << text;
  EXPECT_EQ(dump.version, 1);
  EXPECT_EQ(dump.session, 11);
  EXPECT_EQ(dump.reason, "injected crash (phase 2)\\nsecond line");  // folded to one line
  EXPECT_EQ(dump.recorded, 5);
  EXPECT_EQ(dump.dropped, 2);
  ASSERT_EQ(dump.events.size(), 3u);
  EXPECT_EQ(dump.events.front().seq, 2);
  EXPECT_EQ(dump.events.back().seq, 4);
  EXPECT_EQ(dump.events.back().name, "wire.step");
  ASSERT_EQ(dump.health.size(), 2u);
  EXPECT_EQ(dump.health[0], "breaker channel:4 open");
  EXPECT_EQ(dump.repro, "torex_verify --storm=4");
}

TEST(FlightRecorderTest, ParserRejectsMalformedDumps) {
  FlightRecorder flight;
  flight.note(3, "tick", 0);
  const std::string good = flight.dump(3, "why", "", "repro cmd");
  FlightDump dump;
  ASSERT_TRUE(parse_flight_dump(good, &dump, nullptr));

  const auto rejects = [](std::string text) {
    FlightDump out;
    std::string error;
    const bool ok = parse_flight_dump(text, &out, &error);
    EXPECT_FALSE(ok) << "accepted:\n" << text;
    if (!ok) {
      EXPECT_FALSE(error.empty());
    }
  };
  rejects("");
  rejects("flight-recorder v2\n");  // wrong version
  rejects(good.substr(0, good.size() / 2));  // truncated
  {
    // Tampered accounting: dropped must equal recorded - events.
    std::string bad = good;
    const auto pos = bad.find("dropped 0");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 9, "dropped 5");
    rejects(bad);
  }
  {
    // Missing trailer.
    std::string bad = good;
    const auto pos = bad.find("end flight-recorder");
    ASSERT_NE(pos, std::string::npos);
    rejects(bad.substr(0, pos));
  }
}

TEST(FlightRecorderTest, ConcurrentNotesAreRaceFreeAndBounded) {
  // TSan coverage: several threads wrap one session's ring while
  // others create fresh rings past the eviction bound.
  FlightRecorderOptions options;
  options.ring_capacity = 8;
  options.max_sessions = 128;  // roomy: session 0's ring must survive the scatter
  FlightRecorder flight(options);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&flight, t] {
      for (int i = 0; i < kIters; ++i) {
        flight.note(0, "shared", i, 1, 1, t);
        flight.note(100 + (t * kIters + i) % 64, "scatter", i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(flight.recorded(0), kThreads * kIters);
  EXPECT_EQ(flight.dropped(0), kThreads * kIters - 8);
  EXPECT_EQ(flight.events(0).size(), 8u);
  EXPECT_LE(flight.tracked_sessions(), 128u);
  FlightDump dump;
  std::string error;
  ASSERT_TRUE(parse_flight_dump(flight.dump(0, "post-race", "", ""), &dump, &error)) << error;
}

// --- SessionManager integration ------------------------------------------

const TorusShape kShape({4, 4});
constexpr Rank kN = 16;

/// First Suh-Shin phase with steps (early phases are empty at extent
/// 4, so injections target this phase to actually fire).
int first_active_phase() {
  const SuhShinAape algo(kShape);
  for (int phase = 1; phase <= algo.num_phases(); ++phase) {
    if (algo.steps_in_phase(phase) > 0) return phase;
  }
  return 0;
}

SessionRequest make_request(SessionId id, double arrival = 0.0) {
  SessionRequest req;
  req.arrival = arrival;
  req.send.resize(static_cast<std::size_t>(kN));
  for (Rank p = 0; p < kN; ++p) {
    auto& row = req.send[static_cast<std::size_t>(p)];
    row.resize(static_cast<std::size_t>(kN));
    for (Rank q = 0; q < kN; ++q) {
      row[static_cast<std::size_t>(q)] = (id << 20) ^ (static_cast<std::int64_t>(p) << 10) ^ q;
    }
  }
  return req;
}

TEST(SvcFlightTest, CrashedSessionCarriesAParseableDumpAtTheFailingPhase) {
  SessionManagerOptions options;
  options.repro_hint = "build/tests/exposition_test --gtest_filter=SvcFlightTest.*";
  SessionManager mgr(kShape, CostParams{}, options);
  const int crash_phase = first_active_phase();
  ASSERT_GT(crash_phase, 0);
  SessionRequest doomed = make_request(0);
  doomed.inject.crash_phase = crash_phase;
  const SessionId id = mgr.submit(std::move(doomed));
  mgr.submit(make_request(1));
  mgr.run_until_idle();

  const SessionRecord record = mgr.record(id);
  ASSERT_EQ(record.state, SessionState::kFailed);
  ASSERT_FALSE(record.flight_dump.empty());

  FlightDump dump;
  std::string error;
  ASSERT_TRUE(parse_flight_dump(record.flight_dump, &dump, &error))
      << error << "\n" << record.flight_dump;
  EXPECT_EQ(dump.session, id);
  EXPECT_NE(dump.reason.find("injected session crash"), std::string::npos);
  EXPECT_EQ(dump.repro, options.repro_hint);
  ASSERT_FALSE(dump.events.empty());
  // The black box's final event is the crash itself, at the failing
  // phase/step.
  EXPECT_EQ(dump.events.back().name, "svc.crash");
  EXPECT_EQ(dump.events.back().phase, crash_phase);
  EXPECT_EQ(dump.events.back().step, 1);

  const auto dumps = mgr.flight_dumps();
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0].session, id);
  EXPECT_EQ(dumps[0].trigger, "session_failed");
  EXPECT_EQ(dumps[0].text, record.flight_dump);

  // The healthy session ran clean: no dump, ring released at retire.
  EXPECT_TRUE(mgr.record(1).flight_dump.empty());
  EXPECT_EQ(mgr.flight_recorder().tracked_sessions(), 0u);
}

TEST(SvcFlightTest, DisabledFlightRecorderLeavesNoDumps) {
  SessionManagerOptions options;
  options.flight.enabled = false;
  SessionManager mgr(kShape, CostParams{}, options);
  SessionRequest doomed = make_request(0);
  doomed.inject.crash_phase = first_active_phase();
  const SessionId id = mgr.submit(std::move(doomed));
  mgr.run_until_idle();
  EXPECT_EQ(mgr.record(id).state, SessionState::kFailed);
  EXPECT_TRUE(mgr.record(id).flight_dump.empty());
  EXPECT_TRUE(mgr.flight_dumps().empty());
}

TEST(SvcFlightTest, DeadlineMissDumpsAndAttributesCause) {
  SessionManagerOptions options;
  options.max_active = 1;
  SessionManager mgr(kShape, CostParams{}, options);
  SessionRequest hurried = make_request(0);
  hurried.deadline = mgr.phase_cost() * 1.5;  // expires after one phase
  const SessionId id = mgr.submit(std::move(hurried));
  mgr.run_until_idle();

  const SessionRecord record = mgr.record(id);
  ASSERT_EQ(record.state, SessionState::kDeadlineMissed);
  ASSERT_FALSE(record.flight_dump.empty());
  FlightDump dump;
  std::string error;
  ASSERT_TRUE(parse_flight_dump(record.flight_dump, &dump, &error)) << error;
  EXPECT_EQ(dump.session, id);

  // No deferrals, no retries: the miss is attributed to overload.
  const MetricsSnapshot slo = mgr.slo_snapshot();
  EXPECT_EQ(slo.counter_value("svc.slo.deadline_missed",
                              {{"tenant", "default"}, {"cause", "overload"}}),
            1);
  const auto dumps = mgr.flight_dumps();
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0].trigger, "deadline_miss");
}

TEST(SvcSloTest, LedgerMatchesDispositionStats) {
  SessionManagerOptions options;
  options.max_active = 2;
  SessionManager mgr(kShape, CostParams{}, options);
  mgr.submit(make_request(0));
  SessionRequest other = make_request(1);
  other.tenant = "batch";
  mgr.submit(std::move(other));
  SessionRequest doomed = make_request(2);
  doomed.inject.crash_phase = first_active_phase();
  mgr.submit(std::move(doomed));
  mgr.run_until_idle();

  const SvcStats stats = mgr.stats();
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.failed, 1);

  const MetricsSnapshot slo = mgr.slo_snapshot();
  EXPECT_EQ(slo.counter_value("svc.slo.offered", {{"tenant", "default"}}), 2);
  EXPECT_EQ(slo.counter_value("svc.slo.offered", {{"tenant", "batch"}}), 1);
  EXPECT_EQ(slo.counter_value("svc.slo.completed", {{"tenant", "default"}}), 1);
  EXPECT_EQ(slo.counter_value("svc.slo.completed", {{"tenant", "batch"}}), 1);
  EXPECT_EQ(slo.counter_value("svc.slo.failed", {{"tenant", "default"}}), 1);

  // Latency decomposition: every admitted session observed queue-wait
  // and service-time; only completions observed end-to-end latency.
  const HistogramSnapshot* wait = slo.histogram("svc.slo.queue_wait", {{"tenant", "default"}});
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count, 2);
  const HistogramSnapshot* service =
      slo.histogram("svc.slo.service_time", {{"tenant", "default"}});
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->count, 2);
  const HistogramSnapshot* latency = slo.histogram("svc.slo.latency", {{"tenant", "default"}});
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 1);
  EXPECT_GT(latency->percentile(0.5), 0.0);

  // Sent parcels are attributed per tenant and cover every session.
  const std::int64_t parcels = slo.counter_value("svc.slo.parcels", {{"tenant", "default"}}) +
                               slo.counter_value("svc.slo.parcels", {{"tenant", "batch"}});
  EXPECT_GT(parcels, 0);
}

TEST(SvcSloTest, ExpositionSnapshotLintsAndMatchesStats) {
  Recorder recorder;
  SessionManagerOptions options;
  options.obs = &recorder;
  SessionManager mgr(kShape, CostParams{}, options);
  mgr.submit(make_request(0));
  SessionRequest doomed = make_request(1);
  doomed.inject.corrupt_phase = first_active_phase();
  mgr.submit(std::move(doomed));
  mgr.run_until_idle();

  const SvcStats stats = mgr.stats();
  const MetricsSnapshot exposition = mgr.exposition_snapshot();
  EXPECT_EQ(exposition.counter_value("svc.offered"), stats.offered);
  EXPECT_EQ(exposition.counter_value("svc.completed"), stats.completed);
  EXPECT_EQ(exposition.counter_value("svc.failed"), stats.failed);
  EXPECT_EQ(exposition.counter_value("svc.phases"), stats.phases_executed);
  EXPECT_EQ(exposition.counter_value("svc.parcels_delivered"), stats.parcels_delivered);
  EXPECT_EQ(exposition.gauge_value("svc.active_sessions"), 0);
  EXPECT_EQ(exposition.gauge_value("wire.outstanding_frames"), 0);
  EXPECT_GT(exposition.counter_value("wire.messages"), 0);
  EXPECT_EQ(exposition.counter_value("svc.slo.offered", {{"tenant", "default"}}),
            stats.offered);
  EXPECT_EQ(exposition.counter_value("svc.flight.dumps"), 1);

  // Both wire formats of the full snapshot are valid.
  std::string error;
  const std::string text = prometheus_text(exposition);
  EXPECT_TRUE(prometheus_text_well_formed(text, &error)) << error;
  EXPECT_TRUE(json_well_formed(json_snapshot(exposition), &error)) << error;

  // The per-tenant labeled series really are split in the text form.
  EXPECT_NE(text.find("svc_slo_offered{tenant=\"default\"} 2"), std::string::npos);
}

TEST(SvcSloTest, HealthBreakerStatesAppearInExposition) {
  // Fault the first step-1 transfer of the 4x4 quarter phase (phase 3):
  // a channel the schedule is guaranteed to cross, discovered by the
  // lone session at fault tick 2.
  const SuhShinAape algo(kShape);
  const ExchangeTrace trace = ExchangeEngine(algo, EngineOptions{}).run_verified();
  const TransferRecord* victim = nullptr;
  for (const StepRecord& step : trace.steps) {
    if (step.phase == 3 && step.step == 1 && !step.transfers.empty()) {
      victim = &step.transfers.front();
      break;
    }
  }
  ASSERT_NE(victim, nullptr);

  SessionManagerOptions options;
  options.health.enabled = true;
  options.service_faults.fail_channel(victim->src, victim->dir, 2, 4);
  SessionManager mgr(kShape, CostParams{}, options);
  mgr.submit(make_request(0));
  mgr.run_until_idle();
  ASSERT_EQ(mgr.record(0).state, SessionState::kCompleted) << mgr.record(0).error;

  const MetricsSnapshot exposition = mgr.exposition_snapshot();
  EXPECT_GT(exposition.counter_value("svc.health.errors"), 0);
  EXPECT_GT(exposition.counter_value("svc.health.opens"), 0);
  EXPECT_GT(exposition.counter_value("svc.retry.granted"), 0);
  bool saw_breaker = false;
  for (const GaugeSnapshot& g : exposition.gauges) {
    if (g.name == "svc.health.breaker") saw_breaker = true;
  }
  EXPECT_TRUE(saw_breaker);
  std::string error;
  EXPECT_TRUE(prometheus_text_well_formed(prometheus_text(exposition), &error)) << error;
}

}  // namespace
}  // namespace torex
