// Fault-injection subsystem: fault model, schedule audit, fault-aware
// routing, wormhole behaviour under faults, and the communicator's
// degraded-mode recovery policies.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/exchange_engine.hpp"
#include "runtime/communicator.hpp"
#include "runtime/recovery.hpp"
#include "sim/fault_model.hpp"
#include "sim/wormhole.hpp"

namespace torex {
namespace {

std::vector<std::vector<int>> make_send(Rank n) {
  std::vector<std::vector<int>> send(static_cast<std::size_t>(n));
  for (Rank p = 0; p < n; ++p) {
    for (Rank q = 0; q < n; ++q) {
      send[static_cast<std::size_t>(p)].push_back(p * 10000 + q);
    }
  }
  return send;
}

void expect_aape_permutation(const std::vector<std::vector<int>>& send,
                             const std::vector<std::vector<int>>& recv) {
  ASSERT_EQ(recv.size(), send.size());
  for (std::size_t q = 0; q < send.size(); ++q) {
    ASSERT_EQ(recv[q].size(), send.size());
    for (std::size_t p = 0; p < send.size(); ++p) {
      EXPECT_EQ(recv[q][p], send[p][q]) << "recv[" << q << "][" << p << "]";
    }
  }
}

TEST(FaultModelTest, ActivationWindows) {
  FaultModel faults;
  faults.fail_channel(0, Direction{0, Sign::kPositive}, 5, 10);
  faults.fail_node(3, 2);
  const auto& specs = faults.specs();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_FALSE(specs[0].permanent());
  EXPECT_TRUE(specs[1].permanent());
  EXPECT_FALSE(specs[0].active_at(4));
  EXPECT_TRUE(specs[0].active_at(5));
  EXPECT_TRUE(specs[0].active_at(9));
  EXPECT_FALSE(specs[0].active_at(10));  // healed
  EXPECT_TRUE(specs[0].relevant_at(9));
  EXPECT_FALSE(specs[0].relevant_at(10));
  EXPECT_TRUE(faults.any_permanent());
  EXPECT_EQ(faults.all_clear_after(), kFaultForever);

  FaultModel transient;
  transient.fail_channel(1, Direction{1, Sign::kNegative}, 0, 16);
  EXPECT_FALSE(transient.any_permanent());
  EXPECT_EQ(transient.all_clear_after(), 16);
  EXPECT_EQ(FaultModel{}.all_clear_after(), 0);
}

TEST(FaultModelTest, NodeFaultKillsAdjacentChannels) {
  const Torus torus(TorusShape::make_2d(8, 8));
  FaultModel faults;
  faults.fail_node(9);
  // Every channel leaving or entering node 9 is dead; unrelated ones
  // are not.
  for (int d = 0; d < 2; ++d) {
    for (Sign s : {Sign::kPositive, Sign::kNegative}) {
      const Direction dir{d, s};
      EXPECT_TRUE(faults.channel_failed(torus, torus.channel_id(9, dir), 0));
      const Rank in_neighbor = torus.neighbor(9, dir);
      EXPECT_TRUE(
          faults.channel_failed(torus, torus.channel_id(in_neighbor, Direction{d, flip(s)}), 0));
    }
  }
  EXPECT_FALSE(faults.channel_failed(torus, torus.channel_id(0, Direction{0, Sign::kPositive}), 0));
  EXPECT_TRUE(faults.node_failed(9, 0));
  EXPECT_FALSE(faults.node_failed(8, 0));
}

TEST(FaultModelTest, SeededInjectionIsDeterministicAndDistinct) {
  const Torus torus(TorusShape::make_2d(12, 8));
  FaultModel a, b;
  a.inject_random_channel_faults(torus, 42, 6).inject_random_node_faults(torus, 43, 3);
  b.inject_random_channel_faults(torus, 42, 6).inject_random_node_faults(torus, 43, 3);
  ASSERT_EQ(a.specs().size(), 9u);
  for (std::size_t i = 0; i < a.specs().size(); ++i) {
    EXPECT_EQ(a.specs()[i].kind, b.specs()[i].kind);
    EXPECT_EQ(a.specs()[i].node, b.specs()[i].node);
    EXPECT_EQ(a.specs()[i].channel.from, b.specs()[i].channel.from);
    EXPECT_TRUE(a.specs()[i].channel.direction == b.specs()[i].channel.direction);
  }
  // Distinctness of the injected channels.
  std::vector<ChannelId> ids;
  for (std::size_t i = 0; i < 6; ++i) {
    ids.push_back(torus.channel_id(a.specs()[i].channel.from, a.specs()[i].channel.direction));
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(FaultAuditTest, CleanScheduleOnEmptyModel) {
  const SuhShinAape algo(TorusShape::make_2d(12, 8));
  const FaultImpactReport report = audit_schedule_faults(algo, FaultModel{});
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.audited_steps, algo.total_steps());
  EXPECT_EQ(report.impacted_steps, 0);
}

TEST(FaultAuditTest, PermanentChannelFaultIsLocatedPreciselyOnTwelveByEight) {
  const SuhShinAape algo(TorusShape::make_2d(12, 8));
  FaultModel faults;
  faults.inject_random_channel_faults(algo.torus(), 7, 1);
  const FaultImpactReport report = audit_schedule_faults(algo, faults);
  EXPECT_FALSE(report.clean());
  ASSERT_TRUE(report.first_impact.has_value());
  const FaultImpact& first = report.first_impact.value();
  EXPECT_GE(first.phase, 1);
  EXPECT_LE(first.phase, algo.num_phases());
  EXPECT_GE(first.step, 1);
  EXPECT_FALSE(first.description.empty());
  // The broken message really does cross the failed channel.
  const FaultSpec& spec = faults.specs().front();
  std::vector<ChannelId> path;
  algo.torus().straight_path(first.src, algo.direction(first.src, first.phase, first.step),
                             algo.hops_per_step(first.phase), path);
  const ChannelId failed =
      algo.torus().channel_id(spec.channel.from, spec.channel.direction);
  EXPECT_NE(std::find(path.begin(), path.end(), failed), path.end());
}

TEST(FaultAuditTest, FailAtStepKOnlyBreaksLaterSteps) {
  const SuhShinAape algo(TorusShape::make_2d(8, 8));
  const std::int64_t total = algo.total_steps();
  FaultModel late;
  // Activates after the whole run: clean.
  late.fail_channel(0, Direction{0, Sign::kPositive}, total, kFaultForever);
  EXPECT_TRUE(audit_schedule_faults(algo, late).clean());
  // The same fault during the run's tail breaks only steps >= k.
  FaultModel mid;
  const std::int64_t k = total / 2;
  mid.fail_channel(0, Direction{0, Sign::kPositive}, k, kFaultForever);
  const FaultImpactReport report = audit_schedule_faults(algo, mid);
  for (const auto& impact : report.impacts) {
    EXPECT_GE(impact.tick, k);
  }
  // Starting the run after the fault heals is clean again.
  FaultModel transient;
  transient.fail_channel(0, Direction{0, Sign::kPositive}, 0, 10);
  EXPECT_FALSE(audit_schedule_faults(algo, transient, 0).clean());
  EXPECT_TRUE(audit_schedule_faults(algo, transient, 10).clean());
}

TEST(FaultAuditTest, TraceAuditAgreesWithScheduleAuditOnRealizedTraffic) {
  const SuhShinAape algo(TorusShape::make_2d(8, 8));
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  FaultModel faults;
  faults.inject_random_channel_faults(algo.torus(), 11, 2);
  const FaultImpactReport from_schedule = audit_schedule_faults(algo, faults);
  const FaultImpactReport from_trace = audit_trace_faults(algo.torus(), trace, faults);
  // Full-activity audit is a conservative superset of realized traffic.
  EXPECT_GE(from_schedule.impacted_messages, from_trace.impacted_messages);
  EXPECT_FALSE(from_trace.clean());
}

TEST(FaultRoutingTest, DetourAvoidsFailedChannelAndStaysShort) {
  const Torus torus(TorusShape::make_2d(8, 8));
  FaultModel faults;
  faults.fail_channel(0, Direction{1, Sign::kPositive});  // 0 -> 1 dead
  const auto path = route_around_faults(torus, faults, 0, 1, 0);
  ASSERT_TRUE(path.has_value());
  EXPECT_GE(static_cast<std::int64_t>(path->size()), 2);  // must detour
  // The detour is connected, avoids the failed channel, and ends at 1.
  Rank at = 0;
  for (ChannelId id : *path) {
    EXPECT_FALSE(faults.channel_failed(torus, id, 0));
    const Channel ch = torus.channel_of(id);
    EXPECT_EQ(ch.from, at);
    at = torus.neighbor(ch.from, ch.direction);
  }
  EXPECT_EQ(at, 1);
}

TEST(FaultRoutingTest, FullyIsolatedDestinationIsUnroutable) {
  const Torus torus(TorusShape::make_2d(8, 8));
  const Rank victim = 27;
  FaultModel faults;
  for (int d = 0; d < 2; ++d) {
    for (Sign s : {Sign::kPositive, Sign::kNegative}) {
      const Direction dir{d, s};
      faults.fail_channel(victim, dir);                          // outgoing
      faults.fail_channel(torus.neighbor(victim, dir), Direction{d, flip(s)});  // incoming
    }
  }
  EXPECT_FALSE(route_around_faults(torus, faults, 0, victim, 0).has_value());
  EXPECT_TRUE(route_around_faults(torus, faults, 0, 1, 0).has_value());
}

TEST(FaultedWormholeTest, TransientChannelFaultStallsTheWormUntilItHeals) {
  const Torus torus(TorusShape::make_2d(8, 8));
  WormholeSimulator sim(torus);
  WormSpec spec;
  spec.src = 0;
  spec.dst = 16;  // two hops along dimension 0
  spec.flits = 3;
  spec.route = StraightRoute{Direction{0, Sign::kPositive}, 2};
  const WormholeOutcome healthy = sim.simulate({spec});
  ASSERT_TRUE(healthy.stall_free());

  FaultModel faults;
  faults.fail_channel(8, Direction{0, Sign::kPositive}, 0, 10);  // second hop, heals at 10
  const WormholeOutcome faulted = sim.simulate_faulted({spec}, faults);
  EXPECT_FALSE(faulted.stall_free());
  EXPECT_GT(faulted.messages[0].stall_cycles, 0);
  EXPECT_GT(faulted.makespan, healthy.makespan);
  // Delivery completes shortly after the heal tick, not before.
  EXPECT_GE(faulted.messages[0].header_arrival, 10);

  // Starting after the heal is indistinguishable from healthy.
  const WormholeOutcome after = sim.simulate_faulted({spec}, faults, /*base_tick=*/10);
  EXPECT_TRUE(after.stall_free());
  EXPECT_EQ(after.makespan, healthy.makespan);
}

TEST(FaultedWormholeTest, PermanentFaultOnRouteIsRejectedUpFront) {
  const Torus torus(TorusShape::make_2d(8, 8));
  WormholeSimulator sim(torus);
  WormSpec spec;
  spec.src = 0;
  spec.dst = 16;
  spec.flits = 2;
  spec.route = StraightRoute{Direction{0, Sign::kPositive}, 2};
  FaultModel faults;
  faults.fail_channel(8, Direction{0, Sign::kPositive});  // permanent
  EXPECT_THROW(sim.simulate_faulted({spec}, faults), std::invalid_argument);
  FaultModel dead_node;
  dead_node.fail_node(16);
  EXPECT_THROW(sim.simulate_faulted({spec}, dead_node), std::invalid_argument);
}

TEST(FaultedWormholeTest, FaultedTraceStepsPriceAboveHealthyBaseline) {
  const SuhShinAape algo(TorusShape::make_2d(8, 8));
  ExchangeEngine engine(algo);
  const ExchangeTrace trace = engine.run_verified();
  FaultModel faults;
  faults.fail_channel(0, Direction{0, Sign::kPositive}, 0, 25);  // transient
  const auto healthy = simulate_trace_steps(algo.torus(), trace, 2);
  const auto faulted = simulate_trace_steps_faulted(algo.torus(), trace, 2, faults);
  ASSERT_EQ(healthy.size(), faulted.size());
  std::int64_t healthy_total = 0, faulted_total = 0;
  for (std::size_t s = 0; s < healthy.size(); ++s) {
    healthy_total += healthy[s].makespan;
    faulted_total += faulted[s].makespan;
    EXPECT_GE(faulted[s].makespan, healthy[s].makespan);
  }
  EXPECT_GT(faulted_total, healthy_total);
}

// --- Recovery policies (the PR's acceptance scenario) ------------------

class PermanentChannelFaultPolicyTest : public ::testing::TestWithParam<RecoveryPolicy> {};

TEST_P(PermanentChannelFaultPolicyTest, TwelveByEightStillPermutesCorrectly) {
  const TorusShape shape = TorusShape::make_2d(12, 8);
  const TorusCommunicator comm(shape, CostParams{});
  FaultModel faults;
  faults.inject_random_channel_faults(Torus(shape), 2026, 1);  // seeded, permanent
  ASSERT_TRUE(faults.any_permanent());

  const auto send = make_send(comm.size());
  ExchangeOutcome outcome;
  ResilienceOptions options;
  options.algorithm = AlltoallAlgorithm::kSuhShin;
  options.policy = GetParam();
  options.backoff.max_attempts = 4;
  const auto recv = comm.alltoall_resilient(send, faults, outcome, options);
  expect_aape_permutation(send, recv);

  EXPECT_EQ(outcome.requested_policy, GetParam());
  EXPECT_NE(outcome.policy, RecoveryPolicy::kNone) << outcome.note;
  EXPECT_TRUE(outcome.degraded);
  EXPECT_FALSE(outcome.note.empty());
  EXPECT_GT(outcome.modeled_time, 0.0);
  switch (GetParam()) {
    case RecoveryPolicy::kRetryBackoff:
      // Permanent fault: the retry budget burns down, then degrades.
      EXPECT_EQ(outcome.retries, 4);
      EXPECT_GT(outcome.waited_ticks, 0);
      EXPECT_NE(outcome.policy, RecoveryPolicy::kRetryBackoff);
      break;
    case RecoveryPolicy::kRemap:
      EXPECT_EQ(outcome.policy, RecoveryPolicy::kRemap);
      EXPECT_EQ(outcome.algorithm, AlltoallAlgorithm::kSuhShin);
      EXPECT_GT(outcome.rerouted_messages, 0);
      EXPECT_EQ(outcome.retries, 0);
      break;
    case RecoveryPolicy::kFallbackDirect:
      EXPECT_EQ(outcome.policy, RecoveryPolicy::kFallbackDirect);
      EXPECT_EQ(outcome.algorithm, AlltoallAlgorithm::kDirect);
      break;
    default:
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, PermanentChannelFaultPolicyTest,
                         ::testing::Values(RecoveryPolicy::kRetryBackoff,
                                           RecoveryPolicy::kRemap,
                                           RecoveryPolicy::kFallbackDirect));

TEST(RecoveryTest, TransientFaultRetryConvergesWithinBudget) {
  const TorusShape shape = TorusShape::make_2d(12, 8);
  const TorusCommunicator comm(shape, CostParams{});
  FaultModel faults;
  faults.fail_channel(0, Direction{0, Sign::kPositive}, 0, 16);  // heals at tick 16
  ASSERT_FALSE(faults.any_permanent());

  const auto send = make_send(comm.size());
  ExchangeOutcome outcome;
  ResilienceOptions options;
  options.algorithm = AlltoallAlgorithm::kSuhShin;
  options.policy = RecoveryPolicy::kRetryBackoff;
  options.backoff.max_attempts = 8;
  options.backoff.base_ticks = 1;
  const auto recv = comm.alltoall_resilient(send, faults, outcome, options);
  expect_aape_permutation(send, recv);

  EXPECT_EQ(outcome.policy, RecoveryPolicy::kRetryBackoff);
  EXPECT_FALSE(outcome.degraded);
  EXPECT_EQ(outcome.algorithm, AlltoallAlgorithm::kSuhShin);
  // Backoff doubles: waits 1,2,4,8,16 -> tick 31 >= 16 at the fifth retry.
  EXPECT_EQ(outcome.retries, 5);
  EXPECT_EQ(outcome.waited_ticks, 31);
  EXPECT_GE(outcome.run_tick, 16);
  EXPECT_LE(outcome.retries, options.backoff.max_attempts);
}

TEST(RecoveryTest, AutoPolicyPicksRetryForTransientAndRemapForPermanent) {
  const TorusShape shape = TorusShape::make_2d(12, 8);
  const TorusCommunicator comm(shape, CostParams{});
  const auto send = make_send(comm.size());

  FaultModel transient;
  transient.fail_channel(0, Direction{0, Sign::kPositive}, 0, 4);
  ExchangeOutcome outcome;
  ResilienceOptions options;
  options.algorithm = AlltoallAlgorithm::kSuhShin;
  auto recv = comm.alltoall_resilient(send, transient, outcome, options);
  expect_aape_permutation(send, recv);
  EXPECT_EQ(outcome.policy, RecoveryPolicy::kRetryBackoff);

  FaultModel permanent;
  permanent.fail_channel(0, Direction{0, Sign::kPositive});
  recv = comm.alltoall_resilient(send, permanent, outcome, options);
  expect_aape_permutation(send, recv);
  EXPECT_EQ(outcome.policy, RecoveryPolicy::kRemap);
  EXPECT_EQ(outcome.retries, 0);  // waiting on a permanent fault is pointless
}

TEST(RecoveryTest, FailedNodeIsHostedOnALiveNeighbor) {
  const TorusShape shape = TorusShape::make_2d(12, 8);
  const TorusCommunicator comm(shape, CostParams{});
  FaultModel faults;
  faults.fail_node(17);
  const auto send = make_send(comm.size());
  ExchangeOutcome outcome;
  ResilienceOptions options;
  options.algorithm = AlltoallAlgorithm::kSuhShin;
  const auto recv = comm.alltoall_resilient(send, faults, outcome, options);
  expect_aape_permutation(send, recv);
  EXPECT_EQ(outcome.policy, RecoveryPolicy::kRemap);
  EXPECT_EQ(outcome.remapped_nodes, 1);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_FALSE(outcome.summary().empty());
}

TEST(RecoveryTest, PolicyNoneThrowsDescriptiveFaultedExchangeError) {
  const TorusShape shape = TorusShape::make_2d(12, 8);
  const TorusCommunicator comm(shape, CostParams{});
  FaultModel faults;
  faults.fail_channel(0, Direction{0, Sign::kPositive});
  const auto send = make_send(comm.size());
  ExchangeOutcome outcome;
  ResilienceOptions options;
  options.algorithm = AlltoallAlgorithm::kSuhShin;
  options.policy = RecoveryPolicy::kNone;
  try {
    comm.alltoall_resilient(send, faults, outcome, options);
    FAIL() << "expected FaultedExchangeError";
  } catch (const FaultedExchangeError& e) {
    EXPECT_FALSE(e.report().clean());
    EXPECT_NE(std::string(e.what()).find("phase"), std::string::npos);
  }
}

TEST(RecoveryTest, HealthyNetworkReportsNoRecovery) {
  const TorusShape shape = TorusShape::make_2d(8, 8);
  const TorusCommunicator comm(shape, CostParams{});
  const auto send = make_send(comm.size());
  ExchangeOutcome outcome;
  const auto recv = comm.alltoall_resilient(send, FaultModel{}, outcome);
  expect_aape_permutation(send, recv);
  EXPECT_EQ(outcome.policy, RecoveryPolicy::kNone);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.retries, 0);
  EXPECT_FALSE(outcome.degraded);
}

TEST(RecoveryTest, DisconnectedLiveNodeMakesFallbackThrow) {
  const Torus torus(TorusShape::make_2d(8, 8));
  const Rank victim = 27;
  FaultModel faults;
  for (int d = 0; d < 2; ++d) {
    for (Sign s : {Sign::kPositive, Sign::kNegative}) {
      const Direction dir{d, s};
      faults.fail_channel(victim, dir);
      faults.fail_channel(torus.neighbor(victim, dir), Direction{d, flip(s)});
    }
  }
  EXPECT_THROW(plan_direct_fallback(torus, faults, 0), FaultedExchangeError);
}

TEST(RecoveryTest, BackoffWaitsAreBoundedAndExponential) {
  BackoffConfig config;
  config.base_ticks = 2;
  config.max_ticks = 20;
  EXPECT_EQ(backoff_wait(config, 1), 2);
  EXPECT_EQ(backoff_wait(config, 2), 4);
  EXPECT_EQ(backoff_wait(config, 3), 8);
  EXPECT_EQ(backoff_wait(config, 4), 16);
  EXPECT_EQ(backoff_wait(config, 5), 20);   // capped
  EXPECT_EQ(backoff_wait(config, 63), 20);  // no overflow at large attempts
}

}  // namespace
}  // namespace torex
