// Health registry tests: the breaker lattice (closed / open /
// half-open, flaps, permanent quarantine, seeded probe jitter), the
// global retry token bucket (all-or-nothing acquires, fractional
// refill, interleaving-independent totals under threads), the signal
// feeds (error attribution, phi-accrual suspicion, integrity reports),
// and the torexd integration seams (plan-around, quarantine-as-faults,
// typed unroutable errors, flapping fault windows). Everything runs on
// the fault tick axis, so every assertion is exact.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/exchange_engine.hpp"
#include "core/integrity.hpp"
#include "costmodel/params.hpp"
#include "sim/fault_model.hpp"
#include "svc/health_registry.hpp"
#include "svc/session_manager.hpp"

namespace torex {
namespace {

const TorusShape kShape({4, 4});

/// A channel on the 4x4 torus to hang breakers off.
ChannelId some_channel(const HealthRegistry& registry, Rank from = 0) {
  return registry.torus().channel_id(from, Direction{0, Sign::kPositive});
}

BreakerOptions fast_breaker() {
  BreakerOptions options;
  options.error_threshold = 2;
  options.open_ticks = 4;
  options.probe_jitter = 0;  // deterministic cool-off for exact tests
  options.flap_limit = 3;
  return options;
}

// --- Breaker lattice ---------------------------------------------------

TEST(BreakerTest, OpensAfterConsecutiveErrorsAndReportsFirstDiscoverer) {
  HealthRegistry registry(kShape, fast_breaker());
  const ChannelId id = some_channel(registry);
  EXPECT_EQ(registry.channel_state(id, 0), BreakerState::kClosed);
  EXPECT_FALSE(registry.record_channel_error(id, 0, "first strike"));
  EXPECT_EQ(registry.channel_state(id, 0), BreakerState::kClosed);
  EXPECT_FALSE(registry.channel_quarantined(id, 0));
  // The second consecutive error trips the breaker; the caller is the
  // first discoverer (and the only one told so).
  EXPECT_TRUE(registry.record_channel_error(id, 0, "second strike"));
  EXPECT_EQ(registry.channel_state(id, 0), BreakerState::kOpen);
  EXPECT_TRUE(registry.channel_quarantined(id, 0));
  EXPECT_TRUE(registry.any_quarantined(0));
  EXPECT_EQ(registry.channel_verdict(id), "second strike");
  // Further errors on the open breaker do not re-claim discovery and
  // do not overwrite the published verdict.
  EXPECT_FALSE(registry.record_channel_error(id, 1, "pile-on"));
  EXPECT_EQ(registry.channel_verdict(id), "second strike");
}

TEST(BreakerTest, HalfOpensAfterCoolOffAndProbeHealsOrFlaps) {
  HealthRegistry registry(kShape, fast_breaker());
  const ChannelId id = some_channel(registry);
  registry.record_channel_error(id, 0, "x");
  registry.record_channel_error(id, 0, "x");
  ASSERT_EQ(registry.channel_state(id, 0), BreakerState::kOpen);
  // Cool-off is open_ticks = 4 with zero jitter: still open at tick 3,
  // half-open (probe-eligible, still quarantined for planning) at 4.
  EXPECT_EQ(registry.channel_state(id, 3), BreakerState::kOpen);
  EXPECT_EQ(registry.channel_state(id, 4), BreakerState::kHalfOpen);
  EXPECT_TRUE(registry.channel_quarantined(id, 4));

  // Probe against a still-dead ground truth: the breaker re-opens and
  // that counts one flap.
  const Channel ch = registry.torus().channel_of(id);
  FaultModel still_dead;
  still_dead.fail_channel(ch.from, ch.direction);
  registry.run_probes(still_dead, 4);
  EXPECT_EQ(registry.channel_state(id, 4), BreakerState::kOpen);
  HealthStats stats = registry.stats(4);
  EXPECT_EQ(stats.probes, 1);
  EXPECT_EQ(stats.probe_failures, 1);
  EXPECT_EQ(stats.flaps, 1);

  // Probe against a healed ground truth after the second cool-off: the
  // breaker converges back to closed.
  registry.run_probes(FaultModel{}, 8);
  EXPECT_EQ(registry.channel_state(id, 8), BreakerState::kClosed);
  EXPECT_FALSE(registry.any_quarantined(8));
  stats = registry.stats(8);
  EXPECT_EQ(stats.closes, 1);
  EXPECT_TRUE(stats.all_closed());
}

TEST(BreakerTest, FlapLimitQuarantinesPermanently) {
  HealthRegistry registry(kShape, fast_breaker());  // flap_limit = 3
  const ChannelId id = some_channel(registry);
  const Channel ch = registry.torus().channel_of(id);
  FaultModel still_dead;
  still_dead.fail_channel(ch.from, ch.direction);
  registry.record_channel_error(id, 0, "x");
  registry.record_channel_error(id, 0, "x");
  // Each failed probe is one flap; after flap_limit of them the
  // resource is quarantined for good and never probed again.
  std::int64_t tick = 0;
  for (int flap = 0; flap < 3; ++flap) {
    tick += 4;
    registry.run_probes(still_dead, tick);
  }
  const HealthStats stats = registry.stats(tick);
  EXPECT_EQ(stats.flaps, 3);
  EXPECT_EQ(stats.permanent_quarantines, 1);
  ASSERT_EQ(stats.resources.size(), 1u);
  EXPECT_TRUE(stats.resources[0].permanent);
  // No amount of cool-off makes it half-open again, and a probe
  // against a healed network is never fired for it.
  EXPECT_EQ(registry.channel_state(id, tick + 1000), BreakerState::kOpen);
  registry.run_probes(FaultModel{}, tick + 1000);
  EXPECT_EQ(registry.channel_state(id, tick + 1000), BreakerState::kOpen);
  EXPECT_EQ(registry.stats(tick + 1000).probes, stats.probes);
}

TEST(BreakerTest, SeededJitterIsDeterministicAndBounded) {
  BreakerOptions jittered = fast_breaker();
  jittered.probe_jitter = 2;
  jittered.seed = 0xfeedu;
  // Two registries with identical options must agree on every state
  // transition tick (the jitter is seeded, not random)...
  HealthRegistry a(kShape, jittered), b(kShape, jittered);
  const ChannelId id = some_channel(a);
  for (HealthRegistry* r : {&a, &b}) {
    r->record_channel_error(id, 0, "x");
    r->record_channel_error(id, 0, "x");
  }
  std::int64_t half_open_at = -1;
  for (std::int64_t tick = 0; tick <= 8; ++tick) {
    EXPECT_EQ(a.channel_state(id, tick), b.channel_state(id, tick)) << "tick " << tick;
    if (half_open_at < 0 && a.channel_state(id, tick) == BreakerState::kHalfOpen) {
      half_open_at = tick;
    }
  }
  // ...and the cool-off must land inside [open_ticks, open_ticks +
  // probe_jitter].
  ASSERT_GE(half_open_at, 4);
  ASSERT_LE(half_open_at, 6);
}

TEST(BreakerTest, NodeSuspicionOpensImmediatelyAndProbesClose) {
  HealthRegistry registry(kShape, fast_breaker());
  registry.report_suspicion(3, 10, 2.5);
  EXPECT_EQ(registry.node_state(3, 10), BreakerState::kOpen);
  EXPECT_TRUE(registry.node_quarantined(3, 10));
  const HealthStats stats = registry.stats(10);
  EXPECT_EQ(stats.suspicions, 1);
  EXPECT_EQ(stats.opens, 1);
  // The node heartbeats again: the half-open probe re-admits it.
  registry.run_probes(FaultModel{}, 14);
  EXPECT_EQ(registry.node_state(3, 14), BreakerState::kClosed);
}

TEST(BreakerTest, IntegrityReportChargesTheScheduledRoute) {
  BreakerOptions options = fast_breaker();
  options.error_threshold = 1;
  HealthRegistry registry(kShape, options);
  IntegrityReport report;
  IntegrityViolation v;
  v.src = 0;
  v.direction = Direction{0, Sign::kPositive};
  v.hops = 2;
  v.reason = "checksum mismatch";
  report.violations.push_back(v);
  registry.observe_integrity(report, 5);
  // Every channel of the 2-hop straight route absorbed one error, and
  // with threshold 1 each tripped its breaker.
  std::vector<ChannelId> route;
  registry.torus().straight_path(0, v.direction, 2, route);
  ASSERT_EQ(route.size(), 2u);
  for (const ChannelId id : route) {
    EXPECT_TRUE(registry.channel_quarantined(id, 5)) << "channel " << id;
  }
  const HealthStats stats = registry.stats(5);
  EXPECT_EQ(stats.integrity_reports, 1);
  EXPECT_EQ(stats.errors, 2);
}

TEST(BreakerTest, QuarantineMergesIntoFaultModelForPlanning) {
  HealthRegistry registry(kShape, fast_breaker());
  const ChannelId id = some_channel(registry);
  registry.record_channel_error(id, 0, "x");
  registry.record_channel_error(id, 0, "x");
  FaultModel avoid;
  registry.add_quarantine(avoid, 0);
  EXPECT_TRUE(avoid.channel_failed(registry.torus(), id, 0));
  // Detours planned against the merged model never cross the
  // quarantined channel.
  const Channel ch = registry.torus().channel_of(id);
  const Rank dst = registry.torus().neighbor(ch.from, ch.direction);
  const auto path = route_around_faults(registry.torus(), avoid, ch.from, dst, 0);
  ASSERT_TRUE(path.has_value());
  for (const ChannelId hop : *path) EXPECT_NE(hop, id);
}

TEST(BreakerTest, DumpNamesEveryTrippedResource) {
  HealthRegistry registry(kShape, fast_breaker());
  registry.record_channel_error(some_channel(registry), 0, "wedged");
  registry.record_channel_error(some_channel(registry), 0, "wedged");
  registry.report_suspicion(7, 0, 3.0);
  const std::string dump = registry.dump(0);
  EXPECT_NE(dump.find("node 7"), std::string::npos);
  EXPECT_NE(dump.find("wedged"), std::string::npos);
  EXPECT_NE(dump.find("open"), std::string::npos);
}

// --- Retry budget ------------------------------------------------------

TEST(RetryBudgetTest, UnlimitedAlwaysGrantsAndCounts) {
  RetryBudget budget;  // capacity 0 = unlimited
  EXPECT_TRUE(budget.try_acquire(1'000'000));
  EXPECT_EQ(budget.granted(), 1'000'000);
  EXPECT_EQ(budget.denied(), 0);
}

TEST(RetryBudgetTest, AcquireIsAllOrNothing) {
  RetryBudgetOptions options;
  options.capacity = 10;
  RetryBudget budget(options);
  EXPECT_EQ(budget.available(), 10);
  EXPECT_TRUE(budget.try_acquire(7));
  // 11 > 3 remaining: denied outright, nothing partially taken.
  EXPECT_FALSE(budget.try_acquire(11));
  EXPECT_EQ(budget.available(), 3);
  EXPECT_TRUE(budget.try_acquire(3));
  EXPECT_FALSE(budget.try_acquire(1));
  EXPECT_EQ(budget.granted(), 10);
  EXPECT_EQ(budget.denied(), 12);
}

TEST(RetryBudgetTest, RefillCarriesFractionsAndClampsAtCapacity) {
  RetryBudgetOptions options;
  options.capacity = 4;
  options.refill_per_time = 0.5;  // one token per two time units
  RetryBudget budget(options);
  ASSERT_TRUE(budget.try_acquire(4));
  budget.advance(1.0);  // 0.5 token: all fraction, nothing whole yet
  EXPECT_EQ(budget.available(), 0);
  budget.advance(3.0);  // cumulative 1.5: one whole token, 0.5 carried
  EXPECT_EQ(budget.available(), 1);
  budget.advance(2.0);  // non-monotonic time never refunds
  EXPECT_EQ(budget.available(), 1);
  budget.advance(100.0);  // refill clamps at capacity
  EXPECT_EQ(budget.available(), 4);
  EXPECT_EQ(budget.refilled(), 4);
}

TEST(RetryBudgetTest, TotalsIndependentOfThreadInterleaving) {
  // 8 threads x 500 single-token acquires against capacity 1000 with
  // no refill: exactly 1000 grants and 3000 denials, no matter how the
  // scheduler interleaves them. Run under TSan in CI.
  RetryBudgetOptions options;
  options.capacity = 1000;
  RetryBudget budget(options);
  std::vector<std::thread> workers;
  workers.reserve(8);
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&budget] {
      for (int i = 0; i < 500; ++i) budget.try_acquire(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(budget.granted(), 1000);
  EXPECT_EQ(budget.denied(), 3000);
  EXPECT_EQ(budget.available(), 0);
}

TEST(RetryBudgetTest, OptionsRejectNegatives) {
  RetryBudgetOptions negative_capacity;
  negative_capacity.capacity = -1;
  EXPECT_THROW(RetryBudget{negative_capacity}, std::invalid_argument);
  RetryBudgetOptions negative_rate;
  negative_rate.refill_per_time = -0.5;
  EXPECT_THROW(RetryBudget{negative_rate}, std::invalid_argument);
  BreakerOptions zero_threshold;
  zero_threshold.error_threshold = 0;
  EXPECT_THROW(zero_threshold.validate(), std::invalid_argument);
}

// --- Fault-model storm helpers ----------------------------------------

TEST(FlapChannelTest, BuildsTheRequestedWindows) {
  const Torus torus(kShape);
  FaultModel faults;
  faults.flap_channel(0, Direction{0, Sign::kPositive}, 10, 2, 3, 2);
  const ChannelId id = torus.channel_id(0, Direction{0, Sign::kPositive});
  // Windows [10, 12) and [15, 17); healthy everywhere else.
  for (std::int64_t tick = 0; tick < 20; ++tick) {
    const bool expected = (tick >= 10 && tick < 12) || (tick >= 15 && tick < 17);
    EXPECT_EQ(faults.channel_failed(torus, id, tick), expected) << "tick " << tick;
  }
  EXPECT_FALSE(faults.any_permanent());
  EXPECT_EQ(faults.size(), 2u);
  EXPECT_THROW(faults.flap_channel(0, Direction{0, Sign::kPositive}, 0, 0, 1, 1),
               std::invalid_argument);
}

// --- torexd integration ------------------------------------------------

SessionRequest health_request(Rank n) {
  SessionRequest req;
  req.send.resize(static_cast<std::size_t>(n));
  for (Rank p = 0; p < n; ++p) {
    auto& row = req.send[static_cast<std::size_t>(p)];
    row.resize(static_cast<std::size_t>(n));
    for (Rank q = 0; q < n; ++q) {
      row[static_cast<std::size_t>(q)] = static_cast<std::int64_t>(p) * n + q;
    }
  }
  return req;
}

/// The first step-1 transfer of the 4x4 quarter phase (phase 3) — a
/// message the schedule is guaranteed to send, so a fault on its first
/// hop is guaranteed to be discovered.
TransferRecord quarter_phase_victim() {
  const SuhShinAape algo(kShape);
  ExchangeEngine engine(algo, EngineOptions{});
  const ExchangeTrace trace = engine.run_verified();
  for (const StepRecord& step : trace.steps) {
    if (step.phase == 3 && step.step == 1 && !step.transfers.empty()) {
      return step.transfers.front();
    }
  }
  ADD_FAILURE() << "4x4 quarter phase recorded no step-1 transfers";
  return {};
}

TEST(HealthManagerTest, TransientFaultDiscoveredOnceThenPlannedAround) {
  // One transient channel fault across the quarter phase of a 3-session
  // round-robin. The first session to cross it pays the discovery (two
  // retries, one chain walk); everyone after reroutes off the
  // quarantine for free, and all three complete unchanged.
  SessionManagerOptions options;
  options.max_active = 3;
  options.health.enabled = true;
  options.health.breaker.error_threshold = 2;
  const TransferRecord victim = quarter_phase_victim();
  // Quarter phase of 3 sessions spans fault ticks [6, 9).
  options.service_faults.fail_channel(victim.src, victim.dir, 6, 9);
  SessionManager mgr(kShape, CostParams{}, options);
  ASSERT_TRUE(mgr.health_enabled());
  for (int i = 0; i < 3; ++i) mgr.submit(health_request(kShape.num_nodes()));
  mgr.run_until_idle();
  for (SessionId id = 0; id < 3; ++id) {
    EXPECT_EQ(mgr.record(id).state, SessionState::kCompleted) << mgr.record(id).error;
  }
  const HealthStats stats = mgr.health_stats();
  EXPECT_EQ(stats.errors, 2);       // one discovery at threshold 2
  EXPECT_EQ(stats.opens, 1);
  EXPECT_EQ(stats.chain_walks, 1);  // first discoverer only
  EXPECT_GE(stats.quarantine_hits, 1);
  EXPECT_GE(stats.rerouted_messages, 1);
  EXPECT_EQ(stats.resent_parcels, stats.retry_granted);
  // The fault healed at tick 9; idle health ticks converge the breaker.
  for (int i = 0; i < 16 && !mgr.health_stats().all_closed(); ++i) mgr.advance_health();
  EXPECT_TRUE(mgr.health_stats().all_closed());
  EXPECT_EQ(mgr.outstanding_frames(), 0);
}

TEST(HealthManagerTest, LateArrivalCountsAsPlannedAround) {
  // Two eager sessions trip the breaker at tick 4 (the first quarter
  // phase dispatch of a 2-session round-robin, threshold 1); the third
  // session arrives while the breaker is still in its cool-off, so its
  // admission is counted as planned-around.
  SessionManagerOptions options;
  options.max_active = 3;
  options.health.enabled = true;
  options.health.breaker.error_threshold = 1;
  const TransferRecord victim = quarter_phase_victim();
  options.service_faults.fail_channel(victim.src, victim.dir, 4, 6);
  SessionManager mgr(kShape, CostParams{}, options);
  for (int i = 0; i < 2; ++i) mgr.submit(health_request(kShape.num_nodes()));
  SessionRequest late = health_request(kShape.num_nodes());
  late.arrival = 6.0 * mgr.phase_cost();
  mgr.submit(std::move(late));
  mgr.run_until_idle();
  for (SessionId id = 0; id < 3; ++id) {
    EXPECT_EQ(mgr.record(id).state, SessionState::kCompleted) << mgr.record(id).error;
  }
  const HealthStats stats = mgr.health_stats();
  EXPECT_EQ(stats.opens, 1);
  EXPECT_EQ(stats.planned_around, 1);
  EXPECT_EQ(mgr.outstanding_frames(), 0);
}

TEST(HealthManagerTest, SessionFaultErrorNamesSessionAndCoordinates) {
  const SessionFaultError error(7, 3, 2, "no detour");
  EXPECT_EQ(error.id(), 7);
  EXPECT_EQ(std::string(error.what()), "session 7 unroutable at phase 3 step 2: no detour");
}

TEST(HealthManagerTest, HealthOptionsValidateRejectsBadTuning) {
  SessionManagerOptions options;
  options.health.enabled = true;
  options.health.breaker.open_ticks = 0;
  EXPECT_THROW(SessionManager(kShape, CostParams{}, options), std::invalid_argument);
  SessionManagerOptions bad_budget;
  bad_budget.health.enabled = true;
  bad_budget.health.retries.capacity = -5;
  EXPECT_THROW(SessionManager(kShape, CostParams{}, bad_budget), std::invalid_argument);
}

}  // namespace
}  // namespace torex
