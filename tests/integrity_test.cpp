// End-to-end data integrity: CRC-32 and wire primitives, sealed
// message encode/decode, corruption faults, the detect-and-retransmit
// protocol, the checked communicator entry point with escalation into
// the recovery chain, and a miniature chaos differential sweep.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "core/payload_exchange.hpp"
#include "runtime/communicator.hpp"
#include "sim/fault_model.hpp"
#include "util/crc32.hpp"
#include "util/prng.hpp"

namespace torex {
namespace {

// --- CRC-32 ------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // The IEEE 802.3 check value: CRC-32 of the ASCII digits "123456789".
  const char* digits = "123456789";
  EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInputIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0x00000000u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  Crc32 crc;
  crc.update(data.data(), 10);
  crc.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc.value(), crc32(data.data(), data.size()));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<std::byte> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(i * 7);
  const std::uint32_t clean = crc32(data.data(), data.size());
  for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    EXPECT_NE(crc32(data.data(), data.size()), clean) << "bit " << bit << " undetected";
    data[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  }
}

// --- Wire primitives ---------------------------------------------------

TEST(WireTest, RoundTrip) {
  std::vector<std::byte> wire;
  wire_put_u32(wire, 0xDEADBEEFu);
  wire_put_u64(wire, 0x0123456789ABCDEFull);
  std::size_t offset = 0;
  std::uint32_t a = 0;
  std::uint64_t b = 0;
  ASSERT_TRUE(wire_get_u32(wire, offset, a));
  ASSERT_TRUE(wire_get_u64(wire, offset, b));
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_EQ(b, 0x0123456789ABCDEFull);
  EXPECT_EQ(offset, wire.size());
  // Reads past the end must fail without advancing.
  EXPECT_FALSE(wire_get_u32(wire, offset, a));
  EXPECT_EQ(offset, wire.size());
}

// --- Sealed messages ---------------------------------------------------

std::vector<Parcel<std::int64_t>> make_parcels(Rank src, int count) {
  std::vector<Parcel<std::int64_t>> out;
  for (int i = 0; i < count; ++i) {
    out.push_back({Block{src, static_cast<Rank>(i)}, src * 1000 + i});
  }
  return out;
}

TEST(SealedMessageTest, EncodeDecodeRoundTrip) {
  const auto parcels = make_parcels(3, 4);
  const auto wire = encode_sealed_message(parcels, 1, 2, 3, 7);
  std::vector<Parcel<std::int64_t>> out;
  std::string reason;
  ASSERT_TRUE(decode_sealed_message<std::int64_t>(wire, 1, 2, 3, 7, 16, out, &reason)) << reason;
  ASSERT_EQ(out.size(), parcels.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].block.origin, parcels[i].block.origin);
    EXPECT_EQ(out[i].block.dest, parcels[i].block.dest);
    EXPECT_EQ(out[i].payload, parcels[i].payload);
  }
}

TEST(SealedMessageTest, EveryBitFlipIsDetected) {
  // The end-to-end guarantee in miniature: no single-bit corruption of
  // the wire image decodes successfully.
  const auto parcels = make_parcels(2, 3);
  const auto clean = encode_sealed_message(parcels, 1, 2, 5, 6);
  std::vector<Parcel<std::int64_t>> out;
  for (std::size_t bit = 0; bit < clean.size() * 8; ++bit) {
    auto wire = clean;
    wire[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    EXPECT_FALSE(decode_sealed_message<std::int64_t>(wire, 1, 2, 5, 6, 16, out))
        << "flipped bit " << bit << " slipped through";
  }
}

TEST(SealedMessageTest, EveryTruncationIsDetected) {
  const auto parcels = make_parcels(0, 2);
  const auto clean = encode_sealed_message(parcels, 1, 2, 0, 4);
  std::vector<Parcel<std::int64_t>> out;
  for (std::size_t keep = 0; keep < clean.size(); ++keep) {
    std::vector<std::byte> wire(clean.begin(), clean.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(decode_sealed_message<std::int64_t>(wire, 1, 2, 0, 4, 16, out))
        << "truncation to " << keep << " bytes slipped through";
  }
}

TEST(SealedMessageTest, ForgedCountIsBoundedBeforeParsing) {
  const auto parcels = make_parcels(2, 3);
  auto wire = encode_sealed_message(parcels, 1, 2, 5, 6);
  // Forge a huge count and re-seal the header CRC, so the count bound
  // — not the checksum — is what must reject it; the decoder may not
  // let a forged count drive the parse loop or the allocator.
  wire_write_u64(wire.data() + 28, std::uint64_t{1} << 60);
  wire_write_u32(wire.data() + 36, crc32(wire.data(), 36));
  std::vector<Parcel<std::int64_t>> out;
  std::string reason;
  EXPECT_FALSE(decode_sealed_message<std::int64_t>(wire, 1, 2, 5, 6, 16, out, &reason));
  EXPECT_EQ(reason, "parcel count exceeds message size");
}

TEST(SealedMessageTest, NegativeMetadataRejected) {
  const auto parcels = make_parcels(1, 1);
  EXPECT_THROW(encode_sealed_message(parcels, -1, 2, 5, 6), std::invalid_argument);
  EXPECT_THROW(encode_sealed_message(parcels, 1, 2, -5, 6), std::invalid_argument);
  const auto wire = encode_sealed_message(parcels, 1, 2, 5, 6);
  std::vector<Parcel<std::int64_t>> out;
  std::string reason;
  EXPECT_FALSE(decode_sealed_message<std::int64_t>(wire, 1, -2, 5, 6, 16, out, &reason));
  EXPECT_EQ(reason, "negative message metadata");
  EXPECT_FALSE(decode_sealed_message<std::int64_t>(wire, 1, 2, 5, -6, 16, out, &reason));
  EXPECT_EQ(reason, "negative message metadata");
}

TEST(SealedMessageTest, RejectsWrongStepAndChannel) {
  const auto parcels = make_parcels(1, 2);
  const auto wire = encode_sealed_message(parcels, 1, 2, 1, 3);
  std::vector<Parcel<std::int64_t>> out;
  std::string reason;
  EXPECT_FALSE(decode_sealed_message<std::int64_t>(wire, 2, 2, 1, 3, 16, out, &reason));
  EXPECT_EQ(reason, "message sealed for a different step");
  EXPECT_FALSE(decode_sealed_message<std::int64_t>(wire, 1, 2, 1, 4, 16, out, &reason));
  EXPECT_EQ(reason, "message sealed for a different channel");
}

TEST(SealedMessageTest, RejectsTrailingBytes) {
  const auto parcels = make_parcels(1, 1);
  auto wire = encode_sealed_message(parcels, 1, 1, 1, 2);
  wire.push_back(std::byte{0});
  std::vector<Parcel<std::int64_t>> out;
  std::string reason;
  EXPECT_FALSE(decode_sealed_message<std::int64_t>(wire, 1, 1, 1, 2, 16, out, &reason));
  EXPECT_EQ(reason, "trailing bytes after last parcel");
}

// --- Corruption model --------------------------------------------------

TEST(CorruptionModelTest, ActivationWindows) {
  const Torus torus(TorusShape({4, 4}));
  CorruptionModel model;
  model.corrupt_channel(0, Direction{0, Sign::kPositive}, CorruptionKind::kBitFlip, 5, 10);
  const ChannelId id = torus.channel_id(0, Direction{0, Sign::kPositive});
  EXPECT_FALSE(model.find(torus, id, 4).has_value());
  EXPECT_TRUE(model.find(torus, id, 5).has_value());
  EXPECT_TRUE(model.find(torus, id, 9).has_value());
  EXPECT_FALSE(model.find(torus, id, 10).has_value());
  EXPECT_FALSE(model.any_permanent());
  model.corrupt_channel(1, Direction{1, Sign::kNegative}, CorruptionKind::kTruncate);
  EXPECT_TRUE(model.any_permanent());
  EXPECT_EQ(model.size(), 2u);
}

TEST(CorruptionModelTest, SeededInjectionIsDeterministicAndDistinct) {
  const Torus torus(TorusShape({4, 4}));
  CorruptionModel a, b;
  a.inject_random_corruptions(torus, 42, 6);
  b.inject_random_corruptions(torus, 42, 6);
  ASSERT_EQ(a.size(), 6u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(torus.channel_id(a.specs()[i].channel.from, a.specs()[i].channel.direction),
              torus.channel_id(b.specs()[i].channel.from, b.specs()[i].channel.direction));
    EXPECT_EQ(a.specs()[i].kind, b.specs()[i].kind);
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_NE(torus.channel_id(a.specs()[i].channel.from, a.specs()[i].channel.direction),
                torus.channel_id(a.specs()[j].channel.from, a.specs()[j].channel.direction));
    }
  }
}

TEST(CorruptionModelTest, ApplyDamagesWire) {
  CorruptionSpec spec;
  spec.kind = CorruptionKind::kBitFlip;
  spec.seed = 7;
  TransferContext ctx;
  ctx.tick = 3;
  std::vector<std::byte> wire(32, std::byte{0});
  CorruptionModel::apply(spec, ctx, wire);
  int flipped = 0;
  for (std::byte b : wire) {
    flipped += (b != std::byte{0}) ? 1 : 0;
  }
  EXPECT_EQ(flipped, 1);

  spec.kind = CorruptionKind::kTruncate;
  std::vector<std::byte> wire2(32, std::byte{0});
  CorruptionModel::apply(spec, ctx, wire2);
  EXPECT_LT(wire2.size(), 32u);
  EXPECT_GE(wire2.size(), 16u);  // drops at most half
}

// --- Sealed exchange protocol ------------------------------------------

ParcelBuffers<std::int64_t> canonical_parcels(Rank N) {
  ParcelBuffers<std::int64_t> buffers(static_cast<std::size_t>(N));
  for (Rank p = 0; p < N; ++p) {
    for (Rank q = 0; q < N; ++q) {
      buffers[static_cast<std::size_t>(p)].push_back({Block{p, q}, p * 10000 + q});
    }
  }
  return buffers;
}

void expect_delivered(Rank N, const ParcelBuffers<std::int64_t>& out) {
  for (Rank q = 0; q < N; ++q) {
    ASSERT_EQ(out[static_cast<std::size_t>(q)].size(), static_cast<std::size_t>(N));
    for (const auto& parcel : out[static_cast<std::size_t>(q)]) {
      EXPECT_EQ(parcel.block.dest, q);
      EXPECT_EQ(parcel.payload, parcel.block.origin * 10000 + q);
    }
  }
}

TEST(SealedExchangeTest, CleanWireMatchesUnsealed) {
  const SuhShinAape algo(TorusShape({4, 4}));
  const Rank N = 16;
  IntegrityReport report;
  const auto out = exchange_payloads_sealed(algo, canonical_parcels(N), {}, {}, &report);
  expect_delivered(N, out);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.retransmits, 0);
  EXPECT_GT(report.messages, 0);
  EXPECT_GT(report.parcels, 0);
  // One tick per step on a clean wire.
  EXPECT_EQ(report.final_tick, algo.total_steps());
}

TEST(SealedExchangeTest, TransientCorruptionHealsUnderRetransmit) {
  const SuhShinAape algo(TorusShape({4, 4}));
  const Rank N = 16;
  // Corrupt every transmission at tick 0 only: the first attempt of the
  // first step is damaged everywhere it crosses the wire; retransmits
  // at tick >= 1 go through.
  CorruptionModel model;
  const Torus& torus = algo.torus();
  for (Rank node = 0; node < N; ++node) {
    for (int dim = 0; dim < 2; ++dim) {
      for (Sign sign : {Sign::kPositive, Sign::kNegative}) {
        model.corrupt_channel(node, Direction{dim, sign}, CorruptionKind::kBitFlip, 0, 1,
                              static_cast<std::uint64_t>(node));
      }
    }
  }
  IntegrityReport report;
  const auto out =
      exchange_payloads_sealed(algo, canonical_parcels(N), model.tamperer(torus), {}, &report);
  expect_delivered(N, out);
  EXPECT_GT(report.corrupted, 0);
  EXPECT_GT(report.retransmits, 0);
  EXPECT_FALSE(report.fatal.has_value());
}

TEST(SealedExchangeTest, PermanentCorruptionExhaustsBudgetAndThrows) {
  const SuhShinAape algo(TorusShape({4, 4}));
  const Rank N = 16;
  CorruptionModel model;
  model.corrupt_channel(0, Direction{0, Sign::kPositive}, CorruptionKind::kTruncate);
  IntegrityOptions options;
  options.max_retransmits = 2;
  IntegrityReport report;
  try {
    exchange_payloads_sealed(algo, canonical_parcels(N), model.tamperer(algo.torus()), options,
                             &report);
    FAIL() << "permanent corruption must raise IntegrityError";
  } catch (const IntegrityError& e) {
    ASSERT_TRUE(e.report().fatal.has_value());
    EXPECT_EQ(e.report().fatal->attempt, 2);
    EXPECT_NE(std::string(e.what()).find("retransmit budget exhausted"), std::string::npos);
    // report_out must match the thrown report even on failure.
    ASSERT_TRUE(report.fatal.has_value());
    EXPECT_EQ(report.fatal->tick, e.report().fatal->tick);
    EXPECT_EQ(report.corrupted, e.report().corrupted);
  }
}

TEST(SealedExchangeTest, ViolationDescribeNamesTheStep) {
  IntegrityViolation v;
  v.phase = 2;
  v.step = 3;
  v.src = 4;
  v.dst = 8;
  v.tick = 11;
  v.attempt = 1;
  v.reason = "parcel seal mismatch";
  const std::string text = v.describe();
  EXPECT_NE(text.find("phase 2"), std::string::npos);
  EXPECT_NE(text.find("step 3"), std::string::npos);
  EXPECT_NE(text.find("4 -> 8"), std::string::npos);
  EXPECT_NE(text.find("parcel seal mismatch"), std::string::npos);
}

// --- exchange_payloads preconditions -----------------------------------

TEST(PayloadPreconditionTest, RejectsDuplicateDestination) {
  const SuhShinAape algo(TorusShape({4, 4}));
  auto buffers = canonical_parcels(16);
  buffers[0][1].block.dest = 0;  // two parcels for destination 0
  EXPECT_THROW(exchange_payloads(algo, std::move(buffers)), std::invalid_argument);
}

TEST(PayloadPreconditionTest, RejectsWrongOrigin) {
  const SuhShinAape algo(TorusShape({4, 4}));
  auto buffers = canonical_parcels(16);
  buffers[2][0].block.origin = 3;
  EXPECT_THROW(exchange_payloads(algo, std::move(buffers)), std::invalid_argument);
}

TEST(PayloadPreconditionTest, RejectsShortRow) {
  const SuhShinAape algo(TorusShape({4, 4}));
  auto buffers = canonical_parcels(16);
  buffers[5].pop_back();
  EXPECT_THROW(exchange_payloads(algo, std::move(buffers)), std::invalid_argument);
}

TEST(PayloadPreconditionTest, RejectsDestinationOutOfRange) {
  const SuhShinAape algo(TorusShape({4, 4}));
  auto buffers = canonical_parcels(16);
  buffers[1][2].block.dest = 16;
  EXPECT_THROW(exchange_payloads(algo, std::move(buffers)), std::invalid_argument);
}

TEST(PayloadPreconditionTest, SealedVariantChecksTheSamePreconditions) {
  const SuhShinAape algo(TorusShape({4, 4}));
  auto buffers = canonical_parcels(16);
  buffers[0][1].block.dest = 0;
  EXPECT_THROW(exchange_payloads_sealed(algo, std::move(buffers)), std::invalid_argument);
}

// --- Checked communicator ----------------------------------------------

std::vector<std::vector<std::int64_t>> make_send(Rank n) {
  std::vector<std::vector<std::int64_t>> send(static_cast<std::size_t>(n));
  for (Rank p = 0; p < n; ++p) {
    for (Rank q = 0; q < n; ++q) {
      send[static_cast<std::size_t>(p)].push_back(p * 10000 + q);
    }
  }
  return send;
}

void expect_aape_permutation(const std::vector<std::vector<std::int64_t>>& send,
                             const std::vector<std::vector<std::int64_t>>& recv) {
  ASSERT_EQ(recv.size(), send.size());
  for (std::size_t q = 0; q < send.size(); ++q) {
    ASSERT_EQ(recv[q].size(), send.size());
    for (std::size_t p = 0; p < send.size(); ++p) {
      EXPECT_EQ(recv[q][p], send[p][q]) << "recv[" << q << "][" << p << "]";
    }
  }
}

TEST(CheckedExchangeTest, CleanRunReportsClean) {
  const TorusCommunicator comm(TorusShape({4, 4}), CostParams{});
  const auto send = make_send(16);
  ExchangeOutcome outcome;
  ResilienceOptions options;
  options.algorithm = AlltoallAlgorithm::kSuhShin;
  const auto recv = comm.alltoall_checked(send, FaultModel{}, CorruptionModel{}, outcome, options);
  expect_aape_permutation(send, recv);
  EXPECT_EQ(outcome.integrity, IntegrityStatus::kClean);
  EXPECT_EQ(outcome.corrupted_messages, 0);
  EXPECT_EQ(outcome.escalations, 0);
  EXPECT_FALSE(outcome.integrity_failure.has_value());
}

TEST(CheckedExchangeTest, TransientCorruptionIsCorrected) {
  const TorusShape shape({4, 4});
  const TorusCommunicator comm(shape, CostParams{});
  const auto send = make_send(16);
  CorruptionModel corruption;
  // Node 0 transmits along {1, +} in the first active step (quarter
  // exchange, tick 0). Active for that tick only: detected, then healed
  // by a retransmission one tick later.
  corruption.corrupt_channel(0, Direction{1, Sign::kPositive}, CorruptionKind::kBitFlip, 0, 1);
  ExchangeOutcome outcome;
  ResilienceOptions options;
  options.algorithm = AlltoallAlgorithm::kSuhShin;
  const auto recv = comm.alltoall_checked(send, FaultModel{}, corruption, outcome, options);
  expect_aape_permutation(send, recv);
  EXPECT_EQ(outcome.integrity, IntegrityStatus::kCorrected);
  EXPECT_GT(outcome.corrupted_messages, 0);
  EXPECT_GT(outcome.retransmits, 0);
  EXPECT_EQ(outcome.escalations, 0);
  EXPECT_NE(outcome.summary().find("integrity=corrected"), std::string::npos);
}

TEST(CheckedExchangeTest, PermanentCorruptionEscalatesIntoRecovery) {
  const TorusShape shape({4, 4});
  const TorusCommunicator comm(shape, CostParams{});
  const auto send = make_send(16);
  CorruptionModel corruption;
  corruption.corrupt_channel(5, Direction{1, Sign::kPositive}, CorruptionKind::kTruncate);
  ExchangeOutcome outcome;
  ResilienceOptions options;
  options.algorithm = AlltoallAlgorithm::kSuhShin;
  const auto recv = comm.alltoall_checked(send, FaultModel{}, corruption, outcome, options);
  expect_aape_permutation(send, recv);
  EXPECT_EQ(outcome.integrity, IntegrityStatus::kEscalated);
  EXPECT_GE(outcome.escalations, 1);
  EXPECT_GT(outcome.corrupted_messages, 0);
  ASSERT_TRUE(outcome.integrity_failure.has_value());
  EXPECT_EQ(outcome.integrity_failure->src, 5);
  // The realized plan routed around the poisoned channel.
  EXPECT_TRUE(outcome.degraded || outcome.algorithm != AlltoallAlgorithm::kSuhShin);
  EXPECT_NE(outcome.summary().find("integrity=escalated"), std::string::npos);
}

TEST(CheckedExchangeTest, EscalationComposesWithChannelFaults) {
  const TorusShape shape({4, 4});
  const TorusCommunicator comm(shape, CostParams{});
  const auto send = make_send(16);
  // A transient channel fault: retry/backoff waits it out and the
  // pristine schedule runs — straight into permanent corruption on node
  // 9's quarter-exchange channel, which must then escalate. Both
  // recovery mechanisms fire in one exchange.
  FaultModel faults;
  faults.fail_channel(3, Direction{0, Sign::kPositive}, 0, 2);
  CorruptionModel corruption;
  corruption.corrupt_channel(9, Direction{0, Sign::kNegative}, CorruptionKind::kBitFlip);
  ExchangeOutcome outcome;
  ResilienceOptions options;
  options.algorithm = AlltoallAlgorithm::kSuhShin;
  const auto recv = comm.alltoall_checked(send, faults, corruption, outcome, options);
  expect_aape_permutation(send, recv);
  EXPECT_EQ(outcome.integrity, IntegrityStatus::kEscalated);
  EXPECT_GE(outcome.escalations, 1);
  EXPECT_GT(outcome.waited_ticks, 0);
}

TEST(CheckedExchangeTest, RecoveryDisabledTurnsEscalationIntoThrow) {
  const TorusCommunicator comm(TorusShape({4, 4}), CostParams{});
  const auto send = make_send(16);
  CorruptionModel corruption;
  corruption.corrupt_channel(0, Direction{0, Sign::kPositive}, CorruptionKind::kTruncate);
  ExchangeOutcome outcome;
  ResilienceOptions options;
  options.algorithm = AlltoallAlgorithm::kSuhShin;
  options.policy = RecoveryPolicy::kNone;
  EXPECT_THROW(comm.alltoall_checked(send, FaultModel{}, corruption, outcome, options),
               FaultedExchangeError);
}

// --- Miniature chaos sweep ---------------------------------------------

TEST(ChaosTest, NoSilentCorruptionAcrossSeeds) {
  const TorusShape shape({4, 4});
  const TorusCommunicator comm(shape, CostParams{});
  const Torus torus(shape);
  const auto send = make_send(16);
  int escalated = 0, corrected = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SplitMix64 rng(seed * 0x9E3779B97F4A7C15ull);
    CorruptionModel corruption;
    const std::int64_t until =
        (rng.next() & 1u) != 0 ? static_cast<std::int64_t>(1 + rng.next_below(3)) : kFaultForever;
    corruption.inject_random_corruptions(torus, rng.next(), 1 + static_cast<int>(seed % 2), 0,
                                         until);
    FaultModel faults;
    if (seed % 3 == 0) faults.inject_random_channel_faults(torus, rng.next(), 1);
    ExchangeOutcome outcome;
    ResilienceOptions options;
    options.algorithm = AlltoallAlgorithm::kSuhShin;
    std::vector<std::vector<std::int64_t>> recv;
    try {
      recv = comm.alltoall_checked(send, faults, corruption, outcome, options);
    } catch (const std::exception&) {
      continue;  // loud, attributed refusal — not silent corruption
    }
    expect_aape_permutation(send, recv);
    if (outcome.integrity == IntegrityStatus::kEscalated) ++escalated;
    if (outcome.integrity == IntegrityStatus::kCorrected) ++corrected;
  }
  // The sweep must actually exercise both repair paths.
  EXPECT_GT(escalated + corrected, 0);
}

}  // namespace
}  // namespace torex
